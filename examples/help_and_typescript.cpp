// The help browser (snapshot 2) and the typescript shell (§1) side by side,
// plus the console monitor — the "basic applications" suite, all running
// from one process on one window system, sharing the resident toolkit.

#include <cstdio>

#include "src/apps/console_app.h"
#include "src/apps/help_app.h"
#include "src/apps/standard_modules.h"
#include "src/apps/typescript_app.h"
#include "src/class_system/loader.h"
#include "src/wm/window_system.h"

int main() {
  using namespace atk;
  RegisterStandardModules();
  PinToolkitBase();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open();

  // ---- help ----
  HelpApp help;
  std::unique_ptr<InteractionManager> help_im = help.Start(*ws, {"help"});
  help_im->RunOnce();
  std::printf("help topics:");
  for (const std::string& topic : help.TopicNames()) {
    std::printf(" %s", topic.c_str());
  }
  std::printf("\nsearch 'editor' ->");
  for (const std::string& hit : help.Search("editor")) {
    std::printf(" %s", hit.c_str());
  }
  help.ShowTopic("toolkit");
  help_im->RunOnce();
  std::printf("\nshowing '%s': %.60s...\n\n", help.current_topic().c_str(),
              help.doc_view()->text()->GetAllText().c_str());

  // ---- typescript ----
  TypescriptApp shell;
  std::unique_ptr<InteractionManager> shell_im = shell.Start(*ws, {"typescript"});
  shell_im->RunOnce();
  for (const char* cmd : {"whoami", "ls", "wc paper.txt", "echo toolkit demo", "history"}) {
    std::string out = shell.view()->RunCommand(cmd);
    std::printf("%% %s\n%s", cmd, out.c_str());
  }
  shell_im->RunOnce();

  // ---- console ----
  ConsoleApp console;
  std::unique_ptr<InteractionManager> console_im = console.Start(*ws, {"console"});
  for (int minute = 0; minute < 5; ++minute) {
    ConsoleSample sample;
    sample.hour = 9;
    sample.minute = 30 + minute;
    sample.cpu_load = 0.2 + 0.15 * minute;
    sample.filesystems = {{"/", 0.62}, {"vice", 0.47}};
    console.data().Update(sample);
    console_im->RunOnce();
  }
  std::printf("\nconsole after 5 samples: load history of %zu entries, last %.2f\n",
              console.data().load_history().size(), console.data().load_history().back());

  std::printf("\nresident modules shared by all three apps:\n");
  for (const std::string& name : Loader::Instance().LoadedModules()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}
