// Quickstart: the smallest complete Andrew Toolkit program.
//
// Opens a (simulated) window system, builds the classic view tree — frame,
// scroll bar, text view over a text data object — types into it, saves the
// document in the §5 external representation, and dumps an ASCII proof of
// the rendered window.
//
//   ./examples/quickstart [itc|x11]

#include <cstdio>
#include <iostream>

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/frame/frame_view.h"
#include "src/components/scroll/scrollbar_view.h"
#include "src/components/text/text_view.h"
#include "src/wm/window_system.h"

int main(int argc, char** argv) {
  using namespace atk;

  // 1. Declare the module table (runapp's role) and open a window system.
  //    The backend is chosen by argument or $ATK_WINDOW_SYSTEM (§8).
  RegisterStandardModules();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open(argc > 1 ? argv[1] : "");
  if (ws == nullptr) {
    std::fprintf(stderr, "unknown window system\n");
    return 1;
  }
  std::printf("window system: %s\n", ws->SystemName().c_str());

  // 2. Load the components this program uses.  (Opening a *document* would
  //    load them on demand instead.)
  Loader::Instance().Require("text");
  Loader::Instance().Require("scroll");
  Loader::Instance().Require("frame");

  // 3. Build the component pair: a text data object and a text view...
  TextData document;
  TextView text_view;
  text_view.SetText(&document);

  // ...and wrap it in the standard chrome: scroll bar, then frame.
  ScrollBarView scrollbar;
  scrollbar.SetBody(&text_view);
  FrameView frame;
  frame.SetBody(&scrollbar);
  frame.SetMessage("quickstart: type into the toolkit");

  // 4. Root the tree in an interaction manager (a window).
  auto im = InteractionManager::Create(*ws, 280, 96, "quickstart");
  im->SetChild(&frame);
  im->SetInputFocus(&text_view);

  // 5. Drive it with events, exactly as the window system would.
  for (char ch : std::string("Hello, Andrew!\nBuilt from data objects + views.")) {
    im->window()->Inject(InputEvent::KeyPress(ch));
  }
  im->RunOnce();

  // 6. The data object's persistent form (what a file would contain).
  std::printf("\n--- document datastream (%d chars typed) ---\n%s\n",
              static_cast<int>(document.size()), WriteDocument(document).c_str());

  // 7. Proof of rendering: the window's framebuffer as ASCII.
  std::printf("--- window contents ---\n%s", im->window()->Display().ToAscii().c_str());
  return 0;
}
