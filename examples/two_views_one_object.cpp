// §2's headline demonstration: multiple simultaneous views of one data
// object.
//   * two text windows editing the same buffer, edits reflected in both;
//   * a semi-WYSIWYG view and the paper-like paged view on the same text;
//   * a table shown as a spreadsheet, a pie chart and a bar chart at once,
//     with the chart's stable state (title, columns) kept in the auxiliary
//     ChartData that observes the table.

#include <cstdio>

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/table/chart.h"
#include "src/components/table/table_view.h"
#include "src/components/text/paged_text_view.h"
#include "src/components/text/text_view.h"
#include "src/wm/window_system.h"

int main() {
  using namespace atk;
  RegisterStandardModules();
  Loader::Instance().Require("text");
  Loader::Instance().Require("table");
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open();

  // ---- Two text views, two windows, one buffer ----
  TextData story;
  story.SetText("The toolkit provides multiple views of one data object.\n");
  TextView editor_view;
  PagedTextView page_view;
  editor_view.SetText(&story);
  page_view.SetText(&story);
  auto editor = InteractionManager::Create(*ws, 300, 120, "editor (WYSLRN)");
  auto preview = InteractionManager::Create(*ws, 300, 220, "preview (WYSIWYG)");
  editor->SetChild(&editor_view);
  preview->SetChild(&page_view);
  editor->RunOnce();
  preview->RunOnce();

  editor_view.SetDot(story.size());
  editor_view.InsertText("This line was typed into the editor window.\n");
  editor->RunOnce();
  preview->RunOnce();  // The page view repainted via the observer chain.
  std::printf("both views show %lld lines (page view reports %d page(s))\n",
              static_cast<long long>(story.LineCount()), page_view.PageCount());

  // ---- Table + two chart types ----
  TableData table;
  table.Resize(4, 2);
  const char* fruit[] = {"apples", "pears", "plums", "figs"};
  const double amounts[] = {30, 50, 20, 40};
  for (int r = 0; r < 4; ++r) {
    table.SetText(r, 0, fruit[r]);
    table.SetNumber(r, 1, amounts[r]);
  }
  ChartData chart;  // The §2 auxiliary data object.
  chart.SetSource(&table);
  chart.SetTitle("Harvest");
  chart.SetColumns(0, 1);

  TableView sheet_view;
  PieChartView pie_view;
  BarChartView bar_view;
  sheet_view.SetDataObject(&table);
  pie_view.SetDataObject(&chart);
  bar_view.SetDataObject(&chart);

  auto sheet_im = InteractionManager::Create(*ws, 200, 100, "table");
  auto pie_im = InteractionManager::Create(*ws, 160, 130, "pie chart");
  auto bar_im = InteractionManager::Create(*ws, 160, 130, "bar chart");
  sheet_im->SetChild(&sheet_view);
  pie_im->SetChild(&pie_view);
  bar_im->SetChild(&bar_view);
  sheet_im->RunOnce();
  pie_im->RunOnce();
  bar_im->RunOnce();

  uint64_t pie_before = pie_im->window()->Display().Hash();
  uint64_t bar_before = bar_im->window()->Display().Hash();
  std::printf("editing the table: pears 50 -> 200\n");
  table.SetNumber(1, 1, 200);
  pie_im->RunOnce();
  bar_im->RunOnce();
  sheet_im->RunOnce();
  std::printf("pie chart repainted: %s; bar chart repainted: %s\n",
              pie_im->window()->Display().Hash() != pie_before ? "yes" : "no",
              bar_im->window()->Display().Hash() != bar_before ? "yes" : "no");
  std::printf("chart series now:");
  for (const auto& slice : chart.Series()) {
    std::printf(" %s=%.0f", slice.label.c_str(), slice.value);
  }
  std::printf("\n");

  editor_view.SetText(nullptr);
  page_view.SetText(nullptr);
  sheet_view.SetDataObject(nullptr);
  pie_view.SetDataObject(nullptr);
  bar_view.SetDataObject(nullptr);
  return 0;
}
