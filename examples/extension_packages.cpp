// §1's extension packages in action: "a C-language programming component, a
// compile package, a tags package, a spelling checker, a style editor and a
// filter mechanism" — every one a dormant module that loads on first use,
// operating on the stock EZ editor.

#include <cstdio>

#include "src/apps/ez_app.h"
#include "src/apps/standard_modules.h"
#include "src/apps/style_editor.h"
#include "src/base/proctable.h"
#include "src/class_system/loader.h"
#include "src/wm/window_system.h"

int main() {
  using namespace atk;
  RegisterStandardModules();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open();

  EzApp ez;
  std::unique_ptr<InteractionManager> im = ez.Start(*ws, {"ez"});

  auto loaded = [](const char* module) {
    return Loader::Instance().IsLoaded(module) ? "loaded" : "dormant";
  };

  // ---- The C-language component (a ctext document in the stock editor) ----
  std::printf("ctext module before open: %s\n", loaded("ctext"));
  std::unique_ptr<DataObject> code_obj =
      ObjectCast<DataObject>(Loader::Instance().NewObject("ctext"));
  TextData* code = ObjectCast<TextData>(code_obj.get());
  code->SetText(
      "/* pascal row */\n"
      "int row(int n) {\n"
      "  int v = choose(n, 2)\n"  // <- missing semicolon, found below
      "  return v;\n"
      "}\n"
      "int choose(int n, int k) {\n"
      "  return k == 0 ? 1 : choose(n - 1, k - 1) * n / k;\n"
      "}\n");
  ez.LoadDocumentString(WriteDocument(*code_obj));
  im->RunOnce();
  std::printf("ctext module after open:  %s (document type: %s)\n", loaded("ctext"),
              std::string(ez.document()->DataTypeName()).c_str());
  std::printf("syntax styles in the buffer: keyword at 'int' -> %s, comment -> %s\n",
              ez.document()->StyleNameAt(18).c_str(), ez.document()->StyleNameAt(2).c_str());

  // ---- compile package: load-on-invoke, error jump ----
  std::printf("\ncompile package before invoke: %s\n", loaded("proc:compile"));
  ProcTable::Instance().Invoke("compile-check", ez.text_view());
  std::printf("compile package after invoke:  %s\n", loaded("proc:compile"));
  std::printf("message line: %s\n", ez.frame()->message_line()->message().c_str());
  std::printf("caret jumped to line %lld\n",
              static_cast<long long>(ez.document()->LineOfPos(ez.text_view()->dot_pos()) + 1));

  // ---- tags package: jump to a definition ----
  int64_t call_site = static_cast<int64_t>(ez.document()->GetAllText().rfind("choose(n - 1"));
  ez.text_view()->SetDot(call_site + 1);
  ProcTable::Instance().Invoke("tags-find-definition", ez.text_view());
  std::printf("\ntags: caret now at line %lld (%s)\n",
              static_cast<long long>(ez.document()->LineOfPos(ez.text_view()->dot_pos()) + 1),
              ez.frame()->message_line()->message().c_str());

  // ---- spelling checker ----
  ez.text_view()->SetDot(0, 0);
  ProcTable::Instance().Invoke("spell-check-region", ez.text_view());
  std::printf("\nspell: %s\n", ez.frame()->message_line()->message().c_str());

  // ---- filter mechanism ----
  ez.text_view()->SetDot(0, ez.document()->size());
  im->InvokeMenu("Region~Upcase");
  std::printf("\nfilter-upcase over the buffer: first line now \"%.16s\"\n",
              ez.document()->GetAllText().c_str());

  // ---- style editor: redefine "typewriter" for this document ----
  Loader::Instance().Require("styleeditor");
  std::unique_ptr<View> editor_obj =
      ObjectCast<View>(Loader::Instance().NewObject("styleeditor"));
  StyleEditorView* editor = ObjectCast<StyleEditorView>(editor_obj.get());
  editor->SetTarget(ez.document());
  auto editor_im = InteractionManager::Create(*ws, 240, 160, "styles");
  editor_im->SetChild(editor);
  editor_im->RunOnce();
  editor->SelectStyle("typewriter");
  editor->GrowFont(+10);
  im->RunOnce();
  std::printf("\nstyle editor: typewriter font is now %d pt across every view\n",
              ez.document()->styles().Get("typewriter").font.size);

  std::printf("\nmodules now resident:\n");
  for (const std::string& name : Loader::Instance().LoadedModules()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}
