// The EZ editor as a downstream user drives it: open the app through
// runapp, type a report, embed a spreadsheet and a drawing via the Insert
// menus (loading their modules on demand), save the compound document to
// disk, and re-open it in a second EZ — demonstrating §1's "compose papers
// that contain tables, equations, drawings" and §7's runapp.

#include <cstdio>

#include "src/apps/ez_app.h"
#include "src/apps/standard_modules.h"
#include "src/class_system/loader.h"
#include "src/components/table/table_data.h"
#include "src/wm/window_system.h"

int main() {
  using namespace atk;
  RegisterStandardModules();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open();

  // runapp: the base program loads the application module by name.
  std::unique_ptr<InteractionManager> im = RunApp("ez", *ws);
  if (im == nullptr) {
    std::fprintf(stderr, "runapp failed\n");
    return 1;
  }
  std::printf("runapp loaded: app-ez (+deps) -> %zu modules resident\n",
              Loader::Instance().LoadedModules().size());
  // Reach the app object through a fresh EZ (the adopted one is opaque);
  // everything below uses a directly-constructed instance for clarity.
  EzApp ez;
  std::unique_ptr<InteractionManager> window = ez.Start(*ws, {"ez"});

  // Type the report body.
  for (char ch : std::string("Quarterly expenses\n\nThe numbers are below: ")) {
    window->window()->Inject(InputEvent::KeyPress(ch));
  }
  window->RunOnce();
  ez.document()->ApplyStyle(0, 18, "heading");

  // Insert a spreadsheet via the menu (loads the table module on demand).
  std::printf("table module loaded before insert: %s\n",
              Loader::Instance().IsLoaded("table") ? "yes" : "no");
  window->InvokeMenu("Insert~Table");
  std::printf("table module loaded after insert:  %s\n",
              Loader::Instance().IsLoaded("table") ? "yes" : "no");
  TableData* table =
      ObjectCast<TableData>(ez.document()->embedded_objects()[0].data.get());
  table->SetText(0, 0, "item");
  table->SetText(0, 1, "cost");
  table->SetText(1, 0, "disks");
  table->SetNumber(1, 1, 1200);
  table->SetText(2, 0, "tapes");
  table->SetNumber(2, 1, 340);
  table->SetText(3, 0, "total");
  table->SetFormula(3, 1, "SUM(B2:B3)");
  window->RunOnce();
  std::printf("spreadsheet total: %s\n", table->DisplayText(3, 1).c_str());

  // And a drawing.
  window->InvokeMenu("Insert~Drawing");
  window->RunOnce();

  // Save, reload in a second editor, verify.
  const char* path = "/tmp/atk_example_report.d";
  ez.SaveFile(path);
  std::printf("saved %s\n", path);

  EzApp reader;
  std::unique_ptr<InteractionManager> window2 = reader.Start(*ws, {"ez", path});
  window2->RunOnce();
  TableData* reread =
      ObjectCast<TableData>(reader.document()->embedded_objects()[0].data.get());
  std::printf("re-opened: %zu embedded objects; total recalculated to %s\n",
              reader.document()->embedded_count(), reread->DisplayText(3, 1).c_str());
  std::printf("document text begins: %.40s...\n",
              reader.document()->GetAllText().c_str());
  std::remove(path);
  return 0;
}
