// Reproduces the paper's snapshot 5: "an ez window containing a number of
// embedded objects (text, equations, and an animation) within a table that
// is contained inside of text" — Pascal's Triangle, four ways at once.
//
// Builds the compound document, renders it, runs the animation a few
// frames, edits the spreadsheet's apex to show live recalculation through
// four nesting levels, round-trips the document through the §5 external
// representation, and prints page 1 through the §4 printer drawable.

#include <cstdio>

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/base/print.h"
#include "src/class_system/loader.h"
#include "src/components/animation/anim_view.h"
#include "src/components/table/table_view.h"
#include "src/components/text/text_view.h"
#include "src/wm/window_system.h"
#include "src/workload/workload.h"

int main() {
  using namespace atk;
  RegisterStandardModules();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open();

  // The compound document: text > table > {text, equation, animation,
  // spreadsheet}.  Component modules load on demand as it is built.
  std::unique_ptr<TextData> doc = BuildPascalCompoundDocument();
  std::printf("loaded modules after building the document:\n");
  for (const std::string& name : Loader::Instance().LoadedModules()) {
    std::printf("  %s\n", name.c_str());
  }

  TextView view;
  view.SetText(doc.get());
  auto im = InteractionManager::Create(*ws, 520, 360, "pascal.text");
  im->SetChild(&view);
  im->RunOnce();

  // Find the embedded pieces.
  TableData* table = ObjectCast<TableData>(doc->embedded_objects()[0].data.get());
  TableData* sheet = ObjectCast<TableData>(table->at(1, 1).object.get());
  std::printf("\nPascal's Triangle spreadsheet (recalculated from formulas):\n");
  for (int r = 0; r < sheet->rows(); ++r) {
    std::printf("  ");
    for (int c = 0; c <= r; ++c) {
      std::printf("%4s", sheet->DisplayText(r, c).c_str());
    }
    std::printf("\n");
  }

  // Live recalculation: set the apex to 3 and watch row 5 rescale.
  sheet->SetNumber(0, 0, 3);
  im->RunOnce();
  std::printf("\nafter setting the apex to 3, row 6 reads:");
  for (int c = 0; c < sheet->cols(); ++c) {
    std::printf(" %s", sheet->DisplayText(5, c).c_str());
  }
  std::printf("\n");
  sheet->SetNumber(0, 0, 1);

  // Run the animation: "click into the cell and choose the animate item".
  View* spread = view.children()[0];
  AnimView* anim = nullptr;
  for (View* child : spread->children()) {
    if (AnimView* as_anim = ObjectCast<AnimView>(child)) {
      anim = as_anim;
    }
  }
  Point anim_center = anim->DeviceBounds().center();
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseDown, anim_center));
  im->window()->Inject(InputEvent::MouseAt(EventType::kMouseUp, anim_center));
  im->window()->Inject(InputEvent::MenuChoice("Animation~Animate"));
  im->RunOnce();
  std::printf("\nanimation playing: frame %d", anim->current_frame());
  for (int tick = 0; tick < 3; ++tick) {
    anim->Tick();
    im->RunOnce();
    std::printf(" -> %d", anim->current_frame());
  }
  std::printf("\n");

  // Round trip through the external representation.
  std::string serialized = WriteDocument(*doc);
  ReadContext ctx;
  std::unique_ptr<DataObject> reread = ReadDocument(serialized, &ctx);
  std::printf("\nexternal representation: %d bytes, round trip %s\n",
              static_cast<int>(serialized.size()), ctx.ok() ? "ok" : "FAILED");

  // Print page 1 by repointing the drawable (§4).
  PrintJob job(520, 360, 12);
  PrintView(view, job);
  std::printf("printed %d page(s); page 1 has %lld inked pixels\n", job.page_count(),
              static_cast<long long>(job.page(0).DiffCount(PixelImage(520, 360, kWhite))));

  view.SetText(nullptr);
  return 0;
}
