// A full messages session (snapshots 3 and 4): generate a campus mailbox,
// read a folder, open a message containing an embedded drawing, compose a
// reply with a raster image, and send it — verifying the §5 mailability
// guarantee along the way.

#include <cstdio>

#include "src/apps/messages_app.h"
#include "src/apps/standard_modules.h"
#include "src/class_system/loader.h"
#include "src/wm/window_system.h"
#include "src/workload/workload.h"

int main() {
  using namespace atk;
  RegisterStandardModules();
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open();
  Loader::Instance().Require("text");
  Loader::Instance().Require("scroll");
  Loader::Instance().Require("frame");
  Loader::Instance().Require("widgets");

  MessagesApp app;
  WorkloadRng rng(1988);
  GenerateMailbox(rng, app.store(), 5, 6, 0.4);
  std::unique_ptr<InteractionManager> im = app.Start(*ws, {"messages"});
  im->RunOnce();

  std::printf("folders:\n");
  for (const std::string& item : app.folder_list()->items()) {
    std::printf("  %s\n", item.c_str());
  }

  // Read the third folder like snapshot 3.
  app.folder_list()->Select(2);
  im->RunOnce();
  std::printf("\ncaptions in %s:\n", app.current_folder().c_str());
  for (const std::string& caption : app.caption_list()->items()) {
    std::printf("  %s\n", caption.c_str());
  }

  // Open the first message whose body embeds a component.
  MailFolder* folder = app.store().FindFolder(app.current_folder());
  for (size_t index = 0; index < folder->messages.size(); ++index) {
    if (folder->messages[index].body.find("\\begindata{draw") != std::string::npos ||
        folder->messages[index].body.find("\\begindata{raster") != std::string::npos) {
      app.caption_list()->Select(static_cast<int>(index));
      break;
    }
  }
  im->RunOnce();
  std::printf("\ndisplaying message %d: body has %zu embedded component(s)\n",
              app.current_message(),
              app.body_view()->text() != nullptr ? app.body_view()->text()->embedded_count()
                                                 : 0);

  // Compose like snapshot 4: a note with a raster image.
  auto composer = app.NewComposer();
  std::unique_ptr<InteractionManager> compose_im = composer->OpenWindow(*ws);
  composer->to().SetText("Andrew Palay <ap1o@andrew.cmu.edu>");
  composer->subject().SetText("Big Cat");
  composer->body().SetText("Knowing your fondness for big cats, here's a picture:\n");
  composer->body().InsertObject(composer->body().size(), GenerateRaster(rng, 48, 32));
  compose_im->RunOnce();
  bool sent = composer->Send("mail");
  std::printf("\ncompose window: send %s\n", sent ? "succeeded" : "failed");

  MailFolder* inbox = app.store().FindFolder("mail");
  const MailMessage& delivered = inbox->messages.back();
  std::printf("delivered \"%s\" (%zu bytes), mailable=%s, raster block present=%s\n",
              delivered.subject.c_str(), delivered.body.size(),
              MailStore::IsMailable(delivered.body) ? "yes" : "no",
              delivered.body.find("\\begindata{raster,") != std::string::npos ? "yes" : "no");
  std::printf("\ntotal messages in store: %d\n", app.store().total_messages());
  return 0;
}
