#include "src/robustness/fault_injector.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>

namespace atk {
namespace {

// True when the backslash at `pos` is a directive initiator (not the second
// half of an escaped "\\").
bool UnescapedBackslash(const std::string& data, size_t pos) {
  size_t run = 0;
  while (pos > run && data[pos - run - 1] == '\\') {
    ++run;
  }
  return (run % 2) == 0;
}

// Finds the next unescaped \begindata{ or \enddata{ at or after `from`,
// wrapping around once.  Returns npos when the stream has no markers.
size_t FindMarkerDirective(const std::string& data, size_t from) {
  static constexpr std::string_view kBegin = "\\begindata{";
  static constexpr std::string_view kEnd = "\\enddata{";
  for (int pass = 0; pass < 2; ++pass) {
    size_t start = pass == 0 ? std::min(from, data.size()) : 0;
    size_t limit = pass == 0 ? data.size() : std::min(from, data.size());
    for (size_t p = start; p < limit; ++p) {
      if (data[p] != '\\' || !UnescapedBackslash(data, p)) {
        continue;
      }
      if (data.compare(p, kBegin.size(), kBegin) == 0 ||
          data.compare(p, kEnd.size(), kEnd) == 0) {
        return p;
      }
    }
  }
  return std::string::npos;
}

// [line_start, line_end) of the line containing `pos`; line_end includes the
// trailing newline when present.
void LineBounds(const std::string& data, size_t pos, size_t* line_start, size_t* line_end) {
  size_t ls = data.rfind('\n', pos == 0 ? 0 : pos - 1);
  *line_start = (pos == 0 || ls == std::string::npos) ? 0 : ls + 1;
  size_t le = data.find('\n', pos);
  *line_end = le == std::string::npos ? data.size() : le + 1;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kBitFlip:
      return "bitflip";
    case FaultKind::kByteSet:
      return "byteset";
    case FaultKind::kLineSplice:
      return "linesplice";
    case FaultKind::kMarkerMangle:
      return "markermangle";
    case FaultKind::kDropLine:
      return "dropline";
    case FaultKind::kDuplicateLine:
      return "dupline";
    case FaultKind::kLoadFailure:
      return "loadfail";
    case FaultKind::kWmDrop:
      return "wmdrop";
  }
  return "unknown";
}

FaultPlan FaultPlan::FromSeed(uint64_t seed, size_t input_size, int stream_faults,
                              int load_failures, int wm_drops) {
  FaultPlan plan;
  plan.seed = seed;
  FaultRng rng(seed);
  for (int i = 0; i < stream_faults; ++i) {
    Fault fault;
    fault.offset = rng.Below(input_size == 0 ? 1 : input_size);
    // Weighted mix: byte-level damage is common, whole-stream truncation
    // rare (it destroys everything after the cut).
    int roll = rng.IntIn(0, 99);
    if (roll < 25) {
      fault.kind = FaultKind::kBitFlip;
      fault.arg = rng.IntIn(0, 7);
    } else if (roll < 40) {
      fault.kind = FaultKind::kByteSet;
      fault.arg = rng.IntIn(0, 255);
    } else if (roll < 55) {
      fault.kind = FaultKind::kLineSplice;
      fault.arg = rng.IntIn(81, 120);  // Filler length: guarantees >80 columns.
    } else if (roll < 75) {
      fault.kind = FaultKind::kMarkerMangle;
      fault.arg = rng.IntIn(0, 2);
    } else if (roll < 85) {
      fault.kind = FaultKind::kDropLine;
    } else if (roll < 95) {
      fault.kind = FaultKind::kDuplicateLine;
    } else {
      fault.kind = FaultKind::kTruncate;
      // Cut in the second half so a recoverable prefix survives.
      fault.offset = input_size / 2 + rng.Below(input_size / 2 + 1);
    }
    plan.faults.push_back(std::move(fault));
  }
  for (int i = 0; i < load_failures; ++i) {
    Fault fault;
    fault.kind = FaultKind::kLoadFailure;
    fault.detail = "*";
    fault.arg = rng.IntIn(1, 3);  // Consecutive attempts that fail.
    plan.faults.push_back(std::move(fault));
  }
  for (int i = 0; i < wm_drops; ++i) {
    plan.faults.push_back(Fault{FaultKind::kWmDrop, 0, 0, ""});
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out = "FaultPlan(seed=" + std::to_string(seed) + ")";
  for (const Fault& fault : faults) {
    out += "\n  " + std::string(FaultKindName(fault.kind)) + " @" +
           std::to_string(fault.offset) + " arg=" + std::to_string(fault.arg);
    if (!fault.detail.empty()) {
      out += " " + fault.detail;
    }
  }
  return out;
}

void FaultInjector::RecordDamage(size_t begin, size_t end, size_t bytes) {
  damage_.push_back(ByteRange{begin, end});
  damage_bytes_ += bytes;
}

void FaultInjector::ApplyStreamFault(const Fault& fault, std::string& data) {
  if (data.empty()) {
    return;
  }
  switch (fault.kind) {
    case FaultKind::kTruncate: {
      size_t cut = fault.offset % (data.size() + 1);
      RecordDamage(cut, cut, data.size() - cut);
      data.resize(cut);
      break;
    }
    case FaultKind::kBitFlip: {
      size_t off = fault.offset % data.size();
      data[off] = static_cast<char>(data[off] ^ (1u << (fault.arg & 7)));
      RecordDamage(off, off + 1, 1);
      break;
    }
    case FaultKind::kByteSet: {
      size_t off = fault.offset % data.size();
      data[off] = static_cast<char>(fault.arg & 0xFF);
      RecordDamage(off, off + 1, 1);
      break;
    }
    case FaultKind::kLineSplice: {
      size_t nl = data.find('\n', fault.offset % data.size());
      if (nl == std::string::npos) {
        nl = data.find('\n');
      }
      if (nl == std::string::npos) {
        break;
      }
      std::string filler(std::max(fault.arg, 81), '#');
      data.replace(nl, 1, filler);
      RecordDamage(nl, nl + filler.size(), filler.size() + 1);
      break;
    }
    case FaultKind::kMarkerMangle: {
      size_t marker = FindMarkerDirective(data, fault.offset % data.size());
      if (marker == std::string::npos) {
        break;
      }
      size_t brace = data.find('{', marker);
      size_t close = data.find('}', brace);
      size_t line_end = data.find('\n', brace);
      if (close == std::string::npos || (line_end != std::string::npos && line_end < close)) {
        break;  // Already damaged.
      }
      size_t comma = data.rfind(',', close);
      switch (fault.arg % 3) {
        case 0:  // \begindata{type} — the ",id" is gone.
          if (comma != std::string::npos && comma > brace) {
            data.erase(comma, close - comma);
            RecordDamage(marker, comma + 1, close - comma);
          }
          break;
        case 1:  // \begindata{type,id — the closing brace is gone.
          data.erase(close, 1);
          RecordDamage(marker, close, 1);
          break;
        default:  // \begindata{type,} — the id digits are gone.
          if (comma != std::string::npos && comma > brace && close > comma + 1) {
            data.erase(comma + 1, close - comma - 1);
            RecordDamage(marker, comma + 2, close - comma - 1);
          }
          break;
      }
      break;
    }
    case FaultKind::kDropLine: {
      size_t line_start = 0;
      size_t line_end = 0;
      LineBounds(data, fault.offset % data.size(), &line_start, &line_end);
      RecordDamage(line_start, line_start, line_end - line_start);
      data.erase(line_start, line_end - line_start);
      break;
    }
    case FaultKind::kDuplicateLine: {
      size_t line_start = 0;
      size_t line_end = 0;
      LineBounds(data, fault.offset % data.size(), &line_start, &line_end);
      std::string line = data.substr(line_start, line_end - line_start);
      data.insert(line_end, line);
      RecordDamage(line_end, line_end + line.size(), line.size());
      break;
    }
    case FaultKind::kLoadFailure:
    case FaultKind::kWmDrop:
      break;  // Subsystem faults are consumed through hooks, not here.
  }
}

std::string FaultInjector::Corrupt(std::string input) {
  damage_.clear();
  damage_bytes_ = 0;
  // Truncations last: the other faults should land in the surviving prefix.
  for (const Fault& fault : plan_.faults) {
    if (fault.kind != FaultKind::kTruncate) {
      ApplyStreamFault(fault, input);
    }
  }
  for (const Fault& fault : plan_.faults) {
    if (fault.kind == FaultKind::kTruncate) {
      ApplyStreamFault(fault, input);
    }
  }
  return input;
}

std::function<bool(std::string_view, int)> FaultInjector::MakeLoadFaultHook() {
  // Remaining failure budget per module pattern, shared by the returned hook.
  auto budgets = std::make_shared<std::map<std::string, int>>();
  for (const Fault& fault : plan_.faults) {
    if (fault.kind == FaultKind::kLoadFailure) {
      (*budgets)[fault.detail.empty() ? "*" : fault.detail] += std::max(fault.arg, 1);
    }
  }
  return [budgets](std::string_view module, int attempt) {
    (void)attempt;
    auto it = budgets->find(std::string(module));
    if (it == budgets->end()) {
      it = budgets->find("*");
    }
    if (it == budgets->end() || it->second <= 0) {
      return false;
    }
    --it->second;
    return true;
  };
}

int FaultInjector::WmDropCount() const {
  return static_cast<int>(std::count_if(plan_.faults.begin(), plan_.faults.end(),
                                        [](const Fault& fault) {
                                          return fault.kind == FaultKind::kWmDrop;
                                        }));
}

// ---- Transport faults -------------------------------------------------------

std::string_view TransportFaultKindName(TransportFaultKind kind) {
  switch (kind) {
    case TransportFaultKind::kDeliver:
      return "deliver";
    case TransportFaultKind::kDrop:
      return "drop";
    case TransportFaultKind::kDuplicate:
      return "duplicate";
    case TransportFaultKind::kCorrupt:
      return "corrupt";
    case TransportFaultKind::kPayloadCorrupt:
      return "payload-corrupt";
    case TransportFaultKind::kDelay:
      return "delay";
    case TransportFaultKind::kConnDrop:
      return "conn-drop";
  }
  return "?";
}

TransportFaultPlan TransportFaultPlan::FromSeed(uint64_t seed) {
  TransportFaultPlan plan;
  plan.seed = seed;
  FaultRng rng(seed ^ 0x5B1D4E9F2C7A6083ull);
  plan.drops = rng.IntIn(2, 6);
  plan.duplicates = rng.IntIn(1, 4);
  plan.corruptions = rng.IntIn(1, 4);
  plan.payload_corruptions = rng.IntIn(0, 2);
  plan.delays = rng.IntIn(2, 6);
  plan.conn_drops = rng.IntIn(0, 2);
  plan.rate = 0.02 + 0.10 * (rng.Below(1000) / 1000.0);
  return plan;
}

TransportFaultPlan TransportFaultPlan::FromSpec(std::string_view spec) {
  TransportFaultPlan plan;
  bool any_budget = false;
  bool rate_set = false;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string_view item = spec.substr(pos, comma == std::string_view::npos
                                                 ? std::string_view::npos
                                                 : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() : comma + 1;
    size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      continue;
    }
    std::string key(item.substr(0, eq));
    std::string value(item.substr(eq + 1));
    if (key == "seed") {
      plan.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "rate") {
      plan.rate = std::strtod(value.c_str(), nullptr);
      rate_set = true;
    } else {
      int budget = std::atoi(value.c_str());
      if (key == "drop") {
        plan.drops = budget;
      } else if (key == "dup") {
        plan.duplicates = budget;
      } else if (key == "corrupt") {
        plan.corruptions = budget;
      } else if (key == "payload") {
        plan.payload_corruptions = budget;
      } else if (key == "delay") {
        plan.delays = budget;
      } else if (key == "conn") {
        plan.conn_drops = budget;
      } else {
        continue;
      }
      any_budget = any_budget || budget > 0;
    }
  }
  if (any_budget && !rate_set) {
    plan.rate = 0.05;
  }
  return plan;
}

TransportFaultPlan TransportFaultPlan::FromEnv() {
  const char* env = std::getenv("ATK_NET_FAULTS");
  if (env == nullptr || *env == '\0') {
    return Clean();
  }
  return FromSpec(env);
}

std::string TransportFaultPlan::ToString() const {
  std::string out = "transport plan seed=" + std::to_string(seed);
  out += " rate=" + std::to_string(rate);
  out += " drop=" + std::to_string(drops);
  out += " dup=" + std::to_string(duplicates);
  out += " corrupt=" + std::to_string(corruptions);
  out += " payload=" + std::to_string(payload_corruptions);
  out += " delay=" + std::to_string(delays);
  out += " conn=" + std::to_string(conn_drops);
  return out;
}

TransportFault TransportFaultInjector::NextFate(bool snapshot_frame) {
  TransportFault fault;
  int remaining = plan_.drops + plan_.duplicates + plan_.corruptions +
                  plan_.payload_corruptions + plan_.delays + plan_.conn_drops;
  // The rng is consumed in a fixed order regardless of outcome, so the
  // decision stream depends only on the frame sequence, not on budgets.
  bool fire = rng_.Chance(plan_.rate);
  uint64_t pick = rng_.Below(6);
  int arg = rng_.IntIn(1, 4);
  if (remaining <= 0 || plan_.rate <= 0.0 || !fire) {
    return fault;
  }
  // Walk from the picked kind until one with budget remains (there is one).
  for (int step = 0; step < 6; ++step) {
    switch ((pick + step) % 6) {
      case 0:
        if (plan_.drops > 0) {
          --plan_.drops;
          ++injected_drop_;
          fault.kind = TransportFaultKind::kDrop;
          return fault;
        }
        break;
      case 1:
        if (plan_.duplicates > 0) {
          --plan_.duplicates;
          ++injected_dup_;
          fault.kind = TransportFaultKind::kDuplicate;
          return fault;
        }
        break;
      case 2:
        if (plan_.corruptions > 0) {
          --plan_.corruptions;
          ++injected_corrupt_;
          fault.kind = TransportFaultKind::kCorrupt;
          fault.arg = arg;
          return fault;
        }
        break;
      case 3:
        if (plan_.payload_corruptions > 0 && snapshot_frame) {
          --plan_.payload_corruptions;
          ++injected_payload_;
          fault.kind = TransportFaultKind::kPayloadCorrupt;
          fault.arg = arg;
          return fault;
        }
        break;
      case 4:
        if (plan_.delays > 0) {
          --plan_.delays;
          ++injected_delay_;
          fault.kind = TransportFaultKind::kDelay;
          fault.arg = arg;
          return fault;
        }
        break;
      case 5:
        if (plan_.conn_drops > 0) {
          --plan_.conn_drops;
          ++injected_conn_;
          fault.kind = TransportFaultKind::kConnDrop;
          return fault;
        }
        break;
    }
  }
  return fault;
}

void TransportFaultInjector::CorruptBytes(std::string& frame, size_t begin, size_t end) {
  if (begin >= end || end > frame.size()) {
    return;
  }
  size_t at = begin + rng_.Below(end - begin);
  frame[at] = static_cast<char>(frame[at] ^ (1u << rng_.Below(8)));
}

int TransportFaultInjector::injected(TransportFaultKind kind) const {
  switch (kind) {
    case TransportFaultKind::kDrop:
      return injected_drop_;
    case TransportFaultKind::kDuplicate:
      return injected_dup_;
    case TransportFaultKind::kCorrupt:
      return injected_corrupt_;
    case TransportFaultKind::kPayloadCorrupt:
      return injected_payload_;
    case TransportFaultKind::kDelay:
      return injected_delay_;
    case TransportFaultKind::kConnDrop:
      return injected_conn_;
    case TransportFaultKind::kDeliver:
      return 0;
  }
  return 0;
}

int TransportFaultInjector::total_injected() const {
  return injected_drop_ + injected_dup_ + injected_corrupt_ + injected_payload_ +
         injected_delay_ + injected_conn_;
}

}  // namespace atk
