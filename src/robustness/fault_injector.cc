#include "src/robustness/fault_injector.h"

#include <algorithm>
#include <map>
#include <memory>

namespace atk {
namespace {

// True when the backslash at `pos` is a directive initiator (not the second
// half of an escaped "\\").
bool UnescapedBackslash(const std::string& data, size_t pos) {
  size_t run = 0;
  while (pos > run && data[pos - run - 1] == '\\') {
    ++run;
  }
  return (run % 2) == 0;
}

// Finds the next unescaped \begindata{ or \enddata{ at or after `from`,
// wrapping around once.  Returns npos when the stream has no markers.
size_t FindMarkerDirective(const std::string& data, size_t from) {
  static constexpr std::string_view kBegin = "\\begindata{";
  static constexpr std::string_view kEnd = "\\enddata{";
  for (int pass = 0; pass < 2; ++pass) {
    size_t start = pass == 0 ? std::min(from, data.size()) : 0;
    size_t limit = pass == 0 ? data.size() : std::min(from, data.size());
    for (size_t p = start; p < limit; ++p) {
      if (data[p] != '\\' || !UnescapedBackslash(data, p)) {
        continue;
      }
      if (data.compare(p, kBegin.size(), kBegin) == 0 ||
          data.compare(p, kEnd.size(), kEnd) == 0) {
        return p;
      }
    }
  }
  return std::string::npos;
}

// [line_start, line_end) of the line containing `pos`; line_end includes the
// trailing newline when present.
void LineBounds(const std::string& data, size_t pos, size_t* line_start, size_t* line_end) {
  size_t ls = data.rfind('\n', pos == 0 ? 0 : pos - 1);
  *line_start = (pos == 0 || ls == std::string::npos) ? 0 : ls + 1;
  size_t le = data.find('\n', pos);
  *line_end = le == std::string::npos ? data.size() : le + 1;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kBitFlip:
      return "bitflip";
    case FaultKind::kByteSet:
      return "byteset";
    case FaultKind::kLineSplice:
      return "linesplice";
    case FaultKind::kMarkerMangle:
      return "markermangle";
    case FaultKind::kDropLine:
      return "dropline";
    case FaultKind::kDuplicateLine:
      return "dupline";
    case FaultKind::kLoadFailure:
      return "loadfail";
    case FaultKind::kWmDrop:
      return "wmdrop";
  }
  return "unknown";
}

FaultPlan FaultPlan::FromSeed(uint64_t seed, size_t input_size, int stream_faults,
                              int load_failures, int wm_drops) {
  FaultPlan plan;
  plan.seed = seed;
  FaultRng rng(seed);
  for (int i = 0; i < stream_faults; ++i) {
    Fault fault;
    fault.offset = rng.Below(input_size == 0 ? 1 : input_size);
    // Weighted mix: byte-level damage is common, whole-stream truncation
    // rare (it destroys everything after the cut).
    int roll = rng.IntIn(0, 99);
    if (roll < 25) {
      fault.kind = FaultKind::kBitFlip;
      fault.arg = rng.IntIn(0, 7);
    } else if (roll < 40) {
      fault.kind = FaultKind::kByteSet;
      fault.arg = rng.IntIn(0, 255);
    } else if (roll < 55) {
      fault.kind = FaultKind::kLineSplice;
      fault.arg = rng.IntIn(81, 120);  // Filler length: guarantees >80 columns.
    } else if (roll < 75) {
      fault.kind = FaultKind::kMarkerMangle;
      fault.arg = rng.IntIn(0, 2);
    } else if (roll < 85) {
      fault.kind = FaultKind::kDropLine;
    } else if (roll < 95) {
      fault.kind = FaultKind::kDuplicateLine;
    } else {
      fault.kind = FaultKind::kTruncate;
      // Cut in the second half so a recoverable prefix survives.
      fault.offset = input_size / 2 + rng.Below(input_size / 2 + 1);
    }
    plan.faults.push_back(std::move(fault));
  }
  for (int i = 0; i < load_failures; ++i) {
    Fault fault;
    fault.kind = FaultKind::kLoadFailure;
    fault.detail = "*";
    fault.arg = rng.IntIn(1, 3);  // Consecutive attempts that fail.
    plan.faults.push_back(std::move(fault));
  }
  for (int i = 0; i < wm_drops; ++i) {
    plan.faults.push_back(Fault{FaultKind::kWmDrop, 0, 0, ""});
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out = "FaultPlan(seed=" + std::to_string(seed) + ")";
  for (const Fault& fault : faults) {
    out += "\n  " + std::string(FaultKindName(fault.kind)) + " @" +
           std::to_string(fault.offset) + " arg=" + std::to_string(fault.arg);
    if (!fault.detail.empty()) {
      out += " " + fault.detail;
    }
  }
  return out;
}

void FaultInjector::RecordDamage(size_t begin, size_t end, size_t bytes) {
  damage_.push_back(ByteRange{begin, end});
  damage_bytes_ += bytes;
}

void FaultInjector::ApplyStreamFault(const Fault& fault, std::string& data) {
  if (data.empty()) {
    return;
  }
  switch (fault.kind) {
    case FaultKind::kTruncate: {
      size_t cut = fault.offset % (data.size() + 1);
      RecordDamage(cut, cut, data.size() - cut);
      data.resize(cut);
      break;
    }
    case FaultKind::kBitFlip: {
      size_t off = fault.offset % data.size();
      data[off] = static_cast<char>(data[off] ^ (1u << (fault.arg & 7)));
      RecordDamage(off, off + 1, 1);
      break;
    }
    case FaultKind::kByteSet: {
      size_t off = fault.offset % data.size();
      data[off] = static_cast<char>(fault.arg & 0xFF);
      RecordDamage(off, off + 1, 1);
      break;
    }
    case FaultKind::kLineSplice: {
      size_t nl = data.find('\n', fault.offset % data.size());
      if (nl == std::string::npos) {
        nl = data.find('\n');
      }
      if (nl == std::string::npos) {
        break;
      }
      std::string filler(std::max(fault.arg, 81), '#');
      data.replace(nl, 1, filler);
      RecordDamage(nl, nl + filler.size(), filler.size() + 1);
      break;
    }
    case FaultKind::kMarkerMangle: {
      size_t marker = FindMarkerDirective(data, fault.offset % data.size());
      if (marker == std::string::npos) {
        break;
      }
      size_t brace = data.find('{', marker);
      size_t close = data.find('}', brace);
      size_t line_end = data.find('\n', brace);
      if (close == std::string::npos || (line_end != std::string::npos && line_end < close)) {
        break;  // Already damaged.
      }
      size_t comma = data.rfind(',', close);
      switch (fault.arg % 3) {
        case 0:  // \begindata{type} — the ",id" is gone.
          if (comma != std::string::npos && comma > brace) {
            data.erase(comma, close - comma);
            RecordDamage(marker, comma + 1, close - comma);
          }
          break;
        case 1:  // \begindata{type,id — the closing brace is gone.
          data.erase(close, 1);
          RecordDamage(marker, close, 1);
          break;
        default:  // \begindata{type,} — the id digits are gone.
          if (comma != std::string::npos && comma > brace && close > comma + 1) {
            data.erase(comma + 1, close - comma - 1);
            RecordDamage(marker, comma + 2, close - comma - 1);
          }
          break;
      }
      break;
    }
    case FaultKind::kDropLine: {
      size_t line_start = 0;
      size_t line_end = 0;
      LineBounds(data, fault.offset % data.size(), &line_start, &line_end);
      RecordDamage(line_start, line_start, line_end - line_start);
      data.erase(line_start, line_end - line_start);
      break;
    }
    case FaultKind::kDuplicateLine: {
      size_t line_start = 0;
      size_t line_end = 0;
      LineBounds(data, fault.offset % data.size(), &line_start, &line_end);
      std::string line = data.substr(line_start, line_end - line_start);
      data.insert(line_end, line);
      RecordDamage(line_end, line_end + line.size(), line.size());
      break;
    }
    case FaultKind::kLoadFailure:
    case FaultKind::kWmDrop:
      break;  // Subsystem faults are consumed through hooks, not here.
  }
}

std::string FaultInjector::Corrupt(std::string input) {
  damage_.clear();
  damage_bytes_ = 0;
  // Truncations last: the other faults should land in the surviving prefix.
  for (const Fault& fault : plan_.faults) {
    if (fault.kind != FaultKind::kTruncate) {
      ApplyStreamFault(fault, input);
    }
  }
  for (const Fault& fault : plan_.faults) {
    if (fault.kind == FaultKind::kTruncate) {
      ApplyStreamFault(fault, input);
    }
  }
  return input;
}

std::function<bool(std::string_view, int)> FaultInjector::MakeLoadFaultHook() {
  // Remaining failure budget per module pattern, shared by the returned hook.
  auto budgets = std::make_shared<std::map<std::string, int>>();
  for (const Fault& fault : plan_.faults) {
    if (fault.kind == FaultKind::kLoadFailure) {
      (*budgets)[fault.detail.empty() ? "*" : fault.detail] += std::max(fault.arg, 1);
    }
  }
  return [budgets](std::string_view module, int attempt) {
    (void)attempt;
    auto it = budgets->find(std::string(module));
    if (it == budgets->end()) {
      it = budgets->find("*");
    }
    if (it == budgets->end() || it->second <= 0) {
      return false;
    }
    --it->second;
    return true;
  };
}

int FaultInjector::WmDropCount() const {
  return static_cast<int>(std::count_if(plan_.faults.begin(), plan_.faults.end(),
                                        [](const Fault& fault) {
                                          return fault.kind == FaultKind::kWmDrop;
                                        }));
}

}  // namespace atk
