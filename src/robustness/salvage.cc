#include "src/robustness/salvage.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <set>

#include "src/observability/observability.h"

namespace atk {
namespace {

bool IsDirectiveNameChar(char ch) {
  return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' || ch == '-';
}

int HexValue(char ch) {
  if (ch >= '0' && ch <= '9') {
    return ch - '0';
  }
  if (ch >= 'a' && ch <= 'f') {
    return ch - 'a' + 10;
  }
  if (ch >= 'A' && ch <= 'F') {
    return ch - 'A' + 10;
  }
  return -1;
}

// Same grammar as the reader's marker args: "type,id", id all digits.
bool ParseMarkerArgs(std::string_view args, std::string* type, int64_t* id) {
  size_t comma = args.rfind(',');
  if (comma == std::string_view::npos || comma == 0 || comma + 1 >= args.size()) {
    return false;
  }
  *type = std::string(args.substr(0, comma));
  int64_t value = 0;
  for (size_t i = comma + 1; i < args.size(); ++i) {
    char ch = args[i];
    if (!std::isdigit(static_cast<unsigned char>(ch))) {
      return false;
    }
    value = value * 10 + (ch - '0');
  }
  *id = value;
  return true;
}

// The scanner decomposes the raw input into a flat item list; the rebuild
// pass then repairs structure over items instead of bytes.
enum class ItemKind {
  kBytes,   // Clean payload (escapes, text, non-marker directives).
  kBegin,   // Well-formed \begindata{type,id} (span includes its newline).
  kEnd,     // Well-formed \enddata{type,id}.
  kDamage,  // A damaged directive; `type` is the attempted name ("" = lone
            // backslash).
};

struct Item {
  ItemKind kind;
  size_t begin = 0;
  size_t end = 0;
  std::string type;
  int64_t id = 0;
};

std::vector<Item> ScanItems(std::string_view input) {
  std::vector<Item> items;
  size_t run_start = 0;
  size_t p = 0;
  auto flush_bytes = [&](size_t upto) {
    if (upto > run_start) {
      items.push_back(Item{ItemKind::kBytes, run_start, upto, "", 0});
    }
  };
  while (p < input.size()) {
    if (input[p] != '\\') {
      ++p;
      continue;
    }
    // Escapes that remain ordinary payload, mirroring the reader exactly.
    if (p + 1 < input.size() && input[p + 1] == '\\') {
      p += 2;
      continue;
    }
    if (p + 5 < input.size() && input[p + 1] == 'x' && input[p + 2] == '{' &&
        HexValue(input[p + 3]) >= 0 && HexValue(input[p + 4]) >= 0 && input[p + 5] == '}') {
      p += 6;
      continue;
    }
    size_t q = p + 1;
    size_t name_start = q;
    while (q < input.size() && IsDirectiveNameChar(input[q])) {
      ++q;
    }
    if (q == name_start || q >= input.size() || input[q] != '{') {
      // Lone backslash: 1 byte of damage.
      flush_bytes(p);
      items.push_back(Item{ItemKind::kDamage, p, p + 1, "", 0});
      run_start = p + 1;
      ++p;
      continue;
    }
    std::string name(input.substr(name_start, q - name_start));
    size_t args_start = q + 1;
    size_t c = args_start;
    while (c < input.size() && input[c] != '}' && input[c] != '\n') {
      ++c;
    }
    if (c >= input.size() || input[c] != '}') {
      // Unterminated directive: damaged through the end of the line.
      flush_bytes(p);
      items.push_back(Item{ItemKind::kDamage, p, c, name, 0});
      run_start = c;
      p = c;
      continue;
    }
    std::string_view args = input.substr(args_start, c - args_start);
    size_t span_end = c + 1;
    if (name == "begindata" || name == "enddata") {
      std::string type;
      int64_t id = 0;
      if (ParseMarkerArgs(args, &type, &id)) {
        // One trailing newline belongs to the marker (reader rule).
        if (span_end < input.size() && input[span_end] == '\n') {
          ++span_end;
        }
        flush_bytes(p);
        items.push_back(Item{name == "begindata" ? ItemKind::kBegin : ItemKind::kEnd, p,
                             span_end, std::move(type), id});
      } else {
        flush_bytes(p);
        items.push_back(Item{ItemKind::kDamage, p, span_end, name, 0});
      }
      run_start = span_end;
      p = span_end;
      continue;
    }
    if (name == "view") {
      std::string type;
      int64_t id = 0;
      if (!ParseMarkerArgs(args, &type, &id)) {
        flush_bytes(p);
        items.push_back(Item{ItemKind::kDamage, p, span_end, name, 0});
        run_start = span_end;
        p = span_end;
        continue;
      }
    }
    // Any other well-formed \name{args} is clean payload.
    p = span_end;
  }
  flush_bytes(input.size());
  return items;
}

bool AllWhitespace(std::string_view bytes) {
  return bytes.find_first_not_of(" \t\r\n") == std::string_view::npos;
}

// WriteText-compatible escaping: the quarantined bytes become inert payload
// that round-trips byte-exact through any reader/writer cycle.
std::string EscapePayload(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char ch : raw) {
    unsigned char byte = static_cast<unsigned char>(ch);
    if (ch == '\\') {
      out += "\\\\";
    } else if (ch == '\n' || ch == '\t' || (byte >= 0x20 && byte < 0x7F)) {
      out += ch;
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x{%02x}", byte);
      out += buf;
    }
  }
  return out;
}

// Attempted type of a damaged marker: the args prefix up to ',' / '}'.
std::string AttemptedType(std::string_view slice) {
  size_t brace = slice.find('{');
  if (brace == std::string_view::npos) {
    return "";
  }
  size_t end = slice.find_first_of(",}", brace + 1);
  if (end == std::string_view::npos) {
    end = slice.size();
  }
  return std::string(slice.substr(brace + 1, end - brace - 1));
}

}  // namespace

void SalvageReport::PublishMetrics() const {
  using observability::Counter;
  using observability::MetricsRegistry;
  static Counter& runs = MetricsRegistry::Instance().counter("salvage.run.completed");
  static Counter& quarantined =
      MetricsRegistry::Instance().counter("salvage.subtree.quarantined");
  static Counter& closed = MetricsRegistry::Instance().counter("salvage.marker.closed");
  static Counter& escaped = MetricsRegistry::Instance().counter("salvage.backslash.escaped");
  static Counter& bytes = MetricsRegistry::Instance().counter("salvage.quarantine.dropped_bytes");
  static Counter& roots = MetricsRegistry::Instance().counter("salvage.root.synthesized");
  static Counter& resynced = MetricsRegistry::Instance().counter("salvage.stream.resynced");
  runs.Add(1);
  quarantined.Add(static_cast<uint64_t>(subtrees_quarantined));
  closed.Add(static_cast<uint64_t>(markers_closed));
  escaped.Add(static_cast<uint64_t>(backslashes_escaped));
  bytes.Add(bytes_quarantined);
  roots.Add(root_synthesized ? 1 : 0);
  resynced.Add(static_cast<uint64_t>(resyncs()));
}

std::string SalvageReport::ToString() const {
  std::string out = clean ? "clean" : "salvaged";
  out += ": " + std::to_string(subtrees_quarantined) + " quarantined (" +
         std::to_string(bytes_quarantined) + " bytes), " + std::to_string(markers_closed) +
         " markers closed, " + std::to_string(backslashes_escaped) + " backslashes escaped";
  if (root_synthesized) {
    out += ", root synthesized";
  }
  for (const SalvageAction& action : actions) {
    out += "\n  @" + std::to_string(action.offset) + " " + action.note;
  }
  out += "\n";
  return out;
}

std::string DataStreamSalvager::UnescapeQuarantine(std::string_view body) {
  std::string out;
  out.reserve(body.size());
  size_t p = 0;
  while (p < body.size()) {
    if (body[p] != '\\') {
      out += body[p++];
      continue;
    }
    if (p + 1 < body.size() && body[p + 1] == '\\') {
      out += '\\';
      p += 2;
      continue;
    }
    if (p + 5 < body.size() && body[p + 1] == 'x' && body[p + 2] == '{' &&
        HexValue(body[p + 3]) >= 0 && HexValue(body[p + 4]) >= 0 && body[p + 5] == '}') {
      out += static_cast<char>(HexValue(body[p + 3]) * 16 + HexValue(body[p + 4]));
      p += 6;
      continue;
    }
    out += body[p++];
  }
  return out;
}

namespace {

std::string RunSalvage(std::string_view input, SalvageReport& rep) {
  rep = SalvageReport{};
  if (input.empty()) {
    return "";
  }

  std::vector<Item> items = [&] {
    ATK_TRACE_SPAN("salvage.phase.scan");
    return ScanItems(input);
  }();
  ATK_TRACE_SPAN("salvage.phase.rebuild");

  struct Open {
    std::string type;
    int64_t id;
  };
  std::vector<Open> stack;
  std::string out;
  std::string root_end;      // The root's own \enddata, emitted after quarantines.
  std::string trailing;      // Whitespace after the root object.
  bool root_seen = false;
  bool root_closed = false;
  std::vector<std::pair<size_t, std::string>> quarantines;  // (offset, raw slice)
  std::set<int64_t> used_ids;
  int64_t max_id = 0;
  for (const Item& item : items) {
    if (item.kind == ItemKind::kBegin || item.kind == ItemKind::kEnd) {
      max_id = std::max(max_id, item.id);
    }
  }

  auto quarantine = [&](size_t offset, std::string_view slice, std::string note,
                        SalvageAction::Kind kind = SalvageAction::Kind::kQuarantined) {
    quarantines.emplace_back(offset, std::string(slice));
    rep.bytes_quarantined += slice.size();
    ++rep.subtrees_quarantined;
    rep.actions.push_back(SalvageAction{kind, offset, std::move(note)});
    rep.clean = false;
  };
  auto close_marker = [&](const Open& open) {
    out += "\\enddata{" + open.type + "," + std::to_string(open.id) + "}\n";
    ++rep.markers_closed;
    rep.actions.push_back(SalvageAction{SalvageAction::Kind::kClosedMarker, input.size(),
                                        "closed \\begindata{" + open.type + "," +
                                            std::to_string(open.id) + "}"});
    rep.clean = false;
  };

  // Finds the item index of the \enddata that closes a subtree starting at
  // item `from` (exclusive), for a subtree of `type`.  Returns npos-like -1
  // when the extent is not discoverable.
  auto find_subtree_end = [&](size_t from, const std::string& type) -> ptrdiff_t {
    int depth = 0;
    for (size_t j = from; j < items.size(); ++j) {
      if (items[j].kind == ItemKind::kBegin) {
        ++depth;
      } else if (items[j].kind == ItemKind::kEnd) {
        if (depth > 0) {
          --depth;
        } else if (items[j].type == type) {
          return static_cast<ptrdiff_t>(j);
        } else {
          return -1;  // A foreign \enddata at this level closes the parent.
        }
      }
    }
    return -1;
  };

  size_t i = 0;
  for (; i < items.size(); ++i) {
    const Item& item = items[i];
    std::string_view slice = input.substr(item.begin, item.end - item.begin);

    if (root_closed) {
      // Everything after the root object: whitespace is kept, anything else
      // (a second top-level object, stray damage) is quarantined wholesale.
      if (item.kind == ItemKind::kBytes && AllWhitespace(slice)) {
        trailing += slice;
        continue;
      }
      std::string_view rest = input.substr(item.begin);
      quarantine(item.begin, rest, "content after the root object (" +
                                       std::to_string(rest.size()) + " bytes)");
      break;
    }

    switch (item.kind) {
      case ItemKind::kBytes: {
        if (!root_seen) {
          if (AllWhitespace(slice)) {
            out += slice;
          } else {
            quarantine(item.begin, slice, "content before the root \\begindata");
          }
          break;
        }
        out += slice;
        break;
      }
      case ItemKind::kBegin: {
        if (used_ids.count(item.id) != 0) {
          // The writer guarantees stream-unique ids, so a repeat is always
          // damage (a duplicated marker line).
          quarantine(item.begin, slice,
                     "duplicate \\begindata{" + item.type + "," + std::to_string(item.id) + "}",
                     SalvageAction::Kind::kDroppedDuplicate);
          break;
        }
        used_ids.insert(item.id);
        root_seen = true;
        stack.push_back(Open{item.type, item.id});
        out += slice;
        break;
      }
      case ItemKind::kEnd: {
        ptrdiff_t match = -1;
        for (ptrdiff_t k = static_cast<ptrdiff_t>(stack.size()) - 1; k >= 0; --k) {
          if (stack[k].type == item.type && stack[k].id == item.id) {
            match = k;
            break;
          }
        }
        if (match < 0) {
          quarantine(item.begin, slice,
                     "stray \\enddata{" + item.type + "," + std::to_string(item.id) + "}");
          break;
        }
        // Close everything the stray nesting left open above the match.
        while (static_cast<ptrdiff_t>(stack.size()) - 1 > match) {
          close_marker(stack.back());
          stack.pop_back();
        }
        stack.pop_back();
        if (stack.empty()) {
          root_closed = true;
          root_end = slice;  // Held back until the quarantines are emitted.
        } else {
          out += slice;
        }
        break;
      }
      case ItemKind::kDamage: {
        if (item.type.empty() && root_seen) {
          // Lone backslash inside the document: escape in place, preserving
          // the byte without quarantining a whole region.
          out += "\\\\";
          ++rep.backslashes_escaped;
          rep.actions.push_back(SalvageAction{SalvageAction::Kind::kEscapedBackslash,
                                              item.begin, "escaped lone backslash"});
          rep.clean = false;
          break;
        }
        if (item.type == "begindata") {
          // A mangled \begindata: when its matching \enddata survives, the
          // whole damaged subtree quarantines as one unit so its directives
          // never leak into the enclosing object.
          std::string attempted = AttemptedType(slice);
          ptrdiff_t end_item = attempted.empty() ? -1 : find_subtree_end(i + 1, attempted);
          if (end_item >= 0) {
            size_t span_end = items[end_item].end;
            std::string_view subtree = input.substr(item.begin, span_end - item.begin);
            quarantine(item.begin, subtree,
                       "damaged subtree \\begindata{" + attempted + ",?} (" +
                           std::to_string(subtree.size()) + " bytes)");
            i = static_cast<size_t>(end_item);
            break;
          }
        }
        quarantine(item.begin, slice, "damaged directive: " +
                                          std::string(slice.substr(0, std::min<size_t>(
                                                                       slice.size(), 40))));
        break;
      }
    }
  }

  // Emit the quarantine objects inside the root body, then close whatever is
  // still open (truncation recovery), then the root's own end marker.
  auto emit_quarantines = [&](std::string* dst) {
    for (const auto& [offset, raw] : quarantines) {
      int64_t id = ++max_id;
      *dst += "\\begindata{" + std::string(kLostFoundType) + "," + std::to_string(id) + "}\n";
      *dst += EscapePayload(raw);
      *dst += "\n\\enddata{" + std::string(kLostFoundType) + "," + std::to_string(id) + "}\n";
      *dst += "\\view{" + std::string(kUnknownViewType) + "," + std::to_string(id) + "}\n";
    }
  };

  if (!root_seen) {
    // No readable root object at all: synthesize a text root holding the
    // quarantined input, so the result is a valid document.
    if (quarantines.empty() && AllWhitespace(input)) {
      rep.clean = input.empty();
      return std::string(input);
    }
    int64_t root_id = ++max_id;
    std::string wrapped = "\\begindata{text," + std::to_string(root_id) + "}\n";
    emit_quarantines(&wrapped);
    wrapped += "\\enddata{text," + std::to_string(root_id) + "}\n";
    rep.root_synthesized = true;
    rep.clean = false;
    rep.actions.push_back(SalvageAction{SalvageAction::Kind::kSynthesizedRoot, 0,
                                        "synthesized text root for unreadable input"});
    return wrapped;
  }

  if (!root_closed) {
    // Truncated: close the inner nesting first, then park the quarantines at
    // root level, then close the root.
    while (stack.size() > 1) {
      close_marker(stack.back());
      stack.pop_back();
    }
    emit_quarantines(&out);
    close_marker(stack.back());
    stack.pop_back();
    return out;
  }

  emit_quarantines(&out);
  out += root_end;
  out += trailing;
  return out;
}

}  // namespace

std::string DataStreamSalvager::Salvage(std::string_view input, SalvageReport* report) {
  ATK_TRACE_SPAN("salvage.run.total");
  SalvageReport local;
  SalvageReport& rep = report != nullptr ? *report : local;
  std::string out = RunSalvage(input, rep);
  // Single exit: every salvage path — clean, truncated, synthesized root —
  // flows through here, so the metrics and the report are the same data.
  rep.PublishMetrics();
  return out;
}

}  // namespace atk
