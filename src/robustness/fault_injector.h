// Deterministic fault injection over datastreams and subsystem hooks.
//
// The paper's §5 claims the external representation makes documents
// "partially recoverable when files are destroyed".  Testing that claim
// requires destroying files on purpose, reproducibly: a FaultPlan is derived
// from a single seed and describes exactly which bytes get damaged and which
// subsystems (module loader, window-system connection) fail, so every
// corruption scenario in tests and benches replays bit-for-bit.
//
// Stream faults model the real-world failure modes of 1988 mail transport
// and partial file destruction: truncation at arbitrary offsets, 8-bit
// damage / bit flips, line splices that violate the 80-column guideline,
// mangled \begindata/\enddata markers, and dropped or duplicated lines.

#ifndef ATK_SRC_ROBUSTNESS_FAULT_INJECTOR_H_
#define ATK_SRC_ROBUSTNESS_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace atk {

// xorshift64* — the same generator family as WorkloadRng, duplicated here so
// the robustness layer stays below src/workload in the link order.
class FaultRng {
 public:
  explicit FaultRng(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }
  int IntIn(int lo, int hi) { return lo + static_cast<int>(Below(hi - lo + 1)); }
  bool Chance(double p) { return (Next() >> 11) * 0x1.0p-53 < p; }

 private:
  uint64_t state_;
};

enum class FaultKind {
  // ---- Datastream faults (applied by FaultInjector::Corrupt) ----
  kTruncate,       // Cut the stream at `offset`.
  kBitFlip,        // XOR bit (arg & 7) of the byte at `offset`.
  kByteSet,        // Overwrite the byte at `offset` with (arg & 0xFF).
  kLineSplice,     // Replace the newline at/after `offset` with filler bytes,
                   // splicing two lines into one of well over 80 columns.
  kMarkerMangle,   // Damage the marker directive at/after `offset`:
                   // arg%3 == 0 drops the ",id", 1 drops the closing brace,
                   // 2 empties the id ("{type,}").
  kDropLine,       // Delete the whole line containing `offset`.
  kDuplicateLine,  // Duplicate the whole line containing `offset`.
  // ---- Subsystem faults (consumed through hooks) ----
  kLoadFailure,    // `detail` names the module ("*" = any); the next `arg`
                   // load attempts of it fail.
  kWmDrop,         // One window-system connection drop.
};

std::string_view FaultKindName(FaultKind kind);

struct Fault {
  FaultKind kind = FaultKind::kBitFlip;
  size_t offset = 0;
  int arg = 0;
  std::string detail;
};

// A damaged byte range, in the coordinates of the corrupted output (for
// deletions, `begin == end` marks the cut point).
struct ByteRange {
  size_t begin = 0;
  size_t end = 0;
};

struct FaultPlan {
  uint64_t seed = 0;
  std::vector<Fault> faults;

  // Derives a reproducible plan from one seed: `stream_faults` datastream
  // corruptions for an input of `input_size` bytes, plus `load_failures`
  // module-load faults and `wm_drops` connection drops.
  static FaultPlan FromSeed(uint64_t seed, size_t input_size, int stream_faults = 3,
                            int load_failures = 0, int wm_drops = 0);

  // One line per fault, for logs and SalvageReport correlation.
  std::string ToString() const;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  const FaultPlan& plan() const { return plan_; }

  // Applies the plan's datastream faults to `input` and returns the damaged
  // bytes.  Deterministic: same plan + same input = same output.  Truncation
  // is always applied last so the other faults land in the surviving prefix.
  std::string Corrupt(std::string input);

  // Byte ranges touched by the last Corrupt() call, in output coordinates.
  const std::vector<ByteRange>& damage() const { return damage_; }
  // Total damaged bytes of the last Corrupt() (deletions count the bytes
  // removed) — the budget the salvager's loss bound is measured against.
  size_t damage_bytes() const { return damage_bytes_; }

  // A Loader fault hook honouring the plan's kLoadFailure faults: attempt
  // numbers are per-module, and the hook fails while a matching fault still
  // has failures left.  Safe to install with Loader::SetLoadFaultHook.
  std::function<bool(std::string_view module, int attempt)> MakeLoadFaultHook();

  // Number of kWmDrop faults in the plan (the caller injects that many
  // connection drops via WmWindow::InjectConnectionDrop).
  int WmDropCount() const;

 private:
  void ApplyStreamFault(const Fault& fault, std::string& data);
  void RecordDamage(size_t begin, size_t end, size_t bytes);

  FaultPlan plan_;
  std::vector<ByteRange> damage_;
  size_t damage_bytes_ = 0;
};

}  // namespace atk

#endif  // ATK_SRC_ROBUSTNESS_FAULT_INJECTOR_H_
