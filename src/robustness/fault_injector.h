// Deterministic fault injection over datastreams and subsystem hooks.
//
// The paper's §5 claims the external representation makes documents
// "partially recoverable when files are destroyed".  Testing that claim
// requires destroying files on purpose, reproducibly: a FaultPlan is derived
// from a single seed and describes exactly which bytes get damaged and which
// subsystems (module loader, window-system connection) fail, so every
// corruption scenario in tests and benches replays bit-for-bit.
//
// Stream faults model the real-world failure modes of 1988 mail transport
// and partial file destruction: truncation at arbitrary offsets, 8-bit
// damage / bit flips, line splices that violate the 80-column guideline,
// mangled \begindata/\enddata markers, and dropped or duplicated lines.

#ifndef ATK_SRC_ROBUSTNESS_FAULT_INJECTOR_H_
#define ATK_SRC_ROBUSTNESS_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace atk {

// xorshift64* — the same generator family as WorkloadRng, duplicated here so
// the robustness layer stays below src/workload in the link order.
class FaultRng {
 public:
  explicit FaultRng(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }
  int IntIn(int lo, int hi) { return lo + static_cast<int>(Below(hi - lo + 1)); }
  bool Chance(double p) { return (Next() >> 11) * 0x1.0p-53 < p; }

 private:
  uint64_t state_;
};

enum class FaultKind {
  // ---- Datastream faults (applied by FaultInjector::Corrupt) ----
  kTruncate,       // Cut the stream at `offset`.
  kBitFlip,        // XOR bit (arg & 7) of the byte at `offset`.
  kByteSet,        // Overwrite the byte at `offset` with (arg & 0xFF).
  kLineSplice,     // Replace the newline at/after `offset` with filler bytes,
                   // splicing two lines into one of well over 80 columns.
  kMarkerMangle,   // Damage the marker directive at/after `offset`:
                   // arg%3 == 0 drops the ",id", 1 drops the closing brace,
                   // 2 empties the id ("{type,}").
  kDropLine,       // Delete the whole line containing `offset`.
  kDuplicateLine,  // Duplicate the whole line containing `offset`.
  // ---- Subsystem faults (consumed through hooks) ----
  kLoadFailure,    // `detail` names the module ("*" = any); the next `arg`
                   // load attempts of it fail.
  kWmDrop,         // One window-system connection drop.
};

// ---- Transport faults (PR 6, src/server/) -----------------------------------
//
// Frame-level failure modes of the simulated client/server link.  Unlike the
// byte-level datastream faults above, these act on whole encoded frames in
// flight; the reliable channel (src/server/channel.h) is expected to recover
// from every one of them.
enum class TransportFaultKind {
  kDeliver,         // No fault: the frame goes through untouched.
  kDrop,            // The frame vanishes.
  kDuplicate,       // The frame is delivered twice.
  kCorrupt,         // A random byte of the encoded frame is flipped; the
                    // receiver's CRC32 check discards it (≈ a drop, but the
                    // corruption-detection path is what gets exercised).
  kPayloadCorrupt,  // Payload bytes are damaged and the CRC recomputed —
                    // models corruption *before* framing (a damaged document
                    // at rest).  Applied only to snapshot frames; the client
                    // recovers through the DataStreamSalvager.
  kDelay,           // Held back `arg` ticks; later frames overtake (reorder).
  kConnDrop,        // The connection is severed after this frame.
};

std::string_view TransportFaultKindName(TransportFaultKind kind);

// The fate assigned to one frame about to enter the link.
struct TransportFault {
  TransportFaultKind kind = TransportFaultKind::kDeliver;
  int arg = 0;  // kDelay: ticks to hold; kCorrupt/kPayloadCorrupt: rng salt.
};

// A seeded, budgeted plan of transport faults.  Each fault kind has a finite
// budget derived from the seed, so every run is deterministic *and* every
// session is guaranteed to quiesce: once the budgets run dry the link is
// clean and retransmission converges.  `NextFate` consumes the shared rng in
// a fixed order, so the same plan replayed over the same frame sequence
// makes the same decisions bit-for-bit.
struct TransportFaultPlan {
  uint64_t seed = 0;
  // Per-kind budgets (remaining faults of that kind).
  int drops = 0;
  int duplicates = 0;
  int corruptions = 0;
  int payload_corruptions = 0;
  int delays = 0;
  int conn_drops = 0;
  // Fault probability per frame while budget remains.
  double rate = 0.0;

  // A plan with every budget zeroed: a clean link.
  static TransportFaultPlan Clean() { return TransportFaultPlan{}; }

  // Derives budgets and a rate from one seed (the 64-seed sweep shape):
  // a handful of each kind, rate in [0.02, 0.12].
  static TransportFaultPlan FromSeed(uint64_t seed);

  // Parses the ATK_NET_FAULTS environment knob:
  //   "seed=7,drop=4,dup=2,corrupt=3,payload=1,delay=4,conn=1,rate=0.05"
  // Missing keys default to 0 (rate defaults to 0.05 when any budget is
  // set).  Returns Clean() for an empty/unset spec.
  static TransportFaultPlan FromSpec(std::string_view spec);
  static TransportFaultPlan FromEnv();  // ATK_NET_FAULTS, or Clean().

  std::string ToString() const;
};

// Stateful executor of a TransportFaultPlan: one per link direction pair.
// Decides the fate of each frame deterministically and decrements budgets.
class TransportFaultInjector {
 public:
  TransportFaultInjector() : TransportFaultInjector(TransportFaultPlan::Clean()) {}
  explicit TransportFaultInjector(TransportFaultPlan plan)
      : plan_(plan), rng_(plan.seed ^ 0xF7A3C9E5D1B20417ull) {}

  const TransportFaultPlan& plan() const { return plan_; }

  // The fate of the next frame.  `snapshot_frame` gates kPayloadCorrupt
  // (only snapshot payloads model at-rest corruption).
  TransportFault NextFate(bool snapshot_frame);

  // Flips one deterministic byte/bit of `frame` in [begin, end).
  void CorruptBytes(std::string& frame, size_t begin, size_t end);

  // Faults injected so far, by kind (diagnostics / test assertions).
  int injected(TransportFaultKind kind) const;
  int total_injected() const;

 private:
  TransportFaultPlan plan_;
  FaultRng rng_;
  int injected_drop_ = 0, injected_dup_ = 0, injected_corrupt_ = 0,
      injected_payload_ = 0, injected_delay_ = 0, injected_conn_ = 0;
};

std::string_view FaultKindName(FaultKind kind);

struct Fault {
  FaultKind kind = FaultKind::kBitFlip;
  size_t offset = 0;
  int arg = 0;
  std::string detail;
};

// A damaged byte range, in the coordinates of the corrupted output (for
// deletions, `begin == end` marks the cut point).
struct ByteRange {
  size_t begin = 0;
  size_t end = 0;
};

struct FaultPlan {
  uint64_t seed = 0;
  std::vector<Fault> faults;

  // Derives a reproducible plan from one seed: `stream_faults` datastream
  // corruptions for an input of `input_size` bytes, plus `load_failures`
  // module-load faults and `wm_drops` connection drops.
  static FaultPlan FromSeed(uint64_t seed, size_t input_size, int stream_faults = 3,
                            int load_failures = 0, int wm_drops = 0);

  // One line per fault, for logs and SalvageReport correlation.
  std::string ToString() const;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  const FaultPlan& plan() const { return plan_; }

  // Applies the plan's datastream faults to `input` and returns the damaged
  // bytes.  Deterministic: same plan + same input = same output.  Truncation
  // is always applied last so the other faults land in the surviving prefix.
  std::string Corrupt(std::string input);

  // Byte ranges touched by the last Corrupt() call, in output coordinates.
  const std::vector<ByteRange>& damage() const { return damage_; }
  // Total damaged bytes of the last Corrupt() (deletions count the bytes
  // removed) — the budget the salvager's loss bound is measured against.
  size_t damage_bytes() const { return damage_bytes_; }

  // A Loader fault hook honouring the plan's kLoadFailure faults: attempt
  // numbers are per-module, and the hook fails while a matching fault still
  // has failures left.  Safe to install with Loader::SetLoadFaultHook.
  std::function<bool(std::string_view module, int attempt)> MakeLoadFaultHook();

  // Number of kWmDrop faults in the plan (the caller injects that many
  // connection drops via WmWindow::InjectConnectionDrop).
  int WmDropCount() const;

 private:
  void ApplyStreamFault(const Fault& fault, std::string& data);
  void RecordDamage(size_t begin, size_t end, size_t bytes);

  FaultPlan plan_;
  std::vector<ByteRange> damage_;
  size_t damage_bytes_ = 0;
};

}  // namespace atk

#endif  // ATK_SRC_ROBUSTNESS_FAULT_INJECTOR_H_
