// Datastream salvage — the recovery half of §5's "partially recoverable
// when files are destroyed".
//
// The salvager takes a possibly-damaged external representation and produces
// a well-formed one, by re-synchronizing on \begindata/\enddata markers:
//
//   * well-formed, properly nested content is copied through byte-exact;
//   * unmatched nesting is closed (a truncated file gets its open markers
//     closed; an \enddata matching an outer marker closes the markers it
//     skips over);
//   * damaged bytes — mangled markers, unterminated directives, stray
//     \enddata, content outside the root object — are quarantined verbatim
//     (escaped) into `lostfound` objects appended to the root object's body,
//     each with a \view{unknownview,id} reference so every component that
//     re-reads the document keeps the quarantine alive across save cycles;
//   * a mangled \begindata whose subtree extent is still discoverable (its
//     matching \enddata survives) quarantines the whole damaged subtree as
//     one unit, so the damage does not leak the subtree's directives into
//     the enclosing object;
//   * lone backslashes that cannot start a directive are escaped in place
//     (1 byte of damage never costs more than 1 byte of repair).
//
// Guarantees, tested in tests/test_robustness.cc:
//   * salvage always terminates and its output parses with no diagnostics;
//   * salvage is idempotent (salvaging salvaged output is the identity);
//   * undamaged sibling subtrees are recovered byte-exact;
//   * a salvage → save → re-read cycle is lossless outside the quarantined
//     regions — the quarantine itself preserves the damaged bytes verbatim.

#ifndef ATK_SRC_ROBUSTNESS_SALVAGE_H_
#define ATK_SRC_ROBUSTNESS_SALVAGE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/class_system/status.h"

namespace atk {

// The data type quarantined regions are wrapped in.  No module provides a
// class for it on purpose: readers fall back to UnknownObject (raw body kept
// verbatim) and the placeholder UnknownView renders it as a gray box.
inline constexpr std::string_view kLostFoundType = "lostfound";
// The view class referenced by quarantine placements.
inline constexpr std::string_view kUnknownViewType = "unknownview";

struct SalvageAction {
  enum class Kind {
    kQuarantined,       // Damaged bytes moved to a lostfound object.
    kClosedMarker,      // Synthesized a missing \enddata.
    kEscapedBackslash,  // Lone backslash escaped in place.
    kSynthesizedRoot,   // Input had no readable root object; one was created.
    kDroppedDuplicate,  // A duplicated marker line was quarantined.
  };

  Kind kind;
  size_t offset = 0;  // Offset in the damaged input.
  std::string note;
};

struct SalvageReport {
  // True when the input was already well-formed (output == input).
  bool clean = true;
  int markers_closed = 0;
  int subtrees_quarantined = 0;
  int backslashes_escaped = 0;
  size_t bytes_quarantined = 0;
  bool root_synthesized = false;
  std::vector<SalvageAction> actions;

  // Marker re-synchronizations performed: every point where the rebuild
  // pass had to abandon byte-copying and realign on marker structure.
  int resyncs() const { return markers_closed + subtrees_quarantined; }

  // Publishes this report into the observability counters
  // (salvage.subtree.quarantined, salvage.marker.closed, ...).  Called by
  // DataStreamSalvager::Salvage on every run, from these same fields, so
  // the report text and the metrics can never disagree
  // (tests/test_observability.cc asserts the equivalence).
  void PublishMetrics() const;

  Status status() const {
    return clean ? Status::Ok()
                 : Status::Corrupt("salvaged: " + std::to_string(subtrees_quarantined) +
                                   " region(s) quarantined, " +
                                   std::to_string(markers_closed) + " marker(s) closed");
  }
  std::string ToString() const;
};

class DataStreamSalvager {
 public:
  // Repairs `input` into a well-formed datastream.  `report` (optional)
  // receives the structured account of every repair.
  std::string Salvage(std::string_view input, SalvageReport* report = nullptr);

  // Recovers the original damaged bytes from a lostfound body produced by
  // Salvage (undoes the payload escaping).  Forensics / tests.
  static std::string UnescapeQuarantine(std::string_view body);
};

}  // namespace atk

#endif  // ATK_SRC_ROBUSTNESS_SALVAGE_H_
