// Integer pixel geometry used throughout the toolkit.

#ifndef ATK_SRC_GRAPHICS_GEOMETRY_H_
#define ATK_SRC_GRAPHICS_GEOMETRY_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace atk {

struct Point {
  int x = 0;
  int y = 0;

  friend bool operator==(const Point&, const Point&) = default;
  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
};

struct Size {
  int width = 0;
  int height = 0;

  friend bool operator==(const Size&, const Size&) = default;
  bool IsEmpty() const { return width <= 0 || height <= 0; }
};

// Half-open rectangle: covers x in [x, x+width), y in [y, y+height).
struct Rect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;

  friend bool operator==(const Rect&, const Rect&) = default;

  static Rect FromCorners(int left, int top, int right, int bottom) {
    return Rect{left, top, right - left, bottom - top};
  }

  int left() const { return x; }
  int top() const { return y; }
  int right() const { return x + width; }
  int bottom() const { return y + height; }
  Point origin() const { return {x, y}; }
  Size size() const { return {width, height}; }
  Point center() const { return {x + width / 2, y + height / 2}; }

  bool IsEmpty() const { return width <= 0 || height <= 0; }

  bool Contains(Point p) const {
    return p.x >= x && p.x < right() && p.y >= y && p.y < bottom();
  }

  bool Contains(const Rect& r) const {
    return !r.IsEmpty() && r.x >= x && r.y >= y && r.right() <= right() && r.bottom() <= bottom();
  }

  bool Intersects(const Rect& r) const {
    return !IsEmpty() && !r.IsEmpty() && r.x < right() && x < r.right() && r.y < bottom() &&
           y < r.bottom();
  }

  Rect Intersect(const Rect& r) const {
    int l = std::max(x, r.x);
    int t = std::max(y, r.y);
    int rr = std::min(right(), r.right());
    int b = std::min(bottom(), r.bottom());
    if (rr <= l || b <= t) {
      return Rect{};
    }
    return FromCorners(l, t, rr, b);
  }

  // Smallest rectangle covering both (empty operands are ignored).
  Rect Union(const Rect& r) const {
    if (IsEmpty()) {
      return r;
    }
    if (r.IsEmpty()) {
      return *this;
    }
    return FromCorners(std::min(x, r.x), std::min(y, r.y), std::max(right(), r.right()),
                       std::max(bottom(), r.bottom()));
  }

  Rect Translated(int dx, int dy) const { return Rect{x + dx, y + dy, width, height}; }

  // Shrinks (positive margin) or grows (negative) on all sides.
  Rect Inset(int margin) const {
    return Rect{x + margin, y + margin, width - 2 * margin, height - 2 * margin};
  }

  int64_t Area() const { return IsEmpty() ? 0 : int64_t{width} * height; }

  std::string ToString() const;
};

}  // namespace atk

#endif  // ATK_SRC_GRAPHICS_GEOMETRY_H_
