#include "src/graphics/geometry.h"

#include <sstream>

namespace atk {

std::string Rect::ToString() const {
  std::ostringstream out;
  out << "[" << x << "," << y << " " << width << "x" << height << "]";
  return out.str();
}

}  // namespace atk
