#include "src/graphics/cursor_shape.h"

namespace atk {

const char* CursorShapeName(CursorShape shape) {
  switch (shape) {
    case CursorShape::kArrow:
      return "arrow";
    case CursorShape::kIBeam:
      return "ibeam";
    case CursorShape::kCrosshair:
      return "crosshair";
    case CursorShape::kWait:
      return "wait";
    case CursorShape::kHorizontalBars:
      return "hbars";
    case CursorShape::kVerticalBars:
      return "vbars";
    case CursorShape::kHand:
      return "hand";
    case CursorShape::kCaret:
      return "caret";
  }
  return "unknown";
}

}  // namespace atk
