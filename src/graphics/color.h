// Pixel colors.  1988 Andrew ran on 1-bit displays; we keep 24-bit RGB so the
// chart views and raster scaling have something to show, but the standard
// palette below is what the toolkit itself uses.

#ifndef ATK_SRC_GRAPHICS_COLOR_H_
#define ATK_SRC_GRAPHICS_COLOR_H_

#include <cstdint>

namespace atk {

struct Color {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  friend bool operator==(const Color&, const Color&) = default;

  uint32_t Packed() const {
    return (uint32_t{r} << 16) | (uint32_t{g} << 8) | uint32_t{b};
  }

  Color Inverted() const {
    return Color{static_cast<uint8_t>(255 - r), static_cast<uint8_t>(255 - g),
                 static_cast<uint8_t>(255 - b)};
  }

  // Perceived luminance in [0, 255].
  int Luminance() const { return (299 * r + 587 * g + 114 * b) / 1000; }
};

inline constexpr Color kBlack{0, 0, 0};
inline constexpr Color kWhite{255, 255, 255};
inline constexpr Color kGray{128, 128, 128};
inline constexpr Color kLightGray{192, 192, 192};
inline constexpr Color kDarkGray{64, 64, 64};

// Categorical series used by the chart views.
inline constexpr Color kSeriesColors[] = {
    Color{31, 119, 180}, Color{255, 127, 14}, Color{44, 160, 44},  Color{214, 39, 40},
    Color{148, 103, 189}, Color{140, 86, 75},  Color{227, 119, 194}, Color{127, 127, 127},
};
inline constexpr int kSeriesColorCount = 8;

}  // namespace atk

#endif  // ATK_SRC_GRAPHICS_COLOR_H_
