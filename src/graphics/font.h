// Bitmap fonts.
//
// The toolkit's FontDesc abstraction (§8) names a font by family/size/style;
// each window-system backend maps the description onto whatever it can
// render.  Both simulated backends share this bitmap implementation: a 5x7
// pixel master face ("andy"), integer-scaled for sizes, with bold synthesized
// by double-striking and italic by shearing.  Glyphs are authored as ASCII
// art in font_data.cc, so the face is inspectable and testable.

#ifndef ATK_SRC_GRAPHICS_FONT_H_
#define ATK_SRC_GRAPHICS_FONT_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace atk {

// Style bits, OR-able.
enum FontStyle : unsigned {
  kPlain = 0,
  kBold = 1u << 0,
  kItalic = 1u << 1,
};

struct FontSpec {
  std::string family = "andy";
  int size = 10;  // Nominal point size; 10 and 12 map to scale 1, 20/24 to 2...
  unsigned style = kPlain;

  friend bool operator==(const FontSpec&, const FontSpec&) = default;

  FontSpec WithStyle(unsigned s) const { return FontSpec{family, size, s}; }
  FontSpec WithSize(int sz) const { return FontSpec{family, sz, style}; }
  std::string ToString() const;
  // Parses "family12b", "andy10", "andy24bi" (the Andrew font-name style).
  static FontSpec Parse(std::string_view name);
};

// One master glyph: 5 columns x 7 rows, bit (x, y) set when inked.
struct Glyph {
  std::array<uint8_t, 7> rows{};  // Low 5 bits used, bit 4 = leftmost column.
  bool Bit(int x, int y) const {
    if (x < 0 || x >= 5 || y < 0 || y >= 7) {
      return false;
    }
    return (rows[static_cast<size_t>(y)] >> (4 - x)) & 1u;
  }
};

// A concrete, sized font.  Instances are interned: Get() returns a reference
// valid for the process lifetime.
class Font {
 public:
  static const Font& Get(const FontSpec& spec);
  // The default 10-point plain face.
  static const Font& Default();

  const FontSpec& spec() const { return spec_; }
  int scale() const { return scale_; }

  // Vertical metrics, in pixels.
  int ascent() const { return 7 * scale_; }
  int descent() const { return 2 * scale_; }
  int height() const { return ascent() + descent(); }

  // Horizontal advance of one character (monospace face).
  int advance() const { return 6 * scale_ + ((spec_.style & kBold) ? 1 : 0); }

  int StringWidth(std::string_view text) const {
    return static_cast<int>(text.size()) * advance();
  }

  // True when pixel (x, y) of `ch`'s cell is inked.  (0, 0) is the top-left
  // of the cell; the baseline sits at y == ascent().  Style synthesis (bold
  // strike, italic shear) is already applied.
  bool GlyphBit(char ch, int x, int y) const;

  // Index of the first character cell at or after pixel `px` (hit-testing).
  int CharIndexAt(int px) const {
    if (px < 0) {
      return 0;
    }
    return px / advance();
  }

 private:
  explicit Font(const FontSpec& spec);

  FontSpec spec_;
  int scale_ = 1;
};

// Access to the master glyph table (font_data.cc).
const Glyph& MasterGlyph(char ch);

}  // namespace atk

#endif  // ATK_SRC_GRAPHICS_FONT_H_
