#include "src/graphics/region.h"

#include <algorithm>
#include <sstream>

#include "src/observability/memory.h"

namespace atk {
namespace {

observability::MemoryAccount& RegionMemAccount() {
  static observability::MemoryAccount& account =
      observability::MemoryAccountant::Instance().account("graphics.mem.region");
  return account;
}

}  // namespace

void Region::SyncMemSlow(int64_t bytes) const {
  RegionMemAccount().Charge(bytes - mem_accounted_);
  mem_accounted_ = bytes;
}

void Region::ReleaseMem() const {
  if (mem_accounted_ != 0) {
    RegionMemAccount().Release(mem_accounted_);
    mem_accounted_ = 0;
  }
}

Region::Region(const Rect& rect) {
  if (!rect.IsEmpty()) {
    bands_.push_back(Band{rect.y, rect.bottom(), 0, 1});
    spans_.push_back(Span{rect.x, rect.right()});
    SyncMem();
  }
}

void Region::Clear() {
  bands_.clear();
  spans_.clear();
  pending_.clear();
  rects_cache_.clear();
  rects_cache_valid_ = false;
  // clear() keeps capacity, so the charge is unchanged on purpose: the
  // storage is still resident (the IM reuses cleared damage regions).
}

Region Region::UnionOf(const std::vector<Rect>& rects, size_t lo, size_t hi) {
  if (hi - lo == 1) {
    return Region(rects[lo]);
  }
  size_t mid = lo + (hi - lo) / 2;
  return Combine(UnionOf(rects, lo, mid), UnionOf(rects, mid, hi), Op::kUnion);
}

void Region::EnsureCanonical() const {
  if (pending_.empty()) {
    return;
  }
  // Empty pending_ before combining: Combine re-enters EnsureCanonical.
  std::vector<Rect> batch;
  batch.swap(pending_);
  // Sorting first keeps the divide-and-conquer merges mostly band-local.
  std::sort(batch.begin(), batch.end(), [](const Rect& a, const Rect& b) {
    return a.y != b.y ? a.y < b.y : a.x < b.x;
  });
  Region merged = UnionOf(batch, 0, batch.size());
  if (!bands_.empty()) {
    Region self;
    self.bands_ = std::move(bands_);
    self.spans_ = std::move(spans_);
    merged = Combine(self, merged, Op::kUnion);
  }
  bands_ = std::move(merged.bands_);
  spans_ = std::move(merged.spans_);
  rects_cache_valid_ = false;
  SyncMem();
}

const std::vector<Rect>& Region::rects() const {
  EnsureCanonical();
  if (!rects_cache_valid_) {
    rects_cache_.clear();
    rects_cache_.reserve(spans_.size());
    for (const Band& band : bands_) {
      for (uint32_t i = band.first; i < band.last; ++i) {
        rects_cache_.push_back(
            Rect::FromCorners(spans_[i].x1, band.y1, spans_[i].x2, band.y2));
      }
    }
    rects_cache_valid_ = true;
    SyncMem();
  }
  return rects_cache_;
}

int64_t Region::Area() const {
  EnsureCanonical();
  int64_t area = 0;
  for (const Band& band : bands_) {
    int64_t width = 0;
    for (uint32_t i = band.first; i < band.last; ++i) {
      width += spans_[i].x2 - spans_[i].x1;
    }
    area += width * (band.y2 - band.y1);
  }
  return area;
}

Rect Region::Bounds() const {
  EnsureCanonical();
  if (bands_.empty()) {
    return Rect{};
  }
  int left = spans_[bands_.front().first].x1;
  int right = spans_[bands_.front().last - 1].x2;
  for (const Band& band : bands_) {
    left = std::min(left, spans_[band.first].x1);
    right = std::max(right, spans_[band.last - 1].x2);
  }
  return Rect::FromCorners(left, bands_.front().y1, right, bands_.back().y2);
}

Rect Region::BoundsWithin(const Rect& clip) const {
  EnsureCanonical();
  if (clip.IsEmpty() || bands_.empty()) {
    return Rect{};
  }
  int left = clip.right();
  int right = clip.left();
  int top = clip.bottom();
  int bottom = clip.top();
  for (size_t bi = FirstBandBelow(clip.y); bi < bands_.size(); ++bi) {
    const Band& band = bands_[bi];
    if (band.y1 >= clip.bottom()) {
      break;
    }
    bool hit = false;
    for (uint32_t i = band.first; i < band.last; ++i) {
      const Span& span = spans_[i];
      if (span.x2 <= clip.left()) {
        continue;
      }
      if (span.x1 >= clip.right()) {
        break;
      }
      left = std::min(left, std::max(span.x1, clip.left()));
      right = std::max(right, std::min(span.x2, clip.right()));
      hit = true;
    }
    if (hit) {
      top = std::min(top, std::max(band.y1, clip.top()));
      bottom = std::max(bottom, std::min(band.y2, clip.bottom()));
    }
  }
  if (right <= left || bottom <= top) {
    return Rect{};
  }
  return Rect::FromCorners(left, top, right, bottom);
}

size_t Region::FirstBandBelow(int y) const {
  size_t lo = 0;
  size_t hi = bands_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (bands_[mid].y2 <= y) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool Region::Contains(Point p) const {
  EnsureCanonical();
  size_t bi = FirstBandBelow(p.y);
  if (bi >= bands_.size() || bands_[bi].y1 > p.y) {
    return false;
  }
  const Band& band = bands_[bi];
  uint32_t lo = band.first;
  uint32_t hi = band.last;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (spans_[mid].x2 <= p.x) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < band.last && spans_[lo].x1 <= p.x;
}

bool Region::Intersects(const Rect& rect) const {
  if (rect.IsEmpty()) {
    return false;
  }
  EnsureCanonical();
  for (size_t bi = FirstBandBelow(rect.y); bi < bands_.size(); ++bi) {
    const Band& band = bands_[bi];
    if (band.y1 >= rect.bottom()) {
      return false;
    }
    for (uint32_t i = band.first; i < band.last; ++i) {
      if (spans_[i].x2 <= rect.left()) {
        continue;
      }
      if (spans_[i].x1 >= rect.right()) {
        break;
      }
      return true;
    }
  }
  return false;
}

bool Region::Covers(const Rect& rect) const {
  if (rect.IsEmpty()) {
    return true;
  }
  EnsureCanonical();
  int y = rect.y;
  for (size_t bi = FirstBandBelow(rect.y); bi < bands_.size() && y < rect.bottom(); ++bi) {
    const Band& band = bands_[bi];
    if (band.y1 > y) {
      return false;  // Vertical gap inside the rect.
    }
    // Spans are canonical (non-touching), so covering an x interval takes a
    // single span.
    bool covered = false;
    for (uint32_t i = band.first; i < band.last; ++i) {
      if (spans_[i].x1 <= rect.left() && spans_[i].x2 >= rect.right()) {
        covered = true;
        break;
      }
      if (spans_[i].x1 > rect.left()) {
        break;
      }
    }
    if (!covered) {
      return false;
    }
    y = band.y2;
  }
  return y >= rect.bottom();
}

uint64_t Region::Fingerprint() const {
  EnsureCanonical();
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis.
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const Band& band : bands_) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(band.y1)) << 32 |
        static_cast<uint32_t>(band.y2));
    for (uint32_t i = band.first; i < band.last; ++i) {
      mix(static_cast<uint64_t>(static_cast<uint32_t>(spans_[i].x1)) << 32 |
          static_cast<uint32_t>(spans_[i].x2));
    }
  }
  return h;
}

bool operator==(const Region& a, const Region& b) {
  a.EnsureCanonical();
  b.EnsureCanonical();
  if (a.bands_.size() != b.bands_.size() || a.spans_.size() != b.spans_.size()) {
    return false;
  }
  for (size_t i = 0; i < a.bands_.size(); ++i) {
    const Region::Band& ba = a.bands_[i];
    const Region::Band& bb = b.bands_[i];
    if (ba.y1 != bb.y1 || ba.y2 != bb.y2 || ba.last - ba.first != bb.last - bb.first) {
      return false;
    }
    for (uint32_t j = 0; j < ba.last - ba.first; ++j) {
      if (!(a.spans_[ba.first + j] == b.spans_[bb.first + j])) {
        return false;
      }
    }
  }
  return true;
}

// ---- Set algebra -----------------------------------------------------------

void Region::MergeSpans(const Span* a, size_t na, const Span* b, size_t nb, Op op,
                        std::vector<Span>& out) {
  out.clear();
  switch (op) {
    case Op::kUnion: {
      size_t ia = 0;
      size_t ib = 0;
      while (ia < na || ib < nb) {
        Span next;
        if (ib >= nb || (ia < na && a[ia].x1 <= b[ib].x1)) {
          next = a[ia++];
        } else {
          next = b[ib++];
        }
        if (!out.empty() && next.x1 <= out.back().x2) {
          out.back().x2 = std::max(out.back().x2, next.x2);  // Merge touching.
        } else {
          out.push_back(next);
        }
      }
      break;
    }
    case Op::kSubtract: {
      size_t ib = 0;
      for (size_t ia = 0; ia < na; ++ia) {
        int x = a[ia].x1;
        const int end = a[ia].x2;
        while (ib < nb && b[ib].x2 <= x) {
          ++ib;
        }
        size_t jb = ib;
        while (x < end) {
          if (jb >= nb || b[jb].x1 >= end) {
            out.push_back(Span{x, end});
            break;
          }
          if (b[jb].x1 > x) {
            out.push_back(Span{x, b[jb].x1});
          }
          x = std::max(x, b[jb].x2);
          ++jb;
        }
      }
      break;
    }
    case Op::kIntersect: {
      size_t ia = 0;
      size_t ib = 0;
      while (ia < na && ib < nb) {
        int x1 = std::max(a[ia].x1, b[ib].x1);
        int x2 = std::min(a[ia].x2, b[ib].x2);
        if (x1 < x2) {
          out.push_back(Span{x1, x2});
        }
        if (a[ia].x2 < b[ib].x2) {
          ++ia;
        } else {
          ++ib;
        }
      }
      break;
    }
  }
}

void Region::AppendBand(int y1, int y2, const Span* spans, size_t count) {
  if (count == 0 || y1 >= y2) {
    return;
  }
  if (!bands_.empty()) {
    Band& prev = bands_.back();
    if (prev.y2 == y1 && prev.last - prev.first == count &&
        std::equal(spans, spans + count, spans_.begin() + prev.first)) {
      prev.y2 = y2;  // Coalesce vertically.
      return;
    }
  }
  uint32_t first = static_cast<uint32_t>(spans_.size());
  spans_.insert(spans_.end(), spans, spans + count);
  bands_.push_back(Band{y1, y2, first, static_cast<uint32_t>(spans_.size())});
}

Region Region::Combine(const Region& a, const Region& b, Op op) {
  a.EnsureCanonical();
  b.EnsureCanonical();
  Region out;
  out.bands_.reserve(a.bands_.size() + b.bands_.size());
  out.spans_.reserve(a.spans_.size() + b.spans_.size());
  std::vector<Span> merged;
  size_t ia = 0;
  size_t ib = 0;
  const size_t na = a.bands_.size();
  const size_t nb = b.bands_.size();
  // Sweep top to bottom over the y boundaries of both band lists; for each
  // maximal interval in which the active span lists are constant, merge them.
  int64_t y = INT64_MIN;
  while (ia < na || ib < nb) {
    while (ia < na && a.bands_[ia].y2 <= y) {
      ++ia;
    }
    while (ib < nb && b.bands_[ib].y2 <= y) {
      ++ib;
    }
    if (ia >= na && ib >= nb) {
      break;
    }
    int64_t y_next = INT64_MAX;
    bool a_on = false;
    bool b_on = false;
    if (ia < na) {
      const Band& band = a.bands_[ia];
      if (band.y1 <= y) {
        a_on = true;
        y_next = std::min<int64_t>(y_next, band.y2);
      } else {
        y_next = std::min<int64_t>(y_next, band.y1);
      }
    }
    if (ib < nb) {
      const Band& band = b.bands_[ib];
      if (band.y1 <= y) {
        b_on = true;
        y_next = std::min<int64_t>(y_next, band.y2);
      } else {
        y_next = std::min<int64_t>(y_next, band.y1);
      }
    }
    if (y == INT64_MIN) {
      // First iteration: start at the topmost band edge.
      y = y_next;
      continue;
    }
    if (a_on || b_on) {
      const Span* sa = a_on ? a.spans_.data() + a.bands_[ia].first : nullptr;
      size_t ca = a_on ? a.bands_[ia].last - a.bands_[ia].first : 0;
      const Span* sb = b_on ? b.spans_.data() + b.bands_[ib].first : nullptr;
      size_t cb = b_on ? b.bands_[ib].last - b.bands_[ib].first : 0;
      MergeSpans(sa, ca, sb, cb, op, merged);
      out.AppendBand(static_cast<int>(y), static_cast<int>(y_next), merged.data(),
                     merged.size());
    }
    y = y_next;
  }
  return out;
}

void Region::Add(const Rect& rect) {
  if (rect.IsEmpty()) {
    return;
  }
  // Deferred: the rect joins the pending batch; the next read folds the
  // whole batch in with one divide-and-conquer union.
  pending_.push_back(rect);
  rects_cache_valid_ = false;
  SyncMem();
}

void Region::Add(const Region& other) {
  if (other.IsEmpty()) {
    return;
  }
  if (&other == this) {
    return;
  }
  other.EnsureCanonical();
  if (IsEmpty()) {
    *this = other;
    return;
  }
  EnsureCanonical();
  *this = Combine(*this, other, Op::kUnion);
}

void Region::Subtract(const Rect& rect) {
  if (rect.IsEmpty() || IsEmpty() || !Intersects(rect)) {
    return;
  }
  *this = Combine(*this, Region(rect), Op::kSubtract);
}

void Region::Subtract(const Region& other) {
  if (other.IsEmpty() || IsEmpty()) {
    return;
  }
  other.EnsureCanonical();
  EnsureCanonical();
  *this = Combine(*this, other, Op::kSubtract);
}

void Region::IntersectWith(const Rect& rect) {
  if (rect.IsEmpty() || IsEmpty()) {
    Clear();
    return;
  }
  EnsureCanonical();
  *this = Combine(*this, Region(rect), Op::kIntersect);
}

void Region::IntersectWith(const Region& other) {
  if (other.IsEmpty() || IsEmpty()) {
    Clear();
    return;
  }
  other.EnsureCanonical();
  EnsureCanonical();
  *this = Combine(*this, other, Op::kIntersect);
}

void Region::Translate(int dx, int dy) {
  for (Band& band : bands_) {
    band.y1 += dy;
    band.y2 += dy;
  }
  for (Span& span : spans_) {
    span.x1 += dx;
    span.x2 += dx;
  }
  for (Rect& r : pending_) {
    r = r.Translated(dx, dy);
  }
  rects_cache_valid_ = false;
}

std::string Region::ToString() const {
  std::ostringstream out;
  out << "Region{";
  const std::vector<Rect>& pieces = rects();
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << pieces[i].ToString();
  }
  out << "}";
  return out.str();
}

}  // namespace atk
