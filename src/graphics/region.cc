#include "src/graphics/region.h"

#include <sstream>

namespace atk {
namespace {

// Appends the parts of `victim` not covered by `cut` (at most four rects).
void AppendDifference(const Rect& victim, const Rect& cut, std::vector<Rect>& out) {
  Rect overlap = victim.Intersect(cut);
  if (overlap.IsEmpty()) {
    out.push_back(victim);
    return;
  }
  // Band above the overlap.
  if (overlap.y > victim.y) {
    out.push_back(Rect::FromCorners(victim.left(), victim.top(), victim.right(), overlap.top()));
  }
  // Band below.
  if (overlap.bottom() < victim.bottom()) {
    out.push_back(
        Rect::FromCorners(victim.left(), overlap.bottom(), victim.right(), victim.bottom()));
  }
  // Left/right slivers within the overlap's vertical band.
  if (overlap.left() > victim.left()) {
    out.push_back(
        Rect::FromCorners(victim.left(), overlap.top(), overlap.left(), overlap.bottom()));
  }
  if (overlap.right() < victim.right()) {
    out.push_back(
        Rect::FromCorners(overlap.right(), overlap.top(), victim.right(), overlap.bottom()));
  }
}

}  // namespace

Region::Region(const Rect& rect) {
  if (!rect.IsEmpty()) {
    rects_.push_back(rect);
  }
}

int64_t Region::Area() const {
  int64_t area = 0;
  for (const Rect& r : rects_) {
    area += r.Area();
  }
  return area;
}

Rect Region::Bounds() const {
  Rect bounds;
  for (const Rect& r : rects_) {
    bounds = bounds.Union(r);
  }
  return bounds;
}

bool Region::Contains(Point p) const {
  for (const Rect& r : rects_) {
    if (r.Contains(p)) {
      return true;
    }
  }
  return false;
}

bool Region::Intersects(const Rect& rect) const {
  for (const Rect& r : rects_) {
    if (r.Intersects(rect)) {
      return true;
    }
  }
  return false;
}

void Region::Add(const Rect& rect) {
  if (rect.IsEmpty()) {
    return;
  }
  // Keep disjointness by inserting only the parts of `rect` not yet covered.
  std::vector<Rect> pending = {rect};
  for (const Rect& existing : rects_) {
    std::vector<Rect> next;
    for (const Rect& piece : pending) {
      AppendDifference(piece, existing, next);
    }
    pending = std::move(next);
    if (pending.empty()) {
      return;  // Entirely covered already.
    }
  }
  rects_.insert(rects_.end(), pending.begin(), pending.end());
}

void Region::Add(const Region& other) {
  for (const Rect& r : other.rects_) {
    Add(r);
  }
}

void Region::Subtract(const Rect& rect) {
  if (rect.IsEmpty() || rects_.empty()) {
    return;
  }
  std::vector<Rect> next;
  for (const Rect& existing : rects_) {
    AppendDifference(existing, rect, next);
  }
  rects_ = std::move(next);
}

void Region::IntersectWith(const Rect& rect) {
  std::vector<Rect> next;
  for (const Rect& existing : rects_) {
    Rect overlap = existing.Intersect(rect);
    if (!overlap.IsEmpty()) {
      next.push_back(overlap);
    }
  }
  rects_ = std::move(next);
}

void Region::Translate(int dx, int dy) {
  for (Rect& r : rects_) {
    r = r.Translated(dx, dy);
  }
}

bool Region::Covers(const Rect& rect) const {
  if (rect.IsEmpty()) {
    return true;
  }
  std::vector<Rect> uncovered = {rect};
  for (const Rect& existing : rects_) {
    std::vector<Rect> next;
    for (const Rect& piece : uncovered) {
      AppendDifference(piece, existing, next);
    }
    uncovered = std::move(next);
    if (uncovered.empty()) {
      return true;
    }
  }
  return false;
}

std::string Region::ToString() const {
  std::ostringstream out;
  out << "Region{";
  for (size_t i = 0; i < rects_.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << rects_[i].ToString();
  }
  out << "}";
  return out.str();
}

}  // namespace atk
