// The drawable — §4's third basic object type.
//
// A Graphic hides the output model of the display medium.  It carries a small
// graphics state (current point, colors, font, line width, transfer mode), a
// coordinate origin, and a clip; all drawing ops take coordinates local to
// the view that owns the graphic.  Views draw *only* through their Graphic,
// which is what makes repointing a view at a printer drawable sufficient for
// printing, and what keeps everything above this layer window-system
// independent.
//
// The base class implements every op in terms of two device primitives
// (DevicePlot / DeviceRead), so a backend only supplies pixels.  Backends may
// override DeviceFillRect for speed.  Each public op is tallied, which gives
// the simulated X11 backend its protocol-request accounting.

#ifndef ATK_SRC_GRAPHICS_GRAPHIC_H_
#define ATK_SRC_GRAPHICS_GRAPHIC_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "src/class_system/object.h"
#include "src/graphics/color.h"
#include "src/graphics/font.h"
#include "src/graphics/geometry.h"
#include "src/graphics/pixel_image.h"

namespace atk {

enum class TransferMode {
  kCopy,    // dst = src
  kOr,      // dst = darker(dst, src)   (union of ink on a white page)
  kXor,     // dst = dst ^ src          (reversible highlight)
  kInvert,  // dst = ~dst               (src color ignored)
};

class Graphic : public Object {
  ATK_DECLARE_CLASS(Graphic)

 public:
  Graphic();
  ~Graphic() override = default;

  // ---- Graphics state ----------------------------------------------------
  void MoveTo(Point p) { current_point_ = p; }
  Point current_point() const { return current_point_; }

  void SetForeground(Color c) { foreground_ = c; }
  void SetBackground(Color c) { background_ = c; }
  Color foreground() const { return foreground_; }
  Color background() const { return background_; }

  void SetFont(const FontSpec& spec) { font_ = &Font::Get(spec); }
  const Font& font() const { return *font_; }

  void SetLineWidth(int w) { line_width_ = w < 1 ? 1 : w; }
  int line_width() const { return line_width_; }

  void SetTransferMode(TransferMode m) { transfer_mode_ = m; }
  TransferMode transfer_mode() const { return transfer_mode_; }

  // ---- Geometry ----------------------------------------------------------
  // The local coordinate space runs from (0,0) to (width, height) of the
  // view's allocation.
  Rect LocalBounds() const { return Rect{0, 0, device_bounds_.width, device_bounds_.height}; }
  int width() const { return device_bounds_.width; }
  int height() const { return device_bounds_.height; }
  // Where local (0,0) sits on the device (window framebuffer).
  Point device_origin() const { return device_bounds_.origin(); }
  Rect device_bounds() const { return device_bounds_; }

  // ---- Clipping ----------------------------------------------------------
  // Clip rectangles are in local coordinates and nest: a pushed clip is
  // intersected with the current one.
  void PushClip(const Rect& local);
  void PopClip();
  Rect CurrentClipLocal() const;

  // ---- Drawing operations (local coordinates) -----------------------------
  void DrawPoint(Point p);
  void LineTo(Point p);
  void DrawLine(Point a, Point b);
  void DrawRect(const Rect& r);
  void FillRect(const Rect& r);
  void FillRect(const Rect& r, Color c);
  // Fills with the background color.
  void EraseRect(const Rect& r);
  // Inverts pixels (selection highlight), regardless of transfer mode.
  void InvertRect(const Rect& r);
  void DrawEllipse(const Rect& box);
  void FillEllipse(const Rect& box);
  void DrawPolyline(std::span<const Point> points);
  void DrawPolygon(std::span<const Point> points);
  void FillPolygon(std::span<const Point> points);
  // `top_left` anchors the first character cell; the baseline sits at
  // top_left.y + font().ascent().
  void DrawString(Point top_left, std::string_view text);
  void DrawImage(const PixelImage& src, const Rect& src_rect, Point dst_top_left);
  // Fills the whole local bounds with the background color.
  void Clear();

  // ---- Sub-graphics ------------------------------------------------------
  // A graphic for a child view: origin advanced to `local_bounds`' corner,
  // clip restricted to it.  The child cannot draw outside its allocation.
  virtual std::unique_ptr<Graphic> CreateSub(const Rect& local_bounds) = 0;

  // ---- Accounting ----------------------------------------------------------
  // Count of public drawing ops issued through this graphic (not including
  // sub-graphics).  The window systems use this as the request count.
  uint64_t op_count() const { return op_count_; }
  void ResetOpCount() { op_count_ = 0; }

 protected:
  // Writes one device pixel; called only with coordinates already inside the
  // clip.  `c` has the transfer mode already applied.
  virtual void DevicePlot(int x, int y, Color c) = 0;
  // Reads one device pixel (for Xor/Invert modes).
  virtual Color DeviceRead(int x, int y) const = 0;
  // Fast path for solid rectangles; `device_rect` is clipped already and the
  // transfer mode is kCopy.  Default loops DevicePlot.
  virtual void DeviceFillRect(const Rect& device_rect, Color c);

  // Initializes geometry; for use by backend constructors.
  void SetDeviceBounds(const Rect& device_bounds);

  void CountOp() { ++op_count_; }

  // Applies origin, clip, and transfer mode, then plots.
  void Plot(int local_x, int local_y, Color c);

  // Current clip in device coordinates.
  const Rect& device_clip() const { return device_clip_; }

 private:
  void FillRectInternal(const Rect& local, Color c);
  void ThickLine(Point a, Point b, Color c);
  void ScanFillPolygon(std::span<const Point> points, Color c);

  Rect device_bounds_;
  Rect device_clip_;
  std::vector<Rect> clip_stack_;

  Point current_point_;
  Color foreground_ = kBlack;
  Color background_ = kWhite;
  const Font* font_;
  int line_width_ = 1;
  TransferMode transfer_mode_ = TransferMode::kCopy;
  uint64_t op_count_ = 0;
};

// A Graphic rendering into a PixelImage (the framebuffer of a simulated
// window or an offscreen buffer).  The image must outlive the graphic.
class ImageGraphic : public Graphic {
  ATK_DECLARE_CLASS(ImageGraphic)

 public:
  ImageGraphic();  // Unusable until Attach(); needed for named construction.
  ImageGraphic(PixelImage* target, const Rect& device_bounds);

  void Attach(PixelImage* target, const Rect& device_bounds);

  std::unique_ptr<Graphic> CreateSub(const Rect& local_bounds) override;

  PixelImage* target() const { return target_; }

 protected:
  void DevicePlot(int x, int y, Color c) override;
  Color DeviceRead(int x, int y) const override;
  void DeviceFillRect(const Rect& device_rect, Color c) override;

 private:
  PixelImage* target_ = nullptr;
};

}  // namespace atk

#endif  // ATK_SRC_GRAPHICS_GRAPHIC_H_
