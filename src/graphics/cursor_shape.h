// Cursor shapes.  §8 lists Cursor among the six classes a port must supply;
// the shape vocabulary itself is window-system independent and lives here.

#ifndef ATK_SRC_GRAPHICS_CURSOR_SHAPE_H_
#define ATK_SRC_GRAPHICS_CURSOR_SHAPE_H_

namespace atk {

enum class CursorShape {
  kArrow,
  kIBeam,
  kCrosshair,
  kWait,
  kHorizontalBars,  // The frame's divider-drag cursor.
  kVerticalBars,
  kHand,
  kCaret,
};

const char* CursorShapeName(CursorShape shape);

}  // namespace atk

#endif  // ATK_SRC_GRAPHICS_CURSOR_SHAPE_H_
