// Damage regions: a set of pixels kept as disjoint rectangles.
//
// The interaction manager coalesces WantUpdate requests into one Region per
// update cycle, then walks the view tree once, repainting exactly the damaged
// area (§3's "posting an update request up the tree").

#ifndef ATK_SRC_GRAPHICS_REGION_H_
#define ATK_SRC_GRAPHICS_REGION_H_

#include <string>
#include <vector>

#include "src/graphics/geometry.h"

namespace atk {

class Region {
 public:
  Region() = default;
  explicit Region(const Rect& rect);

  bool IsEmpty() const { return rects_.empty(); }
  void Clear() { rects_.clear(); }

  // The disjoint rectangles making up the region.
  const std::vector<Rect>& rects() const { return rects_; }
  size_t rect_count() const { return rects_.size(); }

  // Total pixel count.
  int64_t Area() const;

  // Smallest rectangle covering the region (empty rect when empty).
  Rect Bounds() const;

  bool Contains(Point p) const;

  // True when any pixel of `rect` is in the region.
  bool Intersects(const Rect& rect) const;

  // Set algebra.  All keep the disjointness invariant.
  void Add(const Rect& rect);
  void Add(const Region& other);
  void Subtract(const Rect& rect);
  void IntersectWith(const Rect& rect);
  void Translate(int dx, int dy);

  // True when the region covers every pixel of `rect`.
  bool Covers(const Rect& rect) const;

  std::string ToString() const;

 private:
  // Disjoint, non-empty rectangles.  Not banded; adequate for the rect counts
  // a view tree produces per cycle (tens, not thousands).
  std::vector<Rect> rects_;
};

}  // namespace atk

#endif  // ATK_SRC_GRAPHICS_REGION_H_
