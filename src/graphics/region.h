// Damage regions: a set of pixels kept as a y-x banded span structure.
//
// The interaction manager coalesces WantUpdate requests into one Region per
// update cycle, then walks the view tree once, repainting exactly the damaged
// area (§3's "posting an update request up the tree").
//
// Representation (pixman/X11 style): the region is a sorted list of
// non-overlapping horizontal *bands*, each covering the y interval
// [y1, y2) with a sorted list of disjoint, non-touching x *spans*
// [x1, x2).  Vertically adjacent bands with identical span lists are
// coalesced.  This keeps every set operation near-linear in the number of
// spans — under a storm of thousands of posted rects per cycle the flat
// rect-vector design this replaced went quadratic (every new rect was
// diffed against every stored fragment).
//
// Added rects are additionally *batched*: Add(Rect) appends to a pending
// list in O(1), and the batch is folded in by one divide-and-conquer union
// sweep the next time anything inspects the region.  The damage pattern is
// exactly many-adds-then-one-read (views post all cycle long, the IM reads
// once per cycle), so a k-rect storm costs one O(|R| log k) merge instead
// of k incremental ones.
//
// Complexity, for |R| = span count (amortized, post-flush):
//   Add(Rect)                                     O(1) until next read
//   Add/Subtract/IntersectWith (rect or region)   O(|R| + |other|)
//   Contains(Point)                               O(log bands + log spans)
//   Intersects/Covers/BoundsWithin(rect)          O(overlapping spans)
//   Area/Bounds/Translate/Fingerprint             O(|R|)

#ifndef ATK_SRC_GRAPHICS_REGION_H_
#define ATK_SRC_GRAPHICS_REGION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graphics/geometry.h"

namespace atk {

class Region {
 public:
  Region() = default;
  explicit Region(const Rect& rect);
  // Copies/moves/destruction keep the `graphics.mem.region` account exact:
  // every Region charges its band/span/pending storage and releases it on
  // death (see SyncMem).  The fast path is a capacity compare; the
  // accountant is touched only when storage actually changed size.
  Region(const Region& other)
      : bands_(other.bands_),
        spans_(other.spans_),
        pending_(other.pending_),
        rects_cache_(other.rects_cache_),
        rects_cache_valid_(other.rects_cache_valid_) {
    SyncMem();
  }
  Region& operator=(const Region& other) {
    if (this != &other) {
      bands_ = other.bands_;
      spans_ = other.spans_;
      pending_ = other.pending_;
      rects_cache_ = other.rects_cache_;
      rects_cache_valid_ = other.rects_cache_valid_;
      SyncMem();
    }
    return *this;
  }
  Region(Region&& other) noexcept
      : bands_(std::move(other.bands_)),
        spans_(std::move(other.spans_)),
        pending_(std::move(other.pending_)),
        rects_cache_(std::move(other.rects_cache_)),
        rects_cache_valid_(other.rects_cache_valid_),
        mem_accounted_(other.mem_accounted_) {
    other.mem_accounted_ = 0;
    other.rects_cache_valid_ = false;
  }
  Region& operator=(Region&& other) noexcept {
    if (this != &other) {
      bands_.swap(other.bands_);
      spans_.swap(other.spans_);
      pending_.swap(other.pending_);
      rects_cache_.swap(other.rects_cache_);
      std::swap(rects_cache_valid_, other.rects_cache_valid_);
      std::swap(mem_accounted_, other.mem_accounted_);
      SyncMem();
      other.SyncMem();  // `other` holds our old storage until it dies.
    }
    return *this;
  }
  ~Region() { ReleaseMem(); }

  bool IsEmpty() const { return bands_.empty() && pending_.empty(); }
  void Clear();

  // The disjoint rectangles making up the region (one per span, band by
  // band, top to bottom).  Materialized lazily from the band structure.
  const std::vector<Rect>& rects() const;
  size_t rect_count() const {
    EnsureCanonical();
    return spans_.size();
  }

  // Banded-structure accessors (observability and tests).
  size_t band_count() const {
    EnsureCanonical();
    return bands_.size();
  }
  size_t span_count() const {
    EnsureCanonical();
    return spans_.size();
  }

  // Total pixel count.
  int64_t Area() const;

  // Smallest rectangle covering the region (empty rect when empty).
  Rect Bounds() const;

  // Smallest rectangle covering region ∩ clip, computed without
  // materializing the intersection (the update pass runs this per view).
  Rect BoundsWithin(const Rect& clip) const;

  bool Contains(Point p) const;

  // True when any pixel of `rect` is in the region.
  bool Intersects(const Rect& rect) const;

  // Set algebra.  All keep the banded invariants (disjoint bands, sorted
  // non-touching spans, maximal vertical coalescing).
  void Add(const Rect& rect);
  void Add(const Region& other);
  void Subtract(const Rect& rect);
  void Subtract(const Region& other);
  void IntersectWith(const Rect& rect);
  void IntersectWith(const Region& other);
  void Translate(int dx, int dy);

  // True when the region covers every pixel of `rect`.
  bool Covers(const Rect& rect) const;

  // Order-independent structural hash of the band/span lists.  Two equal
  // regions always hash equal; the update pass uses this to memoize
  // per-view clips between cycles (a collision only costs a stale clip,
  // and 64-bit FNV makes that vanishingly unlikely).
  uint64_t Fingerprint() const;

  friend bool operator==(const Region& a, const Region& b);

  std::string ToString() const;

 private:
  // One x interval [x1, x2) within a band.
  struct Span {
    int x1 = 0;
    int x2 = 0;
    friend bool operator==(const Span&, const Span&) = default;
  };
  // One y interval [y1, y2) whose spans live in spans_[first, last).
  struct Band {
    int y1 = 0;
    int y2 = 0;
    uint32_t first = 0;
    uint32_t last = 0;
  };

  enum class Op { kUnion, kSubtract, kIntersect };

  static Region Combine(const Region& a, const Region& b, Op op);
  static void MergeSpans(const Span* a, size_t na, const Span* b, size_t nb, Op op,
                         std::vector<Span>& out);
  // Folds pending_ into the band structure (one batched union).
  void EnsureCanonical() const;
  // Canonical union of rects[lo, hi) by divide and conquer.
  static Region UnionOf(const std::vector<Rect>& rects, size_t lo, size_t hi);
  // Appends [y1,y2) x `spans`, coalescing with the previous band when the
  // y intervals touch and the span lists are identical.
  void AppendBand(int y1, int y2, const Span* spans, size_t count);
  // Index of the first band with y2 > y, or bands_.size().
  size_t FirstBandBelow(int y) const;

  // Re-charges `graphics.mem.region` with this region's storage.  Cheap
  // capacity compare inline; the accountant call happens only on change.
  void SyncMem() const {
    int64_t bytes = static_cast<int64_t>(bands_.capacity() * sizeof(Band) +
                                         spans_.capacity() * sizeof(Span) +
                                         pending_.capacity() * sizeof(Rect) +
                                         rects_cache_.capacity() * sizeof(Rect));
    if (bytes != mem_accounted_) {
      SyncMemSlow(bytes);
    }
  }
  void SyncMemSlow(int64_t bytes) const;
  void ReleaseMem() const;

  // Mutable so the lazy pending-batch flush can run from const accessors
  // (logical constness: the point set never changes during a flush).
  mutable std::vector<Band> bands_;  // Sorted by y1; y intervals disjoint.
  mutable std::vector<Span> spans_;  // Per band: sorted by x1, disjoint, non-touching.
  mutable std::vector<Rect> pending_;  // Added rects not yet folded in.

  // rects() cache, rebuilt on demand after mutations.
  mutable std::vector<Rect> rects_cache_;
  mutable bool rects_cache_valid_ = false;
  // Bytes currently charged to `graphics.mem.region` for this instance.
  mutable int64_t mem_accounted_ = 0;
};

}  // namespace atk

#endif  // ATK_SRC_GRAPHICS_REGION_H_
