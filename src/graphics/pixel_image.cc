#include "src/graphics/pixel_image.h"

#include <sstream>

namespace atk {

PixelImage::PixelImage(int width, int height, Color fill)
    : width_(width > 0 ? width : 0), height_(height > 0 ? height : 0) {
  pixels_.assign(static_cast<size_t>(width_) * height_, fill);
}

void PixelImage::SetPixel(int x, int y, Color c) {
  if (!InBounds(x, y)) {
    return;
  }
  pixels_[static_cast<size_t>(y) * width_ + x] = c;
}

Color PixelImage::GetPixel(int x, int y) const {
  if (!InBounds(x, y)) {
    return kWhite;
  }
  return pixels_[static_cast<size_t>(y) * width_ + x];
}

void PixelImage::Fill(Color c) { pixels_.assign(pixels_.size(), c); }

void PixelImage::FillRect(const Rect& rect, Color c) {
  Rect clipped = rect.Intersect(bounds());
  for (int y = clipped.top(); y < clipped.bottom(); ++y) {
    Color* row = &pixels_[static_cast<size_t>(y) * width_];
    for (int x = clipped.left(); x < clipped.right(); ++x) {
      row[x] = c;
    }
  }
}

void PixelImage::Blit(const PixelImage& src, const Rect& src_rect, Point dst_origin) {
  Rect source = src_rect.Intersect(src.bounds());
  for (int dy = 0; dy < source.height; ++dy) {
    int sy = source.y + dy;
    int ty = dst_origin.y + dy;
    if (ty < 0 || ty >= height_) {
      continue;
    }
    for (int dx = 0; dx < source.width; ++dx) {
      int sx = source.x + dx;
      int tx = dst_origin.x + dx;
      if (tx < 0 || tx >= width_) {
        continue;
      }
      pixels_[static_cast<size_t>(ty) * width_ + tx] =
          src.pixels_[static_cast<size_t>(sy) * src.width_ + sx];
    }
  }
}

void PixelImage::Resize(int width, int height, Color fill) {
  width_ = width > 0 ? width : 0;
  height_ = height > 0 ? height : 0;
  pixels_.assign(static_cast<size_t>(width_) * height_, fill);
}

int64_t PixelImage::DiffCount(const PixelImage& other) const {
  int64_t diff = 0;
  int max_w = std::max(width_, other.width_);
  int max_h = std::max(height_, other.height_);
  for (int y = 0; y < max_h; ++y) {
    for (int x = 0; x < max_w; ++x) {
      if (GetPixel(x, y) != other.GetPixel(x, y)) {
        ++diff;
      }
    }
  }
  return diff;
}

uint64_t PixelImage::Hash() const {
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint8_t byte) {
    hash ^= byte;
    hash *= 1099511628211ull;
  };
  mix(static_cast<uint8_t>(width_));
  mix(static_cast<uint8_t>(width_ >> 8));
  mix(static_cast<uint8_t>(height_));
  mix(static_cast<uint8_t>(height_ >> 8));
  for (const Color& c : pixels_) {
    mix(c.r);
    mix(c.g);
    mix(c.b);
  }
  return hash;
}

std::string PixelImage::ToPpm() const {
  std::ostringstream out;
  out << "P3\n" << width_ << " " << height_ << "\n255\n";
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Color& c = pixels_[static_cast<size_t>(y) * width_ + x];
      out << int{c.r} << " " << int{c.g} << " " << int{c.b};
      out << (x + 1 == width_ ? '\n' : ' ');
    }
  }
  return out.str();
}

std::string PixelImage::ToAscii() const {
  std::string out;
  out.reserve(static_cast<size_t>(height_) * (width_ + 1));
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      out += GetPixel(x, y).Luminance() < 128 ? '#' : '.';
    }
    out += '\n';
  }
  return out;
}

}  // namespace atk
