#include "src/graphics/graphic.h"

#include <algorithm>
#include <cmath>

namespace atk {

ATK_DEFINE_ABSTRACT_CLASS(Graphic, Object, "graphic")
ATK_DEFINE_CLASS(ImageGraphic, Graphic, "imagegraphic")

Graphic::Graphic() : font_(&Font::Default()) {}

void Graphic::SetDeviceBounds(const Rect& device_bounds) {
  device_bounds_ = device_bounds;
  device_clip_ = device_bounds;
  clip_stack_.clear();
}

void Graphic::PushClip(const Rect& local) {
  clip_stack_.push_back(device_clip_);
  Rect device = local.Translated(device_bounds_.x, device_bounds_.y);
  device_clip_ = device_clip_.Intersect(device);
}

void Graphic::PopClip() {
  if (!clip_stack_.empty()) {
    device_clip_ = clip_stack_.back();
    clip_stack_.pop_back();
  }
}

Rect Graphic::CurrentClipLocal() const {
  return device_clip_.Translated(-device_bounds_.x, -device_bounds_.y);
}

void Graphic::Plot(int local_x, int local_y, Color c) {
  int dx = local_x + device_bounds_.x;
  int dy = local_y + device_bounds_.y;
  if (!device_clip_.Contains(Point{dx, dy})) {
    return;
  }
  switch (transfer_mode_) {
    case TransferMode::kCopy:
      DevicePlot(dx, dy, c);
      break;
    case TransferMode::kOr: {
      Color cur = DeviceRead(dx, dy);
      DevicePlot(dx, dy,
                 Color{std::min(cur.r, c.r), std::min(cur.g, c.g), std::min(cur.b, c.b)});
      break;
    }
    case TransferMode::kXor: {
      Color cur = DeviceRead(dx, dy);
      DevicePlot(dx, dy, Color{static_cast<uint8_t>(cur.r ^ c.r),
                               static_cast<uint8_t>(cur.g ^ c.g),
                               static_cast<uint8_t>(cur.b ^ c.b)});
      break;
    }
    case TransferMode::kInvert:
      DevicePlot(dx, dy, DeviceRead(dx, dy).Inverted());
      break;
  }
}

void Graphic::DeviceFillRect(const Rect& device_rect, Color c) {
  for (int y = device_rect.top(); y < device_rect.bottom(); ++y) {
    for (int x = device_rect.left(); x < device_rect.right(); ++x) {
      DevicePlot(x, y, c);
    }
  }
}

void Graphic::DrawPoint(Point p) {
  CountOp();
  Plot(p.x, p.y, foreground_);
}

void Graphic::LineTo(Point p) {
  DrawLine(current_point_, p);
  current_point_ = p;
}

void Graphic::ThickLine(Point a, Point b, Color c) {
  // Bresenham, stamped with a line_width_-sized square for thick lines.
  int dx = std::abs(b.x - a.x);
  int dy = -std::abs(b.y - a.y);
  int sx = a.x < b.x ? 1 : -1;
  int sy = a.y < b.y ? 1 : -1;
  int err = dx + dy;
  int x = a.x;
  int y = a.y;
  int half = (line_width_ - 1) / 2;
  while (true) {
    if (line_width_ == 1) {
      Plot(x, y, c);
    } else {
      for (int oy = -half; oy < line_width_ - half; ++oy) {
        for (int ox = -half; ox < line_width_ - half; ++ox) {
          Plot(x + ox, y + oy, c);
        }
      }
    }
    if (x == b.x && y == b.y) {
      break;
    }
    int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y += sy;
    }
  }
}

void Graphic::DrawLine(Point a, Point b) {
  CountOp();
  ThickLine(a, b, foreground_);
}

void Graphic::DrawRect(const Rect& r) {
  CountOp();
  if (r.IsEmpty()) {
    return;
  }
  Point tl{r.left(), r.top()};
  Point tr{r.right() - 1, r.top()};
  Point bl{r.left(), r.bottom() - 1};
  Point br{r.right() - 1, r.bottom() - 1};
  ThickLine(tl, tr, foreground_);
  ThickLine(tr, br, foreground_);
  ThickLine(br, bl, foreground_);
  ThickLine(bl, tl, foreground_);
}

void Graphic::FillRectInternal(const Rect& local, Color c) {
  if (transfer_mode_ == TransferMode::kCopy) {
    Rect device = local.Translated(device_bounds_.x, device_bounds_.y).Intersect(device_clip_);
    if (!device.IsEmpty()) {
      DeviceFillRect(device, c);
    }
    return;
  }
  for (int y = local.top(); y < local.bottom(); ++y) {
    for (int x = local.left(); x < local.right(); ++x) {
      Plot(x, y, c);
    }
  }
}

void Graphic::FillRect(const Rect& r) {
  CountOp();
  FillRectInternal(r, foreground_);
}

void Graphic::FillRect(const Rect& r, Color c) {
  CountOp();
  FillRectInternal(r, c);
}

void Graphic::EraseRect(const Rect& r) {
  CountOp();
  FillRectInternal(r, background_);
}

void Graphic::InvertRect(const Rect& r) {
  CountOp();
  Rect device = r.Translated(device_bounds_.x, device_bounds_.y).Intersect(device_clip_);
  for (int y = device.top(); y < device.bottom(); ++y) {
    for (int x = device.left(); x < device.right(); ++x) {
      DevicePlot(x, y, DeviceRead(x, y).Inverted());
    }
  }
}

void Graphic::DrawEllipse(const Rect& box) {
  CountOp();
  if (box.IsEmpty()) {
    return;
  }
  double cx = box.x + box.width / 2.0;
  double cy = box.y + box.height / 2.0;
  double rx = box.width / 2.0;
  double ry = box.height / 2.0;
  int steps = 4 * (box.width + box.height);
  if (steps < 16) {
    steps = 16;
  }
  for (int i = 0; i < steps; ++i) {
    double t = 2.0 * M_PI * i / steps;
    int x = static_cast<int>(std::lround(cx + (rx - 0.5) * std::cos(t)));
    int y = static_cast<int>(std::lround(cy + (ry - 0.5) * std::sin(t)));
    Plot(x, y, foreground_);
  }
}

void Graphic::FillEllipse(const Rect& box) {
  CountOp();
  if (box.IsEmpty()) {
    return;
  }
  double cx = box.x + box.width / 2.0;
  double cy = box.y + box.height / 2.0;
  double rx = box.width / 2.0;
  double ry = box.height / 2.0;
  for (int y = box.top(); y < box.bottom(); ++y) {
    double ny = (y + 0.5 - cy) / ry;
    double rem = 1.0 - ny * ny;
    if (rem < 0) {
      continue;
    }
    double half = rx * std::sqrt(rem);
    int x0 = static_cast<int>(std::ceil(cx - half - 0.5));
    int x1 = static_cast<int>(std::floor(cx + half - 0.5));
    for (int x = x0; x <= x1; ++x) {
      Plot(x, y, foreground_);
    }
  }
}

void Graphic::DrawPolyline(std::span<const Point> points) {
  CountOp();
  for (size_t i = 1; i < points.size(); ++i) {
    ThickLine(points[i - 1], points[i], foreground_);
  }
}

void Graphic::DrawPolygon(std::span<const Point> points) {
  CountOp();
  if (points.size() < 2) {
    return;
  }
  for (size_t i = 1; i < points.size(); ++i) {
    ThickLine(points[i - 1], points[i], foreground_);
  }
  ThickLine(points.back(), points.front(), foreground_);
}

void Graphic::ScanFillPolygon(std::span<const Point> points, Color c) {
  if (points.size() < 3) {
    return;
  }
  int min_y = points[0].y;
  int max_y = points[0].y;
  for (const Point& p : points) {
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  std::vector<int> xs;
  for (int y = min_y; y <= max_y; ++y) {
    xs.clear();
    double sample = y + 0.5;
    size_t n = points.size();
    for (size_t i = 0; i < n; ++i) {
      const Point& a = points[i];
      const Point& b = points[(i + 1) % n];
      if ((a.y <= sample && b.y > sample) || (b.y <= sample && a.y > sample)) {
        double t = (sample - a.y) / static_cast<double>(b.y - a.y);
        xs.push_back(static_cast<int>(std::lround(a.x + t * (b.x - a.x))));
      }
    }
    std::sort(xs.begin(), xs.end());
    for (size_t i = 0; i + 1 < xs.size(); i += 2) {
      for (int x = xs[i]; x < xs[i + 1]; ++x) {
        Plot(x, y, c);
      }
    }
  }
}

void Graphic::FillPolygon(std::span<const Point> points) {
  CountOp();
  ScanFillPolygon(points, foreground_);
}

void Graphic::DrawString(Point top_left, std::string_view text) {
  CountOp();
  const Font& f = *font_;
  int cell_w = f.advance();
  int cell_h = f.ascent();  // Glyph rows live in the ascent band.
  int x = top_left.x;
  for (char ch : text) {
    for (int gy = 0; gy < cell_h; ++gy) {
      for (int gx = 0; gx < cell_w; ++gx) {
        if (f.GlyphBit(ch, gx, gy)) {
          Plot(x + gx, top_left.y + gy, foreground_);
        }
      }
    }
    x += cell_w;
  }
}

void Graphic::DrawImage(const PixelImage& src, const Rect& src_rect, Point dst_top_left) {
  CountOp();
  Rect source = src_rect.Intersect(src.bounds());
  for (int y = 0; y < source.height; ++y) {
    for (int x = 0; x < source.width; ++x) {
      Plot(dst_top_left.x + x, dst_top_left.y + y, src.GetPixel(source.x + x, source.y + y));
    }
  }
}

void Graphic::Clear() {
  CountOp();
  FillRectInternal(LocalBounds(), background_);
}

// ---- ImageGraphic ----------------------------------------------------------

ImageGraphic::ImageGraphic() = default;

ImageGraphic::ImageGraphic(PixelImage* target, const Rect& device_bounds) {
  Attach(target, device_bounds);
}

void ImageGraphic::Attach(PixelImage* target, const Rect& device_bounds) {
  target_ = target;
  SetDeviceBounds(device_bounds);
}

std::unique_ptr<Graphic> ImageGraphic::CreateSub(const Rect& local_bounds) {
  Rect device = local_bounds.Translated(device_bounds().x, device_bounds().y);
  auto sub = std::make_unique<ImageGraphic>(target_, device);
  // A child can never draw outside its parent's current clip.
  Rect parent_clip_in_child = device_clip().Translated(-device.x, -device.y);
  sub->PushClip(parent_clip_in_child.Intersect(sub->LocalBounds()));
  return sub;
}

void ImageGraphic::DevicePlot(int x, int y, Color c) {
  if (target_ != nullptr) {
    target_->SetPixel(x, y, c);
  }
}

Color ImageGraphic::DeviceRead(int x, int y) const {
  return target_ == nullptr ? kWhite : target_->GetPixel(x, y);
}

void ImageGraphic::DeviceFillRect(const Rect& device_rect, Color c) {
  if (target_ != nullptr) {
    target_->FillRect(device_rect, c);
  }
}

}  // namespace atk
