// An in-memory RGB framebuffer.  Every window (and offscreen window) in the
// simulated window systems renders into one of these, which is what lets the
// test suite assert on actual pixels.

#ifndef ATK_SRC_GRAPHICS_PIXEL_IMAGE_H_
#define ATK_SRC_GRAPHICS_PIXEL_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graphics/color.h"
#include "src/graphics/geometry.h"

namespace atk {

class PixelImage {
 public:
  PixelImage() = default;
  PixelImage(int width, int height, Color fill = kWhite);

  int width() const { return width_; }
  int height() const { return height_; }
  Rect bounds() const { return Rect{0, 0, width_, height_}; }

  // Out-of-range coordinates are ignored / read as white.
  void SetPixel(int x, int y, Color c);
  Color GetPixel(int x, int y) const;
  bool InBounds(int x, int y) const { return x >= 0 && x < width_ && y >= 0 && y < height_; }

  void Fill(Color c);
  void FillRect(const Rect& rect, Color c);

  // Copies `src_rect` of `src` to `dst_origin` here, clipping both ends.
  void Blit(const PixelImage& src, const Rect& src_rect, Point dst_origin);

  // Discards contents and reallocates.
  void Resize(int width, int height, Color fill = kWhite);

  // Number of pixels differing from `other` (size mismatch counts the
  // non-overlapping area as different).
  int64_t DiffCount(const PixelImage& other) const;

  // FNV-1a over the pixel data; used by golden-image style tests.
  uint64_t Hash() const;

  // Portable pixmap (P3, ASCII) dump for debugging and the printer backend.
  std::string ToPpm() const;

  // Compact ASCII rendering: '#' for dark pixels, '.' for light — handy in
  // test failure messages for small images.
  std::string ToAscii() const;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Color> pixels_;
};

}  // namespace atk

#endif  // ATK_SRC_GRAPHICS_PIXEL_IMAGE_H_
