#include "src/graphics/font.h"

#include <cctype>
#include <map>
#include <sstream>

namespace atk {

std::string FontSpec::ToString() const {
  std::ostringstream out;
  out << family << size;
  if (style & kBold) {
    out << "b";
  }
  if (style & kItalic) {
    out << "i";
  }
  return out.str();
}

FontSpec FontSpec::Parse(std::string_view name) {
  FontSpec spec;
  size_t i = 0;
  while (i < name.size() && !std::isdigit(static_cast<unsigned char>(name[i]))) {
    ++i;
  }
  if (i > 0) {
    spec.family = std::string(name.substr(0, i));
  }
  int size = 0;
  while (i < name.size() && std::isdigit(static_cast<unsigned char>(name[i]))) {
    size = size * 10 + (name[i] - '0');
    ++i;
  }
  if (size > 0) {
    spec.size = size;
  }
  spec.style = kPlain;
  for (; i < name.size(); ++i) {
    if (name[i] == 'b') {
      spec.style |= kBold;
    } else if (name[i] == 'i') {
      spec.style |= kItalic;
    }
  }
  return spec;
}

Font::Font(const FontSpec& spec) : spec_(spec) {
  // Nominal sizes up to 14 use the master bitmaps; larger sizes scale up.
  scale_ = spec.size <= 14 ? 1 : (spec.size + 9) / 10;
  if (scale_ < 1) {
    scale_ = 1;
  }
}

const Font& Font::Get(const FontSpec& spec) {
  static std::map<std::string, const Font*>* cache = new std::map<std::string, const Font*>();
  std::string key = spec.ToString();
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, new Font(spec)).first;
  }
  return *it->second;
}

const Font& Font::Default() { return Get(FontSpec{}); }

bool Font::GlyphBit(char ch, int x, int y) const {
  const Glyph& glyph = MasterGlyph(ch);
  // Map the scaled cell pixel back to master coordinates.  The glyph's 7
  // master rows span [0, ascent); descenders are drawn within them.
  bool italic = (spec_.style & kItalic) != 0;
  bool bold = (spec_.style & kBold) != 0;
  int my = y / scale_;
  if (my < 0 || my >= 7) {
    return false;
  }
  // Italic: shear the top rows right by up to 2 master columns.
  int shear = italic ? (6 - my) / 3 : 0;
  int shifted = x - shear * scale_;
  int mx = shifted >= 0 ? shifted / scale_ : -1;
  if (glyph.Bit(mx, my)) {
    return true;
  }
  if (bold) {
    // Double strike: a pixel is also inked when the cell one device pixel to
    // the left is inked.
    int bx = shifted - 1;
    int bmx = bx >= 0 ? bx / scale_ : -1;
    if (glyph.Bit(bmx, my)) {
      return true;
    }
  }
  return false;
}

}  // namespace atk
