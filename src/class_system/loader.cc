#include "src/class_system/loader.h"

#include <algorithm>

#include "src/class_system/object.h"
#include "src/observability/observability.h"

namespace atk {

Loader& Loader::Instance() {
  static Loader* loader = new Loader();
  return *loader;
}

bool Loader::DeclareModule(ModuleSpec spec) {
  if (spec.name.empty()) {
    return false;
  }
  std::string name = spec.name;
  auto [it, inserted] = modules_.emplace(name, ModuleState{std::move(spec), false, false});
  return inserted;
}

bool Loader::IsDeclared(std::string_view module) const {
  return modules_.find(module) != modules_.end();
}

bool Loader::IsLoaded(std::string_view module) const {
  auto it = modules_.find(module);
  return it != modules_.end() && it->second.loaded;
}

uint64_t Loader::SimulatedCost(const ModuleSpec& spec) const {
  uint64_t variable =
      cost_model_.bytes_per_us == 0 ? 0 : spec.text_bytes / cost_model_.bytes_per_us;
  return cost_model_.fixed_us + variable;
}

bool Loader::Require(std::string_view module) {
  std::vector<std::string> in_progress;
  return RequireInternal(module, /*as_dependency=*/false, in_progress);
}

bool Loader::RequireInternal(std::string_view module, bool as_dependency,
                             std::vector<std::string>& in_progress) {
  auto it = modules_.find(module);
  if (it == modules_.end()) {
    return false;
  }
  ModuleState& state = it->second;
  if (state.loaded) {
    return true;
  }
  // Dependency cycle?
  if (std::find(in_progress.begin(), in_progress.end(), state.spec.name) != in_progress.end()) {
    return false;
  }
  in_progress.push_back(state.spec.name);
  for (const std::string& dep : state.spec.depends_on) {
    if (!RequireInternal(dep, /*as_dependency=*/true, in_progress)) {
      in_progress.pop_back();
      return false;
    }
  }
  in_progress.pop_back();

  // The simulated dlopen itself can fail (fault injection).  Retry with
  // exponential simulated backoff before giving up, so a transient failure
  // costs time but not the document being assembled.
  using observability::Counter;
  using observability::MetricsRegistry;
  if (fault_hook_) {
    int attempts = std::max(retry_policy_.max_attempts, 1);
    uint64_t backoff_us = retry_policy_.initial_backoff_us;
    uint64_t backoff_total = 0;
    for (int attempt = 1;; ++attempt) {
      if (!fault_hook_(state.spec.name, attempt)) {
        break;  // This attempt succeeds.
      }
      if (attempt >= attempts) {
        static Counter& failed = MetricsRegistry::Instance().counter("class.module.failed");
        failed.Add(1);
        FailureRecord failure;
        failure.module = state.spec.name;
        failure.attempts = attempt;
        failure.simulated_backoff_us = backoff_total;
        failure.reason = "load failed after " + std::to_string(attempt) + " attempt(s)";
        failure_log_.push_back(std::move(failure));
        return false;
      }
      static Counter& retried = MetricsRegistry::Instance().counter("class.module.retry");
      retried.Add(1);
      backoff_total += backoff_us;
      // Running total of simulated backoff spent across all loads, success
      // or failure — the §7 startup accounting reads it next to the retry
      // counter to tell "slow but converging" from "failing outright".
      MetricsRegistry::Instance()
          .gauge("class.module.simulated_backoff_us")
          .Add(static_cast<int64_t>(backoff_us));
      backoff_us *= 2;
    }
  }

  state.loaded = true;
  {
    // Real wall time of the module's registration code; the simulated
    // dlopen/page-in cost feeds the histogram below for the §6 startup
    // accounting.
    observability::ScopedSpan span("class.module.load.", state.spec.name);
    if (state.spec.init) {
      state.spec.init();
    }
  }
  LoadRecord record;
  record.module = state.spec.name;
  record.text_bytes = state.spec.text_bytes;
  record.simulated_cost_us = SimulatedCost(state.spec);
  record.order = next_order_++;
  record.as_dependency = as_dependency;
  static Counter& loaded = MetricsRegistry::Instance().counter("class.module.loaded");
  loaded.Add(1);
  MetricsRegistry::Instance()
      .histogram("class.module.load_us")
      .Observe(record.simulated_cost_us);
  load_log_.push_back(std::move(record));
  return true;
}

bool Loader::Unload(std::string_view module) {
  auto it = modules_.find(module);
  if (it == modules_.end() || !it->second.loaded || it->second.pinned) {
    return false;
  }
  // Refuse while a loaded module depends on this one.
  for (const auto& [name, other] : modules_) {
    if (!other.loaded || name == module) {
      continue;
    }
    const auto& deps = other.spec.depends_on;
    if (std::find(deps.begin(), deps.end(), it->second.spec.name) != deps.end()) {
      return false;
    }
  }
  ModuleState& state = it->second;
  if (state.spec.fini) {
    state.spec.fini();
  } else {
    for (const std::string& cls : state.spec.provides) {
      ClassRegistry::Instance().Unregister(cls);
    }
  }
  state.loaded = false;
  return true;
}

bool Loader::Pin(std::string_view module) {
  auto it = modules_.find(module);
  if (it == modules_.end()) {
    return false;
  }
  if (!it->second.loaded && !Require(module)) {
    return false;
  }
  it->second.pinned = true;
  return true;
}

const ClassInfo* Loader::EnsureClass(std::string_view class_name) {
  const ClassInfo* info = ClassRegistry::Instance().Find(class_name);
  if (info != nullptr) {
    return info;
  }
  std::string module = ProvidingModule(class_name);
  if (module.empty() || !Require(module)) {
    return nullptr;
  }
  return ClassRegistry::Instance().Find(class_name);
}

std::unique_ptr<Object> Loader::NewObject(std::string_view class_name) {
  const ClassInfo* info = EnsureClass(class_name);
  if (info == nullptr) {
    return nullptr;
  }
  return info->NewInstance();
}

std::string Loader::ProvidingModule(std::string_view class_name) const {
  for (const auto& [name, state] : modules_) {
    const auto& provides = state.spec.provides;
    if (std::find(provides.begin(), provides.end(), class_name) != provides.end()) {
      return name;
    }
  }
  return "";
}

size_t Loader::LoadedTextBytes() const {
  size_t total = 0;
  for (const auto& [name, state] : modules_) {
    if (state.loaded) {
      total += state.spec.text_bytes;
    }
  }
  return total;
}

size_t Loader::LoadedDataBytes() const {
  size_t total = 0;
  for (const auto& [name, state] : modules_) {
    if (state.loaded) {
      total += state.spec.data_bytes;
    }
  }
  return total;
}

std::vector<std::string> Loader::LoadedModules() const {
  std::vector<std::string> names;
  for (const auto& [name, state] : modules_) {
    if (state.loaded) {
      names.push_back(name);
    }
  }
  return names;
}

std::vector<std::string> Loader::DeclaredModules() const {
  std::vector<std::string> names;
  names.reserve(modules_.size());
  for (const auto& [name, state] : modules_) {
    names.push_back(name);
  }
  return names;
}

const ModuleSpec* Loader::FindSpec(std::string_view module) const {
  auto it = modules_.find(module);
  return it == modules_.end() ? nullptr : &it->second.spec;
}

void Loader::UnloadAllForTest() {
  // Unload repeatedly until a fixed point: dependency order is honoured by
  // Unload() refusing modules that something loaded still depends on.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto& [name, state] : modules_) {
      if (state.loaded && !state.pinned && Unload(name)) {
        progressed = true;
      }
    }
  }
  load_log_.clear();
  next_order_ = 1;
}

}  // namespace atk
