// Root of the Andrew Class System object hierarchy.
//
// Every toolkit object (data objects, views, window-system classes) derives
// from atk::Object and carries a runtime ClassInfo, giving the toolkit the
// two facilities the paper's class system provided on top of C:
//   * run-time type identification by name (`IsA("textview")`), and
//   * named construction through the ClassRegistry / Loader.
//
// Classes participate by placing ATK_DECLARE_CLASS in the class body and
// ATK_DEFINE_CLASS (or ATK_DEFINE_ABSTRACT_CLASS) in one .cc file.

#ifndef ATK_SRC_CLASS_SYSTEM_OBJECT_H_
#define ATK_SRC_CLASS_SYSTEM_OBJECT_H_

#include <memory>
#include <string_view>

#include "src/class_system/class_info.h"

namespace atk {

class Object {
 public:
  virtual ~Object() = default;

  // The most-derived runtime class of this instance.
  virtual const ClassInfo& GetClassInfo() const { return StaticClassInfo(); }

  // The class name of this instance (e.g. "text", "scrollbar").
  const std::string& class_name() const { return GetClassInfo().name(); }

  // True when this instance's class is `ancestor` or derives from it.
  bool IsA(const ClassInfo& ancestor) const { return GetClassInfo().DerivesFrom(ancestor); }

  // Name-based variant; false for names unknown to the registry.
  bool IsA(std::string_view ancestor_name) const;

  static const ClassInfo& StaticClassInfo();
};

// Checked downcast in the spirit of the class system's `class_Cast`: returns
// nullptr when `obj` is not a T (by ClassInfo lineage).
template <typename T>
T* ObjectCast(Object* obj) {
  if (obj != nullptr && obj->IsA(T::StaticClassInfo())) {
    return static_cast<T*>(obj);
  }
  return nullptr;
}

template <typename T>
const T* ObjectCast(const Object* obj) {
  if (obj != nullptr && obj->IsA(T::StaticClassInfo())) {
    return static_cast<const T*>(obj);
  }
  return nullptr;
}

// Takes ownership from `obj` as a T; on type mismatch the object is destroyed
// and nullptr returned.
template <typename T>
std::unique_ptr<T> ObjectCast(std::unique_ptr<Object> obj) {
  if (obj != nullptr && obj->IsA(T::StaticClassInfo())) {
    return std::unique_ptr<T>(static_cast<T*>(obj.release()));
  }
  return nullptr;
}

}  // namespace atk

// Declares the class-system hooks inside a class body.
#define ATK_DECLARE_CLASS(Type)                       \
 public:                                              \
  static const ::atk::ClassInfo& StaticClassInfo();   \
  const ::atk::ClassInfo& GetClassInfo() const override { return StaticClassInfo(); }

// Defines StaticClassInfo for a concrete (default-constructible) class.
// `name` is the wire/type name used in datastreams and named construction.
#define ATK_DEFINE_CLASS(Type, Parent, name)                                        \
  const ::atk::ClassInfo& Type::StaticClassInfo() {                                 \
    static const ::atk::ClassInfo* info = new ::atk::ClassInfo(                     \
        (name), &Parent::StaticClassInfo(),                                         \
        []() -> std::unique_ptr<::atk::Object> { return std::make_unique<Type>(); });\
    return *info;                                                                   \
  }

// Defines StaticClassInfo for an abstract class (no factory).
#define ATK_DEFINE_ABSTRACT_CLASS(Type, Parent, name)                \
  const ::atk::ClassInfo& Type::StaticClassInfo() {                  \
    static const ::atk::ClassInfo* info = new ::atk::ClassInfo(      \
        (name), &Parent::StaticClassInfo(), ::atk::ClassInfo::Factory()); \
    return *info;                                                    \
  }

#endif  // ATK_SRC_CLASS_SYSTEM_OBJECT_H_
