// Lightweight status/diagnostic vocabulary for the failure half of the
// toolkit (robustness subsystem, datastream salvage, loader degradation).
//
// The paper's §5 sells the external representation as "partially recoverable
// when files are destroyed"; recovery needs errors that are *reported*
// instead of swallowed.  Status is the cheap result type plumbed through the
// load and parse paths; Diagnostic is the structured record a parser or
// salvager accumulates (code + byte offset + human-readable note).

#ifndef ATK_SRC_CLASS_SYSTEM_STATUS_H_
#define ATK_SRC_CLASS_SYSTEM_STATUS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace atk {

enum class StatusCode {
  kOk = 0,
  kTruncated,    // Input ended with structure still open.
  kCorrupt,      // Structure present but damaged (bad marker, bad escape).
  kNotFound,     // A named class/module/backend could not be resolved.
  kUnavailable,  // A subsystem (loader, wm connection) refused or dropped.
  kInternal,     // Invariant violation; always a bug.
};

std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Truncated(std::string message) {
    return Status(StatusCode::kTruncated, std::move(message));
  }
  static Status Corrupt(std::string message) {
    return Status(StatusCode::kCorrupt, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// One structured parse/salvage finding, anchored to a byte offset in the
// stream it was found in.
struct Diagnostic {
  StatusCode code = StatusCode::kOk;
  size_t offset = 0;       // Byte offset in the input stream.
  std::string message;

  std::string ToString() const {
    return std::string(StatusCodeName(code)) + " @" + std::to_string(offset) +
           ": " + message;
  }
};

inline std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kTruncated:
      return "TRUNCATED";
    case StatusCode::kCorrupt:
      return "CORRUPT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace atk

#endif  // ATK_SRC_CLASS_SYSTEM_STATUS_H_
