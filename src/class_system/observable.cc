#include "src/class_system/observable.h"

#include <algorithm>

namespace atk {

Observer::~Observer() {
  // Unsubscribe from everything still watched, so no Observable is left
  // holding a dangling pointer.  RemoveObserver edits watching_, hence the
  // snapshot.
  std::vector<Observable*> snapshot = watching_;
  for (Observable* observable : snapshot) {
    observable->RemoveObserver(this);
  }
}

Observable::~Observable() {
  Change change;
  change.kind = Change::Kind::kDestroyed;
  // Deliver on a snapshot: observers typically detach themselves here.
  std::vector<Observer*> snapshot = observers_;
  for (Observer* observer : snapshot) {
    if (HasObserver(observer)) {
      observer->ObservedChanged(this, change);
    }
  }
  // Drop the back-links of anyone who stayed subscribed to the end.
  for (Observer* observer : observers_) {
    auto& watching = observer->watching_;
    watching.erase(std::remove(watching.begin(), watching.end(), this), watching.end());
  }
  observers_.clear();
}

void Observable::AddObserver(Observer* observer) {
  if (observer == nullptr || HasObserver(observer)) {
    return;
  }
  observers_.push_back(observer);
  observer->watching_.push_back(this);
}

void Observable::RemoveObserver(Observer* observer) {
  if (observer == nullptr || !HasObserver(observer)) {
    return;
  }
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
  auto& watching = observer->watching_;
  watching.erase(std::remove(watching.begin(), watching.end(), this), watching.end());
}

bool Observable::HasObserver(const Observer* observer) const {
  return std::find(observers_.begin(), observers_.end(), observer) != observers_.end();
}

void Observable::NotifyObservers(const Change& change) {
  ++modification_time_;
  if (notifying_) {
    return;  // No re-entrant notification storms.
  }
  notifying_ = true;
  std::vector<Observer*> snapshot = observers_;
  for (Observer* observer : snapshot) {
    if (HasObserver(observer)) {
      observer->ObservedChanged(this, change);
    }
  }
  notifying_ = false;
}

}  // namespace atk
