// Runtime class descriptors for the Andrew Class System reproduction.
//
// The 1988 toolkit used a C preprocessor ("class") that generated .eh/.ih
// headers describing each class: its name, its single superclass, its
// overridable methods and its non-overridable class procedures.  The property
// the rest of the toolkit depends on is *named construction*: given the string
// found in a `\begindata{type,id}` marker, the system can instantiate the
// right data object, loading its module first if necessary.
//
// This header provides that runtime: a ClassInfo per class (name, parent,
// factory) and a process-wide ClassRegistry keyed by name.

#ifndef ATK_SRC_CLASS_SYSTEM_CLASS_INFO_H_
#define ATK_SRC_CLASS_SYSTEM_CLASS_INFO_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace atk {

class Object;

// Describes one class known to the runtime.  Instances are created once
// (static storage) and registered; they are never destroyed or moved.
class ClassInfo {
 public:
  using Factory = std::function<std::unique_ptr<Object>()>;

  ClassInfo(std::string name, const ClassInfo* parent, Factory factory)
      : name_(std::move(name)), parent_(parent), factory_(std::move(factory)) {}

  ClassInfo(const ClassInfo&) = delete;
  ClassInfo& operator=(const ClassInfo&) = delete;

  const std::string& name() const { return name_; }
  const ClassInfo* parent() const { return parent_; }

  // True if this class is `ancestor` or inherits from it.
  bool DerivesFrom(const ClassInfo& ancestor) const;

  // Creates a default-constructed instance, or nullptr when the class is
  // abstract (no factory was supplied).
  std::unique_ptr<Object> NewInstance() const;

  bool is_abstract() const { return !factory_; }

  // Depth of the inheritance chain above this class (root == 0).
  int InheritanceDepth() const;

 private:
  std::string name_;
  const ClassInfo* parent_;
  Factory factory_;
};

// Process-wide name -> ClassInfo table.  Registration normally happens when
// the Loader "loads" the module that provides a class; classes belonging to
// the always-present base may register at static-initialization time.
class ClassRegistry {
 public:
  static ClassRegistry& Instance();

  // Registers `info` under its name.  Re-registering the same ClassInfo is a
  // no-op; registering a *different* ClassInfo under an existing name is an
  // error and is ignored (first registration wins, mirroring the original
  // loader's behaviour).  Returns whether the registration took effect.
  bool Register(const ClassInfo& info);

  // Removes a class by name (used when a module is unloaded).
  void Unregister(std::string_view name);

  // Returns the descriptor for `name`, or nullptr when unknown.  Does NOT
  // trigger dynamic loading; see Loader::EnsureClass for that.
  const ClassInfo* Find(std::string_view name) const;

  bool IsRegistered(std::string_view name) const { return Find(name) != nullptr; }

  // Instantiates `name` if registered and concrete; nullptr otherwise.
  std::unique_ptr<Object> New(std::string_view name) const;

  std::vector<std::string> RegisteredNames() const;
  size_t size() const { return classes_.size(); }

 private:
  ClassRegistry() = default;

  std::map<std::string, const ClassInfo*, std::less<>> classes_;
};

}  // namespace atk

#endif  // ATK_SRC_CLASS_SYSTEM_CLASS_INFO_H_
