// Simulated dynamic loading/linking.
//
// The 1988 class system could demand-load the object code of a component the
// first time anything referenced it: embedding a music object in a text
// document loaded the music module into the running editor, with no relink.
// `runapp` inverted the arrangement — one resident base program into which
// every *application* was dynamically loaded — so all toolkit applications
// shared one copy of the toolkit's code (§7 of the paper).
//
// This reproduction compiles all modules into the binary but keeps their
// class registrations *dormant* until the Loader "loads" the module.  What is
// preserved, and what the tests and benches exercise:
//   * load-on-first-use: EnsureClass()/NewObject() resolve an unknown class
//     name by loading the module that declares it (plus dependencies);
//   * an explicit module graph with text/data sizes, so the runapp-vs-static
//     memory accounting of §7 can be reproduced;
//   * a deterministic simulated load cost (stand-in for dlopen + page-in),
//     recorded in a load log;
//   * unloading, reload, and double-load idempotence.

#ifndef ATK_SRC_CLASS_SYSTEM_LOADER_H_
#define ATK_SRC_CLASS_SYSTEM_LOADER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/class_system/class_info.h"

namespace atk {

// Static description of one dynamically loadable module.
struct ModuleSpec {
  std::string name;
  // Class names this module registers when loaded (e.g. {"table", "tableview"}).
  std::vector<std::string> provides;
  // Modules that must be loaded first.
  std::vector<std::string> depends_on;
  // Simulated object-code footprint, used by the load-cost model and by the
  // runapp memory accounting.  Rough 1988-scale numbers are fine.
  size_t text_bytes = 0;
  size_t data_bytes = 0;
  // Runs when the module is loaded; registers classes/procs.  Must be
  // idempotent (a module can be unloaded and loaded again).
  std::function<void()> init;
  // Optional teardown run at unload.  If absent, `provides` entries are
  // unregistered from the ClassRegistry automatically.
  std::function<void()> fini;
};

class Loader {
 public:
  struct LoadRecord {
    std::string module;
    size_t text_bytes = 0;
    // Deterministic simulated wall time for dlopen + initial page-in.
    uint64_t simulated_cost_us = 0;
    // 1-based position in the overall load order.
    int order = 0;
    // True when this load happened to satisfy a dependency edge rather than
    // a direct Require().
    bool as_dependency = false;
  };

  struct CostModel {
    // cost = fixed_us + text_bytes / bytes_per_us
    uint64_t fixed_us = 250;
    uint64_t bytes_per_us = 2000;
  };

  // How a failing load is retried before Require() gives up.  Backoff is
  // simulated (accounted, not slept), like the load cost itself.
  struct RetryPolicy {
    int max_attempts = 3;
    uint64_t initial_backoff_us = 500;  // Doubles per retry.
  };

  // One failed Require(), after retries were exhausted.
  struct FailureRecord {
    std::string module;
    int attempts = 0;
    uint64_t simulated_backoff_us = 0;  // Total backoff spent retrying.
    std::string reason;
  };

  // Test seam for fault injection: returns true when load attempt number
  // `attempt` (1-based) of `module` should fail.  The hook is consulted only
  // for modules not yet loaded; pass nullptr to clear.
  using LoadFaultHook = std::function<bool(std::string_view module, int attempt)>;

  static Loader& Instance();

  // Declares a module.  Duplicate names are rejected (first wins).
  bool DeclareModule(ModuleSpec spec);

  bool IsDeclared(std::string_view module) const;
  bool IsLoaded(std::string_view module) const;

  // Loads `module` and (recursively) its dependencies.  Idempotent.  Returns
  // false when the module is undeclared or a dependency cycle/missing
  // dependency is found, in which case nothing new is loaded.
  bool Require(std::string_view module);

  // Unloads a loaded module.  Fails when another loaded module depends on it
  // or the module is pinned.
  bool Unload(std::string_view module);

  // Marks a module as part of the resident base (runapp): it can never be
  // unloaded and its footprint counts as shared in the memory accounting.
  bool Pin(std::string_view module);

  // Resolves a class name, loading the declaring module on demand.  Returns
  // nullptr when no declared module provides the class.
  const ClassInfo* EnsureClass(std::string_view class_name);

  // EnsureClass + instantiate.
  std::unique_ptr<Object> NewObject(std::string_view class_name);

  // Which module declares `class_name` in its `provides` list ("" if none).
  std::string ProvidingModule(std::string_view class_name) const;

  const std::vector<LoadRecord>& load_log() const { return load_log_; }
  void ClearLoadLog() { load_log_.clear(); }

  void SetLoadFaultHook(LoadFaultHook hook) { fault_hook_ = std::move(hook); }
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  // Failed loads (retries exhausted), oldest first.
  const std::vector<FailureRecord>& failure_log() const { return failure_log_; }
  void ClearFailureLog() { failure_log_.clear(); }

  // Footprint of currently loaded modules.
  size_t LoadedTextBytes() const;
  size_t LoadedDataBytes() const;
  std::vector<std::string> LoadedModules() const;
  std::vector<std::string> DeclaredModules() const;

  const ModuleSpec* FindSpec(std::string_view module) const;

  void set_cost_model(const CostModel& model) { cost_model_ = model; }
  const CostModel& cost_model() const { return cost_model_; }

  // Unloads every non-pinned module and clears the log.  Test hygiene only.
  void UnloadAllForTest();

 private:
  struct ModuleState {
    ModuleSpec spec;
    bool loaded = false;
    bool pinned = false;
  };

  Loader() = default;

  bool RequireInternal(std::string_view module, bool as_dependency,
                       std::vector<std::string>& in_progress);
  uint64_t SimulatedCost(const ModuleSpec& spec) const;

  std::map<std::string, ModuleState, std::less<>> modules_;
  std::vector<LoadRecord> load_log_;
  std::vector<FailureRecord> failure_log_;
  CostModel cost_model_;
  RetryPolicy retry_policy_;
  LoadFaultHook fault_hook_;
  int next_order_ = 1;
};

}  // namespace atk

#endif  // ATK_SRC_CLASS_SYSTEM_LOADER_H_
