// The observer protocol underlying the toolkit's delayed-update mechanism.
//
// §2 of the paper: a view never repaints synchronously as the data object
// changes.  The mutating view asks the data object to modify itself, then
// asks it to notify *all* its observers; each observer works out what changed
// (from the Change record and the data object's exported inspection methods)
// and schedules its own repaint.  Observers may be views or other data
// objects — the chart example chains TableData -> ChartData -> chart views.
//
// Lifetime: the two sides hold back-links, so destroying either detaches the
// relationship safely — an Observable notifies survivors with kDestroyed,
// and an Observer silently unsubscribes from everything it watches.

#ifndef ATK_SRC_CLASS_SYSTEM_OBSERVABLE_H_
#define ATK_SRC_CLASS_SYSTEM_OBSERVABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace atk {

class Observable;

// What changed, in terms generic enough for any component.  Components narrow
// the meaning of `pos`/`removed`/`added` (text: character positions; table:
// packed row/col; drawing: shape index).
struct Change {
  enum class Kind {
    kModified,    // unspecified modification; observers should fully refresh
    kInserted,    // `added` units inserted at `pos`
    kDeleted,     // `removed` units deleted at `pos`
    kReplaced,    // `removed` units at `pos` replaced by `added`
    kAttributes,  // appearance-only change (styles, widths) over [pos, pos+removed)
    kDestroyed,   // the observable is being destroyed
  };

  Kind kind = Kind::kModified;
  int64_t pos = 0;
  int64_t removed = 0;
  int64_t added = 0;
  // Free slot for component-specific detail (e.g. table packs the column).
  int64_t detail = 0;
};

class Observer {
 public:
  Observer() = default;
  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  // Unsubscribes from every observable still being watched.
  virtual ~Observer();

  // Called by Observable::NotifyObservers.  `changed` is the object that
  // changed; one observer may watch several observables.
  virtual void ObservedChanged(Observable* changed, const Change& change) = 0;

 private:
  friend class Observable;

  // Observables this observer is registered with (maintained by Observable).
  std::vector<Observable*> watching_;
};

class Observable {
 public:
  Observable() = default;
  Observable(const Observable&) = delete;
  Observable& operator=(const Observable&) = delete;

  // Notifies remaining observers with Change::Kind::kDestroyed and detaches.
  virtual ~Observable();

  // Duplicate additions are ignored.  The observable does not own observers.
  void AddObserver(Observer* observer);
  void RemoveObserver(Observer* observer);
  bool HasObserver(const Observer* observer) const;
  size_t observer_count() const { return observers_.size(); }

  // Bumps the modification timestamp and calls ObservedChanged on every
  // observer.  Observers may remove themselves (but not others) during the
  // callback.
  void NotifyObservers(const Change& change);

  // Monotonic per-object modification counter; 0 = never modified.
  uint64_t modification_time() const { return modification_time_; }

  // Bumps the timestamp without notifying (used when batching mutations
  // before a single notify).
  void Touch() { ++modification_time_; }

 private:
  std::vector<Observer*> observers_;
  uint64_t modification_time_ = 0;
  bool notifying_ = false;
};

}  // namespace atk

#endif  // ATK_SRC_CLASS_SYSTEM_OBSERVABLE_H_
