#include "src/class_system/object.h"

namespace atk {

const ClassInfo& Object::StaticClassInfo() {
  static const ClassInfo* info = new ClassInfo("object", nullptr, ClassInfo::Factory());
  return *info;
}

bool Object::IsA(std::string_view ancestor_name) const {
  for (const ClassInfo* c = &GetClassInfo(); c != nullptr; c = c->parent()) {
    if (c->name() == ancestor_name) {
      return true;
    }
  }
  return false;
}

}  // namespace atk
