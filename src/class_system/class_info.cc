#include "src/class_system/class_info.h"

#include "src/class_system/object.h"

namespace atk {

bool ClassInfo::DerivesFrom(const ClassInfo& ancestor) const {
  for (const ClassInfo* c = this; c != nullptr; c = c->parent_) {
    if (c == &ancestor) {
      return true;
    }
  }
  return false;
}

std::unique_ptr<Object> ClassInfo::NewInstance() const {
  if (!factory_) {
    return nullptr;
  }
  return factory_();
}

int ClassInfo::InheritanceDepth() const {
  int depth = 0;
  for (const ClassInfo* c = parent_; c != nullptr; c = c->parent()) {
    ++depth;
  }
  return depth;
}

ClassRegistry& ClassRegistry::Instance() {
  static ClassRegistry* registry = new ClassRegistry();
  return *registry;
}

bool ClassRegistry::Register(const ClassInfo& info) {
  auto [it, inserted] = classes_.emplace(info.name(), &info);
  if (!inserted && it->second != &info) {
    return false;  // First registration wins.
  }
  return true;
}

void ClassRegistry::Unregister(std::string_view name) {
  auto it = classes_.find(name);
  if (it != classes_.end()) {
    classes_.erase(it);
  }
}

const ClassInfo* ClassRegistry::Find(std::string_view name) const {
  auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : it->second;
}

std::unique_ptr<Object> ClassRegistry::New(std::string_view name) const {
  const ClassInfo* info = Find(name);
  if (info == nullptr) {
    return nullptr;
  }
  return info->NewInstance();
}

std::vector<std::string> ClassRegistry::RegisteredNames() const {
  std::vector<std::string> names;
  names.reserve(classes_.size());
  for (const auto& [name, info] : classes_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace atk
