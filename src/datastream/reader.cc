#include "src/datastream/reader.h"

#include <cctype>
#include <cstring>

#include "src/observability/observability.h"

namespace atk {
namespace {

bool IsDirectiveNameChar(char ch) {
  return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' || ch == '-';
}

// Parses "type,id" marker args.  Returns false on malformed args.  `type`
// stays a slice of `args` — no copy.
bool ParseMarkerArgs(std::string_view args, std::string_view* type, int64_t* id) {
  size_t comma = args.rfind(',');
  if (comma == std::string_view::npos || comma == 0 || comma + 1 >= args.size()) {
    return false;
  }
  *type = args.substr(0, comma);
  int64_t value = 0;
  for (size_t i = comma + 1; i < args.size(); ++i) {
    char ch = args[i];
    if (!std::isdigit(static_cast<unsigned char>(ch))) {
      return false;
    }
    value = value * 10 + (ch - '0');
  }
  *id = value;
  return true;
}

int HexValue(char ch) {
  if (ch >= '0' && ch <= '9') {
    return ch - '0';
  }
  if (ch >= 'a' && ch <= 'f') {
    return ch - 'a' + 10;
  }
  if (ch >= 'A' && ch <= 'F') {
    return ch - 'A' + 10;
  }
  return -1;
}

// Next backslash at or after `from`, or npos.  The zero-copy lexer's inner
// loop: every byte between backslashes is covered by one memchr call.
size_t FindBackslash(std::string_view data, size_t from) {
  if (from >= data.size()) {
    return std::string_view::npos;
  }
  const void* hit = std::memchr(data.data() + from, '\\', data.size() - from);
  return hit == nullptr ? std::string_view::npos
                        : static_cast<size_t>(static_cast<const char*>(hit) - data.data());
}

// §5 parse-cost accounting; bytes are attributed when the reader opens.
void CountReaderOpen(size_t bytes) {
  using observability::Counter;
  using observability::MetricsRegistry;
  static Counter& opened = MetricsRegistry::Instance().counter("datastream.reader.opened");
  static Counter& consumed = MetricsRegistry::Instance().counter("datastream.reader.ingested_bytes");
  opened.Add(1);
  consumed.Add(bytes);
}

}  // namespace

observability::MemoryAccount& DataStreamPinnedAccount() {
  static observability::MemoryAccount& account =
      observability::MemoryAccountant::Instance().account("datastream.mem.pinned");
  return account;
}

observability::MemoryAccount& DataStreamScratchAccount() {
  static observability::MemoryAccount& account =
      observability::MemoryAccountant::Instance().account("datastream.mem.scratch");
  return account;
}

DataStreamReader::DataStreamReader(std::string input) : owned_(std::move(input)) {
  data_ = owned_;
  CountReaderOpen(data_.size());
  pinned_mem_ = observability::ScopedCharge(DataStreamPinnedAccount(),
                                            static_cast<int64_t>(owned_.capacity()));
}

DataStreamReader::DataStreamReader(std::istream& in) {
  // Chunked reads appended straight into the pinned buffer — no
  // ostringstream double-buffering.
  char chunk[64 * 1024];
  std::streamsize got = 0;
  do {
    in.read(chunk, sizeof(chunk));
    got = in.gcount();
    if (got > 0) {
      owned_.append(chunk, static_cast<size_t>(got));
    }
  } while (got == static_cast<std::streamsize>(sizeof(chunk)));
  data_ = owned_;
  CountReaderOpen(data_.size());
  pinned_mem_ = observability::ScopedCharge(DataStreamPinnedAccount(),
                                            static_cast<int64_t>(owned_.capacity()));
}

DataStreamReader::DataStreamReader(std::string_view pinned, size_t base_offset)
    : data_(pinned), base_offset_(base_offset) {
  CountReaderOpen(data_.size());
}

DataStreamReader DataStreamReader::ForEmbeddedObject(const RawCapture& capture,
                                                     std::string_view type, int64_t id) {
  // Sub-readers over a slice of an already-counted document do not re-count
  // datastream.reader.opened/bytes, so the §5 accounting stays per-document.
  DataStreamReader reader;
  reader.data_ = capture.with_end;
  reader.base_offset_ = capture.offset;
  reader.open_.push_back(OpenMarker{std::string(type), id});
  return reader;
}

const DataStreamReader::Token& DataStreamReader::Peek() {
  if (!has_peek_) {
    // Snapshot the lexer state so SkipObject can rewind over the peeked
    // token instead of silently dropping it.
    peek_rewind_.pos = pos_;
    peek_rewind_.open_size = open_.size();
    peek_rewind_.repush = !open_.empty();
    if (peek_rewind_.repush) {
      peek_rewind_.reopened = open_.back();
    }
    peek_rewind_.diagnostics_size = diagnostics_.size();
    peek_rewind_.truncated = truncated_;
    peek_rewind_.saw_malformed = saw_malformed_;
    peek_rewind_.has_stashed = has_stashed_;
    peek_rewind_.stashed = stashed_;
    peek_ = Lex();
    has_peek_ = true;
  }
  return peek_;
}

void DataStreamReader::RewindPeek() {
  pos_ = peek_rewind_.pos;
  if (open_.size() > peek_rewind_.open_size) {
    open_.pop_back();  // The peeked token was a \begindata.
  } else if (open_.size() < peek_rewind_.open_size && peek_rewind_.repush) {
    open_.push_back(peek_rewind_.reopened);  // The peeked token was an \enddata.
  }
  diagnostics_.resize(peek_rewind_.diagnostics_size);
  truncated_ = peek_rewind_.truncated;
  saw_malformed_ = peek_rewind_.saw_malformed;
  has_stashed_ = peek_rewind_.has_stashed;
  stashed_ = peek_rewind_.stashed;
  has_peek_ = false;
}

DataStreamReader::Token DataStreamReader::Next() {
  static observability::Counter& tokens =
      observability::MetricsRegistry::Instance().counter("datastream.reader.tokens");
  tokens.Add(1);
  if (has_peek_) {
    has_peek_ = false;
    return peek_;
  }
  return Lex();
}

void DataStreamReader::AddDiagnostic(StatusCode code, size_t offset, std::string message) {
  if (code == StatusCode::kCorrupt) {
    saw_malformed_ = true;
  }
  static observability::Counter& diagnosed =
      observability::MetricsRegistry::Instance().counter("datastream.reader.diagnosed");
  diagnosed.Add(1);
  diagnostics_.push_back(Diagnostic{code, offset, std::move(message)});
}

void DataStreamReader::MarkTruncated(size_t offset, std::string message) {
  if (!truncated_) {
    truncated_ = true;
    diagnostics_.push_back(Diagnostic{StatusCode::kTruncated, offset, std::move(message)});
  }
}

std::string_view DataStreamReader::Intern(std::string&& pending) {
  scratch_bytes_ += pending.size();
  arena_.push_back(std::move(pending));
  // Lazy attach keeps escape-free reads (and sub-readers) at zero charges.
  if (!scratch_mem_.attached()) {
    scratch_mem_ = observability::ScopedCharge(DataStreamScratchAccount());
  }
  scratch_mem_.Resize(static_cast<int64_t>(scratch_bytes_));
  return arena_.back();
}

bool DataStreamReader::LexDirective(Token* token) {
  // pos_ points at '\'.  A directive is \name{args} with no newline between
  // the backslash and the closing brace.
  size_t start = pos_;
  size_t p = pos_ + 1;
  size_t name_start = p;
  while (p < data_.size() && IsDirectiveNameChar(data_[p])) {
    ++p;
  }
  if (p == name_start || p >= data_.size() || data_[p] != '{') {
    return false;
  }
  std::string_view name = data_.substr(name_start, p - name_start);
  ++p;  // consume '{'
  size_t args_start = p;
  while (p < data_.size() && data_[p] != '}' && data_[p] != '\n') {
    ++p;
  }
  if (p >= data_.size() || data_[p] != '}') {
    // `\name{` with no closing brace on the line: damaged, not text.  The
    // token carries the raw bytes (up to the newline / EOF) verbatim so a
    // salvage pass can quarantine them without loss.
    token->kind = Token::Kind::kDiagnostic;
    token->type = name;
    token->text = data_.substr(start, p - start);
    token->offset = Abs(start);
    pos_ = p;  // A trailing newline stays in the stream as ordinary text.
    AddDiagnostic(StatusCode::kCorrupt, Abs(start),
                  "unterminated directive \\" + std::string(name) + "{...");
    return true;
  }
  std::string_view args = data_.substr(args_start, p - args_start);
  pos_ = p + 1;  // past '}'

  if (name == "begindata" || name == "enddata") {
    std::string_view type;
    int64_t id = 0;
    if (!ParseMarkerArgs(args, &type, &id)) {
      // Marker with a missing/non-numeric id: surfaced as a diagnostic token
      // (the raw bytes preserved), never mistaken for content.
      token->kind = Token::Kind::kDiagnostic;
      token->type = name;
      token->text = data_.substr(start, pos_ - start);
      token->offset = Abs(start);
      AddDiagnostic(StatusCode::kCorrupt, Abs(start),
                    "malformed \\" + std::string(name) + " marker args: {" +
                        std::string(args) + "}");
      return true;
    }
    // One trailing newline is part of the marker's formatting.
    if (pos_ < data_.size() && data_[pos_] == '\n') {
      ++pos_;
    }
    if (name == "begindata") {
      open_.push_back(OpenMarker{std::string(type), id});
      static observability::Gauge& depth_max =
          observability::MetricsRegistry::Instance().gauge("datastream.reader.depth_max");
      depth_max.SetMax(static_cast<int64_t>(open_.size()));
      token->kind = Token::Kind::kBeginData;
    } else {
      if (!open_.empty() && open_.back().type == type && open_.back().id == id) {
        open_.pop_back();
      } else {
        AddDiagnostic(StatusCode::kCorrupt, Abs(start),
                      "mismatched \\enddata{" + std::string(type) + "," +
                          std::to_string(id) + "}");
        if (!open_.empty()) {
          open_.pop_back();
        }
      }
      token->kind = Token::Kind::kEndData;
    }
    token->type = type;
    token->id = id;
    token->offset = Abs(start);
    return true;
  }
  if (name == "view") {
    std::string_view type;
    int64_t id = 0;
    if (ParseMarkerArgs(args, &type, &id)) {
      token->kind = Token::Kind::kViewRef;
      token->type = type;
      token->id = id;
      token->offset = Abs(start);
      return true;
    }
    token->kind = Token::Kind::kDiagnostic;
    token->type = name;
    token->text = data_.substr(start, pos_ - start);
    token->offset = Abs(start);
    AddDiagnostic(StatusCode::kCorrupt, Abs(start),
                  "malformed \\view args: {" + std::string(args) + "}");
    return true;
  }
  token->kind = Token::Kind::kDirective;
  token->type = name;
  token->text = args;
  token->offset = Abs(start);
  return true;
}

DataStreamReader::Token DataStreamReader::Lex() {
  if (has_stashed_) {
    has_stashed_ = false;
    return stashed_;
  }
  Token token;
  size_t text_start = pos_;
  // The current escape-free segment is [seg_start, scan point).  Until an
  // escape forces materialization the token stays a view; `pending` only
  // exists once \\ or \x{hh} is seen.
  size_t seg_start = pos_;
  std::string pending;
  bool materialized = false;
  auto flush_segment = [&](size_t upto) {
    if (upto > seg_start) {
      pending.append(data_.data() + seg_start, upto - seg_start);
    }
  };

  while (pos_ < data_.size()) {
    size_t b = FindBackslash(data_, pos_);
    if (b == std::string_view::npos) {
      pos_ = data_.size();
      break;
    }
    pos_ = b;
    // Escapes that continue the text run.
    if (b + 1 < data_.size() && data_[b + 1] == '\\') {
      flush_segment(b);
      pending += '\\';
      materialized = true;
      pos_ = b + 2;
      seg_start = pos_;
      continue;
    }
    if (b + 4 < data_.size() && data_[b + 1] == 'x' && data_[b + 2] == '{') {
      int hi = HexValue(data_[b + 3]);
      int lo = HexValue(data_[b + 4]);
      if (hi >= 0 && lo >= 0 && b + 5 < data_.size() && data_[b + 5] == '}') {
        flush_segment(b);
        pending += static_cast<char>(hi * 16 + lo);
        materialized = true;
        pos_ = b + 6;
        seg_start = pos_;
        continue;
      }
    }
    // Try a directive.  On success, flush accumulated text first (the
    // directive token is held as the pending stash).
    Token directive;
    if (LexDirective(&directive)) {
      bool have_view_text = !materialized && b > text_start;
      if (!materialized && !have_view_text) {
        return directive;
      }
      token.kind = Token::Kind::kText;
      token.offset = Abs(text_start);
      if (materialized) {
        flush_segment(b);
        token.text = Intern(std::move(pending));
      } else {
        token.text = data_.substr(text_start, b - text_start);
      }
      stashed_ = directive;
      has_stashed_ = true;
      return token;
    }
    // Lone backslash that is not an escape and not a directive: recovered as
    // literal text (the paper's partial-destruction recovery posture).  The
    // byte is its own unescaped form, so the segment continues through it —
    // no materialization needed.
    AddDiagnostic(StatusCode::kCorrupt, Abs(b), "lone backslash recovered as literal text");
    pos_ = b + 1;
  }
  if (materialized) {
    flush_segment(pos_);
    token.kind = Token::Kind::kText;
    token.text = Intern(std::move(pending));
    token.offset = Abs(text_start);
    return token;
  }
  if (pos_ > text_start) {
    token.kind = Token::Kind::kText;
    token.text = data_.substr(text_start, pos_ - text_start);
    token.offset = Abs(text_start);
    return token;
  }
  if (!open_.empty()) {
    MarkTruncated(Abs(pos_), "input ended with " + std::to_string(open_.size()) +
                                 " marker(s) still open (innermost: \\begindata{" +
                                 open_.back().type + "," + std::to_string(open_.back().id) +
                                 "})");
  }
  token.kind = Token::Kind::kEof;
  token.offset = Abs(pos_);
  return token;
}

bool DataStreamReader::SkipObject(std::string_view type, int64_t id,
                                  std::string_view* raw_body) {
  RawCapture capture;
  bool ok = SkipObject(type, id, &capture);
  if (raw_body != nullptr) {
    *raw_body = capture.body;
  }
  return ok;
}

bool DataStreamReader::SkipObject(std::string_view type, int64_t id, RawCapture* capture) {
  // Bracket-match on raw input without interpreting component payloads.
  // We scan for \begindata / \enddata directives only; escaped backslashes
  // cannot form a directive because "\\begindata" parses as literal
  // backslash followed by plain text.
  if (has_peek_) {
    // A token was peeked past the begindata marker: rewind so its bytes are
    // part of the skipped body (they belong to the object).
    RewindPeek();
  }
  has_stashed_ = false;
  size_t body_start = pos_;
  int depth_needed = 1;
  size_t p = pos_;
  while (p < data_.size()) {
    size_t b = FindBackslash(data_, p);
    if (b == std::string_view::npos) {
      break;
    }
    p = b;
    if (p + 1 < data_.size() && data_[p + 1] == '\\') {
      p += 2;
      continue;
    }
    // Try to read a directive name.
    size_t q = p + 1;
    size_t name_start = q;
    while (q < data_.size() && IsDirectiveNameChar(data_[q])) {
      ++q;
    }
    if (q == name_start || q >= data_.size() || data_[q] != '{') {
      ++p;
      continue;
    }
    std::string_view name = data_.substr(name_start, q - name_start);
    size_t args_start = q + 1;
    size_t close = data_.find('}', args_start);
    if (close == std::string_view::npos || data_.find('\n', args_start) < close) {
      ++p;
      continue;
    }
    if (name == "begindata") {
      ++depth_needed;
    } else if (name == "enddata") {
      --depth_needed;
      if (depth_needed == 0) {
        std::string_view args = data_.substr(args_start, close - args_start);
        std::string_view end_type;
        int64_t end_id = 0;
        if (!ParseMarkerArgs(args, &end_type, &end_id) || end_type != type || end_id != id) {
          AddDiagnostic(StatusCode::kCorrupt, Abs(p),
                        "skip of \\begindata{" + std::string(type) + "," + std::to_string(id) +
                            "} closed by non-matching \\enddata{" + std::string(args) + "}");
        }
        pos_ = close + 1;
        if (pos_ < data_.size() && data_[pos_] == '\n') {
          ++pos_;
        }
        if (capture != nullptr) {
          capture->body = data_.substr(body_start, p - body_start);
          capture->with_end = data_.substr(body_start, pos_ - body_start);
          capture->offset = Abs(body_start);
          capture->complete = true;
        }
        if (!open_.empty()) {
          open_.pop_back();
        }
        return true;
      }
    }
    p = close + 1;
  }
  // Ran off the end: truncated object.
  MarkTruncated(Abs(data_.size()), "input ended while skipping \\begindata{" +
                                       std::string(type) + "," + std::to_string(id) + "}");
  if (capture != nullptr) {
    capture->body = data_.substr(body_start);
    capture->with_end = capture->body;
    capture->offset = Abs(body_start);
    capture->complete = false;
  }
  pos_ = data_.size();
  open_.clear();
  return false;
}

}  // namespace atk
