// The pre-zero-copy datastream lexer, frozen as a baseline.
//
// This is the PR-5 snapshot of DataStreamReader before the pinned-buffer
// rewrite: it materializes an owning std::string per token and accumulates
// text byte-by-byte.  It is kept in-tree for two reasons (the same policy
// PR 3 applied to the flat-rect region algorithm):
//
//  * bench_datastream's BM_ReadDocumentBySize_Baseline measures the copying
//    ingestion path against the zero-copy one, and check_perf.sh pins the
//    speedup;
//  * tests/test_datastream_differential.cc sweeps seeded clean / truncated /
//    corrupted inputs through both lexers and asserts token-for-token and
//    diagnostic-for-diagnostic equivalence, so the zero-copy rewrite can
//    never silently change what the toolkit parses.
//
// Do not extend this class; behavioural changes belong in DataStreamReader
// and will be caught by the differential sweep if they diverge.

#ifndef ATK_SRC_DATASTREAM_BASELINE_READER_H_
#define ATK_SRC_DATASTREAM_BASELINE_READER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/class_system/status.h"

namespace atk {

class BaselineDataStreamReader {
 public:
  struct Token {
    enum class Kind {
      kText,
      kBeginData,
      kEndData,
      kViewRef,
      kDirective,
      kDiagnostic,
      kEof,
    };

    Kind kind = Kind::kEof;
    std::string text;
    std::string type;
    int64_t id = 0;
    size_t offset = 0;
  };

  explicit BaselineDataStreamReader(std::string input);

  Token Next();
  const Token& Peek();
  bool SkipObject(std::string_view type, int64_t id, std::string* raw_body = nullptr);

  int depth() const { return static_cast<int>(open_.size()); }
  bool truncated() const { return truncated_; }
  bool saw_malformed() const { return saw_malformed_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  size_t position() const { return pos_; }
  size_t input_size() const { return input_.size(); }

 private:
  struct OpenMarker {
    std::string type;
    int64_t id;
  };

  Token Lex();
  bool LexDirective(Token* token);
  void AddDiagnostic(StatusCode code, size_t offset, std::string message);
  void MarkTruncated(size_t offset, std::string message);

  std::string input_;
  size_t pos_ = 0;
  std::vector<OpenMarker> open_;
  std::vector<Diagnostic> diagnostics_;
  bool truncated_ = false;
  bool saw_malformed_ = false;
  bool has_peek_ = false;
  Token peek_;
  bool has_stashed_ = false;
  Token stashed_;
};

}  // namespace atk

#endif  // ATK_SRC_DATASTREAM_BASELINE_READER_H_
