// External-representation reader (§5).
//
// Tokenizes a datastream into text fragments and directives.  Two properties
// the toolkit depends on are implemented here:
//
//  * SkipObject: after seeing \begindata{type,id}, the extent of the object
//    can be found by bracket-matching alone — no component code needed — and
//    the raw body captured for verbatim re-emission (this is how a document
//    containing a component you don't have survives an edit/save cycle).
//  * Truncation recovery: when input ends with markers still open, the
//    reader reports `truncated()` and what was parsed remains valid — the
//    paper's "easier recovery when files are partially destroyed".
//
// Malformed input is never silently swallowed: damaged directives (a marker
// with a missing id, an unterminated `{...}`, a non-numeric id) surface as
// kDiagnostic tokens carrying the raw damaged bytes, and every recovery the
// reader performs is recorded in `diagnostics()` with a byte offset, so a
// salvage pass (src/robustness/salvage.h) can locate the damage exactly.

#ifndef ATK_SRC_DATASTREAM_READER_H_
#define ATK_SRC_DATASTREAM_READER_H_

#include <cstdint>
#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "src/class_system/status.h"

namespace atk {

class DataStreamReader {
 public:
  struct Token {
    enum class Kind {
      kText,       // Unescaped payload text (may span newlines up to the next directive).
      kBeginData,  // \begindata{type,id}
      kEndData,    // \enddata{type,id}
      kViewRef,    // \view{viewtype,id}
      kDirective,  // any other \name{args}
      kDiagnostic, // a damaged directive; `text` holds the raw bytes.
      kEof,
    };

    Kind kind = Kind::kEof;
    std::string text;  // kText: payload; kDirective: args; kDiagnostic: raw bytes.
    std::string type;  // marker type / directive name / view type.
    int64_t id = 0;    // marker or view-reference id.
    size_t offset = 0; // Byte offset where the token started (diagnostics).
  };

  explicit DataStreamReader(std::string input);
  explicit DataStreamReader(std::istream& in);

  // Returns the next token.  At end of input returns kEof forever.
  Token Next();

  // Peek without consuming.
  const Token& Peek();

  // Call after consuming a kBeginData token to skip the whole object without
  // parsing it.  Nested objects are skipped by bracket matching.  When
  // `raw_body` is non-null it receives the object's body *verbatim*
  // (escapes intact, inner markers intact), suitable for WriteRaw.
  // Returns false when input ends before the matching \enddata (the stream
  // is then marked truncated).
  bool SkipObject(std::string_view type, int64_t id, std::string* raw_body = nullptr);

  // Nesting depth of open \begindata markers seen so far.
  int depth() const { return static_cast<int>(open_.size()); }

  // True once input ended with unbalanced markers or a malformed directive
  // was recovered from.
  bool truncated() const { return truncated_; }
  bool saw_malformed() const { return saw_malformed_; }

  // Every recovery performed so far: truncations, damaged directives, marker
  // mismatches, lone backslashes — each with the byte offset of the damage.
  // Generalizes `truncated()`; empty means the input parsed clean.
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  // Byte offset of the read cursor (diagnostics, bench).
  size_t position() const { return pos_; }
  size_t input_size() const { return input_.size(); }

 private:
  struct OpenMarker {
    std::string type;
    int64_t id;
  };

  Token Lex();
  // Parses "\name{args}" at pos_ (which points at the backslash).  Returns
  // false when it is not a well-formed directive (treated as literal text).
  // Damaged directives (unterminated brace, malformed marker args) return
  // true with a kDiagnostic token so the damage is surfaced, not swallowed.
  bool LexDirective(Token* token);
  void AddDiagnostic(StatusCode code, size_t offset, std::string message);
  void MarkTruncated(size_t offset, std::string message);

  std::string input_;
  size_t pos_ = 0;
  std::vector<OpenMarker> open_;
  std::vector<Diagnostic> diagnostics_;
  bool truncated_ = false;
  bool saw_malformed_ = false;
  bool has_peek_ = false;
  Token peek_;
  // A directive token produced while flushing preceding text out of Lex().
  bool has_stashed_ = false;
  Token stashed_;
};

}  // namespace atk

#endif  // ATK_SRC_DATASTREAM_READER_H_
