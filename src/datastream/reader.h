// External-representation reader (§5) — zero-copy streaming pipeline.
//
// Tokenizes a datastream into text fragments and directives.  Two properties
// the toolkit depends on are implemented here:
//
//  * SkipObject: after seeing \begindata{type,id}, the extent of the object
//    can be found by bracket-matching alone — no component code needed — and
//    the raw body captured for verbatim re-emission (this is how a document
//    containing a component you don't have survives an edit/save cycle).
//  * Truncation recovery: when input ends with markers still open, the
//    reader reports `truncated()` and what was parsed remains valid — the
//    paper's "easier recovery when files are partially destroyed".
//
// Zero-copy design (PR 5).  The input buffer is *pinned*: the owning-string
// constructor takes the bytes and never reallocates them; the istream
// constructor reads in large chunks before pinning; the string_view
// constructor borrows bytes the caller keeps alive.  Token `text`/`type` are
// std::string_view slices — either directly into the pinned buffer (the
// common case: any text run without escapes, every directive) or into a
// reader-owned unescape arena (text runs containing \\ or \x{hh} escapes,
// which are bulk-unescaped on demand).  Either way the rule is the same:
// **tokens die when the reader dies.**  Callers that need bytes beyond the
// reader's lifetime must copy (UnknownObject does).  Text scanning is
// memchr-driven: bytes between backslashes are never touched one at a time.
//
// Malformed input is never silently swallowed: damaged directives (a marker
// with a missing id, an unterminated `{...}`, a non-numeric id) surface as
// kDiagnostic tokens carrying the raw damaged bytes, and every recovery the
// reader performs is recorded in `diagnostics()` with a byte offset, so a
// salvage pass (src/robustness/salvage.h) can locate the damage exactly.
// Offsets are relative to the pinned buffer's origin: a sub-reader opened
// over an embedded object's raw bytes (ForEmbeddedObject) reports offsets
// in the *enclosing* document's coordinates via its base offset.
//
// Behavioural identity with the pre-rewrite lexer (token boundaries, token
// bytes, diagnostics, recovery) is pinned by the 64-seed differential sweep
// in tests/test_datastream_differential.cc against the frozen
// BaselineDataStreamReader.

#ifndef ATK_SRC_DATASTREAM_READER_H_
#define ATK_SRC_DATASTREAM_READER_H_

#include <cstdint>
#include <deque>
#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "src/class_system/status.h"
#include "src/observability/memory.h"

namespace atk {

// Memory accounts for the reader's owned pools: `datastream.mem.pinned`
// (owning-constructor backing buffers) and `datastream.mem.scratch` (the
// unescape arena).  Borrowed buffers are charged by their owners.
observability::MemoryAccount& DataStreamPinnedAccount();
observability::MemoryAccount& DataStreamScratchAccount();

class DataStreamReader {
 public:
  struct Token {
    enum class Kind {
      kText,       // Unescaped payload text (may span newlines up to the next directive).
      kBeginData,  // \begindata{type,id}
      kEndData,    // \enddata{type,id}
      kViewRef,    // \view{viewtype,id}
      kDirective,  // any other \name{args}
      kDiagnostic, // a damaged directive; `text` holds the raw bytes.
      kEof,
    };

    Kind kind = Kind::kEof;
    // kText: payload; kDirective: args; kDiagnostic: raw bytes.  A slice of
    // the pinned buffer or the reader's unescape arena — valid only while
    // the reader lives.
    std::string_view text;
    // Marker type / directive name / view type.  Same lifetime rule.
    std::string_view type;
    int64_t id = 0;    // marker or view-reference id.
    size_t offset = 0; // Byte offset where the token started (diagnostics).
  };

  // The raw bytes of one skipped object, captured without parsing.
  struct RawCapture {
    std::string_view body;        // Between the markers, escapes intact.
    std::string_view with_end;    // body plus the closing \enddata{...}\n —
                                  // a self-delimiting unit ForEmbeddedObject
                                  // can re-lex.
    size_t offset = 0;            // Pinned-buffer offset of `body`.
    bool complete = false;        // False when input ended inside the object.
  };

  // Owning constructor: pins `input` for the reader's lifetime.
  explicit DataStreamReader(std::string input);
  // String literals own-by-copy (disambiguates from the borrowing ctor).
  explicit DataStreamReader(const char* input) : DataStreamReader(std::string(input)) {}
  // Reads `in` to EOF in large chunks (no ostringstream detour), then pins.
  explicit DataStreamReader(std::istream& in);
  // Borrowing constructor: the caller guarantees `pinned` outlives the
  // reader.  Token/diagnostic offsets are `base_offset` + position within
  // `pinned`, so diagnostics from a slice of a larger document still point
  // into that document.
  explicit DataStreamReader(std::string_view pinned, size_t base_offset = 0);

  // A sub-reader over one embedded object captured by SkipObject: lexes
  // `capture.with_end` as if the object's \begindata{type,id} had just been
  // consumed (the marker is pre-opened, so the body's own \enddata balances).
  // Used by the parallel decode stage; the parent reader's pinned buffer
  // must outlive the sub-reader.
  static DataStreamReader ForEmbeddedObject(const RawCapture& capture,
                                            std::string_view type, int64_t id);

  // Returns the next token.  At end of input returns kEof forever.
  Token Next();

  // Peek without consuming.  The reader snapshots its lexer state so a
  // following SkipObject can rewind over the peeked token (see below).
  const Token& Peek();

  // Call after consuming a kBeginData token to skip the whole object without
  // parsing it.  Nested objects are skipped by bracket matching.  When
  // `raw_body` is non-null it receives a view of the object's body
  // *verbatim* (escapes intact, inner markers intact, valid while the
  // reader lives), suitable for WriteRaw.  Returns false when input ends
  // before the matching \enddata (the stream is then marked truncated).
  //
  // If a token has been Peeked but not consumed, the reader rewinds to the
  // peek point first, so the peeked token's bytes are part of the skipped
  // body instead of being silently dropped (the pre-PR-5 footgun).
  bool SkipObject(std::string_view type, int64_t id, std::string_view* raw_body = nullptr);
  // As above, capturing the full extent for deferred decode.
  bool SkipObject(std::string_view type, int64_t id, RawCapture* capture);

  // Nesting depth of open \begindata markers seen so far.
  int depth() const { return static_cast<int>(open_.size()); }

  // True once input ended with unbalanced markers or a malformed directive
  // was recovered from.
  bool truncated() const { return truncated_; }
  bool saw_malformed() const { return saw_malformed_; }

  // Every recovery performed so far: truncations, damaged directives, marker
  // mismatches, lone backslashes — each with the byte offset of the damage.
  // Generalizes `truncated()`; empty means the input parsed clean.
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  // Byte offset of the read cursor within this reader's input (diagnostics,
  // bench).  For a sub-reader, relative to its slice, not the document.
  size_t position() const { return pos_; }
  size_t input_size() const { return data_.size(); }

  // Bytes copied into the unescape arena so far; 0 for escape-free input
  // (the zero-copy invariant, asserted by tests).
  size_t scratch_bytes() const { return scratch_bytes_; }

 private:
  // For ForEmbeddedObject: a sub-reader over an already-counted document is
  // assembled field-by-field (and skips the reader-open metrics).
  DataStreamReader() = default;

  struct OpenMarker {
    std::string type;
    int64_t id;
  };

  // Lexer state snapshot for the Peek -> SkipObject rewind.
  struct PeekRewind {
    size_t pos = 0;
    size_t open_size = 0;
    OpenMarker reopened;        // Marker popped by a peeked \enddata.
    bool repush = false;
    size_t diagnostics_size = 0;
    bool truncated = false;
    bool saw_malformed = false;
    bool has_stashed = false;
    Token stashed;
  };

  Token Lex();
  // Parses "\name{args}" at pos_ (which points at the backslash).  Returns
  // false when it is not a well-formed directive (treated as literal text).
  // Damaged directives (unterminated brace, malformed marker args) return
  // true with a kDiagnostic token so the damage is surfaced, not swallowed.
  bool LexDirective(Token* token);
  void AddDiagnostic(StatusCode code, size_t offset, std::string message);
  void MarkTruncated(size_t offset, std::string message);
  void RewindPeek();
  // Moves `pending` into the arena and returns a stable view of it.
  std::string_view Intern(std::string&& pending);
  size_t Abs(size_t rel) const { return rel + base_offset_; }

  std::string owned_;       // Backing bytes for the owning constructors.
  std::string_view data_;   // The pinned buffer all views slice into.
  size_t base_offset_ = 0;  // Added to every reported offset.
  size_t pos_ = 0;
  std::vector<OpenMarker> open_;
  std::vector<Diagnostic> diagnostics_;
  bool truncated_ = false;
  bool saw_malformed_ = false;
  bool has_peek_ = false;
  Token peek_;
  PeekRewind peek_rewind_;
  // A directive token produced while flushing preceding text out of Lex().
  bool has_stashed_ = false;
  Token stashed_;
  // Unescaped text storage: deque elements never move, so views into them
  // stay valid for the reader's lifetime.
  std::deque<std::string> arena_;
  size_t scratch_bytes_ = 0;
  // Byte accounting (released when the reader dies; transferred on move).
  observability::ScopedCharge pinned_mem_;
  observability::ScopedCharge scratch_mem_;
};

}  // namespace atk

#endif  // ATK_SRC_DATASTREAM_READER_H_
