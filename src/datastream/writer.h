// External-representation writer (§5).
//
// Only data objects are written to files.  The single hard architectural
// requirement: every object's output is enclosed in a properly nested
//     \begindata{type,id} ... \enddata{type,id}
// pair, so that any reader can find the extent of any object *without
// parsing its contents*.  A `\view{viewtype,id}` directive marks where a view
// on data object `id` sits inside an enclosing object's content.
//
// The guidelines the paper adds (7-bit printable ASCII, lines under 80
// characters, human-legible) are enforced here: payload text has backslashes
// doubled and non-ASCII bytes hex-escaped as \x{hh}, and the writer records
// the longest line emitted so components can be tested against the 80-column
// guideline.
//
// Emission is chunked (PR 5): each public call assembles its bytes in an
// internal chunk buffer and hands the ostream one write, instead of one
// ostream::put per byte.  WriteText splits the payload into backslash-free
// runs with memchr and appends each clean run in one go; line/column stats
// are updated per run, not per byte.  The chunk is flushed before a public
// call returns, so `out` always reflects everything written so far — callers
// that inspect the underlying streambuf mid-document see the same bytes the
// per-char writer produced.

#ifndef ATK_SRC_DATASTREAM_WRITER_H_
#define ATK_SRC_DATASTREAM_WRITER_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/class_system/status.h"

namespace atk {

class DataStreamWriter {
 public:
  explicit DataStreamWriter(std::ostream& out);
  ~DataStreamWriter();

  DataStreamWriter(const DataStreamWriter&) = delete;
  DataStreamWriter& operator=(const DataStreamWriter&) = delete;

  // Opens an object of `type`, assigning and returning a stream-unique id.
  int64_t BeginData(std::string_view type);
  // Opens an object with a caller-chosen id (ids must be unique per stream).
  void BeginDataWithId(std::string_view type, int64_t id);
  // Closes the innermost open object.
  void EndData();

  // Writes a \view{viewtype,id} placement reference.
  void WriteViewReference(std::string_view view_type, int64_t data_id);

  // Writes an arbitrary component directive \name{args}.
  void WriteDirective(std::string_view name, std::string_view args);

  // Writes payload text with escaping: '\' becomes "\\", bytes outside
  // printable 7-bit ASCII (other than \n and \t) become \x{hh}.  Newlines in
  // `text` pass through.
  void WriteText(std::string_view text);
  // WriteText + newline.
  void WriteLine(std::string_view line);
  // Writes already-escaped content verbatim (round-tripping an unknown
  // object's captured raw body).
  void WriteRaw(std::string_view raw);
  void WriteNewline();

  // ---- Object-identity tracking ----
  // DataObject::Write records (object, id) here so that a later object in
  // the same stream can reference an earlier one (the chart's
  // \chartsource{id} pointing at its table).
  void RegisterObjectId(const void* object, int64_t id);
  // The id `object` was written under, or 0 when not yet written.
  int64_t FindObjectId(const void* object) const;

  // Current nesting depth (open BeginData count).
  int depth() const { return static_cast<int>(stack_.size()); }

  // True when every BeginData has been closed.
  bool balanced() const { return stack_.empty(); }

  // Structural problems recorded while writing (EndData with no open object,
  // duplicate caller-chosen ids).  A clean write leaves this empty.
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  // Call when the document is complete: OK when the stream is balanced and
  // no diagnostics were recorded, otherwise a Corrupt status naming the
  // first problem.  The stream itself is already on disk either way — this
  // is the report-instead-of-ignore half of the §5 recovery posture.
  Status Finish() const;

  // ---- Stats (for the §5 guideline tests and bench_datastream) ----
  int64_t bytes_written() const { return bytes_written_; }
  int max_line_length() const { return max_line_length_; }
  int max_depth() const { return max_depth_; }
  bool all_seven_bit() const { return all_seven_bit_; }

 private:
  struct OpenObject {
    std::string type;
    int64_t id;
  };

  // Appends to the pending chunk; stats are settled when the chunk flushes.
  void EmitChunk(std::string_view s);
  // Escapes non-printable bytes in a backslash-free run into the chunk.
  void EmitEscapedRun(std::string_view run);
  // One ostream write for the pending chunk + bulk line/column accounting.
  void FlushChunk();
  void Account(std::string_view s);
  void WriteTextUnflushed(std::string_view text);

  std::ostream& out_;
  std::string chunk_;
  std::vector<OpenObject> stack_;
  std::vector<Diagnostic> diagnostics_;
  std::map<const void*, int64_t> object_ids_;
  std::map<int64_t, std::string> ids_in_use_;
  int64_t next_id_ = 1;
  int64_t bytes_written_ = 0;
  int column_ = 0;
  int max_line_length_ = 0;
  int max_depth_ = 0;
  bool all_seven_bit_ = true;
};

}  // namespace atk

#endif  // ATK_SRC_DATASTREAM_WRITER_H_
