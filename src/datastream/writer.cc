#include "src/datastream/writer.h"

#include <cstdio>
#include <cstring>

#include "src/observability/observability.h"

namespace atk {
namespace {

// Bytes WriteText passes through verbatim; everything else is escaped.
bool IsCleanTextByte(char ch) {
  unsigned char byte = static_cast<unsigned char>(ch);
  return ch == '\n' || ch == '\t' || (byte >= 0x20 && byte < 0x7F);
}

}  // namespace

DataStreamWriter::DataStreamWriter(std::ostream& out) : out_(out) {}

DataStreamWriter::~DataStreamWriter() {
  // Whole-stream accounting is published once, at teardown, so the emission
  // path stays untouched.
  using observability::Counter;
  using observability::Gauge;
  using observability::MetricsRegistry;
  static Counter& bytes = MetricsRegistry::Instance().counter("datastream.writer.emitted_bytes");
  static Counter& diagnosed =
      MetricsRegistry::Instance().counter("datastream.writer.diagnosed");
  static Gauge& depth_max = MetricsRegistry::Instance().gauge("datastream.writer.depth_max");
  bytes.Add(static_cast<uint64_t>(bytes_written_));
  diagnosed.Add(diagnostics_.size());
  depth_max.SetMax(max_depth_);
}

void DataStreamWriter::EmitChunk(std::string_view s) { chunk_.append(s); }

void DataStreamWriter::Account(std::string_view s) {
  bytes_written_ += static_cast<int64_t>(s.size());
  // Column tracking per newline-delimited segment instead of per byte.
  size_t start = 0;
  while (start <= s.size()) {
    const void* hit = s.size() > start
                          ? std::memchr(s.data() + start, '\n', s.size() - start)
                          : nullptr;
    if (hit == nullptr) {
      column_ += static_cast<int>(s.size() - start);
      if (column_ > max_line_length_) {
        max_line_length_ = column_;
      }
      break;
    }
    size_t nl = static_cast<size_t>(static_cast<const char*>(hit) - s.data());
    column_ += static_cast<int>(nl - start);
    if (column_ > max_line_length_) {
      max_line_length_ = column_;
    }
    column_ = 0;
    start = nl + 1;
  }
}

void DataStreamWriter::FlushChunk() {
  if (chunk_.empty()) {
    return;
  }
  Account(chunk_);
  out_.write(chunk_.data(), static_cast<std::streamsize>(chunk_.size()));
  chunk_.clear();
}

int64_t DataStreamWriter::BeginData(std::string_view type) {
  int64_t id = next_id_++;
  BeginDataWithId(type, id);
  return id;
}

// Markers are written inline (wherever the enclosing object's content has
// reached) followed by one newline; the reader consumes that newline as part
// of the marker, so surrounding payload text round-trips byte-exactly.
void DataStreamWriter::BeginDataWithId(std::string_view type, int64_t id) {
  static observability::Counter& objects =
      observability::MetricsRegistry::Instance().counter("datastream.writer.objects");
  objects.Add(1);
  if (id >= next_id_) {
    next_id_ = id + 1;
  }
  auto [it, inserted] = ids_in_use_.emplace(id, std::string(type));
  if (!inserted) {
    diagnostics_.push_back(Diagnostic{
        StatusCode::kCorrupt, static_cast<size_t>(bytes_written_),
        "duplicate stream id " + std::to_string(id) + " (already used by \\begindata{" +
            it->second + "," + std::to_string(id) + "})"});
  }
  EmitChunk("\\begindata{");
  EmitChunk(type);
  EmitChunk(",");
  EmitChunk(std::to_string(id));
  EmitChunk("}\n");
  FlushChunk();
  stack_.push_back(OpenObject{std::string(type), id});
  if (depth() > max_depth_) {
    max_depth_ = depth();
  }
}

void DataStreamWriter::EndData() {
  if (stack_.empty()) {
    diagnostics_.push_back(Diagnostic{StatusCode::kCorrupt,
                                      static_cast<size_t>(bytes_written_),
                                      "EndData with no open object"});
    return;
  }
  OpenObject open = stack_.back();
  stack_.pop_back();
  EmitChunk("\\enddata{");
  EmitChunk(open.type);
  EmitChunk(",");
  EmitChunk(std::to_string(open.id));
  EmitChunk("}\n");
  FlushChunk();
}

void DataStreamWriter::WriteViewReference(std::string_view view_type, int64_t data_id) {
  EmitChunk("\\view{");
  EmitChunk(view_type);
  EmitChunk(",");
  EmitChunk(std::to_string(data_id));
  EmitChunk("}");
  FlushChunk();
}

void DataStreamWriter::WriteDirective(std::string_view name, std::string_view args) {
  EmitChunk("\\");
  EmitChunk(name);
  EmitChunk("{");
  EmitChunk(args);
  EmitChunk("}");
  FlushChunk();
}

void DataStreamWriter::EmitEscapedRun(std::string_view run) {
  size_t i = 0;
  while (i < run.size()) {
    size_t j = i;
    while (j < run.size() && IsCleanTextByte(run[j])) {
      ++j;
    }
    if (j > i) {
      EmitChunk(run.substr(i, j - i));
    }
    if (j >= run.size()) {
      break;
    }
    // Hex-escape so the stream stays 7-bit printable (mailable, §5).
    char buf[8];
    std::snprintf(buf, sizeof(buf), "\\x{%02x}",
                  static_cast<unsigned char>(run[j]));
    EmitChunk(buf);
    i = j + 1;
  }
}

void DataStreamWriter::WriteTextUnflushed(std::string_view text) {
  // Split into backslash-free runs with memchr; each clean run lands in the
  // chunk as one append.
  size_t i = 0;
  while (i < text.size()) {
    const void* hit = std::memchr(text.data() + i, '\\', text.size() - i);
    size_t run_end = hit == nullptr
                         ? text.size()
                         : static_cast<size_t>(static_cast<const char*>(hit) - text.data());
    EmitEscapedRun(text.substr(i, run_end - i));
    if (run_end < text.size()) {
      EmitChunk("\\\\");
      ++run_end;
    }
    i = run_end;
  }
}

void DataStreamWriter::WriteText(std::string_view text) {
  WriteTextUnflushed(text);
  FlushChunk();
}

void DataStreamWriter::WriteLine(std::string_view line) {
  WriteTextUnflushed(line);
  EmitChunk("\n");
  FlushChunk();
}

void DataStreamWriter::WriteRaw(std::string_view raw) {
  if (all_seven_bit_) {
    for (char ch : raw) {
      if (static_cast<unsigned char>(ch) >= 0x80) {
        all_seven_bit_ = false;
        break;
      }
    }
  }
  EmitChunk(raw);
  FlushChunk();
}

void DataStreamWriter::WriteNewline() {
  EmitChunk("\n");
  FlushChunk();
}

Status DataStreamWriter::Finish() const {
  if (!stack_.empty()) {
    return Status::Corrupt("stream finished with " + std::to_string(stack_.size()) +
                           " object(s) still open (innermost: \\begindata{" +
                           stack_.back().type + "," + std::to_string(stack_.back().id) + "})");
  }
  if (!diagnostics_.empty()) {
    return Status::Corrupt(diagnostics_.front().ToString());
  }
  return Status::Ok();
}

void DataStreamWriter::RegisterObjectId(const void* object, int64_t id) {
  object_ids_[object] = id;
}

int64_t DataStreamWriter::FindObjectId(const void* object) const {
  auto it = object_ids_.find(object);
  return it == object_ids_.end() ? 0 : it->second;
}

}  // namespace atk
