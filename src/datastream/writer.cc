#include "src/datastream/writer.h"

#include <cstdio>

#include "src/observability/observability.h"

namespace atk {

DataStreamWriter::DataStreamWriter(std::ostream& out) : out_(out) {}

DataStreamWriter::~DataStreamWriter() {
  // Whole-stream accounting is published once, at teardown, so the per-byte
  // Emit path stays untouched.
  using observability::Counter;
  using observability::Gauge;
  using observability::MetricsRegistry;
  static Counter& bytes = MetricsRegistry::Instance().counter("datastream.writer.bytes");
  static Counter& diagnosed =
      MetricsRegistry::Instance().counter("datastream.writer.diagnosed");
  static Gauge& depth_max = MetricsRegistry::Instance().gauge("datastream.writer.depth_max");
  bytes.Add(static_cast<uint64_t>(bytes_written_));
  diagnosed.Add(diagnostics_.size());
  depth_max.SetMax(max_depth_);
}

void DataStreamWriter::Emit(char ch) {
  out_.put(ch);
  ++bytes_written_;
  if (ch == '\n') {
    column_ = 0;
  } else {
    ++column_;
    if (column_ > max_line_length_) {
      max_line_length_ = column_;
    }
  }
}

void DataStreamWriter::EmitString(std::string_view s) {
  for (char ch : s) {
    Emit(ch);
  }
}

int64_t DataStreamWriter::BeginData(std::string_view type) {
  int64_t id = next_id_++;
  BeginDataWithId(type, id);
  return id;
}

// Markers are written inline (wherever the enclosing object's content has
// reached) followed by one newline; the reader consumes that newline as part
// of the marker, so surrounding payload text round-trips byte-exactly.
void DataStreamWriter::BeginDataWithId(std::string_view type, int64_t id) {
  static observability::Counter& objects =
      observability::MetricsRegistry::Instance().counter("datastream.writer.objects");
  objects.Add(1);
  if (id >= next_id_) {
    next_id_ = id + 1;
  }
  auto [it, inserted] = ids_in_use_.emplace(id, std::string(type));
  if (!inserted) {
    diagnostics_.push_back(Diagnostic{
        StatusCode::kCorrupt, static_cast<size_t>(bytes_written_),
        "duplicate stream id " + std::to_string(id) + " (already used by \\begindata{" +
            it->second + "," + std::to_string(id) + "})"});
  }
  EmitString("\\begindata{");
  EmitString(type);
  EmitString(",");
  EmitString(std::to_string(id));
  EmitString("}\n");
  stack_.push_back(OpenObject{std::string(type), id});
  if (depth() > max_depth_) {
    max_depth_ = depth();
  }
}

void DataStreamWriter::EndData() {
  if (stack_.empty()) {
    diagnostics_.push_back(Diagnostic{StatusCode::kCorrupt,
                                      static_cast<size_t>(bytes_written_),
                                      "EndData with no open object"});
    return;
  }
  OpenObject open = stack_.back();
  stack_.pop_back();
  EmitString("\\enddata{");
  EmitString(open.type);
  EmitString(",");
  EmitString(std::to_string(open.id));
  EmitString("}\n");
}

void DataStreamWriter::WriteViewReference(std::string_view view_type, int64_t data_id) {
  EmitString("\\view{");
  EmitString(view_type);
  EmitString(",");
  EmitString(std::to_string(data_id));
  EmitString("}");
}

void DataStreamWriter::WriteDirective(std::string_view name, std::string_view args) {
  EmitString("\\");
  EmitString(name);
  EmitString("{");
  EmitString(args);
  EmitString("}");
}

void DataStreamWriter::WriteText(std::string_view text) {
  for (char ch : text) {
    unsigned char byte = static_cast<unsigned char>(ch);
    if (ch == '\\') {
      EmitString("\\\\");
    } else if (ch == '\n' || ch == '\t' || (byte >= 0x20 && byte < 0x7F)) {
      Emit(ch);
    } else {
      // Hex-escape so the stream stays 7-bit printable (mailable, §5).
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x{%02x}", byte);
      EmitString(buf);
    }
  }
}

void DataStreamWriter::WriteLine(std::string_view line) {
  WriteText(line);
  Emit('\n');
}

void DataStreamWriter::WriteRaw(std::string_view raw) {
  for (char ch : raw) {
    if (static_cast<unsigned char>(ch) >= 0x80) {
      all_seven_bit_ = false;
    }
    Emit(ch);
  }
}

void DataStreamWriter::WriteNewline() { Emit('\n'); }

Status DataStreamWriter::Finish() const {
  if (!stack_.empty()) {
    return Status::Corrupt("stream finished with " + std::to_string(stack_.size()) +
                           " object(s) still open (innermost: \\begindata{" +
                           stack_.back().type + "," + std::to_string(stack_.back().id) + "})");
  }
  if (!diagnostics_.empty()) {
    return Status::Corrupt(diagnostics_.front().ToString());
  }
  return Status::Ok();
}

void DataStreamWriter::RegisterObjectId(const void* object, int64_t id) {
  object_ids_[object] = id;
}

int64_t DataStreamWriter::FindObjectId(const void* object) const {
  auto it = object_ids_.find(object);
  return it == object_ids_.end() ? 0 : it->second;
}

}  // namespace atk
