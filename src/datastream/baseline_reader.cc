// Frozen pre-zero-copy lexer — see baseline_reader.h.  The lexing logic is
// the verbatim PR-4 DataStreamReader with the observability counters removed
// (the baseline must not double-count datastream.reader.* metrics when both
// lexers run over the same bytes in the differential sweep).

#include "src/datastream/baseline_reader.h"

#include <cctype>

namespace atk {
namespace {

bool IsDirectiveNameChar(char ch) {
  return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' || ch == '-';
}

bool ParseMarkerArgs(std::string_view args, std::string* type, int64_t* id) {
  size_t comma = args.rfind(',');
  if (comma == std::string_view::npos || comma == 0 || comma + 1 >= args.size()) {
    return false;
  }
  *type = std::string(args.substr(0, comma));
  int64_t value = 0;
  for (size_t i = comma + 1; i < args.size(); ++i) {
    char ch = args[i];
    if (!std::isdigit(static_cast<unsigned char>(ch))) {
      return false;
    }
    value = value * 10 + (ch - '0');
  }
  *id = value;
  return true;
}

int HexValue(char ch) {
  if (ch >= '0' && ch <= '9') {
    return ch - '0';
  }
  if (ch >= 'a' && ch <= 'f') {
    return ch - 'a' + 10;
  }
  if (ch >= 'A' && ch <= 'F') {
    return ch - 'A' + 10;
  }
  return -1;
}

}  // namespace

BaselineDataStreamReader::BaselineDataStreamReader(std::string input)
    : input_(std::move(input)) {}

const BaselineDataStreamReader::Token& BaselineDataStreamReader::Peek() {
  if (!has_peek_) {
    peek_ = Lex();
    has_peek_ = true;
  }
  return peek_;
}

BaselineDataStreamReader::Token BaselineDataStreamReader::Next() {
  if (has_peek_) {
    has_peek_ = false;
    return std::move(peek_);
  }
  return Lex();
}

void BaselineDataStreamReader::AddDiagnostic(StatusCode code, size_t offset,
                                             std::string message) {
  if (code == StatusCode::kCorrupt) {
    saw_malformed_ = true;
  }
  diagnostics_.push_back(Diagnostic{code, offset, std::move(message)});
}

void BaselineDataStreamReader::MarkTruncated(size_t offset, std::string message) {
  if (!truncated_) {
    truncated_ = true;
    diagnostics_.push_back(Diagnostic{StatusCode::kTruncated, offset, std::move(message)});
  }
}

bool BaselineDataStreamReader::LexDirective(Token* token) {
  size_t start = pos_;
  size_t p = pos_ + 1;
  size_t name_start = p;
  while (p < input_.size() && IsDirectiveNameChar(input_[p])) {
    ++p;
  }
  if (p == name_start || p >= input_.size() || input_[p] != '{') {
    return false;
  }
  std::string name = input_.substr(name_start, p - name_start);
  ++p;  // consume '{'
  size_t args_start = p;
  while (p < input_.size() && input_[p] != '}' && input_[p] != '\n') {
    ++p;
  }
  if (p >= input_.size() || input_[p] != '}') {
    token->kind = Token::Kind::kDiagnostic;
    token->type = std::move(name);
    token->text = input_.substr(start, p - start);
    token->offset = start;
    pos_ = p;
    AddDiagnostic(StatusCode::kCorrupt, start,
                  "unterminated directive \\" + token->type + "{...");
    return true;
  }
  std::string args = input_.substr(args_start, p - args_start);
  pos_ = p + 1;  // past '}'

  if (name == "begindata" || name == "enddata") {
    std::string type;
    int64_t id = 0;
    if (!ParseMarkerArgs(args, &type, &id)) {
      token->kind = Token::Kind::kDiagnostic;
      token->type = name;
      token->text = input_.substr(start, pos_ - start);
      token->offset = start;
      AddDiagnostic(StatusCode::kCorrupt, start,
                    "malformed \\" + name + " marker args: {" + args + "}");
      return true;
    }
    if (pos_ < input_.size() && input_[pos_] == '\n') {
      ++pos_;
    }
    if (name == "begindata") {
      open_.push_back(OpenMarker{type, id});
      token->kind = Token::Kind::kBeginData;
    } else {
      if (!open_.empty() && open_.back().type == type && open_.back().id == id) {
        open_.pop_back();
      } else {
        AddDiagnostic(StatusCode::kCorrupt, start,
                      "mismatched \\enddata{" + type + "," + std::to_string(id) + "}");
        if (!open_.empty()) {
          open_.pop_back();
        }
      }
      token->kind = Token::Kind::kEndData;
    }
    token->type = std::move(type);
    token->id = id;
    token->offset = start;
    return true;
  }
  if (name == "view") {
    std::string type;
    int64_t id = 0;
    if (ParseMarkerArgs(args, &type, &id)) {
      token->kind = Token::Kind::kViewRef;
      token->type = std::move(type);
      token->id = id;
      token->offset = start;
      return true;
    }
    token->kind = Token::Kind::kDiagnostic;
    token->type = std::move(name);
    token->text = input_.substr(start, pos_ - start);
    token->offset = start;
    AddDiagnostic(StatusCode::kCorrupt, start, "malformed \\view args: {" + args + "}");
    return true;
  }
  token->kind = Token::Kind::kDirective;
  token->type = std::move(name);
  token->text = std::move(args);
  token->offset = start;
  return true;
}

BaselineDataStreamReader::Token BaselineDataStreamReader::Lex() {
  if (has_stashed_) {
    has_stashed_ = false;
    return std::move(stashed_);
  }
  Token token;
  std::string text;
  size_t text_start = pos_;
  while (pos_ < input_.size()) {
    char ch = input_[pos_];
    if (ch != '\\') {
      text += ch;
      ++pos_;
      continue;
    }
    if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '\\') {
      text += '\\';
      pos_ += 2;
      continue;
    }
    if (pos_ + 4 < input_.size() && input_[pos_ + 1] == 'x' && input_[pos_ + 2] == '{') {
      int hi = HexValue(input_[pos_ + 3]);
      int lo = pos_ + 4 < input_.size() ? HexValue(input_[pos_ + 4]) : -1;
      if (hi >= 0 && lo >= 0 && pos_ + 5 < input_.size() && input_[pos_ + 5] == '}') {
        text += static_cast<char>(hi * 16 + lo);
        pos_ += 6;
        continue;
      }
    }
    Token directive;
    if (LexDirective(&directive)) {
      if (text.empty()) {
        return directive;
      }
      stashed_ = std::move(directive);
      has_stashed_ = true;
      token.kind = Token::Kind::kText;
      token.text = std::move(text);
      token.offset = text_start;
      return token;
    }
    AddDiagnostic(StatusCode::kCorrupt, pos_, "lone backslash recovered as literal text");
    text += '\\';
    ++pos_;
  }
  if (!text.empty()) {
    token.kind = Token::Kind::kText;
    token.text = std::move(text);
    token.offset = text_start;
    return token;
  }
  if (!open_.empty()) {
    MarkTruncated(pos_, "input ended with " + std::to_string(open_.size()) +
                            " marker(s) still open (innermost: \\begindata{" +
                            open_.back().type + "," + std::to_string(open_.back().id) + "})");
  }
  token.kind = Token::Kind::kEof;
  token.offset = pos_;
  return token;
}

bool BaselineDataStreamReader::SkipObject(std::string_view type, int64_t id,
                                          std::string* raw_body) {
  if (has_peek_) {
    has_peek_ = false;
  }
  has_stashed_ = false;
  size_t body_start = pos_;
  int depth_needed = 1;
  size_t p = pos_;
  while (p < input_.size()) {
    char ch = input_[p];
    if (ch != '\\') {
      ++p;
      continue;
    }
    if (p + 1 < input_.size() && input_[p + 1] == '\\') {
      p += 2;
      continue;
    }
    size_t q = p + 1;
    size_t name_start = q;
    while (q < input_.size() && IsDirectiveNameChar(input_[q])) {
      ++q;
    }
    if (q == name_start || q >= input_.size() || input_[q] != '{') {
      ++p;
      continue;
    }
    std::string_view name(input_.data() + name_start, q - name_start);
    size_t args_start = q + 1;
    size_t close = input_.find('}', args_start);
    if (close == std::string::npos || input_.find('\n', args_start) < close) {
      ++p;
      continue;
    }
    if (name == "begindata") {
      ++depth_needed;
    } else if (name == "enddata") {
      --depth_needed;
      if (depth_needed == 0) {
        std::string_view args(input_.data() + args_start, close - args_start);
        std::string end_type;
        int64_t end_id = 0;
        if (!ParseMarkerArgs(args, &end_type, &end_id) || end_type != type || end_id != id) {
          AddDiagnostic(StatusCode::kCorrupt, p,
                        "skip of \\begindata{" + std::string(type) + "," + std::to_string(id) +
                            "} closed by non-matching \\enddata{" + std::string(args) + "}");
        }
        if (raw_body != nullptr) {
          *raw_body = input_.substr(body_start, p - body_start);
        }
        pos_ = close + 1;
        if (pos_ < input_.size() && input_[pos_] == '\n') {
          ++pos_;
        }
        if (!open_.empty()) {
          open_.pop_back();
        }
        return true;
      }
    }
    p = close + 1;
  }
  MarkTruncated(input_.size(), "input ended while skipping \\begindata{" +
                                   std::string(type) + "," + std::to_string(id) + "}");
  if (raw_body != nullptr) {
    *raw_body = input_.substr(body_start);
  }
  pos_ = input_.size();
  open_.clear();
  return false;
}

}  // namespace atk
