// Preview — the ditroff previewer (§1).
//
// The substituted substrate is a small troff-subset translator: requests
// .ce (center), .B/.I/.R (font switches), .sp (vertical space), .ti
// (indent), .ft (font), plain text lines — compiled into a styled TextData
// shown through the paged (paper-like) text view, which is what a previewer
// is for.

#ifndef ATK_SRC_APPS_PREVIEW_APP_H_
#define ATK_SRC_APPS_PREVIEW_APP_H_

#include <memory>
#include <string>

#include "src/base/application.h"
#include "src/components/frame/frame_view.h"
#include "src/components/scroll/scrollbar_view.h"
#include "src/components/text/paged_text_view.h"

namespace atk {

// Translates troff-subset source into a styled text document.
std::unique_ptr<TextData> TroffToText(const std::string& troff_source);

class PreviewApp : public Application {
  ATK_DECLARE_CLASS(PreviewApp)

 public:
  PreviewApp();
  ~PreviewApp() override;

  std::unique_ptr<InteractionManager> Start(WindowSystem& ws,
                                            const std::vector<std::string>& args) override;

  // Loads troff source (replacing the current document).
  void LoadTroff(const std::string& source);
  TextData* document() { return document_.get(); }
  PagedTextView* page_view() { return &view_; }

 private:
  std::unique_ptr<TextData> document_;
  FrameView frame_;
  ScrollBarView scroll_;
  PagedTextView view_;
};

}  // namespace atk

#endif  // ATK_SRC_APPS_PREVIEW_APP_H_
