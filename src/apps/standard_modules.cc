#include "src/apps/standard_modules.h"

#include "src/class_system/loader.h"
#include "src/components/modules.h"
#include "src/observability/inspector/inspector.h"
#include "src/wm/window_system.h"

namespace atk {

void RegisterStandardModules() {
  static bool done = [] {
    // The toolkit core as a pseudo-module, so the loader can account for the
    // resident base (it is statically present in every build, like runapp's
    // own text segment).
    ModuleSpec base;
    base.name = "toolkit-base";
    base.text_bytes = 160 * 1024;
    base.data_bytes = 16 * 1024;
    Loader::Instance().DeclareModule(std::move(base));

    RegisterWindowSystemModules();
    RegisterInspectorModule();
    RegisterTextModule();
    RegisterTableModule();
    RegisterDrawingModule();
    RegisterEquationModule();
    RegisterRasterModule();
    RegisterAnimationModule();
    RegisterScrollModule();
    RegisterFrameModule();
    RegisterWidgetsModule();
    RegisterEzAppModule();
    RegisterMessagesAppModule();
    RegisterHelpAppModule();
    RegisterTypescriptAppModule();
    RegisterConsoleAppModule();
    RegisterPreviewAppModule();
    RegisterFilterPackageModule();
    RegisterSpellPackageModule();
    RegisterCTextPackageModule();
    RegisterStyleEditorModule();
    RegisterCompilePackageModule();
    return true;
  }();
  (void)done;
}

void PinToolkitBase() {
  RegisterStandardModules();
  Loader& loader = Loader::Instance();
  loader.Pin("toolkit-base");
  loader.Pin("text");
  loader.Pin("scroll");
  loader.Pin("frame");
  loader.Pin("widgets");
}

}  // namespace atk
