#include "src/apps/messages_app.h"

#include "src/base/proctable.h"
#include "src/class_system/loader.h"

namespace atk {

ATK_DEFINE_CLASS(MessagesLayoutView, View, "messageslayout")
ATK_DEFINE_CLASS(MessagesApp, Application, "messagesapp")

void MessagesLayoutView::Layout() {
  if (graphic() == nullptr || children().size() < 3) {
    return;
  }
  Rect b = graphic()->LocalBounds();
  int folder_w = std::min(kFolderPaneWidth, b.width / 3);
  int caption_h = std::min(kCaptionPaneHeight, b.height / 3);
  children()[0]->Allocate(Rect{0, 0, folder_w, b.height}, graphic());
  children()[1]->Allocate(Rect{folder_w + 1, 0, b.width - folder_w - 1, caption_h}, graphic());
  children()[2]->Allocate(
      Rect{folder_w + 1, caption_h + 1, b.width - folder_w - 1, b.height - caption_h - 1},
      graphic());
}

void MessagesLayoutView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  Rect b = g->LocalBounds();
  int folder_w = std::min(kFolderPaneWidth, b.width / 3);
  int caption_h = std::min(kCaptionPaneHeight, b.height / 3);
  g->SetForeground(kBlack);
  g->DrawLine(Point{folder_w, 0}, Point{folder_w, b.height - 1});
  g->DrawLine(Point{folder_w, caption_h}, Point{b.width - 1, caption_h});
}

MessagesApp::MessagesApp() : body_data_(std::make_unique<TextData>()) {
  body_view_.SetText(body_data_.get());
  body_scroll_.SetBody(&body_view_);
  layout_.AddChild(&folder_list_);
  layout_.AddChild(&caption_list_);
  layout_.AddChild(&body_scroll_);
  frame_.SetBody(&layout_);
  folder_list_.SetOnSelect([this](int index) { SelectFolder(index); });
  caption_list_.SetOnSelect([this](int index) { SelectMessage(index); });
}

MessagesApp::~MessagesApp() = default;

std::unique_ptr<InteractionManager> MessagesApp::Start(WindowSystem& ws,
                                                       const std::vector<std::string>& args) {
  (void)args;
  auto im = InteractionManager::Create(ws, 640, 420, "messages");
  im->SetChild(&frame_);
  RefreshFolderList();
  if (!store_.folders().empty()) {
    folder_list_.Select(0);
  }
  frame_.SetMessage(std::to_string(store_.folders().size()) + " folders");
  return im;
}

void MessagesApp::RefreshFolderList() {
  std::vector<std::string> names;
  for (const MailFolder& folder : store_.folders()) {
    std::string entry = folder.name;
    int fresh = folder.NewCount();
    if (fresh > 0) {
      entry += " (" + std::to_string(fresh) + " new)";
    }
    names.push_back(std::move(entry));
  }
  folder_list_.SetItems(std::move(names));
}

void MessagesApp::SelectFolder(int index) {
  if (index < 0 || index >= static_cast<int>(store_.folders().size())) {
    return;
  }
  current_folder_ = store_.folders()[static_cast<size_t>(index)].name;
  current_message_ = -1;
  std::vector<std::string> captions;
  for (const MailMessage& message : store_.folders()[static_cast<size_t>(index)].messages) {
    captions.push_back(message.Caption());
  }
  caption_list_.SetItems(std::move(captions));
  frame_.SetMessage(current_folder_);
}

void MessagesApp::SelectMessage(int index) {
  MailFolder* folder = store_.FindFolder(current_folder_);
  if (folder == nullptr || index < 0 ||
      index >= static_cast<int>(folder->messages.size())) {
    return;
  }
  current_message_ = index;
  MailMessage& message = folder->messages[static_cast<size_t>(index)];
  message.is_new = false;
  // Parse the datastream body into the display text object; embedded
  // components (drawings, rasters...) come along automatically.
  ReadContext ctx;
  std::unique_ptr<DataObject> root = ReadDocument(message.body, &ctx);
  std::unique_ptr<TextData> next;
  if (TextData* as_text = ObjectCast<TextData>(root.get())) {
    root.release();
    next.reset(as_text);
  } else {
    next = std::make_unique<TextData>();
    std::string header = "From: " + message.from + "\n";
    next->SetText(header + message.body);
  }
  body_view_.SetText(nullptr);
  body_data_ = std::move(next);
  body_view_.SetText(body_data_.get());
  frame_.SetMessage(message.subject);
  RefreshFolderList();
}

// ---- Composer ---------------------------------------------------------------

namespace {

// To/Subject single-line fields over the body editor.
class ComposeLayoutView : public View {
 public:
  static constexpr int kFieldHeight = 16;

  void Layout() override {
    if (graphic() == nullptr || children().size() < 5) {
      return;
    }
    Rect b = graphic()->LocalBounds();
    int label_w = 60;
    children()[0]->Allocate(Rect{0, 0, label_w, kFieldHeight}, graphic());
    children()[1]->Allocate(Rect{label_w, 0, b.width - label_w, kFieldHeight}, graphic());
    children()[2]->Allocate(Rect{0, kFieldHeight, label_w, kFieldHeight}, graphic());
    children()[3]->Allocate(Rect{label_w, kFieldHeight, b.width - label_w, kFieldHeight},
                            graphic());
    int body_y = 2 * kFieldHeight + 2;
    children()[4]->Allocate(Rect{0, body_y, b.width, b.height - body_y}, graphic());
  }

  void FullUpdate() override {
    Graphic* g = graphic();
    if (g == nullptr) {
      return;
    }
    g->Clear();
    g->SetForeground(kGray);
    g->DrawLine(Point{0, 2 * kFieldHeight + 1}, Point{g->width() - 1, 2 * kFieldHeight + 1});
  }
};

}  // namespace

MessagesApp::Composer::Composer(MessagesApp* app)
    : app_(app), to_label_("To:"), subject_label_("Subject:") {
  to_view_.SetText(&to_);
  subject_view_.SetText(&subject_);
  body_view_.SetText(&body_);
  auto layout = std::make_unique<ComposeLayoutView>();
  layout->AddChild(&to_label_);
  layout->AddChild(&to_view_);
  layout->AddChild(&subject_label_);
  layout->AddChild(&subject_view_);
  layout->AddChild(&body_view_);
  compose_layout_ = std::move(layout);
  frame_.SetBody(compose_layout_.get());
  frame_.SetMessage("compose");
}

std::unique_ptr<InteractionManager> MessagesApp::Composer::OpenWindow(WindowSystem& ws) {
  auto im = InteractionManager::Create(ws, 520, 360, "compose");
  im->SetChild(&frame_);
  im->SetInputFocus(&to_view_);
  return im;
}

bool MessagesApp::Composer::Send(const std::string& folder) {
  MailMessage message;
  message.from = "user@andrew";
  message.to = to_.GetAllText();
  message.subject = subject_.GetAllText();
  message.body = WriteDocument(body_);
  bool delivered = app_->store().Deliver(folder, std::move(message));
  frame_.SetMessage(delivered ? "message sent" : "not mailable");
  if (delivered) {
    app_->RefreshFolderList();
  }
  return delivered;
}

std::unique_ptr<MessagesApp::Composer> MessagesApp::NewComposer() {
  return std::make_unique<Composer>(this);
}

void RegisterMessagesAppModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "app-messages";
    spec.provides = {"messagesapp"};
    spec.depends_on = {"text", "scroll", "frame", "widgets"};
    spec.text_bytes = 64 * 1024;
    spec.data_bytes = 6 * 1024;
    spec.init = [] { ClassRegistry::Instance().Register(MessagesApp::StaticClassInfo()); };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
