// The C-language programming component (§1's extension-package list; §10:
// "the object oriented nature of the system allows programmers to easily
// develop new specialized objects out of existing objects such as the C
// language component").
//
// CTextData subclasses TextData, inheriting storage, styles, embedding and
// the external representation, and adds syntax highlighting: keywords bold,
// comments italic, string literals typewriter.  CTextView subclasses
// TextView and re-highlights after every edit.  Packaged as the dormant
// module "ctext".

#include <cctype>

#include "src/apps/standard_modules.h"
#include "src/base/default_views.h"
#include "src/class_system/loader.h"
#include "src/components/modules.h"
#include "src/components/text/text_view.h"

namespace atk {

class CTextData : public TextData {
  ATK_DECLARE_CLASS(CTextData)

 public:
  // Recomputes all syntax styles from the raw text.  One Attributes
  // notification at the end (via the last ApplyStyle).
  void HighlightSyntax();

  // Documents highlight themselves as they load, so the stock editor shows
  // colored code even through the plain text view.
  bool ReadBody(DataStreamReader& reader, ReadContext& context) override {
    bool ok = TextData::ReadBody(reader, context);
    HighlightSyntax();
    return ok;
  }

  // Number of keyword/comment/string spans found by the last highlight.
  int highlighted_spans() const { return highlighted_spans_; }

  static bool IsKeyword(const std::string& word);

 private:
  int highlighted_spans_ = 0;
};

ATK_DEFINE_CLASS(CTextData, TextData, "ctext")

bool CTextData::IsKeyword(const std::string& word) {
  static const char* const kKeywords[] = {
      "auto",   "break",  "case",    "char",   "continue", "default", "do",
      "double", "else",   "enum",    "extern", "float",    "for",     "goto",
      "if",     "int",    "long",    "register", "return", "short",   "sizeof",
      "static", "struct", "switch",  "typedef", "union",   "unsigned", "void",
      "while"};
  for (const char* keyword : kKeywords) {
    if (word == keyword) {
      return true;
    }
  }
  return false;
}

void CTextData::HighlightSyntax() {
  ClearStyles(0, size());
  highlighted_spans_ = 0;
  std::string content = GetAllText();
  size_t i = 0;
  while (i < content.size()) {
    char ch = content[i];
    // Comments: /* ... */ and // ... (the ITC compiled both by 1988).
    if (ch == '/' && i + 1 < content.size() && content[i + 1] == '*') {
      size_t end = content.find("*/", i + 2);
      end = end == std::string::npos ? content.size() : end + 2;
      ApplyStyle(static_cast<int64_t>(i), static_cast<int64_t>(end - i), "italic");
      ++highlighted_spans_;
      i = end;
      continue;
    }
    if (ch == '/' && i + 1 < content.size() && content[i + 1] == '/') {
      size_t end = content.find('\n', i);
      end = end == std::string::npos ? content.size() : end;
      ApplyStyle(static_cast<int64_t>(i), static_cast<int64_t>(end - i), "italic");
      ++highlighted_spans_;
      i = end;
      continue;
    }
    // String literals.
    if (ch == '"') {
      size_t end = i + 1;
      while (end < content.size() && content[end] != '"' && content[end] != '\n') {
        if (content[end] == '\\') {
          ++end;
        }
        ++end;
      }
      end = std::min(end + 1, content.size());
      ApplyStyle(static_cast<int64_t>(i), static_cast<int64_t>(end - i), "typewriter");
      ++highlighted_spans_;
      i = end;
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      size_t end = i;
      while (end < content.size() &&
             (std::isalnum(static_cast<unsigned char>(content[end])) || content[end] == '_')) {
        ++end;
      }
      if (IsKeyword(content.substr(i, end - i))) {
        ApplyStyle(static_cast<int64_t>(i), static_cast<int64_t>(end - i), "bold");
        ++highlighted_spans_;
      }
      i = end;
      continue;
    }
    ++i;
  }
}

class CTextView : public TextView {
  ATK_DECLARE_CLASS(CTextView)

 public:
  CTextData* ctext() const { return ObjectCast<CTextData>(data_object()); }

  // Re-highlight after content edits (attribute changes would recurse).
  void ObservedChanged(Observable* changed, const Change& change) override {
    if ((change.kind == Change::Kind::kInserted || change.kind == Change::Kind::kDeleted) &&
        ctext() != nullptr && !rehighlighting_) {
      rehighlighting_ = true;
      ctext()->HighlightSyntax();
      rehighlighting_ = false;
    }
    TextView::ObservedChanged(changed, change);
  }

 private:
  bool rehighlighting_ = false;
};

ATK_DEFINE_CLASS(CTextView, TextView, "ctextview")

void RegisterCTextPackageModule() {
  static bool done = [] {
    RegisterTextModule();
    ModuleSpec spec;
    spec.name = "ctext";
    spec.provides = {"ctext", "ctextview"};
    spec.depends_on = {"text"};
    spec.text_bytes = 16 * 1024;
    spec.data_bytes = 1 * 1024;
    spec.init = [] {
      ClassRegistry::Instance().Register(CTextData::StaticClassInfo());
      ClassRegistry::Instance().Register(CTextView::StaticClassInfo());
      SetDefaultViewName("ctext", "ctextview");
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
