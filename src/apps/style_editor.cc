#include "src/apps/style_editor.h"

#include "src/class_system/loader.h"

namespace atk {

ATK_DEFINE_CLASS(StyleEditorView, View, "styleeditor")

StyleEditorView::StyleEditorView()
    : bold_button_("Bold", ""),
      italic_button_("Italic", ""),
      bigger_button_("Bigger", ""),
      smaller_button_("Smaller", ""),
      center_button_("Center", "") {
  AddChild(&style_list_);
  AddChild(&bold_button_);
  AddChild(&italic_button_);
  AddChild(&bigger_button_);
  AddChild(&smaller_button_);
  AddChild(&center_button_);
  style_list_.SetOnSelect([this](int) {
    if (const std::string* item = style_list_.SelectedItem()) {
      selected_style_ = *item;
      PostUpdate();
    }
  });
  bold_button_.SetAction([this] { ToggleBold(); });
  italic_button_.SetAction([this] { ToggleItalic(); });
  bigger_button_.SetAction([this] { GrowFont(+4); });
  smaller_button_.SetAction([this] { GrowFont(-4); });
  center_button_.SetAction([this] { ToggleCenter(); });
}

StyleEditorView::~StyleEditorView() {
  for (View* child : std::vector<View*>(children())) {
    RemoveChild(child);
  }
}

void StyleEditorView::SetTarget(TextData* text) {
  target_ = text;
  RefreshList();
  PostUpdate();
}

void StyleEditorView::RefreshList() {
  if (target_ == nullptr) {
    style_list_.ClearItems();
    return;
  }
  style_list_.SetItems(target_->styles().Names());
}

void StyleEditorView::SelectStyle(const std::string& name) {
  selected_style_ = name;
  const auto& items = style_list_.items();
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i] == name) {
      style_list_.Select(static_cast<int>(i));
      break;
    }
  }
  PostUpdate();
}

void StyleEditorView::Redefine(Style style) {
  if (target_ == nullptr) {
    return;
  }
  target_->styles().Define(style);
  // Every run using the style changed appearance: tell the observers.
  Change change;
  change.kind = Change::Kind::kAttributes;
  change.pos = 0;
  change.removed = target_->size();
  target_->NotifyObservers(change);
  PostUpdate();
}

void StyleEditorView::ToggleBold() {
  if (target_ == nullptr) {
    return;
  }
  Style style = target_->styles().Get(selected_style_);
  style.name = selected_style_;
  style.font.style ^= kBold;
  Redefine(style);
}

void StyleEditorView::ToggleItalic() {
  if (target_ == nullptr) {
    return;
  }
  Style style = target_->styles().Get(selected_style_);
  style.name = selected_style_;
  style.font.style ^= kItalic;
  Redefine(style);
}

void StyleEditorView::GrowFont(int delta) {
  if (target_ == nullptr) {
    return;
  }
  Style style = target_->styles().Get(selected_style_);
  style.name = selected_style_;
  style.font.size = std::max(6, style.font.size + delta);
  Redefine(style);
}

void StyleEditorView::ToggleCenter() {
  if (target_ == nullptr) {
    return;
  }
  Style style = target_->styles().Get(selected_style_);
  style.name = selected_style_;
  style.justify = style.justify == Justification::kCenter ? Justification::kLeft
                                                          : Justification::kCenter;
  Redefine(style);
}

void StyleEditorView::Layout() {
  if (graphic() == nullptr) {
    return;
  }
  Rect b = graphic()->LocalBounds();
  int list_w = std::min(120, b.width / 2);
  style_list_.Allocate(Rect{0, 0, list_w, b.height}, graphic());
  int x = list_w + 6;
  int y = 26;  // Room for the preview line above the buttons.
  ButtonView* buttons[] = {&bold_button_, &italic_button_, &bigger_button_,
                           &smaller_button_, &center_button_};
  for (ButtonView* button : buttons) {
    Size size = button->DesiredSize(Size{b.width - x, 20});
    button->Allocate(Rect{x, y, size.width, size.height}, graphic());
    y += size.height + 4;
  }
}

void StyleEditorView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  if (target_ == nullptr) {
    return;
  }
  // Preview line: the selected style rendered in itself.
  const Style& style = target_->styles().Get(selected_style_);
  int list_w = std::min(120, g->width() / 2);
  g->SetFont(style.font);
  g->SetForeground(style.color);
  g->DrawString(Point{list_w + 6, 4}, selected_style_);
  g->SetForeground(kGray);
  g->DrawLine(Point{list_w + 2, 0}, Point{list_w + 2, g->height() - 1});
}

void RegisterStyleEditorModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "styleeditor";
    spec.provides = {"styleeditor"};
    spec.depends_on = {"text", "widgets"};
    spec.text_bytes = 14 * 1024;
    spec.data_bytes = 1 * 1024;
    spec.init = [] {
      ClassRegistry::Instance().Register(StyleEditorView::StaticClassInfo());
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
