// Typescript — "an enhanced interface to the C-shell" (§1).
//
// The transcript is an ordinary TextData, so the entire session is editable
// and searchable like any document.  The shell behind it is simulated: a
// deterministic command table (echo, date, ls, cat, whoami...) over a tiny
// in-memory file system — §8's footnote notes typescript was the one
// OS-dependent application, so the substrate is substituted per DESIGN.md.

#ifndef ATK_SRC_APPS_TYPESCRIPT_APP_H_
#define ATK_SRC_APPS_TYPESCRIPT_APP_H_

#include <map>
#include <memory>
#include <string>

#include "src/base/application.h"
#include "src/components/frame/frame_view.h"
#include "src/components/scroll/scrollbar_view.h"
#include "src/components/text/text_view.h"

namespace atk {

// The simulated shell.
class FakeShell {
 public:
  FakeShell();

  // Runs one command line, returning its output (may be multi-line).
  std::string Execute(const std::string& command_line);

  // The fake file system backing ls/cat.
  void AddFile(const std::string& name, const std::string& contents);
  int history_size() const { return static_cast<int>(history_.size()); }
  const std::vector<std::string>& history() const { return history_; }

  // Deterministic clock for `date`.
  void SetClock(std::string date_string) { clock_ = std::move(date_string); }

 private:
  std::map<std::string, std::string> files_;
  std::vector<std::string> history_;
  std::string clock_ = "Thu Feb 11 09:30:00 EST 1988";
};

// A text view that treats Return as "execute the current input line".
class TypescriptView : public TextView {
  ATK_DECLARE_CLASS(TypescriptView)

 public:
  TypescriptView();

  void SetShell(FakeShell* shell) { shell_ = shell; }
  // Appends the prompt and positions the caret for input.
  void ShowPrompt();
  bool HandleKey(char key, unsigned modifiers) override;
  // Programmatic command execution (used by tests and the bench).
  std::string RunCommand(const std::string& command);

  static constexpr const char* kPrompt = "% ";

 private:
  FakeShell* shell_ = nullptr;
  int64_t input_start_ = 0;  // Where the editable command line begins.
};

class TypescriptApp : public Application {
  ATK_DECLARE_CLASS(TypescriptApp)

 public:
  TypescriptApp();
  ~TypescriptApp() override;

  std::unique_ptr<InteractionManager> Start(WindowSystem& ws,
                                            const std::vector<std::string>& args) override;

  FakeShell& shell() { return shell_; }
  TypescriptView* view() { return &view_; }
  TextData* transcript() { return transcript_.get(); }

 private:
  FakeShell shell_;
  std::unique_ptr<TextData> transcript_;
  FrameView frame_;
  ScrollBarView scroll_;
  TypescriptView view_;
};

}  // namespace atk

#endif  // ATK_SRC_APPS_TYPESCRIPT_APP_H_
