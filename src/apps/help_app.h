// Help — the campus help system (snapshot 2): a topic index on the right, a
// document pane on the left, and a search box via the frame dialog.  Help
// documents are datastream files, so they display through the ordinary text
// component with full multi-media support.

#ifndef ATK_SRC_APPS_HELP_APP_H_
#define ATK_SRC_APPS_HELP_APP_H_

#include <map>
#include <memory>
#include <string>

#include "src/base/application.h"
#include "src/components/frame/frame_view.h"
#include "src/components/scroll/scrollbar_view.h"
#include "src/components/text/text_data.h"
#include "src/components/text/text_view.h"
#include "src/components/widgets/widgets.h"

namespace atk {

// Document pane + topic index side by side.
class HelpLayoutView : public View {
  ATK_DECLARE_CLASS(HelpLayoutView)

 public:
  static constexpr int kIndexWidth = 170;
  void Layout() override;
  void FullUpdate() override;
};

class HelpApp : public Application {
  ATK_DECLARE_CLASS(HelpApp)

 public:
  HelpApp();
  ~HelpApp() override;

  std::unique_ptr<InteractionManager> Start(WindowSystem& ws,
                                            const std::vector<std::string>& args) override;

  // ---- Topic database ----
  // Adds/overwrites a help document (a datastream string or plain text).
  void AddTopic(const std::string& name, const std::string& document);
  std::vector<std::string> TopicNames() const;
  bool ShowTopic(const std::string& name);
  const std::string& current_topic() const { return current_topic_; }
  // Case-insensitive substring search over names and bodies.
  std::vector<std::string> Search(const std::string& query) const;

  ListView* index_list() { return &index_; }
  TextView* doc_view() { return &doc_view_; }
  FrameView* frame() { return &frame_; }

  // Installs the built-in CMU-flavoured topics (EZ, messages, printing...).
  void LoadBuiltinTopics();

 private:
  std::map<std::string, std::string> topics_;
  FrameView frame_;
  HelpLayoutView layout_;
  ListView index_;
  ScrollBarView doc_scroll_;
  TextView doc_view_;
  std::unique_ptr<TextData> doc_data_;
  std::string current_topic_;
};

}  // namespace atk

#endif  // ATK_SRC_APPS_HELP_APP_H_
