// The in-memory message store standing in for the Andrew Message System
// server (Borenstein et al., USENIX 1988 — reference [11] of the paper).
// Message bodies are full datastream documents, so anything the text
// component can hold — drawings, rasters, tables — travels in mail exactly
// as §1 promises ("it can be sent in a mail message as easily as edited in
// a document"); mailability (7-bit, bounded lines) is checked at delivery.

#ifndef ATK_SRC_APPS_MAIL_STORE_H_
#define ATK_SRC_APPS_MAIL_STORE_H_

#include <string>
#include <vector>

namespace atk {

struct MailMessage {
  std::string from;
  std::string to;
  std::string subject;
  // A complete datastream document (usually \begindata{text,...}).
  std::string body;
  bool is_new = true;

  // One line for the caption pane: "subject - from (bytes)".
  std::string Caption() const;
};

struct MailFolder {
  std::string name;
  std::vector<MailMessage> messages;

  int NewCount() const;
};

class MailStore {
 public:
  MailStore();

  MailFolder* FindFolder(const std::string& name);
  const std::vector<MailFolder>& folders() const { return folders_; }
  MailFolder& AddFolder(const std::string& name);

  // Delivers into `folder` (created on demand).  Returns false — and does
  // not deliver — when the body fails the mailability check.
  bool Deliver(const std::string& folder, MailMessage message);

  // §5's transport guarantee: 7-bit printable content only.
  static bool IsMailable(const std::string& body);

  int total_messages() const;

 private:
  std::vector<MailFolder> folders_;
};

}  // namespace atk

#endif  // ATK_SRC_APPS_MAIL_STORE_H_
