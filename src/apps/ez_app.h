// EZ — the generic multi-media document editor (§1, §2, snapshot 1).
//
// A frame (message line + divider) around a scroll bar around a text view.
// EZ "can edit a wide variety of components by loading the appropriate code
// when needed": inserting or opening a document containing any component
// pulls the component's module in through the Loader; EZ itself never names
// the component classes.

#ifndef ATK_SRC_APPS_EZ_APP_H_
#define ATK_SRC_APPS_EZ_APP_H_

#include <memory>
#include <string>

#include "src/base/application.h"
#include "src/components/frame/frame_view.h"
#include "src/components/scroll/scrollbar_view.h"
#include "src/components/text/text_data.h"
#include "src/components/text/text_view.h"

namespace atk {

class EzApp : public Application {
  ATK_DECLARE_CLASS(EzApp)

 public:
  EzApp();
  ~EzApp() override;

  // args: {"ez", [path]} — opens `path` when given.
  std::unique_ptr<InteractionManager> Start(WindowSystem& ws,
                                            const std::vector<std::string>& args) override;

  // ---- Document management ----
  TextData* document() { return document_.get(); }
  TextView* text_view() { return &text_view_; }
  FrameView* frame() { return &frame_; }

  // Parses a datastream document; non-text roots are wrapped: a fresh text
  // document embedding the object.  Unparseable input becomes plain text.
  bool LoadDocumentString(const std::string& content);
  bool OpenFile(const std::string& path);
  bool SaveFile(const std::string& path);
  std::string SaveToString() const;
  const std::string& current_path() const { return current_path_; }

  // "Insert X" commands: embed a fresh component at the caret, dynamically
  // loading its module (the user-visible §1 extension story).
  DataObject* InsertComponent(const std::string& data_type);

 private:
  void BuildMenus();

  std::unique_ptr<TextData> document_;
  FrameView frame_;
  ScrollBarView scrollbar_;
  TextView text_view_;
  std::string current_path_;
};

}  // namespace atk

#endif  // ATK_SRC_APPS_EZ_APP_H_
