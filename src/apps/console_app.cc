#include "src/apps/console_app.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/class_system/loader.h"

namespace atk {

ATK_DEFINE_CLASS(ConsoleData, DataObject, "console")
ATK_DEFINE_CLASS(ConsoleView, View, "consoleview")
ATK_DEFINE_CLASS(ConsoleApp, Application, "consoleapp")

void ConsoleData::Update(const ConsoleSample& sample) {
  sample_ = sample;
  load_history_.push_back(sample.cpu_load);
  while (load_history_.size() > kLoadHistory) {
    load_history_.pop_front();
  }
  Change change;
  change.kind = Change::Kind::kModified;
  NotifyObservers(change);
}

void ConsoleData::WriteBody(DataStreamWriter& writer) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", sample_.hour, sample_.minute,
                sample_.second);
  writer.WriteDirective("consoletime", buf);
  writer.WriteNewline();
}

bool ConsoleData::ReadBody(DataStreamReader& reader, ReadContext& context) {
  (void)context;
  return ConsumeUntilEndData(reader);
}

void ConsoleView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  ConsoleData* data = console();
  if (data == nullptr) {
    return;
  }
  const ConsoleSample& sample = data->sample();
  g->SetForeground(kBlack);
  g->SetFont(FontSpec{"andy", 10, kPlain});

  // Clock face (analog) top-left.
  Rect clock_box{4, 4, 48, 48};
  g->DrawEllipse(clock_box);
  Point center = clock_box.center();
  double minute_angle = 2 * M_PI * sample.minute / 60.0 - M_PI / 2;
  double hour_angle = 2 * M_PI * ((sample.hour % 12) + sample.minute / 60.0) / 12.0 - M_PI / 2;
  g->DrawLine(center, Point{center.x + static_cast<int>(18 * std::cos(minute_angle)),
                            center.y + static_cast<int>(18 * std::sin(minute_angle))});
  g->DrawLine(center, Point{center.x + static_cast<int>(12 * std::cos(hour_angle)),
                            center.y + static_cast<int>(12 * std::sin(hour_angle))});
  // Digital time and date beside it.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", sample.hour, sample.minute, sample.second);
  g->DrawString(Point{60, 10}, buf);
  g->DrawString(Point{60, 24}, sample.date);

  // Load history bar graph.
  int graph_y = 58;
  int graph_h = 30;
  g->DrawString(Point{4, graph_y - 2}, "CPU");
  Rect graph_box{34, graph_y, g->width() - 40, graph_h};
  g->DrawRect(graph_box);
  const auto& history = data->load_history();
  int n = static_cast<int>(history.size());
  if (n > 0) {
    int bar_w = std::max(1, graph_box.width / static_cast<int>(ConsoleData::kLoadHistory));
    for (int i = 0; i < n; ++i) {
      double load = std::clamp(history[static_cast<size_t>(i)], 0.0, 1.0);
      int h = static_cast<int>(load * (graph_h - 2));
      g->FillRect(Rect{graph_box.x + 1 + i * bar_w, graph_box.bottom() - 1 - h, bar_w, h});
    }
  }

  // File system gauges.
  int fs_y = graph_y + graph_h + 8;
  for (const auto& fs : sample.filesystems) {
    g->DrawString(Point{4, fs_y}, fs.name);
    Rect gauge{60, fs_y, g->width() - 66, 9};
    g->DrawRect(gauge);
    int fill = static_cast<int>(std::clamp(fs.used_fraction, 0.0, 1.0) * (gauge.width - 2));
    g->FillRect(Rect{gauge.x + 1, gauge.y + 1, fill, gauge.height - 2});
    fs_y += 14;
  }
}

Size ConsoleView::DesiredSize(Size available) {
  Size desired{200, 140};
  if (available.width > 0) {
    desired.width = std::min(desired.width, available.width);
  }
  if (available.height > 0) {
    desired.height = std::min(desired.height, available.height);
  }
  return desired;
}

ConsoleApp::ConsoleApp() { view_.SetDataObject(&data_); }

ConsoleApp::~ConsoleApp() = default;

std::unique_ptr<InteractionManager> ConsoleApp::Start(WindowSystem& ws,
                                                      const std::vector<std::string>& args) {
  (void)args;
  auto im = InteractionManager::Create(ws, 220, 160, "console");
  im->SetChild(&view_);
  ConsoleSample sample;
  sample.filesystems = {{"/", 0.62}, {"/usr", 0.81}, {"vice", 0.47}};
  data_.Update(sample);
  return im;
}

void RegisterConsoleAppModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "app-console";
    spec.provides = {"consoleapp", "console", "consoleview"};
    spec.text_bytes = 18 * 1024;
    spec.data_bytes = 1 * 1024;
    spec.init = [] {
      ClassRegistry::Instance().Register(ConsoleApp::StaticClassInfo());
      ClassRegistry::Instance().Register(ConsoleData::StaticClassInfo());
      ClassRegistry::Instance().Register(ConsoleView::StaticClassInfo());
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
