// The compile and tags packages (§1's extension list), as demand-loaded
// proc modules over the C-language component.
//
//  * "compile-check" runs a toy C checker (the substituted stand-in for
//    invoking cc through typescript) over a ctext/text view: unbalanced
//    braces/parens and statement lines missing ';' become diagnostics; the
//    caret jumps to the first error and the frame's message line reports
//    the count.
//  * "tags-find-definition" builds a tag table from function-definition
//    lines and jumps the caret to the definition of the identifier under
//    the caret — the classic tags navigation.

#include <cctype>
#include <string>
#include <vector>

#include "src/apps/standard_modules.h"
#include "src/base/proctable.h"
#include "src/class_system/loader.h"
#include "src/components/frame/frame_view.h"
#include "src/components/text/text_view.h"

namespace atk {

// Exposed for tests.
struct CompileDiagnostic {
  int64_t line = 0;  // 0-based.
  std::string message;
};

std::vector<CompileDiagnostic> CheckCSource(const std::string& source) {
  std::vector<CompileDiagnostic> diagnostics;
  int brace_depth = 0;
  int paren_depth = 0;
  int64_t line = 0;
  std::string current;
  auto check_line = [&](const std::string& text) {
    // Heuristic: an indented statement line that ends in an identifier,
    // number or ')' needs a ';'.
    if (text.empty() || text[0] != ' ') {
      return;
    }
    size_t last = text.find_last_not_of(" \t");
    if (last == std::string::npos) {
      return;
    }
    char end = text[last];
    bool statementish = std::isalnum(static_cast<unsigned char>(end)) || end == ')';
    bool flow_keyword = text.find("if ") != std::string::npos ||
                        text.find("else") != std::string::npos ||
                        text.find("while ") != std::string::npos ||
                        text.find("for ") != std::string::npos;
    if (statementish && !flow_keyword) {
      diagnostics.push_back(CompileDiagnostic{line, "missing ';'"});
    }
  };
  for (char ch : source) {
    if (ch == '\n') {
      check_line(current);
      current.clear();
      ++line;
      continue;
    }
    current += ch;
    switch (ch) {
      case '{':
        ++brace_depth;
        break;
      case '}':
        --brace_depth;
        if (brace_depth < 0) {
          diagnostics.push_back(CompileDiagnostic{line, "unmatched '}'"});
          brace_depth = 0;
        }
        break;
      case '(':
        ++paren_depth;
        break;
      case ')':
        --paren_depth;
        if (paren_depth < 0) {
          diagnostics.push_back(CompileDiagnostic{line, "unmatched ')'"});
          paren_depth = 0;
        }
        break;
      default:
        break;
    }
  }
  check_line(current);
  if (brace_depth > 0) {
    diagnostics.push_back(CompileDiagnostic{line, "unclosed '{'"});
  }
  if (paren_depth > 0) {
    diagnostics.push_back(CompileDiagnostic{line, "unclosed '('"});
  }
  return diagnostics;
}

// A tag: a function definition "name(" found at the start of a line.
struct SourceTag {
  std::string name;
  int64_t pos = 0;
};

std::vector<SourceTag> BuildTagTable(const std::string& source) {
  std::vector<SourceTag> tags;
  size_t line_start = 0;
  while (line_start < source.size()) {
    size_t line_end = source.find('\n', line_start);
    if (line_end == std::string::npos) {
      line_end = source.size();
    }
    // A definition line starts at column 0 with `type name(args)` — find the
    // identifier immediately before '('.
    if (line_start < line_end && source[line_start] != ' ' &&
        source[line_start] != '\t' && source[line_start] != '#' &&
        source[line_start] != '/') {
      size_t paren = source.find('(', line_start);
      if (paren != std::string::npos && paren < line_end) {
        size_t name_end = paren;
        size_t name_start = name_end;
        while (name_start > line_start &&
               (std::isalnum(static_cast<unsigned char>(source[name_start - 1])) ||
                source[name_start - 1] == '_')) {
          --name_start;
        }
        if (name_end > name_start) {
          tags.push_back(SourceTag{source.substr(name_start, name_end - name_start),
                                   static_cast<int64_t>(name_start)});
        }
      }
    }
    line_start = line_end + 1;
  }
  return tags;
}

namespace {

FrameView* EnclosingFrameOf(View* view) {
  for (View* v = view; v != nullptr; v = v->parent()) {
    if (FrameView* frame = ObjectCast<FrameView>(v)) {
      return frame;
    }
  }
  return nullptr;
}

void CompileCheck(View* view, long) {
  TextView* tv = ObjectCast<TextView>(view);
  if (tv == nullptr || tv->text() == nullptr) {
    return;
  }
  std::vector<CompileDiagnostic> diagnostics = CheckCSource(tv->text()->GetAllText());
  FrameView* frame = EnclosingFrameOf(view);
  if (diagnostics.empty()) {
    if (frame != nullptr) {
      frame->SetMessage("no errors");
    }
    return;
  }
  // Jump to the first error's line.
  tv->SetDot(tv->text()->PosOfLine(diagnostics.front().line));
  if (frame != nullptr) {
    frame->SetMessage(std::to_string(diagnostics.size()) + " error(s); first: line " +
                      std::to_string(diagnostics.front().line + 1) + " " +
                      diagnostics.front().message);
  }
}

void TagsFindDefinition(View* view, long) {
  TextView* tv = ObjectCast<TextView>(view);
  if (tv == nullptr || tv->text() == nullptr) {
    return;
  }
  TextData* data = tv->text();
  // The identifier under (or just before) the caret.
  int64_t pos = tv->dot_pos();
  auto is_ident = [&](int64_t p) {
    char ch = data->CharAt(p);
    return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_';
  };
  if (pos > 0 && !is_ident(pos)) {
    --pos;
  }
  int64_t start = pos;
  while (start > 0 && is_ident(start - 1)) {
    --start;
  }
  int64_t end = pos;
  while (end < data->size() && is_ident(end)) {
    ++end;
  }
  std::string word = data->GetText(start, end - start);
  FrameView* frame = EnclosingFrameOf(view);
  if (word.empty()) {
    return;
  }
  for (const SourceTag& tag : BuildTagTable(data->GetAllText())) {
    if (tag.name == word) {
      tv->SetDot(tag.pos);
      if (frame != nullptr) {
        frame->SetMessage("tag: " + word);
      }
      return;
    }
  }
  if (frame != nullptr) {
    frame->SetMessage("no tag for " + word);
  }
}

}  // namespace

void RegisterCompilePackageModule() {
  static bool done = [] {
    ModuleSpec compile;
    compile.name = "proc:compile";
    compile.text_bytes = 10 * 1024;
    compile.data_bytes = 512;
    compile.init = [] { ProcTable::Instance().Register("compile-check", CompileCheck); };
    compile.fini = [] { ProcTable::Instance().Unregister("compile-check"); };
    Loader::Instance().DeclareModule(std::move(compile));

    ModuleSpec tags;
    tags.name = "proc:tags";
    tags.text_bytes = 8 * 1024;
    tags.data_bytes = 512;
    tags.init = [] {
      ProcTable::Instance().Register("tags-find-definition", TagsFindDefinition);
    };
    tags.fini = [] { ProcTable::Instance().Unregister("tags-find-definition"); };
    return Loader::Instance().DeclareModule(std::move(tags));
  }();
  (void)done;
}

}  // namespace atk
