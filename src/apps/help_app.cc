#include "src/apps/help_app.h"

#include <algorithm>
#include <cctype>

#include "src/class_system/loader.h"

namespace atk {

ATK_DEFINE_CLASS(HelpLayoutView, View, "helplayout")
ATK_DEFINE_CLASS(HelpApp, Application, "helpapp")

void HelpLayoutView::Layout() {
  if (graphic() == nullptr || children().size() < 2) {
    return;
  }
  Rect b = graphic()->LocalBounds();
  int index_w = std::min(kIndexWidth, b.width / 3);
  // Snapshot 2: the document fills the left, the topic index sits right.
  children()[0]->Allocate(Rect{0, 0, b.width - index_w - 1, b.height}, graphic());
  children()[1]->Allocate(Rect{b.width - index_w, 0, index_w, b.height}, graphic());
}

void HelpLayoutView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  Rect b = g->LocalBounds();
  int index_w = std::min(kIndexWidth, b.width / 3);
  g->SetForeground(kBlack);
  g->DrawLine(Point{b.width - index_w - 1, 0}, Point{b.width - index_w - 1, b.height - 1});
}

HelpApp::HelpApp() : doc_data_(std::make_unique<TextData>()) {
  doc_view_.SetText(doc_data_.get());
  doc_scroll_.SetBody(&doc_view_);
  layout_.AddChild(&doc_scroll_);
  layout_.AddChild(&index_);
  frame_.SetBody(&layout_);
  index_.SetOnSelect([this](int i) {
    if (const std::string* item = index_.SelectedItem()) {
      ShowTopic(*item);
    }
    (void)i;
  });
  LoadBuiltinTopics();
}

HelpApp::~HelpApp() = default;

std::unique_ptr<InteractionManager> HelpApp::Start(WindowSystem& ws,
                                                   const std::vector<std::string>& args) {
  auto im = InteractionManager::Create(ws, 620, 420, "help");
  im->SetChild(&frame_);
  std::vector<std::string> names = TopicNames();
  index_.SetItems(names);
  if (args.size() > 1) {
    ShowTopic(args[1]);
  } else if (!names.empty()) {
    ShowTopic(names.front());
  }
  return im;
}

void HelpApp::AddTopic(const std::string& name, const std::string& document) {
  topics_[name] = document;
  index_.SetItems(TopicNames());
}

std::vector<std::string> HelpApp::TopicNames() const {
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& [name, body] : topics_) {
    names.push_back(name);
  }
  return names;
}

bool HelpApp::ShowTopic(const std::string& name) {
  auto it = topics_.find(name);
  if (it == topics_.end()) {
    frame_.SetMessage("no help for " + name);
    return false;
  }
  current_topic_ = name;
  ReadContext ctx;
  std::unique_ptr<DataObject> root = ReadDocument(it->second, &ctx);
  std::unique_ptr<TextData> next;
  if (TextData* as_text = ObjectCast<TextData>(root.get())) {
    root.release();
    next.reset(as_text);
  } else {
    next = std::make_unique<TextData>();
    next->SetText(it->second);
  }
  doc_view_.SetText(nullptr);
  doc_data_ = std::move(next);
  doc_view_.SetText(doc_data_.get());
  frame_.SetMessage("help: " + name);
  return true;
}

std::vector<std::string> HelpApp::Search(const std::string& query) const {
  auto lower = [](std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
    return s;
  };
  std::string needle = lower(query);
  std::vector<std::string> hits;
  for (const auto& [name, body] : topics_) {
    if (lower(name).find(needle) != std::string::npos ||
        lower(body).find(needle) != std::string::npos) {
      hits.push_back(name);
    }
  }
  return hits;
}

void HelpApp::LoadBuiltinTopics() {
  topics_["ez"] =
      "EZ: A Document Editor\n\nEZ is an editing program that you can use to "
      "create, edit, and format many different types of documents.\n\nUse the "
      "Insert menu to embed tables, drawings, equations, rasters and "
      "animations.\nChanges made in one window are reflected in the other.\n";
  topics_["messages"] =
      "Messages\n\nThe messages program reads and sends mail.  The panel on "
      "the left lists message folders; the top panel lists the messages in "
      "the selected folder.\nMulti-media content travels in ordinary mail.\n";
  topics_["printing"] =
      "Printing Documents\n\nChoose Print from the File menu.  A view prints "
      "by temporarily shifting its drawable to the printer and redrawing.\n";
  topics_["typescript"] =
      "Typescript\n\nTypescript provides an enhanced interface to the shell: "
      "a full editable transcript of your session.\n";
  topics_["console"] =
      "Console\n\nThe console displays status information such as the time, "
      "date, CPU load and file system usage.\n";
  topics_["toolkit"] =
      "The Andrew Toolkit\n\nThe toolkit lets programmers piece together "
      "components such as text, buttons and scroll bars, and embed components "
      "inside other components: a table inside text, a drawing inside a "
      "table.\n";
}

void RegisterHelpAppModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "app-help";
    spec.provides = {"helpapp"};
    spec.depends_on = {"text", "scroll", "frame", "widgets"};
    spec.text_bytes = 36 * 1024;
    spec.data_bytes = 12 * 1024;
    spec.init = [] { ClassRegistry::Instance().Register(HelpApp::StaticClassInfo()); };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
