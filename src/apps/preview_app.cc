#include "src/apps/preview_app.h"

#include <fstream>
#include <sstream>

#include "src/class_system/loader.h"

namespace atk {

ATK_DEFINE_CLASS(PreviewApp, Application, "previewapp")

std::unique_ptr<TextData> TroffToText(const std::string& troff_source) {
  auto text = std::make_unique<TextData>();
  std::istringstream in(troff_source);
  std::string line;
  std::string current_style = "default";
  int center_lines = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '.') {
      std::istringstream req(line.substr(1));
      std::string name;
      req >> name;
      if (name == "ce") {
        int n = 1;
        req >> n;
        center_lines = n;
      } else if (name == "sp") {
        int n = 1;
        req >> n;
        for (int i = 0; i < n; ++i) {
          text->InsertString(text->size(), "\n");
        }
      } else if (name == "B") {
        current_style = "bold";
        std::string rest;
        std::getline(req, rest);
        if (!rest.empty()) {
          if (rest[0] == ' ') {
            rest.erase(0, 1);
          }
          int64_t start = text->size();
          text->InsertString(start, rest + "\n");
          text->ApplyStyle(start, static_cast<int64_t>(rest.size()), "bold");
          current_style = "default";
        }
      } else if (name == "I") {
        current_style = "italic";
        std::string rest;
        std::getline(req, rest);
        if (!rest.empty()) {
          if (rest[0] == ' ') {
            rest.erase(0, 1);
          }
          int64_t start = text->size();
          text->InsertString(start, rest + "\n");
          text->ApplyStyle(start, static_cast<int64_t>(rest.size()), "italic");
          current_style = "default";
        }
      } else if (name == "R") {
        current_style = "default";
      } else if (name == "ft") {
        std::string font;
        req >> font;
        current_style = font == "B" ? "bold" : font == "I" ? "italic" : "default";
      } else if (name == "TH" || name == "SH") {
        std::string rest;
        std::getline(req, rest);
        if (!rest.empty() && rest[0] == ' ') {
          rest.erase(0, 1);
        }
        int64_t start = text->size();
        text->InsertString(start, rest + "\n");
        text->ApplyStyle(start, static_cast<int64_t>(rest.size()), "heading");
      }
      // Unknown requests are ignored, as a previewer should.
      continue;
    }
    int64_t start = text->size();
    text->InsertString(start, line + "\n");
    int64_t len = static_cast<int64_t>(line.size());
    if (center_lines > 0) {
      text->ApplyStyle(start, std::max<int64_t>(len, 1), "center");
      --center_lines;
    } else if (current_style != "default" && len > 0) {
      text->ApplyStyle(start, len, current_style);
    }
  }
  return text;
}

PreviewApp::PreviewApp() : document_(std::make_unique<TextData>()) {
  view_.SetText(document_.get());
  scroll_.SetBody(&view_);
  frame_.SetBody(&scroll_);
}

PreviewApp::~PreviewApp() = default;

void PreviewApp::LoadTroff(const std::string& source) {
  view_.SetText(nullptr);
  document_ = TroffToText(source);
  view_.SetText(document_.get());
}

std::unique_ptr<InteractionManager> PreviewApp::Start(WindowSystem& ws,
                                                      const std::vector<std::string>& args) {
  if (args.size() > 1) {
    std::ifstream in(args[1], std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      LoadTroff(buffer.str());
    }
  }
  auto im = InteractionManager::Create(ws, 560, 440, "preview");
  im->SetChild(&frame_);
  frame_.SetMessage("preview");
  return im;
}

void RegisterPreviewAppModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "app-preview";
    spec.provides = {"previewapp"};
    spec.depends_on = {"text", "scroll", "frame"};
    spec.text_bytes = 26 * 1024;
    spec.data_bytes = 2 * 1024;
    spec.init = [] { ClassRegistry::Instance().Register(PreviewApp::StaticClassInfo()); };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
