// The resident base program's module table (§7's runapp).
//
// RegisterStandardModules declares every component, window-system and
// application module to the Loader — nothing is loaded yet.  PinToolkitBase
// marks the modules every application shares (the resident base) as pinned,
// which is what makes the runapp memory accounting of bench_dynload
// meaningful.

#ifndef ATK_SRC_APPS_STANDARD_MODULES_H_
#define ATK_SRC_APPS_STANDARD_MODULES_H_

namespace atk {

void RegisterStandardModules();

// Loads and pins the shared base: the toolkit core pseudo-module plus the
// chrome every application uses (frame, scroll, widgets, text).
void PinToolkitBase();

// Application module registrars (also called by RegisterStandardModules).
void RegisterEzAppModule();
void RegisterMessagesAppModule();
void RegisterHelpAppModule();
void RegisterTypescriptAppModule();
void RegisterConsoleAppModule();
void RegisterPreviewAppModule();
// The filter extension package (§1's footnote: run standard tools over
// regions of text) — loaded on first invocation via the proc table.
void RegisterFilterPackageModule();
// The spelling checker (§1) — a "proc:spell" demand-loaded command module.
void RegisterSpellPackageModule();
// The C-language programming component (§1, §10) — TextData subclassed into
// a syntax-highlighting ctext, packaged as module "ctext".
void RegisterCTextPackageModule();
// The style editor (§1) — module "styleeditor".
void RegisterStyleEditorModule();
// The compile and tags packages (§1) — modules "proc:compile" / "proc:tags".
void RegisterCompilePackageModule();

}  // namespace atk

#endif  // ATK_SRC_APPS_STANDARD_MODULES_H_
