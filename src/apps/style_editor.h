// The style editor (§1's extension-package list): edits a document's
// StyleSheet.  A style list on the left, a live preview and attribute
// buttons on the right; redefining a style restyles every run using it in
// every view of the document — the stylesheet is shared state on the data
// object, so the §2 update machinery does the rest.

#ifndef ATK_SRC_APPS_STYLE_EDITOR_H_
#define ATK_SRC_APPS_STYLE_EDITOR_H_

#include <memory>
#include <string>

#include "src/base/view.h"
#include "src/components/text/text_data.h"
#include "src/components/widgets/widgets.h"

namespace atk {

class StyleEditorView : public View {
  ATK_DECLARE_CLASS(StyleEditorView)

 public:
  StyleEditorView();
  ~StyleEditorView() override;

  // The document whose stylesheet is edited (not owned).
  void SetTarget(TextData* text);
  TextData* target() const { return target_; }

  const std::string& selected_style() const { return selected_style_; }
  void SelectStyle(const std::string& name);

  // Attribute mutators applied to the selected style (also wired to the
  // buttons).  Each redefines the style and notifies the document.
  void ToggleBold();
  void ToggleItalic();
  void GrowFont(int delta);
  void ToggleCenter();

  void Layout() override;
  void FullUpdate() override;

  ListView* style_list() { return &style_list_; }

 private:
  void RefreshList();
  void Redefine(Style style);

  TextData* target_ = nullptr;
  std::string selected_style_ = "default";
  ListView style_list_;
  ButtonView bold_button_;
  ButtonView italic_button_;
  ButtonView bigger_button_;
  ButtonView smaller_button_;
  ButtonView center_button_;
};

}  // namespace atk

#endif  // ATK_SRC_APPS_STYLE_EDITOR_H_
