// The spelling checker (§1's extension-package list), packaged like the
// filter mechanism as a demand-loaded proc module ("proc:spell").
//
// "spell-check-region" scans the selection (or whole document) against a
// word list, marks unknown words italic, and reports the count through the
// enclosing frame's message line when one is reachable.

#include <cctype>
#include <set>
#include <string>

#include "src/apps/standard_modules.h"
#include "src/base/proctable.h"
#include "src/class_system/loader.h"
#include "src/components/frame/frame_view.h"
#include "src/components/text/text_view.h"

namespace atk {
namespace {

const std::set<std::string>& Dictionary() {
  static const std::set<std::string>* words = new std::set<std::string>{
      "a",       "an",      "and",    "andrew",  "are",     "at",     "be",     "but",
      "by",      "can",     "cat",    "cats",    "david",   "dear",   "document", "edit",
      "editor",  "expenses", "for",   "from",    "have",    "hello",  "help",   "here",
      "hope",    "in",      "is",     "it",      "kit",     "list",   "mail",   "message",
      "nice",    "object",  "of",     "our",     "picture", "system", "table",  "text",
      "the",     "this",    "to",     "tool",    "toolkit", "view",   "window", "with",
      "world",   "you",     "your"};
  return *words;
}

bool IsKnown(std::string word) {
  for (char& ch : word) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  return Dictionary().count(word) > 0;
}

FrameView* EnclosingFrame(View* view) {
  for (View* v = view; v != nullptr; v = v->parent()) {
    if (FrameView* frame = ObjectCast<FrameView>(v)) {
      return frame;
    }
  }
  return nullptr;
}

void SpellCheckRegion(View* view, long) {
  TextView* tv = ObjectCast<TextView>(view);
  if (tv == nullptr || tv->text() == nullptr) {
    return;
  }
  TextData* data = tv->text();
  int64_t start = tv->HasSelection() ? tv->dot_pos() : 0;
  int64_t end = tv->HasSelection() ? tv->dot_pos() + tv->dot_len() : data->size();
  int misspelled = 0;
  int64_t pos = start;
  while (pos < end) {
    char ch = data->CharAt(pos);
    if (!std::isalpha(static_cast<unsigned char>(ch))) {
      ++pos;
      continue;
    }
    int64_t word_end = pos;
    std::string word;
    while (word_end < end && std::isalpha(static_cast<unsigned char>(data->CharAt(word_end)))) {
      word += data->CharAt(word_end);
      ++word_end;
    }
    if (!IsKnown(word)) {
      data->ApplyStyle(pos, word_end - pos, "italic");
      ++misspelled;
    }
    pos = word_end;
  }
  if (FrameView* frame = EnclosingFrame(view)) {
    frame->SetMessage(misspelled == 0
                          ? "no misspellings"
                          : std::to_string(misspelled) + " word(s) not in dictionary");
  }
}

}  // namespace

void RegisterSpellPackageModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "proc:spell";
    spec.text_bytes = 12 * 1024;
    spec.data_bytes = 8 * 1024;  // The word list.
    spec.init = [] { ProcTable::Instance().Register("spell-check-region", SpellCheckRegion); };
    spec.fini = [] { ProcTable::Instance().Unregister("spell-check-region"); };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
