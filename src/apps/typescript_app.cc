#include "src/apps/typescript_app.h"

#include <sstream>

#include "src/class_system/loader.h"

namespace atk {

ATK_DEFINE_CLASS(TypescriptView, TextView, "typescriptview")
ATK_DEFINE_CLASS(TypescriptApp, Application, "typescriptapp")

// ---- FakeShell ---------------------------------------------------------------

FakeShell::FakeShell() {
  AddFile("readme", "Welcome to the Andrew system.\n");
  AddFile("paper.txt", "The Andrew Toolkit - An Overview\n");
  AddFile("notes", "ITC, Carnegie Mellon University\n");
}

void FakeShell::AddFile(const std::string& name, const std::string& contents) {
  files_[name] = contents;
}

std::string FakeShell::Execute(const std::string& command_line) {
  history_.push_back(command_line);
  std::istringstream in(command_line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty()) {
    return "";
  }
  if (cmd == "echo") {
    std::string rest;
    std::getline(in, rest);
    if (!rest.empty() && rest[0] == ' ') {
      rest.erase(0, 1);
    }
    return rest + "\n";
  }
  if (cmd == "date") {
    return clock_ + "\n";
  }
  if (cmd == "whoami") {
    return "user\n";
  }
  if (cmd == "hostname") {
    return "andrew.cmu.edu\n";
  }
  if (cmd == "ls") {
    std::string out;
    for (const auto& [name, contents] : files_) {
      out += name + "\n";
    }
    return out;
  }
  if (cmd == "cat") {
    std::string name;
    std::string out;
    bool any = false;
    while (in >> name) {
      any = true;
      auto it = files_.find(name);
      out += it != files_.end() ? it->second : ("cat: " + name + ": no such file\n");
    }
    return any ? out : "";
  }
  if (cmd == "wc") {
    std::string name;
    in >> name;
    auto it = files_.find(name);
    if (it == files_.end()) {
      return "wc: " + name + ": no such file\n";
    }
    int64_t lines = 0;
    for (char ch : it->second) {
      lines += ch == '\n' ? 1 : 0;
    }
    return std::to_string(lines) + " " + std::to_string(it->second.size()) + " " + name + "\n";
  }
  if (cmd == "history") {
    std::string out;
    for (size_t i = 0; i < history_.size(); ++i) {
      out += std::to_string(i + 1) + "  " + history_[i] + "\n";
    }
    return out;
  }
  return cmd + ": Command not found.\n";
}

// ---- TypescriptView -------------------------------------------------------------

TypescriptView::TypescriptView() = default;

void TypescriptView::ShowPrompt() {
  TextData* data = text();
  if (data == nullptr) {
    return;
  }
  data->InsertString(data->size(), kPrompt);
  input_start_ = data->size();
  SetDot(data->size());
}

std::string TypescriptView::RunCommand(const std::string& command) {
  TextData* data = text();
  if (data == nullptr || shell_ == nullptr) {
    return "";
  }
  data->InsertString(data->size(), command + "\n");
  std::string output = shell_->Execute(command);
  data->InsertString(data->size(), output);
  ShowPrompt();
  return output;
}

bool TypescriptView::HandleKey(char key, unsigned modifiers) {
  TextData* data = text();
  if (data == nullptr || shell_ == nullptr) {
    return TextView::HandleKey(key, modifiers);
  }
  if (key == '\r' || key == '\n') {
    // Execute everything after the last prompt.
    std::string command = data->GetText(input_start_, data->size() - input_start_);
    data->InsertString(data->size(), "\n");
    std::string output = shell_->Execute(command);
    data->InsertString(data->size(), output);
    ShowPrompt();
    return true;
  }
  // Keep edits inside the input region: pull a wandering caret to the end.
  if (dot_pos() < input_start_) {
    SetDot(data->size());
  }
  if ((key == '\b' || key == '\177') && dot_pos() <= input_start_) {
    return true;  // Never erase the prompt.
  }
  return TextView::HandleKey(key, modifiers);
}

// ---- TypescriptApp ---------------------------------------------------------------

TypescriptApp::TypescriptApp() : transcript_(std::make_unique<TextData>()) {
  view_.SetText(transcript_.get());
  view_.SetShell(&shell_);
  scroll_.SetBody(&view_);
  frame_.SetBody(&scroll_);
}

TypescriptApp::~TypescriptApp() = default;

std::unique_ptr<InteractionManager> TypescriptApp::Start(
    WindowSystem& ws, const std::vector<std::string>& args) {
  (void)args;
  auto im = InteractionManager::Create(ws, 520, 340, "typescript");
  im->SetChild(&frame_);
  im->SetInputFocus(&view_);
  transcript_->SetText("Andrew typescript\n");
  view_.ShowPrompt();
  frame_.SetMessage("typescript");
  return im;
}

void RegisterTypescriptAppModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "app-typescript";
    spec.provides = {"typescriptapp", "typescriptview"};
    spec.depends_on = {"text", "scroll", "frame"};
    spec.text_bytes = 30 * 1024;
    spec.data_bytes = 3 * 1024;
    spec.init = [] {
      ClassRegistry::Instance().Register(TypescriptApp::StaticClassInfo());
      ClassRegistry::Instance().Register(TypescriptView::StaticClassInfo());
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
