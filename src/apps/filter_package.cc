// The filter extension package (§1, footnote 1: "the filter mechanism gives
// the user the ability to use standard tools on regions of text").
//
// Packaged as the dormant module "proc:filter": nothing registers these
// commands until the first invocation, when ProcTable::Invoke derives the
// module name from the proc prefix and loads it — §7's load-on-invoke
// extension commands.

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

#include "src/apps/standard_modules.h"
#include "src/base/proctable.h"
#include "src/class_system/loader.h"
#include "src/components/text/text_view.h"

namespace atk {
namespace {

// Applies a text filter to the selection (or the whole document when
// nothing is selected), replacing the region with the filter's output.
void FilterRegion(View* view, const std::function<std::string(const std::string&)>& filter) {
  TextView* tv = ObjectCast<TextView>(view);
  if (tv == nullptr || tv->text() == nullptr) {
    return;
  }
  TextData* data = tv->text();
  int64_t pos = tv->HasSelection() ? tv->dot_pos() : 0;
  int64_t len = tv->HasSelection() ? tv->dot_len() : data->size();
  std::string region = data->GetText(pos, len);
  std::string replaced = filter(region);
  data->DeleteRange(pos, len);
  data->InsertString(pos, replaced);
  tv->SetDot(pos, static_cast<int64_t>(replaced.size()));
}

std::string Upcase(const std::string& in) {
  std::string out = in;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::toupper(ch)); });
  return out;
}

std::string Downcase(const std::string& in) {
  std::string out = in;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
  return out;
}

std::string SortLines(const std::string& in) {
  std::vector<std::string> lines;
  std::istringstream stream(in);
  std::string line;
  bool trailing_newline = !in.empty() && in.back() == '\n';
  while (std::getline(stream, line)) {
    lines.push_back(line);
  }
  std::sort(lines.begin(), lines.end());
  std::ostringstream out;
  for (size_t i = 0; i < lines.size(); ++i) {
    out << lines[i];
    if (i + 1 < lines.size() || trailing_newline) {
      out << "\n";
    }
  }
  return out.str();
}

std::string ReverseLines(const std::string& in) {
  std::vector<std::string> lines;
  std::istringstream stream(in);
  std::string line;
  bool trailing_newline = !in.empty() && in.back() == '\n';
  while (std::getline(stream, line)) {
    lines.push_back(line);
  }
  std::reverse(lines.begin(), lines.end());
  std::ostringstream out;
  for (size_t i = 0; i < lines.size(); ++i) {
    out << lines[i];
    if (i + 1 < lines.size() || trailing_newline) {
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace

void RegisterFilterPackageModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "proc:filter";
    spec.text_bytes = 9 * 1024;
    spec.data_bytes = 512;
    spec.init = [] {
      ProcTable& procs = ProcTable::Instance();
      procs.Register("filter-upcase",
                     [](View* view, long) { FilterRegion(view, Upcase); });
      procs.Register("filter-downcase",
                     [](View* view, long) { FilterRegion(view, Downcase); });
      procs.Register("filter-sort-lines",
                     [](View* view, long) { FilterRegion(view, SortLines); });
      procs.Register("filter-reverse-lines",
                     [](View* view, long) { FilterRegion(view, ReverseLines); });
    };
    spec.fini = [] {
      ProcTable& procs = ProcTable::Instance();
      procs.Unregister("filter-upcase");
      procs.Unregister("filter-downcase");
      procs.Unregister("filter-sort-lines");
      procs.Unregister("filter-reverse-lines");
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
