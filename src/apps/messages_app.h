// Messages — the mail reader/composer (snapshots 3 and 4).
//
// Reading window: a folder list pane on the left, the selected folder's
// message captions top-right, and the selected message's body bottom-right.
// Since the body pane is the standard text view, messages "automatically
// inherit the multi-media functionality of the text component" (§1) — the
// snapshot-3 drawing inside a message body just works.
//
// Compose window (snapshot 4): To/Subject fields and a body editor; Send
// serializes the body to a datastream (mailability-checked) and delivers it
// through the MailStore.

#ifndef ATK_SRC_APPS_MESSAGES_APP_H_
#define ATK_SRC_APPS_MESSAGES_APP_H_

#include <memory>
#include <string>

#include "src/base/application.h"
#include "src/apps/mail_store.h"
#include "src/components/frame/frame_view.h"
#include "src/components/scroll/scrollbar_view.h"
#include "src/components/text/text_data.h"
#include "src/components/text/text_view.h"
#include "src/components/widgets/widgets.h"

namespace atk {

// The three-pane reading layout (folders | captions / body).
class MessagesLayoutView : public View {
  ATK_DECLARE_CLASS(MessagesLayoutView)

 public:
  void Layout() override;
  void FullUpdate() override;

  // Children are set by the app: [0] folders, [1] captions, [2] body.
  static constexpr int kFolderPaneWidth = 180;
  static constexpr int kCaptionPaneHeight = 120;
};

class MessagesApp : public Application {
  ATK_DECLARE_CLASS(MessagesApp)

 public:
  MessagesApp();
  ~MessagesApp() override;

  std::unique_ptr<InteractionManager> Start(WindowSystem& ws,
                                            const std::vector<std::string>& args) override;

  // The store is owned by the app; tests may seed it before Start.
  MailStore& store() { return store_; }

  // ---- Reading-side operations ----
  void RefreshFolderList();
  void SelectFolder(int index);
  void SelectMessage(int index);
  const std::string& current_folder() const { return current_folder_; }
  int current_message() const { return current_message_; }
  ListView* folder_list() { return &folder_list_; }
  ListView* caption_list() { return &caption_list_; }
  TextView* body_view() { return &body_view_; }
  FrameView* frame() { return &frame_; }

  // ---- Compose side ----
  class Composer {
   public:
    explicit Composer(MessagesApp* app);
    TextData& to() { return to_; }
    TextData& subject() { return subject_; }
    TextData& body() { return body_; }
    TextView& body_view() { return body_view_; }
    // Builds a compose window; the returned IM owns nothing of the composer.
    std::unique_ptr<InteractionManager> OpenWindow(WindowSystem& ws);
    // Serializes and delivers.  Returns false when undeliverable.
    bool Send(const std::string& folder = "mail");

   private:
    MessagesApp* app_;
    TextData to_;
    TextData subject_;
    TextData body_;
    TextView to_view_;
    TextView subject_view_;
    TextView body_view_;
    FrameView frame_;
    std::unique_ptr<View> compose_layout_;  // ComposeLayoutView (messages_app.cc).
    LabelView to_label_;
    LabelView subject_label_;
  };

  std::unique_ptr<Composer> NewComposer();

 private:
  MailStore store_;
  FrameView frame_;
  MessagesLayoutView layout_;
  ListView folder_list_;
  ListView caption_list_;
  ScrollBarView body_scroll_;
  TextView body_view_;
  std::unique_ptr<TextData> body_data_;
  std::string current_folder_;
  int current_message_ = -1;
};

}  // namespace atk

#endif  // ATK_SRC_APPS_MESSAGES_APP_H_
