#include "src/apps/mail_store.h"

namespace atk {

std::string MailMessage::Caption() const {
  return subject + " - " + from + " (" + std::to_string(body.size()) + ")";
}

int MailFolder::NewCount() const {
  int count = 0;
  for (const MailMessage& message : messages) {
    count += message.is_new ? 1 : 0;
  }
  return count;
}

MailStore::MailStore() {
  AddFolder("mail");
  AddFolder("outgoing");
}

MailFolder* MailStore::FindFolder(const std::string& name) {
  for (MailFolder& folder : folders_) {
    if (folder.name == name) {
      return &folder;
    }
  }
  return nullptr;
}

MailFolder& MailStore::AddFolder(const std::string& name) {
  if (MailFolder* existing = FindFolder(name)) {
    return *existing;
  }
  folders_.push_back(MailFolder{name, {}});
  return folders_.back();
}

bool MailStore::IsMailable(const std::string& body) {
  for (char ch : body) {
    unsigned char byte = static_cast<unsigned char>(ch);
    if (byte >= 0x80) {
      return false;
    }
    if (byte < 0x20 && ch != '\n' && ch != '\t' && ch != '\r') {
      return false;
    }
  }
  return true;
}

bool MailStore::Deliver(const std::string& folder, MailMessage message) {
  if (!IsMailable(message.body)) {
    return false;
  }
  AddFolder(folder).messages.push_back(std::move(message));
  return true;
}

int MailStore::total_messages() const {
  int total = 0;
  for (const MailFolder& folder : folders_) {
    total += static_cast<int>(folder.messages.size());
  }
  return total;
}

}  // namespace atk
