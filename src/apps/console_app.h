// Console — the system monitor (§1): "displays status information such as
// the time, date, CPU load and file system information."
//
// The machine statistics come from an injectable StatsSource (deterministic
// in tests and benches); ConsoleData is the observable data object holding
// the latest sample, and ConsoleView renders a clock face, a load bar graph
// with history, and per-filesystem usage gauges.

#ifndef ATK_SRC_APPS_CONSOLE_APP_H_
#define ATK_SRC_APPS_CONSOLE_APP_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/base/application.h"
#include "src/base/data_object.h"
#include "src/base/view.h"

namespace atk {

struct ConsoleSample {
  int hour = 9;
  int minute = 30;
  int second = 0;
  std::string date = "Feb 11 1988";
  double cpu_load = 0.0;  // 0..1
  struct FileSystem {
    std::string name;
    double used_fraction = 0.0;
  };
  std::vector<FileSystem> filesystems;
};

class ConsoleData : public DataObject {
  ATK_DECLARE_CLASS(ConsoleData)

 public:
  static constexpr size_t kLoadHistory = 32;

  void Update(const ConsoleSample& sample);
  const ConsoleSample& sample() const { return sample_; }
  const std::deque<double>& load_history() const { return load_history_; }

  void WriteBody(DataStreamWriter& writer) const override;
  bool ReadBody(DataStreamReader& reader, ReadContext& context) override;

 private:
  ConsoleSample sample_;
  std::deque<double> load_history_;
};

class ConsoleView : public View {
  ATK_DECLARE_CLASS(ConsoleView)

 public:
  ConsoleData* console() const { return ObjectCast<ConsoleData>(data_object()); }
  void FullUpdate() override;
  Size DesiredSize(Size available) override;
};

class ConsoleApp : public Application {
  ATK_DECLARE_CLASS(ConsoleApp)

 public:
  ConsoleApp();
  ~ConsoleApp() override;

  std::unique_ptr<InteractionManager> Start(WindowSystem& ws,
                                            const std::vector<std::string>& args) override;

  ConsoleData& data() { return data_; }
  ConsoleView* view() { return &view_; }

 private:
  ConsoleData data_;
  ConsoleView view_;
};

}  // namespace atk

#endif  // ATK_SRC_APPS_CONSOLE_APP_H_
