#include "src/apps/ez_app.h"

#include <fstream>
#include <sstream>

#include "src/base/proctable.h"
#include "src/class_system/loader.h"

namespace atk {

ATK_DEFINE_CLASS(EzApp, Application, "ezapp")

EzApp::EzApp() : document_(std::make_unique<TextData>()) {
  text_view_.SetText(document_.get());
  scrollbar_.SetBody(&text_view_);
  frame_.SetBody(&scrollbar_);
  BuildMenus();
  frame_.AddAppMenu("Insert~Table", "ez-insert-table");
  frame_.AddAppMenu("Insert~Drawing", "ez-insert-drawing");
  frame_.AddAppMenu("Insert~Equation", "ez-insert-equation");
  frame_.AddAppMenu("Insert~Raster", "ez-insert-raster");
  frame_.AddAppMenu("Insert~Animation", "ez-insert-animation");
  frame_.AddAppMenu("Region~Upcase", "filter-upcase");
  frame_.AddAppMenu("Region~Sort Lines", "filter-sort-lines");
}

EzApp::~EzApp() = default;

void EzApp::BuildMenus() {
  // EZ's extension commands live in the proc table so menus can reference
  // them before any module is loaded.
  ProcTable& procs = ProcTable::Instance();
  procs.Register("ez-insert-table", [](View* view, long) {
    if (TextView* tv = ObjectCast<TextView>(view)) {
      std::unique_ptr<DataObject> obj =
          ObjectCast<DataObject>(Loader::Instance().NewObject("table"));
      if (obj != nullptr) {
        tv->InsertObjectAtDot(std::move(obj));
      }
    }
  });
  auto insert_proc = [](const char* type) {
    return [type](View* view, long) {
      if (TextView* tv = ObjectCast<TextView>(view)) {
        std::unique_ptr<DataObject> obj =
            ObjectCast<DataObject>(Loader::Instance().NewObject(type));
        if (obj != nullptr) {
          tv->InsertObjectAtDot(std::move(obj));
        }
      }
    };
  };
  procs.Register("ez-insert-drawing", insert_proc("draw"));
  procs.Register("ez-insert-equation", insert_proc("eq"));
  procs.Register("ez-insert-raster", insert_proc("raster"));
  procs.Register("ez-insert-animation", insert_proc("animation"));
}

std::unique_ptr<InteractionManager> EzApp::Start(WindowSystem& ws,
                                                 const std::vector<std::string>& args) {
  std::string title = "ez";
  if (args.size() > 1) {
    OpenFile(args[1]);
    title = "ez: " + args[1];
  }
  auto im = InteractionManager::Create(ws, 560, 400, title);
  im->SetChild(&frame_);
  im->SetInputFocus(&text_view_);
  frame_.SetMessage("EZ: a document editor");
  return im;
}

bool EzApp::LoadDocumentString(const std::string& content) {
  ReadContext ctx;
  std::unique_ptr<DataObject> root = ReadDocument(content, &ctx);
  std::unique_ptr<TextData> next;
  if (root == nullptr) {
    // Not a datastream: treat as plain text.
    next = std::make_unique<TextData>();
    next->SetText(content);
  } else if (TextData* as_text = ObjectCast<TextData>(root.get())) {
    root.release();
    next.reset(as_text);
  } else {
    // A bare non-text component: wrap it in a text document (EZ is generic).
    next = std::make_unique<TextData>();
    next->InsertObject(0, std::move(root));
  }
  text_view_.SetText(nullptr);
  document_ = std::move(next);
  text_view_.SetText(document_.get());
  return true;
}

bool EzApp::OpenFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    frame_.SetMessage("cannot open " + path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  current_path_ = path;
  return LoadDocumentString(buffer.str());
}

std::string EzApp::SaveToString() const { return WriteDocument(*document_); }

bool EzApp::SaveFile(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    frame_.SetMessage("cannot write " + path);
    return false;
  }
  out << SaveToString();
  current_path_ = path;
  frame_.SetMessage("wrote " + path);
  return out.good();
}

DataObject* EzApp::InsertComponent(const std::string& data_type) {
  std::unique_ptr<DataObject> obj =
      ObjectCast<DataObject>(Loader::Instance().NewObject(data_type));
  if (obj == nullptr) {
    frame_.SetMessage("no component: " + data_type);
    return nullptr;
  }
  return text_view_.InsertObjectAtDot(std::move(obj));
}

void RegisterEzAppModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "app-ez";
    spec.provides = {"ezapp"};
    spec.depends_on = {"text", "scroll", "frame"};
    spec.text_bytes = 40 * 1024;
    spec.data_bytes = 4 * 1024;
    spec.init = [] { ClassRegistry::Instance().Register(EzApp::StaticClassInfo()); };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
