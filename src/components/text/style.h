// Text styles and style sheets.
//
// The text component is "multi-font text ... with multiple fonts,
// indentations, etc." (§2).  A Style names a bundle of appearance
// attributes; a StyleSheet maps style names to Styles.  Text data carries
// (start, len, style-name) runs; the view resolves names through the sheet
// at layout time, so restyling a sheet restyles every document using it.

#ifndef ATK_SRC_COMPONENTS_TEXT_STYLE_H_
#define ATK_SRC_COMPONENTS_TEXT_STYLE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/graphics/color.h"
#include "src/graphics/font.h"

namespace atk {

enum class Justification {
  kLeft,
  kCenter,
  kRight,
};

struct Style {
  std::string name = "default";
  FontSpec font;
  int indent_left = 0;   // Pixels of left indentation for wrapped lines.
  int space_above = 0;   // Extra pixels above each line in this style.
  Justification justify = Justification::kLeft;
  Color color = kBlack;

  friend bool operator==(const Style&, const Style&) = default;

  // Serialized form "font=andy12b;indent=8;above=2;justify=center".
  std::string Serialize() const;
  static Style Deserialize(std::string_view name, std::string_view serialized);
};

class StyleSheet {
 public:
  // A sheet pre-populated with the standard Andrew styles: default, bold,
  // italic, bolditalic, heading, subheading, typewriter, center, quotation.
  static StyleSheet WithStandardStyles();

  void Define(const Style& style);
  // Resolves `name`; unknown names resolve to "default".
  const Style& Get(std::string_view name) const;
  bool Contains(std::string_view name) const;

  // Styles that must be serialized with documents: non-standard names plus
  // any standard style whose definition was edited (e.g. by the style
  // editor).
  std::vector<const Style*> CustomStyles() const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Style, std::less<>> styles_;
  Style default_style_;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_TEXT_STYLE_H_
