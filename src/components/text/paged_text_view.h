// PagedTextView — the paper-based WYSIWYG view promised in §2.
//
// "In this case we plan on providing a full WYSIWYG text view.  This
// paper-based text view will be designed to use the same text data object."
// This class is exactly that second view type: it shares TextData (and the
// layout engine) with TextView, but presents the content as a printed page —
// a centered sheet with paper margins and a page indicator — and can render
// the whole document across the pages of a PrintJob.  One window can show a
// TextView and the other a PagedTextView on the same data object, with edits
// reflected in both (§2's two-window scenario; tested in the integration
// suite).

#ifndef ATK_SRC_COMPONENTS_TEXT_PAGED_TEXT_VIEW_H_
#define ATK_SRC_COMPONENTS_TEXT_PAGED_TEXT_VIEW_H_

#include "src/components/text/text_view.h"
#include "src/wm/printer.h"

namespace atk {

class PagedTextView : public TextView {
  ATK_DECLARE_CLASS(PagedTextView)

 public:
  PagedTextView();

  // Sheet geometry within the view.
  static constexpr int kSheetInset = 10;   // Gray desk border around the sheet.
  static constexpr int kPaperMargin = 18;  // White paper margin inside the sheet.

  void FullUpdate() override;
  void Layout() override;

  // The page currently shown (0-based), derived from the scroll position and
  // a fixed lines-per-page estimate.
  int current_page() const { return current_page_; }
  // Document page count under the current geometry.
  int PageCount();

  // Renders the whole document onto consecutive pages of `job` — the §4
  // printing path (repoint the drawable, redraw).
  void PrintDocument(PrintJob& job);

 private:
  Rect SheetRect() const;
  int current_page_ = 0;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_TEXT_PAGED_TEXT_VIEW_H_
