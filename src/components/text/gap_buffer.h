// A classic gap buffer: the text storage under the text component.  Editing
// near the gap is O(1) amortized; moving the cursor far away pays one
// memmove.  This is the same structure the original ATK text object used.

#ifndef ATK_SRC_COMPONENTS_TEXT_GAP_BUFFER_H_
#define ATK_SRC_COMPONENTS_TEXT_GAP_BUFFER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/observability/memory.h"

namespace atk {

// The `text.mem.gapbuffer` account (all gap-buffer backing storage).
observability::MemoryAccount& GapBufferMemAccount();

class GapBuffer {
 public:
  GapBuffer() : buffer_(kInitialCapacity), gap_start_(0), gap_end_(kInitialCapacity) {
    SyncMem();
  }
  GapBuffer(const GapBuffer& other)
      : buffer_(other.buffer_), gap_start_(other.gap_start_), gap_end_(other.gap_end_) {
    SyncMem();
  }
  GapBuffer& operator=(const GapBuffer& other) {
    buffer_ = other.buffer_;
    gap_start_ = other.gap_start_;
    gap_end_ = other.gap_end_;
    SyncMem();
    return *this;
  }
  GapBuffer(GapBuffer&&) = default;
  GapBuffer& operator=(GapBuffer&&) = default;

  int64_t size() const {
    return static_cast<int64_t>(buffer_.size() - (gap_end_ - gap_start_));
  }
  bool empty() const { return size() == 0; }

  char At(int64_t pos) const {
    size_t p = static_cast<size_t>(pos);
    return buffer_[p < gap_start_ ? p : p + (gap_end_ - gap_start_)];
  }

  void Insert(int64_t pos, std::string_view text);
  void Delete(int64_t pos, int64_t len);

  // Bulk-ingestion support (PR 5): pre-size the gap for `additional` more
  // bytes so a run of Inserts (a document body landing fragment by fragment)
  // triggers no intermediate reallocation.
  void Reserve(size_t additional);
  // Insert at the end: after the first call the gap stays at the end, so a
  // streamed document body appends with one memcpy per fragment.
  void Append(std::string_view text) { Insert(size(), text); }

  std::string Substr(int64_t pos, int64_t len) const;
  std::string All() const { return Substr(0, size()); }

  // Position of the next/previous occurrence of `ch` at or after / strictly
  // before `pos`; -1 when absent.
  int64_t Find(char ch, int64_t pos) const;
  int64_t RFind(char ch, int64_t pos) const;

  // Where the gap currently sits (exposed for tests and the bench).
  int64_t gap_position() const { return static_cast<int64_t>(gap_start_); }
  size_t capacity() const { return buffer_.size(); }

 private:
  static constexpr size_t kInitialCapacity = 64;

  void MoveGapTo(size_t pos);
  void GrowGap(size_t needed);

  // Re-charges the accountant to this buffer's capacity.  Called only when
  // the backing vector may have changed size (construction, GrowGap, copy),
  // never on the per-edit path.  Re-attaches after a move-from, so a reused
  // moved-from buffer self-heals its accounting.
  void SyncMem() {
    if (!mem_.attached()) {
      mem_ = observability::ScopedCharge(GapBufferMemAccount());
    }
    mem_.Resize(static_cast<int64_t>(buffer_.capacity()));
  }

  std::vector<char> buffer_;
  size_t gap_start_;
  size_t gap_end_;
  observability::ScopedCharge mem_;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_TEXT_GAP_BUFFER_H_
