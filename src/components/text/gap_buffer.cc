#include "src/components/text/gap_buffer.h"

#include <algorithm>
#include <cstring>

namespace atk {

observability::MemoryAccount& GapBufferMemAccount() {
  static observability::MemoryAccount& account =
      observability::MemoryAccountant::Instance().account("text.mem.gapbuffer");
  return account;
}

void GapBuffer::MoveGapTo(size_t pos) {
  if (pos == gap_start_) {
    return;
  }
  size_t gap_len = gap_end_ - gap_start_;
  if (pos < gap_start_) {
    size_t count = gap_start_ - pos;
    std::memmove(&buffer_[pos + gap_len], &buffer_[pos], count);
  } else {
    size_t count = pos - gap_start_;
    std::memmove(&buffer_[gap_start_], &buffer_[gap_end_], count);
  }
  gap_start_ = pos;
  gap_end_ = pos + gap_len;
}

void GapBuffer::GrowGap(size_t needed) {
  size_t gap_len = gap_end_ - gap_start_;
  if (gap_len >= needed) {
    return;
  }
  size_t old_size = buffer_.size();
  size_t new_size = std::max(old_size * 2, old_size + needed);
  size_t tail_len = old_size - gap_end_;
  buffer_.resize(new_size);
  std::memmove(&buffer_[new_size - tail_len], &buffer_[gap_end_], tail_len);
  gap_end_ = new_size - tail_len;
  SyncMem();
}

void GapBuffer::Reserve(size_t additional) { GrowGap(additional); }

void GapBuffer::Insert(int64_t pos, std::string_view text) {
  if (pos < 0 || pos > size() || text.empty()) {
    return;
  }
  GrowGap(text.size());
  MoveGapTo(static_cast<size_t>(pos));
  std::memcpy(&buffer_[gap_start_], text.data(), text.size());
  gap_start_ += text.size();
}

void GapBuffer::Delete(int64_t pos, int64_t len) {
  if (pos < 0 || len <= 0 || pos >= size()) {
    return;
  }
  len = std::min(len, size() - pos);
  MoveGapTo(static_cast<size_t>(pos));
  gap_end_ += static_cast<size_t>(len);
}

std::string GapBuffer::Substr(int64_t pos, int64_t len) const {
  if (pos < 0 || len <= 0 || pos >= size()) {
    return "";
  }
  len = std::min(len, size() - pos);
  // At most two memcpys: the part left of the gap and the part right of it.
  std::string out;
  out.resize(static_cast<size_t>(len));
  size_t p = static_cast<size_t>(pos);
  size_t n = static_cast<size_t>(len);
  size_t written = 0;
  if (p < gap_start_) {
    size_t take = std::min(gap_start_ - p, n);
    std::memcpy(out.data(), &buffer_[p], take);
    written = take;
    p += take;
  }
  if (written < n) {
    std::memcpy(out.data() + written, &buffer_[p + (gap_end_ - gap_start_)], n - written);
  }
  return out;
}

int64_t GapBuffer::Find(char ch, int64_t pos) const {
  for (int64_t i = std::max<int64_t>(pos, 0); i < size(); ++i) {
    if (At(i) == ch) {
      return i;
    }
  }
  return -1;
}

int64_t GapBuffer::RFind(char ch, int64_t pos) const {
  for (int64_t i = std::min(pos, size()) - 1; i >= 0; --i) {
    if (At(i) == ch) {
      return i;
    }
  }
  return -1;
}

}  // namespace atk
