// TextView — the display-based ("semi-WYSIWYG / WYSLRN") text view of §2.
//
// Renders a TextData with multiple fonts, indentation and justification;
// handles the caret, selection, keyboard editing and mouse hits; embeds a
// child view for every anchored data object, sized through DesiredSize and
// consulted first during event dispatch (parental authority); and exposes
// the Scrollable interface so a scroll bar can adorn it.  Transient state
// only — nothing here is ever written to a file.

#ifndef ATK_SRC_COMPONENTS_TEXT_TEXT_VIEW_H_
#define ATK_SRC_COMPONENTS_TEXT_TEXT_VIEW_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/scrollable.h"
#include "src/base/view.h"
#include "src/components/text/text_data.h"

namespace atk {

class TextView : public View, public Scrollable {
  ATK_DECLARE_CLASS(TextView)

 public:
  TextView();
  ~TextView() override;

  // The data object as TextData (nullptr when none attached).
  TextData* text() const;
  // Attach convenience (SetDataObject + reset caret/scroll).
  void SetText(TextData* data);

  // ---- Caret & selection ("the dot") ----
  int64_t dot_pos() const { return dot_pos_; }
  int64_t dot_len() const { return dot_len_; }
  void SetDot(int64_t pos, int64_t len = 0);
  bool HasSelection() const { return dot_len_ > 0; }
  std::string SelectedText() const;

  // ---- Editing operations (bound to keys/menus through the proc table) ----
  void SelfInsert(char ch);
  void InsertText(std::string_view s);
  void DeleteBackward();
  void DeleteForward();
  void MoveForward();
  void MoveBackward();
  void MoveUp();
  void MoveDown();
  void MoveLineStart();
  void MoveLineEnd();
  void KillLine();   // Delete to end of line into the kill buffer.
  void Yank();       // Re-insert the kill buffer.
  void CopyRegion();
  void CutRegion();
  void Paste();
  // Applies a named style to the selection.
  void StyleSelection(const std::string& style_name);
  // Embeds `data` at the caret with its default (or given) view class.
  DataObject* InsertObjectAtDot(std::unique_ptr<DataObject> data,
                                std::string_view view_type = "");

  // ---- Scrollable ----
  ScrollInfo GetScrollInfo() const override;
  void ScrollToUnit(int64_t unit) override;

  // ---- View protocol ----
  void Layout() override;
  void FullUpdate() override;
  Size DesiredSize(Size available) override;
  View* Hit(const InputEvent& event) override;
  bool HandleKey(char key, unsigned modifiers) override;
  void FillMenus(MenuList& menus) override;
  const KeyMap* GetKeyMap() const override;
  void ObservedChanged(Observable* changed, const Change& change) override;

  // ---- Geometry queries ----
  // Character position at a view-local point (clamps into the text).
  int64_t PosAtPoint(Point p);
  // Top-left of the character cell at `pos`; {-1,-1} when not laid out /
  // scrolled out of view.
  Point PointAtPos(int64_t pos);
  // Number of visual lines currently laid out.
  int visible_line_count() const { return static_cast<int>(lines_.size()); }
  // First character position displayed.
  int64_t top_pos() const { return top_pos_; }

  // The process-wide kill buffer / clipboard (text only).
  static std::string& KillBuffer();

  // The default keymap shared by all text views (emacs-flavoured).
  static const KeyMap& DefaultKeyMap();

  // Layout statistics for the benches.
  uint64_t layout_count() const { return layout_count_; }
  // Visual lines reused (not re-measured) across all layouts so far.
  uint64_t layout_lines_reused() const { return layout_lines_reused_; }

  // Damage-aware layout cache: an edit at position p re-measures only lines
  // from one line above p; lines wholly before it are reused verbatim
  // (counted as text.layout.cache_hit).  On by default; the differential
  // repaint test runs both ways.  Process-wide, like the kill buffer.
  static void SetLayoutCacheEnabled(bool enabled);
  static bool layout_cache_enabled();

 protected:
  // One styled run (or one embedded child) on a visual line.
  struct Segment {
    int64_t start = 0;
    int64_t end = 0;  // Exclusive; start==end for child segments.
    int x = 0;
    int width = 0;
    const Style* style = nullptr;
    View* child = nullptr;  // Non-null for embedded-object segments.
  };
  struct LineBox {
    int64_t start = 0;
    int64_t end = 0;  // Exclusive of the '\n'.
    int y = 0;
    int height = 0;
    int baseline = 0;  // y offset of the text baseline within the line.
    std::vector<Segment> segments;
  };

  // Re-layouts from top_pos_ into lines_.  `width_limit`/-1 = allocation.
  void LayoutLines();
  void EnsureLayout();
  void MarkDirty();
  // Partial invalidation: layout before document position `pos` stays valid.
  void MarkDirtyFrom(int64_t pos);

  const std::vector<LineBox>& lines() const { return lines_; }

  // Margins around the text (PagedTextView widens these into page insets).
  int margin_x_ = 4;
  int margin_y_ = 2;
  // Whether FullUpdate clears the background first (PagedTextView paints its
  // own page chrome and turns this off).
  bool draw_background_ = true;

 private:
  View* ChildViewFor(const TextData::EmbeddedObject& embedded);
  void PruneStaleChildren();
  void ScrollCaretIntoView();
  void DrawCaret();
  void DrawSelection();

  int64_t dot_pos_ = 0;
  int64_t dot_len_ = 0;
  int64_t top_pos_ = 0;
  int64_t sel_anchor_ = 0;  // Mouse-drag selection anchor.
  std::vector<LineBox> lines_;
  // Child views keyed by anchor identity (two anchors on one shared data
  // object are two independent embedded views, per §2).
  std::map<uint64_t, std::unique_ptr<View>> child_views_;
  bool needs_layout_ = true;
  uint64_t layout_count_ = 0;
  uint64_t layout_lines_reused_ = 0;

  // Layout-cache bookkeeping: the first document position whose layout may
  // be stale (INT64_MAX = everything laid out is valid), and the geometry
  // the cached lines were laid out against.  A geometry or scroll change
  // invalidates everything; an edit invalidates from one line above it
  // (word wrap can pull characters back across at most one line boundary).
  int64_t dirty_from_pos_ = 0;
  bool layout_all_dirty_ = true;
  int laid_width_ = -1;
  int laid_height_ = -1;
  int64_t laid_top_pos_ = -1;

  // DesiredSize measurement memo, keyed on the data object's modification
  // clock and the offered size.
  const TextData* measured_data_ = nullptr;
  uint64_t measured_mod_time_ = 0;
  Size measured_available_;
  Size measured_result_;
  bool measured_valid_ = false;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_TEXT_TEXT_VIEW_H_
