#include "src/components/text/style.h"

#include <sstream>

namespace atk {
namespace {

const char* JustifyName(Justification j) {
  switch (j) {
    case Justification::kLeft:
      return "left";
    case Justification::kCenter:
      return "center";
    case Justification::kRight:
      return "right";
  }
  return "left";
}

Justification JustifyFromName(std::string_view name) {
  if (name == "center") {
    return Justification::kCenter;
  }
  if (name == "right") {
    return Justification::kRight;
  }
  return Justification::kLeft;
}

bool IsStandardStyleName(std::string_view name) {
  return name == "default" || name == "bold" || name == "italic" || name == "bolditalic" ||
         name == "heading" || name == "subheading" || name == "typewriter" ||
         name == "center" || name == "quotation";
}

}  // namespace

std::string Style::Serialize() const {
  std::ostringstream out;
  out << "font=" << font.ToString() << ";indent=" << indent_left << ";above=" << space_above
      << ";justify=" << JustifyName(justify);
  return out.str();
}

Style Style::Deserialize(std::string_view name, std::string_view serialized) {
  Style style;
  style.name = std::string(name);
  size_t pos = 0;
  while (pos < serialized.size()) {
    size_t semi = serialized.find(';', pos);
    std::string_view field = serialized.substr(
        pos, semi == std::string_view::npos ? std::string_view::npos : semi - pos);
    size_t eq = field.find('=');
    if (eq != std::string_view::npos) {
      std::string_view key = field.substr(0, eq);
      std::string_view value = field.substr(eq + 1);
      if (key == "font") {
        style.font = FontSpec::Parse(value);
      } else if (key == "indent") {
        style.indent_left = std::atoi(std::string(value).c_str());
      } else if (key == "above") {
        style.space_above = std::atoi(std::string(value).c_str());
      } else if (key == "justify") {
        style.justify = JustifyFromName(value);
      }
    }
    if (semi == std::string_view::npos) {
      break;
    }
    pos = semi + 1;
  }
  return style;
}

StyleSheet StyleSheet::WithStandardStyles() {
  StyleSheet sheet;
  Style def;
  sheet.Define(def);

  Style bold = def;
  bold.name = "bold";
  bold.font.style = kBold;
  sheet.Define(bold);

  Style italic = def;
  italic.name = "italic";
  italic.font.style = kItalic;
  sheet.Define(italic);

  Style bolditalic = def;
  bolditalic.name = "bolditalic";
  bolditalic.font.style = kBold | kItalic;
  sheet.Define(bolditalic);

  Style heading = def;
  heading.name = "heading";
  heading.font.size = 20;
  heading.font.style = kBold;
  heading.space_above = 6;
  sheet.Define(heading);

  Style subheading = def;
  subheading.name = "subheading";
  subheading.font.size = 14;
  subheading.font.style = kBold;
  subheading.space_above = 4;
  sheet.Define(subheading);

  Style typewriter = def;
  typewriter.name = "typewriter";
  typewriter.font.family = "andytype";
  sheet.Define(typewriter);

  Style center = def;
  center.name = "center";
  center.justify = Justification::kCenter;
  sheet.Define(center);

  Style quotation = def;
  quotation.name = "quotation";
  quotation.font.style = kItalic;
  quotation.indent_left = 16;
  sheet.Define(quotation);
  return sheet;
}

void StyleSheet::Define(const Style& style) {
  styles_[style.name] = style;
  if (style.name == "default") {
    default_style_ = style;
  }
}

const Style& StyleSheet::Get(std::string_view name) const {
  auto it = styles_.find(name);
  return it == styles_.end() ? default_style_ : it->second;
}

bool StyleSheet::Contains(std::string_view name) const {
  return styles_.find(name) != styles_.end();
}

std::vector<const Style*> StyleSheet::CustomStyles() const {
  static const StyleSheet* standard = new StyleSheet(WithStandardStyles());
  std::vector<const Style*> custom;
  for (const auto& [name, style] : styles_) {
    if (!IsStandardStyleName(name) || !(style == standard->Get(name))) {
      custom.push_back(&style);
    }
  }
  return custom;
}

std::vector<std::string> StyleSheet::Names() const {
  std::vector<std::string> names;
  names.reserve(styles_.size());
  for (const auto& [name, style] : styles_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace atk
