#include "src/components/text/text_data.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "src/base/default_views.h"

namespace atk {

ATK_DEFINE_CLASS(TextData, DataObject, "text")

TextData::TextData() : styles_(StyleSheet::WithStandardStyles()) {}

TextData::~TextData() = default;

// memchr jumps newline to newline instead of testing every byte; on bulk
// ingestion this is the difference between the count being free and being
// a third of the read path.
static int64_t CountNewlines(std::string_view text) {
  int64_t count = 0;
  size_t from = 0;
  while (from < text.size()) {
    const void* hit = std::memchr(text.data() + from, '\n', text.size() - from);
    if (hit == nullptr) {
      break;
    }
    ++count;
    from = static_cast<size_t>(static_cast<const char*>(hit) - text.data()) + 1;
  }
  return count;
}

void TextData::InsertString(int64_t pos, std::string_view text) {
  if (pos < 0 || pos > size() || text.empty()) {
    return;
  }
  buffer_.Insert(pos, text);
  newline_count_ += CountNewlines(text);
  AdjustForInsert(pos, static_cast<int64_t>(text.size()));
  Change change;
  change.kind = Change::Kind::kInserted;
  change.pos = pos;
  change.added = static_cast<int64_t>(text.size());
  NotifyObservers(change);
}

void TextData::DeleteRange(int64_t pos, int64_t len) {
  if (pos < 0 || len <= 0 || pos >= size()) {
    return;
  }
  len = std::min(len, size() - pos);
  newline_count_ -= CountNewlines(buffer_.Substr(pos, len));
  buffer_.Delete(pos, len);
  AdjustForDelete(pos, len);
  Change change;
  change.kind = Change::Kind::kDeleted;
  change.pos = pos;
  change.removed = len;
  NotifyObservers(change);
}

void TextData::Clear() { DeleteRange(0, size()); }

void TextData::SetText(std::string_view text) {
  if (size() > 0) {
    newline_count_ = 0;
    buffer_.Delete(0, size());
    embedded_.clear();
    runs_.clear();
  }
  buffer_.Insert(0, text);
  newline_count_ = CountNewlines(text);
  Change change;
  change.kind = Change::Kind::kModified;
  NotifyObservers(change);
}

DataObject* TextData::InsertObject(int64_t pos, std::unique_ptr<DataObject> data,
                                   std::string_view view_type) {
  return InsertSharedObject(pos, std::shared_ptr<DataObject>(std::move(data)), view_type);
}

DataObject* TextData::InsertSharedObject(int64_t pos, std::shared_ptr<DataObject> data,
                                         std::string_view view_type) {
  if (data == nullptr || pos < 0 || pos > size()) {
    return nullptr;
  }
  DataObject* raw = data.get();
  std::string view =
      view_type.empty() ? DefaultViewName(data->DataTypeName()) : std::string(view_type);
  buffer_.Insert(pos, std::string_view(&kObjectChar, 1));
  AdjustForInsert(pos, 1);
  EmbeddedObject embedded;
  embedded.pos = pos;
  embedded.data = std::move(data);
  embedded.view_type = std::move(view);
  embedded.anchor_id = next_anchor_id_++;
  auto it = std::lower_bound(embedded_.begin(), embedded_.end(), pos,
                             [](const EmbeddedObject& e, int64_t p) { return e.pos < p; });
  embedded_.insert(it, std::move(embedded));
  Change change;
  change.kind = Change::Kind::kInserted;
  change.pos = pos;
  change.added = 1;
  NotifyObservers(change);
  return raw;
}

const TextData::EmbeddedObject* TextData::EmbeddedAt(int64_t pos) const {
  auto it = std::lower_bound(embedded_.begin(), embedded_.end(), pos,
                             [](const EmbeddedObject& e, int64_t p) { return e.pos < p; });
  if (it != embedded_.end() && it->pos == pos) {
    return &*it;
  }
  return nullptr;
}

void TextData::AdjustForInsert(int64_t pos, int64_t len) {
  for (EmbeddedObject& e : embedded_) {
    if (e.pos >= pos) {
      e.pos += len;
    }
  }
  for (StyleRun& run : runs_) {
    if (pos <= run.pos) {
      run.pos += len;
    } else if (pos < run.pos + run.len) {
      run.len += len;  // Typing inside a styled run keeps the style.
    }
  }
}

void TextData::AdjustForDelete(int64_t pos, int64_t len) {
  int64_t end = pos + len;
  embedded_.erase(std::remove_if(embedded_.begin(), embedded_.end(),
                                 [&](const EmbeddedObject& e) {
                                   return e.pos >= pos && e.pos < end;
                                 }),
                  embedded_.end());
  for (EmbeddedObject& e : embedded_) {
    if (e.pos >= end) {
      e.pos -= len;
    }
  }
  for (StyleRun& run : runs_) {
    int64_t run_end = run.pos + run.len;
    int64_t new_start = run.pos >= end ? run.pos - len : std::min(run.pos, pos);
    int64_t new_end = run_end >= end ? run_end - len : std::min(run_end, pos);
    run.pos = new_start;
    run.len = std::max<int64_t>(0, new_end - new_start);
  }
  NormalizeRuns();
}

void TextData::NormalizeRuns() {
  runs_.erase(std::remove_if(runs_.begin(), runs_.end(),
                             [](const StyleRun& r) { return r.len <= 0; }),
              runs_.end());
  std::sort(runs_.begin(), runs_.end(),
            [](const StyleRun& a, const StyleRun& b) { return a.pos < b.pos; });
  // Merge adjacent runs of the same style.
  std::vector<StyleRun> merged;
  for (StyleRun& run : runs_) {
    if (!merged.empty() && merged.back().style == run.style &&
        merged.back().pos + merged.back().len == run.pos) {
      merged.back().len += run.len;
    } else {
      merged.push_back(std::move(run));
    }
  }
  runs_ = std::move(merged);
}

void TextData::ApplyStyle(int64_t pos, int64_t len, std::string_view style_name) {
  if (pos < 0 || len <= 0 || pos >= size()) {
    return;
  }
  len = std::min(len, size() - pos);
  {
    // Carve the range out of existing runs.
    int64_t end = pos + len;
    std::vector<StyleRun> next;
    for (const StyleRun& run : runs_) {
      int64_t run_end = run.pos + run.len;
      if (run_end <= pos || run.pos >= end) {
        next.push_back(run);
        continue;
      }
      if (run.pos < pos) {
        next.push_back(StyleRun{run.pos, pos - run.pos, run.style});
      }
      if (run_end > end) {
        next.push_back(StyleRun{end, run_end - end, run.style});
      }
    }
    runs_ = std::move(next);
  }
  if (style_name != "default") {
    runs_.push_back(StyleRun{pos, len, std::string(style_name)});
  }
  NormalizeRuns();
  Change change;
  change.kind = Change::Kind::kAttributes;
  change.pos = pos;
  change.removed = len;
  NotifyObservers(change);
}

void TextData::ClearStyles(int64_t pos, int64_t len) { ApplyStyle(pos, len, "default"); }

const std::string& TextData::StyleNameAt(int64_t pos) const {
  for (const StyleRun& run : runs_) {
    if (pos >= run.pos && pos < run.pos + run.len) {
      return run.style;
    }
  }
  return default_style_name_;
}

const Style& TextData::StyleAt(int64_t pos) const { return styles_.Get(StyleNameAt(pos)); }

int64_t TextData::LineStart(int64_t pos) const {
  pos = std::clamp<int64_t>(pos, 0, size());
  int64_t nl = buffer_.RFind('\n', pos);
  return nl < 0 ? 0 : nl + 1;
}

int64_t TextData::LineEnd(int64_t pos) const {
  pos = std::clamp<int64_t>(pos, 0, size());
  int64_t nl = buffer_.Find('\n', pos);
  return nl < 0 ? size() : nl;
}

int64_t TextData::PosOfLine(int64_t index) const {
  if (index <= 0) {
    return 0;
  }
  int64_t pos = 0;
  for (int64_t line = 0; line < index; ++line) {
    int64_t nl = buffer_.Find('\n', pos);
    if (nl < 0) {
      return size();
    }
    pos = nl + 1;
  }
  return pos;
}

int64_t TextData::LineOfPos(int64_t pos) const {
  pos = std::clamp<int64_t>(pos, 0, size());
  int64_t line = 0;
  for (int64_t i = 0; i < pos; ++i) {
    if (buffer_.At(i) == '\n') {
      ++line;
    }
  }
  return line;
}

void TextData::WriteBody(DataStreamWriter& writer) const {
  // Custom style definitions first, then runs, then content.
  for (const Style* style : styles_.CustomStyles()) {
    writer.WriteDirective("definestyle", style->name + "," + style->Serialize());
    writer.WriteNewline();
  }
  for (const StyleRun& run : runs_) {
    writer.WriteDirective("textstyle", run.style + "," + std::to_string(run.pos) + "," +
                                           std::to_string(run.len));
    writer.WriteNewline();
  }
  // Content: text with anchors expanded to child blocks + \view references.
  // An object shared by several anchors is written once; later anchors emit
  // only the \view reference to its id.
  int64_t pos = 0;
  for (const EmbeddedObject& embedded : embedded_) {
    writer.WriteText(buffer_.Substr(pos, embedded.pos - pos));
    int64_t child_id = writer.FindObjectId(embedded.data.get());
    if (child_id == 0) {
      child_id = embedded.data->Write(writer);
    }
    writer.WriteViewReference(embedded.view_type, child_id);
    pos = embedded.pos + 1;  // Skip the anchor character.
  }
  writer.WriteText(buffer_.Substr(pos, size() - pos));
}

// Digits-only parse for directive fields (the writer emits no sign or
// padding); stops at the first non-digit like atoll would.
static int64_t ParseDirectiveInt(std::string_view field) {
  int64_t value = 0;
  for (char ch : field) {
    if (ch < '0' || ch > '9') {
      break;
    }
    value = value * 10 + (ch - '0');
  }
  return value;
}

bool TextData::ReadBody(DataStreamReader& reader, ReadContext& context) {
  using Kind = DataStreamReader::Token::Kind;
  buffer_.Delete(0, size());
  embedded_.clear();
  runs_.clear();
  newline_count_ = 0;
  // Bulk ingestion: the body is at most the rest of the reader's input, so
  // one reservation up front makes the kText inserts gap-growth-free.
  buffer_.Reserve(reader.input_size() - reader.position());
  std::vector<StyleRun> pending_runs;
  // Children arrive before the \view reference(s) that place them; a child
  // may be referenced by several anchors (shared data object, §2).
  std::map<int64_t, std::shared_ptr<DataObject>> pending_children;
  // Our writer puts a cosmetic newline after each style directive; strip it.
  bool strip_newline = false;
  while (true) {
    DataStreamReader::Token token = reader.Next();
    if (strip_newline) {
      strip_newline = false;
      if (token.kind == Kind::kText && !token.text.empty() && token.text[0] == '\n') {
        token.text.remove_prefix(1);
        if (token.text.empty()) {
          continue;
        }
      }
    }
    switch (token.kind) {
      case Kind::kEndData: {
        runs_ = std::move(pending_runs);
        NormalizeRuns();
        // Any children never claimed by a \view reference are dropped.
        Change change;
        change.kind = Change::Kind::kModified;
        NotifyObservers(change);
        return true;
      }
      case Kind::kEof:
        runs_ = std::move(pending_runs);
        NormalizeRuns();
        return false;
      case Kind::kText: {
        buffer_.Insert(size(), token.text);
        newline_count_ += CountNewlines(token.text);
        break;
      }
      case Kind::kBeginData: {
        std::unique_ptr<DataObject> child =
            ReadObjectBody(reader, context, std::string(token.type), token.id);
        if (child != nullptr) {
          pending_children[token.id] = std::shared_ptr<DataObject>(std::move(child));
        }
        break;
      }
      case Kind::kViewRef: {
        auto it = pending_children.find(token.id);
        if (it == pending_children.end()) {
          context.AddError("\\view reference to unknown id " + std::to_string(token.id));
          break;
        }
        EmbeddedObject embedded;
        embedded.pos = size();
        embedded.data = it->second;  // Shared: later refs reuse the object.
        embedded.view_type = token.type;
        embedded.anchor_id = next_anchor_id_++;
        buffer_.Insert(size(), std::string_view(&kObjectChar, 1));
        embedded_.push_back(std::move(embedded));
        break;
      }
      case Kind::kDirective: {
        if (token.type == "textstyle") {
          // name,pos,len
          size_t c1 = token.text.find(',');
          size_t c2 = token.text.find(',', c1 + 1);
          if (c1 != std::string_view::npos && c2 != std::string_view::npos) {
            StyleRun run;
            run.style = token.text.substr(0, c1);
            run.pos = ParseDirectiveInt(token.text.substr(c1 + 1, c2 - c1 - 1));
            run.len = ParseDirectiveInt(token.text.substr(c2 + 1));
            pending_runs.push_back(std::move(run));
          }
        } else if (token.type == "definestyle") {
          size_t c1 = token.text.find(',');
          if (c1 != std::string_view::npos) {
            styles_.Define(Style::Deserialize(token.text.substr(0, c1),
                                              token.text.substr(c1 + 1)));
          }
        }
        if (token.type == "textstyle" || token.type == "definestyle") {
          strip_newline = true;
        }
        // Unknown directives are tolerated (forward compatibility).
        break;
      }
      case Kind::kDiagnostic: {
        // Damaged directive inside the body: report it, drop the bytes from
        // the content (the salvager preserves them; the editor must not show
        // marker debris as prose).
        context.AddDiagnostic(
            Diagnostic{StatusCode::kCorrupt, token.offset,
                       "damaged directive in text body: " + std::string(token.text)});
        break;
      }
    }
  }
}

}  // namespace atk
