// TextData — the multi-media text data object (§2).
//
// Holds "the actual characters, style information and pointers to embedded
// data objects".  An embedded object occupies one anchor character
// (kObjectChar) in the text; a side table maps anchor positions to the owned
// child data object and the view class that should display it.  Style runs
// are (pos, len, style-name) intervals resolved against the document's
// StyleSheet.
//
// External representation: the body is the escaped text, with each anchor
// replaced by the child's \begindata...\enddata block followed by
// \view{viewtype,id}; style runs and custom style definitions are emitted as
// \textstyle / \definestyle directives ahead of the content.

#ifndef ATK_SRC_COMPONENTS_TEXT_TEXT_DATA_H_
#define ATK_SRC_COMPONENTS_TEXT_TEXT_DATA_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/data_object.h"
#include "src/components/text/gap_buffer.h"
#include "src/components/text/style.h"

namespace atk {

class TextData : public DataObject {
  ATK_DECLARE_CLASS(TextData)

 public:
  // The anchor character standing in for an embedded object.
  static constexpr char kObjectChar = '\001';

  struct EmbeddedObject {
    int64_t pos = 0;
    // Shared: §2 allows "two embedded views on the same data object within
    // the same window", i.e. several anchors referencing one data object.
    std::shared_ptr<DataObject> data;
    std::string view_type;
    // Stable identity for this anchor (view caching keys on it; two anchors
    // on one data object are two distinct embedded views).
    uint64_t anchor_id = 0;
  };

  struct StyleRun {
    int64_t pos = 0;
    int64_t len = 0;
    std::string style;
  };

  TextData();
  ~TextData() override;

  // ---- Content access ----
  int64_t size() const { return buffer_.size(); }
  char CharAt(int64_t pos) const { return pos >= 0 && pos < size() ? buffer_.At(pos) : '\0'; }
  std::string GetText(int64_t pos, int64_t len) const { return buffer_.Substr(pos, len); }
  std::string GetAllText() const { return buffer_.All(); }

  // ---- Editing (each call notifies observers once) ----
  void InsertString(int64_t pos, std::string_view text);
  void DeleteRange(int64_t pos, int64_t len);
  void Clear();
  // Replaces the whole content (initialization convenience).
  void SetText(std::string_view text);

  // ---- Embedded objects ----
  // Inserts an anchor at `pos` taking ownership of `data`; `view_type` empty
  // means the data type's registered default view.  Returns the child.
  DataObject* InsertObject(int64_t pos, std::unique_ptr<DataObject> data,
                           std::string_view view_type = "");
  // Shared-ownership variant: several anchors (possibly with different view
  // classes) may display one data object (§2's table + pie chart example).
  DataObject* InsertSharedObject(int64_t pos, std::shared_ptr<DataObject> data,
                                 std::string_view view_type = "");
  // The embedded object whose anchor is at `pos`, or nullptr.
  const EmbeddedObject* EmbeddedAt(int64_t pos) const;
  const std::vector<EmbeddedObject>& embedded_objects() const { return embedded_; }
  size_t embedded_count() const { return embedded_.size(); }

  // ---- Styles ----
  StyleSheet& styles() { return styles_; }
  const StyleSheet& styles() const { return styles_; }
  // Applies `style_name` to [pos, pos+len), splitting/merging runs.
  void ApplyStyle(int64_t pos, int64_t len, std::string_view style_name);
  // Removes all styling from the range (reverts to "default").
  void ClearStyles(int64_t pos, int64_t len);
  // The style governing the character at `pos`.
  const Style& StyleAt(int64_t pos) const;
  const std::string& StyleNameAt(int64_t pos) const;
  const std::vector<StyleRun>& style_runs() const { return runs_; }

  // ---- Line helpers (used by views and the typescript component) ----
  int64_t LineStart(int64_t pos) const;
  int64_t LineEnd(int64_t pos) const;  // Position of the '\n' or size().
  // Total number of lines (empty document has 1).
  int64_t LineCount() const { return newline_count_ + 1; }
  // Start position of 0-based line `index` (clamped).
  int64_t PosOfLine(int64_t index) const;
  // 0-based line index containing `pos`.
  int64_t LineOfPos(int64_t pos) const;

  // ---- Datastream ----
  void WriteBody(DataStreamWriter& writer) const override;
  bool ReadBody(DataStreamReader& reader, ReadContext& context) override;

 private:
  void AdjustForInsert(int64_t pos, int64_t len);
  void AdjustForDelete(int64_t pos, int64_t len);
  void NormalizeRuns();

  GapBuffer buffer_;
  std::vector<EmbeddedObject> embedded_;  // Sorted by pos.
  uint64_t next_anchor_id_ = 1;
  std::vector<StyleRun> runs_;            // Sorted by pos, non-overlapping.
  StyleSheet styles_;
  int64_t newline_count_ = 0;
  std::string default_style_name_ = "default";
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_TEXT_TEXT_DATA_H_
