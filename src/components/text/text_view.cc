#include "src/components/text/text_view.h"

#include <algorithm>
#include <limits>

#include "src/class_system/loader.h"
#include "src/components/frame/unknown_view.h"
#include "src/observability/observability.h"

namespace atk {

namespace {
bool g_layout_cache_enabled = true;
}  // namespace

void TextView::SetLayoutCacheEnabled(bool enabled) { g_layout_cache_enabled = enabled; }

bool TextView::layout_cache_enabled() { return g_layout_cache_enabled; }

ATK_DEFINE_CLASS(TextView, View, "textview")

TextView::TextView() { SetPreferredCursor(CursorShape::kIBeam); }

TextView::~TextView() = default;

TextData* TextView::text() const { return ObjectCast<TextData>(data_object()); }

void TextView::SetText(TextData* data) {
  SetDataObject(data);
  dot_pos_ = 0;
  dot_len_ = 0;
  top_pos_ = 0;
  MarkDirty();
}

std::string& TextView::KillBuffer() {
  static std::string* buffer = new std::string();
  return *buffer;
}

void TextView::MarkDirty() {
  needs_layout_ = true;
  layout_all_dirty_ = true;
  PostUpdate();
}

void TextView::MarkDirtyFrom(int64_t pos) {
  needs_layout_ = true;
  if (!layout_all_dirty_) {
    dirty_from_pos_ = std::min(dirty_from_pos_, pos);
  }
  PostUpdate();
}

void TextView::ObservedChanged(Observable* changed, const Change& change) {
  if (change.kind == Change::Kind::kDestroyed) {
    View::ObservedChanged(changed, change);
    return;
  }
  // Delayed update: note that layout is stale and schedule one repaint; the
  // actual work happens in the next update cycle.
  int64_t limit = text() != nullptr ? text()->size() : 0;
  if (change.kind == Change::Kind::kDeleted && dot_pos_ > change.pos) {
    dot_pos_ = std::max(change.pos, dot_pos_ - change.removed);
  }
  dot_pos_ = std::clamp<int64_t>(dot_pos_, 0, limit);
  dot_len_ = std::clamp<int64_t>(dot_len_, 0, limit - dot_pos_);
  // Positional changes invalidate layout only from the change onward; an
  // unspecified kModified invalidates everything.
  switch (change.kind) {
    case Change::Kind::kInserted:
    case Change::Kind::kDeleted:
    case Change::Kind::kReplaced:
    case Change::Kind::kAttributes:
      MarkDirtyFrom(change.pos);
      break;
    default:
      MarkDirty();
      break;
  }
}

// ---- Caret & selection ---------------------------------------------------

void TextView::SetDot(int64_t pos, int64_t len) {
  int64_t limit = text() != nullptr ? text()->size() : 0;
  dot_pos_ = std::clamp<int64_t>(pos, 0, limit);
  dot_len_ = std::clamp<int64_t>(len, 0, limit - dot_pos_);
  PostUpdate();
}

std::string TextView::SelectedText() const {
  return text() != nullptr ? text()->GetText(dot_pos_, dot_len_) : "";
}

// ---- Editing --------------------------------------------------------------

void TextView::SelfInsert(char ch) { InsertText(std::string_view(&ch, 1)); }

void TextView::InsertText(std::string_view s) {
  TextData* data = text();
  if (data == nullptr) {
    return;
  }
  if (HasSelection()) {
    data->DeleteRange(dot_pos_, dot_len_);
    dot_len_ = 0;
  }
  data->InsertString(dot_pos_, s);
  dot_pos_ += static_cast<int64_t>(s.size());
  ScrollCaretIntoView();
}

void TextView::DeleteBackward() {
  TextData* data = text();
  if (data == nullptr) {
    return;
  }
  if (HasSelection()) {
    data->DeleteRange(dot_pos_, dot_len_);
    dot_len_ = 0;
    return;
  }
  if (dot_pos_ > 0) {
    data->DeleteRange(dot_pos_ - 1, 1);
  }
}

void TextView::DeleteForward() {
  TextData* data = text();
  if (data == nullptr) {
    return;
  }
  if (HasSelection()) {
    data->DeleteRange(dot_pos_, dot_len_);
    dot_len_ = 0;
    return;
  }
  if (dot_pos_ < data->size()) {
    data->DeleteRange(dot_pos_, 1);
  }
}

void TextView::MoveForward() { SetDot(dot_pos_ + std::max<int64_t>(dot_len_, 1)); }

void TextView::MoveBackward() { SetDot(dot_pos_ - 1); }

void TextView::MoveLineStart() {
  if (text() != nullptr) {
    SetDot(text()->LineStart(dot_pos_));
  }
}

void TextView::MoveLineEnd() {
  if (text() != nullptr) {
    SetDot(text()->LineEnd(dot_pos_));
  }
}

void TextView::MoveUp() {
  TextData* data = text();
  if (data == nullptr) {
    return;
  }
  int64_t col = dot_pos_ - data->LineStart(dot_pos_);
  int64_t line = data->LineOfPos(dot_pos_);
  if (line == 0) {
    return;
  }
  int64_t prev_start = data->PosOfLine(line - 1);
  int64_t prev_end = data->LineEnd(prev_start);
  SetDot(std::min(prev_start + col, prev_end));
  ScrollCaretIntoView();
}

void TextView::MoveDown() {
  TextData* data = text();
  if (data == nullptr) {
    return;
  }
  int64_t col = dot_pos_ - data->LineStart(dot_pos_);
  int64_t line = data->LineOfPos(dot_pos_);
  if (line + 1 >= data->LineCount()) {
    return;
  }
  int64_t next_start = data->PosOfLine(line + 1);
  int64_t next_end = data->LineEnd(next_start);
  SetDot(std::min(next_start + col, next_end));
  ScrollCaretIntoView();
}

void TextView::KillLine() {
  TextData* data = text();
  if (data == nullptr) {
    return;
  }
  int64_t end = data->LineEnd(dot_pos_);
  if (end == dot_pos_ && end < data->size()) {
    end = dot_pos_ + 1;  // At line end: kill the newline itself.
  }
  if (end > dot_pos_) {
    KillBuffer() = data->GetText(dot_pos_, end - dot_pos_);
    data->DeleteRange(dot_pos_, end - dot_pos_);
  }
}

void TextView::Yank() { InsertText(KillBuffer()); }

void TextView::CopyRegion() {
  if (HasSelection()) {
    KillBuffer() = SelectedText();
  }
}

void TextView::CutRegion() {
  if (HasSelection()) {
    KillBuffer() = SelectedText();
    text()->DeleteRange(dot_pos_, dot_len_);
    dot_len_ = 0;
  }
}

void TextView::Paste() { InsertText(KillBuffer()); }

void TextView::StyleSelection(const std::string& style_name) {
  if (text() != nullptr && HasSelection()) {
    text()->ApplyStyle(dot_pos_, dot_len_, style_name);
  }
}

DataObject* TextView::InsertObjectAtDot(std::unique_ptr<DataObject> data,
                                        std::string_view view_type) {
  TextData* t = text();
  if (t == nullptr) {
    return nullptr;
  }
  DataObject* child = t->InsertObject(dot_pos_, std::move(data), view_type);
  if (child != nullptr) {
    ++dot_pos_;
  }
  return child;
}

// ---- Scrolling ---------------------------------------------------------------

ScrollInfo TextView::GetScrollInfo() const {
  ScrollInfo info;
  TextData* data = text();
  if (data == nullptr) {
    return info;
  }
  info.total = data->LineCount();
  info.first_visible = data->LineOfPos(top_pos_);
  // Count distinct document lines currently laid out.
  int64_t last = top_pos_;
  for (const LineBox& line : lines_) {
    last = std::max(last, line.end);
  }
  info.visible = std::max<int64_t>(1, data->LineOfPos(last) - info.first_visible + 1);
  return info;
}

void TextView::ScrollToUnit(int64_t unit) {
  TextData* data = text();
  if (data == nullptr) {
    return;
  }
  unit = std::clamp<int64_t>(unit, 0, data->LineCount() - 1);
  int64_t pos = data->PosOfLine(unit);
  if (pos != top_pos_) {
    top_pos_ = pos;
    MarkDirty();
  }
}

void TextView::ScrollCaretIntoView() {
  TextData* data = text();
  if (data == nullptr || graphic() == nullptr) {
    return;
  }
  EnsureLayout();
  if (lines_.empty()) {
    return;
  }
  if (dot_pos_ < lines_.front().start) {
    top_pos_ = data->LineStart(dot_pos_);
    MarkDirty();
    return;
  }
  const LineBox& last = lines_.back();
  bool below = dot_pos_ > last.end ||
               (dot_pos_ == last.end && last.y + 2 * last.height > graphic()->height());
  if (below) {
    // Scroll down so the caret's document line is the last visible: move the
    // top forward one document line at a time (robust, documents are small).
    int64_t caret_line = data->LineOfPos(dot_pos_);
    int64_t top_line = data->LineOfPos(top_pos_);
    int visible = std::max(1, visible_line_count());
    int64_t want_top = std::max<int64_t>(top_line + 1, caret_line - visible + 2);
    ScrollToUnit(want_top);
  }
}

// ---- Layout --------------------------------------------------------------------

void TextView::Layout() { MarkDirty(); }

Size TextView::DesiredSize(Size available) {
  TextData* data = text();
  if (data == nullptr) {
    return Size{60, 20};
  }
  // Measurement memo: re-walking the whole document is linear in its size,
  // so skip it when neither the document nor the offered space has changed.
  if (measured_valid_ && measured_data_ == data &&
      measured_mod_time_ == data->modification_time() && measured_available_ == available) {
    return measured_result_;
  }
  // Measure without wrapping: width of the longest line, total line heights.
  int max_width = 0;
  int total_height = 0;
  int64_t pos = 0;
  while (pos <= data->size()) {
    int64_t end = data->LineEnd(pos);
    int line_width = 0;
    int line_height = Font::Get(data->StyleAt(pos).font).height();
    for (int64_t i = pos; i < end; ++i) {
      const Style& style = data->StyleAt(i);
      const Font& font = Font::Get(style.font);
      if (data->CharAt(i) == TextData::kObjectChar) {
        // Embedded objects in measured text: use a nominal box.
        line_width += 40;
        line_height = std::max(line_height, 24);
      } else {
        line_width += font.advance();
        line_height = std::max(line_height, font.height());
      }
    }
    max_width = std::max(max_width, line_width);
    total_height += line_height;
    if (end >= data->size()) {
      break;
    }
    pos = end + 1;
  }
  Size desired{max_width + 2 * margin_x_, total_height + 2 * margin_y_};
  if (available.width > 0) {
    desired.width = std::min(desired.width, available.width);
  }
  if (available.height > 0) {
    desired.height = std::min(desired.height, available.height);
  }
  measured_data_ = data;
  measured_mod_time_ = data->modification_time();
  measured_available_ = available;
  measured_result_ = desired;
  measured_valid_ = true;
  return desired;
}

View* TextView::ChildViewFor(const TextData::EmbeddedObject& embedded) {
  auto it = child_views_.find(embedded.anchor_id);
  if (it != child_views_.end()) {
    return it->second.get();
  }
  // Dynamic loading happens here: the embedded object's view class may live
  // in a module that has never been loaded (§1's music example).
  std::unique_ptr<View> view =
      ObjectCast<View>(Loader::Instance().NewObject(embedded.view_type));
  if (view == nullptr) {
    // Graceful degradation: the view class is unavailable (load failure or
    // genuinely unknown type, e.g. a salvage quarantine).  A placeholder
    // names the missing class; the data object is preserved untouched.
    auto placeholder = std::make_unique<UnknownView>();
    if (embedded.view_type != "unknownview") {
      placeholder->SetMissingType(embedded.view_type);
    }
    view = std::move(placeholder);
  }
  view->SetDataObject(embedded.data.get());
  View* raw = view.get();
  AddChild(raw);
  child_views_[embedded.anchor_id] = std::move(view);
  return raw;
}

void TextView::PruneStaleChildren() {
  TextData* data = text();
  for (auto it = child_views_.begin(); it != child_views_.end();) {
    bool alive = false;
    if (data != nullptr) {
      for (const auto& embedded : data->embedded_objects()) {
        if (embedded.anchor_id == it->first) {
          alive = true;
          break;
        }
      }
    }
    if (!alive) {
      RemoveChild(it->second.get());
      it = child_views_.erase(it);
    } else {
      ++it;
    }
  }
}

void TextView::EnsureLayout() {
  if (needs_layout_ && graphic() != nullptr) {
    LayoutLines();
  }
}

void TextView::LayoutLines() {
  needs_layout_ = false;
  ++layout_count_;
  TextData* data = text();
  if (data == nullptr || graphic() == nullptr) {
    lines_.clear();
    layout_all_dirty_ = true;
    return;
  }
  PruneStaleChildren();
  const int view_width = graphic()->width();
  const int view_height = graphic()->height();
  const int usable_width = std::max(8, view_width - 2 * margin_x_);

  int y = margin_y_;
  int64_t pos = data->LineStart(std::min(top_pos_, data->size()));
  top_pos_ = pos;
  const int64_t doc_size = data->size();

  // Damage-aware prefix reuse: lines that end strictly before the first
  // dirty position, laid out against the same geometry and scroll origin,
  // are still valid.  Back off one extra line because word wrap can pull
  // characters backwards across a single line boundary.  Kept lines contain
  // only content before the edit, so their segment style/child pointers are
  // still live (styles live in a std::map; a deleted anchor lands at or
  // after the change position and is therefore never in a kept line).
  size_t keep = 0;
  if (layout_cache_enabled() && !layout_all_dirty_ && laid_width_ == view_width &&
      laid_height_ == view_height && laid_top_pos_ == pos && !lines_.empty()) {
    while (keep < lines_.size() && lines_[keep].end < dirty_from_pos_) {
      ++keep;
    }
    if (keep > 0) {
      --keep;
    }
  }
  if (keep > 0) {
    static observability::Counter& cache_hits =
        observability::MetricsRegistry::Instance().counter("text.layout.cache_hit");
    cache_hits.Add(keep);
    layout_lines_reused_ += keep;
    pos = lines_[keep].start;
    y = lines_[keep].y - data->StyleAt(pos).space_above;
    lines_.resize(keep);
  } else {
    lines_.clear();
  }

  while (y < view_height && pos <= doc_size) {
    LineBox line;
    line.start = pos;
    line.y = y;
    const Style& line_style = data->StyleAt(pos);
    int indent = line_style.indent_left;
    int x = indent;
    int max_ascent = Font::Get(line_style.font).ascent();
    int max_descent = Font::Get(line_style.font).descent();
    int64_t last_space_pos = -1;

    y += line_style.space_above;
    line.y = y;

    while (pos < doc_size) {
      char ch = data->CharAt(pos);
      if (ch == '\n') {
        break;
      }
      if (ch == TextData::kObjectChar) {
        const TextData::EmbeddedObject* embedded = data->EmbeddedAt(pos);
        View* child = embedded != nullptr ? ChildViewFor(*embedded) : nullptr;
        Size child_size{40, 24};
        if (child != nullptr) {
          child_size = child->DesiredSize(Size{usable_width - x, view_height});
        }
        if (x > indent && x + child_size.width > usable_width) {
          break;  // Wrap the object to the next line.
        }
        Segment seg;
        seg.start = pos;
        seg.end = pos + 1;
        seg.x = margin_x_ + x;
        seg.width = child_size.width;
        seg.child = child;
        line.segments.push_back(seg);
        x += child_size.width;
        max_ascent = std::max(max_ascent, child_size.height);
        ++pos;
        continue;
      }
      const Style& style = data->StyleAt(pos);
      const Font& font = Font::Get(style.font);
      int advance = font.advance();
      if (x + advance > usable_width && x > indent) {
        // Wrap: prefer the last space on this line, trimming the layout back
        // to just after it.
        if (last_space_pos >= 0 && last_space_pos > line.start) {
          pos = last_space_pos + 1;
          while (!line.segments.empty() && line.segments.back().start >= pos) {
            line.segments.pop_back();
          }
          if (!line.segments.empty() && line.segments.back().end > pos) {
            Segment& seg = line.segments.back();
            seg.end = pos;
            if (seg.child == nullptr && seg.style != nullptr) {
              seg.width =
                  static_cast<int>(seg.end - seg.start) * Font::Get(seg.style->font).advance();
            }
          }
        }
        break;
      }
      // Extend or start a text segment of this style.
      if (!line.segments.empty() && line.segments.back().child == nullptr &&
          line.segments.back().style == &style && line.segments.back().end == pos) {
        line.segments.back().end = pos + 1;
        line.segments.back().width += advance;
      } else {
        Segment seg;
        seg.start = pos;
        seg.end = pos + 1;
        seg.x = margin_x_ + x;
        seg.width = advance;
        seg.style = &style;
        line.segments.push_back(seg);
      }
      if (ch == ' ') {
        last_space_pos = pos;
      }
      max_ascent = std::max(max_ascent, font.ascent());
      max_descent = std::max(max_descent, font.descent());
      x += advance;
      ++pos;
    }

    line.end = pos;
    line.baseline = max_ascent;
    line.height = max_ascent + max_descent;

    // Justification: shift segments right for center/right styles.
    if (line_style.justify != Justification::kLeft && !line.segments.empty()) {
      int content_right = line.segments.back().x + line.segments.back().width;
      int slack = margin_x_ + usable_width - content_right;
      int shift = line_style.justify == Justification::kCenter ? slack / 2 : slack;
      if (shift > 0) {
        for (Segment& seg : line.segments) {
          seg.x += shift;
        }
      }
    }

    // Allocate child views now that the line geometry is final.
    for (Segment& seg : line.segments) {
      if (seg.child != nullptr) {
        Size child_size = seg.child->DesiredSize(Size{usable_width, view_height});
        int child_h = std::min(child_size.height, line.height);
        seg.child->Allocate(
            Rect{seg.x, line.y + line.baseline - child_h, seg.width, child_h}, graphic());
      }
    }

    y += line.height;
    lines_.push_back(std::move(line));

    if (pos >= doc_size) {
      break;
    }
    if (data->CharAt(pos) == '\n') {
      ++pos;
      if (pos == doc_size) {
        // Trailing newline: show the empty last line.
        LineBox tail;
        tail.start = tail.end = pos;
        tail.y = y;
        tail.baseline = Font::Get(data->StyleAt(pos).font).ascent();
        tail.height = Font::Get(data->StyleAt(pos).font).height();
        lines_.push_back(std::move(tail));
        break;
      }
    }
  }

  laid_width_ = view_width;
  laid_height_ = view_height;
  laid_top_pos_ = top_pos_;
  layout_all_dirty_ = false;
  dirty_from_pos_ = std::numeric_limits<int64_t>::max();
}

// ---- Painting ---------------------------------------------------------------------

void TextView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  EnsureLayout();
  if (draw_background_) {
    g->Clear();
  }
  TextData* data = text();
  if (data == nullptr) {
    return;
  }
  for (const LineBox& line : lines_) {
    for (const Segment& seg : line.segments) {
      if (seg.child != nullptr || seg.style == nullptr) {
        continue;  // Children (and viewless placeholders) are not text runs.
      }
      g->SetFont(seg.style->font);
      g->SetForeground(seg.style->color);
      std::string run = data->GetText(seg.start, seg.end - seg.start);
      g->DrawString(Point{seg.x, line.y + line.baseline - Font::Get(seg.style->font).ascent()},
                    run);
    }
  }
  // Placeholder boxes for embedded objects without a view class.
  for (const LineBox& line : lines_) {
    for (const Segment& seg : line.segments) {
      if (seg.end == seg.start + 1 && seg.child == nullptr &&
          data->CharAt(seg.start) == TextData::kObjectChar) {
        g->FillRect(Rect{seg.x, line.y, seg.width, line.height}, kLightGray);
        g->DrawRect(Rect{seg.x, line.y, seg.width, line.height});
      }
    }
  }
  DrawSelection();
  if (has_input_focus() || dot_len_ == 0) {
    DrawCaret();
  }
}

void TextView::DrawCaret() {
  if (dot_len_ != 0) {
    return;
  }
  Point p = PointAtPos(dot_pos_);
  if (p.x < 0) {
    return;
  }
  Graphic* g = graphic();
  const Font& font = text() != nullptr ? Font::Get(text()->StyleAt(dot_pos_).font)
                                       : Font::Default();
  g->SetForeground(kBlack);
  g->DrawLine(Point{p.x, p.y}, Point{p.x, p.y + font.height() - 1});
  // The classic Andrew caret: a small triangle under the insertion point.
  g->DrawLine(Point{p.x - 2, p.y + font.height() + 1}, Point{p.x + 2, p.y + font.height() + 1});
}

void TextView::DrawSelection() {
  if (dot_len_ <= 0) {
    return;
  }
  Graphic* g = graphic();
  int64_t sel_start = dot_pos_;
  int64_t sel_end = dot_pos_ + dot_len_;
  for (const LineBox& line : lines_) {
    for (const Segment& seg : line.segments) {
      if (seg.child != nullptr || seg.style == nullptr) {
        continue;
      }
      int64_t s = std::max(sel_start, seg.start);
      int64_t e = std::min(sel_end, seg.end);
      if (s >= e || seg.end == seg.start) {
        continue;
      }
      const Font& font = Font::Get(seg.style->font);
      int x0 = seg.x + static_cast<int>(s - seg.start) * font.advance();
      int x1 = seg.x + static_cast<int>(e - seg.start) * font.advance();
      g->InvertRect(Rect{x0, line.y, x1 - x0, line.height});
    }
  }
}

// ---- Hit testing & input -------------------------------------------------------------

int64_t TextView::PosAtPoint(Point p) {
  EnsureLayout();
  TextData* data = text();
  if (data == nullptr) {
    return 0;
  }
  if (lines_.empty()) {
    return 0;
  }
  const LineBox* line = &lines_.back();
  for (const LineBox& candidate : lines_) {
    if (p.y < candidate.y + candidate.height) {
      line = &candidate;
      break;
    }
  }
  if (line->segments.empty()) {
    return line->start;
  }
  for (const Segment& seg : line->segments) {
    if (p.x < seg.x + seg.width) {
      if (p.x < seg.x) {
        return seg.start;
      }
      if (seg.child != nullptr || seg.style == nullptr) {
        return seg.start;
      }
      const Font& font = Font::Get(seg.style->font);
      int64_t idx = font.CharIndexAt(p.x - seg.x);
      return std::min(seg.start + idx, seg.end);
    }
  }
  return line->end;
}

Point TextView::PointAtPos(int64_t pos) {
  EnsureLayout();
  for (const LineBox& line : lines_) {
    if (pos < line.start || pos > line.end) {
      continue;
    }
    int x = margin_x_;
    for (const Segment& seg : line.segments) {
      if (pos < seg.start) {
        break;
      }
      if (pos <= seg.end) {
        if (seg.child != nullptr || seg.style == nullptr || seg.end == seg.start) {
          return Point{pos == seg.start ? seg.x : seg.x + seg.width, line.y};
        }
        const Font& font = Font::Get(seg.style->font);
        return Point{seg.x + static_cast<int>(pos - seg.start) * font.advance(), line.y};
      }
      x = seg.x + seg.width;
    }
    return Point{x, line.y};
  }
  return Point{-1, -1};
}

View* TextView::Hit(const InputEvent& event) {
  EnsureLayout();
  // Parental authority: offer the event to an embedded child whose box
  // contains the point; the child may decline, in which case we treat the
  // position as a caret location.
  if (event.type == EventType::kMouseDown || event.type == EventType::kMouseUp) {
    for (const LineBox& line : lines_) {
      for (const Segment& seg : line.segments) {
        if (seg.child != nullptr && seg.child->bounds().Contains(event.pos)) {
          View* taken = seg.child->Hit(TranslateToChild(event, *seg.child));
          if (taken != nullptr) {
            return taken;
          }
        }
      }
    }
  }
  switch (event.type) {
    case EventType::kMouseDown:
      sel_anchor_ = PosAtPoint(event.pos);
      SetDot(sel_anchor_, 0);
      RequestInputFocus();
      return this;
    case EventType::kMouseDrag:
    case EventType::kMouseUp: {
      int64_t pos = PosAtPoint(event.pos);
      SetDot(std::min(pos, sel_anchor_), std::max(pos, sel_anchor_) -
                                             std::min(pos, sel_anchor_));
      return this;
    }
    default:
      return nullptr;
  }
}

bool TextView::HandleKey(char key, unsigned modifiers) {
  (void)modifiers;
  if (text() == nullptr) {
    return false;
  }
  if (key == '\r' || key == '\n') {
    InsertText("\n");
    return true;
  }
  if (key == '\b' || key == '\177') {
    DeleteBackward();
    return true;
  }
  if (key >= 0x20 && key < 0x7F) {
    SelfInsert(key);
    return true;
  }
  return false;
}

void TextView::FillMenus(MenuList& menus) {
  menus.Add("Edit~Cut", "textview-cut");
  menus.Add("Edit~Copy", "textview-copy");
  menus.Add("Edit~Paste", "textview-paste");
  menus.Add("Style~Plain", "textview-style-plain");
  menus.Add("Style~Bold", "textview-style-bold");
  menus.Add("Style~Italic", "textview-style-italic");
  menus.Add("Style~Heading", "textview-style-heading");
  menus.Add("Style~Center", "textview-style-center");
}

const KeyMap& TextView::DefaultKeyMap() {
  static KeyMap* map = [] {
    auto* m = new KeyMap();
    m->Bind(std::string{Ctl('f')}, "textview-forward-char");
    m->Bind(std::string{Ctl('b')}, "textview-backward-char");
    m->Bind(std::string{Ctl('n')}, "textview-next-line");
    m->Bind(std::string{Ctl('p')}, "textview-previous-line");
    m->Bind(std::string{Ctl('a')}, "textview-beginning-of-line");
    m->Bind(std::string{Ctl('e')}, "textview-end-of-line");
    m->Bind(std::string{Ctl('d')}, "textview-delete-next-char");
    m->Bind(std::string{Ctl('k')}, "textview-kill-line");
    m->Bind(std::string{Ctl('y')}, "textview-yank");
    m->Bind(std::string{Ctl('w')}, "textview-cut");
    m->Bind("\033w", "textview-copy");
    m->Bind(std::string{Ctl('v')}, "textview-scroll-forward");
    m->Bind("\033v", "textview-scroll-backward");
    return m;
  }();
  return *map;
}

const KeyMap* TextView::GetKeyMap() const { return &DefaultKeyMap(); }

}  // namespace atk
