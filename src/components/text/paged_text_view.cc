#include "src/components/text/paged_text_view.h"

#include <algorithm>
#include <string>

namespace atk {

ATK_DEFINE_CLASS(PagedTextView, TextView, "pagedtextview")

PagedTextView::PagedTextView() {
  margin_x_ = kSheetInset + kPaperMargin;
  margin_y_ = kSheetInset + kPaperMargin;
  draw_background_ = false;  // We paint the desk + sheet ourselves.
}

Rect PagedTextView::SheetRect() const {
  if (graphic() == nullptr) {
    return Rect{};
  }
  return graphic()->LocalBounds().Inset(kSheetInset);
}

void PagedTextView::Layout() { TextView::Layout(); }

int PagedTextView::PageCount() {
  TextData* data = text();
  if (data == nullptr || graphic() == nullptr) {
    return 1;
  }
  EnsureLayout();
  int lines_per_page = std::max(1, visible_line_count());
  int64_t total_lines = data->LineCount();
  return static_cast<int>((total_lines + lines_per_page - 1) / lines_per_page);
}

void PagedTextView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  // Desk background and the paper sheet.
  g->FillRect(g->LocalBounds(), kLightGray);
  Rect sheet = SheetRect();
  g->FillRect(sheet, kWhite);
  g->SetForeground(kDarkGray);
  g->DrawRect(sheet);
  // Drop shadow along the right/bottom edges.
  g->FillRect(Rect{sheet.right(), sheet.top() + 3, 2, sheet.height}, kDarkGray);
  g->FillRect(Rect{sheet.left() + 3, sheet.bottom(), sheet.width, 2}, kDarkGray);

  // Content, using the TextView engine (margins already inset to the paper).
  g->SetForeground(kBlack);
  TextView::FullUpdate();

  // Page indicator in the desk margin.
  TextData* data = text();
  if (data != nullptr) {
    current_page_ = 0;
    int lines_per_page = std::max(1, visible_line_count());
    current_page_ = static_cast<int>(data->LineOfPos(top_pos()) / lines_per_page);
    std::string label =
        "page " + std::to_string(current_page_ + 1) + "/" + std::to_string(PageCount());
    g->SetFont(FontSpec{"andy", 10, kPlain});
    g->SetForeground(kDarkGray);
    g->DrawString(Point{kSheetInset, g->height() - kSheetInset + 1}, label);
  }
}

void PagedTextView::PrintDocument(PrintJob& job) {
  TextData* data = text();
  if (data == nullptr) {
    return;
  }
  // §4's mechanism: repoint the drawable at printer pages and redraw until
  // the whole document has been emitted.
  int64_t saved_top = top_pos();
  ScrollToUnit(0);
  int64_t last_top_line = -1;
  while (true) {
    Graphic* page = job.NewPage();
    AllocateRoot(page);
    RenderSubtree(*this);
    ScrollInfo info = GetScrollInfo();
    int64_t next = info.first_visible + info.visible;
    if (next >= info.total || info.first_visible == last_top_line) {
      break;
    }
    last_top_line = info.first_visible;
    ScrollToUnit(next);
  }
  ScrollToUnit(data->LineOfPos(saved_top));
}

}  // namespace atk
