// Loader module for the text component: registers the classes, the default
// view pairing, and the named editing procs that keymaps and menus bind to.

#include "src/base/default_views.h"
#include "src/base/proctable.h"
#include "src/class_system/loader.h"
#include "src/components/text/paged_text_view.h"
#include "src/components/text/text_data.h"
#include "src/components/text/text_view.h"

namespace atk {
namespace {

void RegisterTextProcs() {
  ProcTable& procs = ProcTable::Instance();
  auto on_textview = [](void (TextView::*method)()) {
    return [method](View* view, long) {
      if (TextView* tv = ObjectCast<TextView>(view)) {
        (tv->*method)();
      }
    };
  };
  procs.Register("textview-forward-char", on_textview(&TextView::MoveForward));
  procs.Register("textview-backward-char", on_textview(&TextView::MoveBackward));
  procs.Register("textview-next-line", on_textview(&TextView::MoveDown));
  procs.Register("textview-previous-line", on_textview(&TextView::MoveUp));
  procs.Register("textview-beginning-of-line", on_textview(&TextView::MoveLineStart));
  procs.Register("textview-end-of-line", on_textview(&TextView::MoveLineEnd));
  procs.Register("textview-delete-next-char", on_textview(&TextView::DeleteForward));
  procs.Register("textview-delete-previous-char", on_textview(&TextView::DeleteBackward));
  procs.Register("textview-kill-line", on_textview(&TextView::KillLine));
  procs.Register("textview-yank", on_textview(&TextView::Yank));
  procs.Register("textview-cut", on_textview(&TextView::CutRegion));
  procs.Register("textview-copy", on_textview(&TextView::CopyRegion));
  procs.Register("textview-paste", on_textview(&TextView::Paste));
  procs.Register("textview-scroll-forward", [](View* view, long) {
    if (TextView* tv = ObjectCast<TextView>(view)) {
      ScrollInfo info = tv->GetScrollInfo();
      tv->ScrollByUnits(std::max<int64_t>(1, info.visible - 1));
    }
  });
  procs.Register("textview-scroll-backward", [](View* view, long) {
    if (TextView* tv = ObjectCast<TextView>(view)) {
      ScrollInfo info = tv->GetScrollInfo();
      tv->ScrollByUnits(-std::max<int64_t>(1, info.visible - 1));
    }
  });
  auto style_proc = [](const char* style) {
    return [style](View* view, long) {
      if (TextView* tv = ObjectCast<TextView>(view)) {
        tv->StyleSelection(style);
      }
    };
  };
  procs.Register("textview-style-plain", style_proc("default"));
  procs.Register("textview-style-bold", style_proc("bold"));
  procs.Register("textview-style-italic", style_proc("italic"));
  procs.Register("textview-style-heading", style_proc("heading"));
  procs.Register("textview-style-center", style_proc("center"));
}

}  // namespace

void RegisterTextModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "text";
    spec.provides = {"text", "textview", "pagedtextview"};
    spec.text_bytes = 120 * 1024;  // The largest component, as in 1988.
    spec.data_bytes = 8 * 1024;
    spec.init = [] {
      ClassRegistry::Instance().Register(TextData::StaticClassInfo());
      ClassRegistry::Instance().Register(TextView::StaticClassInfo());
      ClassRegistry::Instance().Register(PagedTextView::StaticClassInfo());
      SetDefaultViewName("text", "textview");
      RegisterTextProcs();
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
