// EqData — the equation component (snapshot 5 embeds Pascal's-Triangle
// recurrence equations inside a table inside text).
//
// The persistent form is a linear TeX-flavoured source string; the data
// object parses it into a layout tree the view renders with recursive box
// layout.  Supported syntax: juxtaposition, + - * / = < > ( ),
// sub/superscripts (x_1, x^{n+1}), \frac{num}{den}, \sqrt{arg}, \sum, \pi,
// and {...} grouping.

#ifndef ATK_SRC_COMPONENTS_EQUATION_EQ_DATA_H_
#define ATK_SRC_COMPONENTS_EQUATION_EQ_DATA_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/data_object.h"

namespace atk {

struct EqNode;
using EqNodePtr = std::unique_ptr<EqNode>;

struct EqNode {
  enum class Kind { kSymbol, kRow, kFrac, kScript, kSqrt };

  Kind kind = Kind::kSymbol;
  std::string symbol;             // kSymbol: the glyph run ("x", "+", "sum").
  std::vector<EqNodePtr> children;  // kRow members.
  EqNodePtr first;                // kFrac numerator / kScript base / kSqrt arg.
  EqNodePtr second;               // kFrac denominator.
  EqNodePtr sub;                  // kScript subscript (may be null).
  EqNodePtr sup;                  // kScript superscript (may be null).

  // Number of nodes in this subtree (tests, benches).
  int CountNodes() const;
};

class EqData : public DataObject {
  ATK_DECLARE_CLASS(EqData)

 public:
  EqData();
  ~EqData() override;

  // Replaces the equation; parse errors keep the source and leave a
  // diagnostic (the view renders the source flat in that case).
  void SetSource(std::string_view source);
  const std::string& source() const { return source_; }
  const EqNode* root() const { return root_.get(); }
  bool parse_ok() const { return parse_ok_; }
  const std::string& parse_error() const { return parse_error_; }

  void WriteBody(DataStreamWriter& writer) const override;
  bool ReadBody(DataStreamReader& reader, ReadContext& context) override;

 private:
  std::string source_;
  EqNodePtr root_;
  bool parse_ok_ = true;
  std::string parse_error_;
};

// Exposed for unit tests.
EqNodePtr ParseEquation(std::string_view source, bool* ok, std::string* error);

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_EQUATION_EQ_DATA_H_
