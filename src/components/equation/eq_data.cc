#include "src/components/equation/eq_data.h"

#include <cctype>

namespace atk {

ATK_DEFINE_CLASS(EqData, DataObject, "eq")

int EqNode::CountNodes() const {
  int count = 1;
  for (const EqNodePtr& child : children) {
    count += child->CountNodes();
  }
  if (first) {
    count += first->CountNodes();
  }
  if (second) {
    count += second->CountNodes();
  }
  if (sub) {
    count += sub->CountNodes();
  }
  if (sup) {
    count += sup->CountNodes();
  }
  return count;
}

namespace {

class EqParser {
 public:
  explicit EqParser(std::string_view src) : src_(src) {}

  EqNodePtr Parse(bool* ok, std::string* error) {
    EqNodePtr row = ParseRow('\0');
    if (!error_.empty() || pos_ != src_.size()) {
      *ok = false;
      *error = error_.empty() ? "trailing input" : error_;
      return nullptr;
    }
    *ok = true;
    return row;
  }

 private:
  void Fail(std::string message) {
    if (error_.empty()) {
      error_ = std::move(message);
    }
  }

  void SkipSpace() {
    while (pos_ < src_.size() && src_[pos_] == ' ') {
      ++pos_;
    }
  }

  // Parses a sequence of atoms (with attached scripts) until `stop` or EOF.
  EqNodePtr ParseRow(char stop) {
    auto row = std::make_unique<EqNode>();
    row->kind = EqNode::Kind::kRow;
    while (true) {
      SkipSpace();
      if (pos_ >= src_.size() || (stop != '\0' && src_[pos_] == stop)) {
        break;
      }
      EqNodePtr atom = ParseAtom();
      if (atom == nullptr) {
        return row;
      }
      // Scripts bind to the preceding atom.
      SkipSpace();
      if (pos_ < src_.size() && (src_[pos_] == '_' || src_[pos_] == '^')) {
        auto script = std::make_unique<EqNode>();
        script->kind = EqNode::Kind::kScript;
        script->first = std::move(atom);
        while (pos_ < src_.size() && (src_[pos_] == '_' || src_[pos_] == '^')) {
          char which = src_[pos_++];
          EqNodePtr arg = ParseGroupOrAtom();
          if (arg == nullptr) {
            Fail("missing script argument");
            return row;
          }
          if (which == '_') {
            script->sub = std::move(arg);
          } else {
            script->sup = std::move(arg);
          }
          SkipSpace();
        }
        atom = std::move(script);
      }
      row->children.push_back(std::move(atom));
    }
    return row;
  }

  EqNodePtr ParseGroupOrAtom() {
    SkipSpace();
    if (pos_ < src_.size() && src_[pos_] == '{') {
      ++pos_;
      EqNodePtr group = ParseRow('}');
      if (pos_ >= src_.size() || src_[pos_] != '}') {
        Fail("unbalanced brace");
        return nullptr;
      }
      ++pos_;
      return group;
    }
    return ParseAtom();
  }

  EqNodePtr ParseAtom() {
    SkipSpace();
    if (pos_ >= src_.size()) {
      return nullptr;
    }
    char ch = src_[pos_];
    if (ch == '{') {
      return ParseGroupOrAtom();
    }
    if (ch == '\\') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < src_.size() && std::isalpha(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
      std::string name(src_.substr(start, pos_ - start));
      if (name == "frac") {
        auto frac = std::make_unique<EqNode>();
        frac->kind = EqNode::Kind::kFrac;
        frac->first = ParseGroupOrAtom();
        frac->second = ParseGroupOrAtom();
        if (frac->first == nullptr || frac->second == nullptr) {
          Fail("\\frac needs two arguments");
          return nullptr;
        }
        return frac;
      }
      if (name == "sqrt") {
        auto sqrt = std::make_unique<EqNode>();
        sqrt->kind = EqNode::Kind::kSqrt;
        sqrt->first = ParseGroupOrAtom();
        if (sqrt->first == nullptr) {
          Fail("\\sqrt needs an argument");
          return nullptr;
        }
        return sqrt;
      }
      if (name.empty()) {
        Fail("stray backslash");
        return nullptr;
      }
      // Named symbols (\sum, \pi, \alpha, ...) render as their name.
      auto symbol = std::make_unique<EqNode>();
      symbol->kind = EqNode::Kind::kSymbol;
      symbol->symbol = name;
      return symbol;
    }
    if (ch == '}') {
      Fail("unexpected '}'");
      return nullptr;
    }
    // A maximal run of letters/digits, or one operator character.
    auto symbol = std::make_unique<EqNode>();
    symbol->kind = EqNode::Kind::kSymbol;
    if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '.') {
      size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '.')) {
        ++pos_;
      }
      symbol->symbol = std::string(src_.substr(start, pos_ - start));
    } else {
      symbol->symbol = std::string(1, ch);
      ++pos_;
    }
    return symbol;
  }

  std::string_view src_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

EqNodePtr ParseEquation(std::string_view source, bool* ok, std::string* error) {
  return EqParser(source).Parse(ok, error);
}

EqData::EqData() { SetSource(""); }

EqData::~EqData() = default;

void EqData::SetSource(std::string_view source) {
  source_ = std::string(source);
  root_ = ParseEquation(source_, &parse_ok_, &parse_error_);
  Change change;
  change.kind = Change::Kind::kModified;
  NotifyObservers(change);
}

void EqData::WriteBody(DataStreamWriter& writer) const { writer.WriteText(source_); }

bool EqData::ReadBody(DataStreamReader& reader, ReadContext& context) {
  (void)context;
  using Kind = DataStreamReader::Token::Kind;
  std::string source;
  while (true) {
    DataStreamReader::Token token = reader.Next();
    if (token.kind == Kind::kEndData) {
      SetSource(source);
      return true;
    }
    if (token.kind == Kind::kEof) {
      SetSource(source);
      return false;
    }
    if (token.kind == Kind::kText) {
      source += token.text;
    } else if (token.kind == Kind::kBeginData) {
      reader.SkipObject(token.type, token.id);
    }
  }
}

}  // namespace atk
