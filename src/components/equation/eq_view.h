// EqView — renders an EqData with recursive box layout: every node gets a
// (width, height, baseline) box; rows align baselines, fractions stack over
// a bar, scripts shrink one size step and shift off the baseline, radicals
// draw the surd and a vinculum.

#ifndef ATK_SRC_COMPONENTS_EQUATION_EQ_VIEW_H_
#define ATK_SRC_COMPONENTS_EQUATION_EQ_VIEW_H_

#include "src/base/view.h"
#include "src/components/equation/eq_data.h"

namespace atk {

class EqView : public View {
  ATK_DECLARE_CLASS(EqView)

 public:
  EqData* equation() const { return ObjectCast<EqData>(data_object()); }

  void FullUpdate() override;
  Size DesiredSize(Size available) override;

  // Box metrics of a subtree at `font_size` (exposed for tests).
  struct Box {
    int width = 0;
    int height = 0;
    int baseline = 0;  // Distance from top to the baseline.
  };
  static Box Measure(const EqNode* node, int font_size);

 private:
  static void Render(Graphic* g, const EqNode* node, Point top_left, int font_size);
  static const Font& FontFor(int font_size);
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_EQUATION_EQ_VIEW_H_
