#include "src/components/equation/eq_view.h"

#include <algorithm>

#include "src/base/default_views.h"
#include "src/class_system/loader.h"

namespace atk {

ATK_DEFINE_CLASS(EqView, View, "eqview")

namespace {
constexpr int kScriptSizeStep = 4;  // Scripts shrink by this many points.
constexpr int kMinFontSize = 8;
constexpr int kFracGap = 2;
}  // namespace

const Font& EqView::FontFor(int font_size) {
  return Font::Get(FontSpec{"andy", std::max(font_size, kMinFontSize), kPlain});
}

EqView::Box EqView::Measure(const EqNode* node, int font_size) {
  Box box;
  if (node == nullptr) {
    return box;
  }
  const Font& font = FontFor(font_size);
  switch (node->kind) {
    case EqNode::Kind::kSymbol: {
      box.width = font.StringWidth(node->symbol) + 2;
      box.height = font.height();
      box.baseline = font.ascent();
      return box;
    }
    case EqNode::Kind::kRow: {
      int above = 0;
      int below = 0;
      for (const EqNodePtr& child : node->children) {
        Box cb = Measure(child.get(), font_size);
        box.width += cb.width;
        above = std::max(above, cb.baseline);
        below = std::max(below, cb.height - cb.baseline);
      }
      if (node->children.empty()) {
        box.height = font.height();
        box.baseline = font.ascent();
      } else {
        box.height = above + below;
        box.baseline = above;
      }
      return box;
    }
    case EqNode::Kind::kFrac: {
      Box num = Measure(node->first.get(), font_size);
      Box den = Measure(node->second.get(), font_size);
      box.width = std::max(num.width, den.width) + 6;
      box.height = num.height + den.height + 2 * kFracGap + 1;
      // The bar sits on the baseline's math axis, roughly mid-x-height.
      box.baseline = num.height + kFracGap + font.ascent() / 2 - font.height() / 2 +
                     font.ascent() / 2;
      box.baseline = num.height + kFracGap;  // Bar at the baseline.
      return box;
    }
    case EqNode::Kind::kScript: {
      Box base = Measure(node->first.get(), font_size);
      int script_size = std::max(font_size - kScriptSizeStep, kMinFontSize);
      Box sup = Measure(node->sup.get(), script_size);
      Box sub = Measure(node->sub.get(), script_size);
      int raise = node->sup != nullptr ? std::max(sup.height - base.baseline / 2, 0) : 0;
      int drop = node->sub != nullptr ? sub.height / 2 : 0;
      box.width = base.width + std::max(sup.width, sub.width);
      box.baseline = base.baseline + raise;
      box.height = box.baseline + (base.height - base.baseline) + drop;
      return box;
    }
    case EqNode::Kind::kSqrt: {
      Box arg = Measure(node->first.get(), font_size);
      box.width = arg.width + font.advance() + 2;
      box.height = arg.height + 3;
      box.baseline = arg.baseline + 3;
      return box;
    }
  }
  return box;
}

void EqView::Render(Graphic* g, const EqNode* node, Point top_left, int font_size) {
  if (node == nullptr) {
    return;
  }
  const Font& font = FontFor(font_size);
  Box box = Measure(node, font_size);
  switch (node->kind) {
    case EqNode::Kind::kSymbol: {
      g->SetFont(FontSpec{"andy", std::max(font_size, kMinFontSize), kPlain});
      g->DrawString(Point{top_left.x + 1, top_left.y + box.baseline - font.ascent()},
                    node->symbol);
      return;
    }
    case EqNode::Kind::kRow: {
      int x = top_left.x;
      for (const EqNodePtr& child : node->children) {
        Box cb = Measure(child.get(), font_size);
        Render(g, child.get(), Point{x, top_left.y + box.baseline - cb.baseline}, font_size);
        x += cb.width;
      }
      return;
    }
    case EqNode::Kind::kFrac: {
      Box num = Measure(node->first.get(), font_size);
      Box den = Measure(node->second.get(), font_size);
      int bar_y = top_left.y + box.baseline;
      Render(g, node->first.get(),
             Point{top_left.x + (box.width - num.width) / 2, bar_y - kFracGap - num.height},
             font_size);
      g->DrawLine(Point{top_left.x + 1, bar_y}, Point{top_left.x + box.width - 2, bar_y});
      Render(g, node->second.get(),
             Point{top_left.x + (box.width - den.width) / 2, bar_y + kFracGap + 1}, font_size);
      return;
    }
    case EqNode::Kind::kScript: {
      Box base = Measure(node->first.get(), font_size);
      int script_size = std::max(font_size - kScriptSizeStep, kMinFontSize);
      Render(g, node->first.get(), Point{top_left.x, top_left.y + box.baseline - base.baseline},
             font_size);
      int script_x = top_left.x + base.width;
      if (node->sup != nullptr) {
        Render(g, node->sup.get(), Point{script_x, top_left.y}, script_size);
      }
      if (node->sub != nullptr) {
        Box sub = Measure(node->sub.get(), script_size);
        Render(g, node->sub.get(),
               Point{script_x, top_left.y + box.height - sub.height}, script_size);
      }
      return;
    }
    case EqNode::Kind::kSqrt: {
      int surd_w = font.advance();
      // The surd: a little check mark, then the vinculum over the argument.
      g->DrawLine(Point{top_left.x, top_left.y + box.height * 2 / 3},
                  Point{top_left.x + surd_w / 2, top_left.y + box.height - 1});
      g->DrawLine(Point{top_left.x + surd_w / 2, top_left.y + box.height - 1},
                  Point{top_left.x + surd_w, top_left.y + 1});
      g->DrawLine(Point{top_left.x + surd_w, top_left.y + 1},
                  Point{top_left.x + box.width - 1, top_left.y + 1});
      Render(g, node->first.get(), Point{top_left.x + surd_w + 2, top_left.y + 3}, font_size);
      return;
    }
  }
}

void EqView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  EqData* data = equation();
  if (data == nullptr) {
    return;
  }
  g->SetForeground(kBlack);
  if (!data->parse_ok() || data->root() == nullptr) {
    g->SetFont(FontSpec{"andy", 10, kItalic});
    g->DrawString(Point{2, 2}, data->source());
    return;
  }
  Render(g, data->root(), Point{2, 2}, 12);
}

Size EqView::DesiredSize(Size available) {
  EqData* data = equation();
  Size desired{40, 16};
  if (data != nullptr && data->parse_ok() && data->root() != nullptr) {
    Box box = Measure(data->root(), 12);
    desired = Size{box.width + 4, box.height + 4};
  } else if (data != nullptr) {
    desired = Size{Font::Default().StringWidth(data->source()) + 4,
                   Font::Default().height() + 4};
  }
  if (available.width > 0) {
    desired.width = std::min(desired.width, available.width);
  }
  if (available.height > 0) {
    desired.height = std::min(desired.height, available.height);
  }
  return desired;
}

void RegisterEquationModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "equation";
    spec.provides = {"eq", "eqview"};
    spec.text_bytes = 34 * 1024;
    spec.data_bytes = 2 * 1024;
    spec.init = [] {
      ClassRegistry::Instance().Register(EqData::StaticClassInfo());
      ClassRegistry::Instance().Register(EqView::StaticClassInfo());
      SetDefaultViewName("eq", "eqview");
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
