// DrawData — the structured-graphics ("drawing") data object.
//
// A drawing is an ordered list of shapes: lines, rectangles, ellipses,
// polylines, and *embedded text blocks* — the drawing editor that motivated
// the parental-authority design (§3) "used the text component to display and
// edit text within the drawings", so text shapes own a real TextData child
// rather than a flat string.

#ifndef ATK_SRC_COMPONENTS_DRAWING_DRAW_DATA_H_
#define ATK_SRC_COMPONENTS_DRAWING_DRAW_DATA_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/data_object.h"
#include "src/components/text/text_data.h"
#include "src/graphics/geometry.h"

namespace atk {

class DrawData : public DataObject {
  ATK_DECLARE_CLASS(DrawData)

 public:
  enum class ShapeKind { kLine, kRect, kEllipse, kPolyline, kText, kObject };

  struct Shape {
    ShapeKind kind = ShapeKind::kLine;
    // kLine: points[0..1]; kPolyline: all points.
    std::vector<Point> points;
    // kRect/kEllipse bounding box; kText/kObject placement box.
    Rect box;
    int line_width = 1;
    bool filled = false;
    // kText payload (owned).
    std::unique_ptr<TextData> text;
    // kObject payload: arbitrary embedded component.
    std::unique_ptr<DataObject> object;
    std::string view_type;
  };

  DrawData();
  ~DrawData() override;

  int shape_count() const { return static_cast<int>(shapes_.size()); }
  const Shape& shape(int index) const { return shapes_[static_cast<size_t>(index)]; }

  // All mutators notify observers once and return the new shape's index.
  int AddLine(Point a, Point b, int line_width = 1);
  int AddRect(const Rect& box, bool filled = false);
  int AddEllipse(const Rect& box, bool filled = false);
  int AddPolyline(std::vector<Point> points, int line_width = 1);
  // Creates an owned TextData initialized with `content` placed in `box`.
  int AddText(const Rect& box, std::string_view content);
  // Embeds an arbitrary data object displayed by `view_type` (default view
  // when empty) inside `box` — drawings are multi-media components too.
  int AddObject(const Rect& box, std::unique_ptr<DataObject> object,
                std::string_view view_type = "");
  void RemoveShape(int index);
  void MoveShape(int index, int dx, int dy);

  // Topmost shape whose geometry is within `slop` pixels of `p`, or -1.
  // Text/object shapes hit by their boxes; lines by distance to the segment.
  int ShapeAt(Point p, int slop = 3) const;

  // Bounding box of all shapes.
  Rect ContentBounds() const;

  void WriteBody(DataStreamWriter& writer) const override;
  bool ReadBody(DataStreamReader& reader, ReadContext& context) override;

 private:
  int PushShape(Shape shape);
  void NotifyShape(int index, Change::Kind kind);

  std::vector<Shape> shapes_;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_DRAWING_DRAW_DATA_H_
