// DrawView — the drawing editor view.
//
// Renders shapes in painter's order, hosts a TextView child for every text
// shape (and a suitable view for every embedded object), and resolves the
// §3 dispatch dilemma: "The user of the drawing editor might first enter
// some text and then place a line over the text.  When a mouse event occurs
// near that line only the drawing component could determine whether the user
// was selecting the line or the underlying text."  DrawView::Hit checks
// line proximity *before* offering the event to the text child — the
// parental-authority behaviour the old global/physical model couldn't
// express (the integration test exercises both modes).

#ifndef ATK_SRC_COMPONENTS_DRAWING_DRAW_VIEW_H_
#define ATK_SRC_COMPONENTS_DRAWING_DRAW_VIEW_H_

#include <map>
#include <memory>

#include "src/base/view.h"
#include "src/components/drawing/draw_data.h"

namespace atk {

class DrawView : public View {
  ATK_DECLARE_CLASS(DrawView)

 public:
  DrawView();
  ~DrawView() override;

  DrawData* drawing() const { return ObjectCast<DrawData>(data_object()); }

  int selected_shape() const { return selected_; }
  void SelectShape(int index);

  void Layout() override;
  void FullUpdate() override;
  Size DesiredSize(Size available) override;
  View* Hit(const InputEvent& event) override;
  void FillMenus(MenuList& menus) override;
  void ObservedChanged(Observable* changed, const Change& change) override;

 private:
  View* ChildFor(const void* key, DataObject* data, const std::string& view_type);
  void PruneChildren();

  int selected_ = -1;
  bool dragging_ = false;
  Point drag_last_;
  std::map<const void*, std::unique_ptr<View>> child_views_;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_DRAWING_DRAW_VIEW_H_
