#include "src/components/drawing/draw_data.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/base/default_views.h"

namespace atk {

ATK_DEFINE_CLASS(DrawData, DataObject, "draw")

DrawData::DrawData() = default;

DrawData::~DrawData() = default;

int DrawData::PushShape(Shape shape) {
  shapes_.push_back(std::move(shape));
  int index = static_cast<int>(shapes_.size()) - 1;
  NotifyShape(index, Change::Kind::kInserted);
  return index;
}

void DrawData::NotifyShape(int index, Change::Kind kind) {
  Change change;
  change.kind = kind;
  change.pos = index;
  change.added = kind == Change::Kind::kInserted ? 1 : 0;
  change.removed = kind == Change::Kind::kDeleted ? 1 : 0;
  NotifyObservers(change);
}

int DrawData::AddLine(Point a, Point b, int line_width) {
  Shape shape;
  shape.kind = ShapeKind::kLine;
  shape.points = {a, b};
  shape.line_width = line_width;
  return PushShape(std::move(shape));
}

int DrawData::AddRect(const Rect& box, bool filled) {
  Shape shape;
  shape.kind = ShapeKind::kRect;
  shape.box = box;
  shape.filled = filled;
  return PushShape(std::move(shape));
}

int DrawData::AddEllipse(const Rect& box, bool filled) {
  Shape shape;
  shape.kind = ShapeKind::kEllipse;
  shape.box = box;
  shape.filled = filled;
  return PushShape(std::move(shape));
}

int DrawData::AddPolyline(std::vector<Point> points, int line_width) {
  Shape shape;
  shape.kind = ShapeKind::kPolyline;
  shape.points = std::move(points);
  shape.line_width = line_width;
  return PushShape(std::move(shape));
}

int DrawData::AddText(const Rect& box, std::string_view content) {
  Shape shape;
  shape.kind = ShapeKind::kText;
  shape.box = box;
  shape.text = std::make_unique<TextData>();
  shape.text->SetText(content);
  return PushShape(std::move(shape));
}

int DrawData::AddObject(const Rect& box, std::unique_ptr<DataObject> object,
                        std::string_view view_type) {
  if (object == nullptr) {
    return -1;
  }
  Shape shape;
  shape.kind = ShapeKind::kObject;
  shape.box = box;
  shape.view_type =
      view_type.empty() ? DefaultViewName(object->DataTypeName()) : std::string(view_type);
  shape.object = std::move(object);
  return PushShape(std::move(shape));
}

void DrawData::RemoveShape(int index) {
  if (index < 0 || index >= shape_count()) {
    return;
  }
  shapes_.erase(shapes_.begin() + index);
  NotifyShape(index, Change::Kind::kDeleted);
}

void DrawData::MoveShape(int index, int dx, int dy) {
  if (index < 0 || index >= shape_count()) {
    return;
  }
  Shape& shape = shapes_[static_cast<size_t>(index)];
  for (Point& p : shape.points) {
    p.x += dx;
    p.y += dy;
  }
  shape.box = shape.box.Translated(dx, dy);
  NotifyShape(index, Change::Kind::kReplaced);
}

namespace {

double DistanceToSegment(Point p, Point a, Point b) {
  double vx = b.x - a.x;
  double vy = b.y - a.y;
  double wx = p.x - a.x;
  double wy = p.y - a.y;
  double len2 = vx * vx + vy * vy;
  double t = len2 > 0 ? std::clamp((wx * vx + wy * vy) / len2, 0.0, 1.0) : 0.0;
  double dx = wx - t * vx;
  double dy = wy - t * vy;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

int DrawData::ShapeAt(Point p, int slop) const {
  // Topmost = latest in the list (painter's order).
  for (int i = shape_count() - 1; i >= 0; --i) {
    const Shape& shape = shapes_[static_cast<size_t>(i)];
    switch (shape.kind) {
      case ShapeKind::kLine:
      case ShapeKind::kPolyline: {
        for (size_t j = 0; j + 1 < shape.points.size(); ++j) {
          if (DistanceToSegment(p, shape.points[j], shape.points[j + 1]) <= slop) {
            return i;
          }
        }
        break;
      }
      case ShapeKind::kRect:
      case ShapeKind::kEllipse: {
        if (shape.filled ? shape.box.Inset(-slop).Contains(p)
                         : shape.box.Inset(-slop).Contains(p) &&
                               !shape.box.Inset(slop).Contains(p)) {
          return i;
        }
        break;
      }
      case ShapeKind::kText:
      case ShapeKind::kObject:
        if (shape.box.Contains(p)) {
          return i;
        }
        break;
    }
  }
  return -1;
}

Rect DrawData::ContentBounds() const {
  Rect bounds;
  for (const Shape& shape : shapes_) {
    switch (shape.kind) {
      case ShapeKind::kLine:
      case ShapeKind::kPolyline:
        for (const Point& p : shape.points) {
          bounds = bounds.Union(Rect{p.x, p.y, 1, 1});
        }
        break;
      default:
        bounds = bounds.Union(shape.box);
        break;
    }
  }
  return bounds;
}

void DrawData::WriteBody(DataStreamWriter& writer) const {
  for (const Shape& shape : shapes_) {
    std::ostringstream args;
    switch (shape.kind) {
      case ShapeKind::kLine:
      case ShapeKind::kPolyline: {
        args << (shape.kind == ShapeKind::kLine ? "line" : "poly") << "," << shape.line_width;
        for (const Point& p : shape.points) {
          args << "," << p.x << "," << p.y;
        }
        writer.WriteDirective("shape", args.str());
        writer.WriteNewline();
        break;
      }
      case ShapeKind::kRect:
      case ShapeKind::kEllipse: {
        args << (shape.kind == ShapeKind::kRect ? "rect" : "ellipse") << ","
             << (shape.filled ? 1 : 0) << "," << shape.box.x << "," << shape.box.y << ","
             << shape.box.width << "," << shape.box.height;
        writer.WriteDirective("shape", args.str());
        writer.WriteNewline();
        break;
      }
      case ShapeKind::kText: {
        args << shape.box.x << "," << shape.box.y << "," << shape.box.width << ","
             << shape.box.height;
        writer.WriteDirective("shapetext", args.str());
        writer.WriteNewline();
        int64_t id = shape.text->Write(writer);
        writer.WriteViewReference("textview", id);
        writer.WriteNewline();
        break;
      }
      case ShapeKind::kObject: {
        args << shape.box.x << "," << shape.box.y << "," << shape.box.width << ","
             << shape.box.height;
        writer.WriteDirective("shapeobject", args.str());
        writer.WriteNewline();
        int64_t id = shape.object->Write(writer);
        writer.WriteViewReference(shape.view_type, id);
        writer.WriteNewline();
        break;
      }
    }
  }
}

bool DrawData::ReadBody(DataStreamReader& reader, ReadContext& context) {
  using Kind = DataStreamReader::Token::Kind;
  shapes_.clear();
  Rect pending_box;
  bool pending_is_text = false;
  bool have_pending_box = false;
  std::vector<std::pair<int64_t, std::unique_ptr<DataObject>>> pending_children;
  bool ok = true;
  while (true) {
    DataStreamReader::Token token = reader.Next();
    if (token.kind == Kind::kEndData) {
      break;
    }
    if (token.kind == Kind::kEof) {
      ok = false;
      break;
    }
    switch (token.kind) {
      case Kind::kDirective: {
        if (token.type == "shape") {
          std::istringstream in{std::string(token.text)};
          std::string kind;
          std::getline(in, kind, ',');
          Shape shape;
          if (kind == "line" || kind == "poly") {
            shape.kind = kind == "line" ? ShapeKind::kLine : ShapeKind::kPolyline;
            char comma;
            in >> shape.line_width;
            int x = 0;
            int y = 0;
            while (in >> comma >> x >> comma >> y) {
              shape.points.push_back(Point{x, y});
            }
            shapes_.push_back(std::move(shape));
          } else if (kind == "rect" || kind == "ellipse") {
            shape.kind = kind == "rect" ? ShapeKind::kRect : ShapeKind::kEllipse;
            int filled = 0;
            char comma;
            if (in >> filled >> comma >> shape.box.x >> comma >> shape.box.y >> comma >>
                shape.box.width >> comma >> shape.box.height) {
              shape.filled = filled != 0;
              shapes_.push_back(std::move(shape));
            }
          }
        } else if (token.type == "shapetext" || token.type == "shapeobject") {
          std::string args(token.text);
          if (std::sscanf(args.c_str(), "%d,%d,%d,%d", &pending_box.x, &pending_box.y,
                          &pending_box.width, &pending_box.height) == 4) {
            have_pending_box = true;
            pending_is_text = token.type == "shapetext";
          }
        }
        break;
      }
      case Kind::kBeginData: {
        std::unique_ptr<DataObject> child =
            ReadObjectBody(reader, context, std::string(token.type), token.id);
        if (child != nullptr) {
          pending_children.emplace_back(token.id, std::move(child));
        }
        break;
      }
      case Kind::kViewRef: {
        auto it = std::find_if(pending_children.begin(), pending_children.end(),
                               [&](const auto& pair) { return pair.first == token.id; });
        if (it == pending_children.end() || !have_pending_box) {
          context.AddError("drawing \\view reference without placement");
          break;
        }
        Shape shape;
        shape.box = pending_box;
        if (pending_is_text) {
          std::unique_ptr<DataObject> child = std::move(it->second);
          TextData* as_text = ObjectCast<TextData>(child.get());
          if (as_text != nullptr) {
            shape.kind = ShapeKind::kText;
            child.release();
            shape.text.reset(as_text);
          } else {
            shape.kind = ShapeKind::kObject;
            shape.object = std::move(child);
            shape.view_type = token.type;
          }
        } else {
          shape.kind = ShapeKind::kObject;
          shape.object = std::move(it->second);
          shape.view_type = token.type;
        }
        pending_children.erase(it);
        have_pending_box = false;
        shapes_.push_back(std::move(shape));
        break;
      }
      default:
        break;
    }
  }
  Change change;
  change.kind = Change::Kind::kModified;
  NotifyObservers(change);
  return ok;
}

}  // namespace atk
