#include "src/components/drawing/draw_view.h"

#include <algorithm>

#include "src/base/default_views.h"
#include "src/base/proctable.h"
#include "src/class_system/loader.h"
#include "src/components/modules.h"

namespace atk {

ATK_DEFINE_CLASS(DrawView, View, "drawview")

DrawView::DrawView() { SetPreferredCursor(CursorShape::kCrosshair); }

DrawView::~DrawView() = default;

void DrawView::SelectShape(int index) {
  selected_ = index;
  PostUpdate();
}

View* DrawView::ChildFor(const void* key, DataObject* data, const std::string& view_type) {
  auto it = child_views_.find(key);
  if (it != child_views_.end()) {
    return it->second.get();
  }
  std::unique_ptr<View> view = ObjectCast<View>(Loader::Instance().NewObject(view_type));
  if (view == nullptr) {
    return nullptr;
  }
  view->SetDataObject(data);
  View* raw = view.get();
  AddChild(raw);
  child_views_[key] = std::move(view);
  return raw;
}

void DrawView::PruneChildren() {
  DrawData* data = drawing();
  for (auto it = child_views_.begin(); it != child_views_.end();) {
    bool alive = false;
    if (data != nullptr) {
      for (int i = 0; i < data->shape_count() && !alive; ++i) {
        const DrawData::Shape& shape = data->shape(i);
        alive = shape.text.get() == it->first || shape.object.get() == it->first;
      }
    }
    if (!alive) {
      RemoveChild(it->second.get());
      it = child_views_.erase(it);
    } else {
      ++it;
    }
  }
}

void DrawView::Layout() {
  DrawData* data = drawing();
  if (data == nullptr || graphic() == nullptr) {
    return;
  }
  PruneChildren();
  for (int i = 0; i < data->shape_count(); ++i) {
    const DrawData::Shape& shape = data->shape(i);
    if (shape.kind == DrawData::ShapeKind::kText && shape.text != nullptr) {
      if (View* child = ChildFor(shape.text.get(), shape.text.get(), "textview")) {
        child->Allocate(shape.box, graphic());
      }
    } else if (shape.kind == DrawData::ShapeKind::kObject && shape.object != nullptr) {
      if (View* child = ChildFor(shape.object.get(), shape.object.get(), shape.view_type)) {
        child->Allocate(shape.box, graphic());
      }
    }
  }
}

void DrawView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  DrawData* data = drawing();
  if (data == nullptr) {
    return;
  }
  for (int i = 0; i < data->shape_count(); ++i) {
    const DrawData::Shape& shape = data->shape(i);
    g->SetForeground(kBlack);
    g->SetLineWidth(shape.line_width);
    switch (shape.kind) {
      case DrawData::ShapeKind::kLine:
        if (shape.points.size() >= 2) {
          g->DrawLine(shape.points[0], shape.points[1]);
        }
        break;
      case DrawData::ShapeKind::kPolyline:
        g->DrawPolyline(shape.points);
        break;
      case DrawData::ShapeKind::kRect:
        if (shape.filled) {
          g->FillRect(shape.box);
        } else {
          g->DrawRect(shape.box);
        }
        break;
      case DrawData::ShapeKind::kEllipse:
        if (shape.filled) {
          g->FillEllipse(shape.box);
        } else {
          g->DrawEllipse(shape.box);
        }
        break;
      case DrawData::ShapeKind::kText:
      case DrawData::ShapeKind::kObject:
        break;  // Children paint themselves.
    }
    g->SetLineWidth(1);
  }
  // Selection handles.
  if (selected_ >= 0 && selected_ < data->shape_count()) {
    const DrawData::Shape& shape = data->shape(selected_);
    Rect box = shape.box;
    if (shape.kind == DrawData::ShapeKind::kLine ||
        shape.kind == DrawData::ShapeKind::kPolyline) {
      box = Rect{};
      for (const Point& p : shape.points) {
        box = box.Union(Rect{p.x, p.y, 1, 1});
      }
    }
    box = box.Inset(-2);
    g->SetForeground(kGray);
    g->DrawRect(box);
    for (Point corner : {Point{box.left(), box.top()}, Point{box.right() - 1, box.top()},
                         Point{box.left(), box.bottom() - 1},
                         Point{box.right() - 1, box.bottom() - 1}}) {
      g->FillRect(Rect{corner.x - 1, corner.y - 1, 3, 3}, kBlack);
    }
  }
}

Size DrawView::DesiredSize(Size available) {
  DrawData* data = drawing();
  if (data == nullptr) {
    return Size{80, 60};
  }
  Rect bounds = data->ContentBounds();
  Size desired{bounds.right() + 4, bounds.bottom() + 4};
  desired.width = std::max(desired.width, 40);
  desired.height = std::max(desired.height, 30);
  if (available.width > 0) {
    desired.width = std::min(desired.width, available.width);
  }
  if (available.height > 0) {
    desired.height = std::min(desired.height, available.height);
  }
  return desired;
}

View* DrawView::Hit(const InputEvent& event) {
  DrawData* data = drawing();
  if (data == nullptr) {
    return nullptr;
  }
  switch (event.type) {
    case EventType::kMouseDown: {
      // The §3 decision: only this view can judge whether a click near a
      // line over a text block selects the line or goes to the text.
      int index = data->ShapeAt(event.pos);
      if (index >= 0) {
        const DrawData::Shape& shape = data->shape(index);
        if (shape.kind != DrawData::ShapeKind::kText &&
            shape.kind != DrawData::ShapeKind::kObject) {
          SelectShape(index);
          dragging_ = true;
          drag_last_ = event.pos;
          RequestInputFocus();
          return this;
        }
        // Text/object shape: hand the event to the child view.
        const void* key =
            shape.kind == DrawData::ShapeKind::kText
                ? static_cast<const void*>(shape.text.get())
                : static_cast<const void*>(shape.object.get());
        auto it = child_views_.find(key);
        if (it != child_views_.end()) {
          SelectShape(index);
          View* taken = it->second->Hit(TranslateToChild(event, *it->second));
          if (taken != nullptr) {
            return taken;
          }
        }
      }
      SelectShape(-1);
      return this;  // Empty canvas click still claims focus for the drawing.
    }
    case EventType::kMouseDrag:
      if (dragging_ && selected_ >= 0) {
        data->MoveShape(selected_, event.pos.x - drag_last_.x, event.pos.y - drag_last_.y);
        drag_last_ = event.pos;
        return this;
      }
      return this;
    case EventType::kMouseUp:
      dragging_ = false;
      return this;
    default:
      return nullptr;
  }
}

void DrawView::FillMenus(MenuList& menus) {
  menus.Add("Draw~Delete Shape", "drawview-delete-shape");
}

void DrawView::ObservedChanged(Observable* changed, const Change& change) {
  if (change.kind == Change::Kind::kDestroyed) {
    View::ObservedChanged(changed, change);
    return;
  }
  if (selected_ >= 0 && drawing() != nullptr && selected_ >= drawing()->shape_count()) {
    selected_ = -1;
  }
  if (HasGraphic()) {
    Layout();
  }
  PostUpdate();
}

void RegisterDrawingModule() {
  static bool done = [] {
    RegisterTextModule();  // Dependency must be declared for Require to work.
    ModuleSpec spec;
    spec.name = "drawing";
    spec.provides = {"draw", "drawview"};
    spec.text_bytes = 56 * 1024;
    spec.data_bytes = 4 * 1024;
    spec.depends_on = {"text"};  // Text shapes embed the text component.
    spec.init = [] {
      ClassRegistry::Instance().Register(DrawData::StaticClassInfo());
      ClassRegistry::Instance().Register(DrawView::StaticClassInfo());
      SetDefaultViewName("draw", "drawview");
      ProcTable::Instance().Register("drawview-delete-shape", [](View* view, long) {
        if (DrawView* dv = ObjectCast<DrawView>(view)) {
          if (dv->drawing() != nullptr && dv->selected_shape() >= 0) {
            dv->drawing()->RemoveShape(dv->selected_shape());
          }
        }
      });
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
