#include "src/components/frame/frame_view.h"

#include <algorithm>

#include "src/class_system/loader.h"

namespace atk {

ATK_DEFINE_CLASS(MessageLineView, View, "messageline")
ATK_DEFINE_CLASS(FrameView, View, "frame")

void MessageLineView::SetMessage(std::string message) {
  message_ = std::move(message);
  PostUpdate();
}

void MessageLineView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  g->SetFont(FontSpec{"andy", 10, kPlain});
  g->SetForeground(kBlack);
  g->DrawString(Point{3, 2}, message_);
}

FrameView::FrameView() { AddChild(&message_line_); }

FrameView::~FrameView() {
  RemoveChild(&message_line_);  // Member child must not be unlinked by ~View.
}

void FrameView::SetBody(View* body) {
  if (body_ != nullptr) {
    RemoveChild(body_);
  }
  body_ = body;
  if (body_ != nullptr) {
    AddChild(body_);
  }
  Layout();
}

void FrameView::SetMessage(const std::string& message) { message_line_.SetMessage(message); }

void FrameView::AddAppMenu(const std::string& spec, const std::string& proc_name, long rock) {
  app_menus_.Add(spec, proc_name, rock);
}

void FrameView::SetDivider(int y) {
  int height = graphic() != nullptr ? graphic()->height() : 0;
  divider_ = std::clamp(y, 10, std::max(10, height - 10));
  Layout();
  PostUpdate();
}

std::string FrameView::AskUser(const std::string& prompt, const std::string& fallback) {
  last_prompt_ = prompt;
  SetMessage(prompt);
  if (!dialog_answers_.empty()) {
    std::string answer = std::move(dialog_answers_.front());
    dialog_answers_.pop_front();
    SetMessage("");
    return answer;
  }
  return fallback;
}

void FrameView::PushDialogAnswer(std::string answer) {
  dialog_answers_.push_back(std::move(answer));
}

void FrameView::Layout() {
  if (graphic() == nullptr) {
    return;
  }
  Rect b = graphic()->LocalBounds();
  message_line_.Allocate(Rect{0, 0, b.width, divider_}, graphic());
  if (body_ != nullptr) {
    body_->Allocate(Rect{0, divider_ + 1, b.width, b.height - divider_ - 1}, graphic());
  }
}

void FrameView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  g->SetForeground(kBlack);
  g->DrawLine(Point{0, divider_}, Point{g->width() - 1, divider_});
}

View* FrameView::Hit(const InputEvent& event) {
  // The grab zone overlaps the children's allocations: the frame claims
  // events near the dividing line *before* consulting its children (§3).
  switch (event.type) {
    case EventType::kMouseDown:
      if (InGrabZone(event.pos.y)) {
        dragging_divider_ = true;
        return this;
      }
      break;
    case EventType::kMouseDrag:
      if (dragging_divider_) {
        SetDivider(event.pos.y);
        return this;
      }
      break;
    case EventType::kMouseUp:
      if (dragging_divider_) {
        dragging_divider_ = false;
        SetDivider(event.pos.y);
        return this;
      }
      break;
    default:
      break;
  }
  return View::Hit(event);
}

CursorShape FrameView::CursorAt(Point local) {
  if (InGrabZone(local.y)) {
    return CursorShape::kHorizontalBars;
  }
  return View::CursorAt(local);
}

void RegisterFrameModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "frame";
    spec.provides = {"frame", "messageline"};
    spec.text_bytes = 22 * 1024;
    spec.data_bytes = 2 * 1024;
    spec.init = [] {
      ClassRegistry::Instance().Register(FrameView::StaticClassInfo());
      ClassRegistry::Instance().Register(MessageLineView::StaticClassInfo());
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
