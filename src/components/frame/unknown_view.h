// UnknownView — the graceful-degradation placeholder.
//
// When an embedded object's view class cannot be resolved (its module failed
// to load, or the type is genuinely unknown — e.g. a salvager `lostfound`
// quarantine), the document must still open: the paper's dynamic-loading
// story only works if a missing module degrades a component, not the whole
// editor.  UnknownView renders a gray box naming the missing type; the data
// object underneath is preserved untouched (UnknownObject keeps the raw
// body), so saving the document loses nothing.

#ifndef ATK_SRC_COMPONENTS_FRAME_UNKNOWN_VIEW_H_
#define ATK_SRC_COMPONENTS_FRAME_UNKNOWN_VIEW_H_

#include <string>

#include "src/base/view.h"

namespace atk {

class UnknownView : public View {
  ATK_DECLARE_CLASS(UnknownView)

 public:
  // The class/type name that could not be resolved, shown in the box.
  void SetMissingType(std::string type);
  // Falls back to the data object's type name when none was set explicitly.
  std::string MissingType() const;

  Size DesiredSize(Size available) override;
  void FullUpdate() override;

 private:
  std::string missing_type_;
};

// Registers the "unknownview" class eagerly (not module-gated): the
// placeholder must be constructible precisely when module loading fails.
void RegisterUnknownView();

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_FRAME_UNKNOWN_VIEW_H_
