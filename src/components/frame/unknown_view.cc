#include "src/components/frame/unknown_view.h"

#include <algorithm>

namespace atk {

ATK_DEFINE_CLASS(UnknownView, View, "unknownview")

void UnknownView::SetMissingType(std::string type) {
  missing_type_ = std::move(type);
  PostUpdate();
}

std::string UnknownView::MissingType() const {
  if (!missing_type_.empty()) {
    return missing_type_;
  }
  if (data_object() != nullptr) {
    return std::string(data_object()->DataTypeName());
  }
  return "?";
}

Size UnknownView::DesiredSize(Size available) {
  Size desired{140, 36};
  if (available.width > 0) {
    desired.width = std::min(desired.width, available.width);
  }
  if (available.height > 0) {
    desired.height = std::min(desired.height, available.height);
  }
  return desired;
}

void UnknownView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  Rect box = g->LocalBounds();
  g->FillRect(box, kGray);
  g->SetForeground(kDarkGray);
  g->DrawRect(box);
  g->SetFont(FontSpec{"andy", 10, kPlain});
  g->SetForeground(kBlack);
  g->DrawString(Point{4, std::max(0, box.height / 2 - 6)}, "missing: " + MissingType());
}

void RegisterUnknownView() {
  static bool done = [] {
    ClassRegistry::Instance().Register(UnknownView::StaticClassInfo());
    return true;
  }();
  (void)done;
}

}  // namespace atk
