// FrameView — the application chrome from the paper's view-tree figure: a
// message line across the top, a body below, and a dividing line the user
// can drag.
//
// Two details from §3 are reproduced faithfully:
//  * the frame "allocates a slightly larger area to accept mouse events"
//    around the divider, overlapping the space of its children — possible
//    only because parents control event disposition;
//  * the frame (with the message line) provides the dialog-box facility the
//    figure's footnote mentions; dialogs are modal questions answered
//    through an injectable answer queue so headless tests can script them.

#ifndef ATK_SRC_COMPONENTS_FRAME_FRAME_VIEW_H_
#define ATK_SRC_COMPONENTS_FRAME_FRAME_VIEW_H_

#include <deque>
#include <string>

#include "src/base/view.h"

namespace atk {

// The transient one-line message display.
class MessageLineView : public View {
  ATK_DECLARE_CLASS(MessageLineView)

 public:
  void SetMessage(std::string message);
  const std::string& message() const { return message_; }
  void FullUpdate() override;

 private:
  std::string message_;
};

class FrameView : public View {
  ATK_DECLARE_CLASS(FrameView)

 public:
  // Half-width of the divider's grab zone (extends into the children).
  static constexpr int kGrabSlop = 3;

  FrameView();
  ~FrameView() override;

  void SetBody(View* body);
  View* body() const { return body_; }
  MessageLineView* message_line() { return &message_line_; }

  // Transient status text (§3 figure's message line).
  void SetMessage(const std::string& message);

  // Divider position = height of the message line area.
  int divider() const { return divider_; }
  void SetDivider(int y);

  // ---- Dialog facility ----
  // Asks a modal question.  The answer comes from the scripted queue
  // (PushDialogAnswer); with no scripted answer, `fallback` is returned.
  std::string AskUser(const std::string& prompt, const std::string& fallback = "");
  void PushDialogAnswer(std::string answer);
  const std::string& last_prompt() const { return last_prompt_; }

  // ---- Application menus ----
  // Items the hosting application contributes (the frame sits on every
  // focus path, so these appear regardless of which inner view has focus).
  void AddAppMenu(const std::string& spec, const std::string& proc_name, long rock = 0);
  void FillMenus(MenuList& menus) override { menus.Append(app_menus_); }

  // ---- View protocol ----
  void Layout() override;
  void FullUpdate() override;
  View* Hit(const InputEvent& event) override;
  CursorShape CursorAt(Point local) override;

 private:
  bool InGrabZone(int y) const {
    return y >= divider_ - kGrabSlop && y <= divider_ + kGrabSlop;
  }

  View* body_ = nullptr;
  MessageLineView message_line_;
  int divider_ = 18;
  bool dragging_divider_ = false;
  std::deque<std::string> dialog_answers_;
  std::string last_prompt_;
  MenuList app_menus_;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_FRAME_FRAME_VIEW_H_
