// Declaration of every component module registrar.  Each Register*Module
// declares its loader module (idempotently); none of them *loads* anything —
// classes stay dormant until the Loader pulls them in on demand.
//
// RegisterStandardModules (src/apps/standard_modules.cc) calls all of these,
// playing the role of runapp's statically known module table.

#ifndef ATK_SRC_COMPONENTS_MODULES_H_
#define ATK_SRC_COMPONENTS_MODULES_H_

namespace atk {

void RegisterTextModule();
void RegisterTableModule();
void RegisterDrawingModule();
void RegisterEquationModule();
void RegisterRasterModule();
void RegisterAnimationModule();
void RegisterScrollModule();
void RegisterFrameModule();
void RegisterWidgetsModule();

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_MODULES_H_
