// MenuView — the pop-up menu renderer.
//
// The 1988 Andrew UI used pop-up menu "cards".  The interaction manager
// composes a MenuList along the focus path (§3); MenuView renders that list
// as a card of items grouped by card name, tracks the highlighted item
// under the mouse, and reports the chosen "Card~Label" on release.  The IM
// can host one as a transient overlay (PopupMenus/DismissMenus).

#ifndef ATK_SRC_COMPONENTS_WIDGETS_MENU_VIEW_H_
#define ATK_SRC_COMPONENTS_WIDGETS_MENU_VIEW_H_

#include <functional>
#include <string>
#include <vector>

#include "src/base/menu_popup.h"
#include "src/base/menus.h"
#include "src/base/view.h"

namespace atk {

class MenuView : public MenuPopupView {
  ATK_DECLARE_CLASS(MenuView)

 public:
  MenuView();

  // Installs the composed menu list to display.
  void SetMenus(const MenuList& menus) override;
  // Called with the chosen "Card~Label" on mouse release over an item
  // (empty string when dismissed by releasing outside).
  void SetOnChoose(std::function<void(const std::string&)> on_choose) override {
    on_choose_ = std::move(on_choose);
  }

  // Rows as rendered: headers (card names) and items, top to bottom.
  struct Row {
    bool is_header = false;
    std::string card;
    std::string label;
  };
  const std::vector<Row>& rows() const { return rows_; }
  int highlighted() const { return highlighted_; }
  int RowHeight() const;
  // The row index at a local point, or -1.
  int RowAt(Point p) const;

  void FullUpdate() override;
  Size DesiredSize(Size available) override;
  View* Hit(const InputEvent& event) override;

 private:
  void RebuildRows();

  MenuList menus_;
  std::vector<Row> rows_;
  std::function<void(const std::string&)> on_choose_;
  int highlighted_ = -1;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_WIDGETS_MENU_VIEW_H_
