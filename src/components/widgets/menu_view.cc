#include "src/components/widgets/menu_view.h"

#include <algorithm>

namespace atk {

ATK_DEFINE_CLASS(MenuView, MenuPopupView, "menuview")

MenuView::MenuView() { SetPreferredCursor(CursorShape::kArrow); }

void MenuView::SetMenus(const MenuList& menus) {
  menus_.Clear();
  menus_.Append(menus);
  menus_.SetActiveMask(menus.active_mask());
  RebuildRows();
  PostUpdate();
}

void MenuView::RebuildRows() {
  rows_.clear();
  // Group items under their card headers, preserving first-seen card order.
  std::vector<std::string> cards;
  for (const MenuItem* item : menus_.Visible()) {
    if (std::find(cards.begin(), cards.end(), item->card) == cards.end()) {
      cards.push_back(item->card);
    }
  }
  for (const std::string& card : cards) {
    Row header;
    header.is_header = true;
    header.card = card;
    header.label = card;
    rows_.push_back(std::move(header));
    for (const MenuItem* item : menus_.Visible()) {
      if (item->card == card) {
        Row row;
        row.card = item->card;
        row.label = item->label;
        rows_.push_back(std::move(row));
      }
    }
  }
  highlighted_ = -1;
}

int MenuView::RowHeight() const { return Font::Default().height() + 3; }

int MenuView::RowAt(Point p) const {
  if (p.y < 0 || graphic() == nullptr || p.x < 0 || p.x >= graphic()->width()) {
    return -1;
  }
  int index = p.y / RowHeight();
  return index < static_cast<int>(rows_.size()) ? index : -1;
}

void MenuView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->FillRect(g->LocalBounds(), kWhite);
  g->SetForeground(kBlack);
  g->DrawRect(g->LocalBounds());
  int row_h = RowHeight();
  for (size_t i = 0; i < rows_.size(); ++i) {
    const Row& row = rows_[i];
    int y = static_cast<int>(i) * row_h;
    if (row.is_header) {
      g->FillRect(Rect{1, y, g->width() - 2, row_h}, kLightGray);
      g->SetFont(FontSpec{"andy", 10, kBold});
      g->SetForeground(kBlack);
      g->DrawString(Point{4, y + 2}, row.label);
      continue;
    }
    bool lit = static_cast<int>(i) == highlighted_;
    if (lit) {
      g->FillRect(Rect{1, y, g->width() - 2, row_h}, kBlack);
    }
    g->SetFont(FontSpec{"andy", 10, kPlain});
    g->SetForeground(lit ? kWhite : kBlack);
    g->DrawString(Point{10, y + 2}, row.label);
  }
}

Size MenuView::DesiredSize(Size available) {
  const Font& font = Font::Default();
  int width = 40;
  for (const Row& row : rows_) {
    width = std::max(width, font.StringWidth(row.label) + 16);
  }
  Size desired{width, static_cast<int>(rows_.size()) * RowHeight() + 2};
  if (available.width > 0) {
    desired.width = std::min(desired.width, available.width);
  }
  if (available.height > 0) {
    desired.height = std::min(desired.height, available.height);
  }
  return desired;
}

View* MenuView::Hit(const InputEvent& event) {
  switch (event.type) {
    case EventType::kMouseDown:
    case EventType::kMouseDrag: {
      int row = RowAt(event.pos);
      int next = (row >= 0 && !rows_[static_cast<size_t>(row)].is_header) ? row : -1;
      if (next != highlighted_) {
        highlighted_ = next;
        PostUpdate();
      }
      return this;
    }
    case EventType::kMouseUp: {
      std::string choice;
      int row = RowAt(event.pos);
      if (row >= 0 && !rows_[static_cast<size_t>(row)].is_header) {
        choice = rows_[static_cast<size_t>(row)].card + "~" +
                 rows_[static_cast<size_t>(row)].label;
      }
      highlighted_ = -1;
      PostUpdate();
      if (on_choose_) {
        on_choose_(choice);
      }
      return this;
    }
    default:
      return nullptr;
  }
}

}  // namespace atk
