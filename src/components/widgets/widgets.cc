#include "src/components/widgets/widgets.h"

#include <algorithm>

#include "src/base/proctable.h"
#include "src/class_system/loader.h"
#include "src/components/widgets/menu_view.h"

namespace atk {

ATK_DEFINE_CLASS(LabelView, View, "label")
ATK_DEFINE_CLASS(ButtonView, View, "button")
ATK_DEFINE_CLASS(ListView, View, "listview")

// ---- LabelView ------------------------------------------------------------

void LabelView::SetLabel(std::string text) {
  text_ = std::move(text);
  PostUpdate();
}

void LabelView::SetFont(const FontSpec& spec) {
  font_ = spec;
  PostUpdate();
}

void LabelView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  g->SetFont(font_);
  g->SetForeground(kBlack);
  g->DrawString(Point{2, (g->height() - Font::Get(font_).height()) / 2}, text_);
}

Size LabelView::DesiredSize(Size available) {
  const Font& font = Font::Get(font_);
  Size desired{font.StringWidth(text_) + 4, font.height() + 4};
  if (available.width > 0) {
    desired.width = std::min(desired.width, available.width);
  }
  return desired;
}

// ---- ButtonView ------------------------------------------------------------

void ButtonView::SetLabel(std::string label) {
  label_ = std::move(label);
  PostUpdate();
}

void ButtonView::SetProc(std::string proc_name, long rock) {
  proc_name_ = std::move(proc_name);
  rock_ = rock;
}

void ButtonView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  Rect box = g->LocalBounds();
  g->FillRect(box, pressed_ ? kDarkGray : kLightGray);
  g->SetForeground(kBlack);
  g->DrawRect(box);
  g->SetFont(FontSpec{"andy", 10, kPlain});
  g->SetForeground(pressed_ ? kWhite : kBlack);
  const Font& font = Font::Default();
  int tx = (box.width - font.StringWidth(label_)) / 2;
  int ty = (box.height - font.height()) / 2;
  g->DrawString(Point{std::max(2, tx), std::max(1, ty)}, label_);
}

Size ButtonView::DesiredSize(Size available) {
  (void)available;
  const Font& font = Font::Default();
  return Size{font.StringWidth(label_) + 12, font.height() + 8};
}

View* ButtonView::Hit(const InputEvent& event) {
  switch (event.type) {
    case EventType::kMouseDown:
      pressed_ = true;
      PostUpdate();
      return this;
    case EventType::kMouseUp: {
      bool inside = graphic() != nullptr && graphic()->LocalBounds().Contains(event.pos);
      pressed_ = false;
      PostUpdate();
      if (inside) {
        ++clicks_;
        if (action_) {
          action_();
        } else if (!proc_name_.empty()) {
          ProcTable::Instance().Invoke(proc_name_, this, rock_);
        }
      }
      return this;
    }
    case EventType::kMouseDrag:
      return this;
    default:
      return nullptr;
  }
}

// ---- ListView ---------------------------------------------------------------

ListView::ListView() { SetPreferredCursor(CursorShape::kArrow); }

void ListView::SetItems(std::vector<std::string> items) {
  items_ = std::move(items);
  selected_ = items_.empty() ? -1 : std::min<int>(selected_, static_cast<int>(items_.size()) - 1);
  first_visible_ = 0;
  PostUpdate();
}

void ListView::AddItem(std::string item) {
  items_.push_back(std::move(item));
  PostUpdate();
}

void ListView::ClearItems() {
  items_.clear();
  selected_ = -1;
  first_visible_ = 0;
  PostUpdate();
}

void ListView::Select(int index) {
  if (index < -1 || index >= static_cast<int>(items_.size())) {
    return;
  }
  if (selected_ != index) {
    selected_ = index;
    PostUpdate();
    if (on_select_ && index >= 0) {
      on_select_(index);
    }
  }
}

const std::string* ListView::SelectedItem() const {
  if (selected_ < 0 || selected_ >= static_cast<int>(items_.size())) {
    return nullptr;
  }
  return &items_[static_cast<size_t>(selected_)];
}

int ListView::RowHeight() const { return Font::Default().height() + 2; }

int ListView::RowsVisible() const {
  if (graphic() == nullptr) {
    return 1;
  }
  return std::max(1, graphic()->height() / RowHeight());
}

ScrollInfo ListView::GetScrollInfo() const {
  ScrollInfo info;
  info.total = static_cast<int64_t>(items_.size());
  info.first_visible = first_visible_;
  info.visible = std::min<int64_t>(RowsVisible(), info.total - first_visible_);
  return info;
}

void ListView::ScrollToUnit(int64_t unit) {
  first_visible_ = std::clamp<int64_t>(unit, 0, std::max<int64_t>(0, items_.size() - 1));
  PostUpdate();
}

void ListView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  g->SetFont(FontSpec{"andy", 10, kPlain});
  int row_h = RowHeight();
  int rows = RowsVisible();
  for (int row = 0; row < rows; ++row) {
    int64_t index = first_visible_ + row;
    if (index >= static_cast<int64_t>(items_.size())) {
      break;
    }
    int y = row * row_h;
    if (static_cast<int>(index) == selected_) {
      g->FillRect(Rect{0, y, g->width(), row_h}, kBlack);
      g->SetForeground(kWhite);
    } else {
      g->SetForeground(kBlack);
    }
    g->DrawString(Point{3, y + 1}, items_[static_cast<size_t>(index)]);
  }
}

View* ListView::Hit(const InputEvent& event) {
  if (event.type != EventType::kMouseDown) {
    return event.type == EventType::kMouseUp || event.type == EventType::kMouseDrag ? this
                                                                                    : nullptr;
  }
  int64_t index = first_visible_ + event.pos.y / RowHeight();
  if (index >= 0 && index < static_cast<int64_t>(items_.size())) {
    Select(static_cast<int>(index));
  }
  RequestInputFocus();
  return this;
}

bool ListView::HandleKey(char key, unsigned modifiers) {
  (void)modifiers;
  if (key == 'n' || key == Ctl('n')) {
    Select(std::min(selected_ + 1, static_cast<int>(items_.size()) - 1));
    return true;
  }
  if (key == 'p' || key == Ctl('p')) {
    Select(std::max(selected_ - 1, 0));
    return true;
  }
  return false;
}

Size ListView::DesiredSize(Size available) {
  const Font& font = Font::Default();
  int max_width = 20;
  for (const std::string& item : items_) {
    max_width = std::max(max_width, font.StringWidth(item) + 6);
  }
  Size desired{max_width, static_cast<int>(items_.size()) * RowHeight()};
  if (available.width > 0) {
    desired.width = std::min(desired.width, available.width);
  }
  if (available.height > 0) {
    desired.height = std::min(desired.height, available.height);
  }
  return desired;
}

void RegisterWidgetsModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "widgets";
    spec.provides = {"label", "button", "listview", "menuview"};
    spec.text_bytes = 26 * 1024;
    spec.data_bytes = 2 * 1024;
    spec.init = [] {
      ClassRegistry::Instance().Register(LabelView::StaticClassInfo());
      ClassRegistry::Instance().Register(ButtonView::StaticClassInfo());
      ClassRegistry::Instance().Register(ListView::StaticClassInfo());
      ClassRegistry::Instance().Register(MenuView::StaticClassInfo());
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
