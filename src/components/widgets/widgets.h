// Simple chrome widgets: labels, push buttons, and the string-list view used
// by the messages and help applications (folder lists, message captions,
// topic indexes).  These are the "usual set of simple components" of §1.

#ifndef ATK_SRC_COMPONENTS_WIDGETS_WIDGETS_H_
#define ATK_SRC_COMPONENTS_WIDGETS_WIDGETS_H_

#include <functional>
#include <string>
#include <vector>

#include "src/base/scrollable.h"
#include "src/base/view.h"

namespace atk {

class LabelView : public View {
  ATK_DECLARE_CLASS(LabelView)

 public:
  LabelView() = default;
  explicit LabelView(std::string text) : text_(std::move(text)) {}

  void SetLabel(std::string text);
  const std::string& label() const { return text_; }
  void SetFont(const FontSpec& spec);

  void FullUpdate() override;
  Size DesiredSize(Size available) override;

 private:
  std::string text_;
  FontSpec font_{"andy", 10, kPlain};
};

class ButtonView : public View {
  ATK_DECLARE_CLASS(ButtonView)

 public:
  ButtonView() = default;
  ButtonView(std::string label, std::string proc_name, long rock = 0)
      : label_(std::move(label)), proc_name_(std::move(proc_name)), rock_(rock) {}

  void SetLabel(std::string label);
  const std::string& label() const { return label_; }
  // The proc invoked on click (through the ProcTable, so a button can fire a
  // command from a module not yet loaded).
  void SetProc(std::string proc_name, long rock = 0);
  // Direct callback alternative for in-process wiring.
  void SetAction(std::function<void()> action) { action_ = std::move(action); }

  bool pressed() const { return pressed_; }
  int click_count() const { return clicks_; }

  void FullUpdate() override;
  Size DesiredSize(Size available) override;
  View* Hit(const InputEvent& event) override;

 private:
  std::string label_;
  std::string proc_name_;
  long rock_ = 0;
  std::function<void()> action_;
  bool pressed_ = false;
  int clicks_ = 0;
};

// A scrollable list of selectable strings.
class ListView : public View, public Scrollable {
  ATK_DECLARE_CLASS(ListView)

 public:
  ListView();

  void SetItems(std::vector<std::string> items);
  const std::vector<std::string>& items() const { return items_; }
  void AddItem(std::string item);
  void ClearItems();

  int selected() const { return selected_; }
  void Select(int index);
  const std::string* SelectedItem() const;
  // Called whenever the selection changes by click or Select().
  void SetOnSelect(std::function<void(int)> on_select) { on_select_ = std::move(on_select); }

  // ---- Scrollable ----
  ScrollInfo GetScrollInfo() const override;
  void ScrollToUnit(int64_t unit) override;

  // ---- View protocol ----
  void FullUpdate() override;
  View* Hit(const InputEvent& event) override;
  bool HandleKey(char key, unsigned modifiers) override;
  Size DesiredSize(Size available) override;

  int RowHeight() const;
  int64_t first_visible() const { return first_visible_; }

 private:
  int RowsVisible() const;

  std::vector<std::string> items_;
  int selected_ = -1;
  int64_t first_visible_ = 0;
  std::function<void(int)> on_select_;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_WIDGETS_WIDGETS_H_
