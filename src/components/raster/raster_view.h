// RasterView — displays a RasterData, integer-scaled to its allocation, and
// supports pixel toggling with the mouse (a minimal raster editor).

#ifndef ATK_SRC_COMPONENTS_RASTER_RASTER_VIEW_H_
#define ATK_SRC_COMPONENTS_RASTER_RASTER_VIEW_H_

#include "src/base/view.h"
#include "src/components/raster/raster_data.h"

namespace atk {

class RasterView : public View {
  ATK_DECLARE_CLASS(RasterView)

 public:
  RasterData* raster() const { return ObjectCast<RasterData>(data_object()); }

  void FullUpdate() override;
  Size DesiredSize(Size available) override;
  View* Hit(const InputEvent& event) override;

  // Pixels per raster cell under the current allocation.
  int Scale() const;

 private:
  bool paint_value_ = true;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_RASTER_RASTER_VIEW_H_
