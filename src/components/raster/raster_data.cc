#include "src/components/raster/raster_data.h"

#include <cstdio>

namespace atk {

ATK_DEFINE_CLASS(RasterData, DataObject, "raster")

RasterData::RasterData() : RasterData(16, 16) {}

RasterData::RasterData(int width, int height) { Reset(width, height); }

RasterData::~RasterData() = default;

void RasterData::Reset(int width, int height) {
  width_ = std::max(width, 0);
  height_ = std::max(height, 0);
  bits_.assign(static_cast<size_t>(width_) * height_, false);
  NotifyModified();
}

void RasterData::NotifyModified() {
  Change change;
  change.kind = Change::Kind::kModified;
  NotifyObservers(change);
}

bool RasterData::Get(int x, int y) const {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) {
    return false;
  }
  return bits_[Index(x, y)];
}

void RasterData::Set(int x, int y, bool on) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) {
    return;
  }
  bits_[Index(x, y)] = on;
  Change change;
  change.kind = Change::Kind::kReplaced;
  change.pos = y;
  change.detail = x;
  NotifyObservers(change);
}

void RasterData::SetRow(int y, const std::vector<bool>& bits) {
  if (y < 0 || y >= height_) {
    return;
  }
  for (int x = 0; x < width_ && x < static_cast<int>(bits.size()); ++x) {
    bits_[Index(x, y)] = bits[static_cast<size_t>(x)];
  }
  NotifyModified();
}

void RasterData::Invert() {
  for (size_t i = 0; i < bits_.size(); ++i) {
    bits_[i] = !bits_[i];
  }
  NotifyModified();
}

int64_t RasterData::Population() const {
  int64_t count = 0;
  for (bool bit : bits_) {
    count += bit ? 1 : 0;
  }
  return count;
}

void RasterData::FromImage(const PixelImage& image) {
  width_ = image.width();
  height_ = image.height();
  bits_.assign(static_cast<size_t>(width_) * height_, false);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      bits_[Index(x, y)] = image.GetPixel(x, y).Luminance() < 128;
    }
  }
  NotifyModified();
}

PixelImage RasterData::ToImage() const {
  PixelImage image(width_, height_, kWhite);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      if (bits_[Index(x, y)]) {
        image.SetPixel(x, y, kBlack);
      }
    }
  }
  return image;
}

void RasterData::WriteBody(DataStreamWriter& writer) const {
  writer.WriteDirective("rasterdim", std::to_string(width_) + "," + std::to_string(height_));
  writer.WriteNewline();
  // One hex line per row, 4 pixels per nibble, MSB-first.
  for (int y = 0; y < height_; ++y) {
    std::string line;
    line.reserve(static_cast<size_t>((width_ + 3) / 4));
    for (int x = 0; x < width_; x += 4) {
      int nibble = 0;
      for (int b = 0; b < 4; ++b) {
        nibble <<= 1;
        if (x + b < width_ && bits_[Index(x + b, y)]) {
          nibble |= 1;
        }
      }
      line += "0123456789abcdef"[nibble];
    }
    writer.WriteLine(line);
  }
}

bool RasterData::ReadBody(DataStreamReader& reader, ReadContext& context) {
  (void)context;
  using Kind = DataStreamReader::Token::Kind;
  int y = 0;
  std::string carry;
  auto consume_line = [&](const std::string& line) {
    if (y >= height_ || line.empty()) {
      return;
    }
    int x = 0;
    for (char ch : line) {
      int nibble = -1;
      if (ch >= '0' && ch <= '9') {
        nibble = ch - '0';
      } else if (ch >= 'a' && ch <= 'f') {
        nibble = ch - 'a' + 10;
      } else if (ch >= 'A' && ch <= 'F') {
        nibble = ch - 'A' + 10;
      } else {
        continue;
      }
      for (int b = 3; b >= 0; --b) {
        if (x < width_) {
          bits_[Index(x, y)] = (nibble >> b) & 1;
        }
        ++x;
      }
    }
    ++y;
  };
  while (true) {
    DataStreamReader::Token token = reader.Next();
    if (token.kind == Kind::kEndData || token.kind == Kind::kEof) {
      if (!carry.empty()) {
        consume_line(carry);
      }
      NotifyModified();
      return token.kind == Kind::kEndData;
    }
    if (token.kind == Kind::kDirective && token.type == "rasterdim") {
      int w = 0;
      int h = 0;
      std::string args(token.text);
      if (std::sscanf(args.c_str(), "%d,%d", &w, &h) == 2) {
        width_ = std::max(w, 0);
        height_ = std::max(h, 0);
        bits_.assign(static_cast<size_t>(width_) * height_, false);
        y = 0;
      }
    } else if (token.kind == Kind::kText) {
      carry += token.text;
      size_t nl;
      while ((nl = carry.find('\n')) != std::string::npos) {
        consume_line(carry.substr(0, nl));
        carry.erase(0, nl + 1);
      }
    } else if (token.kind == Kind::kBeginData) {
      reader.SkipObject(token.type, token.id);
    }
  }
}

}  // namespace atk
