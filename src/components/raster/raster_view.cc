#include "src/components/raster/raster_view.h"

#include <algorithm>

#include "src/base/default_views.h"
#include "src/class_system/loader.h"

namespace atk {

ATK_DEFINE_CLASS(RasterView, View, "rasterview")

int RasterView::Scale() const {
  RasterData* data = raster();
  if (data == nullptr || graphic() == nullptr || data->width() == 0 || data->height() == 0) {
    return 1;
  }
  int sx = graphic()->width() / data->width();
  int sy = graphic()->height() / data->height();
  return std::max(1, std::min(sx, sy));
}

void RasterView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  RasterData* data = raster();
  if (data == nullptr) {
    return;
  }
  int scale = Scale();
  for (int y = 0; y < data->height(); ++y) {
    for (int x = 0; x < data->width(); ++x) {
      if (data->Get(x, y)) {
        g->FillRect(Rect{x * scale, y * scale, scale, scale}, kBlack);
      }
    }
  }
  g->SetForeground(kGray);
  g->DrawRect(Rect{0, 0, data->width() * scale, data->height() * scale});
}

Size RasterView::DesiredSize(Size available) {
  RasterData* data = raster();
  Size desired{32, 32};
  if (data != nullptr) {
    desired = Size{data->width(), data->height()};
    // Prefer 2x magnification when there is room.
    if (available.width >= data->width() * 2 && available.height >= data->height() * 2) {
      desired = Size{data->width() * 2, data->height() * 2};
    }
  }
  if (available.width > 0) {
    desired.width = std::min(desired.width, available.width);
  }
  if (available.height > 0) {
    desired.height = std::min(desired.height, available.height);
  }
  return desired;
}

View* RasterView::Hit(const InputEvent& event) {
  RasterData* data = raster();
  if (data == nullptr) {
    return nullptr;
  }
  int scale = Scale();
  int x = event.pos.x / scale;
  int y = event.pos.y / scale;
  switch (event.type) {
    case EventType::kMouseDown:
      paint_value_ = !data->Get(x, y);
      data->Set(x, y, paint_value_);
      RequestInputFocus();
      return this;
    case EventType::kMouseDrag:
      data->Set(x, y, paint_value_);
      return this;
    case EventType::kMouseUp:
      return this;
    default:
      return nullptr;
  }
}

void RegisterRasterModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "raster";
    spec.provides = {"raster", "rasterview"};
    spec.text_bytes = 28 * 1024;
    spec.data_bytes = 2 * 1024;
    spec.init = [] {
      ClassRegistry::Instance().Register(RasterData::StaticClassInfo());
      ClassRegistry::Instance().Register(RasterView::StaticClassInfo());
      SetDefaultViewName("raster", "rasterview");
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
