// RasterData — the 1-bit raster image component (snapshot 4 embeds one in a
// mail message).
//
// The external representation follows §5's advice for binary-ish data: pure
// 7-bit hex, and "the raster format could make sure the bits representing a
// new row always begin on a new line" — each row is one hex line, and rows
// are kept under 80 columns by construction for rasters up to 300 px wide.

#ifndef ATK_SRC_COMPONENTS_RASTER_RASTER_DATA_H_
#define ATK_SRC_COMPONENTS_RASTER_RASTER_DATA_H_

#include <string>
#include <vector>

#include "src/base/data_object.h"
#include "src/graphics/pixel_image.h"

namespace atk {

class RasterData : public DataObject {
  ATK_DECLARE_CLASS(RasterData)

 public:
  RasterData();
  RasterData(int width, int height);
  ~RasterData() override;

  int width() const { return width_; }
  int height() const { return height_; }

  void Reset(int width, int height);
  bool Get(int x, int y) const;
  void Set(int x, int y, bool on);
  // Batch mutation without per-pixel notification; notifies once.
  void SetRow(int y, const std::vector<bool>& bits);
  void Invert();
  // Count of set bits.
  int64_t Population() const;

  // Thresholded import from an RGB image (luminance < 128 -> set).
  void FromImage(const PixelImage& image);
  // Renders into black/white RGB.
  PixelImage ToImage() const;

  void WriteBody(DataStreamWriter& writer) const override;
  bool ReadBody(DataStreamReader& reader, ReadContext& context) override;

 private:
  size_t Index(int x, int y) const {
    return static_cast<size_t>(y) * static_cast<size_t>(width_) + static_cast<size_t>(x);
  }
  void NotifyModified();

  int width_ = 0;
  int height_ = 0;
  std::vector<bool> bits_;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_RASTER_RASTER_DATA_H_
