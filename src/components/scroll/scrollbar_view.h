// ScrollBarView — §2's example of a view with no data object: "It only
// adjusts the information contained in another view."
//
// Following the paper's view-tree figure, the scroll bar *wraps* the view it
// adorns: the body view is the scroll bar's one child, the bar itself
// occupying a strip on the left (the classic Andrew placement).  The body
// must implement Scrollable; the bar renders an elevator proportional to the
// visible fraction and translates clicks/drags into ScrollToUnit calls.

#ifndef ATK_SRC_COMPONENTS_SCROLL_SCROLLBAR_VIEW_H_
#define ATK_SRC_COMPONENTS_SCROLL_SCROLLBAR_VIEW_H_

#include "src/base/scrollable.h"
#include "src/base/view.h"

namespace atk {

class ScrollBarView : public View {
  ATK_DECLARE_CLASS(ScrollBarView)

 public:
  static constexpr int kBarWidth = 14;

  ScrollBarView();

  // Wraps `body` (also linked as the child).  `scrollable` defaults to
  // dynamic_cast<Scrollable*>(body).
  void SetBody(View* body, Scrollable* scrollable = nullptr);
  View* body() const { return body_; }

  void Layout() override;
  void FullUpdate() override;
  View* Hit(const InputEvent& event) override;
  CursorShape CursorAt(Point local) override;

  // The elevator rectangle in local coordinates (empty when no scrollable).
  Rect ElevatorRect() const;

 private:
  void ScrollToFraction(double fraction);

  View* body_ = nullptr;
  Scrollable* scrollable_ = nullptr;
  bool dragging_ = false;
  int drag_offset_ = 0;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_SCROLL_SCROLLBAR_VIEW_H_
