#include "src/components/scroll/scrollbar_view.h"

#include <algorithm>

#include "src/base/default_views.h"
#include "src/base/proctable.h"
#include "src/class_system/loader.h"

namespace atk {

ATK_DEFINE_CLASS(ScrollBarView, View, "scrollbar")

ScrollBarView::ScrollBarView() { SetPreferredCursor(CursorShape::kVerticalBars); }

void ScrollBarView::SetBody(View* body, Scrollable* scrollable) {
  if (body_ != nullptr) {
    RemoveChild(body_);
  }
  body_ = body;
  scrollable_ = scrollable != nullptr ? scrollable : dynamic_cast<Scrollable*>(body);
  if (body_ != nullptr) {
    AddChild(body_);
  }
  Layout();
}

void ScrollBarView::Layout() {
  if (graphic() == nullptr || body_ == nullptr) {
    return;
  }
  Rect b = graphic()->LocalBounds();
  body_->Allocate(Rect{kBarWidth, 0, b.width - kBarWidth, b.height}, graphic());
}

Rect ScrollBarView::ElevatorRect() const {
  if (graphic() == nullptr || scrollable_ == nullptr) {
    return Rect{};
  }
  ScrollInfo info = scrollable_->GetScrollInfo();
  int track_height = graphic()->height() - 2;
  if (info.total <= 0 || track_height <= 4) {
    return Rect{};
  }
  int64_t total = std::max<int64_t>(info.total, 1);
  int top = 1 + static_cast<int>(track_height * info.first_visible / total);
  int height = std::max(6, static_cast<int>(track_height * info.visible / total));
  height = std::min(height, track_height - (top - 1));
  return Rect{2, top, kBarWidth - 4, height};
}

void ScrollBarView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  Rect bar{0, 0, kBarWidth, g->height()};
  g->FillRect(bar, kLightGray);
  g->SetForeground(kDarkGray);
  g->DrawLine(Point{kBarWidth - 1, 0}, Point{kBarWidth - 1, g->height() - 1});
  Rect elevator = ElevatorRect();
  if (!elevator.IsEmpty()) {
    g->FillRect(elevator, kWhite);
    g->SetForeground(kBlack);
    g->DrawRect(elevator);
  }
}

void ScrollBarView::ScrollToFraction(double fraction) {
  if (scrollable_ == nullptr) {
    return;
  }
  ScrollInfo info = scrollable_->GetScrollInfo();
  fraction = std::clamp(fraction, 0.0, 1.0);
  scrollable_->ScrollToUnit(static_cast<int64_t>(fraction * info.total));
  PostUpdate();  // The elevator moved.
}

View* ScrollBarView::Hit(const InputEvent& event) {
  // Events over the body go to the body (parental dispatch); events over the
  // bar strip are ours.
  if (event.pos.x >= kBarWidth && !dragging_) {
    return View::Hit(event);
  }
  if (scrollable_ == nullptr || graphic() == nullptr) {
    return nullptr;
  }
  int track_height = std::max(1, graphic()->height() - 2);
  Rect elevator = ElevatorRect();
  switch (event.type) {
    case EventType::kMouseDown:
      if (elevator.Contains(event.pos)) {
        dragging_ = true;
        drag_offset_ = event.pos.y - elevator.y;
      } else if (event.pos.y < elevator.y) {
        // Page up: click above the elevator.
        ScrollInfo info = scrollable_->GetScrollInfo();
        scrollable_->ScrollByUnits(-std::max<int64_t>(1, info.visible - 1));
        PostUpdate();
      } else {
        ScrollInfo info = scrollable_->GetScrollInfo();
        scrollable_->ScrollByUnits(std::max<int64_t>(1, info.visible - 1));
        PostUpdate();
      }
      return this;
    case EventType::kMouseDrag:
      if (dragging_) {
        ScrollToFraction(static_cast<double>(event.pos.y - drag_offset_ - 1) / track_height);
      }
      return this;
    case EventType::kMouseUp:
      dragging_ = false;
      return this;
    default:
      return nullptr;
  }
}

CursorShape ScrollBarView::CursorAt(Point local) {
  if (local.x < kBarWidth) {
    return CursorShape::kVerticalBars;
  }
  return View::CursorAt(local);
}

void RegisterScrollModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "scroll";
    spec.provides = {"scrollbar"};
    spec.text_bytes = 18 * 1024;
    spec.data_bytes = 1 * 1024;
    spec.init = [] {
      ClassRegistry::Instance().Register(ScrollBarView::StaticClassInfo());
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
