#include "src/components/table/chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace atk {

ATK_DEFINE_CLASS(ChartData, DataObject, "chart")
ATK_DEFINE_ABSTRACT_CLASS(ChartViewBase, View, "chartviewbase")
ATK_DEFINE_CLASS(PieChartView, ChartViewBase, "piechartview")
ATK_DEFINE_CLASS(BarChartView, ChartViewBase, "barchartview")

ChartData::ChartData() = default;

ChartData::~ChartData() {
  if (source_ != nullptr) {
    source_->RemoveObserver(this);
  }
}

void ChartData::SetSource(TableData* table) {
  if (source_ == table) {
    return;
  }
  if (source_ != nullptr) {
    source_->RemoveObserver(this);
  }
  source_ = table;
  if (source_ != nullptr) {
    source_->AddObserver(this);
  }
  Change change;
  change.kind = Change::Kind::kModified;
  NotifyObservers(change);
}

void ChartData::SetTitle(std::string title) {
  title_ = std::move(title);
  Change change;
  change.kind = Change::Kind::kAttributes;
  NotifyObservers(change);
}

void ChartData::SetColumns(int label_col, int value_col) {
  label_col_ = label_col;
  value_col_ = value_col;
  Change change;
  change.kind = Change::Kind::kAttributes;
  NotifyObservers(change);
}

void ChartData::SetRowRange(int first, int last) {
  first_row_ = first;
  last_row_ = last;
  Change change;
  change.kind = Change::Kind::kAttributes;
  NotifyObservers(change);
}

std::vector<ChartData::Slice> ChartData::Series() const {
  std::vector<Slice> series;
  if (source_ == nullptr) {
    return series;
  }
  int last = last_row_ < 0 ? source_->rows() - 1 : std::min(last_row_, source_->rows() - 1);
  for (int row = std::max(first_row_, 0); row <= last; ++row) {
    const TableData::Cell& value_cell = source_->at(row, value_col_);
    if (value_cell.kind == TableData::CellKind::kEmpty ||
        value_cell.kind == TableData::CellKind::kText ||
        value_cell.kind == TableData::CellKind::kObject || value_cell.error) {
      continue;
    }
    Slice slice;
    slice.value = source_->Value(row, value_col_);
    slice.label = source_->DisplayText(row, label_col_);
    if (slice.label.empty()) {
      slice.label = "row " + std::to_string(row + 1);
    }
    series.push_back(std::move(slice));
  }
  return series;
}

void ChartData::ObservedChanged(Observable* changed, const Change& change) {
  if (changed == source_ && change.kind == Change::Kind::kDestroyed) {
    source_ = nullptr;
    return;
  }
  // Forward down the chain: the table changed, so every chart view must
  // reconsider.  This is the paper's auxiliary-data-object update path.
  Change forwarded;
  forwarded.kind = Change::Kind::kModified;
  NotifyObservers(forwarded);
}

void ChartData::WriteBody(DataStreamWriter& writer) const {
  if (!title_.empty()) {
    writer.WriteDirective("charttitle", title_);
    writer.WriteNewline();
  }
  writer.WriteDirective("chartcols",
                        std::to_string(label_col_) + "," + std::to_string(value_col_));
  writer.WriteNewline();
  writer.WriteDirective("chartrows",
                        std::to_string(first_row_) + "," + std::to_string(last_row_));
  writer.WriteNewline();
  int64_t source_id = writer.FindObjectId(source_);
  // 0 means the table was not written before the chart in this stream; the
  // reference is then unresolvable at read time (documented ordering rule).
  writer.WriteDirective("chartsource", std::to_string(source_id));
  writer.WriteNewline();
}

bool ChartData::ReadBody(DataStreamReader& reader, ReadContext& context) {
  using Kind = DataStreamReader::Token::Kind;
  while (true) {
    DataStreamReader::Token token = reader.Next();
    switch (token.kind) {
      case Kind::kEndData:
        return true;
      case Kind::kEof:
        return false;
      case Kind::kDirective:
        if (token.type == "charttitle") {
          title_ = token.text;
        } else if (token.type == "chartcols") {
          std::string args(token.text);
          std::sscanf(args.c_str(), "%d,%d", &label_col_, &value_col_);
        } else if (token.type == "chartrows") {
          std::string args(token.text);
          std::sscanf(args.c_str(), "%d,%d", &first_row_, &last_row_);
        } else if (token.type == "chartsource") {
          int64_t id = std::atoll(std::string(token.text).c_str());
          if (context.UsesFixups()) {
            // Deferred decode: the table may still be on a worker, and
            // SetSource mutates the *table's* observer list.  Resolve and
            // wire after Phase B, when every object is decoded and merged.
            context.AddFixup([this, id](ReadContext& ctx) {
              TableData* table = ObjectCast<TableData>(ctx.Resolve(id));
              if (table != nullptr) {
                SetSource(table);
              } else if (id != 0) {
                ctx.AddError("chart source id " + std::to_string(id) + " not found");
              }
            });
          } else {
            TableData* table = ObjectCast<TableData>(context.Resolve(id));
            if (table != nullptr) {
              SetSource(table);
            } else if (id != 0) {
              context.AddError("chart source id " + std::to_string(id) + " not found");
            }
          }
        }
        break;
      case Kind::kBeginData:
        reader.SkipObject(token.type, token.id);
        break;
      default:
        break;
    }
  }
}

// ---- Views -------------------------------------------------------------------

Size ChartViewBase::DesiredSize(Size available) {
  Size desired{120, 90};
  if (available.width > 0) {
    desired.width = std::min(desired.width, available.width);
  }
  if (available.height > 0) {
    desired.height = std::min(desired.height, available.height);
  }
  return desired;
}

std::vector<ChartData::Slice> ChartViewBase::Series() const {
  if (ChartData* data = chart()) {
    return data->Series();
  }
  std::vector<ChartData::Slice> series;
  TableData* table = ObjectCast<TableData>(data_object());
  if (table == nullptr) {
    return series;
  }
  for (int row = 0; row < table->rows(); ++row) {
    const TableData::Cell& value_cell = table->at(row, 1);
    if (value_cell.kind != TableData::CellKind::kNumber &&
        value_cell.kind != TableData::CellKind::kFormula) {
      continue;
    }
    if (value_cell.error) {
      continue;
    }
    ChartData::Slice slice;
    slice.value = table->Value(row, 1);
    slice.label = table->DisplayText(row, 0);
    series.push_back(std::move(slice));
  }
  return series;
}

void ChartViewBase::DrawTitle(Graphic* g) {
  ChartData* data = chart();
  if (data == nullptr || data->title().empty()) {
    return;
  }
  g->SetFont(FontSpec{"andy", 10, kBold});
  g->SetForeground(kBlack);
  const Font& font = Font::Get(FontSpec{"andy", 10, kBold});
  int tx = (g->width() - font.StringWidth(data->title())) / 2;
  g->DrawString(Point{std::max(1, tx), 1}, data->title());
}

void PieChartView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  DrawTitle(g);
  std::vector<ChartData::Slice> series = Series();
  double total = 0;
  for (const auto& slice : series) {
    if (slice.value > 0) {
      total += slice.value;
    }
  }
  Rect area{0, kTitleHeight, g->width(), g->height() - kTitleHeight};
  if (total <= 0 || area.IsEmpty()) {
    g->SetForeground(kGray);
    g->DrawString(Point{4, area.y + 4}, "(no data)");
    return;
  }
  int radius = std::min(area.width, area.height) / 2 - 2;
  Point center = area.center();
  double angle = -M_PI / 2;  // Start at 12 o'clock.
  int color_index = 0;
  for (const auto& slice : series) {
    if (slice.value <= 0) {
      continue;
    }
    double sweep = 2 * M_PI * slice.value / total;
    // Wedge as a filled polygon: center + arc points.
    std::vector<Point> wedge;
    wedge.push_back(center);
    int steps = std::max(2, static_cast<int>(sweep * radius / 2));
    for (int i = 0; i <= steps; ++i) {
      double a = angle + sweep * i / steps;
      wedge.push_back(Point{center.x + static_cast<int>(std::lround(radius * std::cos(a))),
                            center.y + static_cast<int>(std::lround(radius * std::sin(a)))});
    }
    g->SetForeground(kSeriesColors[color_index % kSeriesColorCount]);
    g->FillPolygon(wedge);
    g->SetForeground(kBlack);
    g->DrawPolygon(wedge);
    angle += sweep;
    ++color_index;
  }
  g->SetForeground(kBlack);
  g->DrawEllipse(Rect{center.x - radius, center.y - radius, 2 * radius, 2 * radius});
}

void BarChartView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  DrawTitle(g);
  std::vector<ChartData::Slice> series = Series();
  Rect area = Rect{2, kTitleHeight, g->width() - 4, g->height() - kTitleHeight - 2};
  if (series.empty() || area.IsEmpty()) {
    g->SetForeground(kGray);
    g->DrawString(Point{4, area.y + 4}, "(no data)");
    return;
  }
  double max_value = 0;
  for (const auto& slice : series) {
    max_value = std::max(max_value, slice.value);
  }
  if (max_value <= 0) {
    max_value = 1;
  }
  int n = static_cast<int>(series.size());
  int bar_width = std::max(2, area.width / n - 2);
  for (int i = 0; i < n; ++i) {
    int h = static_cast<int>(area.height * series[static_cast<size_t>(i)].value / max_value);
    h = std::clamp(h, 0, area.height);
    Rect bar{area.x + i * (bar_width + 2), area.bottom() - h, bar_width, h};
    g->SetForeground(kSeriesColors[i % kSeriesColorCount]);
    g->FillRect(bar);
    g->SetForeground(kBlack);
    g->DrawRect(bar);
  }
  // Baseline.
  g->SetForeground(kBlack);
  g->DrawLine(Point{area.x, area.bottom()}, Point{area.right(), area.bottom()});
}

}  // namespace atk
