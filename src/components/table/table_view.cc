#include "src/components/table/table_view.h"

#include <algorithm>

#include "src/class_system/loader.h"
#include "src/components/frame/unknown_view.h"

namespace atk {

ATK_DEFINE_CLASS(TableView, View, "tableview")
ATK_DEFINE_CLASS(SpreadView, TableView, "spread")

TableView::TableView() { SetPreferredCursor(CursorShape::kCrosshair); }

TableView::~TableView() = default;

TableData* TableView::table() const { return ObjectCast<TableData>(data_object()); }

int TableView::RowHeight() const { return Font::Default().height() + 6; }

void TableView::SelectCell(int row, int col) {
  TableData* data = table();
  if (data == nullptr) {
    return;
  }
  if (editing_) {
    CommitEdit();
  }
  sel_row_ = std::clamp(row, 0, data->rows() - 1);
  sel_col_ = std::clamp(col, 0, data->cols() - 1);
  PostUpdate();
}

void TableView::BeginEdit() {
  editing_ = true;
  edit_buffer_.clear();
  PostUpdate();
}

void TableView::CommitEdit() {
  if (!editing_) {
    return;
  }
  editing_ = false;
  TableData* data = table();
  if (data != nullptr) {
    data->SetFromInput(sel_row_, sel_col_, edit_buffer_);
  }
  edit_buffer_.clear();
}

void TableView::CancelEdit() {
  editing_ = false;
  edit_buffer_.clear();
  PostUpdate();
}

ScrollInfo TableView::GetScrollInfo() const {
  ScrollInfo info;
  TableData* data = table();
  if (data == nullptr) {
    return info;
  }
  info.total = data->rows();
  info.first_visible = first_row_;
  int height = graphic() != nullptr ? graphic()->height() : 100;
  info.visible = std::min<int64_t>(std::max(1, height / RowHeight()),
                                   info.total - info.first_visible);
  return info;
}

void TableView::ScrollToUnit(int64_t unit) {
  TableData* data = table();
  if (data == nullptr) {
    return;
  }
  first_row_ = std::clamp<int64_t>(unit, 0, std::max(0, data->rows() - 1));
  Layout();
  PostUpdate();
}

Rect TableView::CellRect(int row, int col) const {
  TableData* data = table();
  if (data == nullptr || row < first_row_) {
    return Rect{};
  }
  int x = 0;
  for (int c = 0; c < col; ++c) {
    x += data->ColWidth(c);
  }
  int y = static_cast<int>(row - first_row_) * RowHeight();
  return Rect{x, y, data->ColWidth(col), RowHeight()};
}

bool TableView::CellAtPoint(Point p, int* row, int* col) const {
  TableData* data = table();
  if (data == nullptr || p.x < 0 || p.y < 0) {
    return false;
  }
  int r = static_cast<int>(first_row_) + p.y / RowHeight();
  if (r >= data->rows()) {
    return false;
  }
  int x = 0;
  for (int c = 0; c < data->cols(); ++c) {
    x += data->ColWidth(c);
    if (p.x < x) {
      *row = r;
      *col = c;
      return true;
    }
  }
  return false;
}

void TableView::EnsureChildren() {
  TableData* data = table();
  if (data == nullptr) {
    return;
  }
  // Drop views for objects no longer in the table.
  for (auto it = child_views_.begin(); it != child_views_.end();) {
    bool alive = false;
    for (int r = 0; r < data->rows() && !alive; ++r) {
      for (int c = 0; c < data->cols() && !alive; ++c) {
        alive = data->at(r, c).object.get() == it->first;
      }
    }
    if (!alive) {
      RemoveChild(it->second.get());
      it = child_views_.erase(it);
    } else {
      ++it;
    }
  }
}

void TableView::Layout() {
  TableData* data = table();
  if (data == nullptr || graphic() == nullptr) {
    return;
  }
  EnsureChildren();
  for (int r = 0; r < data->rows(); ++r) {
    for (int c = 0; c < data->cols(); ++c) {
      const TableData::Cell& cell = data->at(r, c);
      if (cell.kind != TableData::CellKind::kObject || cell.object == nullptr) {
        continue;
      }
      View* child = nullptr;
      auto it = child_views_.find(cell.object.get());
      if (it != child_views_.end()) {
        child = it->second.get();
      } else {
        std::unique_ptr<View> view =
            ObjectCast<View>(Loader::Instance().NewObject(cell.view_type));
        if (view == nullptr) {
          // Missing view class: degrade to a placeholder, keep the cell's
          // data object intact.
          auto placeholder = std::make_unique<UnknownView>();
          if (cell.view_type != "unknownview") {
            placeholder->SetMissingType(cell.view_type);
          }
          view = std::move(placeholder);
        }
        view->SetDataObject(cell.object.get());
        child = view.get();
        AddChild(child);
        child_views_[cell.object.get()] = std::move(view);
      }
      Rect rect = CellRect(r, c).Inset(1);
      if (rect.IsEmpty() || r < first_row_) {
        rect = Rect{0, 0, 0, 0};
      }
      child->Allocate(rect, graphic());
    }
  }
}

void TableView::FullUpdate() {
  Graphic* g = graphic();
  TableData* data = table();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  if (data == nullptr) {
    return;
  }
  int row_h = RowHeight();
  int total_width = 0;
  for (int c = 0; c < data->cols(); ++c) {
    total_width += data->ColWidth(c);
  }
  int visible_rows = std::min<int>(data->rows() - static_cast<int>(first_row_),
                                   g->height() / row_h + 1);
  int grid_height = visible_rows * row_h;
  // Grid lines.
  g->SetForeground(kGray);
  int x = 0;
  for (int c = 0; c <= data->cols(); ++c) {
    g->DrawLine(Point{x, 0}, Point{x, grid_height});
    if (c < data->cols()) {
      x += data->ColWidth(c);
    }
  }
  for (int r = 0; r <= visible_rows; ++r) {
    g->DrawLine(Point{0, r * row_h}, Point{total_width, r * row_h});
  }
  // Cell contents.
  g->SetFont(FontSpec{"andy", 10, kPlain});
  const Font& font = Font::Default();
  for (int r = 0; r < visible_rows; ++r) {
    int row = static_cast<int>(first_row_) + r;
    for (int c = 0; c < data->cols(); ++c) {
      Rect rect = CellRect(row, c);
      const TableData::Cell& cell = data->at(row, c);
      if (cell.kind == TableData::CellKind::kObject) {
        continue;  // Child view draws itself.
      }
      std::string display = data->DisplayText(row, c);
      if (editing_ && row == sel_row_ && c == sel_col_) {
        display = edit_buffer_ + "_";
      }
      bool numeric = cell.kind == TableData::CellKind::kNumber ||
                     cell.kind == TableData::CellKind::kFormula;
      int text_w = font.StringWidth(display);
      int tx = numeric ? rect.right() - text_w - 3 : rect.x + 3;
      g->SetForeground(cell.error ? kDarkGray : kBlack);
      g->DrawString(Point{std::max(rect.x + 1, tx), rect.y + 3}, display);
    }
  }
  // Selection box.
  Rect sel = CellRect(sel_row_, sel_col_);
  if (!sel.IsEmpty() && sel_row_ >= first_row_) {
    g->SetForeground(kBlack);
    g->SetLineWidth(2);
    g->DrawRect(sel);
    g->SetLineWidth(1);
  }
}

Size TableView::DesiredSize(Size available) {
  TableData* data = table();
  if (data == nullptr) {
    return Size{80, 40};
  }
  int width = 1;
  for (int c = 0; c < data->cols(); ++c) {
    width += data->ColWidth(c);
  }
  Size desired{width, data->rows() * RowHeight() + 1};
  if (available.width > 0) {
    desired.width = std::min(desired.width, available.width);
  }
  if (available.height > 0) {
    desired.height = std::min(desired.height, available.height);
  }
  return desired;
}

View* TableView::Hit(const InputEvent& event) {
  // Embedded children first (parental authority).
  if (View* taken = View::Hit(event)) {
    return taken;
  }
  if (event.type != EventType::kMouseDown) {
    return event.type == EventType::kMouseUp ? this : nullptr;
  }
  int row = 0;
  int col = 0;
  if (CellAtPoint(event.pos, &row, &col)) {
    SelectCell(row, col);
    RequestInputFocus();
    return this;
  }
  return nullptr;
}

bool TableView::HandleKey(char key, unsigned modifiers) {
  (void)modifiers;
  TableData* data = table();
  if (data == nullptr) {
    return false;
  }
  if (key == '\r' || key == '\n') {
    if (editing_) {
      CommitEdit();
      SelectCell(sel_row_ + 1, sel_col_);
    } else {
      BeginEdit();
    }
    PostUpdate();
    return true;
  }
  if (key == '\t') {
    CommitEdit();
    SelectCell(sel_row_, sel_col_ + 1 < data->cols() ? sel_col_ + 1 : 0);
    return true;
  }
  if (key == '\033') {
    CancelEdit();
    return true;
  }
  if (key == '\b' || key == '\177') {
    if (editing_ && !edit_buffer_.empty()) {
      edit_buffer_.pop_back();
    } else if (!editing_) {
      data->ClearCell(sel_row_, sel_col_);
    }
    PostUpdate();
    return true;
  }
  if (key >= 0x20 && key < 0x7F) {
    if (!editing_) {
      BeginEdit();
    }
    edit_buffer_ += key;
    PostUpdate();
    return true;
  }
  return false;
}

void TableView::FillMenus(MenuList& menus) {
  menus.Add("Table~Insert Row", "tableview-insert-row");
  menus.Add("Table~Delete Row", "tableview-delete-row");
  menus.Add("Table~Insert Column", "tableview-insert-col");
  menus.Add("Table~Delete Column", "tableview-delete-col");
  menus.Add("Table~Recalculate", "tableview-recalculate");
}

void TableView::ObservedChanged(Observable* changed, const Change& change) {
  if (change.kind == Change::Kind::kDestroyed) {
    View::ObservedChanged(changed, change);
    return;
  }
  // Shape changes may move embedded children.
  if (change.kind == Change::Kind::kModified && HasGraphic()) {
    Layout();
  }
  PostUpdate();
}

}  // namespace atk
