// TableView ("spread") — the grid view on TableData.
//
// Draws the grid with per-column widths, hosts embedded child views inside
// cells, lets the user select a cell with the mouse and type new contents
// (committed with Return/Tab: "=..." formula, numeric, or text — the
// spreadsheet facility of snapshot 5), and exposes Scrollable over rows.

#ifndef ATK_SRC_COMPONENTS_TABLE_TABLE_VIEW_H_
#define ATK_SRC_COMPONENTS_TABLE_TABLE_VIEW_H_

#include <map>
#include <memory>
#include <string>

#include "src/base/scrollable.h"
#include "src/base/view.h"
#include "src/components/table/table_data.h"

namespace atk {

class TableView : public View, public Scrollable {
  ATK_DECLARE_CLASS(TableView)

 public:
  TableView();
  ~TableView() override;

  TableData* table() const;

  // ---- Selection & editing ----
  int selected_row() const { return sel_row_; }
  int selected_col() const { return sel_col_; }
  void SelectCell(int row, int col);
  // The in-progress edit buffer ("" when not editing).
  const std::string& edit_buffer() const { return edit_buffer_; }
  bool editing() const { return editing_; }
  void BeginEdit();
  void CommitEdit();
  void CancelEdit();

  // ---- Scrollable (rows) ----
  ScrollInfo GetScrollInfo() const override;
  void ScrollToUnit(int64_t unit) override;

  // ---- View protocol ----
  void Layout() override;
  void FullUpdate() override;
  Size DesiredSize(Size available) override;
  View* Hit(const InputEvent& event) override;
  bool HandleKey(char key, unsigned modifiers) override;
  void FillMenus(MenuList& menus) override;
  void ObservedChanged(Observable* changed, const Change& change) override;

  // Cell geometry in local coordinates ({} when scrolled out).
  Rect CellRect(int row, int col) const;
  // Cell under a local point; false when outside the grid.
  bool CellAtPoint(Point p, int* row, int* col) const;

  int RowHeight() const;

 private:
  void EnsureChildren();

  int sel_row_ = 0;
  int sel_col_ = 0;
  int64_t first_row_ = 0;
  bool editing_ = false;
  std::string edit_buffer_;
  std::map<const DataObject*, std::unique_ptr<View>> child_views_;
};

// The paper's name for the table view class (§5's \view{spread,2}).
class SpreadView : public TableView {
  ATK_DECLARE_CLASS(SpreadView)
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_TABLE_TABLE_VIEW_H_
