// TableData — the table/spreadsheet data object.
//
// A grid of cells, each empty, text, a number, a formula, or an embedded
// data object (snapshot 5 embeds text, an equation and an animation inside
// table cells).  Formula cells recalculate through a dependency graph with
// cycle detection; every mutation notifies observers once, with the changed
// cell packed into the Change record.

#ifndef ATK_SRC_COMPONENTS_TABLE_TABLE_DATA_H_
#define ATK_SRC_COMPONENTS_TABLE_TABLE_DATA_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/data_object.h"
#include "src/components/table/formula.h"

namespace atk {

class TableData : public DataObject {
  ATK_DECLARE_CLASS(TableData)

 public:
  enum class CellKind { kEmpty, kText, kNumber, kFormula, kObject };

  struct Cell {
    CellKind kind = CellKind::kEmpty;
    std::string text;            // kText source / kFormula source (sans '=').
    double value = 0.0;          // kNumber / evaluated kFormula.
    FormulaExprPtr expr;         // Parsed kFormula.
    bool error = false;
    std::string error_message;
    std::unique_ptr<DataObject> object;  // kObject payload.
    std::string view_type;
  };

  TableData();
  ~TableData() override;

  // ---- Shape ----
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  void Resize(int rows, int cols);
  void InsertRow(int before);
  void DeleteRow(int row);
  void InsertCol(int before);
  void DeleteCol(int col);

  // Column widths in pixels (views honor these; they persist in the file).
  int ColWidth(int col) const;
  void SetColWidth(int col, int width);

  // ---- Cells ----
  bool InBounds(int row, int col) const {
    return row >= 0 && row < rows_ && col >= 0 && col < cols_;
  }
  const Cell& at(int row, int col) const;
  void ClearCell(int row, int col);
  void SetText(int row, int col, std::string_view text);
  void SetNumber(int row, int col, double value);
  // `source` without the leading '='.  Parse errors leave an error cell.
  void SetFormula(int row, int col, std::string_view source);
  // Parses user input by shape: "=..." formula, numeric → number, else text.
  void SetFromInput(int row, int col, std::string_view input);
  DataObject* SetObject(int row, int col, std::unique_ptr<DataObject> data,
                        std::string_view view_type = "");

  // Numeric value of a cell (0 for non-numeric kinds).
  double Value(int row, int col) const;
  // What a view should display: formatted number, text, or "#ERR".
  std::string DisplayText(int row, int col) const;

  // ---- Recalculation ----
  // Re-evaluates all formulas in dependency order; cells on a reference
  // cycle become errors.  Called automatically by every mutator.
  void Recalculate();
  uint64_t recalc_count() const { return recalc_count_; }
  int last_recalc_evaluations() const { return last_recalc_evaluations_; }

  // ---- Datastream ----
  void WriteBody(DataStreamWriter& writer) const override;
  bool ReadBody(DataStreamReader& reader, ReadContext& context) override;

 private:
  Cell& MutableAt(int row, int col);
  void NotifyCell(int row, int col);
  size_t Index(int row, int col) const {
    return static_cast<size_t>(row) * static_cast<size_t>(cols_) + static_cast<size_t>(col);
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<Cell> cells_;
  std::vector<int> col_widths_;
  uint64_t recalc_count_ = 0;
  int last_recalc_evaluations_ = 0;
  bool in_bulk_load_ = false;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_TABLE_TABLE_DATA_H_
