// The spreadsheet formula engine behind the table component (§1 lists
// "tables, spreadsheets" among the toolkit components; snapshot 5 shows
// Pascal's Triangle implemented "using the spreadsheet facilities of the
// table object").
//
// Grammar (A1-style references):
//   expr    := cmp
//   cmp     := sum (('<'|'>'|'<='|'>='|'='|'<>') sum)?
//   sum     := product (('+'|'-') product)*
//   product := unary (('*'|'/') unary)*
//   unary   := '-' unary | primary
//   primary := NUMBER | REF | FUNC '(' args ')' | '(' expr ')'
//   FUNC    := SUM | AVG | MIN | MAX | COUNT | IF | ABS | SQRT
//   args    := (expr | RANGE) (',' (expr | RANGE))*
//   REF     := [A-Z]+[0-9]+        RANGE := REF ':' REF

#ifndef ATK_SRC_COMPONENTS_TABLE_FORMULA_H_
#define ATK_SRC_COMPONENTS_TABLE_FORMULA_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace atk {

struct CellRef {
  int row = 0;
  int col = 0;
  friend bool operator==(const CellRef&, const CellRef&) = default;
  friend auto operator<=>(const CellRef&, const CellRef&) = default;

  // "B3" -> {row 2, col 1}.  Returns false on malformed input.
  static bool Parse(std::string_view text, CellRef* out);
  std::string ToA1() const;
  // Column name: 0 -> "A", 25 -> "Z", 26 -> "AA".
  static std::string ColumnName(int col);
};

class FormulaExpr;
using FormulaExprPtr = std::unique_ptr<FormulaExpr>;

// The value-lookup callback: the table supplies cell values during
// evaluation (and reports whether the referenced cell is in error).
struct FormulaEnv {
  std::function<double(CellRef)> value;
  std::function<bool(CellRef)> has_error;
};

struct FormulaResult {
  double value = 0.0;
  bool error = false;
  std::string error_message;
};

class FormulaExpr {
 public:
  enum class Kind { kNumber, kRef, kRange, kBinary, kUnaryMinus, kCall };

  virtual ~FormulaExpr() = default;
  virtual Kind kind() const = 0;
  virtual FormulaResult Evaluate(const FormulaEnv& env) const = 0;
  // Appends every cell this expression reads (ranges expanded).
  virtual void CollectRefs(std::vector<CellRef>& out) const = 0;
};

struct ParsedFormula {
  FormulaExprPtr expr;
  bool ok = false;
  std::string error;  // Parse diagnostic when !ok.
};

// Parses formula source *without* the leading '='.
ParsedFormula ParseFormula(std::string_view source);

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_TABLE_FORMULA_H_
