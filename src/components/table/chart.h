// The chart component — §2's worked example for stable view state and
// observer chains.
//
// "In the chart example, the underlying data object is a table of values...
// the chart view would be viewing not a table data object but an auxiliary
// chart data object.  The chart data object would retain information such as
// axes labelling.  In addition, the chart data object would be an observer
// of the table data object."
//
// ChartData holds the chart's *persistent* state (title, labels, which
// column to plot) and observes a TableData; table changes flow
// table -> ChartData -> chart views.  Two view classes (pie and bar) render
// the same ChartData — §2's "two different types of views ... on the same
// data object".

#ifndef ATK_SRC_COMPONENTS_TABLE_CHART_H_
#define ATK_SRC_COMPONENTS_TABLE_CHART_H_

#include <string>
#include <vector>

#include "src/base/view.h"
#include "src/components/table/table_data.h"

namespace atk {

class ChartData : public DataObject, public Observer {
  ATK_DECLARE_CLASS(ChartData)

 public:
  ChartData();
  ~ChartData() override;

  // Observes `table`; not owned (typically a sibling embedded object).
  void SetSource(TableData* table);
  TableData* source() const { return source_; }

  void SetTitle(std::string title);
  const std::string& title() const { return title_; }
  // Which columns hold the slice labels and the values.
  void SetColumns(int label_col, int value_col);
  int label_col() const { return label_col_; }
  int value_col() const { return value_col_; }
  // Row range to plot ([first, last]; last -1 = to the end).
  void SetRowRange(int first, int last);

  struct Slice {
    std::string label;
    double value = 0.0;
  };
  // Extracts the plotted series from the source table (non-positive values
  // and missing rows are skipped for the pie; the bar view keeps zeros).
  std::vector<Slice> Series() const;

  // The table -> chart link in the observer chain.
  void ObservedChanged(Observable* changed, const Change& change) override;

  // ---- Datastream ----
  void WriteBody(DataStreamWriter& writer) const override;
  bool ReadBody(DataStreamReader& reader, ReadContext& context) override;
  // Chart files reference the table by stream id; resolution needs the
  // ReadContext, so it happens in ReadBody via \chartsource{id}.

 private:
  TableData* source_ = nullptr;
  std::string title_;
  int label_col_ = 0;
  int value_col_ = 1;
  int first_row_ = 0;
  int last_row_ = -1;
};

// Shared painting helpers for the chart views.
class ChartViewBase : public View {
  ATK_DECLARE_CLASS(ChartViewBase)

 public:
  ChartData* chart() const { return ObjectCast<ChartData>(data_object()); }
  Size DesiredSize(Size available) override;

  // The plotted series.  Chart views accept either a ChartData (the §2
  // auxiliary object with stable state) or a bare TableData directly —
  // "one table data object and two views, a normal table view and a pie
  // chart view" — in which case column 0 labels and column 1 values are
  // assumed.
  std::vector<ChartData::Slice> Series() const;

 protected:
  void DrawTitle(Graphic* g);
  static constexpr int kTitleHeight = 12;
};

class PieChartView : public ChartViewBase {
  ATK_DECLARE_CLASS(PieChartView)

 public:
  void FullUpdate() override;
};

class BarChartView : public ChartViewBase {
  ATK_DECLARE_CLASS(BarChartView)

 public:
  void FullUpdate() override;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_TABLE_CHART_H_
