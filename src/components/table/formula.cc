#include "src/components/table/formula.h"

#include <cctype>
#include <cmath>
#include <sstream>

namespace atk {

bool CellRef::Parse(std::string_view text, CellRef* out) {
  size_t i = 0;
  int col = 0;
  while (i < text.size() && std::isupper(static_cast<unsigned char>(text[i]))) {
    col = col * 26 + (text[i] - 'A' + 1);
    ++i;
  }
  if (i == 0 || i >= text.size()) {
    return false;
  }
  int row = 0;
  size_t digits = 0;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    row = row * 10 + (text[i] - '0');
    ++i;
    ++digits;
  }
  if (digits == 0 || i != text.size() || row < 1) {
    return false;
  }
  out->row = row - 1;
  out->col = col - 1;
  return true;
}

std::string CellRef::ColumnName(int col) {
  std::string name;
  int c = col;
  while (c >= 0) {
    name.insert(name.begin(), static_cast<char>('A' + c % 26));
    c = c / 26 - 1;
  }
  return name;
}

std::string CellRef::ToA1() const { return ColumnName(col) + std::to_string(row + 1); }

namespace {

FormulaResult ErrorResult(std::string message) {
  FormulaResult r;
  r.error = true;
  r.error_message = std::move(message);
  return r;
}

class NumberExpr : public FormulaExpr {
 public:
  explicit NumberExpr(double v) : value_(v) {}
  Kind kind() const override { return Kind::kNumber; }
  FormulaResult Evaluate(const FormulaEnv&) const override {
    FormulaResult r;
    r.value = value_;
    return r;
  }
  void CollectRefs(std::vector<CellRef>&) const override {}

 private:
  double value_;
};

class RefExpr : public FormulaExpr {
 public:
  explicit RefExpr(CellRef ref) : ref_(ref) {}
  Kind kind() const override { return Kind::kRef; }
  FormulaResult Evaluate(const FormulaEnv& env) const override {
    if (env.has_error && env.has_error(ref_)) {
      return ErrorResult("ref to error cell " + ref_.ToA1());
    }
    FormulaResult r;
    r.value = env.value ? env.value(ref_) : 0.0;
    return r;
  }
  void CollectRefs(std::vector<CellRef>& out) const override { out.push_back(ref_); }
  CellRef ref() const { return ref_; }

 private:
  CellRef ref_;
};

class RangeExpr : public FormulaExpr {
 public:
  RangeExpr(CellRef a, CellRef b)
      : top_{std::min(a.row, b.row), std::min(a.col, b.col)},
        bottom_{std::max(a.row, b.row), std::max(a.col, b.col)} {}
  Kind kind() const override { return Kind::kRange; }
  FormulaResult Evaluate(const FormulaEnv&) const override {
    return ErrorResult("range used outside a function");
  }
  void CollectRefs(std::vector<CellRef>& out) const override {
    for (int r = top_.row; r <= bottom_.row; ++r) {
      for (int c = top_.col; c <= bottom_.col; ++c) {
        out.push_back(CellRef{r, c});
      }
    }
  }
  std::vector<CellRef> Cells() const {
    std::vector<CellRef> cells;
    CollectRefs(cells);
    return cells;
  }

 private:
  CellRef top_;
  CellRef bottom_;
};

class UnaryMinusExpr : public FormulaExpr {
 public:
  explicit UnaryMinusExpr(FormulaExprPtr inner) : inner_(std::move(inner)) {}
  Kind kind() const override { return Kind::kUnaryMinus; }
  FormulaResult Evaluate(const FormulaEnv& env) const override {
    FormulaResult r = inner_->Evaluate(env);
    r.value = -r.value;
    return r;
  }
  void CollectRefs(std::vector<CellRef>& out) const override { inner_->CollectRefs(out); }

 private:
  FormulaExprPtr inner_;
};

class BinaryExpr : public FormulaExpr {
 public:
  BinaryExpr(char op, std::string op2, FormulaExprPtr lhs, FormulaExprPtr rhs)
      : op_(op), op2_(std::move(op2)), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Kind kind() const override { return Kind::kBinary; }
  FormulaResult Evaluate(const FormulaEnv& env) const override {
    FormulaResult a = lhs_->Evaluate(env);
    if (a.error) {
      return a;
    }
    FormulaResult b = rhs_->Evaluate(env);
    if (b.error) {
      return b;
    }
    FormulaResult r;
    if (op2_ == "<=") {
      r.value = a.value <= b.value ? 1 : 0;
    } else if (op2_ == ">=") {
      r.value = a.value >= b.value ? 1 : 0;
    } else if (op2_ == "<>") {
      r.value = a.value != b.value ? 1 : 0;
    } else {
      switch (op_) {
        case '+':
          r.value = a.value + b.value;
          break;
        case '-':
          r.value = a.value - b.value;
          break;
        case '*':
          r.value = a.value * b.value;
          break;
        case '/':
          if (b.value == 0.0) {
            return ErrorResult("divide by zero");
          }
          r.value = a.value / b.value;
          break;
        case '<':
          r.value = a.value < b.value ? 1 : 0;
          break;
        case '>':
          r.value = a.value > b.value ? 1 : 0;
          break;
        case '=':
          r.value = a.value == b.value ? 1 : 0;
          break;
        default:
          return ErrorResult("bad operator");
      }
    }
    return r;
  }
  void CollectRefs(std::vector<CellRef>& out) const override {
    lhs_->CollectRefs(out);
    rhs_->CollectRefs(out);
  }

 private:
  char op_;
  std::string op2_;
  FormulaExprPtr lhs_;
  FormulaExprPtr rhs_;
};

class CallExpr : public FormulaExpr {
 public:
  CallExpr(std::string name, std::vector<FormulaExprPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}
  Kind kind() const override { return Kind::kCall; }

  FormulaResult Evaluate(const FormulaEnv& env) const override {
    if (name_ == "IF") {
      if (args_.size() != 3) {
        return ErrorResult("IF needs 3 arguments");
      }
      FormulaResult cond = args_[0]->Evaluate(env);
      if (cond.error) {
        return cond;
      }
      return args_[cond.value != 0.0 ? 1 : 2]->Evaluate(env);
    }
    if (name_ == "ABS" || name_ == "SQRT") {
      if (args_.size() != 1) {
        return ErrorResult(name_ + " needs 1 argument");
      }
      FormulaResult a = args_[0]->Evaluate(env);
      if (a.error) {
        return a;
      }
      if (name_ == "ABS") {
        a.value = std::fabs(a.value);
      } else {
        if (a.value < 0) {
          return ErrorResult("SQRT of negative");
        }
        a.value = std::sqrt(a.value);
      }
      return a;
    }
    // Aggregates over scalars and ranges.
    std::vector<double> values;
    for (const FormulaExprPtr& arg : args_) {
      if (arg->kind() == Kind::kRange) {
        const auto* range = static_cast<const RangeExpr*>(arg.get());
        for (CellRef ref : range->Cells()) {
          if (env.has_error && env.has_error(ref)) {
            return ErrorResult("range includes error cell " + ref.ToA1());
          }
          values.push_back(env.value ? env.value(ref) : 0.0);
        }
      } else {
        FormulaResult a = arg->Evaluate(env);
        if (a.error) {
          return a;
        }
        values.push_back(a.value);
      }
    }
    FormulaResult r;
    if (name_ == "COUNT") {
      r.value = static_cast<double>(values.size());
      return r;
    }
    if (values.empty()) {
      return ErrorResult(name_ + " of nothing");
    }
    if (name_ == "SUM" || name_ == "AVG") {
      for (double v : values) {
        r.value += v;
      }
      if (name_ == "AVG") {
        r.value /= static_cast<double>(values.size());
      }
      return r;
    }
    if (name_ == "MIN" || name_ == "MAX") {
      r.value = values[0];
      for (double v : values) {
        r.value = name_ == "MIN" ? std::min(r.value, v) : std::max(r.value, v);
      }
      return r;
    }
    return ErrorResult("unknown function " + name_);
  }

  void CollectRefs(std::vector<CellRef>& out) const override {
    for (const FormulaExprPtr& arg : args_) {
      arg->CollectRefs(out);
    }
  }

 private:
  std::string name_;
  std::vector<FormulaExprPtr> args_;
};

// ---- Parser ------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view src) : src_(src) {}

  ParsedFormula Parse() {
    ParsedFormula result;
    result.expr = ParseCmp();
    SkipSpace();
    if (result.expr == nullptr) {
      result.error = error_.empty() ? "syntax error" : error_;
      return result;
    }
    if (pos_ != src_.size()) {
      result.error = "trailing characters at offset " + std::to_string(pos_);
      result.expr.reset();
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  void SkipSpace() {
    while (pos_ < src_.size() && src_[pos_] == ' ') {
      ++pos_;
    }
  }

  bool Eat(char ch) {
    SkipSpace();
    if (pos_ < src_.size() && src_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  char PeekChar() {
    SkipSpace();
    return pos_ < src_.size() ? src_[pos_] : '\0';
  }

  FormulaExprPtr Fail(std::string message) {
    if (error_.empty()) {
      error_ = std::move(message);
    }
    return nullptr;
  }

  FormulaExprPtr ParseCmp() {
    FormulaExprPtr lhs = ParseSum();
    if (lhs == nullptr) {
      return nullptr;
    }
    SkipSpace();
    if (pos_ < src_.size()) {
      char ch = src_[pos_];
      if (ch == '<' || ch == '>' || ch == '=') {
        std::string op2;
        ++pos_;
        if (ch == '<' && pos_ < src_.size() && (src_[pos_] == '=' || src_[pos_] == '>')) {
          op2 = std::string("<") + src_[pos_];
          ++pos_;
        } else if (ch == '>' && pos_ < src_.size() && src_[pos_] == '=') {
          op2 = ">=";
          ++pos_;
        }
        FormulaExprPtr rhs = ParseSum();
        if (rhs == nullptr) {
          return Fail("expected expression after comparison");
        }
        return std::make_unique<BinaryExpr>(ch, op2, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  FormulaExprPtr ParseSum() {
    FormulaExprPtr lhs = ParseProduct();
    while (lhs != nullptr) {
      SkipSpace();
      if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-')) {
        char op = src_[pos_++];
        FormulaExprPtr rhs = ParseProduct();
        if (rhs == nullptr) {
          return Fail("expected term after operator");
        }
        lhs = std::make_unique<BinaryExpr>(op, "", std::move(lhs), std::move(rhs));
      } else {
        break;
      }
    }
    return lhs;
  }

  FormulaExprPtr ParseProduct() {
    FormulaExprPtr lhs = ParseUnary();
    while (lhs != nullptr) {
      SkipSpace();
      if (pos_ < src_.size() && (src_[pos_] == '*' || src_[pos_] == '/')) {
        char op = src_[pos_++];
        FormulaExprPtr rhs = ParseUnary();
        if (rhs == nullptr) {
          return Fail("expected factor after operator");
        }
        lhs = std::make_unique<BinaryExpr>(op, "", std::move(lhs), std::move(rhs));
      } else {
        break;
      }
    }
    return lhs;
  }

  FormulaExprPtr ParseUnary() {
    if (Eat('-')) {
      FormulaExprPtr inner = ParseUnary();
      if (inner == nullptr) {
        return Fail("expected expression after '-'");
      }
      return std::make_unique<UnaryMinusExpr>(std::move(inner));
    }
    return ParsePrimary();
  }

  FormulaExprPtr ParsePrimary() {
    SkipSpace();
    if (pos_ >= src_.size()) {
      return Fail("unexpected end of formula");
    }
    char ch = src_[pos_];
    if (ch == '(') {
      ++pos_;
      FormulaExprPtr inner = ParseCmp();
      if (inner == nullptr || !Eat(')')) {
        return Fail("unbalanced parenthesis");
      }
      return inner;
    }
    if (std::isdigit(static_cast<unsigned char>(ch)) || ch == '.') {
      return ParseNumber();
    }
    if (std::isupper(static_cast<unsigned char>(ch))) {
      return ParseRefOrCall();
    }
    return Fail(std::string("unexpected character '") + ch + "'");
  }

  FormulaExprPtr ParseNumber() {
    size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '.')) {
      ++pos_;
    }
    try {
      return std::make_unique<NumberExpr>(std::stod(std::string(src_.substr(start, pos_ - start))));
    } catch (...) {
      return Fail("bad number");
    }
  }

  FormulaExprPtr ParseRefOrCall() {
    size_t start = pos_;
    while (pos_ < src_.size() && std::isupper(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
    std::string word(src_.substr(start, pos_ - start));
    // Function call?
    if (PeekChar() == '(' &&
        (word == "SUM" || word == "AVG" || word == "MIN" || word == "MAX" ||
         word == "COUNT" || word == "IF" || word == "ABS" || word == "SQRT")) {
      Eat('(');
      std::vector<FormulaExprPtr> args;
      if (PeekChar() != ')') {
        while (true) {
          FormulaExprPtr arg = ParseArg();
          if (arg == nullptr) {
            return Fail("bad argument to " + word);
          }
          args.push_back(std::move(arg));
          if (!Eat(',')) {
            break;
          }
        }
      }
      if (!Eat(')')) {
        return Fail("missing ')' after " + word);
      }
      return std::make_unique<CallExpr>(word, std::move(args));
    }
    // Cell reference: letters already consumed, digits follow.
    while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
    CellRef ref;
    if (!CellRef::Parse(src_.substr(start, pos_ - start), &ref)) {
      return Fail("bad cell reference '" + word + "'");
    }
    return std::make_unique<RefExpr>(ref);
  }

  // An argument may be a range (A1:B3) or a plain expression.
  FormulaExprPtr ParseArg() {
    SkipSpace();
    size_t save = pos_;
    // Try REF ':' REF first.
    if (pos_ < src_.size() && std::isupper(static_cast<unsigned char>(src_[pos_]))) {
      size_t start = pos_;
      while (pos_ < src_.size() && std::isupper(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
      while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
      CellRef a;
      if (CellRef::Parse(src_.substr(start, pos_ - start), &a) && PeekChar() == ':') {
        Eat(':');
        SkipSpace();
        size_t bstart = pos_;
        while (pos_ < src_.size() && std::isupper(static_cast<unsigned char>(src_[pos_]))) {
          ++pos_;
        }
        while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          ++pos_;
        }
        CellRef b;
        if (CellRef::Parse(src_.substr(bstart, pos_ - bstart), &b)) {
          return std::make_unique<RangeExpr>(a, b);
        }
        return Fail("bad range");
      }
    }
    pos_ = save;
    return ParseCmp();
  }

  std::string_view src_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

ParsedFormula ParseFormula(std::string_view source) { return Parser(source).Parse(); }

}  // namespace atk
