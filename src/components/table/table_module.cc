// Loader module for the table/spreadsheet/chart component.

#include "src/base/default_views.h"
#include "src/base/proctable.h"
#include "src/class_system/loader.h"
#include "src/components/table/chart.h"
#include "src/components/table/table_view.h"

namespace atk {
namespace {

void RegisterTableProcs() {
  ProcTable& procs = ProcTable::Instance();
  auto with_table = [](void (*fn)(TableView*)) {
    return [fn](View* view, long) {
      if (TableView* tv = ObjectCast<TableView>(view)) {
        fn(tv);
      }
    };
  };
  procs.Register("tableview-insert-row", with_table([](TableView* tv) {
                   if (tv->table() != nullptr) {
                     tv->table()->InsertRow(tv->selected_row());
                   }
                 }));
  procs.Register("tableview-delete-row", with_table([](TableView* tv) {
                   if (tv->table() != nullptr) {
                     tv->table()->DeleteRow(tv->selected_row());
                   }
                 }));
  procs.Register("tableview-insert-col", with_table([](TableView* tv) {
                   if (tv->table() != nullptr) {
                     tv->table()->InsertCol(tv->selected_col());
                   }
                 }));
  procs.Register("tableview-delete-col", with_table([](TableView* tv) {
                   if (tv->table() != nullptr) {
                     tv->table()->DeleteCol(tv->selected_col());
                   }
                 }));
  procs.Register("tableview-recalculate", with_table([](TableView* tv) {
                   if (tv->table() != nullptr) {
                     tv->table()->Recalculate();
                   }
                 }));
}

}  // namespace

void RegisterTableModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "table";
    spec.provides = {"table", "tableview", "spread", "chart", "piechartview", "barchartview"};
    spec.text_bytes = 90 * 1024;
    spec.data_bytes = 6 * 1024;
    spec.init = [] {
      ClassRegistry::Instance().Register(TableData::StaticClassInfo());
      ClassRegistry::Instance().Register(TableView::StaticClassInfo());
      ClassRegistry::Instance().Register(SpreadView::StaticClassInfo());
      ClassRegistry::Instance().Register(ChartData::StaticClassInfo());
      ClassRegistry::Instance().Register(PieChartView::StaticClassInfo());
      ClassRegistry::Instance().Register(BarChartView::StaticClassInfo());
      SetDefaultViewName("table", "spread");
      SetDefaultViewName("chart", "piechartview");
      RegisterTableProcs();
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
