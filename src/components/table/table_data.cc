#include "src/components/table/table_data.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>

#include "src/base/default_views.h"

namespace atk {

ATK_DEFINE_CLASS(TableData, DataObject, "table")

namespace {
constexpr int kDefaultColWidth = 64;
}  // namespace

TableData::TableData() { Resize(4, 4); }

TableData::~TableData() = default;

void TableData::Resize(int rows, int cols) {
  rows = std::max(rows, 0);
  cols = std::max(cols, 0);
  std::vector<Cell> next(static_cast<size_t>(rows) * cols);
  for (int r = 0; r < std::min(rows, rows_); ++r) {
    for (int c = 0; c < std::min(cols, cols_); ++c) {
      next[static_cast<size_t>(r) * cols + c] = std::move(cells_[Index(r, c)]);
    }
  }
  cells_ = std::move(next);
  rows_ = rows;
  cols_ = cols;
  col_widths_.resize(static_cast<size_t>(cols), kDefaultColWidth);
  if (!in_bulk_load_) {
    Recalculate();
    Change change;
    change.kind = Change::Kind::kModified;
    NotifyObservers(change);
  }
}

void TableData::InsertRow(int before) {
  before = std::clamp(before, 0, rows_);
  std::vector<Cell> next(static_cast<size_t>(rows_ + 1) * cols_);
  for (int r = 0; r < rows_; ++r) {
    int nr = r < before ? r : r + 1;
    for (int c = 0; c < cols_; ++c) {
      next[static_cast<size_t>(nr) * cols_ + c] = std::move(cells_[Index(r, c)]);
    }
  }
  cells_ = std::move(next);
  ++rows_;
  Recalculate();
  Change change;
  change.kind = Change::Kind::kModified;
  NotifyObservers(change);
}

void TableData::DeleteRow(int row) {
  if (row < 0 || row >= rows_ || rows_ == 1) {
    return;
  }
  std::vector<Cell> next(static_cast<size_t>(rows_ - 1) * cols_);
  for (int r = 0; r < rows_; ++r) {
    if (r == row) {
      continue;
    }
    int nr = r < row ? r : r - 1;
    for (int c = 0; c < cols_; ++c) {
      next[static_cast<size_t>(nr) * cols_ + c] = std::move(cells_[Index(r, c)]);
    }
  }
  cells_ = std::move(next);
  --rows_;
  Recalculate();
  Change change;
  change.kind = Change::Kind::kModified;
  NotifyObservers(change);
}

void TableData::InsertCol(int before) {
  before = std::clamp(before, 0, cols_);
  std::vector<Cell> next(static_cast<size_t>(rows_) * (cols_ + 1));
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      int nc = c < before ? c : c + 1;
      next[static_cast<size_t>(r) * (cols_ + 1) + nc] = std::move(cells_[Index(r, c)]);
    }
  }
  cells_ = std::move(next);
  ++cols_;
  col_widths_.insert(col_widths_.begin() + before, kDefaultColWidth);
  Recalculate();
  Change change;
  change.kind = Change::Kind::kModified;
  NotifyObservers(change);
}

void TableData::DeleteCol(int col) {
  if (col < 0 || col >= cols_ || cols_ == 1) {
    return;
  }
  std::vector<Cell> next(static_cast<size_t>(rows_) * (cols_ - 1));
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      if (c == col) {
        continue;
      }
      int nc = c < col ? c : c - 1;
      next[static_cast<size_t>(r) * (cols_ - 1) + nc] = std::move(cells_[Index(r, c)]);
    }
  }
  cells_ = std::move(next);
  --cols_;
  col_widths_.erase(col_widths_.begin() + col);
  Recalculate();
  Change change;
  change.kind = Change::Kind::kModified;
  NotifyObservers(change);
}

int TableData::ColWidth(int col) const {
  if (col < 0 || col >= cols_) {
    return kDefaultColWidth;
  }
  return col_widths_[static_cast<size_t>(col)];
}

void TableData::SetColWidth(int col, int width) {
  if (col < 0 || col >= cols_) {
    return;
  }
  col_widths_[static_cast<size_t>(col)] = std::max(12, width);
  if (in_bulk_load_) {
    return;
  }
  Change change;
  change.kind = Change::Kind::kAttributes;
  change.pos = -1;
  change.detail = col;
  NotifyObservers(change);
}

const TableData::Cell& TableData::at(int row, int col) const {
  static const Cell kEmptyCell;
  if (!InBounds(row, col)) {
    return kEmptyCell;
  }
  return cells_[Index(row, col)];
}

TableData::Cell& TableData::MutableAt(int row, int col) { return cells_[Index(row, col)]; }

void TableData::NotifyCell(int row, int col) {
  if (in_bulk_load_) {
    return;
  }
  Recalculate();
  Change change;
  change.kind = Change::Kind::kReplaced;
  change.pos = row;
  change.detail = col;
  NotifyObservers(change);
}

void TableData::ClearCell(int row, int col) {
  if (!InBounds(row, col)) {
    return;
  }
  MutableAt(row, col) = Cell{};
  NotifyCell(row, col);
}

void TableData::SetText(int row, int col, std::string_view text) {
  if (!InBounds(row, col)) {
    return;
  }
  Cell& cell = MutableAt(row, col);
  cell = Cell{};
  cell.kind = CellKind::kText;
  cell.text = std::string(text);
  NotifyCell(row, col);
}

void TableData::SetNumber(int row, int col, double value) {
  if (!InBounds(row, col)) {
    return;
  }
  Cell& cell = MutableAt(row, col);
  cell = Cell{};
  cell.kind = CellKind::kNumber;
  cell.value = value;
  NotifyCell(row, col);
}

void TableData::SetFormula(int row, int col, std::string_view source) {
  if (!InBounds(row, col)) {
    return;
  }
  Cell& cell = MutableAt(row, col);
  cell = Cell{};
  cell.kind = CellKind::kFormula;
  cell.text = std::string(source);
  ParsedFormula parsed = ParseFormula(source);
  if (parsed.ok) {
    cell.expr = std::move(parsed.expr);
  } else {
    cell.error = true;
    cell.error_message = parsed.error;
  }
  NotifyCell(row, col);
}

void TableData::SetFromInput(int row, int col, std::string_view input) {
  if (input.empty()) {
    ClearCell(row, col);
    return;
  }
  if (input[0] == '=') {
    SetFormula(row, col, input.substr(1));
    return;
  }
  char* end = nullptr;
  std::string copy(input);
  double value = std::strtod(copy.c_str(), &end);
  if (end != nullptr && *end == '\0' && end != copy.c_str()) {
    SetNumber(row, col, value);
    return;
  }
  SetText(row, col, input);
}

DataObject* TableData::SetObject(int row, int col, std::unique_ptr<DataObject> data,
                                 std::string_view view_type) {
  if (!InBounds(row, col) || data == nullptr) {
    return nullptr;
  }
  Cell& cell = MutableAt(row, col);
  cell = Cell{};
  cell.kind = CellKind::kObject;
  cell.view_type =
      view_type.empty() ? DefaultViewName(data->DataTypeName()) : std::string(view_type);
  cell.object = std::move(data);
  DataObject* raw = cell.object.get();
  NotifyCell(row, col);
  return raw;
}

double TableData::Value(int row, int col) const {
  const Cell& cell = at(row, col);
  switch (cell.kind) {
    case CellKind::kNumber:
    case CellKind::kFormula:
      return cell.error ? 0.0 : cell.value;
    default:
      return 0.0;
  }
}

std::string TableData::DisplayText(int row, int col) const {
  const Cell& cell = at(row, col);
  switch (cell.kind) {
    case CellKind::kEmpty:
      return "";
    case CellKind::kText:
      return cell.text;
    case CellKind::kObject:
      return "";
    case CellKind::kNumber:
    case CellKind::kFormula: {
      if (cell.error) {
        return "#ERR";
      }
      double v = cell.value;
      char buf[32];
      if (v == std::floor(v) && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
      } else {
        std::snprintf(buf, sizeof(buf), "%g", v);
      }
      return buf;
    }
  }
  return "";
}

void TableData::Recalculate() {
  ++recalc_count_;
  last_recalc_evaluations_ = 0;
  // Three-color DFS over formula cells; cycles poison every cell on them.
  enum class Mark { kWhite, kGray, kBlack };
  std::vector<Mark> marks(cells_.size(), Mark::kWhite);

  FormulaEnv env;
  env.value = [this](CellRef ref) { return Value(ref.row, ref.col); };
  env.has_error = [this](CellRef ref) {
    const Cell& cell = at(ref.row, ref.col);
    return (cell.kind == CellKind::kFormula || cell.kind == CellKind::kNumber) && cell.error;
  };

  // Recursive evaluation with an explicit lambda (documents are small; the
  // recursion depth is bounded by the dependency chain length).
  std::function<bool(int, int)> evaluate = [&](int row, int col) -> bool {
    // Returns false when the cell is (or depends on) a cycle/error.
    if (!InBounds(row, col)) {
      return true;  // Out-of-range refs read as 0.
    }
    Cell& cell = MutableAt(row, col);
    if (cell.kind != CellKind::kFormula) {
      return true;
    }
    Mark& mark = marks[Index(row, col)];
    if (mark == Mark::kGray) {
      cell.error = true;
      cell.error_message = "circular reference";
      return false;
    }
    if (mark == Mark::kBlack) {
      return !cell.error;
    }
    mark = Mark::kGray;
    bool ok = cell.expr != nullptr;
    if (!ok) {
      cell.error = true;
    } else {
      cell.error = false;
      cell.error_message.clear();
      std::vector<CellRef> refs;
      cell.expr->CollectRefs(refs);
      for (CellRef ref : refs) {
        if (!evaluate(ref.row, ref.col)) {
          ok = false;
        }
      }
      if (ok) {
        ++last_recalc_evaluations_;
        FormulaResult result = cell.expr->Evaluate(env);
        cell.value = result.value;
        cell.error = result.error;
        cell.error_message = result.error_message;
        ok = !result.error;
      } else {
        cell.error = true;
        if (cell.error_message.empty()) {
          cell.error_message = "depends on error cell";
        }
      }
    }
    mark = Mark::kBlack;
    return ok;
  };

  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      evaluate(r, c);
    }
  }
}

void TableData::WriteBody(DataStreamWriter& writer) const {
  writer.WriteDirective("dimensions", std::to_string(rows_) + "," + std::to_string(cols_));
  writer.WriteNewline();
  for (int c = 0; c < cols_; ++c) {
    if (col_widths_[static_cast<size_t>(c)] != kDefaultColWidth) {
      writer.WriteDirective("colwidth", std::to_string(c) + "," +
                                            std::to_string(col_widths_[static_cast<size_t>(c)]));
      writer.WriteNewline();
    }
  }
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const Cell& cell = at(r, c);
      std::string rc = std::to_string(r) + "," + std::to_string(c);
      switch (cell.kind) {
        case CellKind::kEmpty:
          break;
        case CellKind::kText:
          writer.WriteDirective("cell", rc + ",text");
          writer.WriteText(cell.text);
          writer.WriteNewline();
          break;
        case CellKind::kNumber: {
          char buf[40];
          std::snprintf(buf, sizeof(buf), "%.17g", cell.value);
          writer.WriteDirective("cell", rc + ",number");
          writer.WriteText(buf);
          writer.WriteNewline();
          break;
        }
        case CellKind::kFormula:
          writer.WriteDirective("cell", rc + ",formula");
          writer.WriteText(cell.text);
          writer.WriteNewline();
          break;
        case CellKind::kObject: {
          writer.WriteDirective("cellobject", rc);
          writer.WriteNewline();
          int64_t id = cell.object->Write(writer);
          writer.WriteViewReference(cell.view_type, id);
          writer.WriteNewline();
          break;
        }
      }
    }
  }
}

bool TableData::ReadBody(DataStreamReader& reader, ReadContext& context) {
  using Kind = DataStreamReader::Token::Kind;
  in_bulk_load_ = true;
  rows_ = 0;
  cols_ = 0;
  cells_.clear();
  col_widths_.clear();
  Resize(1, 1);
  int pending_obj_row = -1;
  int pending_obj_col = -1;
  // Cell content is the text that follows a \cell directive, up to newline.
  int content_row = -1;
  int content_col = -1;
  std::string content_kind;
  std::string content;
  std::vector<std::pair<int64_t, std::unique_ptr<DataObject>>> pending_children;

  auto commit_content = [&]() {
    if (content_row < 0) {
      return;
    }
    if (content_kind == "text") {
      SetText(content_row, content_col, content);
    } else if (content_kind == "number") {
      SetNumber(content_row, content_col, std::atof(content.c_str()));
    } else if (content_kind == "formula") {
      SetFormula(content_row, content_col, content);
    }
    content_row = -1;
    content.clear();
  };

  bool ok = true;
  while (true) {
    DataStreamReader::Token token = reader.Next();
    if (token.kind == Kind::kEof) {
      ok = false;
      break;
    }
    if (token.kind == Kind::kEndData) {
      break;
    }
    switch (token.kind) {
      case Kind::kText: {
        if (content_row >= 0) {
          size_t nl = token.text.find('\n');
          content += token.text.substr(0, nl);
          if (nl != std::string::npos) {
            commit_content();
          }
        }
        break;
      }
      case Kind::kDirective: {
        commit_content();
        std::string args(token.text);
        if (token.type == "dimensions") {
          int r = 0;
          int c = 0;
          if (std::sscanf(args.c_str(), "%d,%d", &r, &c) == 2) {
            Resize(r, c);
          }
        } else if (token.type == "colwidth") {
          int c = 0;
          int w = 0;
          if (std::sscanf(args.c_str(), "%d,%d", &c, &w) == 2) {
            SetColWidth(c, w);
          }
        } else if (token.type == "cell") {
          int r = 0;
          int c = 0;
          char kind_buf[16] = {0};
          if (std::sscanf(args.c_str(), "%d,%d,%15s", &r, &c, kind_buf) == 3 &&
              InBounds(r, c)) {
            content_row = r;
            content_col = c;
            content_kind = kind_buf;
            content.clear();
          }
        } else if (token.type == "cellobject") {
          int r = 0;
          int c = 0;
          if (std::sscanf(args.c_str(), "%d,%d", &r, &c) == 2 && InBounds(r, c)) {
            pending_obj_row = r;
            pending_obj_col = c;
          }
        }
        break;
      }
      case Kind::kBeginData: {
        commit_content();
        std::unique_ptr<DataObject> child =
            ReadObjectBody(reader, context, std::string(token.type), token.id);
        if (child != nullptr) {
          pending_children.emplace_back(token.id, std::move(child));
        }
        break;
      }
      case Kind::kViewRef: {
        auto it = std::find_if(pending_children.begin(), pending_children.end(),
                               [&](const auto& pair) { return pair.first == token.id; });
        if (it != pending_children.end() && pending_obj_row >= 0) {
          SetObject(pending_obj_row, pending_obj_col, std::move(it->second), token.type);
          pending_children.erase(it);
          pending_obj_row = -1;
        } else {
          context.AddError("table \\view reference with no pending cellobject");
        }
        break;
      }
      default:
        break;
    }
  }
  commit_content();
  in_bulk_load_ = false;
  Recalculate();
  Change change;
  change.kind = Change::Kind::kModified;
  NotifyObservers(change);
  return ok;
}

}  // namespace atk
