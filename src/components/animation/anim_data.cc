#include "src/components/animation/anim_data.h"

#include <cstdio>
#include <sstream>

namespace atk {

ATK_DEFINE_CLASS(AnimData, DataObject, "animation")

AnimData::AnimData() = default;

AnimData::~AnimData() = default;

void AnimData::NotifyModified() {
  Change change;
  change.kind = Change::Kind::kModified;
  NotifyObservers(change);
}

int AnimData::AddFrame(bool copy_previous) {
  Frame frame;
  if (copy_previous && !frames_.empty()) {
    frame = frames_.back();
  }
  frames_.push_back(std::move(frame));
  NotifyModified();
  return frame_count() - 1;
}

void AnimData::AddLine(int frame, Point a, Point b) {
  if (frame < 0 || frame >= frame_count()) {
    return;
  }
  Command cmd;
  cmd.kind = Command::Kind::kLine;
  cmd.box = Rect::FromCorners(a.x, a.y, b.x, b.y);
  // Preserve direction via width/height signs being lost: store as corners
  // in box with the convention (x,y)-(x+width,y+height).
  cmd.box = Rect{a.x, a.y, b.x - a.x, b.y - a.y};
  frames_[static_cast<size_t>(frame)].commands.push_back(cmd);
  NotifyModified();
}

void AnimData::AddRect(int frame, const Rect& box, bool filled) {
  if (frame < 0 || frame >= frame_count()) {
    return;
  }
  Command cmd;
  cmd.kind = filled ? Command::Kind::kFillRect : Command::Kind::kRect;
  cmd.box = box;
  frames_[static_cast<size_t>(frame)].commands.push_back(cmd);
  NotifyModified();
}

void AnimData::AddEllipse(int frame, const Rect& box) {
  if (frame < 0 || frame >= frame_count()) {
    return;
  }
  Command cmd;
  cmd.kind = Command::Kind::kEllipse;
  cmd.box = box;
  frames_[static_cast<size_t>(frame)].commands.push_back(cmd);
  NotifyModified();
}

void AnimData::AddText(int frame, Point at, std::string text) {
  if (frame < 0 || frame >= frame_count()) {
    return;
  }
  Command cmd;
  cmd.kind = Command::Kind::kText;
  cmd.box = Rect{at.x, at.y, 0, 0};
  cmd.text = std::move(text);
  frames_[static_cast<size_t>(frame)].commands.push_back(cmd);
  NotifyModified();
}

void AnimData::Clear() {
  frames_.clear();
  NotifyModified();
}

Rect AnimData::ContentBounds() const {
  Rect bounds;
  for (const Frame& frame : frames_) {
    for (const Command& cmd : frame.commands) {
      if (cmd.kind == Command::Kind::kLine) {
        bounds = bounds.Union(Rect{cmd.box.x, cmd.box.y, 1, 1});
        bounds = bounds.Union(Rect{cmd.box.x + cmd.box.width, cmd.box.y + cmd.box.height, 1, 1});
      } else if (cmd.kind == Command::Kind::kText) {
        bounds = bounds.Union(Rect{cmd.box.x, cmd.box.y, 6 * static_cast<int>(cmd.text.size()),
                                   10});
      } else {
        bounds = bounds.Union(cmd.box);
      }
    }
  }
  return bounds;
}

void AnimData::WriteBody(DataStreamWriter& writer) const {
  for (const Frame& frame : frames_) {
    writer.WriteDirective("animframe", std::to_string(frame.commands.size()));
    writer.WriteNewline();
    for (const Command& cmd : frame.commands) {
      std::ostringstream args;
      const char* kind = "line";
      switch (cmd.kind) {
        case Command::Kind::kLine:
          kind = "line";
          break;
        case Command::Kind::kRect:
          kind = "rect";
          break;
        case Command::Kind::kFillRect:
          kind = "fillrect";
          break;
        case Command::Kind::kEllipse:
          kind = "ellipse";
          break;
        case Command::Kind::kText:
          kind = "text";
          break;
      }
      args << kind << "," << cmd.box.x << "," << cmd.box.y << "," << cmd.box.width << ","
           << cmd.box.height;
      writer.WriteDirective("animcmd", args.str());
      if (cmd.kind == Command::Kind::kText) {
        writer.WriteText(cmd.text);
      }
      writer.WriteNewline();
    }
  }
}

bool AnimData::ReadBody(DataStreamReader& reader, ReadContext& context) {
  (void)context;
  using Kind = DataStreamReader::Token::Kind;
  frames_.clear();
  Command* pending_text_cmd = nullptr;
  bool ok = true;
  while (true) {
    DataStreamReader::Token token = reader.Next();
    if (token.kind == Kind::kEndData) {
      break;
    }
    if (token.kind == Kind::kEof) {
      ok = false;
      break;
    }
    if (token.kind == Kind::kDirective) {
      if (token.type == "animframe") {
        frames_.push_back(Frame{});
        pending_text_cmd = nullptr;
      } else if (token.type == "animcmd" && !frames_.empty()) {
        char kind_buf[16] = {0};
        Command cmd;
        std::string args(token.text);
        if (std::sscanf(args.c_str(), "%15[a-z],%d,%d,%d,%d", kind_buf, &cmd.box.x,
                        &cmd.box.y, &cmd.box.width, &cmd.box.height) == 5) {
          std::string kind = kind_buf;
          if (kind == "line") {
            cmd.kind = Command::Kind::kLine;
          } else if (kind == "rect") {
            cmd.kind = Command::Kind::kRect;
          } else if (kind == "fillrect") {
            cmd.kind = Command::Kind::kFillRect;
          } else if (kind == "ellipse") {
            cmd.kind = Command::Kind::kEllipse;
          } else if (kind == "text") {
            cmd.kind = Command::Kind::kText;
          }
          frames_.back().commands.push_back(std::move(cmd));
          pending_text_cmd = frames_.back().commands.back().kind == Command::Kind::kText
                                 ? &frames_.back().commands.back()
                                 : nullptr;
        }
      }
    } else if (token.kind == Kind::kText) {
      if (pending_text_cmd != nullptr) {
        size_t nl = token.text.find('\n');
        pending_text_cmd->text += token.text.substr(0, nl);
        if (nl != std::string::npos) {
          pending_text_cmd = nullptr;
        }
      }
    } else if (token.kind == Kind::kBeginData) {
      reader.SkipObject(token.type, token.id);
    }
  }
  NotifyModified();
  return ok;
}

}  // namespace atk
