// AnimData — the simple-animation component (snapshot 5 animates the
// construction of Pascal's Triangle inside a table cell).
//
// An animation is a sequence of frames; each frame is a list of primitive
// draw commands.  Playback is driven by an explicit Tick() from whoever owns
// the clock (application main loop, test, or bench) — nothing in the toolkit
// blocks on wall time, keeping every run deterministic.

#ifndef ATK_SRC_COMPONENTS_ANIMATION_ANIM_DATA_H_
#define ATK_SRC_COMPONENTS_ANIMATION_ANIM_DATA_H_

#include <string>
#include <vector>

#include "src/base/data_object.h"
#include "src/graphics/geometry.h"

namespace atk {

class AnimData : public DataObject {
  ATK_DECLARE_CLASS(AnimData)

 public:
  struct Command {
    enum class Kind { kLine, kRect, kFillRect, kEllipse, kText };
    Kind kind = Kind::kLine;
    Rect box;           // kRect/kFillRect/kEllipse; kLine uses corners.
    std::string text;   // kText content, drawn at box origin.
  };

  struct Frame {
    std::vector<Command> commands;
  };

  AnimData();
  ~AnimData() override;

  int frame_count() const { return static_cast<int>(frames_.size()); }
  const Frame& frame(int index) const { return frames_[static_cast<size_t>(index)]; }

  // Appends a new empty frame (optionally copying the previous frame, the
  // common idiom for cumulative animations) and returns its index.
  int AddFrame(bool copy_previous = false);
  void AddLine(int frame, Point a, Point b);
  void AddRect(int frame, const Rect& box, bool filled = false);
  void AddEllipse(int frame, const Rect& box);
  void AddText(int frame, Point at, std::string text);
  void Clear();

  // Extent of all frames' drawing.
  Rect ContentBounds() const;

  void WriteBody(DataStreamWriter& writer) const override;
  bool ReadBody(DataStreamReader& reader, ReadContext& context) override;

 private:
  void NotifyModified();

  std::vector<Frame> frames_;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_ANIMATION_ANIM_DATA_H_
