#include "src/components/animation/anim_view.h"

#include <algorithm>

#include "src/base/default_views.h"
#include "src/base/proctable.h"
#include "src/class_system/loader.h"

namespace atk {

ATK_DEFINE_CLASS(AnimView, View, "animview")

void AnimView::Play() {
  playing_ = true;
  PostUpdate();
}

void AnimView::Stop() {
  playing_ = false;
  PostUpdate();
}

void AnimView::Rewind() { ShowFrame(0); }

void AnimView::Tick() {
  AnimData* data = animation();
  if (!playing_ || data == nullptr || data->frame_count() == 0) {
    return;
  }
  current_frame_ = (current_frame_ + 1) % data->frame_count();
  PostUpdate();
}

void AnimView::ShowFrame(int index) {
  AnimData* data = animation();
  if (data == nullptr || data->frame_count() == 0) {
    current_frame_ = 0;
    return;
  }
  current_frame_ = std::clamp(index, 0, data->frame_count() - 1);
  PostUpdate();
}

void AnimView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  AnimData* data = animation();
  if (data == nullptr || data->frame_count() == 0) {
    g->SetForeground(kGray);
    g->DrawRect(g->LocalBounds());
    return;
  }
  current_frame_ = std::min(current_frame_, data->frame_count() - 1);
  g->SetForeground(kBlack);
  g->SetFont(FontSpec{"andy", 10, kPlain});
  for (const AnimData::Command& cmd : data->frame(current_frame_).commands) {
    switch (cmd.kind) {
      case AnimData::Command::Kind::kLine:
        g->DrawLine(Point{cmd.box.x, cmd.box.y},
                    Point{cmd.box.x + cmd.box.width, cmd.box.y + cmd.box.height});
        break;
      case AnimData::Command::Kind::kRect:
        g->DrawRect(cmd.box);
        break;
      case AnimData::Command::Kind::kFillRect:
        g->FillRect(cmd.box);
        break;
      case AnimData::Command::Kind::kEllipse:
        g->DrawEllipse(cmd.box);
        break;
      case AnimData::Command::Kind::kText:
        g->DrawString(cmd.box.origin(), cmd.text);
        break;
    }
  }
}

Size AnimView::DesiredSize(Size available) {
  AnimData* data = animation();
  Size desired{60, 40};
  if (data != nullptr) {
    Rect bounds = data->ContentBounds();
    desired = Size{std::max(bounds.right() + 2, 20), std::max(bounds.bottom() + 2, 16)};
  }
  if (available.width > 0) {
    desired.width = std::min(desired.width, available.width);
  }
  if (available.height > 0) {
    desired.height = std::min(desired.height, available.height);
  }
  return desired;
}

View* AnimView::Hit(const InputEvent& event) {
  if (event.type == EventType::kMouseDown) {
    RequestInputFocus();
    return this;
  }
  return event.type == EventType::kMouseUp ? this : nullptr;
}

void AnimView::FillMenus(MenuList& menus) {
  menus.Add("Animation~Animate", "animview-play");
  menus.Add("Animation~Stop", "animview-stop");
  menus.Add("Animation~Rewind", "animview-rewind");
}

void RegisterAnimationModule() {
  static bool done = [] {
    ModuleSpec spec;
    spec.name = "animation";
    spec.provides = {"animation", "animview"};
    spec.text_bytes = 20 * 1024;
    spec.data_bytes = 2 * 1024;
    spec.init = [] {
      ClassRegistry::Instance().Register(AnimData::StaticClassInfo());
      ClassRegistry::Instance().Register(AnimView::StaticClassInfo());
      SetDefaultViewName("animation", "animview");
      ProcTable& procs = ProcTable::Instance();
      procs.Register("animview-play", [](View* view, long) {
        if (AnimView* av = ObjectCast<AnimView>(view)) {
          av->Play();
        }
      });
      procs.Register("animview-stop", [](View* view, long) {
        if (AnimView* av = ObjectCast<AnimView>(view)) {
          av->Stop();
        }
      });
      procs.Register("animview-rewind", [](View* view, long) {
        if (AnimView* av = ObjectCast<AnimView>(view)) {
          av->Rewind();
        }
      });
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
