// AnimView — plays an AnimData.  "In order to run the animation, click into
// the cell and choose the animate item from the menus" (snapshot 5).  Time
// is advanced by Tick() calls from the owner, so playback is deterministic.

#ifndef ATK_SRC_COMPONENTS_ANIMATION_ANIM_VIEW_H_
#define ATK_SRC_COMPONENTS_ANIMATION_ANIM_VIEW_H_

#include "src/base/view.h"
#include "src/components/animation/anim_data.h"

namespace atk {

class AnimView : public View {
  ATK_DECLARE_CLASS(AnimView)

 public:
  AnimData* animation() const { return ObjectCast<AnimData>(data_object()); }

  int current_frame() const { return current_frame_; }
  bool playing() const { return playing_; }

  void Play();
  void Stop();
  void Rewind();
  // Advances one frame while playing (wraps at the end and keeps playing).
  void Tick();
  // Jump to a frame directly.
  void ShowFrame(int index);

  void FullUpdate() override;
  Size DesiredSize(Size available) override;
  View* Hit(const InputEvent& event) override;
  void FillMenus(MenuList& menus) override;

 private:
  int current_frame_ = 0;
  bool playing_ = false;
};

}  // namespace atk

#endif  // ATK_SRC_COMPONENTS_ANIMATION_ANIM_VIEW_H_
