#include "src/base/application.h"

#include "src/class_system/loader.h"
#include "src/observability/observability.h"

namespace atk {

ATK_DEFINE_ABSTRACT_CLASS(Application, Object, "application")

std::unique_ptr<Application> LoadApplication(std::string_view name) {
  Loader& loader = Loader::Instance();
  std::string module = "app-" + std::string(name);
  if (loader.IsDeclared(module) && !loader.Require(module)) {
    return nullptr;
  }
  std::unique_ptr<Object> obj = loader.NewObject(std::string(name) + "app");
  return ObjectCast<Application>(std::move(obj));
}

std::unique_ptr<InteractionManager> RunApp(std::string_view name, WindowSystem& ws,
                                           const std::vector<std::string>& args) {
  observability::InitFromEnv();
  observability::ScopedSpan span("app.driver.start.", name);
  std::unique_ptr<Application> app = LoadApplication(name);
  if (app == nullptr) {
    return nullptr;
  }
  std::vector<std::string> full_args;
  full_args.push_back(std::string(name));
  full_args.insert(full_args.end(), args.begin(), args.end());
  std::unique_ptr<InteractionManager> im = app->Start(ws, full_args);
  if (im != nullptr) {
    // The application object (and the views it owns) must live as long as
    // its window.
    im->Adopt(std::move(app));
  }
  return im;
}

}  // namespace atk
