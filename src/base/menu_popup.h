// The abstract pop-up menu surface the interaction manager raises.
//
// The IM (toolkit core) must not depend on any concrete widget, so it
// creates the popup through the Loader by class name ("menuview", provided
// by the widgets module — loaded on first use) and talks to it through this
// interface.

#ifndef ATK_SRC_BASE_MENU_POPUP_H_
#define ATK_SRC_BASE_MENU_POPUP_H_

#include <functional>
#include <string>

#include "src/base/menus.h"
#include "src/base/view.h"

namespace atk {

class MenuPopupView : public View {
  ATK_DECLARE_CLASS(MenuPopupView)

 public:
  // Installs the composed menu list to display.
  virtual void SetMenus(const MenuList& menus) = 0;
  // `choice` is "Card~Label", or "" when dismissed without choosing.
  virtual void SetOnChoose(std::function<void(const std::string&)> on_choose) = 0;
};

}  // namespace atk

#endif  // ATK_SRC_BASE_MENU_POPUP_H_
