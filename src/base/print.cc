#include "src/base/print.h"

namespace atk {

void PrintView(View& view, PrintJob& job) {
  Graphic* page = job.NewPage();
  view.AllocateRoot(page);
  RenderSubtree(view);
}

}  // namespace atk
