// Keymaps and the key-state machine.
//
// A KeyMap binds key *sequences* to named procs ("\030\023" = C-x C-s).
// Sequences are strings; control characters are the bytes 1..26, and a
// two-character "\033x" prefix spells Meta-x.  The interaction manager keeps
// one KeyState per window: it accumulates a prefix while it matches some
// binding reachable from the focus view's keymap chain (§3's "mapping of
// keyboard symbols" negotiated between children and parents).

#ifndef ATK_SRC_BASE_KEYMAP_H_
#define ATK_SRC_BASE_KEYMAP_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace atk {

// Builds sequence strings: Ctl('x') == '\030'.
constexpr char Ctl(char ch) { return static_cast<char>(ch & 0x1F); }

struct KeyBinding {
  std::string sequence;
  std::string proc_name;
  long rock = 0;
};

class KeyMap {
 public:
  void Bind(std::string_view sequence, std::string_view proc_name, long rock = 0);
  void Unbind(std::string_view sequence);

  // Exact binding for `sequence`, or nullptr.
  const KeyBinding* Lookup(std::string_view sequence) const;
  // True when some binding has `sequence` as a strict prefix.
  bool IsPrefix(std::string_view sequence) const;

  size_t size() const { return bindings_.size(); }
  std::vector<const KeyBinding*> All() const;

 private:
  std::map<std::string, KeyBinding, std::less<>> bindings_;
};

// Resolution across a chain of keymaps (innermost view first).
class KeyState {
 public:
  enum class Result {
    kNoMatch,   // Sequence matches nothing; prefix has been reset.
    kPrefix,    // Waiting for more keys.
    kComplete,  // A binding matched; see binding().
  };

  // Feeds one key given the active keymap chain.  On kComplete the matched
  // binding is in binding() and the prefix resets.  On kNoMatch the prefix
  // resets; the caller typically falls back to self-insert.
  Result Feed(char key, const std::vector<const KeyMap*>& chain);

  const KeyBinding* binding() const { return binding_; }
  const std::string& pending() const { return pending_; }
  void Reset();

 private:
  std::string pending_;
  const KeyBinding* binding_ = nullptr;
};

}  // namespace atk

#endif  // ATK_SRC_BASE_KEYMAP_H_
