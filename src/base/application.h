// Applications and runapp (§7).
//
// Every toolkit application derives from Application and is provided by a
// loader module; `RunApp` is the resident base program that dynamically
// loads the requested application's module, instantiates its class by name
// and starts it.  All applications therefore share the resident toolkit
// code — the paper's list of wins (less paging, smaller VM, smaller files)
// is reproduced quantitatively by bench_dynload.

#ifndef ATK_SRC_BASE_APPLICATION_H_
#define ATK_SRC_BASE_APPLICATION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/interaction_manager.h"
#include "src/class_system/object.h"
#include "src/wm/window_system.h"

namespace atk {

class Application : public Object {
  ATK_DECLARE_CLASS(Application)

 public:
  ~Application() override = default;

  // Builds the application's view tree in a window of `ws` and returns its
  // interaction manager ready to pump.  `args` are command-line style
  // arguments (args[0] is the app name).
  virtual std::unique_ptr<InteractionManager> Start(WindowSystem& ws,
                                                    const std::vector<std::string>& args) = 0;

  virtual std::string AppName() const { return class_name(); }
};

// The runapp entry point: loads module "app-<name>" on demand, instantiates
// class "<name>app", and starts it.  Returns nullptr when no such
// application module is declared.
std::unique_ptr<Application> LoadApplication(std::string_view name);

// Convenience: LoadApplication + Start.
std::unique_ptr<InteractionManager> RunApp(std::string_view name, WindowSystem& ws,
                                           const std::vector<std::string>& args = {});

}  // namespace atk

#endif  // ATK_SRC_BASE_APPLICATION_H_
