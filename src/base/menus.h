// Menu lists and their arbitration.
//
// §3: the parental-authority channel "is used between children and parents
// to negotiate the contents of menus".  Every view on the focus path
// contributes a MenuList; the interaction manager composes them innermost
// first.  ATK's mask mechanism is reproduced: each item carries a mask and
// each list an active mask, so a view can switch whole item groups on and
// off (e.g. "selection" items only while a selection exists).

#ifndef ATK_SRC_BASE_MENUS_H_
#define ATK_SRC_BASE_MENUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace atk {

struct MenuItem {
  std::string card;       // Menu card ("File", "Edit").
  std::string label;      // Item label ("Save").
  std::string proc_name;  // ProcTable command.
  long rock = 0;
  uint32_t mask = 1;      // Item is visible when (mask & list active mask) != 0.
};

class MenuList {
 public:
  // `spec` is "Card~Label" or just "Label" (goes on the default card).
  void Add(std::string_view spec, std::string_view proc_name, long rock = 0,
           uint32_t mask = 1);
  void Remove(std::string_view spec);
  void Clear() { items_.clear(); }

  void SetActiveMask(uint32_t mask) { active_mask_ = mask; }
  uint32_t active_mask() const { return active_mask_; }

  // Items visible under the active mask.
  std::vector<const MenuItem*> Visible() const;
  const std::vector<MenuItem>& items() const { return items_; }
  size_t size() const { return items_.size(); }

  // Appends another list's visible items (child lists are appended before
  // parent lists by the composer).  Items whose "Card~Label" already exists
  // are shadowed: the earlier (inner) item wins.
  void Append(const MenuList& other);

  // Finds a visible item by "Card~Label" or bare "Label".
  const MenuItem* Find(std::string_view spec) const;

  static std::string KeyOf(const MenuItem& item);

 private:
  std::vector<MenuItem> items_;
  uint32_t active_mask_ = ~0u;
};

}  // namespace atk

#endif  // ATK_SRC_BASE_MENUS_H_
