// The procedure table: named commands.
//
// §7: "Sophisticated users can write code (using the class system) to
// implement new commands.  These commands can be bound either to key
// sequences or to menus.  When invoked, the code is loaded and executed."
// Menu items and keymap entries hold a *name*; the name is resolved here at
// invocation time, so a command provided by a not-yet-loaded module works:
// resolution falls back to the Loader when the name is unknown.

#ifndef ATK_SRC_BASE_PROCTABLE_H_
#define ATK_SRC_BASE_PROCTABLE_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace atk {

class View;

// A command: receives the view it was invoked on and an integer "rock"
// (the classic ATK closure argument).
using ProcFn = std::function<void(View*, long)>;

class ProcTable {
 public:
  static ProcTable& Instance();

  // Registers `fn` under `name` ("textview-delete-next-char" style).
  // Re-registration replaces (modules may be reloaded).
  void Register(std::string_view name, ProcFn fn);
  void Unregister(std::string_view name);

  bool Contains(std::string_view name) const;

  // Invokes `name`.  When the name is unknown, asks the Loader to load the
  // module "proc:<prefix>" conventionally derived from the name's component
  // prefix, then retries — load-on-invoke for extension commands.
  bool Invoke(std::string_view name, View* view, long rock = 0);

  std::vector<std::string> Names() const;
  uint64_t invocation_count() const { return invocation_count_; }

 private:
  ProcTable() = default;

  std::map<std::string, ProcFn, std::less<>> procs_;
  uint64_t invocation_count_ = 0;
};

}  // namespace atk

#endif  // ATK_SRC_BASE_PROCTABLE_H_
