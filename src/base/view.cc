#include "src/base/view.h"

#include <algorithm>

#include "src/observability/observability.h"

namespace atk {

ATK_DEFINE_CLASS(View, Object, "view")

View::View() = default;

View::~View() {
  if (data_object_ != nullptr) {
    data_object_->RemoveObserver(this);
  }
  if (parent_ != nullptr) {
    parent_->RemoveChild(this);
  }
  for (View* child : children_) {
    child->parent_ = nullptr;
  }
}

void View::AddChild(View* child) {
  if (child == nullptr || child->parent_ == this) {
    return;
  }
  if (child->parent_ != nullptr) {
    child->parent_->RemoveChild(child);
  }
  child->parent_ = this;
  children_.push_back(child);
}

void View::RemoveChild(View* child) {
  auto it = std::find(children_.begin(), children_.end(), child);
  if (it != children_.end()) {
    (*it)->parent_ = nullptr;
    children_.erase(it);
  }
}

InteractionManager* View::GetIM() {
  return parent_ != nullptr ? parent_->GetIM() : nullptr;
}

int View::TreeDepth() const {
  int depth = 0;
  for (const View* v = parent_; v != nullptr; v = v->parent_) {
    ++depth;
  }
  return depth;
}

void View::SetDataObject(DataObject* data) {
  if (data_object_ == data) {
    return;
  }
  if (data_object_ != nullptr) {
    data_object_->RemoveObserver(this);
  }
  data_object_ = data;
  if (data_object_ != nullptr) {
    data_object_->AddObserver(this);
  }
}

void View::ObservedChanged(Observable* changed, const Change& change) {
  if (changed == data_object_ && change.kind == Change::Kind::kDestroyed) {
    data_object_ = nullptr;
    return;
  }
  PostUpdate();
}

void View::Allocate(const Rect& in_parent, Graphic* parent_graphic) {
  bounds_ = in_parent;
  graphic_ = parent_graphic != nullptr ? parent_graphic->CreateSub(in_parent) : nullptr;
  Layout();
}

void View::AllocateRoot(Graphic* root_graphic) {
  if (root_graphic == nullptr) {
    return;
  }
  bounds_ = root_graphic->LocalBounds();
  graphic_ = root_graphic->CreateSub(bounds_);
  Layout();
}

Rect View::DeviceBounds() const {
  if (graphic_ == nullptr) {
    return Rect{};
  }
  Point origin = graphic_->device_origin();
  return Rect{origin.x, origin.y, bounds_.width, bounds_.height};
}

void View::FullUpdate() {
  if (graphic_ != nullptr) {
    graphic_->Clear();
  }
}

void View::PostUpdate(const Rect& local) {
  if (graphic_ == nullptr || local.IsEmpty()) {
    return;
  }
  static observability::Counter& posted =
      observability::MetricsRegistry::Instance().counter("view.update.posted");
  posted.Add(1);
  Point origin = graphic_->device_origin();
  WantUpdate(this, local.Translated(origin.x, origin.y));
}

void View::WantUpdate(View* requestor, const Rect& device_region) {
  if (parent_ != nullptr) {
    // Each parent hop on the way up to the interaction manager (§3's upward
    // channel); hops / posts is the mean depth a request travels.
    static observability::Counter& hopped =
        observability::MetricsRegistry::Instance().counter("view.update.hopped");
    hopped.Add(1);
    parent_->WantUpdate(requestor, device_region);
  }
}

View* View::Hit(const InputEvent& event) {
  View* child = ChildAt(event.pos);
  if (child != nullptr) {
    return child->Hit(TranslateToChild(event, *child));
  }
  return nullptr;
}

bool View::HandleKey(char key, unsigned modifiers) {
  (void)key;
  (void)modifiers;
  return false;
}

void View::FillMenus(MenuList& menus) { (void)menus; }

CursorShape View::CursorAt(Point local) {
  View* child = ChildAt(local);
  if (child != nullptr) {
    return child->CursorAt(local - child->bounds().origin());
  }
  return preferred_cursor_;
}

// View::RequestInputFocus is defined in interaction_manager.cc (it needs the
// full InteractionManager type).

View* View::ChildAt(Point local) const {
  // Last-linked child is on top.
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    if ((*it)->bounds().Contains(local)) {
      return *it;
    }
  }
  return nullptr;
}

InputEvent View::TranslateToChild(const InputEvent& event, const View& child) {
  InputEvent translated = event;
  translated.pos = event.pos - child.bounds().origin();
  return translated;
}

void RenderSubtree(View& view) {
  if (!view.HasGraphic()) {
    return;
  }
  view.FullUpdate();
  for (View* child : view.children()) {
    RenderSubtree(*child);
  }
}

}  // namespace atk
