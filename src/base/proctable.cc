#include "src/base/proctable.h"

#include "src/class_system/loader.h"

namespace atk {

ProcTable& ProcTable::Instance() {
  static ProcTable* table = new ProcTable();
  return *table;
}

void ProcTable::Register(std::string_view name, ProcFn fn) {
  procs_[std::string(name)] = std::move(fn);
}

void ProcTable::Unregister(std::string_view name) {
  auto it = procs_.find(name);
  if (it != procs_.end()) {
    procs_.erase(it);
  }
}

bool ProcTable::Contains(std::string_view name) const {
  return procs_.find(name) != procs_.end();
}

bool ProcTable::Invoke(std::string_view name, View* view, long rock) {
  auto it = procs_.find(name);
  if (it == procs_.end()) {
    // Extension convention: the proc "foo-bar-baz" may live in a dormant
    // module named "proc:foo".  Load it and retry once.
    size_t dash = name.find('-');
    std::string prefix(name.substr(0, dash));
    if (Loader::Instance().Require("proc:" + prefix)) {
      it = procs_.find(name);
    }
    if (it == procs_.end()) {
      return false;
    }
  }
  ++invocation_count_;
  it->second(view, rock);
  return true;
}

std::vector<std::string> ProcTable::Names() const {
  std::vector<std::string> names;
  names.reserve(procs_.size());
  for (const auto& [name, fn] : procs_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace atk
