// View — the user-interface half of a component (§2, §3).
//
// Views form a tree: each view is a rectangle completely contained in its
// parent, rooted at the interaction manager.  The toolkit defines no screen
// relationship between siblings — that is the parent's business.  Events are
// passed *down* the tree, each parent deciding the disposition for its
// children ("parental authority"); update requests are posted *up* the tree
// and come back down as one coalesced update pass.
//
// A view draws exclusively through its Graphic (created by the parent as a
// sub-drawable clipped to the child's allocation), holds only transient
// state, and may observe a data object, scheduling repaints when notified.

#ifndef ATK_SRC_BASE_VIEW_H_
#define ATK_SRC_BASE_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/data_object.h"
#include "src/base/keymap.h"
#include "src/base/menus.h"
#include "src/class_system/object.h"
#include "src/class_system/observable.h"
#include "src/graphics/cursor_shape.h"
#include "src/graphics/graphic.h"
#include "src/wm/event.h"

namespace atk {

class InteractionManager;

class View : public Object, public Observer {
  ATK_DECLARE_CLASS(View)

 public:
  View();
  ~View() override;

  View(const View&) = delete;
  View& operator=(const View&) = delete;

  // ---- Tree structure ----------------------------------------------------
  View* parent() const { return parent_; }
  const std::vector<View*>& children() const { return children_; }
  // Links `child` under this view (no geometry yet; Layout allocates).
  // Links are non-owning; whoever created the child keeps ownership.
  void AddChild(View* child);
  void RemoveChild(View* child);
  // The interaction manager at the root of this view's tree, or nullptr
  // when the view is not yet in a tree.
  virtual InteractionManager* GetIM();
  int TreeDepth() const;

  // ---- Data object -------------------------------------------------------
  // Starts observing `data` (detaching from any previous data object).
  // The view does not own its data object.
  void SetDataObject(DataObject* data);
  DataObject* data_object() const { return data_object_; }
  // Default reaction to data changes: schedule a full repaint.  Components
  // override to damage only what changed (the delayed-update mechanism).
  void ObservedChanged(Observable* changed, const Change& change) override;

  // ---- Geometry & allocation ----------------------------------------------
  // Bounds within the parent's coordinate space.
  const Rect& bounds() const { return bounds_; }
  // Allocates screen space: creates this view's drawable as a sub-graphic of
  // `parent_graphic` covering `in_parent`, then runs Layout() so the view
  // allocates its own children.  Called by the parent's Layout.
  void Allocate(const Rect& in_parent, Graphic* parent_graphic);
  // Root variant used by the interaction manager and the printer.
  void AllocateRoot(Graphic* root_graphic);
  Graphic* graphic() const { return graphic_.get(); }
  bool HasGraphic() const { return graphic_ != nullptr; }
  // This view's allocation in window (device) coordinates.
  Rect DeviceBounds() const;
  // Places children; runs on every (re)allocation.  Implementations must
  // Allocate() each child every time (drawables are rebuilt on resize).
  virtual void Layout() {}
  // Preferred size given the space the parent is considering (§2: "how to
  // determine the size and placement of embedded components").
  virtual Size DesiredSize(Size available) { return available; }

  // ---- Painting ------------------------------------------------------------
  // Draws this view's own content.  Children are drawn by the update pass
  // *after* the parent, so the parent's image is below its children's.
  virtual void FullUpdate();
  // Repaints within the damage clip already applied to graphic(); default
  // is a full redraw.
  virtual void Update() { FullUpdate(); }
  // Requests a future repaint of `local` (posted up to the interaction
  // manager and coalesced; nothing is drawn now).
  void PostUpdate(const Rect& local);
  void PostUpdate() { PostUpdate(graphic_ ? graphic_->LocalBounds() : Rect{}); }
  // The upward channel: `device_region` is in window coordinates.  Default
  // forwards to the parent; the interaction manager overrides and collects.
  virtual void WantUpdate(View* requestor, const Rect& device_region);

  // ---- Input ----------------------------------------------------------------
  // Mouse dispatch: `event` has coordinates local to this view.  Return the
  // view that takes the event (it becomes the mouse grab for the rest of
  // the click), or nullptr to decline.  The default consults children whose
  // bounds contain the point (topmost = last linked, first consulted) and
  // declines otherwise; interactive views override.
  virtual View* Hit(const InputEvent& event);
  // Keyboard: return true when consumed.  Runs from the focus view upward.
  virtual bool HandleKey(char key, unsigned modifiers);
  // Contributes menu items while this view is on the focus path.
  virtual void FillMenus(MenuList& menus);
  // Keymap consulted (innermost first along the focus path).
  virtual const KeyMap* GetKeyMap() const { return nullptr; }
  // Cursor arbitration: parent is asked before children and may override
  // (the frame shows its drag cursor over the children's edge).  Default:
  // delegate to the child under the point, else this view's preferred shape.
  virtual CursorShape CursorAt(Point local);
  void SetPreferredCursor(CursorShape shape) { preferred_cursor_ = shape; }
  CursorShape preferred_cursor() const { return preferred_cursor_; }

  // ---- Input focus -----------------------------------------------------------
  void RequestInputFocus();
  virtual void ReceiveInputFocus() { has_input_focus_ = true; }
  virtual void LoseInputFocus() { has_input_focus_ = false; }
  bool has_input_focus() const { return has_input_focus_; }

  // ---- Helpers ---------------------------------------------------------------
  // Topmost child whose bounds contain `local`, or nullptr.
  View* ChildAt(Point local) const;
  // Copies `event` with coordinates shifted into `child`'s space.
  static InputEvent TranslateToChild(const InputEvent& event, const View& child);

  // ---- Introspection (read by the inspector's view-tree browser) -------------
  // Per-view clip-memo accounting, maintained by the interaction manager's
  // update pass: how often this view's damage clip was reused vs recomputed,
  // and the damage fingerprint of the last cycle that repainted it.
  uint64_t clip_memo_hits() const { return clip_memo_.hits; }
  uint64_t clip_memo_misses() const { return clip_memo_.misses; }
  uint64_t last_damage_fingerprint() const { return clip_memo_.damage_fp; }

 private:
  friend class InteractionManager;

  // Per-view damage-clip memo, maintained by the interaction manager's
  // update pass: when this view's device bounds and the cycle's damage
  // region both match the previous cycle, the computed clip intersection is
  // reused (counted as im.update.clip_reuse).  Living inside the view keeps
  // the cache lifetime exactly the view's lifetime — no stale-pointer maps.
  struct ClipMemo {
    uint64_t damage_fp = 0;
    Rect device;
    Rect clip_local;
    bool valid = false;
    // Lifetime totals (survive memo invalidation; reset never).
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  View* parent_ = nullptr;
  std::vector<View*> children_;
  DataObject* data_object_ = nullptr;
  Rect bounds_;
  std::unique_ptr<Graphic> graphic_;
  ClipMemo clip_memo_;
  CursorShape preferred_cursor_ = CursorShape::kArrow;
  bool has_input_focus_ = false;
};

// Draws `view` and its whole subtree (used by the printer and by tests that
// render outside an interaction manager).
void RenderSubtree(View& view);

}  // namespace atk

#endif  // ATK_SRC_BASE_VIEW_H_
