#include "src/base/data_object.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "src/class_system/loader.h"
#include "src/observability/memory.h"
#include "src/observability/memsnapshot_component.h"

namespace atk {
namespace {

// Loader::NewObject (module lookup, on-demand dlopen) is not thread-safe;
// Phase B workers decoding a grandchild inline must serialize through it.
std::mutex& LoaderMutex() {
  static std::mutex mutex;
  return mutex;
}

// The ATK_DS_THREADS knob: 0 / unset / garbage means serial decode (today's
// path, byte-for-byte); N >= 1 enables the deferred pipeline with N workers.
int ThreadsFromEnv() {
  const char* env = std::getenv("ATK_DS_THREADS");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  int threads = std::atoi(env);
  return threads > 0 ? threads : 0;
}

// ---- Decoded-object census (DESIGN.md §8) ----------------------------------
//
// Every object ReadObjectBody creates is registered here with its runtime
// ClassInfo and the byte extent of the body it was decoded from; ~DataObject
// unregisters.  The registry stores the ClassInfo pointer (leaked statics)
// at registration time, so the census never makes a virtual call on a live
// object — a concurrently-destructing instance cannot race it.

observability::MemoryAccount& DeferredMemAccount() {
  // Overlay: the queued captures are views into the reader's pinned buffer,
  // which datastream.mem.pinned already counts.
  static observability::MemoryAccount& account =
      observability::MemoryAccountant::Instance().overlay("datastream.mem.deferred");
  return account;
}

observability::MemoryAccount& OrphanMemAccount() {
  static observability::MemoryAccount& account =
      observability::MemoryAccountant::Instance().account("datastream.mem.orphan");
  return account;
}

observability::MemoryAccount& DataObjectMemAccount() {
  // Overlay: decoded body bytes live in the components' own storage (gap
  // buffers, cell vectors), which their accounts count exclusively.
  static observability::MemoryAccount& account =
      observability::MemoryAccountant::Instance().overlay("base.mem.dataobject");
  return account;
}

struct LiveObjectRegistry {
  std::mutex mu;
  std::unordered_map<const DataObject*, std::pair<const ClassInfo*, size_t>> live;
};

LiveObjectRegistry& Registry() {
  static LiveObjectRegistry* registry = new LiveObjectRegistry();
  return *registry;
}

std::vector<observability::CensusRow> DataObjectCensus() {
  std::map<std::string_view, observability::CensusRow> by_class;
  LiveObjectRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& [object, entry] : registry.live) {
    const auto& [info, bytes] = entry;
    observability::CensusRow& row = by_class[info->name()];
    if (row.name.empty()) {
      row.name = info->name();
    }
    row.count += 1;
    row.bytes += bytes;
  }
  std::vector<observability::CensusRow> rows;
  rows.reserve(by_class.size());
  for (auto& [name, row] : by_class) {
    rows.push_back(std::move(row));
  }
  return rows;
}

void EnsureMemoryHooks() {
  static bool once = [] {
    observability::MemoryAccountant::Instance().RegisterCensusSource("dataobject",
                                                                    &DataObjectCensus);
    observability::InstallMemSnapshotWriter();
    return true;
  }();
  (void)once;
}

void RegisterDecodedObject(const DataObject* object, size_t body_bytes) {
  EnsureMemoryHooks();
  LiveObjectRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] =
      registry.live.emplace(object, std::make_pair(&object->GetClassInfo(), body_bytes));
  if (inserted) {
    DataObjectMemAccount().Charge(static_cast<int64_t>(body_bytes));
  }
}

void UnregisterDecodedObject(const DataObject* object) {
  size_t bytes = 0;
  bool found = false;
  {
    LiveObjectRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mu);
    auto it = registry.live.find(object);
    if (it != registry.live.end()) {
      bytes = it->second.second;
      found = true;
      registry.live.erase(it);
    }
  }
  if (found) {
    DataObjectMemAccount().Release(static_cast<int64_t>(bytes));
  }
}

}  // namespace

ATK_DEFINE_ABSTRACT_CLASS(DataObject, Object, "dataobject")
ATK_DEFINE_CLASS(UnknownObject, DataObject, "unknown")

DataObject::~DataObject() {
  if (deferred_in_ != nullptr) {
    deferred_in_->CancelDeferred(this);
  }
  UnregisterDecodedObject(this);
}

int64_t DataObject::Write(DataStreamWriter& writer) const {
  int64_t id = writer.BeginData(DataTypeName());
  writer.RegisterObjectId(this, id);
  WriteBody(writer);
  writer.EndData();
  return id;
}

std::string DataObject::WriteToString() const {
  std::ostringstream out;
  DataStreamWriter writer(out);
  Write(writer);
  return out.str();
}

bool DataObject::ConsumeUntilEndData(DataStreamReader& reader) {
  using Kind = DataStreamReader::Token::Kind;
  while (true) {
    DataStreamReader::Token token = reader.Next();
    switch (token.kind) {
      case Kind::kEndData:
        return true;
      case Kind::kEof:
        return false;
      case Kind::kBeginData: {
        // Embedded object we are not modelling: skip it whole.
        reader.SkipObject(token.type, token.id);
        break;
      }
      default:
        break;  // Text, view refs and directives are ignored here.
    }
  }
}

void ReadContext::EnableDeferredDecode(int workers) {
  if (workers < 1) {
    workers = 1;
  }
  if (workers > 64) {
    workers = 64;
  }
  workers_ = workers;
}

void ReadContext::QueueDeferred(DataObject* object, std::string type, int64_t id,
                                const DataStreamReader::RawCapture& capture) {
  DeferredChild child;
  child.object = object;
  child.type = std::move(type);
  child.id = id;
  child.capture = capture;
  child.mem = observability::ScopedCharge(DeferredMemAccount(),
                                          static_cast<int64_t>(capture.with_end.size()));
  object->deferred_in_ = this;
  deferred_.push_back(std::move(child));
}

void ReadContext::CancelDeferred(DataObject* object) {
  for (DeferredChild& child : deferred_) {
    if (child.object != object) {
      continue;
    }
    // The one place a queued child's death is handled.  Phase B will decode
    // a throwaway so the same malformed-body errors surface as in a serial
    // decode — but the capture's views point into the buffer of whatever
    // decode the dead object belonged to, and nothing ties that buffer's
    // lifetime to this context once the owner is gone.  Copy the bytes into
    // context-owned storage now, so the throwaway decode can never read
    // through a dangling view.
    child.object = nullptr;
    child.orphan_arena.assign(child.capture.with_end.data(),
                              child.capture.with_end.size());
    std::string_view arena(child.orphan_arena);
    child.capture.body = arena.substr(0, child.capture.body.size());
    child.capture.with_end = arena;
    // The copy is owned storage the context retains until the entry drains
    // (or the context dies): charge it so it stops being invisible.
    child.orphan_mem = observability::ScopedCharge(
        OrphanMemAccount(), static_cast<int64_t>(child.orphan_arena.capacity()));
  }
}

ReadContext::~ReadContext() {
  for (DeferredChild& child : deferred_) {
    if (child.object != nullptr) {
      child.object->deferred_in_ = nullptr;
    }
  }
}

void ReadContext::DrainDeferred() {
  if (!deferred_.empty()) {
    // Phase B: each worker claims queue slots and decodes into a private
    // sub-context.  The parent (this) is read-only until the joins below.
    size_t pool = static_cast<size_t>(workers_ > 0 ? workers_ : 1);
    if (pool > deferred_.size()) {
      pool = deferred_.size();
    }
    std::atomic<size_t> cursor{0};
    auto worker = [this, &cursor]() {
      while (true) {
        size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= deferred_.size()) {
          return;
        }
        DeferredChild& child = deferred_[i];
        child.sub = std::make_unique<ReadContext>();
        child.sub->parent_ = this;
        DataStreamReader sub_reader =
            DataStreamReader::ForEmbeddedObject(child.capture, child.type, child.id);
        DataObject* target = child.object;
        std::unique_ptr<DataObject> throwaway;
        if (target == nullptr) {
          // The owner discarded this child during Phase A.  Decode into a
          // throwaway of the same type anyway, so malformed-body errors
          // surface exactly as they would have in a serial decode.
          std::lock_guard<std::mutex> lock(LoaderMutex());
          throwaway = ObjectCast<DataObject>(Loader::Instance().NewObject(child.type));
          target = throwaway.get();
        }
        if (target != nullptr) {
          if (!target->ReadBody(sub_reader, *child.sub)) {
            child.sub->AddError("malformed body for object type: " + child.type);
          }
          for (const Diagnostic& diagnostic : sub_reader.diagnostics()) {
            child.sub->AddDiagnostic(diagnostic);
          }
        }
        if (child.object != nullptr) {
          child.object->deferred_in_ = nullptr;
        }
      }
    };
    if (pool <= 1) {
      worker();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(pool);
      for (size_t i = 0; i < pool; ++i) {
        threads.emplace_back(worker);
      }
      for (std::thread& thread : threads) {
        thread.join();
      }
    }
    // Merge in submission order: whatever N was, the parent sees the same
    // registrations, diagnostics and fixups in the same sequence.
    std::vector<DeferredChild> drained = std::move(deferred_);
    deferred_.clear();
    for (DeferredChild& child : drained) {
      if (child.sub == nullptr) {
        continue;
      }
      // Orphaned entries decoded into a throwaway that is already gone:
      // their errors are real, but their registrations and fixups point at
      // dead objects and must not escape.
      if (child.object != nullptr) {
        for (const auto& [id, object] : child.sub->by_id_) {
          by_id_[id] = object;
        }
        for (auto& fixup : child.sub->fixups_) {
          fixups_.push_back(std::move(fixup));
        }
      }
      for (Diagnostic& diagnostic : child.sub->diagnostics_) {
        AddDiagnostic(std::move(diagnostic));
      }
    }
  }
  // Cross-object wiring, serially, with every registration in place.
  std::vector<std::function<void(ReadContext&)>> fixups = std::move(fixups_);
  fixups_.clear();
  for (auto& fixup : fixups) {
    fixup(*this);
  }
}

std::unique_ptr<DataObject> ReadObject(DataStreamReader& reader, ReadContext& context) {
  using Kind = DataStreamReader::Token::Kind;
  DataStreamReader::Token token = reader.Next();
  // Leading whitespace-only text before the first marker is tolerated.
  while (token.kind == Kind::kText &&
         token.text.find_first_not_of(" \t\r\n") == std::string_view::npos) {
    token = reader.Next();
  }
  if (token.kind != Kind::kBeginData) {
    if (token.kind != Kind::kEof) {
      context.AddError("expected \\begindata, found other content");
    }
    return nullptr;
  }
  return ReadObjectBody(reader, context, std::string(token.type), token.id);
}

std::unique_ptr<DataObject> ReadObjectBody(DataStreamReader& reader, ReadContext& context,
                                           const std::string& type, int64_t id) {
  std::unique_ptr<Object> object;
  {
    std::lock_guard<std::mutex> lock(LoaderMutex());
    object = Loader::Instance().NewObject(type);
  }
  std::unique_ptr<DataObject> data = ObjectCast<DataObject>(std::move(object));
  if (data == nullptr) {
    // No module provides `type`: capture raw and keep going (§5).  The copy
    // out of the pinned buffer is deliberate — the UnknownObject outlives
    // the reader.
    std::string_view raw;
    if (!reader.SkipObject(type, id, &raw)) {
      context.AddError("truncated unknown object: " + type);
    }
    auto unknown = std::make_unique<UnknownObject>(type, std::string(raw));
    context.RegisterObject(id, unknown.get());
    RegisterDecodedObject(unknown.get(), raw.size());
    return unknown;
  }
  context.RegisterObject(id, data.get());
  if (context.ShouldDefer(reader)) {
    // Phase A: skip over the body, queueing the raw capture for the pool.
    DataStreamReader::RawCapture capture;
    reader.SkipObject(type, id, &capture);
    context.QueueDeferred(data.get(), type, id, capture);
    RegisterDecodedObject(data.get(), capture.with_end.size());
    return data;
  }
  size_t body_from = reader.position();
  if (!data->ReadBody(reader, context)) {
    context.AddError("malformed body for object type: " + type);
  }
  // Census entry: the class plus the byte extent its body was decoded from
  // (embedded children land in their own entries too; the overlap is fine —
  // census bytes are a by-class attribution, not an allocator sum).
  RegisterDecodedObject(data.get(), reader.position() - body_from);
  return data;
}

std::string WriteDocument(const DataObject& root) { return root.WriteToString(); }

std::unique_ptr<DataObject> ReadDocument(std::string input, ReadContext* context) {
  DataStreamReader reader(std::move(input));
  ReadContext local;
  ReadContext& ctx = context != nullptr ? *context : local;
  if (!ctx.deferred_decode_enabled()) {
    int threads = ThreadsFromEnv();
    if (threads > 0) {
      ctx.EnableDeferredDecode(threads);
    }
  }
  std::unique_ptr<DataObject> root = ReadObject(reader, ctx);
  // Phase B + fixups.  A context without deferral still runs its fixups here.
  ctx.DrainDeferred();
  if (reader.truncated() && root != nullptr) {
    ctx.AddError("document truncated");
  }
  // Surface every recovery the tokenizer performed (damaged directives,
  // marker mismatches, truncation details) instead of dropping them.
  for (const Diagnostic& diagnostic : reader.diagnostics()) {
    ctx.AddDiagnostic(diagnostic);
  }
  return root;
}

void UnknownObject::WriteBody(DataStreamWriter& writer) const {
  writer.WriteRaw(raw_body_);
}

bool UnknownObject::ReadBody(DataStreamReader& reader, ReadContext& context) {
  (void)context;
  // Reached only when "unknown" appears literally as a type name; capture
  // its body like any other unknown content.
  std::string_view raw;
  bool ok = reader.SkipObject(type_, 0, &raw);
  raw_body_ = std::string(raw);
  return ok;
}

}  // namespace atk
