#include "src/base/data_object.h"

#include <sstream>

#include "src/class_system/loader.h"

namespace atk {

ATK_DEFINE_ABSTRACT_CLASS(DataObject, Object, "dataobject")
ATK_DEFINE_CLASS(UnknownObject, DataObject, "unknown")

int64_t DataObject::Write(DataStreamWriter& writer) const {
  int64_t id = writer.BeginData(DataTypeName());
  writer.RegisterObjectId(this, id);
  WriteBody(writer);
  writer.EndData();
  return id;
}

std::string DataObject::WriteToString() const {
  std::ostringstream out;
  DataStreamWriter writer(out);
  Write(writer);
  return out.str();
}

bool DataObject::ConsumeUntilEndData(DataStreamReader& reader) {
  using Kind = DataStreamReader::Token::Kind;
  while (true) {
    DataStreamReader::Token token = reader.Next();
    switch (token.kind) {
      case Kind::kEndData:
        return true;
      case Kind::kEof:
        return false;
      case Kind::kBeginData: {
        // Embedded object we are not modelling: skip it whole.
        reader.SkipObject(token.type, token.id);
        break;
      }
      default:
        break;  // Text, view refs and directives are ignored here.
    }
  }
}

std::unique_ptr<DataObject> ReadObject(DataStreamReader& reader, ReadContext& context) {
  using Kind = DataStreamReader::Token::Kind;
  DataStreamReader::Token token = reader.Next();
  // Leading whitespace-only text before the first marker is tolerated.
  while (token.kind == Kind::kText &&
         token.text.find_first_not_of(" \t\r\n") == std::string::npos) {
    token = reader.Next();
  }
  if (token.kind != Kind::kBeginData) {
    if (token.kind != Kind::kEof) {
      context.AddError("expected \\begindata, found other content");
    }
    return nullptr;
  }
  return ReadObjectBody(reader, context, token.type, token.id);
}

std::unique_ptr<DataObject> ReadObjectBody(DataStreamReader& reader, ReadContext& context,
                                           const std::string& type, int64_t id) {
  std::unique_ptr<Object> object = Loader::Instance().NewObject(type);
  std::unique_ptr<DataObject> data = ObjectCast<DataObject>(std::move(object));
  if (data == nullptr) {
    // No module provides `type`: capture raw and keep going (§5).
    std::string raw;
    if (!reader.SkipObject(type, id, &raw)) {
      context.AddError("truncated unknown object: " + type);
    }
    auto unknown = std::make_unique<UnknownObject>(type, std::move(raw));
    context.RegisterObject(id, unknown.get());
    return unknown;
  }
  context.RegisterObject(id, data.get());
  if (!data->ReadBody(reader, context)) {
    context.AddError("malformed body for object type: " + type);
  }
  return data;
}

std::string WriteDocument(const DataObject& root) { return root.WriteToString(); }

std::unique_ptr<DataObject> ReadDocument(std::string input, ReadContext* context) {
  DataStreamReader reader(std::move(input));
  ReadContext local;
  ReadContext& ctx = context != nullptr ? *context : local;
  std::unique_ptr<DataObject> root = ReadObject(reader, ctx);
  if (reader.truncated() && root != nullptr) {
    ctx.AddError("document truncated");
  }
  // Surface every recovery the tokenizer performed (damaged directives,
  // marker mismatches, truncation details) instead of dropping them.
  for (const Diagnostic& diagnostic : reader.diagnostics()) {
    ctx.AddDiagnostic(diagnostic);
  }
  return root;
}

void UnknownObject::WriteBody(DataStreamWriter& writer) const {
  writer.WriteRaw(raw_body_);
}

bool UnknownObject::ReadBody(DataStreamReader& reader, ReadContext& context) {
  (void)context;
  // Reached only when "unknown" appears literally as a type name; capture
  // its body like any other unknown content.
  std::string raw;
  bool ok = reader.SkipObject(type_, 0, &raw);
  raw_body_ = std::move(raw);
  return ok;
}

}  // namespace atk
