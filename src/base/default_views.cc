#include "src/base/default_views.h"

#include <map>

#include "src/class_system/loader.h"

namespace atk {
namespace {

std::map<std::string, std::string, std::less<>>& Table() {
  static auto* table = new std::map<std::string, std::string, std::less<>>();
  return *table;
}

}  // namespace

void SetDefaultViewName(std::string_view data_type, std::string_view view_type) {
  Table()[std::string(data_type)] = std::string(view_type);
}

std::string DefaultViewName(std::string_view data_type) {
  auto it = Table().find(data_type);
  if (it != Table().end()) {
    return it->second;
  }
  // The pairing is registered by the component's module init; if the module
  // is merely dormant, load it and look again (the toolkit never needs to
  // know component names — §7).
  std::string module = Loader::Instance().ProvidingModule(data_type);
  if (!module.empty() && Loader::Instance().Require(module)) {
    it = Table().find(data_type);
    if (it != Table().end()) {
      return it->second;
    }
  }
  return std::string(data_type) + "view";
}

}  // namespace atk
