// DataObject — one half of the toolkit's basic component pair (§2).
//
// A data object holds the persistent information: it can be saved to a
// datastream, observed by any number of views and other data objects, and
// knows nothing about how it is displayed.  Views hold the transient state
// and are never written to files.

#ifndef ATK_SRC_BASE_DATA_OBJECT_H_
#define ATK_SRC_BASE_DATA_OBJECT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/class_system/object.h"
#include "src/class_system/observable.h"
#include "src/datastream/reader.h"
#include "src/datastream/writer.h"

namespace atk {

class DataObject;

// Shared state while reading one datastream: the id -> object map used to
// resolve \view{type,id} references, and error notes.
//
// Parallel decode (PR 5).  When deferred decode is enabled (explicitly via
// EnableDeferredDecode, or by ReadDocument from the ATK_DS_THREADS knob),
// ReadObjectBody does not decode embedded children inline: Phase A — on the
// parsing thread — creates and registers the child object, captures its raw
// bytes with SkipObject, and queues them; DrainDeferred then runs Phase B,
// decoding the captured bodies on a worker pool via ForEmbeddedObject
// sub-readers.  Each worker writes into a private sub-context (Resolve chains
// to the parent, which is read-only during Phase B); sub-context results —
// registrations, diagnostics, fixups — are merged on the calling thread in
// submission order, so the decoded document is byte-identical no matter how
// many workers ran.  Cross-object wiring that mutates *another* object (the
// chart observing its source table) must go through AddFixup: fixups run
// serially after the merge, when no worker is touching anything.
class ReadContext {
 public:
  ReadContext() = default;
  ReadContext(const ReadContext&) = delete;
  ReadContext& operator=(const ReadContext&) = delete;

  void RegisterObject(int64_t id, DataObject* object) { by_id_[id] = object; }
  DataObject* Resolve(int64_t id) const {
    auto it = by_id_.find(id);
    if (it != by_id_.end()) {
      return it->second;
    }
    return parent_ != nullptr ? parent_->Resolve(id) : nullptr;
  }

  void AddError(std::string message) {
    AddDiagnostic(Diagnostic{StatusCode::kCorrupt, 0, std::move(message)});
  }
  void AddDiagnostic(Diagnostic diagnostic) {
    errors_.push_back(diagnostic.message);
    diagnostics_.push_back(std::move(diagnostic));
  }
  const std::vector<std::string>& errors() const { return errors_; }
  bool ok() const { return errors_.empty(); }

  // Structured view of the same findings (code + byte offset), including the
  // reader's own diagnostics once ReadDocument finishes.
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  // OK when the document parsed clean, else the first problem found.
  Status status() const {
    return diagnostics_.empty() ? Status::Ok()
                                : Status(diagnostics_.front().code,
                                         diagnostics_.front().message);
  }

  // ---- Parallel embedded-object decode (PR 5) ----

  // Turns on deferred decode with a pool of `workers` threads (clamped to
  // [1, 64]).  Must be called before parsing begins; whoever parses with this
  // context must call DrainDeferred afterwards (ReadDocument does).
  void EnableDeferredDecode(int workers);
  bool deferred_decode_enabled() const { return workers_ > 0; }

  // True when ReadObjectBody should capture-and-queue `reader`'s current
  // object instead of decoding inline: the top-level context has deferral on
  // and the object is an embedded child (depth > 1), not the document root.
  bool ShouldDefer(const DataStreamReader& reader) const {
    return workers_ > 0 && parent_ == nullptr && reader.depth() > 1;
  }

  // True when ReadBody implementations must route cross-object mutation
  // through AddFixup instead of performing it inline: either deferral is on
  // (another worker may own the target object) or this is a worker's
  // sub-context.
  bool UsesFixups() const { return workers_ > 0 || parent_ != nullptr; }

  // Queues a mutation to run serially after Phase B, with every object
  // decoded and every registration merged.  Safe to call from any context;
  // without deferral the fixups run at the end of DrainDeferred all the same.
  void AddFixup(std::function<void(ReadContext&)> fixup) {
    fixups_.push_back(std::move(fixup));
  }

  // Phase A bookkeeping: `object` (already created and registered) will have
  // `capture` decoded into it during DrainDeferred.
  void QueueDeferred(DataObject* object, std::string type, int64_t id,
                     const DataStreamReader::RawCapture& capture);
  size_t deferred_count() const { return deferred_.size(); }

  // Called from ~DataObject when a queued child dies before DrainDeferred —
  // a component read the object but discarded it (e.g. a \cellobject whose
  // \view reference was lost to damage).  The entry is kept but orphaned:
  // Phase B decodes the capture into a throwaway object so the same
  // malformed-body errors surface as in a serial decode, without touching
  // the dead pointer.
  void CancelDeferred(DataObject* object);

  ~ReadContext();

  // Phase B: decodes every queued capture on the worker pool, merges
  // sub-context results in submission order, then runs fixups.  Idempotent;
  // also runs fixups when nothing was deferred.
  void DrainDeferred();

 private:
  struct DeferredChild {
    DataObject* object = nullptr;
    std::string type;
    int64_t id = 0;
    DataStreamReader::RawCapture capture;
    // Owned copy of the capture bytes, populated by CancelDeferred when the
    // child dies before Phase B (`capture`'s views are repointed here; the
    // original buffer's lifetime was tied to the dead owner's decode).
    std::string orphan_arena;
    std::unique_ptr<ReadContext> sub;
    // Byte accounting: `mem` holds the queued capture extent against the
    // `datastream.mem.deferred` overlay (the bytes alias the reader's
    // pinned buffer); `orphan_mem` holds the owned orphan_arena copy
    // against `datastream.mem.orphan`.  Both release when the entry is
    // drained or its context dies — the orphan copies used to be silently
    // retained with no visibility.
    observability::ScopedCharge mem;
    observability::ScopedCharge orphan_mem;
  };

  std::map<int64_t, DataObject*> by_id_;
  std::vector<std::string> errors_;
  std::vector<Diagnostic> diagnostics_;
  ReadContext* parent_ = nullptr;  // Set on worker sub-contexts only.
  int workers_ = 0;
  std::vector<DeferredChild> deferred_;
  std::vector<std::function<void(ReadContext&)>> fixups_;
};

class DataObject : public Object, public Observable {
  ATK_DECLARE_CLASS(DataObject)

 public:
  DataObject() = default;
  ~DataObject() override;

  // The type name written in \begindata markers.  Defaults to the class
  // name; UnknownObject overrides to preserve the original type.
  virtual std::string_view DataTypeName() const { return class_name(); }

  // Serializes this object, wrapped in its begindata/enddata pair.  Returns
  // the id assigned within `writer`'s stream (callers embed the id in
  // \view references).
  int64_t Write(DataStreamWriter& writer) const;

  // Component payload, between the markers.  Embedded children are written
  // by calling their Write().
  virtual void WriteBody(DataStreamWriter& writer) const = 0;

  // Reads the payload.  On entry the kBeginData token for this object has
  // been consumed; the implementation must consume tokens up to and
  // including its own kEndData.  Returns false on malformed content (after
  // consuming through kEndData or EOF as best it can).
  virtual bool ReadBody(DataStreamReader& reader, ReadContext& context) = 0;

  // Convenience full-document round trips.
  std::string WriteToString() const;

 protected:
  // Default loop for components without special payload: skips unknown
  // directives, ignores text, reads embedded children via ReadEmbedded,
  // stops at kEndData.  Provided as a building block for ReadBody overrides.
  bool ConsumeUntilEndData(DataStreamReader& reader);

 private:
  friend class ReadContext;
  // Non-null while this object sits in a ReadContext's deferred-decode
  // queue; the destructor cancels the entry so Phase B never dereferences a
  // child its owner discarded.
  ReadContext* deferred_in_ = nullptr;
};

// Reads one object: expects the next token to be kBeginData.  Instantiates
// the named class through the Loader (loading its module on demand, §7).
// When the class is unknown even after a load attempt, returns an
// UnknownObject preserving the raw body so the document survives a
// load/save cycle.  Returns nullptr at EOF or on a token that is not
// kBeginData.
std::unique_ptr<DataObject> ReadObject(DataStreamReader& reader, ReadContext& context);

// As above, but the kBeginData token has already been consumed.
std::unique_ptr<DataObject> ReadObjectBody(DataStreamReader& reader, ReadContext& context,
                                           const std::string& type, int64_t id);

// Whole-document helpers.
std::string WriteDocument(const DataObject& root);
std::unique_ptr<DataObject> ReadDocument(std::string input, ReadContext* context = nullptr);

// Placeholder for a component whose module is not available: captures the
// raw body verbatim and re-emits it on write (§5's skip-without-parsing).
class UnknownObject : public DataObject {
  ATK_DECLARE_CLASS(UnknownObject)

 public:
  UnknownObject() = default;
  UnknownObject(std::string type, std::string raw_body)
      : type_(std::move(type)), raw_body_(std::move(raw_body)) {}

  std::string_view DataTypeName() const override { return type_; }
  const std::string& raw_body() const { return raw_body_; }

  void WriteBody(DataStreamWriter& writer) const override;
  bool ReadBody(DataStreamReader& reader, ReadContext& context) override;

  void SetCaptured(std::string type, std::string raw_body) {
    type_ = std::move(type);
    raw_body_ = std::move(raw_body);
  }

 private:
  std::string type_ = "unknown";
  std::string raw_body_;
};

}  // namespace atk

#endif  // ATK_SRC_BASE_DATA_OBJECT_H_
