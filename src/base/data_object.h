// DataObject — one half of the toolkit's basic component pair (§2).
//
// A data object holds the persistent information: it can be saved to a
// datastream, observed by any number of views and other data objects, and
// knows nothing about how it is displayed.  Views hold the transient state
// and are never written to files.

#ifndef ATK_SRC_BASE_DATA_OBJECT_H_
#define ATK_SRC_BASE_DATA_OBJECT_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/class_system/object.h"
#include "src/class_system/observable.h"
#include "src/datastream/reader.h"
#include "src/datastream/writer.h"

namespace atk {

class DataObject;

// Shared state while reading one datastream: the id -> object map used to
// resolve \view{type,id} references, and error notes.
class ReadContext {
 public:
  void RegisterObject(int64_t id, DataObject* object) { by_id_[id] = object; }
  DataObject* Resolve(int64_t id) const {
    auto it = by_id_.find(id);
    return it == by_id_.end() ? nullptr : it->second;
  }

  void AddError(std::string message) {
    AddDiagnostic(Diagnostic{StatusCode::kCorrupt, 0, std::move(message)});
  }
  void AddDiagnostic(Diagnostic diagnostic) {
    errors_.push_back(diagnostic.message);
    diagnostics_.push_back(std::move(diagnostic));
  }
  const std::vector<std::string>& errors() const { return errors_; }
  bool ok() const { return errors_.empty(); }

  // Structured view of the same findings (code + byte offset), including the
  // reader's own diagnostics once ReadDocument finishes.
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  // OK when the document parsed clean, else the first problem found.
  Status status() const {
    return diagnostics_.empty() ? Status::Ok()
                                : Status(diagnostics_.front().code,
                                         diagnostics_.front().message);
  }

 private:
  std::map<int64_t, DataObject*> by_id_;
  std::vector<std::string> errors_;
  std::vector<Diagnostic> diagnostics_;
};

class DataObject : public Object, public Observable {
  ATK_DECLARE_CLASS(DataObject)

 public:
  DataObject() = default;
  ~DataObject() override = default;

  // The type name written in \begindata markers.  Defaults to the class
  // name; UnknownObject overrides to preserve the original type.
  virtual std::string_view DataTypeName() const { return class_name(); }

  // Serializes this object, wrapped in its begindata/enddata pair.  Returns
  // the id assigned within `writer`'s stream (callers embed the id in
  // \view references).
  int64_t Write(DataStreamWriter& writer) const;

  // Component payload, between the markers.  Embedded children are written
  // by calling their Write().
  virtual void WriteBody(DataStreamWriter& writer) const = 0;

  // Reads the payload.  On entry the kBeginData token for this object has
  // been consumed; the implementation must consume tokens up to and
  // including its own kEndData.  Returns false on malformed content (after
  // consuming through kEndData or EOF as best it can).
  virtual bool ReadBody(DataStreamReader& reader, ReadContext& context) = 0;

  // Convenience full-document round trips.
  std::string WriteToString() const;

 protected:
  // Default loop for components without special payload: skips unknown
  // directives, ignores text, reads embedded children via ReadEmbedded,
  // stops at kEndData.  Provided as a building block for ReadBody overrides.
  bool ConsumeUntilEndData(DataStreamReader& reader);
};

// Reads one object: expects the next token to be kBeginData.  Instantiates
// the named class through the Loader (loading its module on demand, §7).
// When the class is unknown even after a load attempt, returns an
// UnknownObject preserving the raw body so the document survives a
// load/save cycle.  Returns nullptr at EOF or on a token that is not
// kBeginData.
std::unique_ptr<DataObject> ReadObject(DataStreamReader& reader, ReadContext& context);

// As above, but the kBeginData token has already been consumed.
std::unique_ptr<DataObject> ReadObjectBody(DataStreamReader& reader, ReadContext& context,
                                           const std::string& type, int64_t id);

// Whole-document helpers.
std::string WriteDocument(const DataObject& root);
std::unique_ptr<DataObject> ReadDocument(std::string input, ReadContext* context = nullptr);

// Placeholder for a component whose module is not available: captures the
// raw body verbatim and re-emits it on write (§5's skip-without-parsing).
class UnknownObject : public DataObject {
  ATK_DECLARE_CLASS(UnknownObject)

 public:
  UnknownObject() = default;
  UnknownObject(std::string type, std::string raw_body)
      : type_(std::move(type)), raw_body_(std::move(raw_body)) {}

  std::string_view DataTypeName() const override { return type_; }
  const std::string& raw_body() const { return raw_body_; }

  void WriteBody(DataStreamWriter& writer) const override;
  bool ReadBody(DataStreamReader& reader, ReadContext& context) override;

  void SetCaptured(std::string type, std::string raw_body) {
    type_ = std::move(type);
    raw_body_ = std::move(raw_body);
  }

 private:
  std::string type_ = "unknown";
  std::string raw_body_;
};

}  // namespace atk

#endif  // ATK_SRC_BASE_DATA_OBJECT_H_
