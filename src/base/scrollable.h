// The scrolling interface negotiated between a scroll bar and the view it
// adorns.  The scroll bar is §2's example of a view with no data object: it
// "only adjusts the information contained in another view" — through this
// interface.

#ifndef ATK_SRC_BASE_SCROLLABLE_H_
#define ATK_SRC_BASE_SCROLLABLE_H_

#include <cstdint>

namespace atk {

struct ScrollInfo {
  // All in abstract units chosen by the scrollee (text uses document lines).
  int64_t total = 0;
  int64_t first_visible = 0;
  int64_t visible = 0;
};

class Scrollable {
 public:
  virtual ~Scrollable() = default;

  virtual ScrollInfo GetScrollInfo() const = 0;
  // Makes `unit` the first visible unit (clamped by the scrollee).
  virtual void ScrollToUnit(int64_t unit) = 0;
  virtual void ScrollByUnits(int64_t delta) {
    ScrollToUnit(GetScrollInfo().first_visible + delta);
  }
};

}  // namespace atk

#endif  // ATK_SRC_BASE_SCROLLABLE_H_
