// Printing (§4): "When a view receives a print request for a specific type
// of printer it can temporarily shift its pointer to a drawable for that
// printer type and do a redraw of its image."
//
// PrintView does exactly that: it re-allocates the view subtree onto a
// PrintJob page drawable, redraws, and restores nothing — callers print
// either a dedicated view or re-allocate their on-screen view afterwards
// (the interaction manager re-allocates on the next resize/layout anyway).

#ifndef ATK_SRC_BASE_PRINT_H_
#define ATK_SRC_BASE_PRINT_H_

#include "src/base/view.h"
#include "src/wm/printer.h"

namespace atk {

// Renders `view`'s subtree onto a fresh page of `job`.
void PrintView(View& view, PrintJob& job);

}  // namespace atk

#endif  // ATK_SRC_BASE_PRINT_H_
