// The interaction manager — the root of the view tree (§3).
//
// "At the top of the tree is a view called the interaction manager which is
// a window provided by the underlying window system."  It translates window
// events into view-tree traffic, synchronizes drawing (coalescing posted
// update requests into one damage region applied in a single top-down
// pass), and arbitrates the global resources: input focus, menus, the
// cursor, and the key-state machine.  By design it has exactly one child
// view, of arbitrary type.
//
// Two dispatch modes are provided.  kParental is the toolkit's model:
// events walk down the tree with each parent deciding.  kGlobalPhysical
// reproduces the earlier Andrew Base Editor (the baseline the paper argues
// against): a flat geometric pick that hands the event to the deepest view
// whose rectangle contains the point, bypassing the parents — which is what
// made the drawing editor's line-over-text case impossible.

#ifndef ATK_SRC_BASE_INTERACTION_MANAGER_H_
#define ATK_SRC_BASE_INTERACTION_MANAGER_H_

#include <functional>
#include <memory>
#include <string>

#include "src/base/view.h"
#include "src/graphics/region.h"
#include "src/wm/window_system.h"

namespace atk {

class InteractionManager : public View {
  ATK_DECLARE_CLASS(InteractionManager)

 public:
  enum class DispatchMode {
    kParental,
    kGlobalPhysical,
  };

  struct Stats {
    uint64_t events = 0;
    uint64_t key_events = 0;
    uint64_t mouse_events = 0;
    uint64_t menu_events = 0;
    uint64_t update_cycles = 0;
    uint64_t views_updated = 0;
    uint64_t damage_posts = 0;
    uint64_t proc_invocations = 0;
  };

  InteractionManager();
  explicit InteractionManager(std::unique_ptr<WmWindow> window);
  ~InteractionManager() override;

  // Convenience: open a window on `ws` and root an IM in it.
  static std::unique_ptr<InteractionManager> Create(WindowSystem& ws, int width, int height,
                                                    const std::string& title = "");

  void AttachWindow(std::unique_ptr<WmWindow> window);
  WmWindow* window() const { return window_.get(); }

  // The IM has one child view, of arbitrary type (§3).
  void SetChild(View* child);
  View* child() const { return children().empty() ? nullptr : children().front(); }

  InteractionManager* GetIM() override { return this; }
  // Re-allocates the child whenever the IM itself is (re)allocated.
  void Layout() override;

  // ---- Event processing ----------------------------------------------------
  // Drains the window's queue, then runs one update cycle and flushes.
  void RunOnce();
  // Routes a single event.
  void ProcessEvent(const InputEvent& event);
  // Applies pending damage in one top-down pass.
  void RunUpdateCycle();
  bool HasPendingDamage() const { return !damage_.IsEmpty(); }
  const Region& pending_damage() const { return damage_; }

  // ---- The upward channels --------------------------------------------------
  void WantUpdate(View* requestor, const Rect& device_region) override;
  void SetInputFocus(View* view);
  View* input_focus() const { return input_focus_; }

  // ---- Menus -----------------------------------------------------------------
  // Composes the menu list along the focus path, innermost view first
  // (children shadow parents for equal card/label).
  MenuList ComposeMenus();
  // Finds `spec` ("Card~Label" or "Label") in the composed menus and invokes
  // its proc on the contributing view's behalf.
  bool InvokeMenu(const std::string& spec);
  // Pop-up menus: the right mouse button raises the composed menu card at
  // the press point (the classic Andrew gesture); releasing over an item
  // invokes it.  Tests may call these directly.
  void PopupMenus(Point at);
  void DismissMenus();
  bool menus_visible() const { return popup_ != nullptr; }
  View* popup_menu() const;

  // ---- Cursor ------------------------------------------------------------------
  // Re-runs cursor arbitration for the last known mouse position.
  void UpdateCursor();
  CursorShape current_cursor() const;

  // ---- Dispatch mode (F1 baseline) ----------------------------------------------
  void SetDispatchMode(DispatchMode mode) { dispatch_mode_ = mode; }
  DispatchMode dispatch_mode() const { return dispatch_mode_; }

  // Per-view damage-clip memoization in the update pass (im.update.clip_reuse).
  // On by default; the differential repaint test runs both ways.
  void SetClipMemoEnabled(bool enabled) { clip_memo_enabled_ = enabled; }
  bool clip_memo_enabled() const { return clip_memo_enabled_; }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  View* mouse_grab() const { return mouse_grab_; }

  // Ties an object's lifetime to this window (runapp gives the loaded
  // Application to its IM; applications park their view trees here too).
  void Adopt(std::unique_ptr<Object> object) { owned_.push_back(std::move(object)); }

  // ---- Inspector hosting (src/observability/inspector/) ----------------------
  // The self-hosted inspector is just another window over the observability
  // state: opening it builds a second interaction manager whose views watch
  // this one.  The concrete factory lives in the inspector module (loaded on
  // demand through the class system, like the pop-up menus); the base layer
  // only knows how to host the returned window and pump it after its own
  // cycle.  ATK_INSPECT=1 in the environment auto-opens the inspector on the
  // first RunOnce; ESC-i (the IM's own keymap) toggles it at run time.
  struct InspectorHandle {
    std::unique_ptr<InteractionManager> im;  // The inspector's own window.
    std::function<void()> tick;              // Runs after each host RunOnce.
    std::function<void()> closed;            // Cleanup when the inspector closes.
  };
  using InspectorFactory = std::function<InspectorHandle(InteractionManager& host)>;
  // Registered by the inspector module's init; process-wide.
  static void SetInspectorFactory(InspectorFactory factory);
  // Opens the inspector window over this IM (loading the inspector module on
  // demand).  False when no factory is available or it declines.
  bool OpenInspector();
  void CloseInspector();
  bool ToggleInspector();
  bool inspector_open() const { return inspector_im_ != nullptr; }
  InteractionManager* inspector() const { return inspector_im_.get(); }
  // Marks this IM as an inspector window itself, so ATK_INSPECT can never
  // recurse (an inspector does not inspect itself).
  void MarkAsInspector() { is_inspector_ = true; }
  bool is_inspector() const { return is_inspector_; }

  // The IM's own keymap (outermost in every chain): ESC-i toggles the
  // inspector.
  const KeyMap* GetKeyMap() const override;

 private:
  void DispatchMouse(const InputEvent& event);
  void DispatchKey(const InputEvent& event);
  View* GlobalPhysicalPick(Point window_pos, InputEvent event);
  void ReallocateChild();
  void UpdatePass(View& view, const Region& damage, uint64_t damage_fp);

  std::unique_ptr<WmWindow> window_;
  std::vector<std::unique_ptr<Object>> owned_;
  std::unique_ptr<View> popup_;  // MenuView overlay while menus are up.
  std::unique_ptr<View> retired_popup_;  // Dismissed popup awaiting deletion.
  Region damage_;
  View* input_focus_ = nullptr;
  View* mouse_grab_ = nullptr;
  Point last_mouse_pos_;
  KeyState key_state_;
  DispatchMode dispatch_mode_ = DispatchMode::kParental;
  bool clip_memo_enabled_ = true;
  bool is_inspector_ = false;
  bool inspector_env_attempted_ = false;
  std::unique_ptr<InteractionManager> inspector_im_;
  std::function<void()> inspector_tick_;
  std::function<void()> inspector_closed_;
  Stats stats_;
};

}  // namespace atk

#endif  // ATK_SRC_BASE_INTERACTION_MANAGER_H_
