#include "src/base/menus.h"

#include <algorithm>

namespace atk {
namespace {

constexpr char kDefaultCard[] = "Main";

void SplitSpec(std::string_view spec, std::string* card, std::string* label) {
  size_t tilde = spec.find('~');
  if (tilde == std::string_view::npos) {
    *card = kDefaultCard;
    *label = std::string(spec);
  } else {
    *card = std::string(spec.substr(0, tilde));
    *label = std::string(spec.substr(tilde + 1));
  }
}

}  // namespace

std::string MenuList::KeyOf(const MenuItem& item) { return item.card + "~" + item.label; }

void MenuList::Add(std::string_view spec, std::string_view proc_name, long rock,
                   uint32_t mask) {
  MenuItem item;
  SplitSpec(spec, &item.card, &item.label);
  item.proc_name = std::string(proc_name);
  item.rock = rock;
  item.mask = mask;
  // Replace an existing entry with the same card/label.
  for (MenuItem& existing : items_) {
    if (existing.card == item.card && existing.label == item.label) {
      existing = std::move(item);
      return;
    }
  }
  items_.push_back(std::move(item));
}

void MenuList::Remove(std::string_view spec) {
  std::string card;
  std::string label;
  SplitSpec(spec, &card, &label);
  items_.erase(std::remove_if(items_.begin(), items_.end(),
                              [&](const MenuItem& item) {
                                return item.card == card && item.label == label;
                              }),
               items_.end());
}

std::vector<const MenuItem*> MenuList::Visible() const {
  std::vector<const MenuItem*> visible;
  for (const MenuItem& item : items_) {
    if ((item.mask & active_mask_) != 0) {
      visible.push_back(&item);
    }
  }
  return visible;
}

void MenuList::Append(const MenuList& other) {
  for (const MenuItem* item : other.Visible()) {
    bool shadowed = false;
    for (const MenuItem& existing : items_) {
      if (existing.card == item->card && existing.label == item->label) {
        shadowed = true;
        break;
      }
    }
    if (!shadowed) {
      items_.push_back(*item);
    }
  }
}

const MenuItem* MenuList::Find(std::string_view spec) const {
  std::string card;
  std::string label;
  SplitSpec(spec, &card, &label);
  bool bare = spec.find('~') == std::string_view::npos;
  for (const MenuItem& item : items_) {
    if ((item.mask & active_mask_) == 0) {
      continue;
    }
    if (bare) {
      if (item.label == label) {
        return &item;
      }
    } else if (item.card == card && item.label == label) {
      return &item;
    }
  }
  return nullptr;
}

}  // namespace atk
