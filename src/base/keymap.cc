#include "src/base/keymap.h"

namespace atk {

void KeyMap::Bind(std::string_view sequence, std::string_view proc_name, long rock) {
  if (sequence.empty()) {
    return;
  }
  KeyBinding binding;
  binding.sequence = std::string(sequence);
  binding.proc_name = std::string(proc_name);
  binding.rock = rock;
  bindings_[binding.sequence] = std::move(binding);
}

void KeyMap::Unbind(std::string_view sequence) {
  auto it = bindings_.find(sequence);
  if (it != bindings_.end()) {
    bindings_.erase(it);
  }
}

const KeyBinding* KeyMap::Lookup(std::string_view sequence) const {
  auto it = bindings_.find(sequence);
  return it == bindings_.end() ? nullptr : &it->second;
}

bool KeyMap::IsPrefix(std::string_view sequence) const {
  // Bindings are sorted; the first entry not less than `sequence` is the
  // candidate extension.
  auto it = bindings_.lower_bound(std::string(sequence));
  if (it == bindings_.end()) {
    return false;
  }
  const std::string& key = it->first;
  return key.size() > sequence.size() && key.compare(0, sequence.size(), sequence) == 0;
}

std::vector<const KeyBinding*> KeyMap::All() const {
  std::vector<const KeyBinding*> all;
  all.reserve(bindings_.size());
  for (const auto& [seq, binding] : bindings_) {
    all.push_back(&binding);
  }
  return all;
}

KeyState::Result KeyState::Feed(char key, const std::vector<const KeyMap*>& chain) {
  pending_ += key;
  binding_ = nullptr;
  bool any_prefix = false;
  for (const KeyMap* map : chain) {
    if (map == nullptr) {
      continue;
    }
    // Innermost keymap wins on exact match (the child's binding shadows the
    // parent's), so return at the first hit.
    if (const KeyBinding* binding = map->Lookup(pending_)) {
      binding_ = binding;
      pending_.clear();
      return Result::kComplete;
    }
    if (map->IsPrefix(pending_)) {
      any_prefix = true;
    }
  }
  if (any_prefix) {
    return Result::kPrefix;
  }
  pending_.clear();
  return Result::kNoMatch;
}

void KeyState::Reset() {
  pending_.clear();
  binding_ = nullptr;
}

}  // namespace atk
