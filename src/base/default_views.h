// Data-type -> default-view-type associations.
//
// A \view{viewtype,id} reference names the view class explicitly, but when a
// component embeds a data object programmatically (EZ's "Insert Table"), the
// toolkit needs a default view class for the data type.  Component modules
// register their pairing at load time.

#ifndef ATK_SRC_BASE_DEFAULT_VIEWS_H_
#define ATK_SRC_BASE_DEFAULT_VIEWS_H_

#include <string>
#include <string_view>

namespace atk {

// Registers `view_type` as the default view class for `data_type`.
void SetDefaultViewName(std::string_view data_type, std::string_view view_type);

// Returns the registered view class, or "<data_type>view" as the
// conventional fallback.
std::string DefaultViewName(std::string_view data_type);

}  // namespace atk

#endif  // ATK_SRC_BASE_DEFAULT_VIEWS_H_
