#include "src/base/interaction_manager.h"

#include <cstdlib>
#include <functional>

#include "src/base/menu_popup.h"
#include "src/base/proctable.h"
#include "src/class_system/loader.h"
#include "src/observability/observability.h"

namespace atk {
namespace {

using observability::Counter;
using observability::MetricsRegistry;

// Input-dispatch metrics (§3's parental-authority claims): how many events
// arrived vs how many a view actually took, and how often the global
// resources (keymap chain, menu list) were renegotiated along the focus
// path.
Counter& EventsReceived() {
  static Counter& c = MetricsRegistry::Instance().counter("im.event.received");
  return c;
}
Counter& EventsDelivered() {
  static Counter& c = MetricsRegistry::Instance().counter("im.event.delivered");
  return c;
}

// The inspector module's window factory (SetInspectorFactory).  Process-wide,
// like the ClassRegistry it is registered from.
InteractionManager::InspectorFactory& InspectorFactorySlot() {
  static auto* factory = new InteractionManager::InspectorFactory();
  return *factory;
}

// ATK_INSPECT=1 auto-opens the inspector on the first RunOnce of every
// non-inspector window.  Read once, like the other observability toggles.
bool InspectRequestedByEnv() {
  static const bool requested = [] {
    const char* value = std::getenv("ATK_INSPECT");
    return value != nullptr && value[0] != '\0' && value[0] != '0';
  }();
  return requested;
}

// The ESC-i binding resolves through the proc table like every other
// command, so applications can rebind or shadow it.
void RegisterImProcs() {
  static bool done = [] {
    ProcTable::Instance().Register("im-toggle-inspector", [](View* view, long) {
      InteractionManager* im = view != nullptr ? view->GetIM() : nullptr;
      if (im != nullptr) {
        im->ToggleInspector();
      }
    });
    return true;
  }();
  (void)done;
}

}  // namespace

ATK_DEFINE_CLASS(InteractionManager, View, "im")

void View::RequestInputFocus() {
  InteractionManager* im = GetIM();
  if (im != nullptr) {
    im->SetInputFocus(this);
  }
}

InteractionManager::InteractionManager() {
  observability::InitFromEnv();
  RegisterImProcs();
}

InteractionManager::InteractionManager(std::unique_ptr<WmWindow> window) {
  observability::InitFromEnv();
  RegisterImProcs();
  AttachWindow(std::move(window));
}

InteractionManager::~InteractionManager() { CloseInspector(); }

std::unique_ptr<InteractionManager> InteractionManager::Create(WindowSystem& ws, int width,
                                                               int height,
                                                               const std::string& title) {
  return std::make_unique<InteractionManager>(ws.CreateWindow(width, height, title));
}

void InteractionManager::AttachWindow(std::unique_ptr<WmWindow> window) {
  window_ = std::move(window);
  if (window_ != nullptr) {
    AllocateRoot(window_->GetGraphic());
  }
}

void InteractionManager::SetChild(View* child) {
  if (View* existing = this->child()) {
    RemoveChild(existing);
  }
  if (child != nullptr) {
    AddChild(child);
    ReallocateChild();
    // The whole window needs paint.
    damage_.Add(DeviceBounds());
  }
}

void InteractionManager::ReallocateChild() {
  View* c = child();
  if (c == nullptr || !HasGraphic()) {
    return;
  }
  c->Allocate(graphic()->LocalBounds(), graphic());
}

void InteractionManager::Layout() { ReallocateChild(); }

void InteractionManager::RunOnce() {
  retired_popup_.reset();
  if (window_ == nullptr) {
    return;
  }
  if (InspectRequestedByEnv() && !is_inspector_ && inspector_im_ == nullptr &&
      !inspector_env_attempted_) {
    inspector_env_attempted_ = true;
    OpenInspector();
  }
  while (window_->HasEvent()) {
    ProcessEvent(window_->NextEvent());
  }
  RunUpdateCycle();
  window_->Flush();
  if (inspector_im_ != nullptr) {
    // The inspector rides along: its data object refreshes (cadence
    // permitting) and its own window repaints, after the host's cycle so a
    // snapshot always sees a finished frame.
    if (inspector_tick_) {
      inspector_tick_();
    }
    inspector_im_->RunOnce();
  }
}

void InteractionManager::ProcessEvent(const InputEvent& event) {
  ++stats_.events;
  EventsReceived().Add(1);
  switch (event.type) {
    case EventType::kKeyDown:
      ++stats_.key_events;
      DispatchKey(event);
      break;
    case EventType::kMouseDown:
    case EventType::kMouseUp:
    case EventType::kMouseMove:
    case EventType::kMouseDrag:
      ++stats_.mouse_events;
      DispatchMouse(event);
      break;
    case EventType::kMenuHit:
      ++stats_.menu_events;
      if (InvokeMenu(event.menu_item)) {
        EventsDelivered().Add(1);
      }
      break;
    case EventType::kExpose:
      damage_.Add(event.rect);
      break;
    case EventType::kResize:
      if (window_ != nullptr) {
        AllocateRoot(window_->GetGraphic());
        damage_.Clear();
        damage_.Add(DeviceBounds());
      }
      break;
    case EventType::kFocusIn:
    case EventType::kFocusOut:
    case EventType::kNone:
      break;
  }
}

void InteractionManager::DispatchMouse(const InputEvent& event) {
  last_mouse_pos_ = event.pos;
  // While the pop-up menu is raised it owns the mouse.
  if (popup_ != nullptr) {
    View* popup = popup_.get();
    InputEvent local = event;
    local.pos = event.pos - popup->bounds().origin();
    popup->Hit(local);  // May call DismissMenus via the choose callback.
    EventsDelivered().Add(1);
    return;
  }
  // The classic Andrew gesture: the right button raises the menus.
  if (event.type == EventType::kMouseDown && event.button == kRightButton) {
    PopupMenus(event.pos);
    return;
  }
  // A mouse-down establishes a grab: the rest of the click (drags and the
  // up) goes straight to the accepting view, as users expect from dragging.
  if (mouse_grab_ != nullptr &&
      (event.type == EventType::kMouseDrag || event.type == EventType::kMouseUp)) {
    Rect grab_bounds = mouse_grab_->DeviceBounds();
    InputEvent local = event;
    local.pos = event.pos - grab_bounds.origin();
    mouse_grab_->Hit(local);
    EventsDelivered().Add(1);
    if (event.type == EventType::kMouseUp) {
      mouse_grab_ = nullptr;
    }
    UpdateCursor();
    return;
  }

  View* handler = nullptr;
  View* c = child();
  if (dispatch_mode_ == DispatchMode::kParental) {
    if (c != nullptr && c->bounds().Contains(event.pos)) {
      handler = c->Hit(TranslateToChild(event, *c));
    }
  } else {
    handler = GlobalPhysicalPick(event.pos, event);
  }
  if (handler != nullptr) {
    EventsDelivered().Add(1);
  }
  if (event.type == EventType::kMouseDown) {
    mouse_grab_ = handler;
  }
  UpdateCursor();
}

View* InteractionManager::GlobalPhysicalPick(Point window_pos, InputEvent event) {
  // The Base Editor model: pick the deepest view whose rectangle contains
  // the point, ignoring what its ancestors think.
  View* best = nullptr;
  int best_depth = -1;
  std::function<void(View*)> visit = [&](View* v) {
    if (v != this && v->HasGraphic() && v->DeviceBounds().Contains(window_pos)) {
      int depth = v->TreeDepth();
      if (depth > best_depth) {
        best = v;
        best_depth = depth;
      }
    }
    for (View* ch : v->children()) {
      visit(ch);
    }
  };
  visit(this);
  if (best == nullptr) {
    return nullptr;
  }
  event.pos = window_pos - best->DeviceBounds().origin();
  return best->Hit(event);
}

void InteractionManager::DispatchKey(const InputEvent& event) {
  View* focus = input_focus_ != nullptr ? input_focus_ : child();
  if (focus == nullptr) {
    return;
  }
  // Meta-modified keys are spelled as an ESC prefix in sequences.
  if ((event.modifiers & kMetaMod) != 0) {
    InputEvent esc = event;
    esc.key = '\033';
    esc.modifiers = 0;
    DispatchKey(esc);
    InputEvent bare = event;
    bare.modifiers &= ~kMetaMod;
    DispatchKey(bare);
    return;
  }
  // Build the keymap chain from the focus view outward.
  static Counter& keymap_rebuilt = MetricsRegistry::Instance().counter("im.keymap.rebuilt");
  keymap_rebuilt.Add(1);
  std::vector<const KeyMap*> chain;
  for (View* v = focus; v != nullptr; v = v->parent()) {
    if (const KeyMap* map = v->GetKeyMap()) {
      chain.push_back(map);
    }
  }
  KeyState::Result result = key_state_.Feed(event.key, chain);
  if (result == KeyState::Result::kComplete) {
    const KeyBinding* binding = key_state_.binding();
    if (ProcTable::Instance().Invoke(binding->proc_name, focus, binding->rock)) {
      ++stats_.proc_invocations;
      EventsDelivered().Add(1);
    }
    return;
  }
  if (result == KeyState::Result::kPrefix) {
    return;  // Waiting for the rest of the sequence.
  }
  // No binding: offer the raw key to the focus view and its ancestors
  // (self-insert in text, typically).
  for (View* v = focus; v != nullptr; v = v->parent()) {
    if (v->HandleKey(event.key, event.modifiers)) {
      EventsDelivered().Add(1);
      return;
    }
  }
}

void InteractionManager::WantUpdate(View* requestor, const Rect& device_region) {
  (void)requestor;
  ++stats_.damage_posts;
  static Counter& posted = MetricsRegistry::Instance().counter("im.damage.posted");
  posted.Add(1);
  damage_.Add(device_region.Intersect(DeviceBounds()));
}

void InteractionManager::RunUpdateCycle() {
  if (damage_.IsEmpty()) {
    return;
  }
  // The §3 claim under measurement: any number of posted damage rects is
  // applied as ONE coalesced pass down the view tree.  The ratio
  // im.damage.posted / im.damage.coalesced is the coalescing factor.
  ATK_TRACE_SPAN("im.update.cycle");
  static Counter& cycles = MetricsRegistry::Instance().counter("im.update.run");
  static Counter& coalesced = MetricsRegistry::Instance().counter("im.damage.coalesced");
  static observability::Histogram& bands =
      MetricsRegistry::Instance().histogram("graphics.region.bands");
  cycles.Add(1);
  coalesced.Add(damage_.rect_count());
  bands.Observe(damage_.band_count());
  ++stats_.update_cycles;
  Region damage = damage_;
  damage_.Clear();
  uint64_t damage_fp = damage.Fingerprint();
  View* c = child();
  if (c != nullptr) {
    UpdatePass(*c, damage, damage_fp);
  }
  if (popup_ != nullptr) {
    UpdatePass(*popup_, damage, damage_fp);  // Painted last: the menu overlays the app.
  }
}

void InteractionManager::UpdatePass(View& view, const Region& damage, uint64_t damage_fp) {
  if (!view.HasGraphic()) {
    return;
  }
  Rect device = view.DeviceBounds();
  if (!damage.Intersects(device)) {
    return;
  }
  ++stats_.views_updated;
  static Counter& views_updated = MetricsRegistry::Instance().counter("im.view.updated");
  views_updated.Add(1);
  // Clip the view's drawing to the damaged part of its allocation, so a
  // repaint cannot disturb pixels outside the coalesced damage.  The clip is
  // the bounds of damage ∩ allocation (tighter than bounding-box ∩
  // allocation for banded damage); a view whose allocation and damage both
  // match the previous cycle reuses last cycle's intersection.
  static Counter& clip_reuse = MetricsRegistry::Instance().counter("im.update.clip_reuse");
  Rect damage_local;
  if (clip_memo_enabled_ && view.clip_memo_.valid && view.clip_memo_.damage_fp == damage_fp &&
      view.clip_memo_.device == device) {
    damage_local = view.clip_memo_.clip_local;
    clip_reuse.Add(1);
    ++view.clip_memo_.hits;
  } else {
    damage_local = damage.BoundsWithin(device).Translated(-device.x, -device.y);
    View::ClipMemo memo{damage_fp, device, damage_local, true,
                        view.clip_memo_.hits, view.clip_memo_.misses + 1};
    view.clip_memo_ = memo;
  }
  view.graphic()->PushClip(damage_local);
  {
    // Per-view-class repaint span nested inside im.update.cycle; the name
    // is only composed when tracing is on.
    observability::ScopedSpan span("update.", view.class_name());
    view.Update();
  }
  view.graphic()->PopClip();
  for (View* child : view.children()) {
    UpdatePass(*child, damage, damage_fp);
  }
}

void InteractionManager::SetInputFocus(View* view) {
  if (input_focus_ == view) {
    return;
  }
  if (input_focus_ != nullptr) {
    input_focus_->LoseInputFocus();
  }
  input_focus_ = view;
  key_state_.Reset();
  if (input_focus_ != nullptr) {
    input_focus_->ReceiveInputFocus();
  }
}

MenuList InteractionManager::ComposeMenus() {
  static Counter& composed_count = MetricsRegistry::Instance().counter("im.menu.composed");
  composed_count.Add(1);
  MenuList composed;
  View* focus = input_focus_ != nullptr ? input_focus_ : child();
  for (View* v = focus; v != nullptr && v != this; v = v->parent()) {
    MenuList contribution;
    v->FillMenus(contribution);
    composed.Append(contribution);
  }
  return composed;
}

bool InteractionManager::InvokeMenu(const std::string& spec) {
  MenuList menus = ComposeMenus();
  const MenuItem* item = menus.Find(spec);
  if (item == nullptr) {
    return false;
  }
  View* focus = input_focus_ != nullptr ? input_focus_ : child();
  bool invoked = ProcTable::Instance().Invoke(item->proc_name, focus, item->rock);
  if (invoked) {
    ++stats_.proc_invocations;
  }
  return invoked;
}

void InteractionManager::PopupMenus(Point at) {
  DismissMenus();
  retired_popup_.reset();
  // The concrete popup class lives in the widgets module; load on demand.
  std::unique_ptr<MenuPopupView> popup =
      ObjectCast<MenuPopupView>(Loader::Instance().NewObject("menuview"));
  if (popup == nullptr || !HasGraphic()) {
    return;
  }
  popup->SetMenus(ComposeMenus());
  popup->SetOnChoose([this](const std::string& choice) {
    if (!choice.empty()) {
      InvokeMenu(choice);
    }
    DismissMenus();
  });
  Rect window_bounds = graphic()->LocalBounds();
  Size size = popup->DesiredSize(window_bounds.size());
  Rect where{std::clamp(at.x, 0, std::max(0, window_bounds.width - size.width)),
             std::clamp(at.y, 0, std::max(0, window_bounds.height - size.height)),
             size.width, size.height};
  View* raw = popup.get();
  popup_ = std::move(popup);
  AddChild(raw);
  raw->Allocate(where, graphic());
  damage_.Add(raw->DeviceBounds());
}

void InteractionManager::DismissMenus() {
  if (popup_ == nullptr) {
    return;
  }
  damage_.Add(popup_->DeviceBounds());
  RemoveChild(popup_.get());
  // The popup may still be on the call stack (its Hit invoked the choose
  // callback); retire it until the next quiescent point.
  retired_popup_ = std::move(popup_);
}

View* InteractionManager::popup_menu() const { return popup_.get(); }

void InteractionManager::UpdateCursor() {
  if (window_ == nullptr) {
    return;
  }
  CursorShape shape = CursorShape::kArrow;
  View* c = child();
  if (c != nullptr && c->bounds().Contains(last_mouse_pos_)) {
    shape = c->CursorAt(last_mouse_pos_ - c->bounds().origin());
  }
  WmCursor cursor(shape);
  window_->SetCursor(cursor);
}

CursorShape InteractionManager::current_cursor() const {
  return window_ != nullptr ? window_->cursor_shape() : CursorShape::kArrow;
}

// ---- Inspector hosting ------------------------------------------------------

void InteractionManager::SetInspectorFactory(InspectorFactory factory) {
  InspectorFactorySlot() = std::move(factory);
}

bool InteractionManager::OpenInspector() {
  if (inspector_im_ != nullptr) {
    return true;
  }
  if (is_inspector_) {
    return false;  // An inspector does not inspect itself.
  }
  if (!InspectorFactorySlot()) {
    // The factory is registered by the inspector module's init; resolving
    // the InspectorData class pulls the module in (the PopupMenus idiom).
    Loader::Instance().EnsureClass("inspector");
  }
  InspectorFactory& factory = InspectorFactorySlot();
  if (!factory) {
    return false;
  }
  InspectorHandle handle = factory(*this);
  if (handle.im == nullptr) {
    return false;
  }
  static Counter& opened = MetricsRegistry::Instance().counter("inspector.window.opened");
  opened.Add(1);
  inspector_im_ = std::move(handle.im);
  inspector_tick_ = std::move(handle.tick);
  inspector_closed_ = std::move(handle.closed);
  inspector_im_->MarkAsInspector();
  inspector_im_->RunOnce();  // First paint, so the window is never blank.
  return true;
}

void InteractionManager::CloseInspector() {
  if (inspector_im_ == nullptr) {
    return;
  }
  inspector_tick_ = nullptr;
  inspector_im_.reset();
  if (inspector_closed_) {
    inspector_closed_();
    inspector_closed_ = nullptr;
  }
}

bool InteractionManager::ToggleInspector() {
  if (inspector_im_ != nullptr) {
    CloseInspector();
    return false;
  }
  return OpenInspector();
}

const KeyMap* InteractionManager::GetKeyMap() const {
  // The IM sits at the root of every keymap chain, so ESC-i works in any
  // application unless a focused view shadows it.
  static const KeyMap* map = [] {
    KeyMap* m = new KeyMap();
    m->Bind("\033i", "im-toggle-inspector");
    return m;
  }();
  return map;
}

}  // namespace atk
