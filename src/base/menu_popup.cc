#include "src/base/menu_popup.h"

namespace atk {

ATK_DEFINE_ABSTRACT_CLASS(MenuPopupView, View, "menupopup")

}  // namespace atk
