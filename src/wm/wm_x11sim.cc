#include "src/wm/wm_x11sim.h"

namespace atk {

ATK_DEFINE_CLASS(X11Window, WmWindow, "x11window")
ATK_DEFINE_CLASS(X11WindowSystem, WindowSystem, "x11wm")

X11Window::X11Window() : X11Window(640, 480) {}

X11Window::X11Window(int width, int height) {
  canvas_.Resize(width, height);
  screen_.Resize(width, height);
  graphic_ = std::make_unique<ImageGraphic>(&canvas_, canvas_.bounds());
  set_size(Size{width, height});
}

Graphic* X11Window::GetGraphic() { return graphic_.get(); }

void X11Window::Flush() {
  // Server applies the buffered requests: visible content catches up with
  // the client-side canvas, except where another window obscures us.
  // (Views draw through sub-graphics whose ops the root graphic does not
  // see, so the blit is unconditional.)
  screen_.Blit(canvas_, canvas_.bounds(), Point{0, 0});
  if (obscured_) {
    screen_.FillRect(obscured_rect_, kGray);
  }
  flushed_ops_ = graphic_->op_count();
  ++flush_count_;
}

void X11Window::Resize(int width, int height) {
  canvas_.Resize(width, height);
  screen_.Resize(width, height);
  graphic_ = std::make_unique<ImageGraphic>(&canvas_, canvas_.bounds());
  set_size(Size{width, height});
  flushed_ops_ = graphic_->op_count();
  Inject(InputEvent::Resized(width, height));
  // A fresh X window is all exposure.
  Inject(InputEvent::Exposure(Rect{0, 0, width, height}));
}

uint64_t X11Window::RequestCount() const { return graphic_->op_count(); }

uint64_t X11Window::PendingRequests() const { return graphic_->op_count() - flushed_ops_; }

void X11Window::Obscure(const Rect& rect) {
  if (obscured_) {
    Unobscure();
  }
  obscured_rect_ = rect.Intersect(canvas_.bounds());
  obscured_ = true;
  // The covering window paints over us on screen.
  screen_.FillRect(obscured_rect_, kGray);
  // No backing store: the server discards the covered contents.
  canvas_.FillRect(obscured_rect_, kWhite);
}

void X11Window::Unobscure() {
  if (!obscured_) {
    return;
  }
  obscured_ = false;
  screen_.FillRect(obscured_rect_, kWhite);
  // The client is told to repaint the newly visible region.
  Inject(InputEvent::Exposure(obscured_rect_));
}

void X11Window::OnConnectionDrop() {
  screen_.FillRect(screen_.bounds(), kWhite);
  canvas_.FillRect(canvas_.bounds(), kWhite);
  flushed_ops_ = graphic_->op_count();  // Buffered requests died on the wire.
  obscured_ = false;
}

std::unique_ptr<WmWindow> X11WindowSystem::CreateWindow(int width, int height,
                                                        const std::string& title) {
  auto window = std::make_unique<X11Window>(width, height);
  window->SetTitle(title);
  // X delivers an initial exposure when the window is mapped.
  window->Inject(InputEvent::Exposure(Rect{0, 0, width, height}));
  return window;
}

}  // namespace atk
