// Simulated ITC/Andrew window manager backend.
//
// Models the original Andrew window system as the toolkit saw it: drawing
// operations take effect immediately (the wm client library wrote straight
// to the display), and the window manager preserves window contents, so
// un-obscuring a window restores its pixels without asking the client to
// repaint.  Contrast wm_x11sim.h.

#ifndef ATK_SRC_WM_WM_ITC_H_
#define ATK_SRC_WM_WM_ITC_H_

#include <memory>
#include <string>

#include "src/wm/window_system.h"

namespace atk {

class ItcWindow : public WmWindow {
  ATK_DECLARE_CLASS(ItcWindow)

 public:
  ItcWindow();
  ItcWindow(int width, int height);

  Graphic* GetGraphic() override;
  const PixelImage& Display() const override { return framebuffer_; }
  void Resize(int width, int height) override;
  uint64_t RequestCount() const override;

  // Simulated window-manager overlap: `rect` is covered by another window.
  // The ITC wm preserves contents, so Unobscure repaints from its saved copy
  // and the application is never asked to redraw.
  void Obscure(const Rect& rect);
  void Unobscure();
  bool obscured() const { return obscured_; }

 protected:
  // A dropped connection destroys the server-side window: even the ITC wm's
  // preserved contents are gone.  Recovery is the base class's replayed
  // Expose plus a client repaint.
  void OnConnectionDrop() override;

 private:
  PixelImage framebuffer_;
  PixelImage saved_under_;  // Contents preserved while obscured.
  Rect obscured_rect_;
  bool obscured_ = false;
  std::unique_ptr<ImageGraphic> graphic_;
};

class ItcWindowSystem : public WindowSystem {
  ATK_DECLARE_CLASS(ItcWindowSystem)

 public:
  ItcWindowSystem() = default;

  std::string SystemName() const override { return "itc"; }
  std::unique_ptr<WmWindow> CreateWindow(int width, int height,
                                         const std::string& title) override;
};

}  // namespace atk

#endif  // ATK_SRC_WM_WM_ITC_H_
