#include "src/wm/wm_itc.h"

namespace atk {

ATK_DEFINE_CLASS(ItcWindow, WmWindow, "itcwindow")
ATK_DEFINE_CLASS(ItcWindowSystem, WindowSystem, "itcwm")

ItcWindow::ItcWindow() : ItcWindow(640, 480) {}

ItcWindow::ItcWindow(int width, int height) {
  framebuffer_.Resize(width, height);
  graphic_ = std::make_unique<ImageGraphic>(&framebuffer_, framebuffer_.bounds());
  set_size(Size{width, height});
}

Graphic* ItcWindow::GetGraphic() { return graphic_.get(); }

void ItcWindow::Resize(int width, int height) {
  framebuffer_.Resize(width, height);
  graphic_ = std::make_unique<ImageGraphic>(&framebuffer_, framebuffer_.bounds());
  set_size(Size{width, height});
  Inject(InputEvent::Resized(width, height));
}

uint64_t ItcWindow::RequestCount() const {
  // Immediate-mode system: every drawing op is a request.
  return graphic_->op_count();
}

void ItcWindow::Obscure(const Rect& rect) {
  if (obscured_) {
    Unobscure();
  }
  obscured_rect_ = rect.Intersect(framebuffer_.bounds());
  saved_under_.Resize(obscured_rect_.width, obscured_rect_.height);
  saved_under_.Blit(framebuffer_, obscured_rect_, Point{0, 0});
  framebuffer_.FillRect(obscured_rect_, kGray);
  obscured_ = true;
}

void ItcWindow::Unobscure() {
  if (!obscured_) {
    return;
  }
  // Contents were preserved by the window manager: restore, no expose event.
  framebuffer_.Blit(saved_under_, saved_under_.bounds(), obscured_rect_.origin());
  obscured_ = false;
}

void ItcWindow::OnConnectionDrop() {
  framebuffer_.FillRect(framebuffer_.bounds(), kWhite);
  obscured_ = false;
}

std::unique_ptr<WmWindow> ItcWindowSystem::CreateWindow(int width, int height,
                                                        const std::string& title) {
  auto window = std::make_unique<ItcWindow>(width, height);
  window->SetTitle(title);
  return window;
}

}  // namespace atk
