// Input events as delivered by a window system to the interaction manager.
//
// §3: "The interaction manager has the responsibility of translating input
// events such as key strokes, mouse events, menu events and exposure events
// from the window system to the rest of the view tree."

#ifndef ATK_SRC_WM_EVENT_H_
#define ATK_SRC_WM_EVENT_H_

#include <cstdint>
#include <string>

#include "src/graphics/geometry.h"

namespace atk {

enum class EventType {
  kNone,
  kKeyDown,    // `key` holds the (7-bit) character; modifiers annotate.
  kMouseDown,  // `pos`, `button`
  kMouseUp,
  kMouseMove,  // no button held
  kMouseDrag,  // button held
  kMenuHit,    // `menu_item` holds "Card/Item" as chosen from the posted menus
  kExpose,     // `rect` damaged by the window system; repaint required
  kResize,     // `size` is the new window size
  kFocusIn,
  kFocusOut,
};

enum MouseButton {
  kLeftButton = 0,
  kMiddleButton = 1,
  kRightButton = 2,
};

enum KeyModifier : unsigned {
  kNoModifier = 0,
  kShiftMod = 1u << 0,
  kControlMod = 1u << 1,
  kMetaMod = 1u << 2,  // ESC-prefixed in keymaps
};

struct InputEvent {
  EventType type = EventType::kNone;
  Point pos;
  MouseButton button = kLeftButton;
  char key = 0;
  unsigned modifiers = kNoModifier;
  Rect rect;           // kExpose
  Size size;           // kResize
  std::string menu_item;  // kMenuHit
  uint64_t time = 0;   // Monotonic injection counter, assigned by the window.

  static InputEvent KeyPress(char ch, unsigned mods = kNoModifier) {
    InputEvent e;
    e.type = EventType::kKeyDown;
    e.key = ch;
    e.modifiers = mods;
    return e;
  }
  static InputEvent MouseAt(EventType t, Point p, MouseButton b = kLeftButton) {
    InputEvent e;
    e.type = t;
    e.pos = p;
    e.button = b;
    return e;
  }
  static InputEvent MenuChoice(std::string item) {
    InputEvent e;
    e.type = EventType::kMenuHit;
    e.menu_item = std::move(item);
    return e;
  }
  static InputEvent Exposure(const Rect& r) {
    InputEvent e;
    e.type = EventType::kExpose;
    e.rect = r;
    return e;
  }
  static InputEvent Resized(int w, int h) {
    InputEvent e;
    e.type = EventType::kResize;
    e.size = Size{w, h};
    return e;
  }
};

}  // namespace atk

#endif  // ATK_SRC_WM_EVENT_H_
