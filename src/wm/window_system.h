// The window-system porting boundary (§8).
//
// "To port the toolkit to another window system, six classes must be
// written, encompassing approximately 70 routines": Window System,
// Interaction Manager (the window side of it), Cursor, Graphic, FontDesc and
// Off Screen Window.  This header defines those six classes as abstract
// interfaces; src/wm/wm_itc.* and src/wm/wm_x11sim.* are the two backends,
// and nothing above this layer may include a backend header (a test checks).
//
// Backend selection follows the paper: the ATK_WINDOW_SYSTEM environment
// variable names the backend, and backends are loaded through the dynamic
// loader, so one binary can host either system without recompilation.

#ifndef ATK_SRC_WM_WINDOW_SYSTEM_H_
#define ATK_SRC_WM_WINDOW_SYSTEM_H_

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/class_system/object.h"
#include "src/graphics/cursor_shape.h"
#include "src/graphics/font.h"
#include "src/graphics/graphic.h"
#include "src/graphics/pixel_image.h"
#include "src/wm/event.h"

namespace atk {

// Porting class 3 of 6: a window-system cursor.
class WmCursor : public Object {
  ATK_DECLARE_CLASS(WmCursor)

 public:
  WmCursor() = default;
  explicit WmCursor(CursorShape shape) : shape_(shape) {}

  CursorShape shape() const { return shape_; }
  void SetShape(CursorShape shape) { shape_ = shape; }

 private:
  CursorShape shape_ = CursorShape::kArrow;
};

// Porting class 5 of 6: a font description resolved by the window system.
class WmFontDesc : public Object {
  ATK_DECLARE_CLASS(WmFontDesc)

 public:
  WmFontDesc() : font_(&Font::Default()) {}
  explicit WmFontDesc(const FontSpec& spec) : font_(&Font::Get(spec)) {}

  const Font& font() const { return *font_; }
  const FontSpec& spec() const { return font_->spec(); }

 private:
  const Font* font_;
};

// Porting class 6 of 6: an off-screen drawing surface that can later be
// copied on screen.
class OffscreenWindow : public Object {
  ATK_DECLARE_CLASS(OffscreenWindow)

 public:
  OffscreenWindow() = default;
  OffscreenWindow(int width, int height) { Reset(width, height); }

  void Reset(int width, int height);

  PixelImage& image() { return image_; }
  const PixelImage& image() const { return image_; }
  // A graphic drawing into the offscreen image (valid until Reset).
  Graphic* GetGraphic();

 private:
  PixelImage image_;
  std::unique_ptr<ImageGraphic> graphic_;
};

// Porting class 2 of 6: the window half of the interaction manager — an
// on-screen window with an event queue and a root drawable.  (The policy
// half, event routing through the view tree, is window-system independent
// and lives in src/base/interaction_manager.*.)
class WmWindow : public Object {
  ATK_DECLARE_CLASS(WmWindow)

 public:
  WmWindow() = default;
  ~WmWindow() override = default;

  // ---- Drawing ----
  // The root drawable covering the whole window (backing store).
  virtual Graphic* GetGraphic() = 0;
  // Pushes buffered drawing to the visible screen.  ITC draws through
  // immediately; X11 batches protocol requests until flush.
  virtual void Flush() {}
  // What is visible on the "screen" right now (after Flush).
  virtual const PixelImage& Display() const = 0;

  // ---- Window management ----
  virtual void Resize(int width, int height) = 0;
  Size size() const { return size_; }
  void SetTitle(std::string title) { title_ = std::move(title); }
  const std::string& title() const { return title_; }
  void SetCursor(const WmCursor& cursor) { cursor_shape_ = cursor.shape(); }
  CursorShape cursor_shape() const { return cursor_shape_; }

  // ---- Event queue ----
  // Reports true while disconnected so event loops call NextEvent() and
  // trigger the automatic reconnect (see Connection robustness below).
  bool HasEvent() const { return !connected_ || !events_.empty(); }
  InputEvent NextEvent();
  // Event sources (tests, workload traces, the simulated server) inject here.
  void Inject(InputEvent event);

  // ---- Connection robustness ----
  // The simulated connection to the window-system server.  A drop loses the
  // queued events and the on-screen contents (the server forgot this
  // window); the toolkit survives by reconnecting and repainting from the
  // view tree rather than crashing, as a long-lived editor must.
  bool connected() const { return connected_; }
  // Fault injection: severs the connection (FaultKind::kWmDrop).
  void InjectConnectionDrop();
  // Re-establishes the connection and queues a full-window Expose so the
  // interaction manager repaints everything.  NextEvent() reconnects
  // automatically, so an event loop needs no special handling.
  void Reconnect();
  int drop_count() const { return drop_count_; }
  int reconnect_count() const { return reconnect_count_; }

  // ---- Accounting ----
  // Protocol requests issued to the "server" so far (ITC: == drawing ops;
  // X11: ops are batched and counted at Flush).
  virtual uint64_t RequestCount() const = 0;

 protected:
  void set_size(Size s) { size_ = s; }
  // Backend reactions to a drop/reconnect (wipe server-side state, discard
  // buffered protocol requests, ...).  The base class handles the event
  // queue and the replayed Expose.
  virtual void OnConnectionDrop() {}
  virtual void OnReconnect() {}

 private:
  std::deque<InputEvent> events_;
  uint64_t event_clock_ = 0;
  Size size_;
  std::string title_;
  CursorShape cursor_shape_ = CursorShape::kArrow;
  bool connected_ = true;
  int drop_count_ = 0;
  int reconnect_count_ = 0;
};

// Porting class 1 of 6: the window system itself — a handle from which the
// other five are obtained.
class WindowSystem : public Object {
  ATK_DECLARE_CLASS(WindowSystem)

 public:
  ~WindowSystem() override = default;

  virtual std::string SystemName() const = 0;
  virtual std::unique_ptr<WmWindow> CreateWindow(int width, int height,
                                                 const std::string& title) = 0;
  virtual std::unique_ptr<OffscreenWindow> CreateOffscreen(int width, int height);
  virtual std::unique_ptr<WmCursor> CreateCursor(CursorShape shape);
  virtual std::unique_ptr<WmFontDesc> CreateFontDesc(const FontSpec& spec);

  // Opens the window system named by `name`, or by $ATK_WINDOW_SYSTEM, or
  // "itc".  The backend module is dynamically loaded on first use, so the
  // same binary serves both systems (§8).  Returns nullptr for an unknown
  // backend.
  static std::unique_ptr<WindowSystem> Open(std::string_view name = "");

  // The documented porting surface: the routines a new backend must supply.
  // Kept in one place so the "approximately 70 routines" claim is checkable.
  static std::vector<std::string> PortingRoutines();
};

// Declares the wm backend modules ("wm-itc", "wm-x11") to the Loader.
// Idempotent; called by WindowSystem::Open.
void RegisterWindowSystemModules();

}  // namespace atk

#endif  // ATK_SRC_WM_WINDOW_SYSTEM_H_
