#include "src/wm/window_system.h"

#include <cstdlib>

#include "src/class_system/loader.h"
#include "src/observability/observability.h"

namespace atk {

ATK_DEFINE_CLASS(WmCursor, Object, "cursor")
ATK_DEFINE_CLASS(WmFontDesc, Object, "fontdesc")
ATK_DEFINE_CLASS(OffscreenWindow, Object, "offscreenwindow")
ATK_DEFINE_ABSTRACT_CLASS(WmWindow, Object, "wmwindow")
ATK_DEFINE_ABSTRACT_CLASS(WindowSystem, Object, "windowsystem")

void OffscreenWindow::Reset(int width, int height) {
  image_.Resize(width, height);
  graphic_ = std::make_unique<ImageGraphic>(&image_, image_.bounds());
}

Graphic* OffscreenWindow::GetGraphic() {
  if (!graphic_) {
    Reset(1, 1);
  }
  return graphic_.get();
}

InputEvent WmWindow::NextEvent() {
  if (!connected_) {
    // Transparent recovery: the event loop keeps running across a dropped
    // connection; the first thing it sees afterwards is the replayed Expose.
    Reconnect();
  }
  InputEvent event;
  if (!events_.empty()) {
    event = events_.front();
    events_.pop_front();
  }
  return event;
}

void WmWindow::Inject(InputEvent event) {
  if (!connected_) {
    return;  // Nothing reaches a window whose connection is down.
  }
  event.time = ++event_clock_;
  events_.push_back(std::move(event));
}

void WmWindow::InjectConnectionDrop() {
  if (!connected_) {
    return;
  }
  connected_ = false;
  ++drop_count_;
  static observability::Counter& dropped =
      observability::MetricsRegistry::Instance().counter("wm.connection.dropped");
  dropped.Add(1);
  events_.clear();  // In-flight events died with the connection.
  OnConnectionDrop();
}

void WmWindow::Reconnect() {
  if (connected_) {
    return;
  }
  connected_ = true;
  ++reconnect_count_;
  using observability::Counter;
  using observability::MetricsRegistry;
  static Counter& reconnected = MetricsRegistry::Instance().counter("wm.connection.reconnected");
  static Counter& replayed = MetricsRegistry::Instance().counter("wm.expose.replayed");
  reconnected.Add(1);
  replayed.Add(1);
  OnReconnect();
  // The server has no memory of our contents: replay a full-window Expose
  // so the interaction manager repaints the whole view tree.
  Inject(InputEvent::Exposure(Rect{0, 0, size().width, size().height}));
}

std::unique_ptr<OffscreenWindow> WindowSystem::CreateOffscreen(int width, int height) {
  return std::make_unique<OffscreenWindow>(width, height);
}

std::unique_ptr<WmCursor> WindowSystem::CreateCursor(CursorShape shape) {
  return std::make_unique<WmCursor>(shape);
}

std::unique_ptr<WmFontDesc> WindowSystem::CreateFontDesc(const FontSpec& spec) {
  return std::make_unique<WmFontDesc>(spec);
}

std::unique_ptr<WindowSystem> WindowSystem::Open(std::string_view name) {
  RegisterWindowSystemModules();
  std::string chosen(name);
  if (chosen.empty()) {
    const char* env = std::getenv("ATK_WINDOW_SYSTEM");
    chosen = (env != nullptr && *env != '\0') ? env : "itc";
  }
  // Backend classes are registered by their loader modules under the class
  // name "<name>wm" (e.g. "itcwm", "x11wm").
  std::unique_ptr<Object> obj = Loader::Instance().NewObject(chosen + "wm");
  return ObjectCast<WindowSystem>(std::move(obj));
}

std::vector<std::string> WindowSystem::PortingRoutines() {
  // The six classes and the routines each must supply.  This is the whole
  // surface used by the toolkit above src/wm; everything else is shared.
  return {
      // WindowSystem (7)
      "windowsystem::SystemName", "windowsystem::CreateWindow",
      "windowsystem::CreateOffscreen", "windowsystem::CreateCursor",
      "windowsystem::CreateFontDesc", "windowsystem::Initialize", "windowsystem::Shutdown",
      // InteractionManager / window (11)
      "wmwindow::GetGraphic", "wmwindow::Flush", "wmwindow::Display", "wmwindow::Resize",
      "wmwindow::SetTitle", "wmwindow::SetCursor", "wmwindow::HasEvent", "wmwindow::NextEvent",
      "wmwindow::Inject", "wmwindow::RequestCount", "wmwindow::Close",
      // Cursor (3)
      "cursor::Create", "cursor::SetShape", "cursor::Shape",
      // FontDesc (6)
      "fontdesc::Create", "fontdesc::Ascent", "fontdesc::Descent", "fontdesc::Advance",
      "fontdesc::StringWidth", "fontdesc::GlyphBit",
      // Graphic (38) — mostly "simple transformations to the graphics layer
      // of the underlying window system", as §8 says of the ~50 routines.
      "graphic::MoveTo", "graphic::CurrentPoint", "graphic::SetForeground",
      "graphic::SetBackground", "graphic::Foreground", "graphic::Background",
      "graphic::SetFont", "graphic::Font", "graphic::SetLineWidth", "graphic::LineWidth",
      "graphic::SetTransferMode", "graphic::TransferMode", "graphic::LocalBounds",
      "graphic::DeviceOrigin", "graphic::PushClip", "graphic::PopClip", "graphic::CurrentClip",
      "graphic::DrawPoint", "graphic::LineTo", "graphic::DrawLine", "graphic::DrawRect",
      "graphic::FillRect", "graphic::FillRectColor", "graphic::EraseRect", "graphic::InvertRect",
      "graphic::DrawEllipse", "graphic::FillEllipse", "graphic::DrawPolyline",
      "graphic::DrawPolygon", "graphic::FillPolygon", "graphic::DrawString",
      "graphic::DrawImage", "graphic::Clear", "graphic::CreateSub", "graphic::OpCount",
      "graphic::DevicePlot", "graphic::DeviceRead", "graphic::DeviceFillRect",
      // OffscreenWindow (4)
      "offscreenwindow::Reset", "offscreenwindow::Image", "offscreenwindow::GetGraphic",
      "offscreenwindow::CopyOnScreen",
  };
}

}  // namespace atk
