// Simulated X.11 backend.
//
// Models the X11 properties the paper leans on:
//   * a wire protocol: drawing calls become buffered requests that reach the
//     screen only at Flush() (XSync/XFlush), so Display() can lag drawing;
//   * no backing store: when an obscured region of a window is exposed, its
//     contents are gone and the server sends an Expose event — the client
//     must repaint.  (Footnote 5: "X.11 comes very close to handling this
//     correctly except for exposure events which do not propagate to
//     overlapped windows" — exposure lands on the window, not on inner
//     views; it is the interaction manager's job to route the repaint.)

#ifndef ATK_SRC_WM_WM_X11SIM_H_
#define ATK_SRC_WM_WM_X11SIM_H_

#include <memory>
#include <string>

#include "src/wm/window_system.h"

namespace atk {

class X11Window : public WmWindow {
  ATK_DECLARE_CLASS(X11Window)

 public:
  X11Window();
  X11Window(int width, int height);

  Graphic* GetGraphic() override;
  // Screen content: requests already flushed to the server.
  const PixelImage& Display() const override { return screen_; }
  void Flush() override;
  void Resize(int width, int height) override;
  uint64_t RequestCount() const override;

  // Number of Flush round-trips performed (protocol packets).
  uint64_t FlushCount() const { return flush_count_; }
  // Requests still buffered client-side.
  uint64_t PendingRequests() const;

  // Simulated overlap by another X window.  No backing store: contents under
  // `rect` are lost, and Unobscure delivers an Expose event for the region.
  void Obscure(const Rect& rect);
  void Unobscure();
  bool obscured() const { return obscured_; }

 protected:
  // No backing store and a dead wire: the screen, the client-side canvas of
  // un-flushed requests, and the request buffer are all lost on a drop.
  void OnConnectionDrop() override;

 private:
  PixelImage canvas_;  // Client-side drawing target (pixels of pending requests).
  PixelImage screen_;  // Server-side visible content.
  Rect obscured_rect_;
  bool obscured_ = false;
  std::unique_ptr<ImageGraphic> graphic_;
  uint64_t flushed_ops_ = 0;
  uint64_t flush_count_ = 0;
};

class X11WindowSystem : public WindowSystem {
  ATK_DECLARE_CLASS(X11WindowSystem)

 public:
  X11WindowSystem() = default;

  std::string SystemName() const override { return "x11"; }
  std::unique_ptr<WmWindow> CreateWindow(int width, int height,
                                         const std::string& title) override;
};

}  // namespace atk

#endif  // ATK_SRC_WM_WM_X11SIM_H_
