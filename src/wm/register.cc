// Declares the window-system backend modules to the dynamic loader.  The
// backends themselves stay dormant until WindowSystem::Open names one —
// mirroring §8: "using the dynamic loading facility, the modules for the
// other system can be loaded at run time".

#include "src/class_system/loader.h"
#include "src/wm/wm_itc.h"
#include "src/wm/wm_x11sim.h"
#include "src/wm/window_system.h"

namespace atk {

void RegisterWindowSystemModules() {
  static bool done = [] {
    Loader& loader = Loader::Instance();
    ModuleSpec itc;
    itc.name = "wm-itc";
    itc.provides = {"itcwm", "itcwindow"};
    itc.text_bytes = 48 * 1024;
    itc.data_bytes = 4 * 1024;
    itc.init = [] {
      ClassRegistry::Instance().Register(ItcWindowSystem::StaticClassInfo());
      ClassRegistry::Instance().Register(ItcWindow::StaticClassInfo());
    };
    loader.DeclareModule(std::move(itc));

    ModuleSpec x11;
    x11.name = "wm-x11";
    x11.provides = {"x11wm", "x11window"};
    x11.text_bytes = 64 * 1024;
    x11.data_bytes = 6 * 1024;
    x11.init = [] {
      ClassRegistry::Instance().Register(X11WindowSystem::StaticClassInfo());
      ClassRegistry::Instance().Register(X11Window::StaticClassInfo());
    };
    loader.DeclareModule(std::move(x11));
    return true;
  }();
  (void)done;
}

}  // namespace atk
