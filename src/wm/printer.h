// The printer as a display medium (§4): "When a view receives a print
// request for a specific type of printer it can temporarily shift its
// pointer to a drawable for that printer type and do a redraw of its image."
//
// A PrintJob owns a sequence of page images and hands out a Graphic per
// page; base/print.* does the repointing.

#ifndef ATK_SRC_WM_PRINTER_H_
#define ATK_SRC_WM_PRINTER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/graphics/graphic.h"
#include "src/graphics/pixel_image.h"

namespace atk {

class PrintJob {
 public:
  // Page size in device pixels; margins inset the printable area.
  PrintJob(int page_width, int page_height, int margin = 12);

  // Starts a new page and returns the drawable for its printable area.  The
  // returned graphic is valid until the next NewPage or destruction.
  Graphic* NewPage();

  int page_count() const { return static_cast<int>(pages_.size()); }
  const PixelImage& page(int index) const { return *pages_[static_cast<size_t>(index)]; }
  Rect printable_area() const;

  // Renders all pages as one PPM strip / ASCII proof.
  std::string ToPpm() const;
  std::string ToAsciiProof() const;

 private:
  int page_width_;
  int page_height_;
  int margin_;
  std::vector<std::unique_ptr<PixelImage>> pages_;
  std::unique_ptr<ImageGraphic> current_graphic_;
};

}  // namespace atk

#endif  // ATK_SRC_WM_PRINTER_H_
