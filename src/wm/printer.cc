#include "src/wm/printer.h"

#include <sstream>

namespace atk {

PrintJob::PrintJob(int page_width, int page_height, int margin)
    : page_width_(page_width), page_height_(page_height), margin_(margin) {}

Rect PrintJob::printable_area() const {
  return Rect{0, 0, page_width_, page_height_}.Inset(margin_);
}

Graphic* PrintJob::NewPage() {
  pages_.push_back(std::make_unique<PixelImage>(page_width_, page_height_, kWhite));
  current_graphic_ = std::make_unique<ImageGraphic>(pages_.back().get(), printable_area());
  return current_graphic_.get();
}

std::string PrintJob::ToPpm() const {
  std::ostringstream out;
  for (const auto& page : pages_) {
    out << page->ToPpm();
  }
  return out.str();
}

std::string PrintJob::ToAsciiProof() const {
  std::ostringstream out;
  for (size_t i = 0; i < pages_.size(); ++i) {
    out << "--- page " << (i + 1) << " ---\n";
    out << pages_[i]->ToAscii();
  }
  return out.str();
}

}  // namespace atk
