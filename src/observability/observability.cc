#include "src/observability/observability.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace atk {
namespace observability {

std::atomic<bool> g_trace_enabled{
#ifdef ATK_TRACE_DEFAULT
    true
#else
    false
#endif
};

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// ---- Tracer ----------------------------------------------------------------

namespace {

std::atomic<uint32_t> g_next_thread_id{0};

// Per-thread state: dense id and current span nesting depth.
thread_local uint32_t tls_thread_id = UINT32_MAX;
thread_local uint16_t tls_depth = 0;

}  // namespace

uint32_t Tracer::ThreadId() {
  if (tls_thread_id == UINT32_MAX) {
    tls_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_id;
}

Tracer::Tracer() { ring_.resize(kDefaultCapacity); }

Tracer& Tracer::Instance() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetEnabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void Tracer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.assign(std::max<size_t>(capacity, 1), SpanRecord{});
  next_seq_ = 1;
}

size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (SpanRecord& record : ring_) {
    record = SpanRecord{};
  }
  next_seq_ = 1;
}

void Tracer::Record(std::string_view name, uint64_t start_ns, uint64_t end_ns,
                    uint16_t depth, uint32_t thread) {
  // A mutex keeps the ring race-free under TSan; spans are coarse (update
  // cycles, module loads, salvage runs), so contention is negligible next
  // to the work being measured.
  std::lock_guard<std::mutex> lock(mu_);
  if (next_seq_ > ring_.size()) {
    // The slot still holds a span nobody Collect()ed; the wraparound is an
    // information loss worth counting, not just inferring from seq math.
    static Counter& overwritten = MetricsRegistry::Instance().counter("obs.trace.dropped");
    overwritten.Add(1);
  }
  SpanRecord& slot = ring_[(next_seq_ - 1) % ring_.size()];
  size_t n = std::min(name.size(), SpanRecord::kNameCapacity - 1);
  std::memcpy(slot.name, name.data(), n);
  slot.name[n] = '\0';
  slot.start_ns = start_ns;
  slot.duration_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  slot.seq = next_seq_++;
  slot.thread = thread;
  slot.depth = depth;
}

std::vector<SpanRecord> Tracer::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  uint64_t total = next_seq_ - 1;
  uint64_t kept = std::min<uint64_t>(total, ring_.size());
  out.reserve(kept);
  for (uint64_t seq = total - kept + 1; seq <= total; ++seq) {
    out.push_back(ring_[(seq - 1) % ring_.size()]);
  }
  return out;
}

uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = next_seq_ - 1;
  return total > ring_.size() ? total - ring_.size() : 0;
}

void ScopedSpan::Open(std::string_view prefix, std::string_view suffix) noexcept {
  size_t n = std::min(prefix.size(), SpanRecord::kNameCapacity - 1);
  std::memcpy(name_, prefix.data(), n);
  size_t m = std::min(suffix.size(), SpanRecord::kNameCapacity - 1 - n);
  if (m > 0) {
    std::memcpy(name_ + n, suffix.data(), m);
  }
  name_[n + m] = '\0';
  depth_ = tls_depth++;
  active_ = true;
  start_ns_ = MonotonicNanos();
}

void ScopedSpan::Close() noexcept {
  uint64_t end_ns = MonotonicNanos();
  --tls_depth;
  // Tracing may have been disabled mid-span; the record is still written so
  // open/close depths stay balanced and the span is not half-lost.
  Tracer::Instance().Record(name_, start_ns_, end_ns, depth_, Tracer::ThreadId());
}

// ---- Metrics ---------------------------------------------------------------

size_t Histogram::BucketIndex(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index == 0) {
    return 0;
  }
  if (index >= 64) {
    return UINT64_MAX;
  }
  return (uint64_t{1} << index) - 1;
}

void Histogram::Observe(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = max_.load(std::memory_order_relaxed);
  while (value > cur && !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Percentile(double p) const {
  uint64_t total = count();
  if (total == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      // The bucket's upper bound, capped at the true max (the highest
      // bucket would otherwise overshoot it).
      return std::min(BucketUpperBound(i), max());
    }
  }
  return max();
}

std::array<uint64_t, Histogram::kBuckets> Histogram::BucketCounts() const {
  std::array<uint64_t, kBuckets> out{};
  for (size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

// ---- Snapshot --------------------------------------------------------------

struct TraceSnapshotAccess {
  static void Fill(TraceSnapshot* snap) {
    MetricsRegistry& reg = MetricsRegistry::Instance();
    std::lock_guard<std::mutex> lock(reg.mu_);
    for (const auto& [name, counter] : reg.counters_) {
      snap->counters.push_back(CounterSample{name, counter->value()});
    }
    for (const auto& [name, gauge] : reg.gauges_) {
      snap->gauges.push_back(GaugeSample{name, gauge->value()});
    }
    for (const auto& [name, histogram] : reg.histograms_) {
      snap->histograms.push_back(HistogramSample{name, histogram->count(), histogram->sum(),
                                                 histogram->max(), histogram->p50(),
                                                 histogram->p95(), histogram->p99()});
    }
  }
};

TraceSnapshot Snapshot() {
  TraceSnapshot snap;
  Tracer& tracer = Tracer::Instance();
  snap.trace_enabled = tracer.enabled();
  snap.spans = tracer.Collect();
  snap.spans_recorded = tracer.recorded();
  snap.spans_dropped = tracer.dropped();
  TraceSnapshotAccess::Fill(&snap);
  return snap;
}

std::string ToText(const TraceSnapshot& snap) {
  std::string out;
  out += "== atk observability snapshot ==\n";
  out += "tracer: ";
  out += snap.trace_enabled ? "enabled" : "disabled";
  out += ", " + std::to_string(snap.spans_recorded) + " span(s) recorded, " +
         std::to_string(snap.spans_dropped) + " dropped\n";
  if (snap.spans_dropped > 0) {
    out += "WARNING: ring buffer wrapped; the oldest " + std::to_string(snap.spans_dropped) +
           " span(s) were overwritten (raise ATK_TRACE_CAPACITY to keep them)\n";
  }
  if (!snap.spans.empty()) {
    out += "-- spans (oldest first; indented by nesting depth) --\n";
    uint64_t t0 = snap.spans.front().start_ns;
    char line[160];
    for (const SpanRecord& span : snap.spans) {
      double at_us = static_cast<double>(span.start_ns - t0) / 1e3;
      double dur_us = static_cast<double>(span.duration_ns) / 1e3;
      std::snprintf(line, sizeof(line), "#%llu t%u +%.1fus %*s%s %.1fus\n",
                    static_cast<unsigned long long>(span.seq), span.thread, at_us,
                    span.depth * 2, "", span.name, dur_us);
      out += line;
    }
  }
  if (!snap.counters.empty()) {
    out += "-- counters --\n";
    for (const CounterSample& c : snap.counters) {
      out += c.name + " " + std::to_string(c.value) + "\n";
    }
  }
  if (!snap.gauges.empty()) {
    out += "-- gauges --\n";
    for (const GaugeSample& g : snap.gauges) {
      out += g.name + " " + std::to_string(g.value) + "\n";
    }
  }
  if (!snap.histograms.empty()) {
    out += "-- histograms --\n";
    for (const HistogramSample& h : snap.histograms) {
      out += h.name + " count=" + std::to_string(h.count) + " sum=" + std::to_string(h.sum) +
             " max=" + std::to_string(h.max) + " p50=" + std::to_string(h.p50) +
             " p95=" + std::to_string(h.p95) + " p99=" + std::to_string(h.p99) + "\n";
    }
  }
  return out;
}

namespace {

void ExitDump() {
  // Skipped when tracing was disabled again before exit (test hygiene).
  if (!Enabled()) {
    return;
  }
  std::fputs(ToText(Snapshot()).c_str(), stderr);
}

}  // namespace

void InitFromEnv() {
  static bool applied = [] {
    if (const char* capacity = std::getenv("ATK_TRACE_CAPACITY")) {
      long value = std::atol(capacity);
      if (value > 0) {
        Tracer::Instance().SetCapacity(static_cast<size_t>(value));
      }
    }
    if (const char* trace = std::getenv("ATK_TRACE")) {
      if (trace[0] != '\0' && trace[0] != '0') {
        Tracer::Instance().SetEnabled(true);
        std::atexit(ExitDump);
      }
    }
    return true;
  }();
  (void)applied;
}

}  // namespace observability
}  // namespace atk
