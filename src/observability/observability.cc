#include "src/observability/observability.h"

#include <algorithm>

#include "src/observability/memory.h"
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace atk {
namespace observability {

std::atomic<bool> g_trace_enabled{
#ifdef ATK_TRACE_DEFAULT
    true
#else
    false
#endif
};

std::atomic<bool> g_trace_flows{true};

namespace internal {
thread_local uint64_t tls_flow = 0;
thread_local uint32_t tls_track = 0;
}  // namespace internal

uint64_t NextFlowId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

namespace {

uint64_t SteadyClockNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

#if defined(__x86_64__)
// TSC-based clock, calibrated once against the steady clock.  A span is two
// timestamps, and the fan-out path records hundreds of spans per edit, so
// the ~20ns vDSO clock_gettime is most of the tracing overhead budget; a
// raw rdtsc is ~5ns.  Only trusted when the kernel itself elected the TSC
// as clocksource (which implies invariant + cross-core synchronized);
// otherwise every call falls back to the steady clock.
struct TscCalibration {
  uint64_t base_tsc = 0;
  uint64_t base_ns = 0;
  double ns_per_tick = 0.0;
  bool usable = false;
};

const TscCalibration& TscCalib() {
  static const TscCalibration calib = [] {
    TscCalibration c;
    char source[32] = {};
    if (std::FILE* f = std::fopen(
            "/sys/devices/system/clocksource/clocksource0/current_clocksource", "r")) {
      if (std::fgets(source, sizeof(source), f) == nullptr) {
        source[0] = '\0';
      }
      std::fclose(f);
    }
    if (std::strncmp(source, "tsc", 3) != 0) {
      return c;
    }
    // ~2ms calibration window, once per process: long enough that vDSO
    // quantization is <0.1% of the slope.
    uint64_t ns0 = SteadyClockNanos();
    uint64_t tsc0 = __rdtsc();
    uint64_t ns1 = ns0;
    uint64_t tsc1 = tsc0;
    while (ns1 - ns0 < 2'000'000) {
      ns1 = SteadyClockNanos();
      tsc1 = __rdtsc();
    }
    if (tsc1 <= tsc0) {
      return c;
    }
    c.ns_per_tick = static_cast<double>(ns1 - ns0) / static_cast<double>(tsc1 - tsc0);
    c.base_tsc = tsc1;
    c.base_ns = ns1;
    c.usable = c.ns_per_tick > 0.0;
    return c;
  }();
  return calib;
}
#endif  // __x86_64__

}  // namespace

uint64_t MonotonicNanos() {
#if defined(__x86_64__)
  const TscCalibration& calib = TscCalib();
  if (calib.usable) {
    return calib.base_ns + static_cast<uint64_t>(
        static_cast<double>(__rdtsc() - calib.base_tsc) * calib.ns_per_tick);
  }
#endif
  return SteadyClockNanos();
}

// ---- Tracer ----------------------------------------------------------------

namespace {

std::atomic<uint32_t> g_next_thread_id{0};

// Per-thread state: dense id and current span nesting depth.
thread_local uint32_t tls_thread_id = UINT32_MAX;
thread_local uint16_t tls_depth = 0;

}  // namespace

uint32_t Tracer::ThreadId() {
  if (tls_thread_id == UINT32_MAX) {
    tls_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_id;
}

// One thread's span ring.  The owning thread is the only writer; `count` is
// the publication point (fields are written plainly, then count is stored
// with release order), so a reader that loads count with acquire order sees
// fully-written records for every published slot.  `gen` stamps which
// tracer generation the contents belong to: SetCapacity/Clear retire every
// ring at once by bumping the generation, and a stale ring is skipped by
// readers until its owner resyncs it on its next record.
struct Tracer::ThreadRing {
  explicit ThreadRing(size_t cap) : slots(cap) {}

  std::vector<SpanRecord> slots;         // Resized only by the owner, under mu_.
  std::atomic<uint64_t> count{0};        // Records ever published here.
  std::atomic<uint64_t> overwritten{0};  // Wraparound losses.
  std::atomic<uint32_t> gen{0};
};

Tracer::Tracer() { tracks_.push_back("atk"); }

Tracer& Tracer::Instance() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::SetEnabled(bool enabled) {
  g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void Tracer::SetFlowsEnabled(bool enabled) {
  g_trace_flows.store(enabled, std::memory_order_relaxed);
}

uint32_t Tracer::RegisterTrack(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) {
      return static_cast<uint32_t>(i);
    }
  }
  tracks_.emplace_back(name);
  return static_cast<uint32_t>(tracks_.size() - 1);
}

std::vector<std::string> Tracer::Tracks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tracks_;
}

void Tracer::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(capacity, 1);
  generation_.fetch_add(1, std::memory_order_release);
  next_seq_.store(1, std::memory_order_relaxed);
}

size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  generation_.fetch_add(1, std::memory_order_release);
  next_seq_.store(1, std::memory_order_relaxed);
}

Tracer::ThreadRing* Tracer::CurrentRing() {
  // Plain-TLS fast path: two constant-initialized thread_locals and one
  // relaxed generation compare, no guard variable and no lock.  Rings are
  // leaked (rings_ keeps them forever) precisely so this raw pointer can
  // never dangle, whatever other threads do with SetCapacity/Clear.
  thread_local ThreadRing* tls_ring = nullptr;
  thread_local uint32_t tls_generation = 0;
  uint32_t generation = generation_.load(std::memory_order_acquire);
  if (tls_ring != nullptr && tls_generation == generation) {
    return tls_ring;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Ring storage is charged to the accountant and never released: rings_
  // leaks every ring (and every retired generation's re-sized storage stays
  // with its owner thread), so the bytes those design choices retain are
  // visible instead of invisible.
  static MemoryAccount& ring_mem =
      MemoryAccountant::Instance().account("obs.mem.trace_ring");
  if (tls_ring == nullptr) {
    tls_ring = new ThreadRing(capacity_);
    rings_.push_back(tls_ring);
    ring_mem.Charge(static_cast<int64_t>(sizeof(ThreadRing) +
                                         capacity_ * sizeof(SpanRecord)));
  } else if (tls_ring->slots.size() != capacity_) {
    ring_mem.Charge(static_cast<int64_t>(capacity_ * sizeof(SpanRecord)) -
                    static_cast<int64_t>(tls_ring->slots.size() * sizeof(SpanRecord)));
    tls_ring->slots.assign(capacity_, SpanRecord{});
  }
  tls_ring->count.store(0, std::memory_order_relaxed);
  tls_ring->overwritten.store(0, std::memory_order_relaxed);
  tls_ring->gen.store(generation_.load(std::memory_order_relaxed),
                      std::memory_order_release);
  tls_generation = generation_.load(std::memory_order_relaxed);
  return tls_ring;
}

void Tracer::Record(std::string_view name, uint64_t start_ns, uint64_t end_ns,
                    uint16_t depth, uint32_t thread, uint64_t flow, uint32_t track,
                    uint64_t arg) {
  ThreadRing& ring = *CurrentRing();
  uint64_t n = ring.count.load(std::memory_order_relaxed);
  if (n >= ring.slots.size()) {
    // The slot still holds a span nobody Collect()ed; the wraparound is an
    // information loss worth counting, not just inferring from seq math.
    ring.overwritten.fetch_add(1, std::memory_order_relaxed);
    static Counter& overwritten = MetricsRegistry::Instance().counter("obs.trace.dropped");
    overwritten.Add(1);
  }
  SpanRecord& slot = ring.slots[n % ring.slots.size()];
  size_t len = std::min(name.size(), SpanRecord::kNameCapacity - 1);
  std::memcpy(slot.name, name.data(), len);
  slot.name[len] = '\0';
  slot.start_ns = start_ns;
  slot.duration_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  slot.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  slot.flow = flow;
  slot.arg = arg;
  slot.thread = thread;
  slot.track = track;
  slot.depth = depth;
  ring.count.store(n + 1, std::memory_order_release);
}

std::vector<SpanRecord> Tracer::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t generation = generation_.load(std::memory_order_relaxed);
  std::vector<SpanRecord> out;
  for (const ThreadRing* ring : rings_) {
    if (ring->gen.load(std::memory_order_acquire) != generation) {
      continue;  // Retired by SetCapacity/Clear; owner has not resynced.
    }
    uint64_t published = ring->count.load(std::memory_order_acquire);
    uint64_t kept = std::min<uint64_t>(published, ring->slots.size());
    out.reserve(out.size() + kept);
    for (uint64_t i = published - kept; i < published; ++i) {
      out.push_back(ring->slots[i % ring->slots.size()]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.seq < b.seq; });
  return out;
}

uint64_t Tracer::recorded() const {
  return next_seq_.load(std::memory_order_relaxed) - 1;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t generation = generation_.load(std::memory_order_relaxed);
  uint64_t total = 0;
  for (const ThreadRing* ring : rings_) {
    if (ring->gen.load(std::memory_order_acquire) == generation) {
      total += ring->overwritten.load(std::memory_order_relaxed);
    }
  }
  return total;
}

void ScopedSpan::Open(std::string_view prefix, std::string_view suffix) noexcept {
  size_t n = std::min(prefix.size(), SpanRecord::kNameCapacity - 1);
  std::memcpy(name_, prefix.data(), n);
  size_t m = std::min(suffix.size(), SpanRecord::kNameCapacity - 1 - n);
  if (m > 0) {
    std::memcpy(name_ + n, suffix.data(), m);
  }
  name_[n + m] = '\0';
  depth_ = tls_depth++;
  active_ = true;
  start_ns_ = MonotonicNanos();
}

void ScopedSpan::Close() noexcept {
  uint64_t end_ns = MonotonicNanos();
  --tls_depth;
  // Tracing may have been disabled mid-span; the record is still written so
  // open/close depths stay balanced and the span is not half-lost.  Flow and
  // track are read at close: the enclosing Flow/TrackScope outlives the span
  // by construction at every instrumentation site.
  Tracer::Instance().Record(name_, start_ns_, end_ns, depth_, Tracer::ThreadId(),
                            internal::tls_flow, internal::tls_track, arg_);
}

// ---- Metrics ---------------------------------------------------------------

size_t Histogram::BucketIndex(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index == 0) {
    return 0;
  }
  if (index >= 64) {
    return UINT64_MAX;
  }
  return (uint64_t{1} << index) - 1;
}

void Histogram::Observe(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = max_.load(std::memory_order_relaxed);
  while (value > cur && !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Percentile(double p) const {
  uint64_t total = count();
  if (total == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      // The bucket's upper bound, capped at the true max (the highest
      // bucket would otherwise overshoot it).
      return std::min(BucketUpperBound(i), max());
    }
  }
  return max();
}

std::array<uint64_t, Histogram::kBuckets> Histogram::BucketCounts() const {
  std::array<uint64_t, kBuckets> out{};
  for (size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

// ---- Snapshot --------------------------------------------------------------

struct TraceSnapshotAccess {
  static void Fill(TraceSnapshot* snap) {
    MetricsRegistry& reg = MetricsRegistry::Instance();
    std::lock_guard<std::mutex> lock(reg.mu_);
    for (const auto& [name, counter] : reg.counters_) {
      snap->counters.push_back(CounterSample{name, counter->value()});
    }
    for (const auto& [name, gauge] : reg.gauges_) {
      snap->gauges.push_back(GaugeSample{name, gauge->value()});
    }
    for (const auto& [name, histogram] : reg.histograms_) {
      snap->histograms.push_back(HistogramSample{name, histogram->count(), histogram->sum(),
                                                 histogram->max(), histogram->p50(),
                                                 histogram->p95(), histogram->p99()});
    }
  }
};

TraceSnapshot Snapshot() {
  TraceSnapshot snap;
  Tracer& tracer = Tracer::Instance();
  snap.trace_enabled = tracer.enabled();
  snap.spans = tracer.Collect();
  snap.tracks = tracer.Tracks();
  snap.spans_recorded = tracer.recorded();
  snap.spans_dropped = tracer.dropped();
  TraceSnapshotAccess::Fill(&snap);
  return snap;
}

std::string ToText(const TraceSnapshot& snap) {
  std::string out;
  out += "== atk observability snapshot ==\n";
  out += "tracer: ";
  out += snap.trace_enabled ? "enabled" : "disabled";
  out += ", " + std::to_string(snap.spans_recorded) + " span(s) recorded, " +
         std::to_string(snap.spans_dropped) + " dropped\n";
  if (snap.spans_dropped > 0) {
    out += "WARNING: ring buffer wrapped; the oldest " + std::to_string(snap.spans_dropped) +
           " span(s) were overwritten (raise ATK_TRACE_CAPACITY to keep them)\n";
  }
  if (!snap.spans.empty()) {
    out += "-- spans (oldest first; indented by nesting depth) --\n";
    // Seq is completion order, so the front span is not necessarily the
    // earliest start — an enclosing span completes after all its children.
    uint64_t t0 = snap.spans.front().start_ns;
    for (const SpanRecord& span : snap.spans) {
      t0 = std::min(t0, span.start_ns);
    }
    char line[160];
    for (const SpanRecord& span : snap.spans) {
      double at_us = static_cast<double>(span.start_ns - t0) / 1e3;
      double dur_us = static_cast<double>(span.duration_ns) / 1e3;
      char tail[64] = "";
      if (span.flow != 0) {
        std::snprintf(tail, sizeof(tail), " flow=%llu",
                      static_cast<unsigned long long>(span.flow));
      }
      std::snprintf(line, sizeof(line), "#%llu t%u +%.1fus %*s%s %.1fus%s\n",
                    static_cast<unsigned long long>(span.seq), span.thread, at_us,
                    span.depth * 2, "", span.name, dur_us, tail);
      out += line;
    }
  }
  if (!snap.counters.empty()) {
    out += "-- counters --\n";
    for (const CounterSample& c : snap.counters) {
      out += c.name + " " + std::to_string(c.value) + "\n";
    }
  }
  if (!snap.gauges.empty()) {
    out += "-- gauges --\n";
    for (const GaugeSample& g : snap.gauges) {
      out += g.name + " " + std::to_string(g.value) + "\n";
    }
  }
  if (!snap.histograms.empty()) {
    out += "-- histograms --\n";
    for (const HistogramSample& h : snap.histograms) {
      out += h.name + " count=" + std::to_string(h.count) + " sum=" + std::to_string(h.sum) +
             " max=" + std::to_string(h.max) + " p50=" + std::to_string(h.p50) +
             " p95=" + std::to_string(h.p95) + " p99=" + std::to_string(h.p99) + "\n";
    }
  }
  return out;
}

namespace {

void ExitDump() {
  // Skipped when tracing was disabled again before exit (test hygiene).
  if (!Enabled()) {
    return;
  }
  std::fputs(ToText(Snapshot()).c_str(), stderr);
}

}  // namespace

void InitFromEnv() {
  static bool applied = [] {
    if (const char* capacity = std::getenv("ATK_TRACE_CAPACITY")) {
      long value = std::atol(capacity);
      if (value > 0) {
        Tracer::Instance().SetCapacity(static_cast<size_t>(value));
      }
    }
    if (const char* flows = std::getenv("ATK_TRACE_FLOWS")) {
      Tracer::Instance().SetFlowsEnabled(flows[0] != '0');
    }
    if (const char* trace = std::getenv("ATK_TRACE")) {
      if (trace[0] != '\0' && trace[0] != '0') {
        Tracer::Instance().SetEnabled(true);
        std::atexit(ExitDump);
      }
    }
    MemoryInitFromEnv();
    return true;
  }();
  (void)applied;
}

}  // namespace observability
}  // namespace atk
