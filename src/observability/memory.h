// Memory accounting spine — per-subsystem byte tracking under the metrics
// registry (DESIGN.md §8).
//
// The toolkit's bytes live in pools scattered across every layer: gap
// buffers under the text component, the datastream reader's pinned buffer
// and unescape arena, deferred-decode capture queues and their orphaned
// copies, Region band storage, the tracer's per-thread span rings
// (including generations retired by SetCapacity/Clear, which are leaked on
// purpose), and the server channels' send/retransmit queues.  Before this
// module none of that was visible, so no eviction or budget policy could be
// built or validated (the ROADMAP's lazy-decode item needs exactly that).
//
// Three primitives:
//
//   * MemoryAccount — one named pool.  `name` follows the metric convention
//     as `<layer>.mem.<account>`; the account publishes three metrics in
//     MetricsRegistry: gauge `<name>_bytes` (current), gauge
//     `<name>_peak_bytes` (high-water mark) and counter
//     `<name>_charged_bytes` (cumulative bytes ever charged).  Charge() is
//     a handful of relaxed atomic ops; call sites cache the account
//     reference exactly like they cache Counter references.
//   * ScopedCharge — RAII charge: releases on destruction, transfers on
//     move, and Resize() re-charges the delta when a container grows or
//     shrinks.  The member-object pattern gives a pool owner exact
//     charge/release pairing with no explicit destructor logic.
//   * BudgetMonitor — ATK_MEM_BUDGET plumbing.  A budget in bytes plus
//     registered pressure callbacks at fractional thresholds; callbacks
//     fire in ascending threshold order when the process total crosses a
//     threshold upward, re-arm when it falls back below.  The hot path adds
//     two relaxed loads to Charge(); everything else happens only while a
//     threshold is actually crossing.
//
// Accounts are *exclusive* by default: their bytes are owned storage and
// roll into the process totals (`obs.mem.total_bytes` /
// `obs.mem.peak_bytes`).  An *overlay* account tracks bytes that alias
// storage already counted elsewhere (the deferred-decode queue holds views
// into the reader's pinned buffer; decoded DataObject body bytes live in
// gap buffers) — overlays publish the same three metrics but are excluded
// from the totals, so the totals stay comparable to an external allocator
// oracle (tested to within 10% on the 256-paragraph corpus).
//
// Census sources extend the accounts with a live-object census: a
// registered source (the DataObject registry in src/base) reports
// count/bytes rows by class, and SnapshotMemory() folds the top-N rows
// into a MemorySnapshot.  src/observability/memsnapshot_component.h
// serializes that snapshot as a `\begindata{memsnapshot,...}` document so
// a heap census round-trips through the §5 reader/writer/salvager like any
// other component.
//
// Like observability.h, this header depends on nothing but the standard
// library: it sits below class_system so every layer can charge bytes
// without a dependency cycle.

#ifndef ATK_SRC_OBSERVABILITY_MEMORY_H_
#define ATK_SRC_OBSERVABILITY_MEMORY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/observability/observability.h"

namespace atk {
namespace observability {

// The process-wide accounting switch, exposed directly so Charge() inlines
// its fast path to a relaxed load plus a branch.  On by default; the bench
// harness flips it off to measure the accountant's own overhead (the
// check_perf.sh accounted-vs-unaccounted gate).  Toggling while charges
// are outstanding skews gauges until the pools turn over — flip it only
// around paired create/destroy cycles.
extern std::atomic<bool> g_mem_accounting;

inline bool MemoryAccountingEnabled() {
  return g_mem_accounting.load(std::memory_order_relaxed);
}

void SetMemoryAccountingEnabled(bool enabled);

// ---- Accounts --------------------------------------------------------------

class MemoryAccountant;

// One named allocation pool.  Create through MemoryAccountant::account()
// (exclusive) or MemoryAccountant::overlay(); the object never moves, so
// call sites cache a reference in a function-local static.
class MemoryAccount {
 public:
  const std::string& name() const { return name_; }
  bool overlay() const { return overlay_; }

  // Adjusts the pool size by `bytes` (negative to release).  Updates the
  // current/peak gauges, the charged counter, and — for exclusive accounts
  // — the process totals and the budget monitor.
  void Charge(int64_t bytes);
  void Release(int64_t bytes) { Charge(-bytes); }

  int64_t current() const { return current_->value(); }
  int64_t peak() const { return peak_->value(); }
  uint64_t charged() const { return charged_->value(); }

 private:
  friend class MemoryAccountant;
  MemoryAccount(std::string name, bool overlay);

  std::string name_;
  bool overlay_ = false;
  Gauge* current_ = nullptr;   // <name>_bytes
  Gauge* peak_ = nullptr;      // <name>_peak_bytes
  Counter* charged_ = nullptr; // <name>_charged_bytes
};

// RAII charge against one account.  Movable (the charge transfers), not
// copyable.  A default-constructed ScopedCharge is inert; Resize() on it is
// a no-op, so pool owners that are themselves default-constructed (the
// embedded-object sub-reader) stay valid.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  explicit ScopedCharge(MemoryAccount& account, int64_t bytes = 0)
      : account_(&account) {
    Resize(bytes);
  }
  ~ScopedCharge() { Resize(0); }

  ScopedCharge(ScopedCharge&& other) noexcept
      : account_(other.account_), bytes_(other.bytes_) {
    other.account_ = nullptr;
    other.bytes_ = 0;
  }
  ScopedCharge& operator=(ScopedCharge&& other) noexcept {
    if (this != &other) {
      Resize(0);
      account_ = other.account_;
      bytes_ = other.bytes_;
      other.account_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  // Re-charges so exactly `bytes` are held (the delta hits the account).
  void Resize(int64_t bytes) {
    if (account_ != nullptr && bytes != bytes_) {
      account_->Charge(bytes - bytes_);
      bytes_ = bytes;
    }
  }
  void Add(int64_t bytes) { Resize(bytes_ + bytes); }

  int64_t bytes() const { return bytes_; }
  bool attached() const { return account_ != nullptr; }

 private:
  MemoryAccount* account_ = nullptr;
  int64_t bytes_ = 0;
};

// ---- Budget ----------------------------------------------------------------

struct PressureEvent {
  double fraction = 0.0;   // The threshold that crossed (fraction of budget).
  uint64_t budget = 0;     // Budget in bytes at firing time.
  int64_t total = 0;       // Process total that crossed it.
};

using PressureCallback = std::function<void(const PressureEvent&)>;

// Watches the exclusive-account process total against a byte budget.
// Thresholds are fractions of the budget; each fires once per upward
// crossing (ascending order when one charge crosses several at once) and
// re-arms when the total falls back below it.  Callbacks run outside the
// monitor's lock, on the charging thread; a callback that itself charges
// or releases (an evictor) is re-entered safely (nested observation is
// suppressed on the firing thread).
class BudgetMonitor {
 public:
  // 0 disables the budget (no thresholds ever fire).
  void SetBudget(uint64_t bytes);
  uint64_t budget() const;

  // Registers `callback` at `fraction` (clamped to (0, 8]); returns an id
  // for RemoveCallback.  Fractions above 1 are legal (runaway alarms).
  int AddCallback(double fraction, PressureCallback callback);
  void RemoveCallback(int id);

  // Drops every callback and the budget (test hygiene).
  void Clear();

  // Called by MemoryAccount::Charge with the new exclusive total.  The
  // fast path is two relaxed loads.
  void Observe(int64_t total);

 private:
  struct Threshold {
    int id = 0;
    double fraction = 0.0;
    int64_t bytes = 0;
    bool fired = false;
    PressureCallback callback;
  };

  void Rebuild();  // Recomputes bytes/next_fire_/next_rearm_ (mu_ held).

  mutable std::mutex mu_;
  uint64_t budget_ = 0;
  int next_id_ = 1;
  std::vector<Threshold> thresholds_;  // Sorted by fraction ascending.
  // Fast-path bounds: fire when total >= next_fire_, re-arm when total <
  // next_rearm_.  INT64_MAX / INT64_MIN mean "never".
  std::atomic<int64_t> next_fire_{INT64_MAX};
  std::atomic<int64_t> next_rearm_{INT64_MIN};
};

// ---- Census ----------------------------------------------------------------

// One census row: a class (or pool) name with live-instance count and an
// estimated byte footprint.
struct CensusRow {
  std::string name;
  uint64_t count = 0;
  uint64_t bytes = 0;
};

// ---- Snapshot --------------------------------------------------------------

struct MemoryAccountSample {
  std::string name;
  bool overlay = false;
  int64_t current_bytes = 0;
  int64_t peak_bytes = 0;
  uint64_t charged_bytes = 0;
};

struct MemorySnapshot {
  uint64_t budget_bytes = 0;   // 0 = no budget.
  int64_t total_bytes = 0;     // Exclusive accounts only.
  int64_t peak_bytes = 0;
  std::vector<MemoryAccountSample> accounts;  // Sorted by name.
  std::vector<CensusRow> census;              // Top-N by bytes, descending.
};

// ---- Accountant ------------------------------------------------------------

class MemoryAccountant {
 public:
  static MemoryAccountant& Instance();

  // Looks up (creating on first use) the named account.  `name` must follow
  // `<layer>.mem.<account>` (lower-case segments); the `_bytes` metric
  // suffixes are appended here, never by callers.  The same name always
  // yields the same object, and the exclusive/overlay kind is fixed by the
  // first call.
  MemoryAccount& account(std::string_view name);
  MemoryAccount& overlay(std::string_view name);

  // Process totals over exclusive accounts (mirrors obs.mem.total_bytes /
  // obs.mem.peak_bytes).
  int64_t total() const { return total_gauge().value(); }
  int64_t peak() const { return peak_gauge().value(); }

  // Lowers every peak gauge (accounts and process) to its current value —
  // bench hygiene, so per-phase peaks are measurable.
  void ResetPeaks();

  BudgetMonitor& budget_monitor() { return budget_; }

  // Registers a census source: `fn` returns live-object rows on demand
  // (called by SnapshotMemory with no accountant locks held beyond the
  // source list).  Registration is idempotent per name.
  void RegisterCensusSource(std::string name, std::function<std::vector<CensusRow>()> fn);

  // Runs every census source and returns the merged rows, largest byte
  // footprint first, truncated to `top_n`.
  std::vector<CensusRow> RunCensus(size_t top_n) const;

  // Freezes accounts + budget + census into one snapshot.
  MemorySnapshot SnapshotMemory(size_t census_top_n = 16) const;

  // Internal: the shared totals, cached by MemoryAccount.
  Gauge& total_gauge() const { return *total_; }
  Gauge& peak_gauge() const { return *peak_; }

 private:
  MemoryAccountant();
  MemoryAccount& LookUp(std::string_view name, bool overlay);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MemoryAccount>, std::less<>> accounts_;
  std::vector<std::pair<std::string, std::function<std::vector<CensusRow>()>>> census_;
  Gauge* total_ = nullptr;  // obs.mem.total_bytes
  Gauge* peak_ = nullptr;   // obs.mem.peak_bytes
  BudgetMonitor budget_;
};

// Human-readable rendering of a snapshot (the ATK_MEM_BUDGET exit dump).
std::string MemoryToText(const MemorySnapshot& snapshot);

// Parses "4096", "64k", "16m", "2g" (case-insensitive, 1024 multiples).
// Returns false on garbage.
bool ParseByteSize(std::string_view text, uint64_t* out);

// The §5 serializer lives one layer up (memsnapshot_component.cc, which
// links the datastream); it installs itself here so the ATK_MEM_SNAPSHOT
// exit hook can write a real memsnapshot document without this module
// depending upward.  The writer returns false when the file could not be
// written.
void SetMemSnapshotWriter(bool (*writer)(const std::string& path));

// Writes the current SnapshotMemory() to `path` through the installed
// writer; falls back to MemoryToText when none is installed.  Returns
// false on failure.
bool WriteMemSnapshotFile(const std::string& path);

// Reads the environment once and applies it (idempotent; called from
// observability::InitFromEnv):
//   ATK_MEM_BUDGET=N[k|m|g]   byte budget for the BudgetMonitor;
//   ATK_MEM_SNAPSHOT=path     write a memsnapshot document at process exit.
void MemoryInitFromEnv();

}  // namespace observability
}  // namespace atk

#endif  // ATK_SRC_OBSERVABILITY_MEMORY_H_
