#include "src/observability/memsnapshot_component.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <vector>

namespace atk {
namespace observability {
namespace {

// Splits directive args on commas: all fields before the last are numeric,
// the last is an account/class name (which never contains a comma).
std::vector<std::string_view> SplitArgs(std::string_view args) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    size_t comma = args.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(args.substr(start));
      return fields;
    }
    fields.push_back(args.substr(start, comma - start));
    start = comma + 1;
  }
}

bool ParseU64(std::string_view field, uint64_t* out) {
  if (field.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char ch : field) {
    if (!std::isdigit(static_cast<unsigned char>(ch))) {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(ch - '0');
  }
  *out = value;
  return true;
}

bool ParseI64(std::string_view field, int64_t* out) {
  bool negative = !field.empty() && field.front() == '-';
  uint64_t magnitude = 0;
  if (!ParseU64(negative ? field.substr(1) : field, &magnitude)) {
    return false;
  }
  *out = negative ? -static_cast<int64_t>(magnitude) : static_cast<int64_t>(magnitude);
  return true;
}

std::string Join(std::initializer_list<std::string> fields) {
  std::string out;
  for (const std::string& field : fields) {
    if (!out.empty()) {
      out += ',';
    }
    out += field;
  }
  return out;
}

bool AllWhitespace(std::string_view text) {
  return text.find_first_not_of(" \t\r\n") == std::string_view::npos;
}

bool WriteSnapshotDocument(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << MemSnapshotToDatastream(MemoryAccountant::Instance().SnapshotMemory());
  out.flush();
  return static_cast<bool>(out);
}

// Pulls the §5 writer behind the ATK_MEM_SNAPSHOT hook as soon as this
// translation unit is linked in (memory.cc itself cannot depend upward on
// the datastream).
const bool g_writer_installed = [] {
  InstallMemSnapshotWriter();
  return true;
}();

}  // namespace

void InstallMemSnapshotWriter() { SetMemSnapshotWriter(&WriteSnapshotDocument); }

int64_t WriteMemSnapshotComponent(DataStreamWriter& writer, const MemorySnapshot& snap) {
  int64_t id = writer.BeginData(kMemSnapshotComponentType);
  writer.WriteDirective(
      "memmeta", Join({"1", std::to_string(snap.budget_bytes),
                       std::to_string(snap.total_bytes), std::to_string(snap.peak_bytes)}));
  writer.WriteNewline();
  for (const MemoryAccountSample& account : snap.accounts) {
    writer.WriteDirective(
        "account", Join({account.overlay ? "1" : "0",
                         std::to_string(account.current_bytes),
                         std::to_string(account.peak_bytes),
                         std::to_string(account.charged_bytes), account.name}));
    writer.WriteNewline();
  }
  for (const CensusRow& row : snap.census) {
    writer.WriteDirective("census", Join({std::to_string(row.count),
                                          std::to_string(row.bytes), row.name}));
    writer.WriteNewline();
  }
  writer.EndData();
  return id;
}

Status ReadMemSnapshotComponent(DataStreamReader& reader, MemorySnapshot* out) {
  *out = MemorySnapshot{};
  while (true) {
    DataStreamReader::Token token = reader.Next();
    switch (token.kind) {
      case DataStreamReader::Token::Kind::kEndData:
        if (token.type != kMemSnapshotComponentType) {
          return Status::Corrupt("memsnapshot body closed by \\enddata{" +
                                 std::string(token.type) + ",...}");
        }
        return Status::Ok();
      case DataStreamReader::Token::Kind::kEof:
        return Status::Truncated("input ended inside a memsnapshot object");
      case DataStreamReader::Token::Kind::kDiagnostic:
        return Status::Corrupt("damaged directive inside a memsnapshot object at offset " +
                               std::to_string(token.offset));
      case DataStreamReader::Token::Kind::kText:
        if (!AllWhitespace(token.text)) {
          return Status::Corrupt("unexpected payload text inside a memsnapshot object");
        }
        break;
      case DataStreamReader::Token::Kind::kBeginData:
        // A nested object is not part of the memsnapshot schema; skip it.
        if (!reader.SkipObject(token.type, token.id)) {
          return Status::Truncated("input ended inside an object nested in a memsnapshot");
        }
        break;
      case DataStreamReader::Token::Kind::kViewRef:
        break;  // Placement references are irrelevant to the data.
      case DataStreamReader::Token::Kind::kDirective: {
        std::vector<std::string_view> fields = SplitArgs(token.text);
        if (token.type == "memmeta") {
          if (fields.size() < 4 || !ParseU64(fields[1], &out->budget_bytes) ||
              !ParseI64(fields[2], &out->total_bytes) ||
              !ParseI64(fields[3], &out->peak_bytes)) {
            return Status::Corrupt("malformed \\memmeta{" + std::string(token.text) + "}");
          }
        } else if (token.type == "account") {
          MemoryAccountSample account;
          uint64_t overlay = 0;
          if (fields.size() != 5 || !ParseU64(fields[0], &overlay) ||
              !ParseI64(fields[1], &account.current_bytes) ||
              !ParseI64(fields[2], &account.peak_bytes) ||
              !ParseU64(fields[3], &account.charged_bytes)) {
            return Status::Corrupt("malformed \\account{" + std::string(token.text) + "}");
          }
          account.overlay = overlay != 0;
          account.name = std::string(fields[4]);
          out->accounts.push_back(std::move(account));
        } else if (token.type == "census") {
          CensusRow row;
          if (fields.size() != 3 || !ParseU64(fields[0], &row.count) ||
              !ParseU64(fields[1], &row.bytes)) {
            return Status::Corrupt("malformed \\census{" + std::string(token.text) + "}");
          }
          row.name = std::string(fields[2]);
          out->census.push_back(std::move(row));
        }
        // Unknown directives are skipped: a newer writer may add fields.
        break;
      }
    }
  }
}

std::string MemSnapshotToDatastream(const MemorySnapshot& snapshot) {
  std::ostringstream out;
  DataStreamWriter writer(out);
  WriteMemSnapshotComponent(writer, snapshot);
  return out.str();
}

Status MemSnapshotFromDatastream(std::string_view data, MemorySnapshot* out) {
  // Borrow `data` directly (it outlives the reader) — no copy into the
  // reader's pinned buffer.
  DataStreamReader reader{data};
  while (true) {
    DataStreamReader::Token token = reader.Next();
    if (token.kind == DataStreamReader::Token::Kind::kEof) {
      return Status::NotFound("no \\begindata{memsnapshot,...} object in input");
    }
    if (token.kind == DataStreamReader::Token::Kind::kBeginData) {
      if (token.type == kMemSnapshotComponentType) {
        return ReadMemSnapshotComponent(reader, out);
      }
      if (!reader.SkipObject(token.type, token.id)) {
        return Status::Truncated("input ended while skipping a non-memsnapshot object");
      }
    }
  }
}

}  // namespace observability
}  // namespace atk
