#include "src/observability/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace atk {
namespace observability {
namespace {

// Span and metric names are `layer.noun.verb` identifiers (enforced by a
// test), but exported JSON must stay valid for any name a future caller
// sneaks in, so escape defensively.
void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    unsigned char byte = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (byte < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

// Microseconds with nanosecond precision kept as a decimal fraction.
std::string MicrosFromNanos(uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

std::string TraceExport::ToPerfettoJson(const TraceSnapshot& snap) {
  // Timestamps are exported relative to the earliest span start so the
  // viewer's timeline starts near zero instead of at hours of steady-clock
  // uptime.
  uint64_t base_ns = 0;
  bool first_span = true;
  for (const SpanRecord& span : snap.spans) {
    base_ns = first_span ? span.start_ns : std::min(base_ns, span.start_ns);
    first_span = false;
  }
  uint64_t end_ns = base_ns;
  for (const SpanRecord& span : snap.spans) {
    end_ns = std::max(end_ns, span.start_ns + span.duration_ns);
  }

  std::string out;
  out.reserve(128 + snap.spans.size() * 96 + snap.counters.size() * 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&out, &first] {
    if (!first) {
      out += ',';
    }
    first = false;
  };

  // Process / thread metadata, so Perfetto shows names instead of bare ids.
  comma();
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"atk\"}}";
  std::set<uint32_t> threads;
  for (const SpanRecord& span : snap.spans) {
    threads.insert(span.thread);
  }
  for (uint32_t thread : threads) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(thread) + ",\"args\":{\"name\":\"atk-thread-" +
           std::to_string(thread) + "\"}}";
  }

  for (const SpanRecord& span : snap.spans) {
    comma();
    out += "{\"name\":";
    AppendJsonString(out, span.name_view());
    out += ",\"cat\":\"atk\",\"ph\":\"X\",\"ts\":" + MicrosFromNanos(span.start_ns - base_ns) +
           ",\"dur\":" + MicrosFromNanos(span.duration_ns) +
           ",\"pid\":1,\"tid\":" + std::to_string(span.thread) +
           ",\"args\":{\"seq\":" + std::to_string(span.seq) +
           ",\"depth\":" + std::to_string(span.depth) + "}}";
  }

  // Counters sample once, at the end of the captured window (the snapshot
  // holds totals, not a time series).
  std::string final_ts = MicrosFromNanos(end_ns - base_ns);
  for (const CounterSample& counter : snap.counters) {
    comma();
    out += "{\"name\":";
    AppendJsonString(out, counter.name);
    out += ",\"ph\":\"C\",\"ts\":" + final_ts + ",\"pid\":1,\"args\":{\"value\":" +
           std::to_string(counter.value) + "}}";
  }
  for (const HistogramSample& histo : snap.histograms) {
    comma();
    out += "{\"name\":";
    AppendJsonString(out, histo.name);
    out += ",\"ph\":\"C\",\"ts\":" + final_ts + ",\"pid\":1,\"args\":{\"p50\":" +
           std::to_string(histo.p50) + ",\"p95\":" + std::to_string(histo.p95) +
           ",\"p99\":" + std::to_string(histo.p99) + "}}";
  }

  out += "],\"otherData\":{\"spansRecorded\":" + std::to_string(snap.spans_recorded) +
         ",\"spansDropped\":" + std::to_string(snap.spans_dropped) + "}}";
  return out;
}

}  // namespace observability
}  // namespace atk
