#include "src/observability/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

namespace atk {
namespace observability {
namespace {

// Span and metric names are `layer.noun.verb` identifiers (enforced by a
// test), but exported JSON must stay valid for any name a future caller
// sneaks in, so escape defensively.
void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    unsigned char byte = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (byte < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", byte);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

// Microseconds with nanosecond precision kept as a decimal fraction.
std::string MicrosFromNanos(uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

// Perfetto "process" id for a logical track: track 0 ("atk") is pid 1, the
// server and each session track get their own pid, so one edit's flow draws
// across visually separate process groups.
int Pid(uint32_t track) { return static_cast<int>(track) + 1; }

std::string TrackName(const TraceSnapshot& snap, uint32_t track) {
  if (track < snap.tracks.size()) {
    return snap.tracks[track];
  }
  return track == 0 ? "atk" : "track-" + std::to_string(track);
}

}  // namespace

std::string TraceExport::ToPerfettoJson(const TraceSnapshot& snap) {
  // Timestamps are exported relative to the earliest span start so the
  // viewer's timeline starts near zero instead of at hours of steady-clock
  // uptime.
  uint64_t base_ns = 0;
  bool first_span = true;
  for (const SpanRecord& span : snap.spans) {
    base_ns = first_span ? span.start_ns : std::min(base_ns, span.start_ns);
    first_span = false;
  }
  uint64_t end_ns = base_ns;
  for (const SpanRecord& span : snap.spans) {
    end_ns = std::max(end_ns, span.start_ns + span.duration_ns);
  }

  std::string out;
  out.reserve(128 + snap.spans.size() * 112 + snap.counters.size() * 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&out, &first] {
    if (!first) {
      out += ',';
    }
    first = false;
  };

  // Process / thread metadata: one "process" per logical track (the default
  // "atk" track, the server, each client session), one named thread per
  // (track, thread) pair that recorded spans.
  std::set<uint32_t> used_tracks;
  used_tracks.insert(0);
  std::set<std::pair<uint32_t, uint32_t>> track_threads;
  for (const SpanRecord& span : snap.spans) {
    used_tracks.insert(span.track);
    track_threads.insert({span.track, span.thread});
  }
  for (uint32_t track : used_tracks) {
    comma();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(Pid(track)) +
           ",\"args\":{\"name\":";
    AppendJsonString(out, TrackName(snap, track));
    out += "}}";
  }
  for (const auto& [track, thread] : track_threads) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + std::to_string(Pid(track)) +
           ",\"tid\":" + std::to_string(thread) + ",\"args\":{\"name\":\"atk-thread-" +
           std::to_string(thread) + "\"}}";
  }

  for (const SpanRecord& span : snap.spans) {
    comma();
    out += "{\"name\":";
    AppendJsonString(out, span.name_view());
    out += ",\"cat\":\"atk\",\"ph\":\"X\",\"ts\":" + MicrosFromNanos(span.start_ns - base_ns) +
           ",\"dur\":" + MicrosFromNanos(span.duration_ns) +
           ",\"pid\":" + std::to_string(Pid(span.track)) +
           ",\"tid\":" + std::to_string(span.thread) +
           ",\"args\":{\"seq\":" + std::to_string(span.seq) +
           ",\"depth\":" + std::to_string(span.depth);
    if (span.flow != 0) {
      out += ",\"flow\":" + std::to_string(span.flow);
    }
    if (span.arg != 0) {
      out += ",\"arg\":" + std::to_string(span.arg);
    }
    out += "}}";
  }

  // Flow events stitch one edit's spans across tracks: "s" at the first
  // span of the flow, "t" through the middles, "f" (bp:"e") at the last.
  // Each point's ts/pid/tid coincide with its span's start so the viewer
  // binds the arrow to that slice.  Single-span flows draw nothing useful
  // and are skipped.
  std::map<uint64_t, std::vector<const SpanRecord*>> flows;
  for (const SpanRecord& span : snap.spans) {
    if (span.flow != 0) {
      flows[span.flow].push_back(&span);
    }
  }
  for (auto& [flow_id, spans] : flows) {
    if (spans.size() < 2) {
      continue;
    }
    std::sort(spans.begin(), spans.end(), [](const SpanRecord* a, const SpanRecord* b) {
      return a->start_ns != b->start_ns ? a->start_ns < b->start_ns : a->seq < b->seq;
    });
    for (size_t i = 0; i < spans.size(); ++i) {
      const SpanRecord& span = *spans[i];
      const char* phase = i == 0 ? "s" : (i + 1 == spans.size() ? "f" : "t");
      comma();
      out += "{\"name\":\"atk.flow.edit\",\"cat\":\"atk.flow\",\"ph\":\"";
      out += phase;
      out += "\",\"id\":" + std::to_string(flow_id) +
             ",\"ts\":" + MicrosFromNanos(span.start_ns - base_ns) +
             ",\"pid\":" + std::to_string(Pid(span.track)) +
             ",\"tid\":" + std::to_string(span.thread);
      if (phase[0] == 'f') {
        out += ",\"bp\":\"e\"";
      }
      out += "}";
    }
  }

  // Counters sample once, at the end of the captured window (the snapshot
  // holds totals, not a time series).
  std::string final_ts = MicrosFromNanos(end_ns - base_ns);
  for (const CounterSample& counter : snap.counters) {
    comma();
    out += "{\"name\":";
    AppendJsonString(out, counter.name);
    out += ",\"ph\":\"C\",\"ts\":" + final_ts + ",\"pid\":1,\"args\":{\"value\":" +
           std::to_string(counter.value) + "}}";
  }
  // Byte gauges (the memory-accounting spine's `*_bytes` family) become
  // counter tracks, so a trace shows pool sizes alongside the spans that
  // grew them.  Non-byte gauges stay out: point-in-time booleans and ids
  // draw as meaningless sawtooths.
  for (const GaugeSample& gauge : snap.gauges) {
    if (!gauge.name.ends_with("_bytes")) {
      continue;
    }
    comma();
    out += "{\"name\":";
    AppendJsonString(out, gauge.name);
    out += ",\"ph\":\"C\",\"ts\":" + final_ts + ",\"pid\":1,\"args\":{\"bytes\":" +
           std::to_string(gauge.value) + "}}";
  }
  for (const HistogramSample& histo : snap.histograms) {
    comma();
    out += "{\"name\":";
    AppendJsonString(out, histo.name);
    out += ",\"ph\":\"C\",\"ts\":" + final_ts + ",\"pid\":1,\"args\":{\"p50\":" +
           std::to_string(histo.p50) + ",\"p95\":" + std::to_string(histo.p95) +
           ",\"p99\":" + std::to_string(histo.p99) + "}}";
  }

  out += "],\"otherData\":{\"spansRecorded\":" + std::to_string(snap.spans_recorded) +
         ",\"spansDropped\":" + std::to_string(snap.spans_dropped) + "}}";
  return out;
}

}  // namespace observability
}  // namespace atk
