#include "src/observability/trace_component.h"

#include <cctype>
#include <sstream>
#include <vector>

namespace atk {
namespace observability {
namespace {

// Splits directive args on commas: all fields before the last are numeric,
// the last is a metric/span name (which never contains a comma).
std::vector<std::string_view> SplitArgs(std::string_view args) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    size_t comma = args.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(args.substr(start));
      return fields;
    }
    fields.push_back(args.substr(start, comma - start));
    start = comma + 1;
  }
}

bool ParseU64(std::string_view field, uint64_t* out) {
  if (field.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char ch : field) {
    if (!std::isdigit(static_cast<unsigned char>(ch))) {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(ch - '0');
  }
  *out = value;
  return true;
}

bool ParseI64(std::string_view field, int64_t* out) {
  bool negative = !field.empty() && field.front() == '-';
  uint64_t magnitude = 0;
  if (!ParseU64(negative ? field.substr(1) : field, &magnitude)) {
    return false;
  }
  *out = negative ? -static_cast<int64_t>(magnitude) : static_cast<int64_t>(magnitude);
  return true;
}

std::string Join(std::initializer_list<std::string> fields) {
  std::string out;
  for (const std::string& field : fields) {
    if (!out.empty()) {
      out += ',';
    }
    out += field;
  }
  return out;
}

bool AllWhitespace(std::string_view text) {
  return text.find_first_not_of(" \t\r\n") == std::string_view::npos;
}

}  // namespace

int64_t WriteTraceComponent(DataStreamWriter& writer, const TraceSnapshot& snap) {
  int64_t id = writer.BeginData(kTraceComponentType);
  // Span timestamps are written relative to the earliest span so the lines
  // stay well under the §5 80-column guideline.
  uint64_t base_ns = snap.spans.empty() ? 0 : snap.spans.front().start_ns;
  writer.WriteDirective(
      "tracemeta", Join({"2", snap.trace_enabled ? "1" : "0",
                         std::to_string(snap.spans_recorded),
                         std::to_string(snap.spans_dropped), std::to_string(base_ns)}));
  writer.WriteNewline();
  for (size_t i = 0; i < snap.tracks.size(); ++i) {
    writer.WriteDirective("track", Join({std::to_string(i), snap.tracks[i]}));
    writer.WriteNewline();
  }
  for (const SpanRecord& span : snap.spans) {
    writer.WriteDirective(
        "span", Join({std::to_string(span.seq), std::to_string(span.start_ns - base_ns),
                      std::to_string(span.duration_ns), std::to_string(span.depth),
                      std::to_string(span.thread), std::to_string(span.flow),
                      std::to_string(span.track), std::to_string(span.arg),
                      std::string(span.name_view())}));
    writer.WriteNewline();
  }
  for (const CounterSample& counter : snap.counters) {
    writer.WriteDirective("counter", Join({std::to_string(counter.value), counter.name}));
    writer.WriteNewline();
  }
  for (const GaugeSample& gauge : snap.gauges) {
    writer.WriteDirective("gauge", Join({std::to_string(gauge.value), gauge.name}));
    writer.WriteNewline();
  }
  for (const HistogramSample& histo : snap.histograms) {
    writer.WriteDirective(
        "histo", Join({std::to_string(histo.count), std::to_string(histo.sum),
                       std::to_string(histo.max), std::to_string(histo.p50),
                       std::to_string(histo.p95), std::to_string(histo.p99), histo.name}));
    writer.WriteNewline();
  }
  writer.EndData();
  return id;
}

Status ReadTraceComponent(DataStreamReader& reader, TraceSnapshot* out) {
  *out = TraceSnapshot{};
  uint64_t base_ns = 0;
  while (true) {
    DataStreamReader::Token token = reader.Next();
    switch (token.kind) {
      case DataStreamReader::Token::Kind::kEndData:
        if (token.type != kTraceComponentType) {
          return Status::Corrupt("trace body closed by \\enddata{" + std::string(token.type) +
                                 ",...}");
        }
        return Status::Ok();
      case DataStreamReader::Token::Kind::kEof:
        return Status::Truncated("input ended inside a trace object");
      case DataStreamReader::Token::Kind::kDiagnostic:
        return Status::Corrupt("damaged directive inside a trace object at offset " +
                               std::to_string(token.offset));
      case DataStreamReader::Token::Kind::kText:
        if (!AllWhitespace(token.text)) {
          return Status::Corrupt("unexpected payload text inside a trace object");
        }
        break;
      case DataStreamReader::Token::Kind::kBeginData:
        // A nested object is not part of the trace schema; skip it whole.
        if (!reader.SkipObject(token.type, token.id)) {
          return Status::Truncated("input ended inside an object nested in a trace");
        }
        break;
      case DataStreamReader::Token::Kind::kViewRef:
        break;  // Placement references are irrelevant to the data.
      case DataStreamReader::Token::Kind::kDirective: {
        std::vector<std::string_view> fields = SplitArgs(token.text);
        if (token.type == "tracemeta") {
          uint64_t enabled = 0;
          if (fields.size() < 5 || !ParseU64(fields[1], &enabled) ||
              !ParseU64(fields[2], &out->spans_recorded) ||
              !ParseU64(fields[3], &out->spans_dropped) || !ParseU64(fields[4], &base_ns)) {
            return Status::Corrupt("malformed \\tracemeta{" + std::string(token.text) + "}");
          }
          out->trace_enabled = enabled != 0;
        } else if (token.type == "span") {
          // 6 fields is the version-1 form (no flow/track/arg); 9 is the
          // current one.  The name is always the last field.
          SpanRecord span{};
          uint64_t start_rel = 0;
          uint64_t depth = 0;
          uint64_t thread = 0;
          uint64_t track = 0;
          if ((fields.size() != 6 && fields.size() != 9) ||
              !ParseU64(fields[0], &span.seq) || !ParseU64(fields[1], &start_rel) ||
              !ParseU64(fields[2], &span.duration_ns) || !ParseU64(fields[3], &depth) ||
              !ParseU64(fields[4], &thread)) {
            return Status::Corrupt("malformed \\span{" + std::string(token.text) + "}");
          }
          if (fields.size() == 9 &&
              (!ParseU64(fields[5], &span.flow) || !ParseU64(fields[6], &track) ||
               !ParseU64(fields[7], &span.arg))) {
            return Status::Corrupt("malformed \\span{" + std::string(token.text) + "}");
          }
          span.start_ns = base_ns + start_rel;
          span.depth = static_cast<uint16_t>(depth);
          span.thread = static_cast<uint32_t>(thread);
          span.track = static_cast<uint32_t>(track);
          std::string_view name = fields.back();
          size_t n = std::min(name.size(), SpanRecord::kNameCapacity - 1);
          std::memcpy(span.name, name.data(), n);
          span.name[n] = '\0';
          out->spans.push_back(span);
        } else if (token.type == "track") {
          uint64_t track_id = 0;
          if (fields.size() != 2 || !ParseU64(fields[0], &track_id) || track_id > 0xFFFF) {
            return Status::Corrupt("malformed \\track{" + std::string(token.text) + "}");
          }
          if (out->tracks.size() <= track_id) {
            out->tracks.resize(track_id + 1);
          }
          out->tracks[track_id] = std::string(fields[1]);
        } else if (token.type == "counter") {
          CounterSample counter;
          if (fields.size() != 2 || !ParseU64(fields[0], &counter.value)) {
            return Status::Corrupt("malformed \\counter{" + std::string(token.text) + "}");
          }
          counter.name = std::string(fields[1]);
          out->counters.push_back(std::move(counter));
        } else if (token.type == "gauge") {
          GaugeSample gauge;
          if (fields.size() != 2 || !ParseI64(fields[0], &gauge.value)) {
            return Status::Corrupt("malformed \\gauge{" + std::string(token.text) + "}");
          }
          gauge.name = std::string(fields[1]);
          out->gauges.push_back(std::move(gauge));
        } else if (token.type == "histo") {
          HistogramSample histo;
          if (fields.size() != 7 || !ParseU64(fields[0], &histo.count) ||
              !ParseU64(fields[1], &histo.sum) || !ParseU64(fields[2], &histo.max) ||
              !ParseU64(fields[3], &histo.p50) || !ParseU64(fields[4], &histo.p95) ||
              !ParseU64(fields[5], &histo.p99)) {
            return Status::Corrupt("malformed \\histo{" + std::string(token.text) + "}");
          }
          histo.name = std::string(fields[6]);
          out->histograms.push_back(std::move(histo));
        }
        // Unknown directives are skipped: a newer writer may add fields.
        break;
      }
    }
  }
}

std::string SnapshotToDatastream(const TraceSnapshot& snapshot) {
  std::ostringstream out;
  DataStreamWriter writer(out);
  WriteTraceComponent(writer, snapshot);
  return out.str();
}

Status SnapshotFromDatastream(std::string_view data, TraceSnapshot* out) {
  // Borrow `data` directly (it outlives the reader) — no copy into the
  // reader's pinned buffer.
  DataStreamReader reader{data};
  while (true) {
    DataStreamReader::Token token = reader.Next();
    if (token.kind == DataStreamReader::Token::Kind::kEof) {
      return Status::NotFound("no \\begindata{trace,...} object in input");
    }
    if (token.kind == DataStreamReader::Token::Kind::kBeginData) {
      if (token.type == kTraceComponentType) {
        return ReadTraceComponent(reader, out);
      }
      if (!reader.SkipObject(token.type, token.id)) {
        return Status::Truncated("input ended while skipping a non-trace object");
      }
    }
  }
}

}  // namespace observability
}  // namespace atk
