#include "src/observability/memory.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace atk {
namespace observability {

std::atomic<bool> g_mem_accounting{true};

void SetMemoryAccountingEnabled(bool enabled) {
  g_mem_accounting.store(enabled, std::memory_order_relaxed);
}

// ---- MemoryAccount ---------------------------------------------------------

MemoryAccount::MemoryAccount(std::string name, bool overlay)
    : name_(std::move(name)), overlay_(overlay) {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  current_ = &reg.gauge(name_ + "_bytes");
  peak_ = &reg.gauge(name_ + "_peak_bytes");
  charged_ = &reg.counter(name_ + "_charged_bytes");
}

void MemoryAccount::Charge(int64_t bytes) {
  if (bytes == 0 || !MemoryAccountingEnabled()) {
    return;
  }
  current_->Add(bytes);
  if (bytes > 0) {
    peak_->SetMax(current_->value());
    charged_->Add(static_cast<uint64_t>(bytes));
  }
  if (!overlay_) {
    MemoryAccountant& accountant = MemoryAccountant::Instance();
    Gauge& total = accountant.total_gauge();
    total.Add(bytes);
    int64_t now = total.value();
    if (bytes > 0) {
      accountant.peak_gauge().SetMax(now);
    }
    accountant.budget_monitor().Observe(now);
  }
}

// ---- BudgetMonitor ---------------------------------------------------------

namespace {
// Suppresses nested Observe() while a pressure callback runs on this thread
// (an evictor releasing bytes would otherwise deadlock on mu_).
thread_local bool tls_in_pressure_callback = false;
}  // namespace

void BudgetMonitor::SetBudget(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = bytes;
  Rebuild();
}

uint64_t BudgetMonitor::budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

int BudgetMonitor::AddCallback(double fraction, PressureCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  Threshold threshold;
  threshold.id = next_id_++;
  threshold.fraction = std::clamp(fraction, 1e-9, 8.0);
  threshold.callback = std::move(callback);
  thresholds_.push_back(std::move(threshold));
  std::stable_sort(thresholds_.begin(), thresholds_.end(),
                   [](const Threshold& a, const Threshold& b) {
                     return a.fraction < b.fraction;
                   });
  int id = next_id_ - 1;
  Rebuild();
  return id;
}

void BudgetMonitor::RemoveCallback(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  thresholds_.erase(std::remove_if(thresholds_.begin(), thresholds_.end(),
                                   [id](const Threshold& t) { return t.id == id; }),
                    thresholds_.end());
  Rebuild();
}

void BudgetMonitor::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  thresholds_.clear();
  budget_ = 0;
  Rebuild();
}

void BudgetMonitor::Rebuild() {
  int64_t fire = INT64_MAX;
  int64_t rearm = INT64_MIN;
  for (Threshold& threshold : thresholds_) {
    threshold.bytes =
        budget_ == 0 ? INT64_MAX
                     : static_cast<int64_t>(threshold.fraction *
                                            static_cast<double>(budget_));
    if (budget_ == 0) {
      threshold.fired = false;
      continue;
    }
    if (!threshold.fired) {
      fire = std::min(fire, threshold.bytes);
    } else {
      rearm = std::max(rearm, threshold.bytes);
    }
  }
  next_fire_.store(fire, std::memory_order_relaxed);
  next_rearm_.store(rearm, std::memory_order_relaxed);
}

void BudgetMonitor::Observe(int64_t total) {
  if (total < next_fire_.load(std::memory_order_relaxed) &&
      total >= next_rearm_.load(std::memory_order_relaxed)) {
    return;
  }
  if (tls_in_pressure_callback) {
    return;  // An evictor's own charges settle on its next outer charge.
  }
  std::vector<std::pair<PressureCallback, PressureEvent>> to_fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (budget_ == 0) {
      return;
    }
    for (Threshold& threshold : thresholds_) {  // Ascending by fraction.
      if (!threshold.fired && total >= threshold.bytes) {
        threshold.fired = true;
        PressureEvent event;
        event.fraction = threshold.fraction;
        event.budget = budget_;
        event.total = total;
        to_fire.emplace_back(threshold.callback, event);
      } else if (threshold.fired && total < threshold.bytes) {
        threshold.fired = false;
      }
    }
    Rebuild();
  }
  if (!to_fire.empty()) {
    tls_in_pressure_callback = true;
    for (auto& [callback, event] : to_fire) {
      if (callback) {
        callback(event);
      }
    }
    tls_in_pressure_callback = false;
  }
}

// ---- MemoryAccountant ------------------------------------------------------

MemoryAccountant::MemoryAccountant() {
  MetricsRegistry& reg = MetricsRegistry::Instance();
  total_ = &reg.gauge("obs.mem.total_bytes");
  peak_ = &reg.gauge("obs.mem.peak_bytes");
}

MemoryAccountant& MemoryAccountant::Instance() {
  static MemoryAccountant* accountant = new MemoryAccountant();
  return *accountant;
}

MemoryAccount& MemoryAccountant::LookUp(std::string_view name, bool overlay) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accounts_.find(name);
  if (it == accounts_.end()) {
    it = accounts_
             .emplace(std::string(name), std::unique_ptr<MemoryAccount>(
                                             new MemoryAccount(std::string(name), overlay)))
             .first;
  }
  return *it->second;
}

MemoryAccount& MemoryAccountant::account(std::string_view name) {
  return LookUp(name, /*overlay=*/false);
}

MemoryAccount& MemoryAccountant::overlay(std::string_view name) {
  return LookUp(name, /*overlay=*/true);
}

void MemoryAccountant::ResetPeaks() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, account] : accounts_) {
    account->peak_->Set(account->current_->value());
  }
  peak_->Set(total_->value());
}

void MemoryAccountant::RegisterCensusSource(std::string name,
                                            std::function<std::vector<CensusRow>()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [existing, unused] : census_) {
    if (existing == name) {
      return;
    }
  }
  census_.emplace_back(std::move(name), std::move(fn));
}

std::vector<CensusRow> MemoryAccountant::RunCensus(size_t top_n) const {
  std::vector<std::function<std::vector<CensusRow>()>> sources;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sources.reserve(census_.size());
    for (const auto& [name, fn] : census_) {
      sources.push_back(fn);
    }
  }
  std::vector<CensusRow> rows;
  for (const auto& fn : sources) {
    std::vector<CensusRow> part = fn();
    rows.insert(rows.end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  std::stable_sort(rows.begin(), rows.end(), [](const CensusRow& a, const CensusRow& b) {
    if (a.bytes != b.bytes) {
      return a.bytes > b.bytes;
    }
    return a.count > b.count;
  });
  if (rows.size() > top_n) {
    rows.resize(top_n);
  }
  return rows;
}

MemorySnapshot MemoryAccountant::SnapshotMemory(size_t census_top_n) const {
  MemorySnapshot snap;
  snap.budget_bytes = budget_.budget();
  snap.total_bytes = total();
  snap.peak_bytes = peak();
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.accounts.reserve(accounts_.size());
    for (const auto& [name, account] : accounts_) {  // Map order == sorted.
      MemoryAccountSample sample;
      sample.name = name;
      sample.overlay = account->overlay();
      sample.current_bytes = account->current();
      sample.peak_bytes = account->peak();
      sample.charged_bytes = account->charged();
      snap.accounts.push_back(std::move(sample));
    }
  }
  snap.census = RunCensus(census_top_n);
  return snap;
}

// ---- Rendering -------------------------------------------------------------

std::string MemoryToText(const MemorySnapshot& snap) {
  std::string out;
  out += "== atk memory snapshot ==\n";
  out += "total " + std::to_string(snap.total_bytes) + " bytes, peak " +
         std::to_string(snap.peak_bytes) + " bytes";
  if (snap.budget_bytes > 0) {
    out += ", budget " + std::to_string(snap.budget_bytes) + " bytes";
  }
  out += "\n";
  if (!snap.accounts.empty()) {
    out += "-- accounts (current/peak/charged bytes) --\n";
    for (const MemoryAccountSample& account : snap.accounts) {
      out += account.name + (account.overlay ? " (overlay) " : " ") +
             std::to_string(account.current_bytes) + "/" +
             std::to_string(account.peak_bytes) + "/" +
             std::to_string(account.charged_bytes) + "\n";
    }
  }
  if (!snap.census.empty()) {
    out += "-- live objects by class --\n";
    for (const CensusRow& row : snap.census) {
      out += row.name + " x" + std::to_string(row.count) + " ~" +
             std::to_string(row.bytes) + " bytes\n";
    }
  }
  return out;
}

// ---- Env wiring ------------------------------------------------------------

bool ParseByteSize(std::string_view text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  uint64_t multiplier = 1;
  char last = text.back();
  switch (std::tolower(static_cast<unsigned char>(last))) {
    case 'k':
      multiplier = uint64_t{1} << 10;
      text.remove_suffix(1);
      break;
    case 'm':
      multiplier = uint64_t{1} << 20;
      text.remove_suffix(1);
      break;
    case 'g':
      multiplier = uint64_t{1} << 30;
      text.remove_suffix(1);
      break;
    default:
      break;
  }
  if (text.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char ch : text) {
    if (!std::isdigit(static_cast<unsigned char>(ch))) {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(ch - '0');
  }
  *out = value * multiplier;
  return true;
}

namespace {

std::atomic<bool (*)(const std::string&)> g_memsnapshot_writer{nullptr};

// The ATK_MEM_SNAPSHOT destination, latched by MemoryInitFromEnv for the
// atexit hook (getenv at exit is legal but the latch keeps behavior
// identical if the environment mutates mid-run).
std::string& SnapshotPath() {
  static std::string* path = new std::string();
  return *path;
}

void ExitMemSnapshot() {
  const std::string& path = SnapshotPath();
  if (path.empty()) {
    return;
  }
  if (!WriteMemSnapshotFile(path)) {
    std::fprintf(stderr, "atk: failed to write ATK_MEM_SNAPSHOT to %s\n", path.c_str());
  }
}

}  // namespace

void SetMemSnapshotWriter(bool (*writer)(const std::string& path)) {
  g_memsnapshot_writer.store(writer, std::memory_order_release);
}

bool WriteMemSnapshotFile(const std::string& path) {
  if (auto* writer = g_memsnapshot_writer.load(std::memory_order_acquire)) {
    return writer(path);
  }
  // No §5 serializer linked in: fall back to the text rendering so the
  // knob still produces something inspectable.
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::string text = MemoryToText(MemoryAccountant::Instance().SnapshotMemory());
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

void MemoryInitFromEnv() {
  static bool applied = [] {
    if (const char* budget = std::getenv("ATK_MEM_BUDGET")) {
      uint64_t bytes = 0;
      if (ParseByteSize(budget, &bytes)) {
        MemoryAccountant::Instance().budget_monitor().SetBudget(bytes);
      }
    }
    if (const char* path = std::getenv("ATK_MEM_SNAPSHOT")) {
      if (path[0] != '\0') {
        SnapshotPath() = path;
        std::atexit(ExitMemSnapshot);
      }
    }
    return true;
  }();
  (void)applied;
}

}  // namespace observability
}  // namespace atk
