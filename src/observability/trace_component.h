// The `trace` datastream component (§5 meets observability).
//
// A TraceSnapshot serializes as an ordinary ATK data object:
//
//   \begindata{trace,id}
//   \tracemeta{version,enabled,recorded,dropped,base_ns}
//   \track{id,name}
//   \span{seq,start_ns,duration_ns,depth,thread,flow,track,arg,name}
//   \counter{value,name}
//   \gauge{value,name}
//   \histo{count,sum,max,p50,p95,p99,name}
//   \enddata{trace,id}
//
// (Version-1 writers emitted 6-field \span directives without flow/track/
// arg and no \track lines; the reader accepts both forms.)
//
// so a captured trace survives a write -> read round trip, can be embedded
// in a document, mailed (7-bit printable), skipped by readers that do not
// know the type (SkipObject needs only the markers), and salvaged like any
// other component.  Names are `layer.noun.verb` identifiers and therefore
// never contain '}', ',' or newlines; they sit last in each directive so
// numeric fields parse positionally.

#ifndef ATK_SRC_OBSERVABILITY_TRACE_COMPONENT_H_
#define ATK_SRC_OBSERVABILITY_TRACE_COMPONENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/class_system/status.h"
#include "src/datastream/reader.h"
#include "src/datastream/writer.h"
#include "src/observability/observability.h"

namespace atk {
namespace observability {

// The datastream type name of the trace component.
inline constexpr std::string_view kTraceComponentType = "trace";

// Writes `snapshot` as a trace object on `writer` (BeginData .. EndData).
// Returns the stream id the object was written under.
int64_t WriteTraceComponent(DataStreamWriter& writer, const TraceSnapshot& snapshot);

// Parses a trace object's body.  Call with the reader positioned just after
// the consumed \begindata{trace,...} token; consumes through the matching
// \enddata.  Unknown directives inside the body are skipped (forward
// compatibility).  Returns Corrupt on a malformed body, Truncated when the
// stream ends before \enddata.
Status ReadTraceComponent(DataStreamReader& reader, TraceSnapshot* out);

// Convenience round-trip helpers: a whole snapshot to/from a standalone
// datastream document.
std::string SnapshotToDatastream(const TraceSnapshot& snapshot);
Status SnapshotFromDatastream(std::string_view data, TraceSnapshot* out);

}  // namespace observability
}  // namespace atk

#endif  // ATK_SRC_OBSERVABILITY_TRACE_COMPONENT_H_
