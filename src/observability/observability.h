// Toolkit-wide tracing and metrics — the instrumentation spine.
//
// The paper's runtime claims (delayed updates coalesce into one pass down
// the view tree §3, input is dispatched by parental authority §3, dynamic
// loading dominates startup §6) are performance claims, and performance
// claims need measurement before optimization.  This module provides the
// two primitives every layer above shares:
//
//   * Tracer — RAII scoped spans (ScopedSpan / ATK_TRACE_SPAN) recorded
//     into a thread-safe ring buffer with monotonic timestamps, per-thread
//     nesting depth, and a global completion sequence.  When tracing is
//     disabled the span fast path is a single relaxed atomic load and a
//     branch; nothing is timed, copied, or locked.
//   * MetricsRegistry — named counters, gauges and fixed-bucket (power of
//     two) latency histograms with p50/p95/p99/max accessors.  Metric
//     objects are created once and never move, so call sites cache a
//     reference in a function-local static and pay one relaxed atomic add
//     per event.  Metric names follow the `layer.noun.verb` convention
//     (see DESIGN.md §8).
//
// Snapshot() freezes both into a TraceSnapshot; ToText() renders it for
// humans and src/observability/trace_component.h serializes it as a §5
// datastream component so a trace is itself an ATK data object.
//
// This header depends on nothing but the standard library: it sits below
// class_system so the loader, the datastream, and the view tree can all be
// instrumented without a dependency cycle.

#ifndef ATK_SRC_OBSERVABILITY_OBSERVABILITY_H_
#define ATK_SRC_OBSERVABILITY_OBSERVABILITY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace atk {
namespace observability {

// Nanoseconds from a monotonic (steady) clock; never goes backwards.
uint64_t MonotonicNanos();

// ---- Spans -----------------------------------------------------------------

// One completed span.  `name` is an inline NUL-terminated copy (truncated if
// longer), so records never dangle whatever produced the name.
struct SpanRecord {
  static constexpr size_t kNameCapacity = 48;

  char name[kNameCapacity];
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint64_t seq = 0;    // Global completion order (1-based).
  uint64_t flow = 0;   // Causal flow id (0 = not part of a flow).
  uint64_t arg = 0;    // One small span-defined argument (attempt, session…).
  uint32_t thread = 0; // Small dense id; first thread to record is 0.
  uint32_t track = 0;  // Logical timeline (0 = the default "atk" track).
  uint16_t depth = 0;  // Nesting depth within the thread at open (0-based).

  std::string_view name_view() const { return std::string_view(name); }
};

// The process-wide enabled flag, exposed directly so the ScopedSpan fast
// path inlines to a relaxed load plus a branch (no function call into the
// tracer, no lock).  Written only through Tracer::SetEnabled.
extern std::atomic<bool> g_trace_enabled;

// True when spans are being recorded.
inline bool Enabled() { return g_trace_enabled.load(std::memory_order_relaxed); }

// Whether causal flow ids are allocated and propagated (ATK_TRACE_FLOWS;
// defaults on, only consulted when tracing itself is enabled).  Written
// only through Tracer::SetFlowsEnabled.
extern std::atomic<bool> g_trace_flows;

inline bool FlowsEnabled() { return g_trace_flows.load(std::memory_order_relaxed); }

namespace internal {
// The ambient flow id / track of the calling thread.  Set via FlowScope /
// TrackScope; captured by ScopedSpan when the record is written.
extern thread_local uint64_t tls_flow;
extern thread_local uint32_t tls_track;
}  // namespace internal

// The flow id currently in scope on this thread (0 when none).
inline uint64_t CurrentFlow() { return internal::tls_flow; }
inline uint32_t CurrentTrack() { return internal::tls_track; }

// Allocates a fresh nonzero flow id (process-wide monotonic).
uint64_t NextFlowId();

// RAII: spans recorded inside the scope carry `flow`.  Scopes nest; a zero
// flow (or tracing disabled) makes the scope a no-op, so call sites can
// pass whatever id a payload carried without checking it first.
class FlowScope {
 public:
  explicit FlowScope(uint64_t flow) noexcept {
    if (flow != 0 && Enabled()) {
      prev_ = internal::tls_flow;
      internal::tls_flow = flow;
      active_ = true;
    }
  }
  ~FlowScope() {
    if (active_) {
      internal::tls_flow = prev_;
    }
  }
  FlowScope(const FlowScope&) = delete;
  FlowScope& operator=(const FlowScope&) = delete;

 private:
  uint64_t prev_ = 0;
  bool active_ = false;
};

// RAII: spans recorded inside the scope land on `track` (an id from
// Tracer::RegisterTrack).  Track 0 is the default "atk" timeline.
class TrackScope {
 public:
  explicit TrackScope(uint32_t track) noexcept {
    if (track != 0 && Enabled()) {
      prev_ = internal::tls_track;
      internal::tls_track = track;
      active_ = true;
    }
  }
  ~TrackScope() {
    if (active_) {
      internal::tls_track = prev_;
    }
  }
  TrackScope(const TrackScope&) = delete;
  TrackScope& operator=(const TrackScope&) = delete;

 private:
  uint32_t prev_ = 0;
  bool active_ = false;
};

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  static Tracer& Instance();

  void SetEnabled(bool enabled);
  bool enabled() const { return Enabled(); }

  // Toggles causal-flow allocation (see FlowsEnabled / ATK_TRACE_FLOWS).
  void SetFlowsEnabled(bool enabled);

  // Resizes the ring buffer (existing records are dropped).  Capacity is
  // clamped to at least 1.
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  // Drops all recorded spans (capacity and enabled state are kept).
  void Clear();

  // Appends one completed span.  Thread-safe; called by ScopedSpan.
  void Record(std::string_view name, uint64_t start_ns, uint64_t end_ns, uint16_t depth,
              uint32_t thread, uint64_t flow = 0, uint32_t track = 0, uint64_t arg = 0);

  // The retained spans, oldest first, in completion (seq) order.
  std::vector<SpanRecord> Collect() const;

  // Total spans ever recorded / overwritten by ring wraparound.
  uint64_t recorded() const;
  uint64_t dropped() const;

  // Dense id of the calling thread (assigned on first use).
  static uint32_t ThreadId();

  // Registers (or looks up) a named logical timeline and returns its dense
  // id.  Track 0 is preregistered as "atk"; registration is idempotent per
  // name, so long-lived objects cache the id once.
  uint32_t RegisterTrack(std::string_view name);

  // Names of every registered track, indexed by track id.
  std::vector<std::string> Tracks() const;

 private:
  Tracer();

  // Spans land in per-thread rings (one writer each, no lock on the record
  // path); `next_seq_` alone is shared, so seq stays a global completion
  // order.  Collect() merges the rings and sorts by seq.
  struct ThreadRing;
  ThreadRing* CurrentRing();

  mutable std::mutex mu_;                // Guards rings_/tracks_/capacity_.
  std::vector<ThreadRing*> rings_;       // Leaked on purpose: TLS pointers
                                         // into them must never dangle.
  size_t capacity_ = kDefaultCapacity;   // Per-thread ring size.
  std::atomic<uint32_t> generation_{1};  // Bumped by SetCapacity/Clear.
  std::atomic<uint64_t> next_seq_{1};
  std::vector<std::string> tracks_;      // Index == track id.
};

// RAII span.  Construction when tracing is disabled is a relaxed atomic
// load and a branch; nothing else runs (the destructor re-checks a plain
// bool).  When enabled, the open timestamp, per-thread depth, and the name
// copy happen in Open(); the record is written at destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) noexcept {
    if (Enabled()) {
      Open(name, {});
    }
  }
  // Two-part name (e.g. "update." + view class name): the concatenation is
  // only performed when tracing is enabled.
  ScopedSpan(std::string_view prefix, std::string_view suffix) noexcept {
    if (Enabled()) {
      Open(prefix, suffix);
    }
  }
  ~ScopedSpan() {
    if (active_) {
      Close();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }

  // Attaches one small argument to the record (retransmit attempt count,
  // fan-out session id, …).  No-op when the span is inactive.
  void set_arg(uint64_t arg) { arg_ = static_cast<uint32_t>(arg); }

 private:
  void Open(std::string_view prefix, std::string_view suffix) noexcept;
  void Close() noexcept;

  uint64_t start_ns_ = 0;
  uint32_t arg_ = 0;
  uint16_t depth_ = 0;
  bool active_ = false;
  char name_[SpanRecord::kNameCapacity];
};

// ATK_TRACE_SPAN("im.update.cycle") — a scoped span named after the site.
#define ATK_OBS_CONCAT_INNER(a, b) a##b
#define ATK_OBS_CONCAT(a, b) ATK_OBS_CONCAT_INNER(a, b)
#define ATK_TRACE_SPAN(...) \
  ::atk::observability::ScopedSpan ATK_OBS_CONCAT(atk_trace_span_, __LINE__)(__VA_ARGS__)

// ---- Metrics ---------------------------------------------------------------

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }
  // Raises the gauge to `v` if it is below (high-water marks, e.g. nesting
  // depth).
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket latency histogram: 65 power-of-two buckets.  Bucket 0 holds
// the value 0; bucket i (i >= 1) holds values in [2^(i-1), 2^i - 1].
// Observe() is three relaxed atomic adds plus a CAS-max; Percentile(p)
// returns the upper bound of the bucket containing the rank, so the result
// `r` for a true percentile value `v` satisfies v <= r < 2v (a factor-two
// quantization, tested against a brute-force sort).
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void Observe(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  // p in (0, 1]; returns 0 when empty.
  uint64_t Percentile(double p) const;
  uint64_t p50() const { return Percentile(0.50); }
  uint64_t p95() const { return Percentile(0.95); }
  uint64_t p99() const { return Percentile(0.99); }

  std::array<uint64_t, kBuckets> BucketCounts() const;
  void Reset();

  // The largest value bucket `index` can hold.
  static uint64_t BucketUpperBound(size_t index);
  static size_t BucketIndex(uint64_t value);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// Named metric registry.  Lookup takes a mutex; metric objects never move
// once created, so hot call sites cache the returned reference:
//
//   static Counter& posts =
//       MetricsRegistry::Instance().counter("view.update.posted");
//   posts.Add(1);
//
// Names follow `layer.noun.verb` (lower-case segments joined by dots).
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Zeroes every metric value; registrations (and cached references) stay
  // valid.  Test/bench hygiene.
  void ResetAll();

 private:
  MetricsRegistry() = default;
  friend struct TraceSnapshotAccess;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// ---- Snapshot --------------------------------------------------------------

struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
};

struct TraceSnapshot {
  bool trace_enabled = false;
  uint64_t spans_recorded = 0;
  uint64_t spans_dropped = 0;
  std::vector<SpanRecord> spans;              // Oldest first.
  std::vector<std::string> tracks;            // Track names; index == track id.
  std::vector<CounterSample> counters;        // Sorted by name.
  std::vector<GaugeSample> gauges;            // Sorted by name.
  std::vector<HistogramSample> histograms;    // Sorted by name.
};

// Freezes the tracer ring and every registered metric.
TraceSnapshot Snapshot();

// Human-readable rendering (the `ATK_TRACE=1` exit dump).
std::string ToText(const TraceSnapshot& snapshot);

// Reads the environment once and applies it (idempotent):
//   ATK_TRACE=1            enable span recording; dump ToText(Snapshot())
//                          to stderr at process exit (skipped if tracing
//                          was disabled again before exit);
//   ATK_TRACE=0 / unset    leave tracing as built (see ATK_TRACE_DEFAULT);
//   ATK_TRACE_CAPACITY=N   ring capacity in spans;
//   ATK_TRACE_FLOWS=0      keep tracing but stop allocating causal flow
//                          ids at edit origins (default: flows on).
// Wired into InteractionManager and the app drivers so any example or app
// honors the variables with no code of its own.
void InitFromEnv();

}  // namespace observability
}  // namespace atk

#endif  // ATK_SRC_OBSERVABILITY_OBSERVABILITY_H_
