// InspectorData — the data-object half of the self-hosted inspector.
//
// The inspector is built out of the toolkit it inspects: one data object
// snapshots the observability spine (MetricsRegistry + Tracer) and the host
// window's live view tree on a configurable cadence, and notifies its
// observers through the ordinary Observable channel.  Three views render it
// (src/observability/inspector/inspector_views.h); none of them read the
// tracer directly, so every panel sees one consistent snapshot.
//
// Besides the raw snapshot, the refresh derives:
//   * view-tree rows — class, bounds, damage fingerprint and clip-memo hit
//     rate per host view, flattened into plain strings so painting never
//     touches host views that may since have been destroyed;
//   * frame profiles — per-view time attribution for each im.update.cycle
//     span, computed from the nested update.<class> spans (AttributeFrames);
//   * the slow-frame flight recorder — when a cycle exceeds the frame
//     budget, the span ring is frozen as a `\begindata{trace}` document
//     (inspector.flight.captured counts each capture);
//   * the metrics panel sources — a TableData of counter values and
//     histogram percentiles plus a ChartData over the counter rows, so the
//     §2 table -> chart observer chain displays the toolkit's own metrics;
//   * the server panel sources — one row per connected session, derived
//     purely from the `server.endpoint_<id>.*` gauges the document server
//     publishes (RTT estimate, retransmits, send-queue depth, epoch), plus
//     a ChartData over the RTT column; a second flight-recorder trigger
//     freezes the ring whenever a session is evicted or resyncs
//     (server.sessions.evicted / client.session.reconnects advance);
//   * the memory panel sources — the MemoryAccountant's per-pool accounts
//     (current/peak bytes) and the live DataObject census, as a TableData
//     plus a ChartData over the account byte column.

#ifndef ATK_SRC_OBSERVABILITY_INSPECTOR_INSPECTOR_DATA_H_
#define ATK_SRC_OBSERVABILITY_INSPECTOR_INSPECTOR_DATA_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/data_object.h"
#include "src/components/table/chart.h"
#include "src/components/table/table_data.h"
#include "src/graphics/geometry.h"
#include "src/observability/observability.h"

namespace atk {

class InteractionManager;
class View;

class InspectorData : public DataObject {
  ATK_DECLARE_CLASS(InspectorData)

 public:
  // 10 Hz: fast enough to feel live, slow enough that the inspector's own
  // repaint traffic stays negligible next to the host's.
  static constexpr uint64_t kDefaultRefreshPeriodNs = 100'000'000;
  // Two 60 Hz frames — a cycle slower than this is worth a flight record.
  static constexpr uint64_t kDefaultFrameBudgetNs = 33'000'000;
  // Bounded frame history (the profiler shows recent cycles, not all time).
  static constexpr size_t kMaxFrames = 32;

  InspectorData();
  ~InspectorData() override;

  // ---- Host attachment -------------------------------------------------------
  // Not owned; the host closes the inspector (and with it this object)
  // before the host window dies, so the pointer cannot dangle.
  void AttachHost(InteractionManager* host) { host_ = host; }
  InteractionManager* host() const { return host_; }

  // ---- Cadence ---------------------------------------------------------------
  void SetRefreshPeriodNs(uint64_t period_ns) { refresh_period_ns_ = period_ns; }
  uint64_t refresh_period_ns() const { return refresh_period_ns_; }
  // Refreshes when at least one period has elapsed since the last refresh.
  // Called by the host's per-cycle tick; returns true when it refreshed.
  bool MaybeRefresh(uint64_t now_ns);
  // Unconditional refresh: snapshot, derive, notify observers once.
  void Refresh();
  uint64_t refresh_count() const { return refresh_count_; }

  // ---- View-tree browser rows ------------------------------------------------
  struct TreeRow {
    int depth = 0;              // Indentation level; 0 = the host IM itself.
    std::string class_name;
    Rect device_bounds;
    uint64_t damage_fp = 0;     // Fingerprint of the last damage that hit it.
    uint64_t clip_hits = 0;
    uint64_t clip_misses = 0;
    bool has_focus = false;
  };
  const std::vector<TreeRow>& tree_rows() const { return tree_rows_; }

  // ---- Frame profiler --------------------------------------------------------
  struct FrameSlice {
    std::string name;           // "update.<class>"
    uint64_t duration_ns = 0;
  };
  struct FrameProfile {
    uint64_t cycle_seq = 0;     // Completion seq of the im.update.cycle span.
    uint64_t start_ns = 0;
    uint64_t duration_ns = 0;
    bool over_budget = false;
    std::vector<FrameSlice> slices;  // Longest first.
  };
  // Pure derivation (unit-testable without a window): for every
  // im.update.cycle span, attributes the update.<class> spans that nest
  // inside it (same thread, contained interval), longest slice first.
  // Frames come back oldest first.
  static std::vector<FrameProfile> AttributeFrames(
      const std::vector<observability::SpanRecord>& spans, uint64_t budget_ns);
  const std::vector<FrameProfile>& frames() const { return frames_; }

  void SetFrameBudgetNs(uint64_t budget_ns) { frame_budget_ns_ = budget_ns; }
  uint64_t frame_budget_ns() const { return frame_budget_ns_; }

  // ---- Flight recorder -------------------------------------------------------
  // When a refresh finds a cycle over budget that it has not seen before, the
  // whole span ring is frozen as a standalone `\begindata{trace}` document.
  bool has_flight_record() const { return !flight_record_.empty(); }
  const std::string& flight_record() const { return flight_record_; }
  const observability::TraceSnapshot& flight_snapshot() const { return flight_snapshot_; }
  uint64_t flight_captures() const { return flight_captures_; }

  // ---- Snapshot & export -----------------------------------------------------
  const observability::TraceSnapshot& snapshot() const { return snapshot_; }
  // The live snapshot / the frozen flight record as Perfetto-loadable JSON.
  std::string ExportPerfettoJson() const;
  std::string ExportFlightPerfettoJson() const;

  // ---- Metrics panel sources -------------------------------------------------
  // Counter rows first (name, value), then one row per histogram percentile
  // (name.p50/.p95/.p99).  The chart plots the counter rows only.
  TableData* metrics_table() { return metrics_table_.get(); }
  ChartData* metrics_chart() { return metrics_chart_.get(); }
  int counter_row_count() const { return counter_row_count_; }

  // ---- Server panel sources --------------------------------------------------
  // One row per document-server endpoint, parsed out of the
  // server.endpoint_<id>.{rtt_ticks,retransmits,queue_depth,epoch} gauges:
  // columns are session id, RTT estimate (link ticks), send-queue depth,
  // retransmit count and resync epoch.  The chart plots the RTT column, so
  // a congested session stands out at a glance.
  TableData* sessions_table() { return sessions_table_.get(); }
  ChartData* sessions_chart() { return sessions_chart_.get(); }
  int session_row_count() const { return session_row_count_; }

  // ---- Memory panel sources --------------------------------------------------
  // The heap census: one row per MemoryAccount (name, current bytes, peak
  // bytes; overlay accounts marked in the name) followed by the top live
  // DataObject classes from the census sources (name, bytes, count).  The
  // chart plots current bytes over the account rows only, so the biggest
  // pool stands out.  Totals for the header are kept alongside.
  TableData* memory_table() { return memory_table_.get(); }
  ChartData* memory_chart() { return memory_chart_.get(); }
  int memory_row_count() const { return memory_row_count_; }
  int64_t memory_total_bytes() const { return memory_total_bytes_; }
  int64_t memory_peak_bytes() const { return memory_peak_bytes_; }
  uint64_t memory_budget_bytes() const { return memory_budget_bytes_; }

  // ---- Datastream ------------------------------------------------------------
  // Persists the configuration (cadence, budget), not the live capture — a
  // reopened inspector re-snapshots the live process.
  void WriteBody(DataStreamWriter& writer) const override;
  bool ReadBody(DataStreamReader& reader, ReadContext& context) override;

 private:
  void RebuildTreeRows();
  void RebuildMetricsTable();
  void RebuildSessionsTable();
  void RebuildMemoryTable();
  void CaptureFlightRecords();
  void CaptureServerFlightRecords();

  InteractionManager* host_ = nullptr;
  uint64_t refresh_period_ns_ = kDefaultRefreshPeriodNs;
  uint64_t frame_budget_ns_ = kDefaultFrameBudgetNs;
  uint64_t last_refresh_ns_ = 0;
  uint64_t refresh_count_ = 0;

  observability::TraceSnapshot snapshot_;
  std::vector<TreeRow> tree_rows_;
  std::vector<FrameProfile> frames_;

  std::string flight_record_;
  observability::TraceSnapshot flight_snapshot_;
  uint64_t flight_captures_ = 0;
  uint64_t last_flight_seq_ = 0;

  std::unique_ptr<TableData> metrics_table_;
  std::unique_ptr<ChartData> metrics_chart_;
  int counter_row_count_ = 0;

  std::unique_ptr<TableData> sessions_table_;
  std::unique_ptr<ChartData> sessions_chart_;
  int session_row_count_ = 0;

  std::unique_ptr<TableData> memory_table_;
  std::unique_ptr<ChartData> memory_chart_;
  int memory_row_count_ = 0;
  int64_t memory_total_bytes_ = 0;
  int64_t memory_peak_bytes_ = 0;
  uint64_t memory_budget_bytes_ = 0;
  // Watermarks for the server flight trigger: the ring is frozen whenever
  // either counter advances past the value seen at the previous capture.
  uint64_t last_evictions_ = 0;
  uint64_t last_resyncs_ = 0;
};

}  // namespace atk

#endif  // ATK_SRC_OBSERVABILITY_INSPECTOR_INSPECTOR_DATA_H_
