#include "src/observability/inspector/inspector_data.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <string_view>

#include "src/base/interaction_manager.h"
#include "src/observability/memory.h"
#include "src/observability/trace_component.h"
#include "src/observability/trace_export.h"

namespace atk {

ATK_DEFINE_CLASS(InspectorData, DataObject, "inspector")

namespace {

using observability::Counter;
using observability::MetricsRegistry;
using observability::SpanRecord;

bool ParseU64Field(std::string_view field, uint64_t* out) {
  if (field.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char ch : field) {
    if (!std::isdigit(static_cast<unsigned char>(ch))) {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(ch - '0');
  }
  *out = value;
  return true;
}

}  // namespace

InspectorData::InspectorData() {
  metrics_table_ = std::make_unique<TableData>();
  metrics_chart_ = std::make_unique<ChartData>();
  metrics_chart_->SetTitle("counters");
  metrics_chart_->SetColumns(0, 1);
  metrics_chart_->SetSource(metrics_table_.get());
  sessions_table_ = std::make_unique<TableData>();
  sessions_chart_ = std::make_unique<ChartData>();
  sessions_chart_->SetTitle("rtt (ticks)");
  sessions_chart_->SetColumns(0, 1);
  sessions_chart_->SetSource(sessions_table_.get());
  memory_table_ = std::make_unique<TableData>();
  memory_chart_ = std::make_unique<ChartData>();
  memory_chart_->SetTitle("pool bytes");
  memory_chart_->SetColumns(0, 1);
  memory_chart_->SetSource(memory_table_.get());
}

InspectorData::~InspectorData() = default;

bool InspectorData::MaybeRefresh(uint64_t now_ns) {
  if (refresh_count_ > 0 && now_ns - last_refresh_ns_ < refresh_period_ns_) {
    return false;
  }
  last_refresh_ns_ = now_ns;
  Refresh();
  return true;
}

void InspectorData::Refresh() {
  static Counter& refreshed = MetricsRegistry::Instance().counter("inspector.snapshot.refreshed");
  refreshed.Add(1);
  snapshot_ = observability::Snapshot();
  RebuildTreeRows();
  frames_ = AttributeFrames(snapshot_.spans, frame_budget_ns_);
  if (frames_.size() > kMaxFrames) {
    frames_.erase(frames_.begin(), frames_.end() - static_cast<ptrdiff_t>(kMaxFrames));
  }
  CaptureFlightRecords();
  CaptureServerFlightRecords();
  RebuildMetricsTable();
  RebuildSessionsTable();
  RebuildMemoryTable();
  ++refresh_count_;
  NotifyObservers(Change{Change::Kind::kModified});
}

void InspectorData::RebuildTreeRows() {
  tree_rows_.clear();
  if (host_ == nullptr) {
    return;
  }
  // Rows are flattened into strings here so painting later never follows a
  // host-view pointer (the host may delete views between refreshes).
  auto visit = [this](auto&& self, const View& view, int depth) -> void {
    TreeRow row;
    row.depth = depth;
    row.class_name = view.class_name();
    row.device_bounds = view.DeviceBounds();
    row.damage_fp = view.last_damage_fingerprint();
    row.clip_hits = view.clip_memo_hits();
    row.clip_misses = view.clip_memo_misses();
    row.has_focus = view.has_input_focus();
    tree_rows_.push_back(std::move(row));
    for (const View* child : view.children()) {
      self(self, *child, depth + 1);
    }
  };
  visit(visit, *host_, 0);
}

std::vector<InspectorData::FrameProfile> InspectorData::AttributeFrames(
    const std::vector<SpanRecord>& spans, uint64_t budget_ns) {
  std::vector<FrameProfile> frames;
  for (const SpanRecord& cycle : spans) {
    if (cycle.name_view() != "im.update.cycle") {
      continue;
    }
    FrameProfile frame;
    frame.cycle_seq = cycle.seq;
    frame.start_ns = cycle.start_ns;
    frame.duration_ns = cycle.duration_ns;
    frame.over_budget = budget_ns > 0 && cycle.duration_ns > budget_ns;
    uint64_t cycle_end = cycle.start_ns + cycle.duration_ns;
    for (const SpanRecord& span : spans) {
      // An update.<class> span belongs to this cycle when it nests inside
      // it: same thread, deeper, and its interval contained in the cycle's.
      if (span.thread != cycle.thread || span.depth <= cycle.depth) {
        continue;
      }
      if (span.name_view().substr(0, 7) != "update.") {
        continue;
      }
      if (span.start_ns < cycle.start_ns || span.start_ns + span.duration_ns > cycle_end) {
        continue;
      }
      frame.slices.push_back(FrameSlice{std::string(span.name_view()), span.duration_ns});
    }
    std::stable_sort(frame.slices.begin(), frame.slices.end(),
                     [](const FrameSlice& a, const FrameSlice& b) {
                       return a.duration_ns > b.duration_ns;
                     });
    frames.push_back(std::move(frame));
  }
  std::stable_sort(frames.begin(), frames.end(),
                   [](const FrameProfile& a, const FrameProfile& b) {
                     return a.cycle_seq < b.cycle_seq;
                   });
  return frames;
}

void InspectorData::CaptureFlightRecords() {
  uint64_t worst_new_seq = 0;
  for (const FrameProfile& frame : frames_) {
    if (frame.over_budget && frame.cycle_seq > last_flight_seq_) {
      worst_new_seq = std::max(worst_new_seq, frame.cycle_seq);
    }
  }
  if (worst_new_seq == 0) {
    return;
  }
  // Freeze the whole ring as a datastream document: the slow cycle is kept
  // with its surrounding context, and the document round-trips like any
  // other component (or loads in Perfetto via ExportFlightPerfettoJson).
  static Counter& captured = MetricsRegistry::Instance().counter("inspector.flight.captured");
  captured.Add(1);
  flight_snapshot_ = snapshot_;
  flight_record_ = observability::SnapshotToDatastream(flight_snapshot_);
  ++flight_captures_;
  last_flight_seq_ = worst_new_seq;
}

void InspectorData::CaptureServerFlightRecords() {
  // Session churn trigger: a session eviction on the server or a resync on
  // any client means propagation state was just rebuilt, and the spans that
  // led up to it are exactly what the ring still holds.  Freeze it before
  // further refreshes age them out.
  uint64_t evictions = 0;
  uint64_t resyncs = 0;
  for (const observability::CounterSample& counter : snapshot_.counters) {
    if (counter.name == "server.sessions.evicted") {
      evictions = counter.value;
    } else if (counter.name == "client.session.reconnects") {
      resyncs = counter.value;
    }
  }
  if (evictions <= last_evictions_ && resyncs <= last_resyncs_) {
    return;
  }
  static Counter& captured = MetricsRegistry::Instance().counter("inspector.flight.captured");
  captured.Add(1);
  flight_snapshot_ = snapshot_;
  flight_record_ = observability::SnapshotToDatastream(flight_snapshot_);
  ++flight_captures_;
  last_evictions_ = evictions;
  last_resyncs_ = resyncs;
}

void InspectorData::RebuildSessionsTable() {
  // Rows derive purely from the published server.endpoint_<id>.* gauges, so
  // the inspector needs no dependency on (or pointer into) the server layer
  // and the table stays meaningful even over a salvaged snapshot.
  struct SessionRow {
    int64_t rtt = 0;
    int64_t queue = 0;
    int64_t retransmits = 0;
    int64_t epoch = 0;
  };
  std::map<uint64_t, SessionRow> sessions;
  constexpr std::string_view kPrefix = "server.endpoint_";
  for (const observability::GaugeSample& gauge : snapshot_.gauges) {
    std::string_view name = gauge.name;
    if (name.substr(0, kPrefix.size()) != kPrefix) {
      continue;
    }
    std::string_view rest = name.substr(kPrefix.size());
    size_t dot = rest.find('.');
    uint64_t id = 0;
    if (dot == std::string_view::npos || !ParseU64Field(rest.substr(0, dot), &id)) {
      continue;
    }
    std::string_view field = rest.substr(dot + 1);
    SessionRow& row = sessions[id];
    if (field == "rtt_ticks") {
      row.rtt = gauge.value;
    } else if (field == "queue_depth") {
      row.queue = gauge.value;
    } else if (field == "retransmits") {
      row.retransmits = gauge.value;
    } else if (field == "epoch") {
      row.epoch = gauge.value;
    }
  }
  int rows = static_cast<int>(sessions.size());
  if (sessions_table_->rows() != rows || sessions_table_->cols() != 5) {
    sessions_table_->Resize(rows, 5);
  }
  int row = 0;
  for (const auto& [id, session] : sessions) {
    sessions_table_->SetText(row, 0, "session " + std::to_string(id));
    sessions_table_->SetNumber(row, 1, static_cast<double>(session.rtt));
    sessions_table_->SetNumber(row, 2, static_cast<double>(session.queue));
    sessions_table_->SetNumber(row, 3, static_cast<double>(session.retransmits));
    sessions_table_->SetNumber(row, 4, static_cast<double>(session.epoch));
    ++row;
  }
  session_row_count_ = row;
  sessions_chart_->SetRowRange(0, session_row_count_ > 0 ? session_row_count_ - 1 : 0);
}

void InspectorData::RebuildMemoryTable() {
  // The accountant is the authority here (not the gauge snapshot): it knows
  // which accounts are overlays, carries the budget, and folds in the live
  // DataObject census — none of which the flat gauge list can express.
  observability::MemorySnapshot mem =
      observability::MemoryAccountant::Instance().SnapshotMemory();
  memory_total_bytes_ = mem.total_bytes;
  memory_peak_bytes_ = mem.peak_bytes;
  memory_budget_bytes_ = mem.budget_bytes;
  int rows = static_cast<int>(mem.accounts.size() + mem.census.size());
  if (memory_table_->rows() != rows || memory_table_->cols() != 3) {
    memory_table_->Resize(rows, 3);
  }
  int row = 0;
  for (const observability::MemoryAccountSample& account : mem.accounts) {
    memory_table_->SetText(row, 0,
                           account.overlay ? account.name + " (overlay)" : account.name);
    memory_table_->SetNumber(row, 1, static_cast<double>(account.current_bytes));
    memory_table_->SetNumber(row, 2, static_cast<double>(account.peak_bytes));
    ++row;
  }
  memory_row_count_ = row;
  for (const observability::CensusRow& census : mem.census) {
    memory_table_->SetText(row, 0, "live " + census.name);
    memory_table_->SetNumber(row, 1, static_cast<double>(census.bytes));
    memory_table_->SetNumber(row, 2, static_cast<double>(census.count));
    ++row;
  }
  // The chart plots the account rows only: census bytes overlap the pool
  // bytes above them, and mixing the two would double-draw the same memory.
  memory_chart_->SetRowRange(0, memory_row_count_ > 0 ? memory_row_count_ - 1 : 0);
}

std::string InspectorData::ExportPerfettoJson() const {
  return observability::TraceExport::ToPerfettoJson(snapshot_);
}

std::string InspectorData::ExportFlightPerfettoJson() const {
  return observability::TraceExport::ToPerfettoJson(flight_snapshot_);
}

void InspectorData::RebuildMetricsTable() {
  int rows = static_cast<int>(snapshot_.counters.size() + snapshot_.gauges.size() +
                              snapshot_.histograms.size() * 3);
  if (metrics_table_->rows() != rows || metrics_table_->cols() != 2) {
    metrics_table_->Resize(rows, 2);
  }
  int row = 0;
  for (const observability::CounterSample& counter : snapshot_.counters) {
    metrics_table_->SetText(row, 0, counter.name);
    metrics_table_->SetNumber(row, 1, static_cast<double>(counter.value));
    ++row;
  }
  counter_row_count_ = row;
  for (const observability::GaugeSample& gauge : snapshot_.gauges) {
    metrics_table_->SetText(row, 0, gauge.name);
    metrics_table_->SetNumber(row, 1, static_cast<double>(gauge.value));
    ++row;
  }
  for (const observability::HistogramSample& histo : snapshot_.histograms) {
    metrics_table_->SetText(row, 0, histo.name + ".p50");
    metrics_table_->SetNumber(row, 1, static_cast<double>(histo.p50));
    ++row;
    metrics_table_->SetText(row, 0, histo.name + ".p95");
    metrics_table_->SetNumber(row, 1, static_cast<double>(histo.p95));
    ++row;
    metrics_table_->SetText(row, 0, histo.name + ".p99");
    metrics_table_->SetNumber(row, 1, static_cast<double>(histo.p99));
    ++row;
  }
  // The bar chart plots counters only: histograms mix units (ns, bands) and
  // gauges can go negative, which the §2 chart example never needed.
  metrics_chart_->SetRowRange(0, counter_row_count_ > 0 ? counter_row_count_ - 1 : 0);
}

void InspectorData::WriteBody(DataStreamWriter& writer) const {
  writer.WriteDirective("inspector", std::to_string(refresh_period_ns_) + "," +
                                         std::to_string(frame_budget_ns_));
  writer.WriteNewline();
}

bool InspectorData::ReadBody(DataStreamReader& reader, ReadContext& context) {
  while (true) {
    DataStreamReader::Token token = reader.Next();
    switch (token.kind) {
      case DataStreamReader::Token::Kind::kEndData:
        return token.type == "inspector";
      case DataStreamReader::Token::Kind::kEof:
        context.AddError("input ended inside an inspector object");
        return false;
      case DataStreamReader::Token::Kind::kDirective:
        if (token.type == "inspector") {
          size_t comma = token.text.find(',');
          uint64_t period = 0;
          uint64_t budget = 0;
          if (comma != std::string_view::npos &&
              ParseU64Field(token.text.substr(0, comma), &period) &&
              ParseU64Field(token.text.substr(comma + 1), &budget)) {
            refresh_period_ns_ = period;
            frame_budget_ns_ = budget;
          } else {
            context.AddError("malformed \\inspector{" + std::string(token.text) + "}");
          }
        }
        break;  // Unknown directives are skipped (forward compatibility).
      case DataStreamReader::Token::Kind::kBeginData:
        if (!reader.SkipObject(token.type, token.id)) {
          context.AddError("input ended inside an object nested in an inspector");
          return false;
        }
        break;
      case DataStreamReader::Token::Kind::kDiagnostic:
        context.AddError("damaged directive inside an inspector object");
        break;
      case DataStreamReader::Token::Kind::kText:
      case DataStreamReader::Token::Kind::kViewRef:
        break;
    }
  }
}

}  // namespace atk
