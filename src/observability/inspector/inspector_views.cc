#include "src/observability/inspector/inspector_views.h"

#include <algorithm>
#include <cstdio>

namespace atk {

ATK_DEFINE_CLASS(InspectorRootView, View, "inspectorrootview")
ATK_DEFINE_CLASS(ViewTreeView, View, "viewtreeview")
ATK_DEFINE_CLASS(FrameProfileView, View, "frameprofileview")
ATK_DEFINE_CLASS(MetricsPanelView, View, "metricspanelview")
ATK_DEFINE_CLASS(ServerPanelView, View, "serverpanelview")
ATK_DEFINE_CLASS(MemoryPanelView, View, "memorypanelview")

namespace {

const FontSpec& PanelFont() {
  static const FontSpec spec{"andy", 10, kPlain};
  return spec;
}

int LineHeight() { return Font::Get(PanelFont()).height() + 2; }

std::string FormatMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  return buf;
}

// "512", "12.3k", "4.5m" — compact enough for the memory panel header.
std::string FormatBytes(int64_t bytes) {
  char buf[32];
  double value = static_cast<double>(bytes);
  if (bytes < 0) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(bytes));
  } else if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(bytes));
  } else if (bytes < 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fk", value / 1024.0);
  } else if (bytes < 1024ll * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fm", value / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fg", value / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

}  // namespace

// ---- InspectorRootView ------------------------------------------------------

void InspectorRootView::Layout() {
  if (!HasGraphic() || children().empty()) {
    return;
  }
  // Tree 25%, profiler 21%, metrics 21%, server panel 16%, memory panel 17%
  // (whatever children exist share the proportions; a lone child takes
  // everything).
  static constexpr int kShares[] = {6, 5, 5, 4, 4};
  static constexpr size_t kLastShare = std::size(kShares) - 1;
  Rect local = graphic()->LocalBounds();
  int n = static_cast<int>(children().size());
  int total_share = 0;
  for (int i = 0; i < n; ++i) {
    total_share += kShares[std::min<size_t>(i, kLastShare)];
  }
  int y = 0;
  for (int i = 0; i < n; ++i) {
    View* child = children()[i];
    int h = i == n - 1 ? local.height - y
                       : local.height * kShares[std::min<size_t>(i, kLastShare)] / total_share;
    child->Allocate(Rect{0, y, local.width, h}, graphic());
    y += h;
  }
}

void InspectorRootView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  // Band separators, drawn under the children's own backgrounds.
  for (View* child : children()) {
    int y = child->bounds().y;
    if (y > 0) {
      g->DrawLine(Point{0, y}, Point{g->width(), y});
    }
  }
}

// ---- ViewTreeView -----------------------------------------------------------

void ViewTreeView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  g->SetFont(PanelFont());
  InspectorData* data = inspector();
  int line = LineHeight();
  int y = 2;
  g->DrawString(Point{4, y}, "view tree (class  bounds  damage-fp  clip-memo)");
  y += line;
  if (data == nullptr) {
    g->DrawString(Point{4, y}, "(no inspector data)");
    return;
  }
  for (const InspectorData::TreeRow& row : data->tree_rows()) {
    if (y + line > g->height()) {
      g->DrawString(Point{4, y}, "...");
      break;
    }
    uint64_t lookups = row.clip_hits + row.clip_misses;
    int hit_pct = lookups == 0 ? 0 : static_cast<int>(row.clip_hits * 100 / lookups);
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s%s%s  %d,%d %dx%d  fp=%08x  clip %d%% (%llu/%llu)",
                  row.has_focus ? "*" : " ", std::string(row.depth * 2, ' ').c_str(),
                  row.class_name.c_str(), row.device_bounds.x, row.device_bounds.y,
                  row.device_bounds.width, row.device_bounds.height,
                  static_cast<unsigned>(row.damage_fp & 0xffffffffu), hit_pct,
                  static_cast<unsigned long long>(row.clip_hits),
                  static_cast<unsigned long long>(lookups));
    g->DrawString(Point{4, y}, buf);
    y += line;
  }
}

void ViewTreeView::FillMenus(MenuList& menus) {
  menus.Add("Inspector~Export trace", "inspector-export-trace");
}

// ---- FrameProfileView -------------------------------------------------------

void FrameProfileView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  g->SetFont(PanelFont());
  InspectorData* data = inspector();
  int line = LineHeight();
  int y = 2;
  if (data == nullptr) {
    g->DrawString(Point{4, y}, "(no inspector data)");
    return;
  }
  char header[128];
  std::snprintf(header, sizeof(header), "frames (budget %s, %llu flight capture(s))",
                FormatMs(data->frame_budget_ns()).c_str(),
                static_cast<unsigned long long>(data->flight_captures()));
  g->DrawString(Point{4, y}, header);
  y += line;
  // Newest frames first; the bar spans [0, budget] across half the width, so
  // an over-budget frame visibly runs past the tick mark.
  int bar_x = 4;
  int bar_span = std::max(40, g->width() / 2);
  const std::vector<InspectorData::FrameProfile>& frames = data->frames();
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    if (y + line > g->height()) {
      break;
    }
    const InspectorData::FrameProfile& frame = *it;
    uint64_t budget = data->frame_budget_ns() > 0 ? data->frame_budget_ns() : 1;
    int w = static_cast<int>(
        std::min<uint64_t>(frame.duration_ns * static_cast<uint64_t>(bar_span) / budget,
                           static_cast<uint64_t>(bar_span) * 2));
    Rect bar{bar_x, y + 1, std::max(w, 1), line - 3};
    if (frame.over_budget) {
      g->FillRect(bar);
    } else {
      g->DrawRect(bar);
    }
    g->DrawLine(Point{bar_x + bar_span, y}, Point{bar_x + bar_span, y + line - 2});
    char label[160];
    if (frame.slices.empty()) {
      std::snprintf(label, sizeof(label), "#%llu %s",
                    static_cast<unsigned long long>(frame.cycle_seq),
                    FormatMs(frame.duration_ns).c_str());
    } else {
      std::snprintf(label, sizeof(label), "#%llu %s  %s %s",
                    static_cast<unsigned long long>(frame.cycle_seq),
                    FormatMs(frame.duration_ns).c_str(), frame.slices.front().name.c_str(),
                    FormatMs(frame.slices.front().duration_ns).c_str());
    }
    g->DrawString(Point{bar_x + bar_span * 2 + 8, y}, label);
    y += line;
  }
}

// ---- MetricsPanelView -------------------------------------------------------

MetricsPanelView::MetricsPanelView() = default;
MetricsPanelView::~MetricsPanelView() = default;

void MetricsPanelView::EnsureChildren() {
  if (table_view_ == nullptr) {
    table_view_ = std::make_unique<TableView>();
    chart_view_ = std::make_unique<BarChartView>();
    AddChild(table_view_.get());
    AddChild(chart_view_.get());
  }
  InspectorData* data = inspector();
  if (data != nullptr) {
    table_view_->SetDataObject(data->metrics_table());
    chart_view_->SetDataObject(data->metrics_chart());
  }
}

void MetricsPanelView::Layout() {
  if (!HasGraphic()) {
    return;
  }
  EnsureChildren();
  Rect local = graphic()->LocalBounds();
  int table_w = local.width * 3 / 5;
  table_view_->Allocate(Rect{0, 0, table_w, local.height}, graphic());
  chart_view_->Allocate(Rect{table_w + 1, 0, local.width - table_w - 1, local.height},
                        graphic());
}

void MetricsPanelView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  if (table_view_ != nullptr) {
    g->DrawLine(Point{table_view_->bounds().width, 0},
                Point{table_view_->bounds().width, g->height()});
  }
}

// ---- ServerPanelView --------------------------------------------------------

ServerPanelView::ServerPanelView() = default;
ServerPanelView::~ServerPanelView() = default;

void ServerPanelView::EnsureChildren() {
  if (table_view_ == nullptr) {
    table_view_ = std::make_unique<TableView>();
    chart_view_ = std::make_unique<BarChartView>();
    AddChild(table_view_.get());
    AddChild(chart_view_.get());
  }
  InspectorData* data = inspector();
  if (data != nullptr) {
    table_view_->SetDataObject(data->sessions_table());
    chart_view_->SetDataObject(data->sessions_chart());
  }
}

void ServerPanelView::Layout() {
  if (!HasGraphic()) {
    return;
  }
  EnsureChildren();
  // One header line (session count + flight captures), then the sessions
  // table left of its RTT chart, same split as the metrics panel.
  Rect local = graphic()->LocalBounds();
  int header = LineHeight() + 2;
  int body = std::max(local.height - header, 0);
  int table_w = local.width * 3 / 5;
  table_view_->Allocate(Rect{0, header, table_w, body}, graphic());
  chart_view_->Allocate(Rect{table_w + 1, header, local.width - table_w - 1, body},
                        graphic());
}

void ServerPanelView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  g->SetFont(PanelFont());
  InspectorData* data = inspector();
  if (data == nullptr) {
    g->DrawString(Point{4, 2}, "(no inspector data)");
    return;
  }
  char header[160];
  std::snprintf(header, sizeof(header),
                "server sessions: %d (rtt  queue  rexmit  epoch)  %llu flight capture(s)",
                data->session_row_count(),
                static_cast<unsigned long long>(data->flight_captures()));
  g->DrawString(Point{4, 2}, header);
  if (table_view_ != nullptr) {
    g->DrawLine(Point{table_view_->bounds().width, table_view_->bounds().y},
                Point{table_view_->bounds().width, g->height()});
  }
}

// ---- MemoryPanelView --------------------------------------------------------

MemoryPanelView::MemoryPanelView() = default;
MemoryPanelView::~MemoryPanelView() = default;

void MemoryPanelView::EnsureChildren() {
  if (table_view_ == nullptr) {
    table_view_ = std::make_unique<TableView>();
    chart_view_ = std::make_unique<BarChartView>();
    AddChild(table_view_.get());
    AddChild(chart_view_.get());
  }
  InspectorData* data = inspector();
  if (data != nullptr) {
    table_view_->SetDataObject(data->memory_table());
    chart_view_->SetDataObject(data->memory_chart());
  }
}

void MemoryPanelView::Layout() {
  if (!HasGraphic()) {
    return;
  }
  EnsureChildren();
  // One header line (totals + budget), then the accounts table left of its
  // pool-bytes chart, same split as the other panels.
  Rect local = graphic()->LocalBounds();
  int header = LineHeight() + 2;
  int body = std::max(local.height - header, 0);
  int table_w = local.width * 3 / 5;
  table_view_->Allocate(Rect{0, header, table_w, body}, graphic());
  chart_view_->Allocate(Rect{table_w + 1, header, local.width - table_w - 1, body},
                        graphic());
}

void MemoryPanelView::FullUpdate() {
  Graphic* g = graphic();
  if (g == nullptr) {
    return;
  }
  g->Clear();
  g->SetFont(PanelFont());
  InspectorData* data = inspector();
  if (data == nullptr) {
    g->DrawString(Point{4, 2}, "(no inspector data)");
    return;
  }
  char header[160];
  if (data->memory_budget_bytes() > 0) {
    std::snprintf(header, sizeof(header),
                  "memory: %s now, %s peak, budget %s  (%d pools: cur  peak)",
                  FormatBytes(data->memory_total_bytes()).c_str(),
                  FormatBytes(data->memory_peak_bytes()).c_str(),
                  FormatBytes(static_cast<int64_t>(data->memory_budget_bytes())).c_str(),
                  data->memory_row_count());
  } else {
    std::snprintf(header, sizeof(header),
                  "memory: %s now, %s peak, no budget  (%d pools: cur  peak)",
                  FormatBytes(data->memory_total_bytes()).c_str(),
                  FormatBytes(data->memory_peak_bytes()).c_str(),
                  data->memory_row_count());
  }
  g->DrawString(Point{4, 2}, header);
  if (table_view_ != nullptr) {
    g->DrawLine(Point{table_view_->bounds().width, table_view_->bounds().y},
                Point{table_view_->bounds().width, g->height()});
  }
}

}  // namespace atk
