#include "src/observability/inspector/inspector.h"

#include <cstdlib>
#include <fstream>
#include <string>

#include "src/base/default_views.h"
#include "src/base/proctable.h"
#include "src/class_system/loader.h"
#include "src/components/modules.h"
#include "src/observability/inspector/inspector_views.h"
#include "src/observability/observability.h"

namespace atk {
namespace {

using observability::Counter;
using observability::MetricsRegistry;

// Millisecond env knob; `fallback_ns` when unset or malformed.
uint64_t EnvMillisNs(const char* name, uint64_t fallback_ns) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback_ns;
  }
  char* end = nullptr;
  unsigned long long ms = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    return fallback_ns;
  }
  return static_cast<uint64_t>(ms) * 1'000'000ull;
}

void ExportTraceProc(View* view, long) {
  if (view == nullptr) {
    return;
  }
  InspectorData* data = ObjectCast<InspectorData>(view->data_object());
  if (data == nullptr) {
    return;
  }
  const char* path = std::getenv("ATK_INSPECT_EXPORT");
  std::ofstream out(path != nullptr && *path != '\0' ? path : "atk-trace.json");
  if (!out) {
    return;
  }
  // Prefer the frozen slow-frame capture when one exists; it is the trace
  // the user opened the profiler to see.
  out << (data->has_flight_record() ? data->ExportFlightPerfettoJson()
                                    : data->ExportPerfettoJson());
  static Counter& exported = MetricsRegistry::Instance().counter("inspector.trace.exported");
  exported.Add(1);
}

}  // namespace

InteractionManager::InspectorHandle MakeInspectorWindow(InteractionManager& host) {
  InteractionManager::InspectorHandle handle;
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open();
  if (ws == nullptr) {
    return handle;
  }
  std::unique_ptr<InteractionManager> im = InteractionManager::Create(*ws, 560, 640,
                                                                      "ATK Inspector");
  // The panels are empty without spans, so opening the inspector turns
  // tracing on; closing it restores whatever the host had configured.
  bool was_tracing = observability::Enabled();
  if (!was_tracing) {
    observability::Tracer::Instance().SetEnabled(true);
  }

  auto data = std::make_unique<InspectorData>();
  data->AttachHost(&host);
  data->SetRefreshPeriodNs(
      EnvMillisNs("ATK_INSPECT_PERIOD_MS", InspectorData::kDefaultRefreshPeriodNs));
  data->SetFrameBudgetNs(
      EnvMillisNs("ATK_INSPECT_BUDGET_MS", InspectorData::kDefaultFrameBudgetNs));

  auto root = std::make_unique<InspectorRootView>();
  auto tree = std::make_unique<ViewTreeView>();
  auto profiler = std::make_unique<FrameProfileView>();
  auto metrics = std::make_unique<MetricsPanelView>();
  auto server_panel = std::make_unique<ServerPanelView>();
  auto memory_panel = std::make_unique<MemoryPanelView>();
  root->SetDataObject(data.get());
  tree->SetDataObject(data.get());
  profiler->SetDataObject(data.get());
  metrics->SetDataObject(data.get());
  server_panel->SetDataObject(data.get());
  memory_panel->SetDataObject(data.get());
  root->AddChild(tree.get());
  root->AddChild(profiler.get());
  root->AddChild(metrics.get());
  root->AddChild(server_panel.get());
  root->AddChild(memory_panel.get());
  im->SetChild(root.get());
  data->Refresh();  // First snapshot before the first paint.

  InspectorData* data_ptr = data.get();
  // Adoption order is destruction order: views go before the data object so
  // observers detach themselves before the observable dies.
  im->Adopt(std::move(root));
  im->Adopt(std::move(tree));
  im->Adopt(std::move(profiler));
  im->Adopt(std::move(metrics));
  im->Adopt(std::move(server_panel));
  im->Adopt(std::move(memory_panel));
  im->Adopt(std::move(data));
  im->Adopt(std::move(ws));

  handle.im = std::move(im);
  handle.tick = [data_ptr] { data_ptr->MaybeRefresh(observability::MonotonicNanos()); };
  handle.closed = [was_tracing] {
    if (!was_tracing) {
      observability::Tracer::Instance().SetEnabled(false);
    }
  };
  return handle;
}

InspectorData* GetInspectorData(InteractionManager* inspector_im) {
  if (inspector_im == nullptr || inspector_im->child() == nullptr) {
    return nullptr;
  }
  return ObjectCast<InspectorData>(inspector_im->child()->data_object());
}

void RegisterInspectorModule() {
  static bool done = [] {
    RegisterTableModule();  // The metrics panel embeds table + chart views.
    ModuleSpec spec;
    spec.name = "inspector";
    spec.provides = {"inspector", "inspectorrootview", "viewtreeview", "frameprofileview",
                     "metricspanelview", "serverpanelview", "memorypanelview"};
    spec.depends_on = {"table"};
    spec.text_bytes = 42 * 1024;
    spec.data_bytes = 4 * 1024;
    spec.init = [] {
      ClassRegistry::Instance().Register(InspectorData::StaticClassInfo());
      ClassRegistry::Instance().Register(InspectorRootView::StaticClassInfo());
      ClassRegistry::Instance().Register(ViewTreeView::StaticClassInfo());
      ClassRegistry::Instance().Register(FrameProfileView::StaticClassInfo());
      ClassRegistry::Instance().Register(MetricsPanelView::StaticClassInfo());
      ClassRegistry::Instance().Register(ServerPanelView::StaticClassInfo());
      ClassRegistry::Instance().Register(MemoryPanelView::StaticClassInfo());
      SetDefaultViewName("inspector", "inspectorrootview");
      ProcTable::Instance().Register("inspector-export-trace", ExportTraceProc);
      InteractionManager::SetInspectorFactory(MakeInspectorWindow);
    };
    return Loader::Instance().DeclareModule(std::move(spec));
  }();
  (void)done;
}

}  // namespace atk
