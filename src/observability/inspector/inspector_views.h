// The inspector's views — three live panels over one InspectorData.
//
// All three observe the same InspectorData and repaint through the ordinary
// delayed-update channel, so the inspector window exercises exactly the
// machinery it displays:
//
//   * ViewTreeView — the view-tree browser: one line per host view with
//     class, device bounds, last damage fingerprint, and clip-memo hit rate.
//   * FrameProfileView — per-view frame attribution: recent im.update.cycle
//     spans as horizontal bars scaled against the frame budget, each labeled
//     with its dominant update.<class> slice; over-budget frames fill solid.
//   * MetricsPanelView — the metrics table and its bar chart, reusing the
//     stock TableView and BarChartView over InspectorData's table -> chart
//     observer chain (§2's worked example, pointed at the toolkit itself).
//   * ServerPanelView — the document-server sessions table (RTT estimate,
//     send-queue depth, retransmits, resync epoch per endpoint, derived
//     from the server.endpoint_* gauges) beside a bar chart of the RTT
//     column, with the flight-capture count in the header so an eviction
//     or resync capture is visible the moment it fires.
//   * MemoryPanelView — the heap census: per-pool accounts (current/peak
//     bytes) and the live DataObject classes beside a bar chart of pool
//     bytes, with process total/peak and the ATK_MEM_BUDGET in the header.
//
// InspectorRootView stacks the five into the inspector window.

#ifndef ATK_SRC_OBSERVABILITY_INSPECTOR_INSPECTOR_VIEWS_H_
#define ATK_SRC_OBSERVABILITY_INSPECTOR_INSPECTOR_VIEWS_H_

#include <memory>

#include "src/base/view.h"
#include "src/components/table/chart.h"
#include "src/components/table/table_view.h"
#include "src/observability/inspector/inspector_data.h"

namespace atk {

// Vertical stack: view tree on top, then the frame profiler, the metrics
// panel, and the server panel.  Children are laid out in link order.
class InspectorRootView : public View {
  ATK_DECLARE_CLASS(InspectorRootView)

 public:
  void Layout() override;
  void FullUpdate() override;
};

class ViewTreeView : public View {
  ATK_DECLARE_CLASS(ViewTreeView)

 public:
  InspectorData* inspector() const { return ObjectCast<InspectorData>(data_object()); }

  void FullUpdate() override;
  void FillMenus(MenuList& menus) override;
};

class FrameProfileView : public View {
  ATK_DECLARE_CLASS(FrameProfileView)

 public:
  InspectorData* inspector() const { return ObjectCast<InspectorData>(data_object()); }

  void FullUpdate() override;
};

class MetricsPanelView : public View {
  ATK_DECLARE_CLASS(MetricsPanelView)

 public:
  MetricsPanelView();
  ~MetricsPanelView() override;

  InspectorData* inspector() const { return ObjectCast<InspectorData>(data_object()); }

  void Layout() override;
  void FullUpdate() override;

  TableView* table_view() const { return table_view_.get(); }
  BarChartView* chart_view() const { return chart_view_.get(); }

 private:
  void EnsureChildren();

  std::unique_ptr<TableView> table_view_;
  std::unique_ptr<BarChartView> chart_view_;
};

class ServerPanelView : public View {
  ATK_DECLARE_CLASS(ServerPanelView)

 public:
  ServerPanelView();
  ~ServerPanelView() override;

  InspectorData* inspector() const { return ObjectCast<InspectorData>(data_object()); }

  void Layout() override;
  void FullUpdate() override;

  TableView* table_view() const { return table_view_.get(); }
  BarChartView* chart_view() const { return chart_view_.get(); }

 private:
  void EnsureChildren();

  std::unique_ptr<TableView> table_view_;
  std::unique_ptr<BarChartView> chart_view_;
};

class MemoryPanelView : public View {
  ATK_DECLARE_CLASS(MemoryPanelView)

 public:
  MemoryPanelView();
  ~MemoryPanelView() override;

  InspectorData* inspector() const { return ObjectCast<InspectorData>(data_object()); }

  void Layout() override;
  void FullUpdate() override;

  TableView* table_view() const { return table_view_.get(); }
  BarChartView* chart_view() const { return chart_view_.get(); }

 private:
  void EnsureChildren();

  std::unique_ptr<TableView> table_view_;
  std::unique_ptr<BarChartView> chart_view_;
};

}  // namespace atk

#endif  // ATK_SRC_OBSERVABILITY_INSPECTOR_INSPECTOR_VIEWS_H_
