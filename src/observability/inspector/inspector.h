// The inspector module — registration and the window factory.
//
// RegisterInspectorModule() declares the "inspector" module to the Loader.
// Its init registers the InspectorData class and the three panel views with
// the class system, and installs the InteractionManager inspector factory,
// so `InteractionManager::OpenInspector()` (ESC-i, ATK_INSPECT=1, or the
// im-toggle-inspector proc) can demand-load this module and pop a second
// window over any host — the same load-on-first-use path as embedding an
// unseen component (§7).
//
// Environment knobs, read when the window opens:
//   ATK_INSPECT=1              auto-open the inspector on the host's first
//                              RunOnce (handled by InteractionManager);
//   ATK_INSPECT_PERIOD_MS=N    snapshot cadence (default 100 — 10 Hz);
//   ATK_INSPECT_BUDGET_MS=N    slow-frame flight-recorder budget (default 33).

#ifndef ATK_SRC_OBSERVABILITY_INSPECTOR_INSPECTOR_H_
#define ATK_SRC_OBSERVABILITY_INSPECTOR_INSPECTOR_H_

#include "src/base/interaction_manager.h"
#include "src/observability/inspector/inspector_data.h"

namespace atk {

// Declares the inspector module (idempotent).  Called by
// RegisterStandardModules(); tests may call it directly.
void RegisterInspectorModule();

// Builds the inspector window over `host`: a second InteractionManager on
// the default window system whose views watch the host.  Installed as the
// InteractionManager inspector factory by the module init; exposed so tests
// can drive it without a loader round trip.
InteractionManager::InspectorHandle MakeInspectorWindow(InteractionManager& host);

// The InspectorData inside an inspector window opened by MakeInspectorWindow
// (nullptr if `inspector_im` is not such a window).
InspectorData* GetInspectorData(InteractionManager* inspector_im);

}  // namespace atk

#endif  // ATK_SRC_OBSERVABILITY_INSPECTOR_INSPECTOR_H_
