// Trace export to external profilers.
//
// A TraceSnapshot — live from Snapshot(), frozen by the inspector's flight
// recorder, or salvaged back out of a `\begindata{trace}` datastream —
// converts to the Chrome trace-event JSON format, which Perfetto
// (https://ui.perfetto.dev) and chrome://tracing both load directly:
//
//   { "displayTimeUnit": "ms",
//     "traceEvents": [
//       {"name":"im.update.cycle","cat":"atk","ph":"X",
//        "ts":12.345,"dur":310.0,"pid":1,"tid":0,
//        "args":{"seq":17,"depth":0}},
//       {"name":"im.damage.posted","ph":"C","ts":...,"pid":1,
//        "args":{"value":412}},
//       ... ] }
//
// Spans become complete ("X") events with microsecond timestamps relative to
// the earliest span; counters become counter ("C") samples at the end of the
// capture.  The export is multi-track: every logical track registered with
// Tracer::RegisterTrack (the default "atk" timeline, the document server,
// each client session) renders as its own Perfetto "process" (pid = track
// id + 1) with metadata ("M") process/thread name events, and spans that
// share a causal flow id are stitched across tracks with flow events — one
// "s" at the flow's first span, "t" through the middles, and a "f" (bound
// to the enclosing slice, bp:"e") at the last, so a single edit reads as
// one arrowed path origin → server → every replica.  Standard library
// only, like the rest of the spine, so any layer can export.

#ifndef ATK_SRC_OBSERVABILITY_TRACE_EXPORT_H_
#define ATK_SRC_OBSERVABILITY_TRACE_EXPORT_H_

#include <string>

#include "src/observability/observability.h"

namespace atk {
namespace observability {

class TraceExport {
 public:
  // Renders `snapshot` as a self-contained Chrome trace-event JSON document.
  // Never fails: an empty snapshot yields a valid document with an empty
  // traceEvents array.
  static std::string ToPerfettoJson(const TraceSnapshot& snapshot);
};

}  // namespace observability
}  // namespace atk

#endif  // ATK_SRC_OBSERVABILITY_TRACE_EXPORT_H_
