// The `memsnapshot` datastream component (§5 meets the memory accountant).
//
// A MemorySnapshot serializes as an ordinary ATK data object:
//
//   \begindata{memsnapshot,id}
//   \memmeta{version,budget,total,peak}
//   \account{overlay,current,peak,charged,name}
//   \census{count,bytes,name}
//   \enddata{memsnapshot,id}
//
// so a heap census survives a write -> read round trip, can be embedded in
// a document, mailed (7-bit printable), skipped by readers that do not know
// the type, and salvaged like any other component.  Account and class names
// are metric-style identifiers and therefore never contain '}', ',' or
// newlines; they sit last in each directive so numeric fields parse
// positionally (the same layout as the trace component).
//
// Including this header (or linking anything that does) also installs the
// §5 writer behind memory.h's ATK_MEM_SNAPSHOT exit hook — see
// InstallMemSnapshotWriter.

#ifndef ATK_SRC_OBSERVABILITY_MEMSNAPSHOT_COMPONENT_H_
#define ATK_SRC_OBSERVABILITY_MEMSNAPSHOT_COMPONENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/class_system/status.h"
#include "src/datastream/reader.h"
#include "src/datastream/writer.h"
#include "src/observability/memory.h"

namespace atk {
namespace observability {

// The datastream type name of the memsnapshot component.
inline constexpr std::string_view kMemSnapshotComponentType = "memsnapshot";

// Writes `snapshot` as a memsnapshot object on `writer` (BeginData ..
// EndData).  Returns the stream id the object was written under.
int64_t WriteMemSnapshotComponent(DataStreamWriter& writer, const MemorySnapshot& snapshot);

// Parses a memsnapshot object's body.  Call with the reader positioned just
// after the consumed \begindata{memsnapshot,...} token; consumes through
// the matching \enddata.  Unknown directives inside the body are skipped
// (forward compatibility).  Returns Corrupt on a malformed body, Truncated
// when the stream ends before \enddata.
Status ReadMemSnapshotComponent(DataStreamReader& reader, MemorySnapshot* out);

// Convenience round-trip helpers: a whole snapshot to/from a standalone
// datastream document.
std::string MemSnapshotToDatastream(const MemorySnapshot& snapshot);
Status MemSnapshotFromDatastream(std::string_view data, MemorySnapshot* out);

// Installs the §5 document writer behind memory.h's ATK_MEM_SNAPSHOT exit
// hook (idempotent; also run by a static registrar in this component's
// translation unit, so any binary that references the component gets the
// hook for free).
void InstallMemSnapshotWriter();

}  // namespace observability
}  // namespace atk

#endif  // ATK_SRC_OBSERVABILITY_MEMSNAPSHOT_COMPONENT_H_
