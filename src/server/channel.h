// Reliable frame channel: sequence numbers, cumulative acks, go-back-N
// retransmission with exponential backoff and a deadline (PR 6).
//
// One Channel is one endpoint's half of a connection over a SimulatedLink.
// Reliability model:
//
//   * every reliable frame carries the next per-direction sequence number;
//   * the receiver accepts only the next in-order sequence — duplicates and
//     out-of-order frames are counted and dropped (go-back-N keeps the
//     protocol state machine trivial, which is what you want when every
//     frame can be lost);
//   * every frame, reliable or not, piggybacks the cumulative ack (highest
//     in-order sequence received); a pure kAck frame is emitted when data
//     was accepted but nothing is heading back;
//   * unacked frames retransmit after `retransmit_base_ticks`, doubling per
//     attempt (capped), until `max_retries` — then the channel declares
//     itself broken and the owner must reconnect (client) or evict (server).
//
// The channel never blocks and owns no thread: Pump(now) is called from the
// reactor with the link's tick clock.

#ifndef ATK_SRC_SERVER_CHANNEL_H_
#define ATK_SRC_SERVER_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/observability/memory.h"
#include "src/server/frame.h"
#include "src/server/transport_sim.h"

namespace atk {
namespace server {

class Channel {
 public:
  struct Config {
    size_t window = 32;                 // Max unacked frames in flight.
    uint64_t retransmit_base_ticks = 4; // First retry after this many ticks.
    uint64_t max_backoff_ticks = 64;    // Backoff cap.
    int max_retries = 6;                // Then the channel is broken.
  };

  struct Stats {
    uint64_t sent = 0;
    uint64_t retransmits = 0;
    uint64_t acked = 0;
    uint64_t delivered = 0;
    uint64_t dup_dropped = 0;     // Already-seen sequence numbers.
    uint64_t ooo_dropped = 0;     // Sequence gaps (go-back-N refuses them).
    uint64_t stale_dropped = 0;   // Wrong session id (a previous epoch).
    uint64_t corrupt_dropped = 0; // CRC failures surfaced by the decoder.
  };

  Channel(SimulatedLink* link, LinkDir send_dir);
  Channel(SimulatedLink* link, LinkDir send_dir, Config config);

  // Stamps outgoing frames; inbound frames from other sessions are dropped
  // (stale epochs after a reconnect).  Installing a session replays any
  // sequenced frames that arrived in the same burst as the hello-ack (they
  // were held, not droppable: pre-attach we cannot yet tell the new session
  // from a stale one) — they surface from the next Pump.
  void set_session(uint32_t session);
  uint32_t session() const { return session_; }

  // Queues a reliable (sequenced, retransmitted-until-acked) frame.  The
  // frame's seq/ack/session fields are assigned here.  Frames beyond the
  // window wait in the backlog until acks open it.
  void SendReliable(Frame frame, uint64_t now);

  // Fire-and-forget (seq 0): hellos before a session exists, pure acks,
  // best-effort eviction notices.
  void SendUnsequenced(Frame frame, uint64_t now);

  // One reactor turn: drains the link's inbound bytes through the decoder,
  // processes acks, retransmits what is due, emits a pure ack if needed.
  // Returns the frames to deliver to the layer above, in order.
  std::vector<Frame> Pump(uint64_t now);

  // True once a frame exhausted its retries: the peer is unreachable.
  bool broken() const { return broken_; }

  // Frames queued but not yet acked (in flight + backlog): the send-queue
  // depth the server's backpressure policy watches.
  size_t pending() const { return in_flight_.size() + backlog_.size(); }

  // Resets to a fresh epoch (after reconnect): sequence counters, queues,
  // decoder scraps, and the broken flag.
  void Reset(uint32_t session);

  const Stats& stats() const { return stats_; }
  uint64_t last_in_order() const { return last_in_; }

  // Smoothed round-trip time in link ticks, EWMA with gain 1/8 over samples
  // taken when a never-retransmitted frame is acked (Karn's rule: a retried
  // frame's ack is ambiguous and never sampled).  0 until the first sample.
  uint64_t rtt_estimate_ticks() const { return srtt_x8_ >> 3; }
  bool has_rtt() const { return rtt_valid_; }

 private:
  struct Unacked {
    Frame frame;
    uint64_t last_sent = 0;
    int retries = 0;
  };

  void Transmit(const Frame& frame, uint64_t now);
  void FillWindow(uint64_t now);
  void ProcessAck(uint64_t ack, uint64_t now);
  // Go-back-N acceptance: true when `frame` is the next in-order sequence
  // (advances last_in_); duplicates and gaps are counted and refused.
  bool AcceptSequenced(const Frame& frame);

  SimulatedLink* link_;
  LinkDir send_dir_;
  Config config_;
  uint32_t session_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t last_in_ = 0;  // Highest in-order seq received.
  std::deque<Unacked> in_flight_;
  std::deque<Frame> backlog_;
  FrameDecoder decoder_;
  // Sequenced frames that raced ahead of the hello-ack naming our session:
  // held until set_session decides whether they were ours all along.
  std::deque<Frame> preattach_hold_;
  // Held frames accepted at set_session time, surfaced by the next Pump.
  std::vector<Frame> replayed_;
  uint64_t decoder_corrupt_seen_ = 0;
  uint64_t srtt_x8_ = 0;  // RTT EWMA, scaled by 8 (integer arithmetic).
  bool rtt_valid_ = false;
  bool broken_ = false;
  bool ack_owed_ = false;
  Stats stats_;
  // Bytes held by the send/retransmit queues (in_flight_ + backlog_),
  // charged to `server.mem.channel`: frames charge on SendReliable, release
  // when acked or on Reset.  Moving between the queues is charge-neutral.
  observability::ScopedCharge queue_mem_;
};

}  // namespace server
}  // namespace atk

#endif  // ATK_SRC_SERVER_CHANNEL_H_
