#include "src/server/frame.h"

#include <array>
#include <cstring>

namespace atk {
namespace server {
namespace {

// Slice-by-8 tables: table[0] is the classic bytewise table, table[k]
// advances a byte through k additional zero bytes, so eight input bytes
// fold into one table round.  Same polynomial, same CRC values — only the
// walk is wider.  The frame path checksums every payload twice (sender and
// receiver), which made the bytewise loop the hottest part of a 256-session
// fan-out.
std::array<std::array<uint32_t, 256>, 8> BuildCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
    tables[0][i] = crc;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t prev = tables[k - 1][i];
      tables[k][i] = (prev >> 8) ^ tables[0][prev & 0xFF];
    }
  }
  return tables;
}

void PutU32(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

std::string_view FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kHelloAck:
      return "hello-ack";
    case FrameType::kEdit:
      return "edit";
    case FrameType::kUpdate:
      return "update";
    case FrameType::kSnapshotReq:
      return "snapshot-req";
    case FrameType::kSnapshot:
      return "snapshot";
    case FrameType::kAck:
      return "ack";
    case FrameType::kEvict:
      return "evict";
    case FrameType::kBye:
      return "bye";
  }
  return "?";
}

uint32_t Crc32(std::string_view bytes, uint32_t seed) {
  static const std::array<std::array<uint32_t, 256>, 8> kTables = BuildCrcTables();
  uint32_t crc = ~seed;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(bytes.data());
  size_t n = bytes.size();
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = kTables[7][lo & 0xFF] ^ kTables[6][(lo >> 8) & 0xFF] ^
          kTables[5][(lo >> 16) & 0xFF] ^ kTables[4][lo >> 24] ^
          kTables[3][hi & 0xFF] ^ kTables[2][(hi >> 8) & 0xFF] ^
          kTables[1][(hi >> 16) & 0xFF] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderSize + frame.payload.size());
  PutU32(out, kFrameMagic);
  PutU32(out, static_cast<uint32_t>(frame.payload.size()));
  out.push_back(static_cast<char>(frame.type));
  out.push_back(0);  // flags
  PutU32(out, frame.session);
  PutU64(out, frame.seq);
  PutU64(out, frame.ack);
  PutU32(out, Crc32(frame.payload));
  // The header CRC covers [4, 34) — every field the receiver acts on before
  // the payload arrives, the payload CRC included — so a damaged length
  // prefix is caught up front instead of wedging the decoder.
  PutU32(out, Crc32(std::string_view(out).substr(4)));
  out += frame.payload;
  return out;
}

void FrameDecoder::Feed(std::string_view bytes) {
  Compact();
  buffer_.append(bytes.data(), bytes.size());
}

void FrameDecoder::Compact() {
  if (consumed_ > 0 && consumed_ >= buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

bool FrameDecoder::Poll(Frame* out) {
  while (true) {
    size_t avail = buffer_.size() - consumed_;
    if (avail < kFrameHeaderSize) {
      return false;
    }
    const char* base = buffer_.data() + consumed_;
    if (GetU32(base) != kFrameMagic) {
      // Re-sync: skip to the next candidate magic byte.
      size_t skip = 1;
      while (skip < avail && static_cast<unsigned char>(base[skip]) != 0x41) {
        ++skip;
      }
      consumed_ += skip;
      skipped_bytes_ += skip;
      continue;
    }
    // The header CRC is verified before the length prefix is trusted: a
    // corrupted length with a single whole-frame CRC would park the decoder
    // waiting for a phantom payload while every later frame feeds the void.
    if (Crc32(std::string_view(base + 4, 30)) != GetU32(base + 34)) {
      ++corrupt_frames_;
      consumed_ += 4;  // Drop this magic; re-sync on the next.
      skipped_bytes_ += 4;
      continue;
    }
    uint32_t payload_len = GetU32(base + 4);
    if (avail < kFrameHeaderSize + payload_len) {
      return false;  // Wait for the rest; the length is authenticated.
    }
    if (Crc32(std::string_view(base + kFrameHeaderSize, payload_len)) !=
        GetU32(base + 30)) {
      // Damage in the payload only: the trusted length lets us skip the
      // exact frame instead of hunting for the next magic.
      ++corrupt_frames_;
      consumed_ += kFrameHeaderSize + payload_len;
      skipped_bytes_ += kFrameHeaderSize + payload_len;
      continue;
    }
    out->type = static_cast<FrameType>(static_cast<unsigned char>(base[8]));
    out->session = GetU32(base + 10);
    out->seq = GetU64(base + 14);
    out->ack = GetU64(base + 22);
    out->payload.assign(base + kFrameHeaderSize, payload_len);
    consumed_ += kFrameHeaderSize + payload_len;
    Compact();
    return true;
  }
}

std::vector<Frame> FrameDecoder::Drain() {
  std::vector<Frame> frames;
  Frame frame;
  while (Poll(&frame)) {
    frames.push_back(std::move(frame));
    frame = Frame{};
  }
  return frames;
}

}  // namespace server
}  // namespace atk
