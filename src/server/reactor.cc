#include "src/server/reactor.h"

#include <algorithm>

namespace atk {
namespace server {

int Reactor::AddSource(ReadyFn ready, Callback on_ready) {
  Source source;
  source.id = next_id_++;
  source.ready = std::move(ready);
  source.on_ready = std::move(on_ready);
  sources_.push_back(std::move(source));
  return sources_.back().id;
}

void Reactor::RemoveSource(int id) {
  sources_.erase(std::remove_if(sources_.begin(), sources_.end(),
                                [id](const Source& s) { return s.id == id; }),
                 sources_.end());
}

int Reactor::AddTimer(uint64_t deadline, Callback fire) {
  Timer timer;
  timer.deadline = deadline;
  timer.id = next_id_++;
  timer.fire = std::move(fire);
  int id = timer.id;
  timers_.emplace(deadline, std::move(timer));
  return id;
}

void Reactor::CancelTimer(int id) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.id == id) {
      timers_.erase(it);
      return;
    }
  }
}

int Reactor::Advance(uint64_t now) {
  int fired = 0;
  while (!timers_.empty() && timers_.begin()->first <= now) {
    // Detach before firing: the callback may add timers (rescheduling).
    Callback fire = std::move(timers_.begin()->second.fire);
    timers_.erase(timers_.begin());
    fire();
    ++fired;
  }
  return fired;
}

int Reactor::PumpOnce() {
  int dispatched = 0;
  // Snapshot ids: callbacks may add/remove sources mid-scan.
  std::vector<int> ids;
  ids.reserve(sources_.size());
  for (const Source& source : sources_) {
    ids.push_back(source.id);
  }
  for (int id : ids) {
    auto it = std::find_if(sources_.begin(), sources_.end(),
                           [id](const Source& s) { return s.id == id; });
    if (it == sources_.end()) {
      continue;  // Removed by an earlier callback this pump.
    }
    if (it->ready && it->ready()) {
      // Copy the callback: dispatch may invalidate the iterator.
      Callback on_ready = it->on_ready;
      on_ready();
      ++dispatched;
    }
  }
  return dispatched;
}

}  // namespace server
}  // namespace atk
