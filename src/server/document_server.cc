#include "src/server/document_server.h"

#include <algorithm>

#include "src/base/data_object.h"
#include "src/components/modules.h"
#include "src/observability/observability.h"
#include "src/server/flow_trace.h"

namespace atk {
namespace server {
namespace {

using observability::Counter;
using observability::Gauge;
using observability::Histogram;
using observability::MetricsRegistry;

Counter& EvictionCounter() {
  static Counter& evictions = MetricsRegistry::Instance().counter("server.sessions.evicted");
  return evictions;
}

// How often a pending eviction notice is re-sent to a client that has not
// re-attached yet.
constexpr uint64_t kEvictNoticeIntervalTicks = 32;

// The server's logical timeline in the trace (sessions get their own; see
// ClientSession::EnsureTrack).
uint32_t ServerTrack() {
  static uint32_t track = observability::Tracer::Instance().RegisterTrack("server");
  return track;
}

}  // namespace

DocumentServer::DocumentServer() : DocumentServer(Config()) {}

DocumentServer::DocumentServer(Config config) : config_(config) {
  // Hosted documents serialize/parse through the loader's text module.
  RegisterTextModule();
}

DocumentServer::~DocumentServer() {
  // Observers must detach before the documents they watch are destroyed.
  for (auto& [name, doc] : docs_) {
    (void)name;
    if (doc->data != nullptr && doc->fan_out != nullptr) {
      doc->data->RemoveObserver(doc->fan_out.get());
    }
  }
}

TextData* DocumentServer::HostDocument(const std::string& name,
                                       std::unique_ptr<TextData> doc) {
  auto hosted = std::make_unique<HostedDoc>();
  hosted->name = name;
  hosted->data = std::move(doc);
  hosted->fan_out = std::make_unique<FanOut>(this, hosted.get());
  hosted->data->AddObserver(hosted->fan_out.get());
  TextData* raw = hosted->data.get();
  auto it = docs_.find(name);
  if (it != docs_.end() && it->second->data != nullptr) {
    it->second->data->RemoveObserver(it->second->fan_out.get());
  }
  docs_[name] = std::move(hosted);
  return raw;
}

TextData* DocumentServer::document(const std::string& name) {
  HostedDoc* doc = FindDoc(name);
  return doc != nullptr ? doc->data.get() : nullptr;
}

uint64_t DocumentServer::version(const std::string& name) const {
  auto it = docs_.find(name);
  return it != docs_.end() ? it->second->version : 0;
}

std::vector<std::string> DocumentServer::document_names() const {
  std::vector<std::string> names;
  names.reserve(docs_.size());
  for (const auto& [name, doc] : docs_) {
    (void)doc;
    names.push_back(name);
  }
  return names;
}

DocumentServer::HostedDoc* DocumentServer::FindDoc(const std::string& name) {
  auto it = docs_.find(name);
  return it != docs_.end() ? it->second.get() : nullptr;
}

int DocumentServer::AttachLink(SimulatedLink* link) {
  auto endpoint = std::make_unique<Endpoint>();
  endpoint->id = static_cast<int>(endpoints_.size()) + 1;
  endpoint->link = link;
  endpoint->channel =
      std::make_unique<Channel>(link, LinkDir::kServerToClient, config_.channel);
  Endpoint* raw = endpoint.get();
  endpoint->reactor_source = reactor_.AddSource(
      [raw]() {
        return raw->link->HasDeliverable(LinkDir::kClientToServer) ||
               raw->channel->pending() > 0 ||
               (raw->evict_pending && raw->link->now() >= raw->next_evict_notice_at);
      },
      [this, raw]() { PumpEndpoint(*raw); });
  const std::string prefix = "server.endpoint_" + std::to_string(endpoint->id) + ".";
  MetricsRegistry& registry = MetricsRegistry::Instance();
  endpoint->rtt_gauge = &registry.gauge(prefix + "rtt_ticks");
  endpoint->retransmit_gauge = &registry.gauge(prefix + "retransmits");
  endpoint->queue_gauge = &registry.gauge(prefix + "queue_depth");
  endpoint->epoch_gauge = &registry.gauge(prefix + "epoch");
  endpoints_.push_back(std::move(endpoint));
  return endpoints_.back()->id;
}

void DocumentServer::DetachLink(int endpoint_id) {
  for (auto it = endpoints_.begin(); it != endpoints_.end(); ++it) {
    if ((*it)->id == endpoint_id) {
      reactor_.RemoveSource((*it)->reactor_source);
      endpoints_.erase(it);
      return;
    }
  }
}

size_t DocumentServer::session_count() const {
  return static_cast<size_t>(
      std::count_if(endpoints_.begin(), endpoints_.end(),
                    [](const std::unique_ptr<Endpoint>& e) { return e->attached; }));
}

size_t DocumentServer::pending_evictions() const {
  return static_cast<size_t>(std::count_if(
      endpoints_.begin(), endpoints_.end(),
      [](const std::unique_ptr<Endpoint>& e) { return e->evict_pending; }));
}

size_t DocumentServer::pending_frames() const {
  size_t total = 0;
  for (const std::unique_ptr<Endpoint>& endpoint : endpoints_) {
    total += endpoint->channel->pending();
  }
  return total;
}

void DocumentServer::PumpOnce() {
  observability::TrackScope track(observability::Enabled() ? ServerTrack() : 0);
  ATK_TRACE_SPAN("server.reactor.pump");
  reactor_.PumpOnce();
}

void DocumentServer::PumpEndpoint(Endpoint& endpoint) {
  uint64_t now = endpoint.link->now();
  std::vector<Frame> frames = endpoint.channel->Pump(now);
  static Counter& received = MetricsRegistry::Instance().counter("server.frames.received");
  received.Add(frames.size());
  for (const Frame& frame : frames) {
    switch (frame.type) {
      case FrameType::kHello:
        HandleHello(endpoint, frame);
        break;
      case FrameType::kEdit:
        HandleEdit(endpoint, frame);
        break;
      case FrameType::kSnapshotReq: {
        uint64_t have = 0;
        if (!DecodeSnapshotReq(frame.payload, &have)) {
          ++stats_.malformed_payloads;
          break;
        }
        HostedDoc* doc = FindDoc(endpoint.doc);
        if (endpoint.attached && doc != nullptr) {
          SendSnapshot(endpoint, *doc);
        }
        break;
      }
      case FrameType::kBye:
        endpoint.attached = false;
        endpoint.session = 0;
        endpoint.evict_pending = false;  // A clean goodbye needs no notices.
        endpoint.channel->Reset(0);
        break;
      default:
        break;  // kAck handled inside the channel; server ignores the rest.
    }
  }
  // Degradation policy, checked every pump: a session that exhausted its
  // retransmit deadline or overflowed its send queue is evicted.
  if (endpoint.attached) {
    if (endpoint.channel->broken()) {
      Evict(endpoint, "retransmit deadline exhausted (unreachable client)");
    } else if (endpoint.channel->pending() > config_.max_send_queue) {
      Evict(endpoint, "send queue overflow (backpressure limit " +
                          std::to_string(config_.max_send_queue) + ")");
    }
  }
  // Re-send a pending eviction notice: the original was best-effort and an
  // idle client that never heard it would keep a stale replica forever.
  if (endpoint.evict_pending && now >= endpoint.next_evict_notice_at) {
    Frame evict;
    evict.type = FrameType::kEvict;
    evict.payload = EncodeEvict(endpoint.evict_reason);
    endpoint.channel->SendUnsequenced(std::move(evict), now);
    endpoint.next_evict_notice_at = now + kEvictNoticeIntervalTicks;
  }
  // Publish per-session telemetry (four relaxed stores; the inspector's
  // server panel and check_perf read these from the metrics snapshot).
  endpoint.rtt_gauge->Set(static_cast<int64_t>(endpoint.channel->rtt_estimate_ticks()));
  endpoint.retransmit_gauge->Set(static_cast<int64_t>(endpoint.channel->stats().retransmits));
  endpoint.queue_gauge->Set(static_cast<int64_t>(endpoint.channel->pending()));
  endpoint.epoch_gauge->Set(static_cast<int64_t>(endpoint.epoch));
}

void DocumentServer::HandleHello(Endpoint& endpoint, const Frame& frame) {
  HelloPayload hello;
  if (!DecodeHello(frame.payload, &hello)) {
    ++stats_.malformed_payloads;
    return;
  }
  HostedDoc* doc = FindDoc(hello.doc);
  if (doc == nullptr) {
    // Unknown document: refuse the attach explicitly so the client stops
    // retrying into the void.
    Frame evict;
    evict.type = FrameType::kEvict;
    evict.payload = EncodeEvict("no such document: " + hello.doc);
    endpoint.channel->SendUnsequenced(std::move(evict), endpoint.link->now());
    return;
  }
  if (endpoint.attached && endpoint.client == hello.client &&
      endpoint.epoch == hello.epoch) {
    // A retried hello for the session we already built (our hello-ack was
    // lost): re-ack; the snapshot is already in the retransmit queue.
    Frame ack;
    ack.type = FrameType::kHelloAck;
    HelloAckPayload payload;
    payload.session = endpoint.session;
    payload.version = doc->version;
    ack.payload = EncodeHelloAck(payload);
    endpoint.channel->SendUnsequenced(std::move(ack), endpoint.link->now());
    return;
  }
  if (endpoint.attached) {
    ++stats_.sessions_reconnected;
    static Counter& reconnects =
        MetricsRegistry::Instance().counter("server.sessions.reconnected");
    reconnects.Add(1);
  }
  // Fresh attach or reconnect: new session id, new channel epoch.
  endpoint.session = next_session_++;
  endpoint.epoch = hello.epoch;
  endpoint.client = hello.client;
  endpoint.doc = hello.doc;
  endpoint.attached = true;
  endpoint.evict_pending = false;
  endpoint.channel->Reset(endpoint.session);
  ++stats_.sessions_attached;
  static Counter& attached = MetricsRegistry::Instance().counter("server.sessions.attached");
  attached.Add(1);
  Frame ack;
  ack.type = FrameType::kHelloAck;
  HelloAckPayload payload;
  payload.session = endpoint.session;
  payload.version = doc->version;
  ack.payload = EncodeHelloAck(payload);
  endpoint.channel->SendUnsequenced(std::move(ack), endpoint.link->now());
  // The resync: the full document state as of now rides the reliable
  // channel; edits applied after this point fan out as updates on top.
  SendSnapshot(endpoint, *doc);
}

void DocumentServer::HandleEdit(Endpoint& endpoint, const Frame& frame) {
  if (!endpoint.attached) {
    // The client still believes in a session we tore down — the eviction
    // notice is best-effort and may have been lost.  Re-send it so the
    // client reconnects instead of editing into the void forever.
    Frame evict;
    evict.type = FrameType::kEvict;
    evict.payload = EncodeEvict("session no longer attached; reconnect");
    endpoint.channel->SendUnsequenced(std::move(evict), endpoint.link->now());
    return;
  }
  EditPayload edit;
  if (!DecodeEdit(frame.payload, &edit)) {
    ++stats_.malformed_payloads;
    static Counter& malformed =
        MetricsRegistry::Instance().counter("server.edits.malformed");
    malformed.Add(1);
    return;
  }
  HostedDoc* doc = FindDoc(endpoint.doc);
  if (doc == nullptr) {
    return;
  }
  // The edit's causal envelope: the apply span (and the fan-out spans below
  // it on this stack) joins the flow the originating client opened, and the
  // observer-driven fan-out reads the members to re-stamp outgoing updates.
  observability::FlowScope flow_scope(edit.flow);
  current_flow_ = edit.flow;
  current_origin_ns_ = edit.origin_ns;
  ATK_TRACE_SPAN("server.edit.apply");
  ++stats_.edits_applied;
  static Counter& applied = MetricsRegistry::Instance().counter("server.edits.applied");
  applied.Add(1);
  // Clamp against the authoritative state; the fan-out is rebuilt from the
  // Change record, so every replica sees the *effective* op.
  int64_t size = doc->data->size();
  if (edit.op.kind == EditOp::Kind::kInsert) {
    int64_t pos = std::min(edit.op.pos, size);
    doc->data->InsertString(pos, edit.op.text);
  } else {
    int64_t pos = std::min(edit.op.pos, size);
    doc->data->DeleteRange(pos, edit.op.len);
  }
  // The observer (FanOut::ObservedChanged) has now bumped the version and
  // queued updates for every attached session, this one included — the
  // originator's echo doubles as its apply confirmation.
  current_flow_ = 0;
  current_origin_ns_ = 0;
}

void DocumentServer::FanOut::ObservedChanged(Observable* changed, const Change& change) {
  (void)changed;
  if (change.kind == Change::Kind::kDestroyed) {
    return;
  }
  ++doc_->version;
  if (change.kind == Change::Kind::kInserted) {
    EditOp op;
    op.kind = EditOp::Kind::kInsert;
    op.pos = change.pos;
    op.len = change.added;
    op.text = doc_->data->GetText(change.pos, change.added);
    // An insert that carries an embedded-object anchor cannot be replayed
    // as text; fall back to a full-state fan-out.
    if (op.text.find(TextData::kObjectChar) == std::string::npos) {
      server_->FanOutUpdate(*doc_, op);
      return;
    }
  } else if (change.kind == Change::Kind::kDeleted) {
    EditOp op;
    op.kind = EditOp::Kind::kDelete;
    op.pos = change.pos;
    op.len = change.removed;
    server_->FanOutUpdate(*doc_, op);
    return;
  }
  // kModified / kReplaced / kAttributes / anchor inserts: not expressible
  // as one text op — resync everyone from the full state.
  server_->FanOutSnapshot(*doc_);
}

void DocumentServer::FanOutUpdate(HostedDoc& doc, const EditOp& op) {
  ATK_TRACE_SPAN("server.fanout.update");
  static Histogram& latency =
      MetricsRegistry::Instance().histogram("server.fanout.latency_us");
  static Counter& fanned = MetricsRegistry::Instance().counter("server.updates.fanned_out");
  uint64_t start_ns = observability::MonotonicNanos();
  int recipients = 0;
  // Links tick in lockstep, so consecutive endpoints almost always share a
  // sent_tick and the encoded payload can be reused instead of rebuilt.
  std::string encoded;
  uint64_t encoded_tick = 0;
  for (std::unique_ptr<Endpoint>& endpoint : endpoints_) {
    if (!endpoint->attached || endpoint->doc != doc.name) {
      continue;
    }
    uint64_t now = endpoint->link->now();
    if (encoded.empty() || encoded_tick != now) {
      EditPayload payload;
      payload.version = doc.version;
      payload.sent_tick = now;
      payload.flow = current_flow_;
      payload.origin_ns = current_origin_ns_;
      payload.op = op;
      encoded = EncodeEdit(payload);
      encoded_tick = now;
    }
    Frame frame;
    frame.type = FrameType::kUpdate;
    frame.flow = current_flow_;
    frame.payload = encoded;
    {
      // One span per recipient session: the trace shows which sessions the
      // flow fanned out to and what each enqueue cost.
      observability::ScopedSpan span("server.fanout.session");
      span.set_arg(endpoint->session);
      endpoint->channel->SendReliable(std::move(frame), endpoint->link->now());
    }
    ++recipients;
    ++stats_.updates_fanned_out;
    fanned.Add(1);
  }
  latency.Observe((observability::MonotonicNanos() - start_ns) / 1000);
  // The last replica apply closes the flow into
  // server.propagation.latency_us (see src/server/flow_trace.h).
  FlowTracker::Instance().BeginFlow(current_flow_, current_origin_ns_, recipients);
}

void DocumentServer::FanOutSnapshot(HostedDoc& doc) {
  for (std::unique_ptr<Endpoint>& endpoint : endpoints_) {
    if (endpoint->attached && endpoint->doc == doc.name) {
      SendSnapshot(*endpoint, doc);
    }
  }
}

void DocumentServer::SendSnapshot(Endpoint& endpoint, HostedDoc& doc) {
  ATK_TRACE_SPAN("server.snapshot.send");
  SnapshotPayload payload;
  payload.version = doc.version;
  payload.document = WriteDocument(*doc.data);
  payload.docsum = SnapshotSum(payload.version, payload.document);
  Frame frame;
  frame.type = FrameType::kSnapshot;
  frame.payload = EncodeSnapshot(payload);
  endpoint.channel->SendReliable(std::move(frame), endpoint.link->now());
  ++stats_.snapshots_sent;
  static Counter& snapshots = MetricsRegistry::Instance().counter("server.snapshots.sent");
  snapshots.Add(1);
}

void DocumentServer::Evict(Endpoint& endpoint, const std::string& reason) {
  Frame evict;
  evict.type = FrameType::kEvict;
  evict.payload = EncodeEvict(reason);
  // Best effort: the client may be unreachable — that is often why it is
  // being evicted.  Sent unsequenced so no retransmit state lingers.
  endpoint.channel->SendUnsequenced(std::move(evict), endpoint.link->now());
  diagnostics_.push_back(Diagnostic{
      StatusCode::kUnavailable, 0,
      "session " + std::to_string(endpoint.session) + " (" + endpoint.client +
          ") evicted: " + reason});
  endpoint.attached = false;
  endpoint.session = 0;
  endpoint.channel->Reset(0);
  // Keep nudging the client until it re-attaches: the notice above may be
  // eaten by the very faults that caused the eviction.
  endpoint.evict_pending = true;
  endpoint.evict_reason = reason;
  endpoint.next_evict_notice_at = endpoint.link->now() + kEvictNoticeIntervalTicks;
  ++stats_.sessions_evicted;
  EvictionCounter().Add(1);
}

}  // namespace server
}  // namespace atk
