// The compound-document server: many sessions, one object space (PR 6).
//
// Hosts shared TextData documents behind a readiness reactor and serves N
// client sessions over the framed transport.  The §2 observer mechanism is
// the fan-out spine: the server registers one observer per hosted document,
// and *any* mutation of the document — an edit applied for a session, or
// direct programmatic mutation — raises a Change that the observer turns
// into versioned kUpdate frames for every attached session.  Views on the
// client side are pure observers of the replica, so the whole pipeline is
// document -> observer -> wire -> replica -> observer -> view, with the
// delayed-update machinery untouched at both ends.
//
// Robustness is the spine, not an afterthought:
//   * edits arrive over reliable channels that survive drop / duplicate /
//     reorder / corruption (src/server/channel.h);
//   * a session whose send queue exceeds the backpressure limit, or whose
//     channel exhausts its retransmit deadline, is evicted with a
//     Diagnostic (server.sessions.evicted) — one slow client cannot wedge
//     the fan-out for everyone else;
//   * a reconnecting client resyncs through a §5-format snapshot carrying a
//     content checksum, salvageable when damaged at rest.

#ifndef ATK_SRC_SERVER_DOCUMENT_SERVER_H_
#define ATK_SRC_SERVER_DOCUMENT_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/class_system/observable.h"
#include "src/class_system/status.h"
#include "src/components/text/text_data.h"
#include "src/server/channel.h"
#include "src/server/protocol.h"
#include "src/server/reactor.h"
#include "src/server/transport_sim.h"

namespace atk {
namespace observability {
class Gauge;
}  // namespace observability

namespace server {

class DocumentServer {
 public:
  struct Config {
    Channel::Config channel;
    // Backpressure: a session whose unacked+backlogged frame count exceeds
    // this is evicted (one stuck client must not grow without bound).
    size_t max_send_queue = 256;
  };

  struct Stats {
    uint64_t edits_applied = 0;
    uint64_t updates_fanned_out = 0;
    uint64_t snapshots_sent = 0;
    uint64_t sessions_attached = 0;
    uint64_t sessions_evicted = 0;
    uint64_t sessions_reconnected = 0;
    uint64_t malformed_payloads = 0;
  };

  DocumentServer();
  explicit DocumentServer(Config config);
  ~DocumentServer();

  // ---- Documents ----
  // Hosts `doc` under `name` (takes ownership, registers the fan-out
  // observer).  Replaces any previous document of that name.
  TextData* HostDocument(const std::string& name, std::unique_ptr<TextData> doc);
  TextData* document(const std::string& name);
  uint64_t version(const std::string& name) const;
  std::vector<std::string> document_names() const;

  // ---- Endpoints ----
  // Registers the server side of `link` with the reactor; the client on the
  // other end attaches by sending kHello.  Returns the endpoint id.
  int AttachLink(SimulatedLink* link);
  void DetachLink(int endpoint_id);
  size_t session_count() const;  // Endpoints with an attached session.
  // Frames queued or unacked across all endpoints: zero means the server has
  // nothing left to deliver (quiescence detection must include this — an
  // update sitting out a retransmit backoff leaves the wire silent).
  size_t pending_frames() const;
  // Endpoints owing the client an eviction notice (the client has not yet
  // re-attached, so it may still hold a stale replica believing itself
  // synced).  Nonzero means the system is not quiescent even if the wire is
  // silent: the next notice retry is up to a full interval away.
  size_t pending_evictions() const;

  // ---- The reactor pump ----
  // One readiness scan: every endpoint with deliverable frames or pending
  // retransmissions is pumped; broken/overflowing sessions are evicted.
  void PumpOnce();

  const Stats& stats() const { return stats_; }
  // Evictions and protocol damage, for logs and tests.
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

 private:
  struct HostedDoc;

  // Observer living on each hosted document: converts Change records into
  // kUpdate fan-out (or snapshot fan-out for non-incremental changes).
  class FanOut : public Observer {
   public:
    FanOut(DocumentServer* server, HostedDoc* doc) : server_(server), doc_(doc) {}
    void ObservedChanged(Observable* changed, const Change& change) override;

   private:
    DocumentServer* server_;
    HostedDoc* doc_;
  };

  struct HostedDoc {
    std::string name;
    std::unique_ptr<TextData> data;
    uint64_t version = 0;
    std::unique_ptr<FanOut> fan_out;
  };

  struct Endpoint {
    int id = 0;
    SimulatedLink* link = nullptr;
    std::unique_ptr<Channel> channel;
    uint32_t session = 0;     // 0 = no session attached yet.
    uint64_t epoch = 0;       // Client attach epoch (dedups retried hellos).
    std::string client;
    std::string doc;
    bool attached = false;
    int reactor_source = 0;
    // Eviction notices are unsequenced and the transport may eat them; an
    // idle evicted client would otherwise keep a stale replica forever and
    // never learn to reconnect.  While pending, the notice is re-sent
    // periodically until the client shows up with a fresh hello.
    bool evict_pending = false;
    uint64_t next_evict_notice_at = 0;
    std::string evict_reason;
    // Per-session telemetry published into MetricsRegistry as
    // server.endpoint_<id>.{rtt_ticks,retransmits,queue_depth,epoch}.
    // Cached here so each pump pays four relaxed stores, not map lookups.
    observability::Gauge* rtt_gauge = nullptr;
    observability::Gauge* retransmit_gauge = nullptr;
    observability::Gauge* queue_gauge = nullptr;
    observability::Gauge* epoch_gauge = nullptr;
  };

  void PumpEndpoint(Endpoint& endpoint);
  void HandleHello(Endpoint& endpoint, const Frame& frame);
  void HandleEdit(Endpoint& endpoint, const Frame& frame);
  void SendSnapshot(Endpoint& endpoint, HostedDoc& doc);
  void Evict(Endpoint& endpoint, const std::string& reason);
  void FanOutUpdate(HostedDoc& doc, const EditOp& op);
  void FanOutSnapshot(HostedDoc& doc);
  HostedDoc* FindDoc(const std::string& name);

  Config config_;
  Reactor reactor_;
  std::map<std::string, std::unique_ptr<HostedDoc>> docs_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  uint32_t next_session_ = 1;
  Stats stats_;
  std::vector<Diagnostic> diagnostics_;
  // The causal envelope of the edit currently being applied (HandleEdit →
  // observer → FanOutUpdate run on one stack, so the observer's fan-out can
  // propagate the inbound flow without threading it through Change records).
  uint64_t current_flow_ = 0;
  uint64_t current_origin_ns_ = 0;
};

}  // namespace server
}  // namespace atk

#endif  // ATK_SRC_SERVER_DOCUMENT_SERVER_H_
