#include "src/server/client_session.h"

#include <algorithm>
#include <utility>

#include "src/base/data_object.h"
#include "src/components/modules.h"
#include "src/observability/observability.h"
#include "src/robustness/salvage.h"
#include "src/server/flow_trace.h"

namespace atk {
namespace server {
namespace {

using observability::Counter;
using observability::MetricsRegistry;

uint64_t Backoff(uint64_t base, uint64_t cap, int retries) {
  uint64_t ticks = base;
  for (int i = 0; i < retries && ticks < cap; ++i) {
    ticks *= 2;
  }
  return std::min(ticks, cap);
}

// Parses §5 bytes into a TextData replica; nullptr when the bytes do not
// parse clean or the root is not text.
std::unique_ptr<TextData> ParseReplica(const std::string& bytes) {
  ReadContext context;
  std::unique_ptr<DataObject> root = ReadDocument(bytes, &context);
  if (root == nullptr || !context.ok()) {
    return nullptr;
  }
  if (ObjectCast<TextData>(root.get()) == nullptr) {
    return nullptr;
  }
  return std::unique_ptr<TextData>(static_cast<TextData*>(root.release()));
}

}  // namespace

ClientSession::ClientSession(std::string client_name, std::string doc_name,
                             SimulatedLink* link)
    : ClientSession(std::move(client_name), std::move(doc_name), link, Config()) {}

ClientSession::ClientSession(std::string client_name, std::string doc_name,
                             SimulatedLink* link, Config config)
    : client_name_(std::move(client_name)),
      doc_name_(std::move(doc_name)),
      link_(link),
      config_(config),
      channel_(link, LinkDir::kClientToServer, config.channel) {
  // Snapshots parse through the loader; the text module must be declared
  // before the first resync regardless of which binary hosts the client.
  RegisterTextModule();
}

void ClientSession::Connect(uint64_t now) {
  // The channel resets *before* the hello goes out; the HelloAck then only
  // installs the session id.  Resetting on ack instead would race the
  // snapshot the server sends in the same burst (its seq would be forgotten
  // and every later update refused as out-of-order).
  ++epoch_;
  if (epoch_ > 1) {
    ++stats_.reconnects;
    static Counter& reconnects =
        MetricsRegistry::Instance().counter("client.session.reconnects");
    reconnects.Add(1);
  }
  channel_.Reset(0);
  state_ = State::kConnecting;
  synced_ = false;
  snap_req_pending_ = false;
  snap_req_retries_ = 0;
  applied_version_ = 0;
  hello_retries_ = 0;
  SendHello(now);
}

void ClientSession::SendHello(uint64_t now) {
  HelloPayload hello;
  hello.client = client_name_;
  hello.doc = doc_name_;
  hello.version = applied_version_;
  hello.epoch = epoch_;
  Frame frame;
  frame.type = FrameType::kHello;
  frame.payload = EncodeHello(hello);
  channel_.SendUnsequenced(std::move(frame), now);
  next_hello_at_ =
      now + Backoff(config_.hello_base_ticks, config_.hello_max_ticks, hello_retries_);
}

void ClientSession::SubmitEdit(EditOp op) {
  PendingEdit pending;
  pending.op = std::move(op);
  if (observability::Enabled() && observability::FlowsEnabled()) {
    // The edit origin: allocate the flow id here (the keystroke), not at
    // flush time, so queueing delay inside the outbox is part of the
    // propagation latency.  The zero-length submit span marks the origin on
    // this session's track.
    pending.flow = observability::NextFlowId();
    pending.origin_ns = observability::MonotonicNanos();
    observability::TrackScope track(EnsureTrack());
    observability::FlowScope flow(pending.flow);
    observability::ScopedSpan span("client.edit.submit");
  }
  outbox_.push_back(std::move(pending));
}

uint32_t ClientSession::EnsureTrack() {
  if (!track_registered_) {
    trace_track_ =
        observability::Tracer::Instance().RegisterTrack("session." + client_name_);
    track_registered_ = true;
  }
  return trace_track_;
}

void ClientSession::Pump(uint64_t now) {
  observability::TrackScope track(observability::Enabled() ? EnsureTrack() : 0);
  // A severed link is the client's cue to re-dial: restore the transport,
  // then run the attach handshake from scratch under a fresh epoch.
  if (!link_->connected()) {
    link_->Restore();
    Connect(now);
    return;
  }
  if (state_ == State::kIdle) {
    return;
  }
  if (channel_.broken()) {
    // Retransmit deadline exhausted mid-session: full reconnect.
    Connect(now);
    return;
  }
  for (Frame& frame : channel_.Pump(now)) {
    switch (frame.type) {
      case FrameType::kHelloAck: {
        HelloAckPayload ack;
        if (!DecodeHelloAck(frame.payload, &ack)) {
          break;
        }
        channel_.set_session(ack.session);
        state_ = State::kAttached;
        break;
      }
      case FrameType::kUpdate:
        HandleUpdate(frame, now);
        break;
      case FrameType::kSnapshot:
        HandleSnapshot(frame, now);
        break;
      case FrameType::kEvict: {
        std::string reason;
        if (DecodeEvict(frame.payload, &reason)) {
          evict_reason_ = reason;
        }
        ++stats_.evictions;
        state_ = State::kEvicted;
        synced_ = false;
        if (config_.auto_reconnect) {
          Connect(now);
          return;
        }
        break;
      }
      default:
        break;
    }
  }
  // Hello retry with backoff; past the deadline the whole attach restarts
  // under a new epoch (the old one may be wedged server-side).  The deadline
  // runs until the first snapshot lands, not merely until HelloAck: a stale
  // delayed ack from a previous epoch can install a dead session id, and
  // only the epoch bump gets out of that hole.
  bool awaiting_sync = state_ == State::kConnecting ||
                       (state_ == State::kAttached && !synced_ && !degraded_);
  if (awaiting_sync && now >= next_hello_at_) {
    if (hello_retries_ >= config_.hello_max_retries) {
      Connect(now);
      return;
    }
    ++hello_retries_;
    ++stats_.hello_retries;
    static Counter& retries =
        MetricsRegistry::Instance().counter("client.hello.retries");
    retries.Add(1);
    SendHello(now);
  }
  // Snapshot-request retry: the previous request (or its answer) may have
  // been eaten by the link.
  if (snap_req_pending_ && state_ == State::kAttached && now >= next_snap_req_at_) {
    RequestSnapshot(now);
  }
  FlushOutbox(now);
}

void ClientSession::RequestSnapshot(uint64_t now) {
  Frame frame;
  frame.type = FrameType::kSnapshotReq;
  frame.payload = EncodeSnapshotReq(applied_version_);
  channel_.SendReliable(std::move(frame), now);
  ++stats_.snapshot_requests;
  snap_req_pending_ = true;
  next_snap_req_at_ =
      now + Backoff(config_.snap_req_base_ticks, config_.snap_req_max_ticks,
                    snap_req_retries_);
  ++snap_req_retries_;
}

void ClientSession::HandleUpdate(const Frame& frame, uint64_t now) {
  EditPayload update;
  if (!DecodeEdit(frame.payload, &update)) {
    return;  // Damaged payload; the version gap triggers a resync below.
  }
  if (!synced_) {
    // Updates racing ahead of the first snapshot: the snapshot that is still
    // in flight already contains them.
    return;
  }
  if (update.version <= applied_version_) {
    return;
  }
  if (update.version != applied_version_ + 1) {
    // Version gap (an update was undecodable, or a snapshot we refused).
    if (!snap_req_pending_) {
      snap_req_retries_ = 0;
      RequestSnapshot(now);
    }
    return;
  }
  if (replica_ == nullptr) {
    return;
  }
  {
    // The terminal hop of the edit's causal flow: the replica apply span on
    // this session's track (scopes are no-ops when update.flow is 0).
    observability::FlowScope flow(update.flow);
    observability::ScopedSpan span("client.update.apply");
    span.set_arg(channel_.session());
    if (update.op.kind == EditOp::Kind::kInsert) {
      replica_->InsertString(update.op.pos, update.op.text);
    } else {
      replica_->DeleteRange(update.op.pos, update.op.len);
    }
  }
  applied_version_ = update.version;
  ++stats_.updates_applied;
  // Fan-out latency as the replica saw it: ticks between the server stamping
  // the update and this apply (retransmits and backoff included).
  static observability::Histogram& lag =
      MetricsRegistry::Instance().histogram("client.update.lag_ticks");
  lag.Observe(now >= update.sent_tick ? now - update.sent_tick : 0);
  if (update.flow != 0) {
    // The last expected replica closes the flow into
    // server.propagation.latency_us.
    FlowTracker::Instance().ReplicaApplied(update.flow, observability::MonotonicNanos());
  }
}

void ClientSession::HandleSnapshot(const Frame& frame, uint64_t now) {
  SnapshotPayload snapshot;
  if (!DecodeSnapshot(frame.payload, &snapshot)) {
    // Envelope unusable — nothing to salvage a version from; ask again.
    snap_req_retries_ = 0;
    RequestSnapshot(now);
    return;
  }
  if (snapshot.version < applied_version_) {
    return;  // A stale snapshot from before updates we already hold.
  }
  bool checksum_ok =
      SnapshotSum(snapshot.version, snapshot.document) == snapshot.docsum;
  std::unique_ptr<TextData> replica;
  if (checksum_ok) {
    replica = ParseReplica(snapshot.document);
  }
  if (replica != nullptr) {
    InstallReplica(std::move(replica), snapshot.version, /*from_salvage=*/false);
    snap_req_pending_ = false;
    snap_req_retries_ = 0;
    return;
  }
  // Damaged at rest (docsum mismatch) or unparseable: salvage what arrived
  // so the user keeps a readable document, and keep asking for a clean one.
  SalvageReport report;
  std::unique_ptr<TextData> salvaged =
      ParseReplica(DataStreamSalvager().Salvage(snapshot.document, &report));
  if (salvaged != nullptr) {
    InstallReplica(std::move(salvaged), snapshot.version, /*from_salvage=*/true);
  }
  ++stats_.snapshots_salvaged;
  static Counter& salvaged_count =
      MetricsRegistry::Instance().counter("client.snapshot.salvaged");
  salvaged_count.Add(1);
  snap_req_retries_ = 0;
  RequestSnapshot(now);
}

void ClientSession::InstallReplica(std::unique_ptr<TextData> replica,
                                   uint64_t version, bool from_salvage) {
  replica_ = std::move(replica);
  // A salvaged snapshot's claimed version failed its integrity sum — adopting
  // it could poison the stale-snapshot guard (a corrupt huge version would
  // refuse every clean snapshot forever).  Versions restart from the next
  // clean install; updates are not applied while degraded anyway.
  applied_version_ = from_salvage ? 0 : version;
  synced_ = !from_salvage;
  degraded_ = from_salvage;
  if (!from_salvage) {
    ++stats_.snapshots_applied;
    hello_retries_ = 0;
  }
  if (replica_listener_) {
    replica_listener_(replica_.get());
  }
}

void ClientSession::FlushOutbox(uint64_t now) {
  if (state_ != State::kAttached || !synced_) {
    return;
  }
  while (!outbox_.empty()) {
    PendingEdit pending = std::move(outbox_.front());
    outbox_.pop_front();
    EditPayload payload;
    payload.version = 0;  // The server assigns the real version.
    payload.sent_tick = now;
    payload.flow = pending.flow;
    payload.origin_ns = pending.origin_ns;
    payload.op = std::move(pending.op);
    Frame frame;
    frame.type = FrameType::kEdit;
    frame.flow = pending.flow;
    frame.payload = EncodeEdit(payload);
    channel_.SendReliable(std::move(frame), now);
    ++stats_.edits_sent;
    static Counter& sent = MetricsRegistry::Instance().counter("client.edits.sent");
    sent.Add(1);
  }
}

}  // namespace server
}  // namespace atk
