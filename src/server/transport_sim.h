// Simulated network link between a client session and the document server.
//
// One SimulatedLink is a pair of unidirectional pipes carrying encoded
// frames under a deterministic tick clock.  Every frame entering a pipe is
// assigned a fate by the robustness layer's TransportFaultInjector: deliver,
// drop, duplicate, corrupt (CRC catches it), payload-corrupt (CRC passes,
// the salvager catches it), delay N ticks (later frames overtake — the
// reorder case), or sever the connection.
//
// Determinism: given the same TransportFaultPlan and the same sequence of
// Send calls at the same ticks, delivery is bit-for-bit identical.  The
// queues are mutex-guarded so bench/TSan runs may pump the two endpoints
// from different threads; the deterministic tests drive everything from one.

#ifndef ATK_SRC_SERVER_TRANSPORT_SIM_H_
#define ATK_SRC_SERVER_TRANSPORT_SIM_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/robustness/fault_injector.h"
#include "src/server/frame.h"

namespace atk {
namespace server {

// Which way a frame is travelling; each direction has its own fault stream
// so client->server loss does not consume the server->client budget.
enum class LinkDir { kClientToServer = 0, kServerToClient = 1 };

class SimulatedLink {
 public:
  SimulatedLink() : SimulatedLink(TransportFaultPlan::Clean()) {}
  explicit SimulatedLink(const TransportFaultPlan& plan)
      : injectors_{TransportFaultInjector(plan), TransportFaultInjector(plan)} {}

  // Submits one encoded frame.  `snapshot_frame` gates payload corruption
  // (see TransportFaultKind::kPayloadCorrupt); `payload_at` is the byte
  // offset of the payload within `bytes` for the corrupt-then-resign path.
  void Send(LinkDir dir, std::string bytes, bool snapshot_frame = false);

  // Advances the tick clock: delayed frames age toward delivery.
  void Tick();
  uint64_t now() const { return now_; }

  // Everything deliverable in `dir` at the current tick, in order.
  std::vector<std::string> Receive(LinkDir dir);
  bool HasDeliverable(LinkDir dir) const;

  // Connection state.  A severed link discards everything in flight, in
  // both directions — the server forgot this client.
  bool connected() const;
  void Sever();
  void Restore();
  int sever_count() const { return sever_count_; }

  const TransportFaultInjector& injector(LinkDir dir) const {
    return injectors_[static_cast<int>(dir)];
  }

 private:
  struct InFlight {
    std::string bytes;
    uint64_t deliver_at = 0;  // Tick when the frame becomes receivable.
    uint64_t order = 0;       // FIFO tiebreak within a tick.
  };

  mutable std::mutex mu_;
  TransportFaultInjector injectors_[2];
  std::deque<InFlight> pipes_[2];
  uint64_t now_ = 0;
  uint64_t next_order_ = 0;
  bool connected_ = true;
  int sever_count_ = 0;
};

// Re-signs a frame whose payload bytes were corrupted after encoding, so the
// CRC check passes and the damage reaches the layer above (models a document
// damaged at rest, before framing).  Exposed for tests.
void ResignFramePayload(std::string& encoded);

}  // namespace server
}  // namespace atk

#endif  // ATK_SRC_SERVER_TRANSPORT_SIM_H_
