// Framed transport for the compound-document server (PR 6).
//
// The ROADMAP's millions-of-users direction needs N InteractionManager
// sessions talking to one document-server process over a byte link that can
// drop, duplicate, reorder and corrupt traffic.  This header defines the one
// wire unit both sides speak: a length-prefixed, CRC32-checksummed frame.
//
// Layout (little-endian):
//
//   offset size
//   0      4   magic "ATKF"
//   4      4   payload length N
//   8      1   frame type
//   9      1   flags (reserved, 0)
//   10     4   session id
//   14     8   sequence number (per-direction, 1-based; 0 = unsequenced)
//   22     8   cumulative ack (highest in-order seq received)
//   30     4   CRC32 (IEEE) over the payload
//   34     4   CRC32 (IEEE) over bytes [4, 34) — the header fields
//   38     N   payload
//
// Two CRCs on purpose.  The header CRC is checked as soon as 38 bytes are
// buffered, *before* the length prefix is trusted: with a single whole-frame
// CRC, one flipped bit in the length field leaves the decoder waiting
// forever for a phantom payload while every later frame silently feeds the
// void — the stream wedges until reconnect.  A header that checks out makes
// the length authentic, so a payload CRC failure can skip the exact frame
// and re-sync on the next byte.  Corrupted frames are counted, reported,
// and dropped — recovery is the retransmit layer's job
// (src/server/channel.h), not the codec's.

#ifndef ATK_SRC_SERVER_FRAME_H_
#define ATK_SRC_SERVER_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace atk {
namespace server {

enum class FrameType : uint8_t {
  kHello = 1,        // client -> server: attach {client name, doc, version}
  kHelloAck = 2,     // server -> client: {session id, doc version}
  kEdit = 3,         // client -> server: one edit op
  kUpdate = 4,       // server -> client: one versioned edit (fan-out)
  kSnapshotReq = 5,  // client -> server: full-state resync request
  kSnapshot = 6,     // server -> client: §5-format document snapshot
  kAck = 7,          // pure cumulative ack (no payload)
  kEvict = 8,        // server -> client: session evicted {reason}
  kBye = 9,          // client -> server: orderly detach
};

std::string_view FrameTypeName(FrameType type);

struct Frame {
  FrameType type = FrameType::kAck;
  uint32_t session = 0;
  uint64_t seq = 0;  // 0 = unsequenced (pure acks, hellos before attach).
  uint64_t ack = 0;
  // In-memory causal tag so a retransmit can be attributed to the edit flow
  // it carries (DESIGN.md §8).  Deliberately NOT wire-encoded: the 38-byte
  // header and its CRCs are untouched; the flow id travels in the payload
  // envelope (src/server/protocol.h) and is re-stamped here by the sender.
  uint64_t flow = 0;
  std::string payload;
};

inline constexpr size_t kFrameHeaderSize = 38;
inline constexpr uint32_t kFrameMagic = 0x464B5441u;  // "ATKF" little-endian.

// IEEE CRC32 (the Ethernet/zlib polynomial), table-driven.
uint32_t Crc32(std::string_view bytes, uint32_t seed = 0);

// Encodes `frame` into its wire bytes.
std::string EncodeFrame(const Frame& frame);

// Incremental decoder: feed arbitrary byte chunks, harvest whole frames.
// Bytes that fail the magic scan or the CRC check are skipped and counted —
// the decoder always makes progress and never throws away a valid frame that
// arrives after damage.
class FrameDecoder {
 public:
  // Appends raw link bytes.
  void Feed(std::string_view bytes);

  // Decodes at most one frame from the buffered bytes.  Returns false when
  // no complete valid frame is buffered (damaged bytes may be consumed).
  bool Poll(Frame* out);

  // Decodes every complete frame currently buffered.
  std::vector<Frame> Drain();

  // Frames discarded for CRC mismatch / bad magic since construction.
  uint64_t corrupt_frames() const { return corrupt_frames_; }
  // Bytes skipped while re-synchronizing on the magic.
  uint64_t skipped_bytes() const { return skipped_bytes_; }

  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  void Compact();

  std::string buffer_;
  size_t consumed_ = 0;
  uint64_t corrupt_frames_ = 0;
  uint64_t skipped_bytes_ = 0;
};

}  // namespace server
}  // namespace atk

#endif  // ATK_SRC_SERVER_FRAME_H_
