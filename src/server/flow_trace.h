// Propagation accounting for traced edit flows (DESIGN.md §8).
//
// An edit that carries a flow id is registered here at server fan-out time
// with the number of replicas it was sent to; every replica apply checks in
// with its clock, and the last one closes the flow by observing
// `server.propagation.latency_us` (origin keystroke → last replica
// converged).  Client sessions, the server, and the benches all run in one
// process over simulated links, so one process-wide tracker sees both ends
// of every flow.
//
// The tracker is bounded and lock-free: flows live in a fixed slot table
// indexed by flow id, so a later flow that hashes to an occupied slot
// replaces it (abandoned flows — the session was evicted mid-flight, the
// link died — age out this way and a long fault sweep cannot grow the
// table).  Lock-freedom matters because ReplicaApplied sits on the traced
// update-apply hot path, once per replica per edit.

#ifndef ATK_SRC_SERVER_FLOW_TRACE_H_
#define ATK_SRC_SERVER_FLOW_TRACE_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace atk {
namespace server {

class FlowTracker {
 public:
  static FlowTracker& Instance();

  // Registers a fan-out: `expected_replicas` applies close the flow.  A
  // zero flow id or non-positive replica count is ignored.
  void BeginFlow(uint64_t flow, uint64_t origin_ns, int expected_replicas);

  // One replica applied the update for `flow`.  The final expected apply
  // observes the propagation-latency histogram and retires the flow.
  void ReplicaApplied(uint64_t flow, uint64_t now_ns);

  // Flows registered but not yet fully applied (tests / quiescence checks).
  size_t open_flows() const;

  // Drops all in-flight accounting (test hygiene between seeds).
  void Reset();

 private:
  FlowTracker();

  // `flow` is the slot's publication point (store-release after the other
  // fields); a reader that acquire-loads a matching flow id sees them.
  struct Slot {
    std::atomic<uint64_t> flow{0};
    std::atomic<uint64_t> origin_ns{0};
    std::atomic<int32_t> remaining{0};
  };

  static constexpr size_t kMaxOpenFlows = 4096;  // Power of two (mask index).

  std::vector<Slot> slots_;
};

}  // namespace server
}  // namespace atk

#endif  // ATK_SRC_SERVER_FLOW_TRACE_H_
