// An epoll-style readiness reactor for the document server (PR 6).
//
// The ET++ event-handling lesson (PAPERS.md): one process pumps thousands of
// sessions only if the loop is readiness-driven — scan the sources that have
// work, dispatch, repeat — instead of blocking per client.  This reactor is
// the simulated-transport analogue: a Source is registered with a cheap
// `ready()` predicate (frames deliverable on a link, a timer due) and a
// callback; PumpOnce scans every source once, dispatching the ready ones.
//
// Timers ride the same deterministic tick clock as SimulatedLink: OnTick
// callbacks fire from Advance(now) when their deadline passes, which is how
// channel retransmission, client reconnect backoff, and idle-session
// eviction are scheduled without a wall clock.

#ifndef ATK_SRC_SERVER_REACTOR_H_
#define ATK_SRC_SERVER_REACTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

namespace atk {
namespace server {

class Reactor {
 public:
  using ReadyFn = std::function<bool()>;
  using Callback = std::function<void()>;

  // Registers a readiness source; returns its id.
  int AddSource(ReadyFn ready, Callback on_ready);
  void RemoveSource(int id);
  size_t source_count() const { return sources_.size(); }

  // Schedules `fire` at tick `deadline` (one-shot); returns a timer id.
  int AddTimer(uint64_t deadline, Callback fire);
  void CancelTimer(int id);
  size_t timer_count() const { return timers_.size(); }

  // Fires every timer with deadline <= now, oldest deadline first.
  // Returns the number fired.
  int Advance(uint64_t now);

  // Scans every source once, dispatching the ready ones.  Sources added or
  // removed by callbacks take effect on the next pump.  Returns the number
  // dispatched.
  int PumpOnce();

 private:
  struct Source {
    int id = 0;
    ReadyFn ready;
    Callback on_ready;
  };
  struct Timer {
    uint64_t deadline = 0;
    int id = 0;
    Callback fire;
  };

  std::vector<Source> sources_;
  std::multimap<uint64_t, Timer> timers_;
  int next_id_ = 1;
};

}  // namespace server
}  // namespace atk

#endif  // ATK_SRC_SERVER_REACTOR_H_
