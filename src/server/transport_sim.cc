#include "src/server/transport_sim.h"

#include <algorithm>

#include "src/observability/observability.h"

namespace atk {
namespace server {
namespace {

using observability::Counter;
using observability::MetricsRegistry;

Counter& FaultCounter(TransportFaultKind kind) {
  static Counter& drops = MetricsRegistry::Instance().counter("server.frames.dropped");
  static Counter& dups = MetricsRegistry::Instance().counter("server.frames.duplicated");
  static Counter& corrupts = MetricsRegistry::Instance().counter("server.frames.corrupted");
  static Counter& payloads =
      MetricsRegistry::Instance().counter("server.frames.payload_corrupted");
  static Counter& delays = MetricsRegistry::Instance().counter("server.frames.delayed");
  static Counter& conns = MetricsRegistry::Instance().counter("server.conn.severed");
  static Counter& none = MetricsRegistry::Instance().counter("server.frames.clean");
  switch (kind) {
    case TransportFaultKind::kDrop:
      return drops;
    case TransportFaultKind::kDuplicate:
      return dups;
    case TransportFaultKind::kCorrupt:
      return corrupts;
    case TransportFaultKind::kPayloadCorrupt:
      return payloads;
    case TransportFaultKind::kDelay:
      return delays;
    case TransportFaultKind::kConnDrop:
      return conns;
    case TransportFaultKind::kDeliver:
      return none;
  }
  return none;
}

}  // namespace

void ResignFramePayload(std::string& encoded) {
  if (encoded.size() < kFrameHeaderSize) {
    return;
  }
  auto put_u32 = [&encoded](size_t at, uint32_t v) {
    encoded[at] = static_cast<char>(v & 0xFF);
    encoded[at + 1] = static_cast<char>((v >> 8) & 0xFF);
    encoded[at + 2] = static_cast<char>((v >> 16) & 0xFF);
    encoded[at + 3] = static_cast<char>((v >> 24) & 0xFF);
  };
  // Re-sign payload CRC, then the header CRC that covers it: the damage must
  // read as a faithfully transmitted frame whose contents rotted at rest.
  put_u32(30, Crc32(std::string_view(encoded).substr(kFrameHeaderSize)));
  put_u32(34, Crc32(std::string_view(encoded).substr(4, 30)));
}

void SimulatedLink::Send(LinkDir dir, std::string bytes, bool snapshot_frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!connected_) {
    return;  // Severed: traffic goes nowhere.
  }
  static Counter& sent = MetricsRegistry::Instance().counter("server.frames.sent");
  sent.Add(1);
  TransportFaultInjector& injector = injectors_[static_cast<int>(dir)];
  TransportFault fault = injector.NextFate(snapshot_frame);
  FaultCounter(fault.kind).Add(1);
  auto enqueue = [&](std::string frame, uint64_t deliver_at) {
    InFlight in_flight;
    in_flight.bytes = std::move(frame);
    in_flight.deliver_at = deliver_at;
    in_flight.order = next_order_++;
    pipes_[static_cast<int>(dir)].push_back(std::move(in_flight));
  };
  switch (fault.kind) {
    case TransportFaultKind::kDrop:
      return;
    case TransportFaultKind::kDuplicate:
      enqueue(bytes, now_);
      enqueue(std::move(bytes), now_);
      return;
    case TransportFaultKind::kCorrupt:
      // Anywhere in the frame: header, CRC or payload — the decoder's CRC
      // check must discard it.
      injector.CorruptBytes(bytes, 0, bytes.size());
      enqueue(std::move(bytes), now_);
      return;
    case TransportFaultKind::kPayloadCorrupt:
      if (bytes.size() > kFrameHeaderSize) {
        injector.CorruptBytes(bytes, kFrameHeaderSize, bytes.size());
        ResignFramePayload(bytes);
      }
      enqueue(std::move(bytes), now_);
      return;
    case TransportFaultKind::kDelay:
      enqueue(std::move(bytes), now_ + static_cast<uint64_t>(fault.arg));
      return;
    case TransportFaultKind::kConnDrop:
      pipes_[0].clear();
      pipes_[1].clear();
      connected_ = false;
      ++sever_count_;
      return;
    case TransportFaultKind::kDeliver:
      enqueue(std::move(bytes), now_);
      return;
  }
}

void SimulatedLink::Tick() {
  std::lock_guard<std::mutex> lock(mu_);
  ++now_;
}

bool SimulatedLink::HasDeliverable(LinkDir dir) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const InFlight& frame : pipes_[static_cast<int>(dir)]) {
    if (frame.deliver_at <= now_) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> SimulatedLink::Receive(LinkDir dir) {
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<InFlight>& pipe = pipes_[static_cast<int>(dir)];
  std::vector<InFlight> ready;
  for (auto it = pipe.begin(); it != pipe.end();) {
    if (it->deliver_at <= now_) {
      ready.push_back(std::move(*it));
      it = pipe.erase(it);
    } else {
      ++it;
    }
  }
  // Delivery order: maturity tick, then submission order — a delayed frame
  // is overtaken by everything sent while it was held (the reorder case).
  std::stable_sort(ready.begin(), ready.end(), [](const InFlight& a, const InFlight& b) {
    if (a.deliver_at != b.deliver_at) {
      return a.deliver_at < b.deliver_at;
    }
    return a.order < b.order;
  });
  std::vector<std::string> out;
  out.reserve(ready.size());
  for (InFlight& frame : ready) {
    out.push_back(std::move(frame.bytes));
  }
  return out;
}

bool SimulatedLink::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connected_;
}

void SimulatedLink::Sever() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!connected_) {
    return;
  }
  pipes_[0].clear();
  pipes_[1].clear();
  connected_ = false;
  ++sever_count_;
}

void SimulatedLink::Restore() {
  std::lock_guard<std::mutex> lock(mu_);
  connected_ = true;
}

}  // namespace server
}  // namespace atk
