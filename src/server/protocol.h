// Frame payload codecs for the document-server protocol (PR 6).
//
// Payloads are line-oriented ASCII (in the spirit of the §5 external
// representation: debuggable, mail-safe, versionable), with the edit text
// length-prefixed so arbitrary bytes survive:
//
//   Hello        "client <name>\ndoc <doc>\nversion <v>\n"
//   HelloAck     "session <id>\nversion <v>\n"
//   Edit/Update  "version <v>\ntick <t>\n[flow <f>\norigin <ns>\n]"
//                "op <i|d> <pos> <len>\n<len bytes>"
//                (`version` is 0 on client->server Edit: the server assigns;
//                the optional flow/origin pair is the causal-trace envelope,
//                present only when the origin allocated a flow id)
//   Snapshot     "version <v>\nbytes <n>\n" + n bytes of §5 document
//   SnapshotReq  "have <v>\n"
//   Evict        "reason <text>\n"
//
// Decoding is defensive: malformed payloads return false and the frame is
// counted and dropped — a payload that passed the CRC can still have been
// damaged at rest (TransportFaultKind::kPayloadCorrupt), and the protocol
// recovers through resync rather than trusting garbage.

#ifndef ATK_SRC_SERVER_PROTOCOL_H_
#define ATK_SRC_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace atk {
namespace server {

struct EditOp {
  enum class Kind { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  int64_t pos = 0;
  int64_t len = 0;    // kDelete: characters removed; kInsert: text length.
  std::string text;   // kInsert payload.
};

struct HelloPayload {
  std::string client;
  std::string doc;
  uint64_t version = 0;
  // Client attach-attempt epoch: bumped per (re)connect, *not* per retry of
  // the same hello, so the server can tell a retried hello (same epoch —
  // re-ack the existing session) from a genuine reconnect (new epoch — new
  // session, fresh resync).
  uint64_t epoch = 0;
};

struct HelloAckPayload {
  uint32_t session = 0;
  uint64_t version = 0;
};

struct EditPayload {
  uint64_t version = 0;  // Server-assigned; 0 on submission.
  uint64_t sent_tick = 0;  // Server tick at fan-out (latency accounting).
  // Causal-trace envelope (DESIGN.md §8): the flow id allocated at the edit
  // origin and the origin's monotonic clock, carried end to end so the last
  // converged replica can close the propagation-latency histogram.  Both
  // are 0 (and the lines are omitted on the wire) when flow tracing is off,
  // keeping untraced payloads byte-identical to the PR-6 format.
  uint64_t flow = 0;
  uint64_t origin_ns = 0;
  EditOp op;
};

struct SnapshotPayload {
  uint64_t version = 0;
  // SnapshotSum(version, document) computed *before* framing.  The frame
  // CRC detects wire damage; this one detects at-rest damage that was
  // faithfully transmitted (TransportFaultKind::kPayloadCorrupt) — on
  // mismatch the client salvages what it got and retries until a clean
  // snapshot arrives.  The version is inside the sum on purpose: a flipped
  // digit in the version line with intact document bytes would otherwise
  // install as clean under the wrong version and silently shift every
  // subsequent update.
  uint32_t docsum = 0;
  std::string document;  // §5 external representation bytes.
};

// The at-rest integrity sum for a snapshot: covers the version and the
// document bytes together.
uint32_t SnapshotSum(uint64_t version, const std::string& document);

std::string EncodeHello(const HelloPayload& hello);
bool DecodeHello(std::string_view payload, HelloPayload* out);

std::string EncodeHelloAck(const HelloAckPayload& ack);
bool DecodeHelloAck(std::string_view payload, HelloAckPayload* out);

std::string EncodeEdit(const EditPayload& edit);
bool DecodeEdit(std::string_view payload, EditPayload* out);

std::string EncodeSnapshot(const SnapshotPayload& snapshot);
bool DecodeSnapshot(std::string_view payload, SnapshotPayload* out);

std::string EncodeSnapshotReq(uint64_t have_version);
bool DecodeSnapshotReq(std::string_view payload, uint64_t* have_version);

std::string EncodeEvict(std::string_view reason);
bool DecodeEvict(std::string_view payload, std::string* reason);

}  // namespace server
}  // namespace atk

#endif  // ATK_SRC_SERVER_PROTOCOL_H_
