#include "src/server/protocol.h"

#include <charconv>
#include <cstdlib>
#include <cstring>

#include "src/server/frame.h"

namespace atk {
namespace server {
namespace {

// Pulls the next "\n"-terminated line off `rest`; false at end of input.
bool NextLine(std::string_view* rest, std::string_view* line) {
  if (rest->empty()) {
    return false;
  }
  size_t nl = rest->find('\n');
  if (nl == std::string_view::npos) {
    *line = *rest;
    rest->remove_prefix(rest->size());
  } else {
    *line = rest->substr(0, nl);
    rest->remove_prefix(nl + 1);
  }
  return true;
}

// "key value" split; false when the line does not start with `key` + space.
bool KeyedLine(std::string_view line, std::string_view key, std::string_view* value) {
  if (line.size() <= key.size() || line.substr(0, key.size()) != key ||
      line[key.size()] != ' ') {
    return false;
  }
  *value = line.substr(key.size() + 1);
  return true;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseI64(std::string_view text, int64_t* out) {
  bool negative = false;
  if (!text.empty() && text.front() == '-') {
    negative = true;
    text.remove_prefix(1);
  }
  uint64_t magnitude = 0;
  if (!ParseU64(text, &magnitude)) {
    return false;
  }
  *out = negative ? -static_cast<int64_t>(magnitude) : static_cast<int64_t>(magnitude);
  return true;
}

}  // namespace

std::string EncodeHello(const HelloPayload& hello) {
  std::string out = "client " + hello.client + "\n";
  out += "doc " + hello.doc + "\n";
  out += "version " + std::to_string(hello.version) + "\n";
  out += "epoch " + std::to_string(hello.epoch) + "\n";
  return out;
}

bool DecodeHello(std::string_view payload, HelloPayload* out) {
  std::string_view line, value;
  if (!NextLine(&payload, &line) || !KeyedLine(line, "client", &value)) {
    return false;
  }
  out->client = std::string(value);
  if (!NextLine(&payload, &line) || !KeyedLine(line, "doc", &value)) {
    return false;
  }
  out->doc = std::string(value);
  if (!NextLine(&payload, &line) || !KeyedLine(line, "version", &value) ||
      !ParseU64(value, &out->version)) {
    return false;
  }
  if (!NextLine(&payload, &line) || !KeyedLine(line, "epoch", &value) ||
      !ParseU64(value, &out->epoch)) {
    return false;
  }
  return true;
}

std::string EncodeHelloAck(const HelloAckPayload& ack) {
  return "session " + std::to_string(ack.session) + "\nversion " +
         std::to_string(ack.version) + "\n";
}

bool DecodeHelloAck(std::string_view payload, HelloAckPayload* out) {
  std::string_view line, value;
  uint64_t session = 0;
  if (!NextLine(&payload, &line) || !KeyedLine(line, "session", &value) ||
      !ParseU64(value, &session) || session > 0xFFFFFFFFull) {
    return false;
  }
  out->session = static_cast<uint32_t>(session);
  if (!NextLine(&payload, &line) || !KeyedLine(line, "version", &value) ||
      !ParseU64(value, &out->version)) {
    return false;
  }
  return true;
}

std::string EncodeEdit(const EditPayload& edit) {
  // Built in one stack pass: the server re-encodes this payload once per
  // recipient session, so the string-temporary-per-line idiom the other
  // codecs use would be the hottest allocation site in the fan-out loop.
  // 192 bytes covers the worst case (6 keys + 5 full-width u64/i64 values);
  // the lambdas still bounds-check so the compiler can see it too.
  char head[192];
  char* p = head;
  char* const end = head + sizeof(head);
  auto put = [&](std::string_view s) {
    if (static_cast<size_t>(end - p) >= s.size()) {
      std::memcpy(p, s.data(), s.size());
      p += s.size();
    }
  };
  auto ch = [&](char c) {
    if (p < end) {
      *p++ = c;
    }
  };
  auto num = [&](auto v) { p = std::to_chars(p, end, v).ptr; };
  put("version ");
  num(edit.version);
  ch('\n');
  put("tick ");
  num(edit.sent_tick);
  ch('\n');
  if (edit.flow != 0) {
    put("flow ");
    num(edit.flow);
    ch('\n');
    put("origin ");
    num(edit.origin_ns);
    ch('\n');
  }
  put("op ");
  ch(edit.op.kind == EditOp::Kind::kInsert ? 'i' : 'd');
  ch(' ');
  num(edit.op.pos);
  ch(' ');
  num(edit.op.len);
  ch('\n');
  std::string out;
  size_t head_len = static_cast<size_t>(p - head);
  bool insert = edit.op.kind == EditOp::Kind::kInsert;
  out.reserve(head_len + (insert ? edit.op.text.size() : 0));
  out.assign(head, head_len);
  if (insert) {
    out += edit.op.text;
  }
  return out;
}

bool DecodeEdit(std::string_view payload, EditPayload* out) {
  std::string_view line, value;
  if (!NextLine(&payload, &line) || !KeyedLine(line, "version", &value) ||
      !ParseU64(value, &out->version)) {
    return false;
  }
  if (!NextLine(&payload, &line) || !KeyedLine(line, "tick", &value) ||
      !ParseU64(value, &out->sent_tick)) {
    return false;
  }
  // Optional causal-trace lines (present only when the origin allocated a
  // flow id); a payload without them decodes with flow == origin_ns == 0.
  out->flow = 0;
  out->origin_ns = 0;
  if (!NextLine(&payload, &line)) {
    return false;
  }
  if (KeyedLine(line, "flow", &value)) {
    if (!ParseU64(value, &out->flow)) {
      return false;
    }
    if (!NextLine(&payload, &line) || !KeyedLine(line, "origin", &value) ||
        !ParseU64(value, &out->origin_ns)) {
      return false;
    }
    if (!NextLine(&payload, &line)) {
      return false;
    }
  }
  if (!KeyedLine(line, "op", &value)) {
    return false;
  }
  if (value.size() < 2 || (value[0] != 'i' && value[0] != 'd') || value[1] != ' ') {
    return false;
  }
  out->op.kind = value[0] == 'i' ? EditOp::Kind::kInsert : EditOp::Kind::kDelete;
  value.remove_prefix(2);
  size_t space = value.find(' ');
  if (space == std::string_view::npos) {
    return false;
  }
  if (!ParseI64(value.substr(0, space), &out->op.pos) ||
      !ParseI64(value.substr(space + 1), &out->op.len)) {
    return false;
  }
  if (out->op.pos < 0 || out->op.len < 0) {
    return false;
  }
  if (out->op.kind == EditOp::Kind::kInsert) {
    if (payload.size() != static_cast<size_t>(out->op.len)) {
      return false;  // Length prefix and payload bytes disagree: damaged.
    }
    out->op.text = std::string(payload);
  } else if (!payload.empty()) {
    return false;
  }
  return true;
}

uint32_t SnapshotSum(uint64_t version, const std::string& document) {
  std::string keyed = std::to_string(version);
  keyed.push_back('\n');
  keyed += document;
  return Crc32(keyed);
}

std::string EncodeSnapshot(const SnapshotPayload& snapshot) {
  std::string out = "version " + std::to_string(snapshot.version) + "\n";
  out += "docsum " + std::to_string(snapshot.docsum) + "\n";
  out += "bytes " + std::to_string(snapshot.document.size()) + "\n";
  out += snapshot.document;
  return out;
}

bool DecodeSnapshot(std::string_view payload, SnapshotPayload* out) {
  std::string_view line, value;
  if (!NextLine(&payload, &line) || !KeyedLine(line, "version", &value) ||
      !ParseU64(value, &out->version)) {
    return false;
  }
  uint64_t docsum = 0;
  if (!NextLine(&payload, &line) || !KeyedLine(line, "docsum", &value) ||
      !ParseU64(value, &docsum) || docsum > 0xFFFFFFFFull) {
    return false;
  }
  out->docsum = static_cast<uint32_t>(docsum);
  uint64_t bytes = 0;
  if (!NextLine(&payload, &line) || !KeyedLine(line, "bytes", &value) ||
      !ParseU64(value, &bytes)) {
    return false;
  }
  // The document bytes themselves may be damaged-at-rest; the caller runs
  // the salvage path.  Only the envelope is validated here.
  if (payload.size() != bytes) {
    return false;
  }
  out->document = std::string(payload);
  return true;
}

std::string EncodeSnapshotReq(uint64_t have_version) {
  return "have " + std::to_string(have_version) + "\n";
}

bool DecodeSnapshotReq(std::string_view payload, uint64_t* have_version) {
  std::string_view line, value;
  return NextLine(&payload, &line) && KeyedLine(line, "have", &value) &&
         ParseU64(value, have_version);
}

std::string EncodeEvict(std::string_view reason) {
  return "reason " + std::string(reason) + "\n";
}

bool DecodeEvict(std::string_view payload, std::string* reason) {
  std::string_view line, value;
  if (!NextLine(&payload, &line) || !KeyedLine(line, "reason", &value)) {
    return false;
  }
  *reason = std::string(value);
  return true;
}

}  // namespace server
}  // namespace atk
