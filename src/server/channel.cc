#include "src/server/channel.h"

#include <algorithm>

#include "src/observability/memory.h"
#include "src/observability/observability.h"

namespace atk {
namespace server {
namespace {

using observability::Counter;
using observability::MetricsRegistry;

observability::MemoryAccount& ChannelMemAccount() {
  static observability::MemoryAccount& account =
      observability::MemoryAccountant::Instance().account("server.mem.channel");
  return account;
}

// Footprint of one queued frame: the struct plus its owned payload.  size()
// rather than capacity() so the figure survives the backlog -> in_flight_
// move (size is move-invariant, capacity is not), keeping charge/release
// pairing exact.
int64_t QueuedFrameBytes(const Frame& frame) {
  return static_cast<int64_t>(sizeof(Frame) + frame.payload.size());
}

uint64_t BackoffTicks(const Channel::Config& config, int retries) {
  uint64_t ticks = config.retransmit_base_ticks;
  for (int i = 0; i < retries && ticks < config.max_backoff_ticks; ++i) {
    ticks *= 2;
  }
  return std::min(ticks, config.max_backoff_ticks);
}

}  // namespace

Channel::Channel(SimulatedLink* link, LinkDir send_dir)
    : Channel(link, send_dir, Config()) {}

// The pre-attach hold is bounded: a chatty stale epoch must not grow it
// without limit while we wait for our hello-ack.
constexpr size_t kPreattachHoldCap = 32;

Channel::Channel(SimulatedLink* link, LinkDir send_dir, Config config)
    : link_(link), send_dir_(send_dir), config_(config),
      queue_mem_(ChannelMemAccount()) {}

void Channel::set_session(uint32_t session) {
  session_ = session;
  std::deque<Frame> held = std::move(preattach_hold_);
  preattach_hold_.clear();
  for (Frame& frame : held) {
    if (frame.session != session_) {
      ++stats_.stale_dropped;
      continue;
    }
    ProcessAck(frame.ack, link_->now());
    if (AcceptSequenced(frame)) {
      ++stats_.delivered;
      replayed_.push_back(std::move(frame));
    }
  }
}

void Channel::Transmit(const Frame& frame, uint64_t now) {
  (void)now;
  Frame stamped = frame;
  stamped.ack = last_in_;
  ack_owed_ = false;
  link_->Send(send_dir_, EncodeFrame(stamped),
              /*snapshot_frame=*/stamped.type == FrameType::kSnapshot);
}

void Channel::SendReliable(Frame frame, uint64_t now) {
  frame.session = session_;
  frame.seq = next_seq_++;
  queue_mem_.Add(QueuedFrameBytes(frame));
  backlog_.push_back(std::move(frame));
  FillWindow(now);
}

void Channel::FillWindow(uint64_t now) {
  while (!backlog_.empty() && in_flight_.size() < config_.window) {
    Unacked entry;
    entry.frame = std::move(backlog_.front());
    backlog_.pop_front();
    entry.last_sent = now;
    Transmit(entry.frame, now);
    ++stats_.sent;
    in_flight_.push_back(std::move(entry));
  }
}

void Channel::SendUnsequenced(Frame frame, uint64_t now) {
  frame.session = session_;
  frame.seq = 0;
  Transmit(frame, now);
  ++stats_.sent;
}

void Channel::ProcessAck(uint64_t ack, uint64_t now) {
  while (!in_flight_.empty() && in_flight_.front().frame.seq <= ack) {
    const Unacked& entry = in_flight_.front();
    // Karn's rule: a retransmitted frame's ack cannot be attributed to one
    // send, so only clean first-transmission acks feed the RTT estimate.
    if (entry.retries == 0 && now >= entry.last_sent) {
      uint64_t sample = now - entry.last_sent;
      if (!rtt_valid_) {
        srtt_x8_ = sample << 3;
        rtt_valid_ = true;
      } else {
        srtt_x8_ += sample - (srtt_x8_ >> 3);
      }
    }
    queue_mem_.Add(-QueuedFrameBytes(entry.frame));
    in_flight_.pop_front();
    ++stats_.acked;
  }
}

bool Channel::AcceptSequenced(const Frame& frame) {
  if (frame.seq <= last_in_) {
    ++stats_.dup_dropped;
    static Counter& dup_rx =
        MetricsRegistry::Instance().counter("server.frames.dup_rejected");
    dup_rx.Add(1);
    ack_owed_ = true;  // Re-ack so the peer stops retransmitting.
    return false;
  }
  if (frame.seq != last_in_ + 1) {
    ++stats_.ooo_dropped;
    static Counter& ooo_rx =
        MetricsRegistry::Instance().counter("server.frames.ooo_rejected");
    ooo_rx.Add(1);
    ack_owed_ = true;  // Tell the peer where we really are.
    return false;
  }
  last_in_ = frame.seq;
  ack_owed_ = true;
  return true;
}

std::vector<Frame> Channel::Pump(uint64_t now) {
  // Frames accepted during set_session's hold replay head the batch: they
  // arrived before anything the decoder yields below.
  std::vector<Frame> delivered = std::move(replayed_);
  replayed_.clear();
  // Inbound: raw link bytes -> decoder -> ordered delivery.
  LinkDir recv_dir = send_dir_ == LinkDir::kClientToServer ? LinkDir::kServerToClient
                                                           : LinkDir::kClientToServer;
  for (std::string& bytes : link_->Receive(recv_dir)) {
    decoder_.Feed(bytes);
  }
  uint64_t corrupt_total = decoder_.corrupt_frames();
  if (corrupt_total > decoder_corrupt_seen_) {
    stats_.corrupt_dropped += corrupt_total - decoder_corrupt_seen_;
    static Counter& corrupt_rx =
        MetricsRegistry::Instance().counter("server.frames.crc_rejected");
    corrupt_rx.Add(corrupt_total - decoder_corrupt_seen_);
    decoder_corrupt_seen_ = corrupt_total;
  }
  Frame frame;
  while (decoder_.Poll(&frame)) {
    // Session filter.  Sequenced frames must match our session exactly (a
    // pre-attach channel accepting a stale epoch's data frame would advance
    // last_in_ and then dup-reject the real session's frames — acked but
    // never delivered, a silent divergence).  Pre-attach (session 0) a
    // sequenced frame might be the snapshot racing its own hello-ack through
    // the same burst, so it is held, not dropped: set_session replays it if
    // the ack names its session.  Unsequenced foreign frames are dropped
    // only once we have a session of our own — pre-attach they carry the
    // hello-ack that tells us who we are.
    bool foreign = frame.session != 0 && frame.session != session_;
    if (foreign && frame.seq != 0) {
      if (session_ == 0) {
        if (preattach_hold_.size() < kPreattachHoldCap) {
          preattach_hold_.push_back(std::move(frame));
          frame = Frame{};
        } else {
          ++stats_.stale_dropped;
        }
      } else {
        ++stats_.stale_dropped;
      }
      continue;
    }
    if (foreign && session_ != 0) {  // Unsequenced, and we know who we are.
      ++stats_.stale_dropped;
      continue;
    }
    ProcessAck(frame.ack, now);
    if (frame.seq == 0) {
      if (frame.type != FrameType::kAck) {
        ++stats_.delivered;
        delivered.push_back(std::move(frame));
        frame = Frame{};
      }
      continue;
    }
    if (!AcceptSequenced(frame)) {
      continue;
    }
    ++stats_.delivered;
    delivered.push_back(std::move(frame));
    frame = Frame{};
  }
  // Acks opened the window: promote backlog.
  FillWindow(now);
  // Outbound: retransmit what is due.
  for (Unacked& entry : in_flight_) {
    uint64_t due = entry.last_sent + BackoffTicks(config_, entry.retries);
    if (now < due) {
      continue;
    }
    if (entry.retries >= config_.max_retries) {
      broken_ = true;
      continue;
    }
    ++entry.retries;
    entry.last_sent = now;
    {
      // The retransmit is part of whatever edit flow the frame carries, so
      // a trace shows the retry (tagged with its attempt count) on the same
      // flow line as the origin and the replica applies.
      observability::FlowScope flow(entry.frame.flow);
      observability::ScopedSpan span("server.frame.retransmit");
      span.set_arg(static_cast<uint64_t>(entry.retries));
      Transmit(entry.frame, now);
    }
    ++stats_.retransmits;
    static Counter& retries = MetricsRegistry::Instance().counter("server.retries.frame");
    retries.Add(1);
  }
  // Data accepted but nothing outbound carried the ack: send a bare one.
  if (ack_owed_) {
    Frame ack_frame;
    ack_frame.type = FrameType::kAck;
    ack_frame.session = session_;
    Transmit(ack_frame, now);
  }
  return delivered;
}

void Channel::Reset(uint32_t session) {
  session_ = session;
  next_seq_ = 1;
  last_in_ = 0;
  queue_mem_.Resize(0);
  in_flight_.clear();
  backlog_.clear();
  preattach_hold_.clear();
  replayed_.clear();
  decoder_ = FrameDecoder();
  decoder_corrupt_seen_ = 0;
  broken_ = false;
  ack_owed_ = false;
}

}  // namespace server
}  // namespace atk
