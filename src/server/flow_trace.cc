#include "src/server/flow_trace.h"

#include "src/observability/observability.h"

namespace atk {
namespace server {

using observability::Histogram;
using observability::MetricsRegistry;

FlowTracker& FlowTracker::Instance() {
  static FlowTracker* tracker = new FlowTracker();
  return *tracker;
}

FlowTracker::FlowTracker() : slots_(kMaxOpenFlows) {
  static_assert((kMaxOpenFlows & (kMaxOpenFlows - 1)) == 0,
                "slot index is flow & (kMaxOpenFlows - 1)");
}

void FlowTracker::BeginFlow(uint64_t flow, uint64_t origin_ns, int expected_replicas) {
  if (flow == 0 || expected_replicas <= 0) {
    return;
  }
  Slot& slot = slots_[flow & (kMaxOpenFlows - 1)];
  // A still-open occupant (hash collision or an abandoned flow from a dead
  // session) is simply replaced: flow ids are monotone, so the occupant is
  // always the older of the two.
  slot.flow.store(0, std::memory_order_relaxed);
  slot.origin_ns.store(origin_ns, std::memory_order_relaxed);
  slot.remaining.store(expected_replicas, std::memory_order_relaxed);
  slot.flow.store(flow, std::memory_order_release);
}

void FlowTracker::ReplicaApplied(uint64_t flow, uint64_t now_ns) {
  if (flow == 0) {
    return;
  }
  Slot& slot = slots_[flow & (kMaxOpenFlows - 1)];
  if (slot.flow.load(std::memory_order_acquire) != flow) {
    return;  // Re-applied after a resync, or the flow was evicted.
  }
  if (slot.remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) {
    return;
  }
  uint64_t origin_ns = slot.origin_ns.load(std::memory_order_relaxed);
  slot.flow.store(0, std::memory_order_release);
  static Histogram& latency =
      MetricsRegistry::Instance().histogram("server.propagation.latency_us");
  latency.Observe(now_ns >= origin_ns ? (now_ns - origin_ns) / 1000 : 0);
}

size_t FlowTracker::open_flows() const {
  size_t open = 0;
  for (const Slot& slot : slots_) {
    if (slot.flow.load(std::memory_order_relaxed) != 0) {
      ++open;
    }
  }
  return open;
}

void FlowTracker::Reset() {
  for (Slot& slot : slots_) {
    slot.flow.store(0, std::memory_order_relaxed);
    slot.origin_ns.store(0, std::memory_order_relaxed);
    slot.remaining.store(0, std::memory_order_relaxed);
  }
}

}  // namespace server
}  // namespace atk
