// Client side of a document-server session (PR 6).
//
// A ClientSession dials the server over a SimulatedLink, attaches to one
// named document, and maintains a local replica (a TextData) that converges
// to the server's authoritative copy.  The editing model is
// server-serialized: SubmitEdit never touches the replica — the edit rides
// the reliable channel to the server, is applied there, and comes back as a
// versioned kUpdate in channel order, so every replica applies the same ops
// in the same order and convergence is byte-exact without operational
// transforms.
//
// Recovery ladder, mildest first:
//   * lost/duplicated/reordered frames — absorbed by the reliable channel;
//   * hello lost — retried with exponential backoff under a retry deadline,
//     same epoch (the server re-acks instead of building a second session);
//   * version gap in updates — kSnapshotReq, backed off exponentially;
//   * snapshot damaged at rest (docsum mismatch / §5 parse failure) — the
//     DataStreamSalvager repairs what arrived into a degraded replica so the
//     user keeps a document to look at, and a fresh snapshot is requested
//     until a checksum-clean one lands;
//   * channel broken / connection severed / evicted — full reconnect: new
//     epoch, new session, state resynced from scratch via snapshot.

#ifndef ATK_SRC_SERVER_CLIENT_SESSION_H_
#define ATK_SRC_SERVER_CLIENT_SESSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/components/text/text_data.h"
#include "src/server/channel.h"
#include "src/server/protocol.h"
#include "src/server/transport_sim.h"

namespace atk {
namespace server {

class ClientSession {
 public:
  struct Config {
    Channel::Config channel;
    uint64_t hello_base_ticks = 4;    // First hello retry after this long.
    uint64_t hello_max_ticks = 64;    // Hello backoff cap.
    int hello_max_retries = 8;        // Deadline: then a fresh epoch/reconnect.
    uint64_t snap_req_base_ticks = 8; // Snapshot-request retry backoff base.
    uint64_t snap_req_max_ticks = 128;
    bool auto_reconnect = true;       // Reconnect after evict / broken channel.
  };

  struct Stats {
    uint64_t edits_sent = 0;
    uint64_t updates_applied = 0;
    uint64_t snapshots_applied = 0;
    uint64_t snapshots_salvaged = 0;  // Damaged at rest; degraded replica built.
    uint64_t snapshot_requests = 0;
    uint64_t hello_retries = 0;
    uint64_t reconnects = 0;          // Fresh epochs after the first.
    uint64_t evictions = 0;
  };

  enum class State { kIdle, kConnecting, kAttached, kEvicted };

  ClientSession(std::string client_name, std::string doc_name,
                SimulatedLink* link);
  ClientSession(std::string client_name, std::string doc_name,
                SimulatedLink* link, Config config);

  // Starts (or restarts) the attach handshake with a fresh epoch.
  void Connect(uint64_t now);

  // Queues an edit for the server.  Safe in any state: the outbox drains
  // once the session is attached and synced.
  void SubmitEdit(EditOp op);

  // One turn of the client state machine: pump the channel, run retries and
  // reconnects, apply updates/snapshots, flush the outbox.
  void Pump(uint64_t now);

  State state() const { return state_; }
  bool attached() const { return state_ == State::kAttached; }
  // True once a snapshot has been applied and the replica tracks the stream.
  bool synced() const { return synced_; }
  // True while the replica came from a salvaged (damaged) snapshot.
  bool degraded() const { return degraded_; }

  // The local replica (nullptr before the first snapshot).  The pointer
  // changes on every resync; `set_replica_listener` observes the swaps.
  TextData* replica() { return replica_.get(); }
  const TextData* replica() const { return replica_.get(); }
  void set_replica_listener(std::function<void(TextData*)> listener) {
    replica_listener_ = std::move(listener);
  }

  uint64_t applied_version() const { return applied_version_; }
  uint32_t session_id() const { return channel_.session(); }
  uint64_t epoch() const { return epoch_; }
  const std::string& evict_reason() const { return evict_reason_; }
  const Stats& stats() const { return stats_; }
  const Channel& channel() const { return channel_; }

 private:
  // An outbox entry: the op plus the causal envelope allocated at submit
  // time (flow id + origin clock; both 0 when flow tracing is off).
  struct PendingEdit {
    EditOp op;
    uint64_t flow = 0;
    uint64_t origin_ns = 0;
  };

  void SendHello(uint64_t now);
  void RequestSnapshot(uint64_t now);
  void HandleUpdate(const Frame& frame, uint64_t now);
  void HandleSnapshot(const Frame& frame, uint64_t now);
  void InstallReplica(std::unique_ptr<TextData> replica, uint64_t version,
                      bool from_salvage);
  void FlushOutbox(uint64_t now);
  // Registers (once) and returns this session's trace track
  // ("session.<client name>"); 0 while tracing is disabled.
  uint32_t EnsureTrack();

  std::string client_name_;
  std::string doc_name_;
  SimulatedLink* link_;
  Config config_;
  Channel channel_;
  State state_ = State::kIdle;
  uint64_t epoch_ = 0;
  bool synced_ = false;
  bool degraded_ = false;
  std::unique_ptr<TextData> replica_;
  std::function<void(TextData*)> replica_listener_;
  uint64_t applied_version_ = 0;
  std::deque<PendingEdit> outbox_;
  uint32_t trace_track_ = 0;
  bool track_registered_ = false;
  // Hello retry state.
  uint64_t next_hello_at_ = 0;
  int hello_retries_ = 0;
  // Snapshot-request retry state.
  bool snap_req_pending_ = false;
  uint64_t next_snap_req_at_ = 0;
  int snap_req_retries_ = 0;
  std::string evict_reason_;
  Stats stats_;
};

}  // namespace server
}  // namespace atk

#endif  // ATK_SRC_SERVER_CLIENT_SESSION_H_
