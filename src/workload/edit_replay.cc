#include "src/workload/edit_replay.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <memory>
#include <sstream>
#include <utility>

#include "src/components/text/text_data.h"
#include "src/datastream/reader.h"
#include "src/datastream/writer.h"
#include "src/observability/observability.h"
#include "src/server/client_session.h"
#include "src/server/document_server.h"
#include "src/server/transport_sim.h"
#include "src/workload/scenario.h"

namespace atk {
namespace {

using observability::Counter;
using observability::Histogram;
using observability::MetricsRegistry;
using server::ClientSession;
using server::DocumentServer;
using server::EditOp;
using server::LinkDir;
using server::SimulatedLink;

constexpr const char* kDocName = "replayed";
// Hex chars per \inittext line: 64 (32 payload bytes) keeps the directive
// inside the §5 80-column guideline.
constexpr size_t kHexChunk = 64;
// Consecutive fully-quiescent ticks with the version still short before an
// edit is declared lost.  Quiescence means nothing is in flight anywhere,
// so any positive threshold is safe; a few ticks of margin cost nothing.
constexpr int kLostEditQuietTicks = 16;

// The fleet a recording or replay drives: one server, N clients on their
// own links.  Mirrors the test harness in tests/test_server.cc, minus gtest.
struct Fleet {
  DocumentServer server;
  std::vector<std::unique_ptr<SimulatedLink>> links;
  std::vector<std::unique_ptr<ClientSession>> clients;

  void AddClient(const std::string& name,
                 const TransportFaultPlan& plan = TransportFaultPlan::Clean()) {
    links.push_back(std::make_unique<SimulatedLink>(plan));
    server.AttachLink(links.back().get());
    clients.push_back(
        std::make_unique<ClientSession>(name, kDocName, links.back().get()));
    clients.back()->Connect(links.back()->now());
  }

  void Step() {
    for (size_t i = 0; i < clients.size(); ++i) {
      clients[i]->Pump(links[i]->now());
    }
    server.PumpOnce();
    for (auto& link : links) {
      link->Tick();
    }
  }

  // Nothing in flight anywhere: no undelivered frames, no unacked channel
  // state, no pending eviction notices, every client attached and synced.
  bool Quiesced() const {
    if (server.pending_frames() != 0 || server.pending_evictions() != 0) {
      return false;
    }
    for (size_t i = 0; i < clients.size(); ++i) {
      if (!clients[i]->attached() || !clients[i]->synced() ||
          clients[i]->channel().pending() != 0) {
        return false;
      }
      if (links[i]->HasDeliverable(LinkDir::kClientToServer) ||
          links[i]->HasDeliverable(LinkDir::kServerToClient)) {
        return false;
      }
    }
    return true;
  }

  // Steps until quiesced (8-quiet-tick tail).  Returns ticks used, or -1 on
  // timeout.
  int Settle(int max_ticks) {
    int quiet = 0;
    for (int i = 0; i < max_ticks; ++i) {
      Step();
      quiet = Quiesced() ? quiet + 1 : 0;
      if (quiet >= 8) {
        return i + 1;
      }
    }
    return -1;
  }

  uint64_t TotalReconnects() const {
    uint64_t total = 0;
    for (const auto& client : clients) {
      total += client->stats().reconnects;
    }
    return total;
  }
};

EditOp ToEditOp(const RecordedEdit& edit) {
  EditOp op;
  op.kind = edit.insert ? EditOp::Kind::kInsert : EditOp::Kind::kDelete;
  op.pos = edit.pos;
  op.len = edit.insert ? static_cast<int64_t>(edit.text.size()) : edit.len;
  op.text = edit.text;
  return op;
}

// ---- Directive arg helpers (the trace_component.cc idiom) ------------------

std::vector<std::string_view> SplitArgs(std::string_view args) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    size_t comma = args.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(args.substr(start));
      return fields;
    }
    fields.push_back(args.substr(start, comma - start));
    start = comma + 1;
  }
}

bool ParseU64(std::string_view field, uint64_t* out) {
  if (field.empty()) {
    return false;
  }
  uint64_t value = 0;
  for (char ch : field) {
    if (!std::isdigit(static_cast<unsigned char>(ch))) {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(ch - '0');
  }
  *out = value;
  return true;
}

bool ParseI64(std::string_view field, int64_t* out) {
  bool negative = !field.empty() && field.front() == '-';
  uint64_t magnitude = 0;
  if (!ParseU64(negative ? field.substr(1) : field, &magnitude)) {
    return false;
  }
  *out = negative ? -static_cast<int64_t>(magnitude) : static_cast<int64_t>(magnitude);
  return true;
}

std::string Join(std::initializer_list<std::string> fields) {
  std::string out;
  for (const std::string& field : fields) {
    if (!out.empty()) {
      out += ',';
    }
    out += field;
  }
  return out;
}

bool AllWhitespace(std::string_view text) {
  return text.find_first_not_of(" \t\r\n") == std::string_view::npos;
}

Status ReadEditTraceBody(DataStreamReader& reader, EditTrace* out) {
  *out = EditTrace{};
  std::string init_hex;
  uint64_t declared_edits = 0;
  bool saw_meta = false;
  while (true) {
    DataStreamReader::Token token = reader.Next();
    switch (token.kind) {
      case DataStreamReader::Token::Kind::kEndData: {
        if (token.type != kEditTraceType) {
          return Status::Corrupt("editrace body closed by \\enddata{" +
                                 std::string(token.type) + ",...}");
        }
        if (!saw_meta) {
          return Status::Corrupt("editrace object without \\replaymeta");
        }
        if (!HexDecode(init_hex, &out->initial_text)) {
          return Status::Corrupt("malformed \\inittext hex payload");
        }
        if (out->edits.size() != declared_edits) {
          return Status::Corrupt("editrace declares " + std::to_string(declared_edits) +
                                 " edits but carries " + std::to_string(out->edits.size()));
        }
        return Status::Ok();
      }
      case DataStreamReader::Token::Kind::kEof:
        return Status::Truncated("input ended inside an editrace object");
      case DataStreamReader::Token::Kind::kDiagnostic:
        return Status::Corrupt("damaged directive inside an editrace object at offset " +
                               std::to_string(token.offset));
      case DataStreamReader::Token::Kind::kText:
        if (!AllWhitespace(token.text)) {
          return Status::Corrupt("unexpected payload text inside an editrace object");
        }
        break;
      case DataStreamReader::Token::Kind::kBeginData:
        // Nested objects are not part of the editrace schema; skip whole.
        if (!reader.SkipObject(token.type, token.id)) {
          return Status::Truncated("input ended inside an object nested in an editrace");
        }
        break;
      case DataStreamReader::Token::Kind::kViewRef:
        break;
      case DataStreamReader::Token::Kind::kDirective: {
        std::vector<std::string_view> fields = SplitArgs(token.text);
        if (token.type == "replaymeta") {
          uint64_t version = 0;
          uint64_t sessions = 0;
          if (fields.size() < 4 || !ParseU64(fields[0], &version) ||
              !ParseU64(fields[1], &out->seed) || !ParseU64(fields[2], &sessions) ||
              !ParseU64(fields[3], &declared_edits) || sessions == 0) {
            return Status::Corrupt("malformed \\replaymeta{" + std::string(token.text) + "}");
          }
          out->sessions = static_cast<int>(sessions);
          saw_meta = true;
        } else if (token.type == "inittext") {
          if (fields.size() != 1) {
            return Status::Corrupt("malformed \\inittext{" + std::string(token.text) + "}");
          }
          init_hex += std::string(fields[0]);
        } else if (token.type == "edit") {
          RecordedEdit edit;
          uint64_t session = 0;
          if (fields.size() != 6 || !ParseU64(fields[0], &edit.version) ||
              !ParseU64(fields[1], &session) ||
              (fields[2] != "i" && fields[2] != "d") || !ParseI64(fields[3], &edit.pos) ||
              !ParseI64(fields[4], &edit.len) || !HexDecode(fields[5], &edit.text)) {
            return Status::Corrupt("malformed \\edit{" + std::string(token.text) + "}");
          }
          edit.session = static_cast<int>(session);
          edit.insert = fields[2] == "i";
          if (edit.insert && edit.len != static_cast<int64_t>(edit.text.size())) {
            return Status::Corrupt("\\edit insert length disagrees with its payload");
          }
          out->edits.push_back(std::move(edit));
        }
        // Unknown directives are skipped: a newer recorder may add fields.
        break;
      }
    }
  }
}

}  // namespace

EditTrace RecordEditTrace(const SessionTraceSpec& spec) {
  SessionTrace script = BuildSessionTrace(spec);
  EditTrace trace;
  trace.seed = spec.seed;
  trace.sessions = std::max(1, spec.sessions);
  trace.initial_text = script.initial_text;

  Fleet fleet;
  auto doc = std::make_unique<TextData>();
  doc->SetText(script.initial_text);
  fleet.server.HostDocument(kDocName, std::move(doc));
  for (int i = 0; i < trace.sessions; ++i) {
    fleet.AddClient("recorder-" + std::to_string(i));
  }
  fleet.Settle(30000);

  for (const TraceStep& step : script.steps) {
    uint64_t before = fleet.server.version(kDocName);
    EditOp op;
    op.kind = step.insert ? EditOp::Kind::kInsert : EditOp::Kind::kDelete;
    op.pos = step.pos;
    op.len = step.len;
    op.text = step.text;
    int session = std::clamp(step.session, 0, trace.sessions - 1);
    fleet.clients[static_cast<size_t>(session)]->SubmitEdit(std::move(op));
    // Lock-step over clean links: settle the whole system, then look at the
    // version.  Unchanged means the server clamped the step into a no-op
    // (e.g. a delete at end-of-text) — such steps are not recorded, so a
    // recorded trace replays version-for-version.
    fleet.Settle(30000);
    if (fleet.server.version(kDocName) == before) {
      continue;
    }
    RecordedEdit edit;
    edit.version = fleet.server.version(kDocName);
    edit.session = session;
    edit.insert = step.insert;
    edit.pos = step.pos;
    edit.len = step.insert ? static_cast<int64_t>(step.text.size()) : step.len;
    edit.text = step.text;
    trace.edits.push_back(std::move(edit));
  }
  return trace;
}

std::string EditTraceToDatastream(const EditTrace& trace) {
  std::ostringstream out;
  DataStreamWriter writer(out);
  writer.BeginData(kEditTraceType);
  writer.WriteDirective(
      "replaymeta", Join({"1", std::to_string(trace.seed), std::to_string(trace.sessions),
                          std::to_string(trace.edits.size())}));
  writer.WriteNewline();
  std::string init_hex = HexEncode(trace.initial_text);
  for (size_t start = 0; start < init_hex.size(); start += kHexChunk) {
    writer.WriteDirective("inittext", init_hex.substr(start, kHexChunk));
    writer.WriteNewline();
  }
  if (init_hex.empty()) {
    writer.WriteDirective("inittext", "");
    writer.WriteNewline();
  }
  for (const RecordedEdit& edit : trace.edits) {
    writer.WriteDirective(
        "edit", Join({std::to_string(edit.version), std::to_string(edit.session),
                      edit.insert ? "i" : "d", std::to_string(edit.pos),
                      std::to_string(edit.len), HexEncode(edit.text)}));
    writer.WriteNewline();
  }
  writer.EndData();
  return out.str();
}

Status EditTraceFromDatastream(std::string_view data, EditTrace* out) {
  DataStreamReader reader{data};
  while (true) {
    DataStreamReader::Token token = reader.Next();
    if (token.kind == DataStreamReader::Token::Kind::kEof) {
      return Status::NotFound("no \\begindata{editrace,...} object in input");
    }
    if (token.kind == DataStreamReader::Token::Kind::kBeginData) {
      if (token.type == kEditTraceType) {
        return ReadEditTraceBody(reader, out);
      }
      if (!reader.SkipObject(token.type, token.id)) {
        return Status::Truncated("input ended while skipping a non-editrace object");
      }
    }
  }
}

ReplayResult ReplayEditTrace(const EditTrace& trace, const ReplayOptions& options) {
  static Counter& replayed =
      MetricsRegistry::Instance().counter("scenario.replay.edits");
  static Histogram& fanout_us =
      MetricsRegistry::Instance().histogram("scenario.replay.fanout_us");

  ReplayResult result;
  Fleet fleet;
  auto doc = std::make_unique<TextData>();
  doc->SetText(trace.initial_text);
  fleet.server.HostDocument(kDocName, std::move(doc));
  int sessions = std::max(1, trace.sessions);
  for (int i = 0; i < sessions; ++i) {
    TransportFaultPlan plan = TransportFaultPlan::Clean();
    if (options.use_env_faults) {
      plan = TransportFaultPlan::FromEnv();
    } else if (options.fault_seed != 0) {
      plan = TransportFaultPlan::FromSeed(options.fault_seed + static_cast<uint64_t>(i));
    }
    fleet.AddClient("replayer-" + std::to_string(i), plan);
  }

  int ticks = 0;
  bool timed_out = false;
  for (const RecordedEdit& edit : trace.edits) {
    ClientSession* client =
        fleet.clients[static_cast<size_t>(std::clamp(edit.session, 0, sessions - 1))].get();
    // Version gate: the previous edit is already applied (the loop below
    // waited for it), so submitting now preserves trace order at the server
    // no matter how the transport behaves in between.  Wait for the
    // submitting client to be synced first — the outbox only drains then.
    while (!client->attached() || !client->synced()) {
      fleet.Step();
      if (++ticks > options.max_ticks) {
        timed_out = true;
        break;
      }
    }
    if (timed_out) {
      break;
    }
    auto submit_start = std::chrono::steady_clock::now();
    client->SubmitEdit(ToEditOp(edit));
    int quiet_stalled = 0;
    while (fleet.server.version(kDocName) < edit.version) {
      fleet.Step();
      if (++ticks > options.max_ticks) {
        timed_out = true;
        break;
      }
      // Loss detection: the transport can eat an in-flight edit (a severed
      // link discards both directions; the outbox was already popped on
      // send).  Once the whole system is quiescent — nothing deliverable,
      // nothing unacked, nothing pending — and the version is still short,
      // the original can never arrive, so resubmitting cannot double-apply.
      if (fleet.Quiesced()) {
        if (++quiet_stalled >= kLostEditQuietTicks) {
          client->SubmitEdit(ToEditOp(edit));
          ++result.resubmissions;
          quiet_stalled = 0;
        }
      } else {
        quiet_stalled = 0;
      }
    }
    if (timed_out) {
      break;
    }
    auto elapsed = std::chrono::steady_clock::now() - submit_start;
    fanout_us.Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()));
    replayed.Add(1);
    ++result.edits_applied;
  }

  // Let the last fan-out reach every replica before comparing.
  int settle = timed_out ? -1 : fleet.Settle(options.settle_ticks);
  result.completed = !timed_out && settle >= 0 &&
                     result.edits_applied == static_cast<int64_t>(trace.edits.size());
  result.ticks = ticks + std::max(0, settle);
  result.reconnects = fleet.TotalReconnects();
  result.final_version = fleet.server.version(kDocName);
  TextData* final_doc = fleet.server.document(kDocName);
  result.final_text = final_doc != nullptr ? final_doc->GetAllText() : std::string();
  result.final_digest = Fnv1a64(result.final_text);
  result.replicas_converged = result.completed;
  for (auto& client : fleet.clients) {
    if (client->replica() == nullptr ||
        client->replica()->GetAllText() != result.final_text) {
      result.replicas_converged = false;
    }
  }
  return result;
}

std::string ExpectedReplayText(const EditTrace& trace) {
  std::string text = trace.initial_text;
  for (const RecordedEdit& edit : trace.edits) {
    int64_t pos = std::min<int64_t>(edit.pos, static_cast<int64_t>(text.size()));
    if (edit.insert) {
      text.insert(static_cast<size_t>(pos), edit.text);
    } else {
      int64_t len =
          std::min<int64_t>(edit.len, static_cast<int64_t>(text.size()) - pos);
      if (len > 0) {
        text.erase(static_cast<size_t>(pos), static_cast<size_t>(len));
      }
    }
  }
  return text;
}

}  // namespace atk
