// Collaborative edit-trace recorder/replayer (DESIGN.md §10).
//
// Records a multi-session editing run against a live DocumentServer — every
// effective edit with the server version it produced — into a §5 datastream
// document (`\begindata{editrace,...}`), and replays such a trace against a
// fresh server byte-deterministically.  The replay is version-gated: edit k
// is submitted only once the server has applied edit k-1, so the server's
// apply order always equals trace order even when a faulted transport
// reorders, drops, or severs in between.  A lost edit (a broken channel can
// discard an in-flight frame) is detected when the whole system quiesces
// with the version still short, and is resubmitted — at that point nothing
// in flight can deliver the original, so the resubmission cannot
// double-apply.
//
// Determinism contract: the final document bytes depend only on the trace.
// Serial, `ATK_DS_THREADS=8`, and `ATK_NET_FAULTS` runs all converge to
// ExpectedReplayText(trace), which mirrors the server's clamping exactly.

#ifndef ATK_SRC_WORKLOAD_EDIT_REPLAY_H_
#define ATK_SRC_WORKLOAD_EDIT_REPLAY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/class_system/status.h"
#include "src/workload/session_trace.h"

namespace atk {

// One server-applied edit: the op as submitted plus the authoritative
// version the server reached by applying it.  Versions are consecutive —
// only applied edits bump a hosted document's version.
struct RecordedEdit {
  uint64_t version = 0;
  int session = 0;
  bool insert = true;
  int64_t pos = 0;
  int64_t len = 0;    // Delete length (inserts carry `text` instead).
  std::string text;   // Insert payload.
};

struct EditTrace {
  uint64_t seed = 0;        // Provenance (the generating SessionTraceSpec seed).
  int sessions = 1;         // Client sessions the replay should attach.
  std::string initial_text; // Hosted document's content before the first edit.
  std::vector<RecordedEdit> edits;  // In server apply order.
};

// Drives BuildSessionTrace(spec) through a live server over clean links in
// lock-step and captures every effective edit.  Steps the server turns into
// no-ops (e.g. a delete clamped to nothing) are dropped: a recorded trace
// replays version-for-version.
EditTrace RecordEditTrace(const SessionTraceSpec& spec);

// §5 external representation.  Payload bytes ride as lower-case hex inside
// directive args, so the recording is 7-bit, mailable, and salvageable like
// any other datastream document:
//   \begindata{editrace,1}
//   \replaymeta{1,<seed>,<sessions>,<edit count>}
//   \inittext{<hex chunk>}            (repeated, 64 hex chars per line)
//   \edit{<version>,<session>,<i|d>,<pos>,<len>,<hex text>}
//   \enddata{editrace,1}
inline constexpr std::string_view kEditTraceType = "editrace";
std::string EditTraceToDatastream(const EditTrace& trace);
Status EditTraceFromDatastream(std::string_view data, EditTrace* out);

struct ReplayOptions {
  // Transport faults for the replay links: when `use_env_faults` is set,
  // every link uses TransportFaultPlan::FromEnv() (the ATK_NET_FAULTS knob);
  // otherwise a nonzero `fault_seed` derives a per-session plan from
  // FromSeed(fault_seed + session).  Both zero: clean links.
  bool use_env_faults = false;
  uint64_t fault_seed = 0;
  int max_ticks = 400000;      // Hard cap on simulation ticks.
  int settle_ticks = 60000;    // Cap on the final quiescence settle.
};

struct ReplayResult {
  bool completed = false;           // Every edit applied within the tick caps.
  bool replicas_converged = false;  // All replicas byte-equal to the server doc.
  int64_t edits_applied = 0;
  int resubmissions = 0;       // Edits lost to the transport and resent.
  uint64_t reconnects = 0;     // Summed across sessions.
  uint64_t final_version = 0;
  int ticks = 0;               // Simulation ticks consumed.
  std::string final_text;      // Server document text after the replay.
  uint64_t final_digest = 0;   // Fnv1a64(final_text): the determinism pin.
};

ReplayResult ReplayEditTrace(const EditTrace& trace,
                             const ReplayOptions& options = ReplayOptions());

// Pure string-math oracle: the text after applying the trace in version
// order with the server's clamping (pos to size, delete length to the
// tail).  Config-independent — what every replay run must produce.
std::string ExpectedReplayText(const EditTrace& trace);

}  // namespace atk

#endif  // ATK_SRC_WORKLOAD_EDIT_REPLAY_H_
