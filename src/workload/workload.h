// Deterministic workload generators shared by tests, examples and benches.
//
// The paper's evaluation environment was 3000 campus users; these generators
// substitute synthetic but realistically-shaped documents, spreadsheets,
// mailboxes, drawings and input-event traces (see DESIGN.md §2).  Everything
// is seeded: the same seed always produces the same workload.

#ifndef ATK_SRC_WORKLOAD_WORKLOAD_H_
#define ATK_SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/mail_store.h"
#include "src/components/animation/anim_data.h"
#include "src/components/drawing/draw_data.h"
#include "src/components/raster/raster_data.h"
#include "src/components/table/table_data.h"
#include "src/components/text/text_data.h"
#include "src/wm/event.h"

namespace atk {

// xorshift64*: fast, deterministic, good enough for workloads.
class WorkloadRng {
 public:
  explicit WorkloadRng(uint64_t seed = 88) : state_(seed ? seed : 88) {}

  uint64_t Next();
  // Uniform in [0, bound).
  uint64_t Below(uint64_t bound);
  int IntIn(int lo, int hi);  // Inclusive.
  double Unit();              // [0, 1).
  bool Chance(double p);

 private:
  uint64_t state_;
};

// ---- Text -----------------------------------------------------------------

// `words` pseudo-English words as sentences/paragraphs.
std::string GenerateProse(WorkloadRng& rng, int words);

// A styled document: paragraphs with headings, bold/italic spans.
std::unique_ptr<TextData> GenerateDocument(WorkloadRng& rng, int paragraphs,
                                           int words_per_paragraph = 40);

// ---- Tables ----------------------------------------------------------------

// Pascal's Triangle as a spreadsheet (snapshot 5): v[i,0]=1, v[i,j] =
// v[i-1,j-1] + v[i-1,j] expressed as cell formulas.
std::unique_ptr<TableData> GeneratePascalTriangle(int rows);

// A random sheet: `numeric_fraction` numbers, `formula_fraction` formulas
// (sums/averages over earlier cells), rest text labels.
std::unique_ptr<TableData> GenerateSpreadsheet(WorkloadRng& rng, int rows, int cols,
                                               double formula_fraction = 0.3);

// ---- Other components ------------------------------------------------------

std::unique_ptr<DrawData> GenerateDrawing(WorkloadRng& rng, int shapes,
                                          int canvas_w = 300, int canvas_h = 200);
std::unique_ptr<RasterData> GenerateRaster(WorkloadRng& rng, int width, int height);
// A growing-triangle animation like snapshot 5's.
std::unique_ptr<AnimData> GeneratePascalAnimation(int frames);

// ---- Compound documents -------------------------------------------------------

// Options for GenerateCompoundDocument.
struct CompoundDocumentSpec {
  int paragraphs = 4;
  int tables = 1;
  int drawings = 1;
  int equations = 1;
  int rasters = 0;
  int animations = 0;
  // Nesting depth: each level embeds the next inside a table cell.
  int nesting_depth = 1;
};

std::unique_ptr<TextData> GenerateCompoundDocument(WorkloadRng& rng,
                                                   const CompoundDocumentSpec& spec);

// The paper's snapshot 5, faithfully: text containing a table whose cells
// hold a descriptive text, the recurrence equations, an animation, and a
// Pascal's Triangle spreadsheet.
std::unique_ptr<TextData> BuildPascalCompoundDocument();

// ---- Mail ------------------------------------------------------------------------

// Fills `store` with folders of messages; `embed_fraction` of the bodies
// embed a drawing or raster (snapshots 3/4).
void GenerateMailbox(WorkloadRng& rng, MailStore& store, int folders,
                     int messages_per_folder, double embed_fraction = 0.3);

// ---- Input traces -------------------------------------------------------------------

// A plausible editing session: clicks, drags, and typed characters within a
// `width` x `height` window.  `keys_fraction` of events are keystrokes.
std::vector<InputEvent> GenerateEventTrace(WorkloadRng& rng, int events, int width,
                                           int height, double keys_fraction = 0.6);

}  // namespace atk

#endif  // ATK_SRC_WORKLOAD_WORKLOAD_H_
