#include "src/workload/session_trace.h"

#include <algorithm>

#include "src/workload/workload.h"

namespace atk {
namespace {

// Word-ish insert payloads keep salvage and diff output readable.
const char* const kWords[] = {"annotate", "butler",  "console", "datastream",
                              "ezedit",   "fanout",  "graphic", "helpfile",
                              "inset",    "journal", "keymap",  "lookz"};

std::string InsertText(WorkloadRng& rng, int len) {
  std::string text;
  while (static_cast<int>(text.size()) < len) {
    if (!text.empty()) {
      text += ' ';
    }
    text += kWords[rng.Below(sizeof(kWords) / sizeof(kWords[0]))];
  }
  text.resize(len);
  return text;
}

}  // namespace

SessionTrace BuildSessionTrace(const SessionTraceSpec& spec) {
  WorkloadRng rng(spec.seed * 0x9E3779B97F4A7C15ull + 1);
  SessionTrace trace;
  trace.initial_text = InsertText(rng, static_cast<int>(spec.initial_size));
  int64_t size = static_cast<int64_t>(trace.initial_text.size());
  trace.steps.reserve(spec.steps);
  for (int i = 0; i < spec.steps; ++i) {
    TraceStep step;
    step.session = static_cast<int>(rng.Below(std::max(spec.sessions, 1)));
    step.insert = size == 0 || !rng.Chance(spec.delete_ratio);
    step.len = rng.IntIn(1, std::max(spec.max_run, 1));
    if (step.insert) {
      step.pos = static_cast<int64_t>(rng.Below(size + 1));
      step.text = InsertText(rng, static_cast<int>(step.len));
      size += step.len;
    } else {
      step.pos = static_cast<int64_t>(rng.Below(size));
      step.len = std::min(step.len, size - step.pos);
      size -= step.len;
    }
    trace.steps.push_back(std::move(step));
  }
  return trace;
}

std::string ExpectedFinalText(const SessionTrace& trace) {
  std::string text = trace.initial_text;
  for (const TraceStep& step : trace.steps) {
    int64_t pos = std::min<int64_t>(step.pos, text.size());
    if (step.insert) {
      text.insert(static_cast<size_t>(pos), step.text);
    } else {
      int64_t len = std::min<int64_t>(step.len, text.size() - pos);
      text.erase(static_cast<size_t>(pos), static_cast<size_t>(len));
    }
  }
  return text;
}

}  // namespace atk
