// Shared plumbing for the application-shaped scenario suite (DESIGN.md §10).
//
// The suite grows `src/workload/` beyond isolated-layer generators into
// whole-application workloads — a typescript/console stream, a messages-style
// mail corpus, and recorded collaborative edit traces — each stressing
// several layers at once so a regression surfaces in the scenario that
// exercises it.  This header holds what all of them share: the determinism
// contract's digest (FNV-1a over final bytes, the identity a replay is
// pinned against) and the hex codec the editrace recording format uses for
// arbitrary payload bytes.
//
// Determinism contract: every scenario is a pure function of its spec.  Two
// runs with the same spec — on one thread or eight, over a clean transport
// or a faulted one — must produce byte-identical final documents, and
// therefore equal digests.  tests/test_scenarios.cc holds each scenario to
// that bar.

#ifndef ATK_SRC_WORKLOAD_SCENARIO_H_
#define ATK_SRC_WORKLOAD_SCENARIO_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace atk {

// FNV-1a, 64-bit.  `seed` chains digests: Fnv1a64(b, Fnv1a64(a)) is an
// order-sensitive digest of a then b.
inline constexpr uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;
uint64_t Fnv1a64(std::string_view bytes, uint64_t seed = kFnv1aOffset);

// Lower-case hex codec for recording arbitrary bytes inside directive args
// (the editrace format): 7-bit printable, no datastream metacharacters, and
// short enough chunks stay inside the §5 80-column guideline.
std::string HexEncode(std::string_view bytes);
bool HexDecode(std::string_view hex, std::string* out);

}  // namespace atk

#endif  // ATK_SRC_WORKLOAD_SCENARIO_H_
