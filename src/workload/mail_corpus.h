// Messages-style mail corpus scenario (DESIGN.md §10).
//
// The Andrew Message System moved compound documents through mail exactly as
// they were edited (§1 of the paper).  This scenario cycles a seeded corpus
// of generated compound documents through the whole persistence pipeline —
// write → (optional corruption + salvage) → read → re-write → re-read — so
// one run stresses writer chunking, the zero-copy reader, parallel deferred
// embedded-object decode, and the salvager together.  Clean messages must
// round-trip byte-identically; corrupted ones must still parse after
// salvage.  Surviving messages are delivered into a MailStore, holding the
// corpus to the 7-bit mailability contract.
//
// Determinism: the corpus digest is a pure function of the spec — the same
// seed yields the same bytes whether decoded serially or on a worker pool.

#ifndef ATK_SRC_WORKLOAD_MAIL_CORPUS_H_
#define ATK_SRC_WORKLOAD_MAIL_CORPUS_H_

#include <cstdint>
#include <string>

namespace atk {

struct MailCorpusSpec {
  uint64_t seed = 1;
  int messages = 32;
  int folders = 4;
  double embed_fraction = 0.5;    // Fraction embedding tables/drawings/rasters.
  double corrupt_fraction = 0.0;  // Fraction run through corrupt + salvage.
  int stream_faults = 2;          // Faults injected per corrupted message.
  int decode_threads = 0;         // ReadContext workers; 0 = serial.
};

struct MailCorpusResult {
  int messages = 0;             // Messages generated.
  int delivered = 0;            // Accepted by MailStore::Deliver.
  int salvaged = 0;             // Messages that went through the salvager.
  int64_t bytes_written = 0;    // Serialized bytes across first writes.
  int clean_roundtrip_mismatches = 0;  // Clean messages whose re-write differed.
  int read_failures = 0;        // Messages whose (salvaged) body failed to parse.
  // Order-sensitive FNV-1a chain over every message's final serialized body.
  uint64_t corpus_digest = 0;
};

MailCorpusResult RunMailCorpus(const MailCorpusSpec& spec);

}  // namespace atk

#endif  // ATK_SRC_WORKLOAD_MAIL_CORPUS_H_
