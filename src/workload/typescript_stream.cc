#include "src/workload/typescript_stream.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/apps/standard_modules.h"
#include "src/base/interaction_manager.h"
#include "src/class_system/loader.h"
#include "src/components/text/text_data.h"
#include "src/components/text/text_view.h"
#include "src/observability/observability.h"
#include "src/wm/window_system.h"
#include "src/workload/scenario.h"
#include "src/workload/workload.h"

namespace atk {
namespace {

using observability::Counter;
using observability::MetricsRegistry;

// Equal horizontal slots for the live views — a console pane next to a
// typescript pane, both on the same transcript.
class SlotHost : public View {
 public:
  void Layout() override {
    if (graphic() == nullptr || children().empty()) {
      return;
    }
    Rect b = graphic()->LocalBounds();
    int w = std::max(1, b.width / static_cast<int>(children().size()));
    for (size_t i = 0; i < children().size(); ++i) {
      children()[i]->Allocate(Rect{static_cast<int>(i) * w, 0, w, b.height}, graphic());
    }
  }
};

}  // namespace

std::string TypescriptLine(uint64_t seed, int64_t index) {
  // Content depends only on (seed, index): any suffix of the stream can be
  // regenerated without replaying the prefix.
  WorkloadRng rng(seed * 0x9E3779B97F4A7C15ull + static_cast<uint64_t>(index) + 1);
  static constexpr const char* kTags[] = {"cc", "ld", "run", "ok", "warn", "make"};
  std::string line;
  line += '[';
  line += std::to_string(index);
  line += "] ";
  line += kTags[rng.Below(6)];
  line += ": ";
  int words = rng.IntIn(2, 9);
  for (int w = 0; w < words; ++w) {
    int len = rng.IntIn(2, 9);
    for (int c = 0; c < len; ++c) {
      line += static_cast<char>('a' + static_cast<char>(rng.Below(26)));
    }
    if (w + 1 < words) {
      line += ' ';
    }
  }
  return line;
}

TypescriptStreamResult RunTypescriptStream(const TypescriptStreamSpec& spec) {
  RegisterStandardModules();
  Loader::Instance().Require("text");

  static Counter& lines_appended =
      MetricsRegistry::Instance().counter("scenario.typescript.lines");

  TypescriptStreamResult result;
  std::unique_ptr<WindowSystem> ws = WindowSystem::Open("itc");
  auto im = InteractionManager::Create(*ws, spec.width, spec.height, "typescript");

  TextData transcript;
  SlotHost host;
  int view_count = std::max(1, spec.views);
  std::vector<std::unique_ptr<TextView>> views;
  views.reserve(static_cast<size_t>(view_count));
  for (int i = 0; i < view_count; ++i) {
    views.push_back(std::make_unique<TextView>());
    views.back()->SetText(&transcript);
    host.AddChild(views.back().get());
  }
  TextView* tail_view = views.front().get();
  im->SetChild(&host);
  im->RunOnce();
  ++result.update_cycles;

  int batch = std::max(1, spec.batch_lines);
  for (int64_t i = 0; i < spec.lines; ++i) {
    ATK_TRACE_SPAN("scenario.typescript.append");
    std::string line = TypescriptLine(spec.seed, i);
    line += '\n';
    // Tail append: every insert notifies all attached views synchronously;
    // the damage they post coalesces until the batch's RunOnce below.
    transcript.InsertString(transcript.size(), line);
    lines_appended.Add(1);
    ++result.lines;
    result.bytes += static_cast<int64_t>(line.size());
    if ((i + 1) % batch == 0 || i + 1 == spec.lines) {
      // Follow the tail like a console: scroll before the repaint so the
      // layout pass re-measures only the fresh suffix.
      tail_view->ScrollToUnit(std::max<int64_t>(0, transcript.LineCount() - 2));
      im->RunOnce();
      ++result.update_cycles;
    }
  }

  result.transcript_digest = Fnv1a64(transcript.GetAllText());
  result.display_hash = im->window()->Display().Hash();
  result.line_count = transcript.LineCount();
  // The tailing view scrolls every batch, and a scroll-origin change
  // invalidates its whole layout cache; the prefix reuse the scenario
  // demonstrates shows up in the views holding their scroll position.
  for (auto& view : views) {
    result.layout_lines_reused += view->layout_lines_reused();
    view->SetText(nullptr);
  }
  return result;
}

}  // namespace atk
