// Corruption scenarios: the end-to-end robustness workload.
//
// One call runs the whole pipeline the fault-injection harness exists for:
// generate a compound document, serialize it, damage it per a seeded
// FaultPlan, salvage the damage, re-read the salvaged stream, and re-save.
// Tests sweep seeds over this and assert the salvage guarantees; the bench
// times the stages.

#ifndef ATK_SRC_WORKLOAD_CORRUPTION_H_
#define ATK_SRC_WORKLOAD_CORRUPTION_H_

#include <cstdint>
#include <string>

#include "src/robustness/fault_injector.h"
#include "src/robustness/salvage.h"

namespace atk {

struct CorruptionScenario {
  uint64_t seed = 0;
  FaultPlan plan;
  SalvageReport report;

  std::string original;   // Clean serialized document.
  std::string corrupted;  // After FaultInjector::Corrupt.
  std::string salvaged;   // After DataStreamSalvager::Salvage.
  std::string resaved;    // Salvaged, re-read, and written out again.

  size_t damage_bytes = 0;  // Budget actually spent by the injector.
  bool reread_ok = false;   // Salvaged stream parsed into a document.
  // The re-read produced no reader diagnostics (the salvager's core
  // guarantee: its output is well-formed).
  bool reread_clean = false;
};

// Runs one seeded scenario: same seed, same everything.  `stream_faults`
// scales how much damage the plan inflicts.
CorruptionScenario RunCorruptionScenario(uint64_t seed, int stream_faults = 3);

// Convenience for benches/tests that only need a serialized document.
std::string GenerateSerializedDocument(uint64_t seed);

}  // namespace atk

#endif  // ATK_SRC_WORKLOAD_CORRUPTION_H_
