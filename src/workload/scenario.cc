#include "src/workload/scenario.h"

namespace atk {

uint64_t Fnv1a64(std::string_view bytes, uint64_t seed) {
  uint64_t hash = seed;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string HexEncode(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (char c : bytes) {
    unsigned char byte = static_cast<unsigned char>(c);
    out += kDigits[byte >> 4];
    out += kDigits[byte & 0xF];
  }
  return out;
}

bool HexDecode(std::string_view hex, std::string* out) {
  if (hex.size() % 2 != 0) {
    return false;
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') {
      return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
      return c - 'a' + 10;
    }
    return -1;
  };
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    *out += static_cast<char>((hi << 4) | lo);
  }
  return true;
}

}  // namespace atk
