#include "src/workload/corruption.h"

#include "src/apps/standard_modules.h"
#include "src/base/data_object.h"
#include "src/datastream/reader.h"
#include "src/workload/workload.h"

namespace atk {

std::string GenerateSerializedDocument(uint64_t seed) {
  RegisterStandardModules();
  WorkloadRng rng(seed);
  CompoundDocumentSpec spec;
  spec.paragraphs = 3;
  spec.tables = 1;
  spec.drawings = 1;
  spec.equations = 1;
  spec.rasters = 1;
  std::unique_ptr<TextData> doc = GenerateCompoundDocument(rng, spec);
  return WriteDocument(*doc);
}

CorruptionScenario RunCorruptionScenario(uint64_t seed, int stream_faults) {
  CorruptionScenario scenario;
  scenario.seed = seed;
  scenario.original = GenerateSerializedDocument(seed);

  scenario.plan = FaultPlan::FromSeed(seed, scenario.original.size(), stream_faults);
  FaultInjector injector(scenario.plan);
  scenario.corrupted = injector.Corrupt(scenario.original);
  scenario.damage_bytes = injector.damage_bytes();

  DataStreamSalvager salvager;
  scenario.salvaged = salvager.Salvage(scenario.corrupted, &scenario.report);

  // Reader-level cleanliness: the salvaged stream tokenizes with no
  // diagnostics and balanced markers.  (Component-level recoveries — e.g. a
  // \view reference whose target was quarantined — are legitimate damage
  // fallout and judged separately by the tests.)
  DataStreamReader reader(scenario.salvaged);
  while (reader.Next().kind != DataStreamReader::Token::Kind::kEof) {
  }
  scenario.reread_clean = reader.diagnostics().empty() && !reader.truncated();

  ReadContext context;
  std::unique_ptr<DataObject> reread = ReadDocument(scenario.salvaged, &context);
  scenario.reread_ok = reread != nullptr;
  if (reread != nullptr) {
    scenario.resaved = WriteDocument(*reread);
  }
  return scenario;
}

}  // namespace atk
