// Deterministic multi-session edit traces for the document server (PR 6).
//
// A SessionTrace is a seeded script of edits for N concurrent client
// sessions against one shared document: at each step, one session inserts or
// deletes a small run of text at a pseudo-random position.  Positions are
// generated against the document length the server would have after every
// previous step *in trace order*; under transport faults the server may
// apply edits in a different interleaving (per-session order is preserved,
// cross-session order is not), and the server clamps out-of-range positions,
// so the invariant the differential test checks is not "equals
// ExpectedFinalText" but the §1 sharing contract: every replica byte-equal
// to the server's document once the system quiesces.  ExpectedFinalText is
// for fault-free runs, where arrival order is trace order.
//
// Shared by the fault-sweep differential test (tests/test_server.cc) and
// bench_server: same seed, same trace, byte-for-byte.

#ifndef ATK_SRC_WORKLOAD_SESSION_TRACE_H_
#define ATK_SRC_WORKLOAD_SESSION_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace atk {

struct TraceStep {
  int session = 0;          // Which client submits this edit.
  bool insert = true;
  int64_t pos = 0;          // Position hint; the server clamps.
  int64_t len = 0;          // Delete length / insert text length.
  std::string text;         // Insert payload.
};

struct SessionTraceSpec {
  uint64_t seed = 1;
  int sessions = 4;
  int steps = 64;
  int64_t initial_size = 256;  // Length of the seed document text.
  double delete_ratio = 0.3;   // Fraction of steps that delete.
  int max_run = 16;            // Longest single insert/delete.
};

struct SessionTrace {
  std::string initial_text;      // Seed content for the hosted document.
  std::vector<TraceStep> steps;  // In submission order.
};

// Builds the trace for `spec`; deterministic in every field of the spec.
SessionTrace BuildSessionTrace(const SessionTraceSpec& spec);

// The document text after applying the whole trace in order to
// `initial_text` (what every replica must equal once the system quiesces).
std::string ExpectedFinalText(const SessionTrace& trace);

}  // namespace atk

#endif  // ATK_SRC_WORKLOAD_SESSION_TRACE_H_
