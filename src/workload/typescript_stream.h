// Typescript/console stream scenario (DESIGN.md §10).
//
// The paper ships ATK inside `typescript` and `console` — programs whose
// defining workload is a process appending output to the tail of a shared
// transcript while live views follow along.  This scenario reproduces that
// shape headlessly: seeded console lines are appended in batches to one
// TextData observed by several TextViews under a real InteractionManager,
// so every append exercises per-edit observer notification, damage
// coalescing across a batch, and layout prefix reuse when the next repaint
// only has to measure the new tail.
//
// Determinism: the result digests (transcript bytes and final framebuffer
// hash) are pure functions of the spec.

#ifndef ATK_SRC_WORKLOAD_TYPESCRIPT_STREAM_H_
#define ATK_SRC_WORKLOAD_TYPESCRIPT_STREAM_H_

#include <cstdint>
#include <string>

namespace atk {

struct TypescriptStreamSpec {
  uint64_t seed = 1;
  int lines = 4096;      // Total console lines appended.
  int batch_lines = 64;  // Lines appended per update cycle (coalesced damage).
  int views = 2;         // Live views sharing the transcript (one tails it).
  int width = 400;
  int height = 300;
};

struct TypescriptStreamResult {
  int64_t lines = 0;            // Lines actually appended.
  int64_t bytes = 0;            // Transcript bytes appended.
  int update_cycles = 0;        // InteractionManager::RunOnce calls.
  uint64_t transcript_digest = 0;  // FNV-1a over the final transcript text.
  uint64_t display_hash = 0;       // Final framebuffer hash.
  int64_t line_count = 0;          // Final TextData::LineCount().
  uint64_t layout_lines_reused = 0;  // Prefix-reuse hits summed over all views.
};

// Generates one seeded console line (no trailing newline); exposed so tests
// can pin the stream's content independently of the view tree.
std::string TypescriptLine(uint64_t seed, int64_t index);

TypescriptStreamResult RunTypescriptStream(const TypescriptStreamSpec& spec);

}  // namespace atk

#endif  // ATK_SRC_WORKLOAD_TYPESCRIPT_STREAM_H_
