#include "src/workload/workload.h"

#include <algorithm>

#include "src/class_system/loader.h"
#include "src/components/equation/eq_data.h"

namespace atk {

uint64_t WorkloadRng::Next() {
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 2685821657736338717ull;
}

uint64_t WorkloadRng::Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

int WorkloadRng::IntIn(int lo, int hi) {
  if (hi <= lo) {
    return lo;
  }
  return lo + static_cast<int>(Below(static_cast<uint64_t>(hi - lo + 1)));
}

double WorkloadRng::Unit() { return static_cast<double>(Next() >> 11) / 9007199254740992.0; }

bool WorkloadRng::Chance(double p) { return Unit() < p; }

// ---- Text -------------------------------------------------------------------

namespace {

const char* const kSyllables[] = {"an", "drew", "tool", "kit", "da", "ta",  "ob", "ject",
                                  "view", "tree", "men", "u",  "cur", "sor", "e",  "vent",
                                  "text", "ta",  "ble", "pie", "chart", "ras", "ter", "mail"};
constexpr int kSyllableCount = static_cast<int>(sizeof(kSyllables) / sizeof(kSyllables[0]));

std::string MakeWord(WorkloadRng& rng) {
  int syllables = rng.IntIn(1, 3);
  std::string word;
  for (int i = 0; i < syllables; ++i) {
    word += kSyllables[rng.Below(kSyllableCount)];
  }
  return word;
}

}  // namespace

std::string GenerateProse(WorkloadRng& rng, int words) {
  std::string prose;
  int words_in_sentence = 0;
  bool capitalize = true;
  for (int i = 0; i < words; ++i) {
    std::string word = MakeWord(rng);
    if (capitalize && !word.empty()) {
      word[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(word[0])));
      capitalize = false;
    }
    prose += word;
    ++words_in_sentence;
    if (words_in_sentence >= rng.IntIn(6, 14) || i + 1 == words) {
      prose += ".";
      capitalize = true;
      words_in_sentence = 0;
      prose += i + 1 == words ? "" : " ";
    } else {
      prose += " ";
    }
  }
  return prose;
}

std::unique_ptr<TextData> GenerateDocument(WorkloadRng& rng, int paragraphs,
                                           int words_per_paragraph) {
  auto text = std::make_unique<TextData>();
  for (int p = 0; p < paragraphs; ++p) {
    if (p % 4 == 0) {
      std::string heading = "Section " + std::to_string(p / 4 + 1) + ": " + MakeWord(rng);
      int64_t start = text->size();
      text->InsertString(start, heading + "\n");
      text->ApplyStyle(start, static_cast<int64_t>(heading.size()), "heading");
    }
    std::string prose = GenerateProse(rng, words_per_paragraph);
    int64_t start = text->size();
    text->InsertString(start, prose + "\n\n");
    // Random emphasis spans.
    if (rng.Chance(0.6) && prose.size() > 20) {
      int64_t span_start = start + rng.IntIn(0, static_cast<int>(prose.size()) / 2);
      int64_t span_len = rng.IntIn(4, 16);
      text->ApplyStyle(span_start, span_len, rng.Chance(0.5) ? "bold" : "italic");
    }
  }
  return text;
}

// ---- Tables -----------------------------------------------------------------

std::unique_ptr<TableData> GeneratePascalTriangle(int rows) {
  auto table = std::make_unique<TableData>();
  table->Resize(rows, rows);
  table->SetNumber(0, 0, 1);
  for (int r = 1; r < rows; ++r) {
    // Column 0 inherits from the apex, so restyling the apex rescales the
    // whole triangle through the dependency graph.
    table->SetFormula(r, 0, CellRef{r - 1, 0}.ToA1());
    for (int c = 1; c <= r; ++c) {
      // v[i,j] = v[i-1,j-1] + v[i-1,j]
      std::string above_left = CellRef{r - 1, c - 1}.ToA1();
      std::string above = CellRef{r - 1, c}.ToA1();
      table->SetFormula(r, c, above_left + "+" + above);
    }
  }
  return table;
}

std::unique_ptr<TableData> GenerateSpreadsheet(WorkloadRng& rng, int rows, int cols,
                                               double formula_fraction) {
  auto table = std::make_unique<TableData>();
  table->Resize(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (r == 0 || c == 0) {
        table->SetText(r, c, MakeWord(rng));
      } else if (rng.Unit() < formula_fraction && r > 1) {
        // Sum of the column so far — a realistic running total.
        std::string range =
            CellRef{1, c}.ToA1() + ":" + CellRef{r - 1, c}.ToA1();
        table->SetFormula(r, c, "SUM(" + range + ")");
      } else {
        table->SetNumber(r, c, rng.IntIn(1, 1000));
      }
    }
  }
  return table;
}

// ---- Other components -----------------------------------------------------------

std::unique_ptr<DrawData> GenerateDrawing(WorkloadRng& rng, int shapes, int canvas_w,
                                          int canvas_h) {
  auto drawing = std::make_unique<DrawData>();
  for (int i = 0; i < shapes; ++i) {
    int x = rng.IntIn(0, canvas_w - 40);
    int y = rng.IntIn(0, canvas_h - 30);
    switch (rng.Below(4)) {
      case 0:
        drawing->AddLine(Point{x, y}, Point{x + rng.IntIn(10, 40), y + rng.IntIn(5, 30)});
        break;
      case 1:
        drawing->AddRect(Rect{x, y, rng.IntIn(10, 40), rng.IntIn(8, 30)}, rng.Chance(0.3));
        break;
      case 2:
        drawing->AddEllipse(Rect{x, y, rng.IntIn(10, 40), rng.IntIn(8, 30)}, rng.Chance(0.3));
        break;
      default:
        drawing->AddText(Rect{x, y, 60, 14}, MakeWord(rng));
        break;
    }
  }
  return drawing;
}

std::unique_ptr<RasterData> GenerateRaster(WorkloadRng& rng, int width, int height) {
  auto raster = std::make_unique<RasterData>(width, height);
  // A dithered blob: denser toward the center (looks like snapshot 4's cat
  // if you squint hard enough).
  for (int y = 0; y < height; ++y) {
    std::vector<bool> row(static_cast<size_t>(width));
    for (int x = 0; x < width; ++x) {
      double dx = (x - width / 2.0) / (width / 2.0);
      double dy = (y - height / 2.0) / (height / 2.0);
      double density = 1.0 - (dx * dx + dy * dy);
      row[static_cast<size_t>(x)] = rng.Unit() < density * 0.8;
    }
    raster->SetRow(y, row);
  }
  return raster;
}

std::unique_ptr<AnimData> GeneratePascalAnimation(int frames) {
  auto anim = std::make_unique<AnimData>();
  for (int f = 0; f < frames; ++f) {
    int frame = anim->AddFrame(/*copy_previous=*/true);
    // Each frame adds one row of the triangle as little boxes.
    int y = 4 + f * 10;
    for (int c = 0; c <= f; ++c) {
      int x = 40 - f * 5 + c * 10;
      anim->AddRect(frame, Rect{x, y, 8, 8});
    }
  }
  return anim;
}

// ---- Compound documents ------------------------------------------------------------

std::unique_ptr<TextData> GenerateCompoundDocument(WorkloadRng& rng,
                                                   const CompoundDocumentSpec& spec) {
  auto text = GenerateDocument(rng, spec.paragraphs);
  auto embed_at_random = [&](std::unique_ptr<DataObject> obj) {
    int64_t pos = static_cast<int64_t>(rng.Below(static_cast<uint64_t>(text->size() + 1)));
    text->InsertObject(pos, std::move(obj));
  };
  for (int i = 0; i < spec.tables; ++i) {
    std::unique_ptr<TableData> table = GenerateSpreadsheet(rng, 5, 4);
    // Nesting: bury a smaller structure inside a cell, `nesting_depth` deep.
    TableData* level = table.get();
    for (int d = 1; d < spec.nesting_depth; ++d) {
      std::unique_ptr<TableData> inner = GenerateSpreadsheet(rng, 3, 3);
      TableData* next = inner.get();
      level->SetObject(1, 1, std::move(inner));
      level = next;
    }
    embed_at_random(std::move(table));
  }
  for (int i = 0; i < spec.drawings; ++i) {
    embed_at_random(GenerateDrawing(rng, 6, 150, 100));
  }
  for (int i = 0; i < spec.equations; ++i) {
    auto eq = std::make_unique<EqData>();
    eq->SetSource("v_{i,j} = v_{i-1,j-1} + v_{i-1,j}");
    embed_at_random(std::move(eq));
  }
  for (int i = 0; i < spec.rasters; ++i) {
    embed_at_random(GenerateRaster(rng, 32, 24));
  }
  for (int i = 0; i < spec.animations; ++i) {
    embed_at_random(GeneratePascalAnimation(5));
  }
  return text;
}

std::unique_ptr<TextData> BuildPascalCompoundDocument() {
  auto text = std::make_unique<TextData>();
  text->InsertString(0,
                     "This is an example text component that contains a table. The table "
                     "contains a number of other components including another text "
                     "component, an equation and an animation. It also shows off the "
                     "spreadsheet capabilities of the table.\n\nPascal's Triangle\n\n");
  // The heading style on "Pascal's Triangle".
  int64_t heading_pos = text->size() - 19;
  text->ApplyStyle(heading_pos, 17, "heading");

  auto table = std::make_unique<TableData>();
  table->Resize(2, 2);
  table->SetColWidth(0, 140);
  table->SetColWidth(1, 160);

  auto description = std::make_unique<TextData>();
  description->SetText(
      "This table contains several descriptions of Pascal's Triangle. It contains a set "
      "of equations which defines the values of the triangle. It also contains an "
      "animation showing the building of the triangle. Finally there is an "
      "implementation using the spreadsheet facilities of the table object.");
  table->SetObject(0, 0, std::move(description));

  auto equation = std::make_unique<EqData>();
  equation->SetSource("v_{i,j} = v_{i-1,j-1} + v_{i-1,j}");
  table->SetObject(0, 1, std::move(equation));

  table->SetObject(1, 0, GeneratePascalAnimation(6));
  table->SetObject(1, 1, GeneratePascalTriangle(6));

  text->InsertObject(text->size(), std::move(table));
  text->InsertString(text->size(), "\n\nThe End\n");
  return text;
}

// ---- Mail ---------------------------------------------------------------------------

void GenerateMailbox(WorkloadRng& rng, MailStore& store, int folders,
                     int messages_per_folder, double embed_fraction) {
  const char* const kBoards[] = {"andrew.messages",  "andrew.gripes", "andrew.ez",
                                 "cmu.misc.market", "org.acm",        "mail"};
  for (int f = 0; f < folders; ++f) {
    std::string name = f < 6 ? kBoards[f] : "bboard." + MakeWord(rng);
    store.AddFolder(name);
    for (int m = 0; m < messages_per_folder; ++m) {
      MailMessage message;
      message.from = MakeWord(rng) + "@andrew.cmu.edu";
      message.to = "user@andrew.cmu.edu";
      message.subject = GenerateProse(rng, rng.IntIn(2, 6));
      if (!message.subject.empty() && message.subject.back() == '.') {
        message.subject.pop_back();
      }
      std::unique_ptr<TextData> body = GenerateDocument(rng, rng.IntIn(1, 3), 25);
      if (rng.Chance(embed_fraction)) {
        if (rng.Chance(0.5)) {
          body->InsertObject(body->size(), GenerateDrawing(rng, 5, 120, 80));
        } else {
          body->InsertObject(body->size(), GenerateRaster(rng, 24, 16));
        }
      }
      message.body = WriteDocument(*body);
      message.is_new = rng.Chance(0.4);
      store.Deliver(name, std::move(message));
    }
  }
}

// ---- Input traces ----------------------------------------------------------------------

std::vector<InputEvent> GenerateEventTrace(WorkloadRng& rng, int events, int width,
                                           int height, double keys_fraction) {
  std::vector<InputEvent> trace;
  trace.reserve(static_cast<size_t>(events));
  bool button_down = false;
  Point mouse{width / 2, height / 2};
  while (static_cast<int>(trace.size()) < events) {
    if (!button_down && rng.Unit() < keys_fraction) {
      const char* kTypable = "abcdefghijklmnopqrstuvwxyz    ,.\n";
      trace.push_back(InputEvent::KeyPress(kTypable[rng.Below(33)]));
      continue;
    }
    if (!button_down) {
      mouse = Point{rng.IntIn(0, width - 1), rng.IntIn(0, height - 1)};
      trace.push_back(InputEvent::MouseAt(EventType::kMouseDown, mouse));
      button_down = true;
      continue;
    }
    if (rng.Chance(0.5)) {
      mouse.x = std::clamp(mouse.x + rng.IntIn(-20, 20), 0, width - 1);
      mouse.y = std::clamp(mouse.y + rng.IntIn(-10, 10), 0, height - 1);
      trace.push_back(InputEvent::MouseAt(EventType::kMouseDrag, mouse));
    } else {
      trace.push_back(InputEvent::MouseAt(EventType::kMouseUp, mouse));
      button_down = false;
    }
  }
  if (button_down) {
    trace.push_back(InputEvent::MouseAt(EventType::kMouseUp, mouse));
  }
  return trace;
}

}  // namespace atk
