#include "src/workload/mail_corpus.h"

#include <memory>
#include <utility>

#include "src/apps/mail_store.h"
#include "src/apps/standard_modules.h"
#include "src/base/data_object.h"
#include "src/observability/observability.h"
#include "src/robustness/fault_injector.h"
#include "src/robustness/salvage.h"
#include "src/workload/scenario.h"
#include "src/workload/workload.h"

namespace atk {
namespace {

using observability::Counter;
using observability::MetricsRegistry;

// One seeded compound message body, sized like real mail: mostly prose,
// `embed` embedding a table, drawing or raster.
std::unique_ptr<TextData> GenerateMessageDocument(WorkloadRng& rng, bool embed) {
  CompoundDocumentSpec spec;
  spec.paragraphs = rng.IntIn(1, 4);
  spec.tables = 0;
  spec.drawings = 0;
  spec.equations = 0;
  spec.rasters = 0;
  if (embed) {
    switch (rng.Below(3)) {
      case 0:
        spec.tables = 1;
        break;
      case 1:
        spec.drawings = 1;
        break;
      default:
        spec.rasters = 1;
        break;
    }
    spec.equations = rng.Chance(0.3) ? 1 : 0;
  }
  return GenerateCompoundDocument(rng, spec);
}

}  // namespace

MailCorpusResult RunMailCorpus(const MailCorpusSpec& spec) {
  RegisterStandardModules();

  static Counter& salvaged_counter =
      MetricsRegistry::Instance().counter("scenario.mail.salvaged");
  static Counter& roundtrips =
      MetricsRegistry::Instance().counter("scenario.mail.roundtrips");

  MailCorpusResult result;
  MailStore store;
  WorkloadRng rng(spec.seed * 0x9E3779B97F4A7C15ull + 1);
  uint64_t digest = kFnv1aOffset;

  for (int i = 0; i < spec.messages; ++i) {
    ATK_TRACE_SPAN("scenario.mail.roundtrip");
    bool embed = rng.Chance(spec.embed_fraction);
    bool corrupt = rng.Chance(spec.corrupt_fraction);
    std::unique_ptr<TextData> doc = GenerateMessageDocument(rng, embed);
    std::string wire = WriteDocument(*doc);
    ++result.messages;
    result.bytes_written += static_cast<int64_t>(wire.size());

    std::string body = wire;
    if (corrupt) {
      // A damaged message must still open after salvage, like a mailbox
      // recovered from a bad disk.
      FaultPlan plan = FaultPlan::FromSeed(spec.seed + static_cast<uint64_t>(i),
                                          body.size(), spec.stream_faults);
      FaultInjector injector(plan);
      std::string corrupted = injector.Corrupt(body);
      SalvageReport report;
      DataStreamSalvager salvager;
      body = salvager.Salvage(corrupted, &report);
      ++result.salvaged;
      salvaged_counter.Add(1);
    }

    // Read → re-write → re-read: the reader (optionally on a decode pool)
    // must reconstruct a document whose serialization is stable.
    ReadContext context;
    if (spec.decode_threads > 0) {
      context.EnableDeferredDecode(spec.decode_threads);
    }
    std::unique_ptr<DataObject> parsed = ReadDocument(body, &context);
    if (parsed == nullptr) {
      ++result.read_failures;
      continue;
    }
    std::string rewritten = WriteDocument(*parsed);
    if (!corrupt && rewritten != wire) {
      ++result.clean_roundtrip_mismatches;
    }
    ReadContext recheck;
    if (spec.decode_threads > 0) {
      recheck.EnableDeferredDecode(spec.decode_threads);
    }
    std::unique_ptr<DataObject> reread = ReadDocument(rewritten, &recheck);
    if (reread == nullptr) {
      ++result.read_failures;
      continue;
    }
    roundtrips.Add(1);

    MailMessage message;
    message.from = "corpus-" + std::to_string(spec.seed);
    message.to = "reader";
    message.subject = "message " + std::to_string(i);
    message.body = rewritten;
    std::string folder = "folder-" + std::to_string(i % std::max(1, spec.folders));
    if (store.Deliver(folder, std::move(message))) {
      ++result.delivered;
    }
    digest = Fnv1a64(rewritten, digest);
  }

  result.corpus_digest = digest;
  return result;
}

}  // namespace atk
