# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/class_system")
subdirs("src/graphics")
subdirs("src/datastream")
subdirs("src/wm")
subdirs("src/base")
subdirs("src/components/text")
subdirs("src/components/table")
subdirs("src/components/drawing")
subdirs("src/components/equation")
subdirs("src/components/raster")
subdirs("src/components/animation")
subdirs("src/components/scroll")
subdirs("src/components/frame")
subdirs("src/components/widgets")
subdirs("src/apps")
subdirs("src/workload")
subdirs("tests")
subdirs("bench")
subdirs("examples")
