# Empty compiler generated dependencies file for bench_wm.
# This may be replaced when dependencies are built.
