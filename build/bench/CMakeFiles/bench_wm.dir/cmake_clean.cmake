file(REMOVE_RECURSE
  "CMakeFiles/bench_wm.dir/bench_wm.cpp.o"
  "CMakeFiles/bench_wm.dir/bench_wm.cpp.o.d"
  "bench_wm"
  "bench_wm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
