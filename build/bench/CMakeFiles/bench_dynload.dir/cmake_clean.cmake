file(REMOVE_RECURSE
  "CMakeFiles/bench_dynload.dir/bench_dynload.cpp.o"
  "CMakeFiles/bench_dynload.dir/bench_dynload.cpp.o.d"
  "bench_dynload"
  "bench_dynload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
