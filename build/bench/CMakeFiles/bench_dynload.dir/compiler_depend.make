# Empty compiler generated dependencies file for bench_dynload.
# This may be replaced when dependencies are built.
