
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_dynload.cpp" "bench/CMakeFiles/bench_dynload.dir/bench_dynload.cpp.o" "gcc" "bench/CMakeFiles/bench_dynload.dir/bench_dynload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/atk_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/atk_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/components/table/CMakeFiles/atk_table.dir/DependInfo.cmake"
  "/root/repo/build/src/components/drawing/CMakeFiles/atk_drawing.dir/DependInfo.cmake"
  "/root/repo/build/src/components/text/CMakeFiles/atk_text.dir/DependInfo.cmake"
  "/root/repo/build/src/components/equation/CMakeFiles/atk_equation.dir/DependInfo.cmake"
  "/root/repo/build/src/components/raster/CMakeFiles/atk_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/components/animation/CMakeFiles/atk_animation.dir/DependInfo.cmake"
  "/root/repo/build/src/components/scroll/CMakeFiles/atk_scroll.dir/DependInfo.cmake"
  "/root/repo/build/src/components/frame/CMakeFiles/atk_frame.dir/DependInfo.cmake"
  "/root/repo/build/src/components/widgets/CMakeFiles/atk_widgets.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/atk_base.dir/DependInfo.cmake"
  "/root/repo/build/src/wm/CMakeFiles/atk_wm.dir/DependInfo.cmake"
  "/root/repo/build/src/datastream/CMakeFiles/atk_datastream.dir/DependInfo.cmake"
  "/root/repo/build/src/graphics/CMakeFiles/atk_graphics.dir/DependInfo.cmake"
  "/root/repo/build/src/class_system/CMakeFiles/atk_class_system.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
