file(REMOVE_RECURSE
  "CMakeFiles/bench_datastream.dir/bench_datastream.cpp.o"
  "CMakeFiles/bench_datastream.dir/bench_datastream.cpp.o.d"
  "bench_datastream"
  "bench_datastream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datastream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
