# Empty dependencies file for bench_datastream.
# This may be replaced when dependencies are built.
