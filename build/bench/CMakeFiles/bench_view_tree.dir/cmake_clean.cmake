file(REMOVE_RECURSE
  "CMakeFiles/bench_view_tree.dir/bench_view_tree.cpp.o"
  "CMakeFiles/bench_view_tree.dir/bench_view_tree.cpp.o.d"
  "bench_view_tree"
  "bench_view_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_view_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
