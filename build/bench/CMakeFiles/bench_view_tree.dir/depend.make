# Empty dependencies file for bench_view_tree.
# This may be replaced when dependencies are built.
