file(REMOVE_RECURSE
  "CMakeFiles/bench_table.dir/bench_table.cpp.o"
  "CMakeFiles/bench_table.dir/bench_table.cpp.o.d"
  "bench_table"
  "bench_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
