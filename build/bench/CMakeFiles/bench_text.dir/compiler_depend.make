# Empty compiler generated dependencies file for bench_text.
# This may be replaced when dependencies are built.
