src/graphics/CMakeFiles/atk_graphics.dir/cursor_shape.cc.o: \
 /root/repo/src/graphics/cursor_shape.cc /usr/include/stdc-predef.h \
 /root/repo/src/graphics/cursor_shape.h
