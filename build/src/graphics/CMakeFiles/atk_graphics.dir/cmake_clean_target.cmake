file(REMOVE_RECURSE
  "libatk_graphics.a"
)
