file(REMOVE_RECURSE
  "CMakeFiles/atk_graphics.dir/cursor_shape.cc.o"
  "CMakeFiles/atk_graphics.dir/cursor_shape.cc.o.d"
  "CMakeFiles/atk_graphics.dir/font.cc.o"
  "CMakeFiles/atk_graphics.dir/font.cc.o.d"
  "CMakeFiles/atk_graphics.dir/font_data.cc.o"
  "CMakeFiles/atk_graphics.dir/font_data.cc.o.d"
  "CMakeFiles/atk_graphics.dir/geometry.cc.o"
  "CMakeFiles/atk_graphics.dir/geometry.cc.o.d"
  "CMakeFiles/atk_graphics.dir/graphic.cc.o"
  "CMakeFiles/atk_graphics.dir/graphic.cc.o.d"
  "CMakeFiles/atk_graphics.dir/pixel_image.cc.o"
  "CMakeFiles/atk_graphics.dir/pixel_image.cc.o.d"
  "CMakeFiles/atk_graphics.dir/region.cc.o"
  "CMakeFiles/atk_graphics.dir/region.cc.o.d"
  "libatk_graphics.a"
  "libatk_graphics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_graphics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
