
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graphics/cursor_shape.cc" "src/graphics/CMakeFiles/atk_graphics.dir/cursor_shape.cc.o" "gcc" "src/graphics/CMakeFiles/atk_graphics.dir/cursor_shape.cc.o.d"
  "/root/repo/src/graphics/font.cc" "src/graphics/CMakeFiles/atk_graphics.dir/font.cc.o" "gcc" "src/graphics/CMakeFiles/atk_graphics.dir/font.cc.o.d"
  "/root/repo/src/graphics/font_data.cc" "src/graphics/CMakeFiles/atk_graphics.dir/font_data.cc.o" "gcc" "src/graphics/CMakeFiles/atk_graphics.dir/font_data.cc.o.d"
  "/root/repo/src/graphics/geometry.cc" "src/graphics/CMakeFiles/atk_graphics.dir/geometry.cc.o" "gcc" "src/graphics/CMakeFiles/atk_graphics.dir/geometry.cc.o.d"
  "/root/repo/src/graphics/graphic.cc" "src/graphics/CMakeFiles/atk_graphics.dir/graphic.cc.o" "gcc" "src/graphics/CMakeFiles/atk_graphics.dir/graphic.cc.o.d"
  "/root/repo/src/graphics/pixel_image.cc" "src/graphics/CMakeFiles/atk_graphics.dir/pixel_image.cc.o" "gcc" "src/graphics/CMakeFiles/atk_graphics.dir/pixel_image.cc.o.d"
  "/root/repo/src/graphics/region.cc" "src/graphics/CMakeFiles/atk_graphics.dir/region.cc.o" "gcc" "src/graphics/CMakeFiles/atk_graphics.dir/region.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/class_system/CMakeFiles/atk_class_system.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
