# Empty compiler generated dependencies file for atk_graphics.
# This may be replaced when dependencies are built.
