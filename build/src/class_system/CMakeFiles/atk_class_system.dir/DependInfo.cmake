
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/class_system/class_info.cc" "src/class_system/CMakeFiles/atk_class_system.dir/class_info.cc.o" "gcc" "src/class_system/CMakeFiles/atk_class_system.dir/class_info.cc.o.d"
  "/root/repo/src/class_system/loader.cc" "src/class_system/CMakeFiles/atk_class_system.dir/loader.cc.o" "gcc" "src/class_system/CMakeFiles/atk_class_system.dir/loader.cc.o.d"
  "/root/repo/src/class_system/object.cc" "src/class_system/CMakeFiles/atk_class_system.dir/object.cc.o" "gcc" "src/class_system/CMakeFiles/atk_class_system.dir/object.cc.o.d"
  "/root/repo/src/class_system/observable.cc" "src/class_system/CMakeFiles/atk_class_system.dir/observable.cc.o" "gcc" "src/class_system/CMakeFiles/atk_class_system.dir/observable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
