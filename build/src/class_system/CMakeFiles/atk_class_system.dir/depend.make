# Empty dependencies file for atk_class_system.
# This may be replaced when dependencies are built.
