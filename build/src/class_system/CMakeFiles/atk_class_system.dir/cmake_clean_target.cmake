file(REMOVE_RECURSE
  "libatk_class_system.a"
)
